// Quickstart: a tour of the provmin public API on the paper's running
// example (Figure 1 over Table 2).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"provmin"
)

func main() {
	// 1. An annotated database: relation R of the paper's Table 2. Every
	// tuple carries an annotation variable (its provenance tag).
	d := provmin.NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "b")

	// 2. A conjunctive query in rule syntax: "which x sit on a 2-cycle?".
	q := provmin.MustParseQuery("ans(x) :- R(x,y), R(y,x)")
	u := provmin.SingleQuery(q)
	fmt.Println("query:", q)
	fmt.Println("class:", provmin.ClassOf(q))

	// 3. Evaluate with provenance: every output tuple gets an N[X]
	// polynomial describing all its derivations.
	res, err := provmin.Eval(u, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nannotated result:")
	for _, t := range res.Tuples() {
		fmt.Printf("  %s  %s   (%d derivations)\n", t.Tuple, t.Prov, provmin.NumDerivations(t.Prov))
	}

	// 4. Provenance minimization: compute an equivalent query realizing the
	// core provenance — the part of the computation shared by EVERY
	// equivalent query (Algorithm 1 / MinProv of the paper).
	pmin := provmin.MinProv(u)
	fmt.Println("\np-minimal equivalent query:")
	fmt.Println(pmin)
	fmt.Println("equivalent to the original:", provmin.Equivalent(pmin, u))

	resMin, err := provmin.Eval(pmin, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncore provenance (same tuples, terser annotations):")
	for _, t := range resMin.Tuples() {
		full, _ := res.Lookup(t.Tuple)
		fmt.Printf("  %s  %s   [was %s, order: core %s full]\n",
			t.Tuple, t.Prov, full, provmin.ComparePolynomials(t.Prov, full))
	}

	// 5. Direct computation (Theorem 5.1): recover the core provenance from
	// a polynomial alone — no query rewriting, no re-evaluation. Useful
	// when the optimizer already ran whatever plan it liked.
	pa, _ := res.Lookup(provmin.Tuple{"a"})
	core, err := provmin.CorePolynomial(pa, d, provmin.Tuple{"a"}, q.Consts())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndirect core of P((a)) = %s  ->  %s\n", pa, core)

	// 6. Coarser provenance models are semiring specializations.
	fmt.Println("\nWhy-provenance of (a):", provmin.Why(pa))
	fmt.Println("Trio lineage of (a):  ", provmin.Trio(pa))
}
