// Access-control example: provenance polynomials evaluated in the
// access-control semiring give, for every query answer, the minimum
// clearance a user needs to be entitled to see it — and the core provenance
// gives the clearance of the computation inherent to the query.
//
// Scenario: an intelligence-style report joins records of different
// classification levels; analysts ask which assets connect two networks.
//
//	go run ./examples/accesscontrol
package main

import (
	"fmt"
	"log"

	"provmin"
)

func main() {
	// Link(a, b): observed communications, classified per source.
	d := provmin.NewInstance()
	level := map[string]provmin.AccessLevel{}
	add := func(tag, a, b string, l provmin.AccessLevel) {
		d.MustAdd("Link", tag, a, b)
		level[tag] = l
	}
	add("osint1", "alpha", "hub", provmin.LevelPublic)
	add("osint2", "hub", "alpha", provmin.LevelPublic)
	add("sig1", "alpha", "relay", provmin.LevelSecret)
	add("sig2", "relay", "alpha", provmin.LevelSecret)
	add("hum1", "bravo", "relay", provmin.LevelConfidential)
	add("hum2", "relay", "bravo", provmin.LevelTopSecret)
	add("self1", "echo", "echo", provmin.LevelConfidential)

	// Assets sitting on a two-way channel.
	q := provmin.MustParseQuery("ans(x) :- Link(x,y), Link(y,x)")
	res, err := provmin.Eval(provmin.SingleQuery(q), d)
	if err != nil {
		log.Fatal(err)
	}

	lvl := func(tag string) provmin.AccessLevel { return level[tag] }
	fmt.Printf("%-8s %-34s %-14s %-14s\n", "asset", "provenance", "need (full)", "need (core)")
	for _, t := range res.Tuples() {
		core := provmin.CoreUpToCoefficients(t.Prov)
		full := provmin.AccessRequirement(t.Prov, lvl)
		fromCore := provmin.AccessRequirement(core, lvl)
		fmt.Printf("%-8s %-34s %-14s %-14s\n", t.Tuple[0], t.Prov, full, fromCore)
		if fromCore > full {
			log.Fatal("core provenance must never raise the clearance requirement")
		}
	}
	fmt.Println("\nthe echo row shows the paper's effect: the raw plan uses the confidential")
	fmt.Println("self-link twice (clearance unchanged here, but cost/count double); for")
	fmt.Println("min/max semirings like clearance the core can only relax the requirement.")
}
