// View maintenance example: deletion propagation from provenance, the third
// provenance consumer the paper's introduction motivates.
//
// Scenario: a follower graph feeds a materialized view of "mutual follows".
// When accounts get deleted, we must decide which view tuples die — without
// re-running the view query. The provenance polynomial answers this by
// Boolean specialization, and the core provenance answers it with less
// work; both verdicts are cross-checked against genuine re-evaluation.
// Insertions are handled by the engine itself: cached view results are
// delta-maintained across ingests, also cross-checked here.
//
//	go run ./examples/viewmaintenance
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"provmin"
)

func main() {
	// Follows(a, b), one tag per edge.
	d := provmin.NewInstance()
	rng := rand.New(rand.NewSource(21))
	users := []string{"u0", "u1", "u2", "u3", "u4", "u5"}
	tagOf := map[[2]string]string{}
	id := 0
	for _, a := range users {
		for _, b := range users {
			if a != b && rng.Float64() < 0.5 {
				id++
				tag := fmt.Sprintf("e%d", id)
				tagOf[[2]string{a, b}] = tag
				d.MustAdd("Follows", tag, a, b)
			}
		}
	}

	// Materialized view: mutual follows (with a witness hop: x follows y,
	// y follows x, and y follows somebody).
	view := provmin.MustParseUnion("mutual(x,y) :- Follows(x,y), Follows(y,x), Follows(y,z)")
	res, err := provmin.Eval(view, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view contains %d tuples over %d edges\n\n", res.Len(), id)

	// Delete every outgoing edge of u1 (account deactivation).
	deleted := map[string]bool{}
	for pair, tag := range tagOf {
		if pair[0] == "u1" {
			deleted[tag] = true
		}
	}
	fmt.Printf("deactivating u1: deleting %d edges\n", len(deleted))

	// Propagation from provenance (no re-evaluation).
	survivors, lost := provmin.PropagateDeletion(res, deleted)
	fmt.Printf("  survivors: %d, lost: %d\n", len(survivors), len(lost))
	for _, t := range lost {
		fmt.Printf("    lost: %v\n", t)
	}

	// Same verdicts from the core provenance (smaller input).
	fullSize, coreSize := 0, 0
	for _, ot := range res.Tuples() {
		core := provmin.CoreUpToCoefficients(ot.Prov)
		fullSize += ot.Prov.Size()
		coreSize += core.Size()
		if provmin.Survives(ot.Prov, deleted) != provmin.Survives(core, deleted) {
			log.Fatalf("core verdict differs for %v", ot.Tuple)
		}
	}
	fmt.Printf("\ncore provenance gives identical verdicts at %d/%d the size\n", coreSize, fullSize)

	// Ground truth: re-evaluate over the reduced database.
	reduced := provmin.DeleteByTags(d, deleted)
	reRes, err := provmin.Eval(view, reduced)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range survivors {
		if !reRes.Contains(s) {
			log.Fatalf("survivor %v not confirmed by re-evaluation", s)
		}
	}
	for _, l := range lost {
		if reRes.Contains(l) {
			log.Fatalf("lost tuple %v still derivable on re-evaluation", l)
		}
	}
	fmt.Println("cross-check passed: propagation verdicts match full re-evaluation")

	// Deletions needed provenance to avoid re-evaluation; insertions need
	// even less. N[X] provenance is additive for monotone UCQs, so the
	// service engine maintains the materialized view across ingests: an
	// insert-only batch is delta-evaluated and merged into the cached
	// result, and the next read is a warm "maintained" hit instead of a
	// cold re-evaluation. Cross-check it the same way: the maintained view
	// must be byte-identical to evaluating cold over the grown graph.
	eng := provmin.NewEngine(provmin.EngineConfig{Workers: 2})
	defer eng.Close()
	info, err := eng.CreateInstance("")
	if err != nil {
		log.Fatal(err)
	}
	var facts []provmin.Fact
	for pair, tag := range tagOf {
		facts = append(facts, provmin.Fact{Rel: "Follows", Tag: tag, Values: []string{pair[0], pair[1]}})
	}
	if err := eng.Ingest(info.ID, facts); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.Query(ctx, info.ID, view); err != nil {
		log.Fatal(err) // materialize the view in the result cache
	}

	// A new account u6 and u0 follow each other.
	grow := []provmin.Fact{
		{Rel: "Follows", Tag: "g1", Values: []string{"u6", "u0"}},
		{Rel: "Follows", Tag: "g2", Values: []string{"u0", "u6"}},
	}
	if err := eng.Ingest(info.ID, grow); err != nil {
		log.Fatal(err)
	}
	out, err := eng.Query(ctx, info.ID, view)
	if err != nil {
		log.Fatal(err)
	}
	if !out.CacheHit || !out.MaintainedHit {
		log.Fatalf("query after ingest was not a maintained hit (cache_hit=%t maintained=%t)",
			out.CacheHit, out.MaintainedHit)
	}
	for _, f := range grow {
		d.MustAdd(f.Rel, f.Tag, f.Values...)
	}
	cold, err := provmin.Eval(view, d)
	if err != nil {
		log.Fatal(err)
	}
	if out.Result.String() != cold.String() {
		log.Fatalf("maintained view differs from cold re-evaluation:\n%s\nvs\n%s",
			out.Result, cold)
	}
	fmt.Printf("\nincremental maintenance: view grew to %d tuples across an ingest without re-evaluation\n",
		out.Result.Len())
}
