// View maintenance example: deletion propagation from provenance, the third
// provenance consumer the paper's introduction motivates.
//
// Scenario: a follower graph feeds a materialized view of "mutual follows".
// When accounts get deleted, we must decide which view tuples die — without
// re-running the view query. The provenance polynomial answers this by
// Boolean specialization, and the core provenance answers it with less
// work; both verdicts are cross-checked against genuine re-evaluation.
//
//	go run ./examples/viewmaintenance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"provmin"
)

func main() {
	// Follows(a, b), one tag per edge.
	d := provmin.NewInstance()
	rng := rand.New(rand.NewSource(21))
	users := []string{"u0", "u1", "u2", "u3", "u4", "u5"}
	tagOf := map[[2]string]string{}
	id := 0
	for _, a := range users {
		for _, b := range users {
			if a != b && rng.Float64() < 0.5 {
				id++
				tag := fmt.Sprintf("e%d", id)
				tagOf[[2]string{a, b}] = tag
				d.MustAdd("Follows", tag, a, b)
			}
		}
	}

	// Materialized view: mutual follows (with a witness hop: x follows y,
	// y follows x, and y follows somebody).
	view := provmin.MustParseUnion("mutual(x,y) :- Follows(x,y), Follows(y,x), Follows(y,z)")
	res, err := provmin.Eval(view, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view contains %d tuples over %d edges\n\n", res.Len(), id)

	// Delete every outgoing edge of u1 (account deactivation).
	deleted := map[string]bool{}
	for pair, tag := range tagOf {
		if pair[0] == "u1" {
			deleted[tag] = true
		}
	}
	fmt.Printf("deactivating u1: deleting %d edges\n", len(deleted))

	// Propagation from provenance (no re-evaluation).
	survivors, lost := provmin.PropagateDeletion(res, deleted)
	fmt.Printf("  survivors: %d, lost: %d\n", len(survivors), len(lost))
	for _, t := range lost {
		fmt.Printf("    lost: %v\n", t)
	}

	// Same verdicts from the core provenance (smaller input).
	fullSize, coreSize := 0, 0
	for _, ot := range res.Tuples() {
		core := provmin.CoreUpToCoefficients(ot.Prov)
		fullSize += ot.Prov.Size()
		coreSize += core.Size()
		if provmin.Survives(ot.Prov, deleted) != provmin.Survives(core, deleted) {
			log.Fatalf("core verdict differs for %v", ot.Tuple)
		}
	}
	fmt.Printf("\ncore provenance gives identical verdicts at %d/%d the size\n", coreSize, fullSize)

	// Ground truth: re-evaluate over the reduced database.
	reduced := provmin.DeleteByTags(d, deleted)
	reRes, err := provmin.Eval(view, reduced)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range survivors {
		if !reRes.Contains(s) {
			log.Fatalf("survivor %v not confirmed by re-evaluation", s)
		}
	}
	for _, l := range lost {
		if reRes.Contains(l) {
			log.Fatalf("lost tuple %v still derivable on re-evaluation", l)
		}
	}
	fmt.Println("cross-check passed: propagation verdicts match full re-evaluation")
}
