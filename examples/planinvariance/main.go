// Plan invariance example: different physical plans for the same query
// produce different provenance — §8 of the paper calls finding the
// p-minimal among them "an intriguing research challenge". This example
// shows the library's answer: compile each plan to a UCQ≠ query, run
// MinProv, and observe that the realized core provenance is identical,
// whatever plan the optimizer picked.
//
//	go run ./examples/planinvariance
package main

import (
	"fmt"
	"log"

	"provmin"
)

func main() {
	d := provmin.NewInstance() // relation R of the paper's Table 2
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "b")

	// Plan A — the straightforward join plan for "x on a 2-cycle":
	// π_x(R(x,y) ⋈ R(y,x)).
	planA := provmin.MustPlan(provmin.Project(
		provmin.MustPlan(provmin.Join(
			provmin.MustPlan(provmin.Scan("R", "x", "y")),
			provmin.MustPlan(provmin.Scan("R", "y", "x")),
		)), "x"))

	// Plan B — the by-case plan (the paper's Qunion shape):
	// π_x(σ_{x≠y}(R ⋈ R)) ∪ π_x(σ_{x=y}(R)).
	planB := provmin.MustPlan(provmin.UnionPlans(
		provmin.MustPlan(provmin.Project(
			provmin.MustPlan(provmin.Select(
				provmin.MustPlan(provmin.Join(
					provmin.MustPlan(provmin.Scan("R", "x", "y")),
					provmin.MustPlan(provmin.Scan("R", "y", "x")),
				)),
				provmin.Condition{Op: provmin.OpNeq, Left: "x", Right: "y"},
			)), "x")),
		provmin.MustPlan(provmin.Project(
			provmin.MustPlan(provmin.Select(
				provmin.MustPlan(provmin.Scan("R", "x", "y")),
				provmin.Condition{Op: provmin.OpEq, Left: "x", Right: "y"},
			)), "x")),
	))

	fmt.Println("plan A:", planA)
	fmt.Println("plan B:", planB)

	rA, err := provmin.EvalPlan(planA, d)
	if err != nil {
		log.Fatal(err)
	}
	rB, err := provmin.EvalPlan(planB, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprovenance depends on the plan:")
	for _, t := range rA.Tuples() {
		pb, _ := rB.Lookup(t.Tuple)
		fmt.Printf("  %s  plan A: %-16s plan B: %s\n", t.Tuple, t.Prov, pb)
	}

	// Compile both plans and check they compute the same query.
	qA, err := provmin.CompilePlan(planA)
	if err != nil {
		log.Fatal(err)
	}
	qB, err := provmin.CompilePlan(planB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompiled plan A:")
	fmt.Println(qA)
	fmt.Println("compiled plan B:")
	fmt.Println(qB)
	fmt.Println("equivalent queries:", provmin.Equivalent(qA, qB))

	// The core provenance is plan-invariant.
	coreA, err := provmin.Eval(provmin.MinProv(qA), d)
	if err != nil {
		log.Fatal(err)
	}
	coreB, err := provmin.Eval(provmin.MinProv(qB), d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncore provenance (identical for both plans):")
	for _, t := range coreA.Tuples() {
		pb, _ := coreB.Lookup(t.Tuple)
		fmt.Printf("  %s  from A: %-12s from B: %s\n", t.Tuple, t.Prov, pb)
		if !t.Prov.Equal(pb) {
			log.Fatal("core provenance should be plan-invariant!")
		}
	}
}
