// Probabilistic databases example: core provenance as a compact input to
// probabilistic query answering — one of the tools the paper's introduction
// motivates.
//
// Scenario: an uncertain road network extracted from noisy sensor data.
// Each observed road segment is correct with some probability; we ask for
// round trips (cycles) through the network and compute, for each answer,
// the probability that it really exists. Computing that probability from
// the full provenance pays inclusion–exclusion over every derivation;
// computing it from the core provenance gives the *same* answer over only
// the minimal witness sets.
//
//	go run ./examples/probabilistic
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"provmin"
)

func main() {
	// Uncertain road network: Road(from, to), each segment with a
	// confidence in (0,1].
	d := provmin.NewInstance()
	rng := rand.New(rand.NewSource(7))
	confidence := map[string]float64{}
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	id := 0
	addRoad := func(a, b string) {
		id++
		tag := fmt.Sprintf("r%d", id)
		confidence[tag] = 0.5 + 0.5*rng.Float64()
		d.MustAdd("Road", tag, a, b)
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b && rng.Float64() < 0.65 {
				addRoad(a, b)
			}
		}
	}
	fmt.Printf("road network: %d segments over %d towns\n\n", id, len(nodes))

	// Round trips of length four: ans(x) if x lies on a 4-cycle. The
	// repeated Road atoms produce many overlapping derivations per answer —
	// exactly the situation where provenance blows up.
	q := provmin.MustParseQuery("ans(x) :- Road(x,y), Road(y,z), Road(z,w), Road(w,x)")
	res, err := provmin.Eval(provmin.SingleQuery(q), d)
	if err != nil {
		log.Fatal(err)
	}

	prob := func(tag string) float64 { return confidence[tag] }
	fmt.Printf("%-6s %10s %10s %12s %12s %14s\n", "town", "full size", "core size", "P(full)", "P(core)", "speedup")
	for _, t := range res.Tuples() {
		core := provmin.CoreUpToCoefficients(t.Prov)

		start := time.Now()
		pFull, err := provmin.DerivationProbability(t.Prov, prob)
		if err != nil {
			// Too many witnesses for exact inclusion-exclusion: fall back
			// to Monte Carlo on both representations.
			pFull = provmin.DerivationProbabilityMC(t.Prov, prob, 100000, 1)
		}
		tFull := time.Since(start)

		start = time.Now()
		pCore, err := provmin.DerivationProbability(core, prob)
		if err != nil {
			pCore = provmin.DerivationProbabilityMC(core, prob, 100000, 1)
		}
		tCore := time.Since(start)

		speedup := float64(tFull.Nanoseconds()+1) / float64(tCore.Nanoseconds()+1)
		fmt.Printf("%-6s %10d %10d %12.6f %12.6f %13.1fx\n",
			t.Tuple[0], t.Prov.Size(), core.Size(), pFull, pCore, speedup)
		if diff := pFull - pCore; diff > 1e-9 || diff < -1e-9 {
			log.Fatalf("probability changed under core provenance: %v vs %v", pFull, pCore)
		}
	}
	fmt.Println("\ninvariant: identical probabilities from full and core provenance —")
	fmt.Println("dominated derivations never change the derivation event.")
}
