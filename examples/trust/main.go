// Trust assessment example: evaluating provenance polynomials in coarser
// semirings (tropical cost, Viterbi confidence) — the second family of
// provenance consumers motivated by the paper.
//
// Scenario: a data-integration setting where facts about collaborations are
// curated from sources of varying reliability and access cost. A derived
// answer's trust is the best value over its derivations; the core
// provenance identifies the derivations inherent to the query, giving the
// trust of the core computation.
//
//	go run ./examples/trust
package main

import (
	"fmt"
	"log"

	"provmin"
)

func main() {
	// Collab(a, b): curated collaboration facts, each from one source.
	d := provmin.NewInstance()
	type fact struct {
		tag, a, b string
		cost      float64 // verification cost of the source
		conf      float64 // source confidence
	}
	facts := []fact{
		{"curated1", "ada", "bob", 1, 0.99},
		{"curated2", "bob", "ada", 1, 0.99},
		{"scraped1", "ada", "cyd", 5, 0.70},
		{"scraped2", "cyd", "ada", 5, 0.70},
		{"scraped3", "bob", "cyd", 4, 0.75},
		{"wiki1", "cyd", "bob", 2, 0.90},
		{"selfrep1", "dee", "dee", 9, 0.40},
	}
	cost := map[string]float64{}
	conf := map[string]float64{}
	for _, f := range facts {
		d.MustAdd("Collab", f.tag, f.a, f.b)
		cost[f.tag] = f.cost
		conf[f.tag] = f.conf
	}

	// Mutual collaborators: the paper's Qconj. Note Qconj also derives
	// (dee) from the single self-collaboration used twice — with squared
	// annotation — while the p-minimal form uses it once.
	q := provmin.MustParseQuery("ans(x) :- Collab(x,y), Collab(y,x)")
	res, err := provmin.Eval(provmin.SingleQuery(q), d)
	if err != nil {
		log.Fatal(err)
	}

	costOf := func(tag string) float64 { return cost[tag] }
	confOf := func(tag string) float64 { return conf[tag] }

	fmt.Printf("%-6s %-34s %12s %12s %12s %12s\n", "who", "provenance", "cost(full)", "cost(core)", "conf(full)", "conf(core)")
	for _, t := range res.Tuples() {
		core := provmin.CoreUpToCoefficients(t.Prov)
		cFull := provmin.TrustCost(t.Prov, costOf)
		cCore := provmin.TrustCost(core, costOf)
		fFull := provmin.TrustConfidence(t.Prov, confOf)
		fCore := provmin.TrustConfidence(core, confOf)
		fmt.Printf("%-6s %-34s %12.2f %12.2f %12.4f %12.4f\n",
			t.Tuple[0], t.Prov, cFull, cCore, fFull, fCore)
		if cCore > cFull || fCore < fFull {
			log.Fatal("core trust must never be worse: the p-minimal query realizes it")
		}
	}
	fmt.Println("\nnote the self-collaboration row: the raw plan uses the source twice")
	fmt.Println("(cost doubled, confidence squared); the core uses it once — the inherent")
	fmt.Println("computation is cheaper and more trustworthy, and an equivalent query")
	fmt.Println("(the p-minimal one) actually achieves it.")
}
