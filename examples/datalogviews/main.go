// Datalog views example: the paper's §8 leaves provenance minimization for
// Datalog open; for NON-recursive programs the library answers it by
// unfolding the view hierarchy into UCQ≠ (with composed provenance) and
// running MinProv. This example builds a two-level view stack over a
// flight network and computes the core provenance of the top view.
//
//	go run ./examples/datalogviews
package main

import (
	"fmt"
	"log"

	"provmin"
)

func main() {
	// Base data: direct flights.
	d := provmin.NewInstance()
	flights := [][2]string{
		{"SFO", "JFK"}, {"JFK", "SFO"},
		{"JFK", "LHR"}, {"LHR", "JFK"},
		{"SFO", "LHR"},
		{"LHR", "CDG"}, {"CDG", "LHR"},
		{"CDG", "CDG"}, // a sightseeing loop
	}
	for i, f := range flights {
		d.MustAdd("Flight", fmt.Sprintf("f%d", i+1), f[0], f[1])
	}

	// A view stack: round trips via one stopover, defined over a hop view.
	program := provmin.MustParseProgram(`
		# one- or zero-stop connection
		Conn(x,y) :- Flight(x,y)
		Conn(x,y) :- Flight(x,z), Flight(z,y)
		# cities with a round trip over the connection view
		RoundTrip(x) :- Conn(x,y), Conn(y,x)
	`)
	fmt.Println("IDB:", program.IDB(), " EDB:", program.EDB())

	u, err := provmin.UnfoldProgram(program, "RoundTrip")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRoundTrip unfolds to %d conjunctive branches over Flight\n", len(u.Adjuncts))

	res, err := provmin.Eval(u, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nannotated view (size of raw provenance per city):")
	for _, t := range res.Tuples() {
		fmt.Printf("  %-4s %3d monomial occurrences, size %d\n",
			t.Tuple[0], t.Prov.NumOccurrences(), t.Prov.Size())
	}

	// The core provenance of the view — computed directly, without MinProv
	// (whose output here would be a large union), via Theorem 5.1.
	core, err := provmin.CoreResult(res, d, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncore provenance per city:")
	for _, t := range core.Tuples() {
		full, _ := res.Lookup(t.Tuple)
		fmt.Printf("  %-4s %s   (raw size %d -> core size %d)\n",
			t.Tuple[0], t.Prov, full.Size(), t.Prov.Size())
	}
}
