package provmin

import (
	"io"

	"provmin/internal/direct"
	"provmin/internal/store"
)

func directCoreResult(res *Result, d *Instance, consts []string) (*Result, error) {
	return direct.CoreResult(res, d, consts)
}

func directCoreResultUpTo(res *Result) *Result {
	return direct.CoreResultUpToCoefficients(res)
}

// SaveResult serializes an annotated result together with its input
// instance and the query's constants — everything Theorem 5.1 part 2 needs
// to recover exact core provenance later, off-line, without the query.
func SaveResult(w io.Writer, d *Instance, res *Result, consts []string) error {
	return store.Write(w, d, res, consts)
}

// LoadResult deserializes a stored annotated result.
func LoadResult(r io.Reader) (*Instance, *Result, []string, error) {
	return store.Read(r)
}

// CoreResult computes the exact core provenance of every tuple of an
// annotated result directly (Theorem 5.1): the result the p-minimal query
// would produce, recovered without the query.
func CoreResult(res *Result, d *Instance, consts []string) (*Result, error) {
	return directCoreResult(res, d, consts)
}

// CoreResultUpToCoefficients is the PTIME whole-result core (coefficients
// normalized to 1), computed from the polynomials alone.
func CoreResultUpToCoefficients(res *Result) *Result {
	return directCoreResultUpTo(res)
}
