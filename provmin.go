// Package provmin is a Go implementation of "On Provenance Minimization"
// (Amsterdamer, Deutch, Milo, Tannen — PODS 2011).
//
// The library computes the *core provenance* of query results: the part of
// the N[X] provenance polynomial that appears in the evaluation of every
// query equivalent to the one at hand. It provides:
//
//   - a calculus of conjunctive queries with disequalities and unions
//     thereof (CQ, CQ≠, cCQ≠, UCQ≠), with a Datalog-like parser;
//   - provenance-aware evaluation over annotated databases (provenance
//     semirings, Green–Karvounarakis–Tannen);
//   - the terseness order on provenance polynomials and query results
//     (Def. 2.15 / 2.17 of the paper);
//   - standard (Chandra–Merlin / Klug / Sagiv–Yannakakis) and
//     provenance-aware minimization, including the MinProv algorithm
//     (Algorithm 1) that computes a p-minimal equivalent query realizing
//     the core provenance;
//   - direct core computation from a provenance polynomial alone — without
//     rewriting or re-evaluating the query (Theorem 5.1);
//   - downstream provenance consumers (probabilistic query answering, trust
//     assessment, deletion propagation) that demonstrate the compactness
//     payoff of core provenance.
//
// # Quick start
//
//	q := provmin.MustParseQuery("ans(x) :- R(x,y), R(y,x)")
//	d := provmin.NewInstance()
//	d.MustAdd("R", "s1", "a", "a")
//	d.MustAdd("R", "s2", "a", "b")
//	d.MustAdd("R", "s3", "b", "a")
//
//	res, _ := provmin.Eval(provmin.SingleQuery(q), d)
//	for _, t := range res.Tuples() {
//		fmt.Println(t.Tuple, t.Prov) // (a) s1^2 + s2*s3 ...
//	}
//
//	pmin := provmin.MinProv(provmin.SingleQuery(q)) // p-minimal equivalent
//	core, _ := provmin.CorePolynomial(resProv, d, tuple, q.Consts())
//
// # Service layer
//
// Beyond the one-shot functions above, the package exposes a long-lived
// service core (see engine.go): NewEngine returns a concurrency-safe
// [Engine] that hosts named annotated instances behind read-write locks,
// bounds parallel evaluations with a worker pool, batches tuple ingest, and
// keeps an LRU cache from canonical query forms to their p-minimal
// equivalents — so repeated core-provenance requests skip MinProv, the
// worst-case-exponential step. NewServerHandler wraps an Engine in the
// provmind HTTP/JSON API (instances, query, core, prob, trust, deletion,
// metrics), which cmd/provmind serves as a standalone process.
//
//	eng := provmin.NewEngine(provmin.EngineConfig{})
//	defer eng.Close()
//	info, _ := eng.CreateInstance("R r1 a a\nR r2 a b\nR r3 b a")
//	out, _ := eng.Core(ctx, info.ID, provmin.MustParseUnion("ans(x) :- R(x,y), R(y,x)"))
//	// out.Result holds core provenance; out.CacheHit reports a cache hit.
//
// The cmd/ directory ships a CLI (cmd/provmin), the provmind server
// (cmd/provmind), a replay of every worked example in the paper
// (cmd/paperexamples) and the benchmark table generator (cmd/benchtables).
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package provmin

import (
	"provmin/internal/db"
	"provmin/internal/direct"
	"provmin/internal/eval"
	"provmin/internal/hom"
	"provmin/internal/minimize"
	"provmin/internal/order"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

// Re-exported core types. The aliases expose the internal implementation
// packages through one import path while keeping the module layout private.
type (
	// Query is a conjunctive query with disequalities (CQ≠, Def. 2.1).
	Query = query.CQ
	// Union is a union of conjunctive queries (UCQ≠, Def. 2.4).
	Union = query.UCQ
	// Arg is an atom argument: variable or constant.
	Arg = query.Arg
	// Atom is a relational atom.
	Atom = query.Atom
	// Diseq is a disequality atom.
	Diseq = query.Diseq
	// Class identifies a query class of the paper's Table 1.
	Class = query.Class

	// Instance is an annotated database instance (a set of N[X]-relations).
	Instance = db.Instance
	// Relation is one annotated relation.
	Relation = db.Relation
	// Tuple is a database tuple.
	Tuple = db.Tuple

	// Monomial is a product of annotation variables.
	Monomial = semiring.Monomial
	// Polynomial is an N[X] provenance polynomial.
	Polynomial = semiring.Polynomial
	// WitnessSet is a Why-provenance witness family.
	WitnessSet = semiring.WitnessSet

	// Result is an annotated query result.
	Result = eval.Result
	// OutTuple is one output tuple with its provenance.
	OutTuple = eval.OutTuple

	// Relationship classifies two polynomials or results under the
	// terseness order.
	Relationship = order.Relation

	// MinProvSteps records the intermediate queries of Algorithm 1.
	MinProvSteps = minimize.Steps
)

// Query classes (Table 1).
const (
	ClassCQ      = query.ClassCQ
	ClassCQNeq   = query.ClassCQNeq
	ClassCCQNeq  = query.ClassCCQNeq
	ClassUCQNeq  = query.ClassUCQNeq
	ClassCUCQNeq = query.ClassCUCQNeq
)

// Order relation outcomes.
const (
	Incomparable = order.Incomparable
	Less         = order.Less
	Equal        = order.Equal
	Greater      = order.Greater
)

// ParseQuery parses one rule, e.g. "ans(x) :- R(x,y), S(y,'c'), x != y".
func ParseQuery(rule string) (*Query, error) { return query.Parse(rule) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(rule string) *Query { return query.MustParse(rule) }

// ParseUnion parses a union of rules separated by newlines or semicolons.
func ParseUnion(text string) (*Union, error) { return query.ParseUnion(text) }

// MustParseUnion is ParseUnion that panics on error.
func MustParseUnion(text string) *Union { return query.MustParseUnion(text) }

// SingleQuery wraps a conjunctive query as a singleton union.
func SingleQuery(q *Query) *Union { return query.Single(q) }

// ClassOf returns the most specific class of a query (Table 1 rows).
func ClassOf(q *Query) Class { return query.ClassOf(q) }

// ClassOfUnion returns the most specific class of a union.
func ClassOfUnion(u *Union) Class { return query.ClassOfUnion(u) }

// NewInstance creates an empty annotated database instance.
func NewInstance() *Instance { return db.NewInstance() }

// ParsePolynomial parses a provenance polynomial, e.g. "2*s1^2*s2 + s3".
func ParsePolynomial(s string) (Polynomial, error) { return semiring.ParsePolynomial(s) }

// MustParsePolynomial is ParsePolynomial that panics on error.
func MustParsePolynomial(s string) Polynomial { return semiring.MustParsePolynomial(s) }

// Eval evaluates a union over an instance, annotating every output tuple
// with its provenance polynomial (Def. 2.12).
func Eval(u *Union, d *Instance) (*Result, error) { return eval.EvalUCQ(u, d) }

// Provenance returns P(t, Q, D) for a single tuple (zero if absent).
func Provenance(u *Union, d *Instance, t Tuple) (Polynomial, error) {
	return eval.Provenance(u, d, t)
}

// MinProv computes a p-minimal equivalent of u in UCQ≠ (Algorithm 1,
// Theorem 4.6): the returned query realizes the core provenance of u on
// every abstractly-tagged database. Worst-case exponential output size
// (Theorem 4.10).
func MinProv(u *Union) *Union { return minimize.MinProv(u) }

// MinProvWithSteps runs Algorithm 1 and returns the intermediate queries of
// its three steps.
func MinProvWithSteps(u *Union) MinProvSteps { return minimize.MinProvSteps(u) }

// StandardMinimize computes a standard-minimal (fewest relational atoms)
// equivalent union, the Chandra–Merlin / Sagiv–Yannakakis baseline that
// Table 1 contrasts p-minimization with.
func StandardMinimize(u *Union) *Union { return minimize.StandardMinimizeUCQ(u) }

// Contained decides u1 ⊆ u2 for UCQ≠ queries.
func Contained(u1, u2 *Union) bool { return minimize.Contained(u1, u2) }

// Equivalent decides u1 ≡ u2 for UCQ≠ queries (Def. 2.8).
func Equivalent(u1, u2 *Union) bool { return minimize.Equivalent(u1, u2) }

// HomomorphismExists reports whether a homomorphism from one conjunctive
// query to another exists (Def. 2.10).
func HomomorphismExists(from, to *Query) bool { return hom.Exists(from, to) }

// Isomorphic reports whether two conjunctive queries are isomorphic.
func Isomorphic(a, b *Query) bool { return hom.Isomorphic(a, b) }

// ComparePolynomials classifies two provenance polynomials under the
// terseness order of Def. 2.15.
func ComparePolynomials(p, q Polynomial) Relationship { return order.Compare(p, q) }

// PolynomialLE reports p ≤ q under the terseness order.
func PolynomialLE(p, q Polynomial) bool { return order.PolyLE(p, q) }

// CompareOnDB evaluates two queries over one instance and classifies their
// annotated results pointwise (the per-database content of ≤_P, Def. 2.17).
func CompareOnDB(q1, q2 *Union, d *Instance) (Relationship, error) {
	return order.CompareOnDB(q1, q2, d)
}

// CoreUpToCoefficients computes the core provenance of a polynomial up to
// monomial multiplicities, in PTIME, from the polynomial alone (Theorem 5.1
// part 1).
func CoreUpToCoefficients(p Polynomial) Polynomial { return direct.CoreUpToCoefficients(p) }

// CorePolynomial computes the exact core provenance of tuple t directly from
// its provenance polynomial, the database and the query's constants —
// without the query itself (Theorem 5.1 part 2). The database must be
// abstractly tagged (Theorem 6.2).
func CorePolynomial(p Polynomial, d *Instance, t Tuple, consts []string) (Polynomial, error) {
	return direct.CoreExact(p, d, t, consts)
}

// Why returns the Why-provenance (witness sets) of a polynomial.
func Why(p Polynomial) WitnessSet { return semiring.Why(p) }

// Trio returns the Trio/lineage form of a polynomial (exponents dropped).
func Trio(p Polynomial) Polynomial { return semiring.Trio(p) }
