module provmin

go 1.23
