module provmin

go 1.24
