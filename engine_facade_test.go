package provmin_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"provmin"
)

// TestEngineFacade drives the service layer through the root package alone:
// NewEngine for in-process use, NewServerHandler for the HTTP surface.
func TestEngineFacade(t *testing.T) {
	eng := provmin.NewEngine(provmin.EngineConfig{Workers: 2, CacheSize: 4})
	defer eng.Close()

	info, err := eng.CreateInstance("R r1 a a\nR r2 a b\nR r3 b a")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(info.ID, []provmin.Fact{{Rel: "S", Tag: "s1", Values: []string{"a"}}}); err != nil {
		t.Fatal(err)
	}

	u := provmin.MustParseUnion("ans(x) :- R(x,y), R(y,x), S(x)")
	ctx := context.Background()
	out1, err := eng.Core(ctx, info.ID, u)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := eng.Core(ctx, info.ID, u)
	if err != nil {
		t.Fatal(err)
	}
	if out1.CacheHit || !out2.CacheHit {
		t.Fatalf("cache hits = %v,%v, want false,true", out1.CacheHit, out2.CacheHit)
	}
	if out1.Result.String() != out2.Result.String() {
		t.Fatalf("cached core differs:\n%s\nvs\n%s", out2.Result, out1.Result)
	}

	// The same engine behind the HTTP handler, sharing cache and metrics.
	ts := httptest.NewServer(provmin.NewServerHandler(eng))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/core", "application/json",
		strings.NewReader(`{"instance":"`+info.ID+`","query":"ans(x) :- R(x,y), R(y,x), S(x)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		CacheHit bool `json:"cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.CacheHit {
		t.Fatal("HTTP core request did not share the in-process cache")
	}
}
