package provmin_test

import (
	"fmt"

	"provmin"
)

// The examples below run as tests (go test) and render in godoc; they walk
// the main API paths on the paper's running example.

func paperDB() *provmin.Instance {
	d := provmin.NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "b")
	return d
}

func ExampleEval() {
	q := provmin.MustParseQuery("ans(x) :- R(x,y), R(y,x)")
	res, _ := provmin.Eval(provmin.SingleQuery(q), paperDB())
	for _, t := range res.Tuples() {
		fmt.Println(t.Tuple, t.Prov)
	}
	// Output:
	// (a) s1^2 + s2*s3
	// (b) s2*s3 + s4^2
}

func ExampleMinProv() {
	q := provmin.MustParseQuery("ans(x) :- R(x,y), R(y,x)")
	pmin := provmin.MinProv(provmin.SingleQuery(q))
	fmt.Println(pmin)
	// Output:
	// ans(v1) :- R(v1,v1)
	// ans(v1) :- R(v1,v2), R(v2,v1), v1 != v2
}

func ExampleCorePolynomial() {
	p := provmin.MustParsePolynomial("s1^2 + s2*s3")
	core, _ := provmin.CorePolynomial(p, paperDB(), provmin.Tuple{"a"}, nil)
	fmt.Println(core)
	// Output:
	// s1 + s2*s3
}

func ExampleCoreUpToCoefficients() {
	p := provmin.MustParsePolynomial("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
	fmt.Println(provmin.CoreUpToCoefficients(p))
	// Output:
	// s1 + s2*s4*s5
}

func ExampleComparePolynomials() {
	terse := provmin.MustParsePolynomial("s1*s2 + 2*s3")
	verbose := provmin.MustParsePolynomial("s1*s2^2 + s2*s3 + s3*s4 + s5")
	fmt.Println(provmin.ComparePolynomials(terse, verbose))
	fmt.Println(provmin.ComparePolynomials(verbose, terse))
	// Output:
	// <
	// >
}

func ExampleEquivalent() {
	a := provmin.MustParseUnion("ans(x) :- R(x,y), R(y,x)")
	b := provmin.MustParseUnion("ans(x) :- R(x,y), R(y,x), x != y; ans(x) :- R(x,x)")
	fmt.Println(provmin.Equivalent(a, b))
	// Output:
	// true
}

func ExampleWhy() {
	p := provmin.MustParsePolynomial("2*s1^2*s2 + s3")
	fmt.Println(provmin.Why(p))
	// Output:
	// { {s3}, {s1,s2} }
}

func ExampleExplain() {
	u := provmin.MustParseUnion("ans(x) :- R(x,y), R(y,x)")
	ds, _ := provmin.Explain(u, paperDB(), provmin.Tuple{"a"})
	for _, d := range ds {
		fmt.Println(d.Monomial)
	}
	// Output:
	// s1^2
	// s2*s3
}

func ExampleSurvives() {
	p := provmin.MustParsePolynomial("s1*s2 + s3")
	fmt.Println(provmin.Survives(p, map[string]bool{"s1": true}))
	fmt.Println(provmin.Survives(p, map[string]bool{"s1": true, "s3": true}))
	// Output:
	// true
	// false
}

func ExampleDerivative() {
	p := provmin.MustParsePolynomial("x*y^2 + 2*z")
	fmt.Println(provmin.Derivative(p, "y"))
	// Output:
	// 2*x*y
}

func ExampleClassOf() {
	fmt.Println(provmin.ClassOf(provmin.MustParseQuery("ans(x) :- R(x,x)")))
	fmt.Println(provmin.ClassOf(provmin.MustParseQuery("ans(x) :- R(x,y), x != y")))
	fmt.Println(provmin.ClassOf(provmin.MustParseQuery("ans() :- R(x,y), R(y,z), x != z")))
	// Output:
	// CQ
	// cCQ!=
	// CQ!=
}

func ExampleCompilePlan() {
	plan := provmin.MustPlan(provmin.Project(
		provmin.MustPlan(provmin.Join(
			provmin.MustPlan(provmin.Scan("R", "x", "y")),
			provmin.MustPlan(provmin.Scan("R", "y", "x")),
		)), "x"))
	u, _ := provmin.CompilePlan(plan)
	fmt.Println(u)
	// Output:
	// ans(v4) :- R(v4,v3), R(v3,v4)
}
