package provmin

import (
	"provmin/internal/apps/deletion"
	"provmin/internal/apps/prob"
	"provmin/internal/apps/trust"
	"provmin/internal/semiring"
)

// This file exposes the downstream provenance consumers (§1 of the paper
// motivates core provenance as compact input to exactly these kinds of
// tools): probabilistic query answering, trust assessment, and deletion
// propagation / view maintenance.

// DerivationProbability computes the exact probability that a tuple with
// provenance p is derivable in a tuple-independent probabilistic database,
// where prob gives each input tuple's (tag's) probability. Exponential in
// the number of distinct witnesses (inclusion–exclusion); feeding it the
// core provenance (CoreUpToCoefficients) gives the same answer faster.
func DerivationProbability(p Polynomial, prob func(tag string) float64) (float64, error) {
	return probExact(p, prob)
}

func probExact(p Polynomial, pr func(string) float64) (float64, error) {
	return prob.Exact(p, pr)
}

// DerivationProbabilityMC estimates the derivation probability by Monte
// Carlo sampling; use it when the witness count exceeds the exact cap.
func DerivationProbabilityMC(p Polynomial, prob func(tag string) float64, samples int, seed int64) float64 {
	return probMC(p, prob, samples, seed)
}

func probMC(p Polynomial, pr func(string) float64, samples int, seed int64) float64 {
	return prob.MonteCarlo(p, pr, samples, seed)
}

// TrustCost returns the cheapest-derivation cost of a tuple (tropical
// semiring evaluation); TropicalInf when underivable.
func TrustCost(p Polynomial, cost func(tag string) float64) float64 {
	return trust.Cost(p, cost)
}

// TropicalInf is the cost of an underivable tuple.
const TropicalInf = semiring.TropicalInf

// TrustConfidence returns the most-confident-derivation value of a tuple
// (Viterbi semiring evaluation) under per-tuple confidences in [0,1].
func TrustConfidence(p Polynomial, conf func(tag string) float64) float64 {
	return trust.Confidence(p, conf)
}

// Survives reports whether a tuple with provenance p remains derivable after
// deleting the input tuples whose tags are in deleted — deletion propagation
// from provenance alone, with no query re-evaluation.
func Survives(p Polynomial, deleted map[string]bool) bool {
	return deletion.Survives(p, deleted)
}

// PropagateDeletion partitions an annotated result into tuples that survive
// and tuples that are lost when the tagged input tuples are deleted.
func PropagateDeletion(res *Result, deleted map[string]bool) (survivors, lost []Tuple) {
	return deletion.Propagate(res, deleted)
}

// DeleteByTags returns a copy of the instance without the tuples carrying
// the given tags (ground-truth helper for validating PropagateDeletion).
func DeleteByTags(d *Instance, deleted map[string]bool) *Instance {
	return deletion.DeleteByTags(d, deleted)
}

// NumDerivations counts the derivations of a tuple (bag multiplicity).
func NumDerivations(p Polynomial) int { return semiring.NumDerivations(p) }
