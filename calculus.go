package provmin

import (
	"provmin/internal/eval"
	"provmin/internal/semiring"
)

// This file exposes the provenance-calculus utilities: formal derivatives
// (sensitivity analysis), restriction (deletion at the polynomial level),
// derivation enumeration (explanations), and the access-control semiring.

// Derivative returns ∂p/∂v: the sensitivity of the annotation to the
// multiplicity of the input tuple tagged v.
func Derivative(p Polynomial, v string) Polynomial { return semiring.Derivative(p, v) }

// DependsOn reports whether p mentions the tag v at all.
func DependsOn(p Polynomial, v string) bool { return semiring.DependsOn(p, v) }

// Restrict sets tag v to zero, dropping every derivation that uses it.
func Restrict(p Polynomial, v string) Polynomial { return semiring.Restrict(p, v) }

// Derivation is one derivation (assignment) of an output tuple, with the
// monomial it contributes to the tuple's provenance.
type Derivation = eval.Derivation

// Explain enumerates all derivations of t under u over d; the returned
// monomials sum to P(t, Q, D).
func Explain(u *Union, d *Instance, t Tuple) ([]Derivation, error) {
	return eval.Derivations(u, d, t)
}

// AccessLevel is a clearance in the access-control semiring.
type AccessLevel = semiring.AccessLevel

// Clearance levels.
const (
	LevelNone         = semiring.LevelNone
	LevelPublic       = semiring.LevelPublic
	LevelConfidential = semiring.LevelConfidential
	LevelSecret       = semiring.LevelSecret
	LevelTopSecret    = semiring.LevelTopSecret
)

// AccessRequirement returns the minimum clearance needed to see some
// derivation of a tuple with provenance p, given per-tuple clearances.
func AccessRequirement(p Polynomial, level func(tag string) AccessLevel) AccessLevel {
	return semiring.Eval[AccessLevel](p, semiring.Access{}, level)
}

// EvalTrustCostDirect evaluates the union directly in the tropical semiring
// (per-assignment, without building polynomials), returning the cheapest
// derivation cost per output tuple keyed by Tuple.Key().
func EvalTrustCostDirect(u *Union, d *Instance, cost func(tag string) float64) (map[string]float64, []Tuple, error) {
	return eval.EvalDirect[float64](u, d, semiring.Tropical{}, cost)
}

// EvalCountDirect evaluates the union directly in the counting semiring,
// returning the number of derivations per output tuple.
func EvalCountDirect(u *Union, d *Instance) (map[string]int, []Tuple, error) {
	return eval.EvalDirect[int](u, d, semiring.Counting{}, func(string) int { return 1 })
}
