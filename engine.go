package provmin

import (
	"net/http"

	"provmin/internal/engine"
	"provmin/internal/metrics"
	"provmin/internal/server"
)

// This file exposes the service layer: the concurrent evaluation engine
// behind the provmind server, usable in-process. The one-shot functions of
// provmin.go evaluate a query and return; an Engine is long-lived — it
// hosts named instances behind read-write locks, bounds concurrent
// evaluations with a worker pool, batches tuple ingest, and caches
// p-minimal query forms in an LRU so repeated core-provenance requests
// skip MinProv entirely.

type (
	// Engine is a long-lived, concurrency-safe provenance service core.
	Engine = engine.Engine
	// EngineConfig tunes a new Engine; zero values select defaults.
	EngineConfig = engine.Config
	// Fact is one annotated tuple for Engine ingest.
	Fact = engine.Fact
	// InstanceInfo describes one hosted instance.
	InstanceInfo = engine.InstanceInfo
	// CoreOut is the outcome of an Engine core-provenance request.
	CoreOut = engine.CoreOut
	// MetricsRegistry collects engine and server counters and histograms.
	MetricsRegistry = metrics.Registry
)

// NewEngine creates a service engine and starts its worker pool. Call
// Close when done.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// NewServerHandler wraps an engine in the provmind HTTP API (the handler
// cmd/provmind serves). Useful for embedding the service in another
// process or an httptest server.
func NewServerHandler(e *Engine) http.Handler { return server.New(e) }
