#!/bin/sh
# bench.sh — run every benchmark with -benchmem and record the results as
# JSON for the performance trajectory. Raw `go test` output is kept next to
# the JSON so regressions can be diffed by hand.
#
# Usage: scripts/bench.sh [output-dir]   (default: bench/)
set -eu

cd "$(dirname "$0")/.."
outdir="${1:-bench}"
mkdir -p "$outdir"
stamp="$(date -u +%Y%m%dT%H%M%SZ)"
raw="$outdir/bench-$stamp.txt"
json="$outdir/bench-$stamp.json"

go test -run 'XXX' -bench . -benchmem ./... | tee "$raw"

# Convert "BenchmarkName-8  100  12345 ns/op  67 B/op  8 allocs/op" lines
# into a JSON array with one object per benchmark.
awk -v stamp="$stamp" '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "  {\"ts\":\"%s\",\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s", stamp, name, $2, (ns == "" ? "null" : ns)
    printf ",\"bytes_per_op\":%s,\"allocs_per_op\":%s}", (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs)
}
END { if (n) printf "\n"; print "]" }
' "$raw" > "$json"

echo "wrote $raw"
echo "wrote $json"
