#!/bin/sh
# bench.sh — run every benchmark with -benchmem and record the results as
# JSON for the performance trajectory. Raw `go test` output is kept next to
# the JSON so regressions can be diffed by hand.
#
# Usage:
#   scripts/bench.sh [options] [output-dir]      (default output-dir: bench/)
#
# Options:
#   --check               compare the fresh run against the committed
#                         baseline (bench/baseline.json) with benchcheck
#                         and exit non-zero on a >25% ns/op regression;
#                         the comparison is also written to
#                         <output-dir>/compare.txt for CI artifacts
#   --strict              with --check, also fail when a baseline
#                         benchmark is missing from the fresh run
#   --update-baseline     copy the fresh run over bench/baseline.json
#   --benchtime D         pass -benchtime D to `go test` (default 100ms;
#                         the baseline must be recorded with the same D)
#   --count N             pass -count N to `go test`: every benchmark runs
#                         N times and all N samples land in the JSON;
#                         benchcheck compares per-benchmark medians, so
#                         N >= 3 is what makes the CI gate noise-robust
#   --baseline FILE       baseline path for --check (default bench/baseline.json)
#   --trajectory          additionally append this run to the dated
#                         trajectory file bench/BENCH_<YYYY-MM-DD>.json (a
#                         JSON array of runs, each with commit + results),
#                         so per-PR perf history accumulates in-repo
#
# The emitter (scripts/bench_emit.awk) tolerates benchmark lines without
# an iterations count (a failed benchmark prints its name alone); -cpu
# runs and --count repetitions both yield several entries per benchmark —
# the full name, cpu suffix included, is kept as the "bench" key next to
# the trimmed display "name", and benchcheck aggregates same-name samples
# by median.
set -eu

cd "$(dirname "$0")/.." || exit 1

outdir="bench"
benchtime="100ms"
count=1
baseline="bench/baseline.json"
check=0
strict=0
update=0
trajectory=0

while [ "$#" -gt 0 ]; do
    case "$1" in
        --check) check=1 ;;
        --strict) strict=1 ;;
        --update-baseline) update=1 ;;
        --trajectory) trajectory=1 ;;
        --benchtime)
            [ "$#" -ge 2 ] || { echo "bench.sh: --benchtime needs a value" >&2; exit 2; }
            benchtime="$2"; shift ;;
        --count)
            [ "$#" -ge 2 ] || { echo "bench.sh: --count needs a value" >&2; exit 2; }
            count="$2"; shift ;;
        --baseline)
            [ "$#" -ge 2 ] || { echo "bench.sh: --baseline needs a value" >&2; exit 2; }
            baseline="$2"; shift ;;
        -h|--help) sed -n '2,30p' "$0"; exit 0 ;;
        -*) echo "bench.sh: unknown option $1" >&2; exit 2 ;;
        *) outdir="$1" ;;
    esac
    shift
done

mkdir -p "$outdir"
stamp="$(date -u +%Y%m%dT%H%M%SZ)"
raw="$outdir/bench-$stamp.txt"
json="$outdir/bench-$stamp.json"

# No pipe into tee: a benchmark panic must fail this script (and the CI
# bench job), not vanish behind tee's exit status.
rc=0
go test -run 'XXX' -bench . -benchmem -benchtime "$benchtime" -count "$count" ./... >"$raw" 2>&1 || rc=$?
cat "$raw"
if [ "$rc" -ne 0 ]; then
    echo "bench.sh: go test -bench failed (exit $rc)" >&2
    exit "$rc"
fi

# Convert "BenchmarkName-8  100  12345 ns/op  67 B/op  8 allocs/op" lines
# into a JSON array with one object per benchmark line. The emitter lives
# in scripts/bench_emit.awk so cmd/benchcheck's regression test can run it
# against a fixture of real `go test -bench` output.
awk -v stamp="$stamp" -f scripts/bench_emit.awk "$raw" > "$json"

echo "wrote $raw"
echo "wrote $json"

if [ "$update" -eq 1 ]; then
    cp "$json" "$baseline"
    echo "updated $baseline"
fi

if [ "$trajectory" -eq 1 ]; then
    # Append this run to the dated trajectory file: a JSON array with one
    # object per run. The trajectory lives next to the committed baseline
    # (bench/), not in $outdir, so CI scratch dirs don't fork the history.
    traj="bench/BENCH_$(date -u +%Y-%m-%d).json"
    commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    dirty=false
    if ! git diff --quiet 2>/dev/null || ! git diff --cached --quiet 2>/dev/null; then
        dirty=true
    fi
    run="{\"ts\":\"$stamp\",\"commit\":\"$commit\",\"dirty\":$dirty,\"benchtime\":\"$benchtime\",\"results\":$(cat "$json")}"
    if [ -s "$traj" ]; then
        # The file is always written by this script with the closing "]" on
        # its own last line: drop that line and append the new run.
        tmp="$traj.tmp.$$"
        sed '$d' "$traj" > "$tmp"
        printf ',\n%s\n]\n' "$run" >> "$tmp"
        mv "$tmp" "$traj"
    else
        printf '[\n%s\n]\n' "$run" > "$traj"
    fi
    echo "appended run to $traj"
fi

if [ "$check" -eq 1 ]; then
    strict_flag=""
    [ "$strict" -eq 1 ] && strict_flag="-strict"
    # shellcheck disable=SC2086  # strict_flag is empty or a single flag
    # No pipe into tee: the comparison's exit status must fail this script.
    rc=0
    go run ./cmd/benchcheck -baseline "$baseline" -new "$json" -max-regress 25 \
        $strict_flag >"$outdir/compare.txt" 2>&1 || rc=$?
    cat "$outdir/compare.txt"
    exit "$rc"
fi
