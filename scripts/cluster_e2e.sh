#!/bin/sh
# cluster_e2e.sh — subprocess end-to-end test of the provmind cluster:
# boots 3 provmind nodes sharing one cold tier plus a provrouter in front,
# ingests instances across the nodes through the router, then
#
#   1. proves routed reads are cached (X-Provmind-Cache: hit on a repeat),
#   2. SIGKILLs one node and asserts every /core answer through the router
#      is byte-identical to its pre-kill answer (replica failover),
#   3. restarts the killed node and asserts the answers again (WAL
#      recovery + fault-in), and
#   4. runs POST /admin/rebalance and asserts the cluster still answers
#      identically with no rebalance errors.
#
# /core bodies are normalized (cache-observability fields dropped, keys
# sorted) before comparison, so "byte-identical" means the answer, not
# which caches happened to be warm. Requires curl and python3.
#
# Usage: scripts/cluster_e2e.sh [workdir]   (default: a fresh mktemp dir)
set -eu

cd "$(dirname "$0")/.." || exit 1

BASE_PORT="${BASE_PORT:-18410}"
ROUTER_PORT="$BASE_PORT"
PORT_A=$((BASE_PORT + 1))
PORT_B=$((BASE_PORT + 2))
PORT_C=$((BASE_PORT + 3))
PEERS="a=http://127.0.0.1:$PORT_A,b=http://127.0.0.1:$PORT_B,c=http://127.0.0.1:$PORT_C"
ROUTER="http://127.0.0.1:$ROUTER_PORT"
INSTANCES="${INSTANCES:-9}"

work="${1:-$(mktemp -d)}"
mkdir -p "$work"
echo "cluster_e2e: workdir $work"

fail() { echo "cluster_e2e: FAIL: $*" >&2; exit 1; }

pids=""
cleanup() {
    for p in $pids; do
        kill "$p" 2>/dev/null || true
    done
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

echo "cluster_e2e: building binaries"
go build -o "$work/provmind" ./cmd/provmind
go build -o "$work/provrouter" ./cmd/provrouter

# start_node NAME PORT — boot one member over the shared cold dir. The WAL
# syncs on every commit so a SIGKILL loses nothing acknowledged.
start_node() {
    name="$1" port="$2"
    "$work/provmind" -addr "127.0.0.1:$port" \
        -data-dir "$work/$name" -wal-sync always \
        -cold-dir "$work/cold" \
        -node-name "$name" -peers "$PEERS" -probe-interval 500ms \
        -batch 1 -batch-wait 1ms \
        >>"$work/$name.log" 2>&1 &
    pid=$!
    pids="$pids $pid"
    eval "pid_$name=$pid"
}

wait_healthy() {
    url="$1"
    i=0
    while ! curl -fsS -o /dev/null "$url/healthz" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || fail "$url never became healthy"
        sleep 0.1
    done
}

start_node a "$PORT_A"
start_node b "$PORT_B"
start_node c "$PORT_C"
"$work/provrouter" -addr "127.0.0.1:$ROUTER_PORT" -peers "$PEERS" \
    -probe-interval 500ms -dial-timeout 500ms >>"$work/router.log" 2>&1 &
pids="$pids $!"

for url in "http://127.0.0.1:$PORT_A" "http://127.0.0.1:$PORT_B" \
    "http://127.0.0.1:$PORT_C" "$ROUTER"; do
    wait_healthy "$url"
done
echo "cluster_e2e: 3 nodes + router up"

# normalize < body.json — drop cache-observability fields, sort keys.
normalize() {
    python3 -c '
import json, sys
m = json.load(sys.stdin)
m.pop("cache_hit", None)
m.pop("result_cache_hit", None)
json.dump(m, sys.stdout, sort_keys=True)
'
}

# read_core ID OUTFILE [HDRFILE] — routed /core, normalized into OUTFILE.
read_core() {
    id="$1" out="$2" hdr="${3:-$work/hdr.tmp}"
    curl -fsS -D "$hdr" -X POST "$ROUTER/core" \
        -H 'Content-Type: application/json' \
        -d "{\"instance\":\"$id\",\"query\":\"ans(x) :- R(x,y), R(y,x)\"}" \
        | normalize > "$out" \
        || fail "routed /core for $id failed"
}

echo "cluster_e2e: ingesting $INSTANCES instances through the router"
ids=""
i=0
while [ "$i" -lt "$INSTANCES" ]; do
    id="e2e-$i"
    ids="$ids $id"
    curl -fsS -X POST "$ROUTER/instances" -H 'Content-Type: application/json' \
        -d "{\"id\":\"$id\",\"initial\":\"R r1 a a\\nR r2 a b\\nR r3 b a\"}" \
        -o /dev/null || fail "create $id"
    curl -fsS -X POST "$ROUTER/instances/$id/tuples" \
        -H 'Content-Type: application/json' \
        -d "{\"facts\":[{\"rel\":\"R\",\"tag\":\"t$i\",\"values\":[\"b\",\"b\"]}]}" \
        -o /dev/null || fail "ingest into $id"
    i=$((i + 1))
done

# Record every instance's answer and its serving node; require the ring to
# actually spread the instances over more than one node.
for id in $ids; do
    read_core "$id" "$work/before.$id" "$work/hdr.$id"
done
nodes_used="$(grep -ih '^x-provmind-node:' "$work"/hdr.e2e-* | awk '{print $2}' | tr -d '\r' | sort -u | wc -l)"
[ "$nodes_used" -ge 2 ] || fail "instances landed on only $nodes_used node(s); ring not spreading"
echo "cluster_e2e: instances spread over $nodes_used nodes"

# Repeat one read: the router cache must serve it.
read_core e2e-0 "$work/repeat.e2e-0" "$work/hdr.repeat"
grep -iq '^x-provmind-cache: hit' "$work/hdr.repeat" || fail "repeat read was not a router cache hit"
cmp -s "$work/before.e2e-0" "$work/repeat.e2e-0" || fail "cache hit differs from miss"
echo "cluster_e2e: router cache hit verified"

# Evict everything through the router so every instance has a cold blob —
# the state a replica can serve once its owner is gone.
for id in $ids; do
    curl -fsS -X POST "$ROUTER/admin/evict" -H 'Content-Type: application/json' \
        -d "{\"instance\":\"$id\"}" -o /dev/null || fail "evict $id"
done

# SIGKILL the node serving e2e-0.
victim="$(grep -ih '^x-provmind-node:' "$work/hdr.e2e-0" | awk '{print $2}' | tr -d '\r')"
victim_port="$(eval echo "\$PORT_$(echo "$victim" | tr 'abc' 'ABC')")"
victim_pid="$(eval echo "\$pid_$victim")"
echo "cluster_e2e: SIGKILL node $victim (pid $victim_pid)"
kill -9 "$victim_pid"
wait "$victim_pid" 2>/dev/null || true

# Every answer must survive the kill byte-identically through the router.
for id in $ids; do
    read_core "$id" "$work/failover.$id"
    cmp -s "$work/before.$id" "$work/failover.$id" \
        || fail "core for $id changed after SIGKILL of $victim: $(cat "$work/failover.$id")"
done
echo "cluster_e2e: all $INSTANCES cores byte-identical after failover"

# Restart the killed node from its data dir; answers must hold again.
start_node "$victim" "$victim_port"
wait_healthy "http://127.0.0.1:$victim_port"
echo "cluster_e2e: node $victim rejoined"
for id in $ids; do
    read_core "$id" "$work/rejoin.$id"
    cmp -s "$work/before.$id" "$work/rejoin.$id" \
        || fail "core for $id changed after $victim rejoined: $(cat "$work/rejoin.$id")"
done
echo "cluster_e2e: all $INSTANCES cores byte-identical after rejoin"

# Rebalance heals any borrowed/misplaced copies left by the failover; the
# cluster must report no errors and keep answering identically.
curl -fsS -X POST "$ROUTER/admin/rebalance" -o "$work/rebalance.json" || fail "rebalance"
if grep -q '"errors"' "$work/rebalance.json"; then
    fail "rebalance reported errors: $(cat "$work/rebalance.json")"
fi
for id in $ids; do
    read_core "$id" "$work/rebalanced.$id"
    cmp -s "$work/before.$id" "$work/rebalanced.$id" \
        || fail "core for $id changed after rebalance"
done
echo "cluster_e2e: rebalance clean, answers unchanged"
echo "cluster_e2e: PASS"
