# bench_emit.awk — convert raw `go test -bench -benchmem` output into the
# bench JSON array bench.sh records and cmd/benchcheck compares.
#
#   awk -v stamp=<ts> -f scripts/bench_emit.awk bench-raw.txt
#
# One object per benchmark timing line. Lines without an iteration count
# (a failed benchmark prints its name alone) are skipped. Only a trailing
# -N cpu suffix is trimmed for the display "name", so dashes — and '=' or
# '/' from sub-benchmark names like join=hash/key=interned — survive
# intact; the untrimmed name is kept as "bench". Sub-benchmark names are
# arbitrary strings, so '"' and '\' are JSON-escaped rather than trusted.
# cmd/benchcheck's emitter regression test runs this script against real
# `go test -bench` output; extend that fixture when changing it.

# In a gsub replacement POSIX interprets `\\` as one literal backslash, so
# emitting two backslashes takes four in the replacement value — eight in
# the source literal. `\"` alone is undefined behavior; `\\"` is not.
function jesc(s) {
    gsub(/\\/, "\\\\\\\\", s)
    gsub(/"/, "\\\\\"", s)
    return s
}

BEGIN { print "[" }

/^Benchmark/ {
    if (NF < 4 || $2 !~ /^[0-9]+$/) next     # no iterations: not a timing line
    full = $1
    name = full
    sub(/-[0-9]+$/, "", name)                # cpu-count suffix only
    ns = "null"; bytes = "null"; allocs = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op"     && $i ~ /^[0-9.eE+-]+$/) ns = $i
        if ($(i+1) == "B/op"      && $i ~ /^[0-9.eE+-]+$/) bytes = $i
        if ($(i+1) == "allocs/op" && $i ~ /^[0-9.eE+-]+$/) allocs = $i
    }
    if (ns == "null") next
    if (n++) printf ",\n"
    printf "  {\"ts\":\"%s\",\"bench\":\"%s\",\"name\":\"%s\",\"iters\":%s", jesc(stamp), jesc(full), jesc(name), $2
    printf ",\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", ns, bytes, allocs
}

END { if (n) printf "\n"; print "]" }
