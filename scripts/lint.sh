#!/usr/bin/env bash
# lint.sh — the full lint gate, identical locally and in CI:
# gofmt, go vet, staticcheck (if installed), and the project's own
# provlint analyzer suite (built from source, so it can never be stale).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    fail=1
fi

go vet ./... || fail=1

if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./... || fail=1
else
    echo "lint.sh: staticcheck not installed, skipping" >&2
fi

go build -o /tmp/provlint ./cmd/provlint
/tmp/provlint . || fail=1

exit "$fail"
