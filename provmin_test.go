package provmin

import (
	"testing"
)

func table2() *Instance {
	d := NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "b")
	return d
}

func TestFacadeEndToEnd(t *testing.T) {
	q := MustParseQuery("ans(x) :- R(x,y), R(y,x)")
	u := SingleQuery(q)
	res, err := Eval(u, table2())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("result:\n%s", res)
	}
	pa, ok := res.Lookup(Tuple{"a"})
	if !ok || !pa.Equal(MustParsePolynomial("s1^2 + s2*s3")) {
		t.Errorf("prov(a) = %v", pa)
	}

	pmin := MinProv(u)
	if !Equivalent(pmin, u) {
		t.Error("MinProv output must be equivalent")
	}
	rel, err := CompareOnDB(pmin, u, table2())
	if err != nil {
		t.Fatal(err)
	}
	if rel != Less {
		t.Errorf("MinProv vs input = %v, want <", rel)
	}

	core, err := CorePolynomial(pa, table2(), Tuple{"a"}, q.Consts())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Provenance(pmin, table2(), Tuple{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if !core.Equal(want) {
		t.Errorf("direct core %v != MinProv provenance %v", core, want)
	}
}

func TestFacadeClassesAndOrders(t *testing.T) {
	if ClassOf(MustParseQuery("ans(x) :- R(x,x)")) != ClassCQ {
		t.Error("ClassOf CQ")
	}
	if ClassOfUnion(MustParseUnion("ans(x) :- R(x,y), x != y\nans(x) :- R(x,x)")) != ClassCUCQNeq {
		t.Error("ClassOfUnion cUCQ!=")
	}
	if ComparePolynomials(MustParsePolynomial("s1"), MustParsePolynomial("s1^2")) != Less {
		t.Error("ComparePolynomials")
	}
	if !PolynomialLE(MustParsePolynomial("s1"), MustParsePolynomial("s1 + s2")) {
		t.Error("PolynomialLE")
	}
}

func TestFacadeHomAndMinimize(t *testing.T) {
	a := MustParseQuery("ans(x) :- R(x,y), R(y,x)")
	b := MustParseQuery("ans(x) :- R(x,x)")
	if !HomomorphismExists(a, b) || HomomorphismExists(b, a) {
		t.Error("HomomorphismExists facade broken")
	}
	if Isomorphic(a, b) {
		t.Error("Isomorphic facade broken")
	}
	u := MustParseUnion("ans(x) :- R(x,y), R(y,x)\nans(x) :- R(x,x)")
	m := StandardMinimize(u)
	if len(m.Adjuncts) != 1 {
		t.Errorf("StandardMinimize = %v", m)
	}
	if !Contained(SingleQuery(b), u) {
		t.Error("Contained facade broken")
	}
}

func TestFacadeProvenanceModels(t *testing.T) {
	p := MustParsePolynomial("2*s1^2*s2 + s1*s2 + s3")
	if Why(p).Len() != 2 {
		t.Errorf("Why = %v", Why(p))
	}
	if !Trio(p).Equal(MustParsePolynomial("3*s1*s2 + s3")) {
		t.Errorf("Trio = %v", Trio(p))
	}
	if !CoreUpToCoefficients(p).Equal(MustParsePolynomial("s1*s2 + s3")) {
		t.Errorf("CoreUpToCoefficients = %v", CoreUpToCoefficients(p))
	}
}

func TestFacadeMinProvWithSteps(t *testing.T) {
	st := MinProvWithSteps(MustParseUnion("ans() :- R(x,y), R(y,z), R(z,x)"))
	if len(st.QI.Adjuncts) != 5 || len(st.QIII.Adjuncts) != 2 {
		t.Errorf("steps: QI=%d QIII=%d", len(st.QI.Adjuncts), len(st.QIII.Adjuncts))
	}
}
