package provmin

import "testing"

func TestDerivativeFacade(t *testing.T) {
	p := MustParsePolynomial("x*y^2 + 2*z")
	if got := Derivative(p, "y"); !got.Equal(MustParsePolynomial("2*x*y")) {
		t.Errorf("Derivative = %v", got)
	}
	if !DependsOn(p, "z") || DependsOn(p, "w") {
		t.Error("DependsOn wrong")
	}
	if got := Restrict(p, "x"); !got.Equal(MustParsePolynomial("2*z")) {
		t.Errorf("Restrict = %v", got)
	}
}

func TestExplainFacade(t *testing.T) {
	u := MustParseUnion("ans(x) :- R(x,y), R(y,x)")
	ds, err := Explain(u, table2(), Tuple{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("derivations = %d", len(ds))
	}
}

func TestAccessRequirementFacade(t *testing.T) {
	p := MustParsePolynomial("s1 + s2*s3")
	level := func(v string) AccessLevel {
		if v == "s1" {
			return LevelTopSecret
		}
		return LevelConfidential
	}
	if got := AccessRequirement(p, level); got != LevelConfidential {
		t.Errorf("AccessRequirement = %v, want confidential", got)
	}
	// Core provenance never raises the requirement: dominated derivations
	// are at least as restrictive.
	core := CoreUpToCoefficients(p)
	if AccessRequirement(core, level) > AccessRequirement(p, level) {
		t.Error("core must not raise the access requirement")
	}
}

func TestEvalDirectFacades(t *testing.T) {
	u := MustParseUnion("ans(x) :- R(x,y), R(y,x)")
	costs := map[string]float64{"s1": 1, "s2": 2, "s3": 3, "s4": 4}
	vals, tuples, err := EvalTrustCostDirect(u, table2(), func(tag string) float64 { return costs[tag] })
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("tuples = %v", tuples)
	}
	if vals[Tuple{"a"}.Key()] != 2 {
		t.Errorf("cost(a) = %v, want 2", vals[Tuple{"a"}.Key()])
	}
	counts, _, err := EvalCountDirect(u, table2())
	if err != nil {
		t.Fatal(err)
	}
	if counts[Tuple{"a"}.Key()] != 2 {
		t.Errorf("count(a) = %v, want 2", counts[Tuple{"a"}.Key()])
	}
}

func TestAlgebraFacade(t *testing.T) {
	plan := MustPlan(Project(
		MustPlan(Join(
			MustPlan(Scan("R", "x", "y")),
			MustPlan(Scan("R", "y", "x")),
		)), "x"))
	res, err := EvalPlan(plan, table2())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := res.Lookup(Tuple{"a"})
	if !p.Equal(MustParsePolynomial("s1^2 + s2*s3")) {
		t.Errorf("plan prov = %v", p)
	}
	u, err := CompilePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	qres, err := Eval(u, table2())
	if err != nil {
		t.Fatal(err)
	}
	if !res.SameAnnotated(qres) {
		t.Error("compiled plan must agree with plan evaluation")
	}
	// Selection with a disequality compiles into the ≠ calculus.
	sel := MustPlan(Select(MustPlan(Scan("R", "x", "y")), Condition{Op: OpNeq, Left: "x", Right: "y"}))
	cu, err := CompilePlan(sel)
	if err != nil {
		t.Fatal(err)
	}
	if ClassOfUnion(cu) != ClassCCQNeq {
		t.Errorf("compiled class = %v", ClassOfUnion(cu))
	}
}
