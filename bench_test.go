package provmin

// Benchmark harness: one testing.B benchmark per experiment of
// EXPERIMENTS.md. `go test -bench=. -benchmem` regenerates the measured
// series; `cmd/benchtables` prints them as the paper-style tables.

import (
	"fmt"
	"testing"

	"provmin/internal/apps/deletion"
	"provmin/internal/apps/prob"
	"provmin/internal/db"
	"provmin/internal/direct"
	"provmin/internal/eval"
	"provmin/internal/hom"
	"provmin/internal/minimize"
	"provmin/internal/order"
	"provmin/internal/query"
	"provmin/internal/semiring"
	"provmin/internal/workload"
)

// --- E2: evaluation with provenance (Figure 1 / Tables 2-3) ---

func BenchmarkEvalQunionTable2(b *testing.B) {
	d := workload.Table2()
	for i := 0; i < b.N; i++ {
		if _, err := eval.EvalUCQ(workload.QUnion, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalTriangleRandomGraph(b *testing.B) {
	d := db.NewInstance()
	db.NewGenerator(1).RandomGraph(d, "R", 12, 60)
	u := query.Single(workload.QHat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.EvalUCQ(u, d); err != nil {
			b.Fatal(err)
		}
	}
}

// Evaluator ablation (DESIGN.md): each arm toggles one layer of the
// evaluation stack — interned vs string join keys, cardinality statistics
// on/off, sequential vs parallel probe, hash vs nested-loop join. Arm
// names use key=value segments so the bench pipeline's name handling
// ('=' inside multiple '/' segments) stays exercised by the real suite.
func BenchmarkEvalAblation(b *testing.B) {
	d := db.NewInstance()
	db.NewGenerator(2).RandomGraph(d, "R", 10, 40)
	q := workload.ChainCQ(4)
	for _, cfg := range []struct {
		name string
		opts eval.Options
	}{
		{"join=hash/key=interned/par=seq", eval.Options{Join: eval.JoinHash}},
		{"join=hash/key=interned/par=max", eval.Options{Join: eval.JoinHash, ParallelThreshold: 1}},
		{"join=hash/key=interned/stats=off", eval.Options{Join: eval.JoinHash, NoStats: true}},
		{"join=hash/key=string", eval.Options{Join: eval.JoinHash, NoIntern: true}},
		{"join=nested-loop/order=greedy", eval.Options{Join: eval.JoinNestedLoop, Order: eval.OrderGreedy}},
		{"join=nested-loop/order=as-written", eval.Options{Join: eval.JoinNestedLoop, Order: eval.OrderAsWritten}},
		{"join=nested-loop/order=greedy/index=off", eval.Options{Join: eval.JoinNestedLoop, Order: eval.OrderGreedy, NoIndex: true}},
		{"join=nested-loop/order=as-written/index=off", eval.Options{Join: eval.JoinNestedLoop, Order: eval.OrderAsWritten, NoIndex: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.EvalCQOpts(q, d, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Parallel hash-join at a size where fan-out pays: a triangle query over a
// graph large enough that build/probe partitioning beats the sequential
// scan. par=seq and par=max share the instance, so the delta is the
// parallel machinery alone.
func BenchmarkEvalParallelLargeGraph(b *testing.B) {
	d := db.NewInstance()
	db.NewGenerator(3).RandomGraph(d, "R", 60, 1800)
	u := query.Single(workload.QHat)
	for _, cfg := range []struct {
		name string
		opts eval.Options
	}{
		{"par=seq", eval.Options{Join: eval.JoinHash, Parallelism: 1}},
		{"par=max", eval.Options{Join: eval.JoinHash, ParallelThreshold: 1}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.EvalUCQOpts(u, d, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Semiring-evaluation ablation: materialize N[X] then specialize, vs direct
// per-assignment evaluation in the target semiring.
func BenchmarkSemiringEvalAblation(b *testing.B) {
	d := db.NewInstance()
	db.NewGenerator(6).RandomGraph(d, "R", 10, 40)
	u := query.Single(workload.QHat)
	val := func(string) int { return 1 }
	b.Run("via-polynomial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.EvalInSemiring[int](u, d, semiring.Counting{}, val); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.EvalDirect[int](u, d, semiring.Counting{}, val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E4: MinProv on the Figure 3 example ---

func BenchmarkMinProvQHat(b *testing.B) {
	u := query.Single(workload.QHat)
	for i := 0; i < b.N; i++ {
		minimize.MinProv(u)
	}
}

// --- E5: Theorem 4.10 exponential blowup, Q_n sweep ---

func BenchmarkMinProvQn(b *testing.B) {
	for n := 1; n <= 3; n++ {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			q := workload.QN(n)
			var adjuncts int
			for i := 0; i < b.N; i++ {
				adjuncts = len(minimize.MinProvCQ(q).Adjuncts)
			}
			b.ReportMetric(float64(adjuncts), "adjuncts")
		})
	}
}

// --- E7: Theorem 3.12, PTIME cCQ≠ minimization vs MinProv ---

func BenchmarkCCQMinimize(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("atoms=%d", n), func(b *testing.B) {
			base := workload.ChainCQ(n / 2)
			atoms := append([]query.Atom{}, base.Atoms...)
			atoms = append(atoms, base.Atoms...)
			q := query.NewCQ(base.Head, atoms, nil).CompleteWRT(nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := minimize.MinimizeCCQ(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStandardMinimizeCQ(b *testing.B) {
	for _, n := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("star=%d", n), func(b *testing.B) {
			q := workload.StarCQ(n)
			for i := 0; i < b.N; i++ {
				if _, err := minimize.StandardMinimizeCQ(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: Theorem 5.1, direct core computation ---

func BenchmarkDirectCorePTIME(b *testing.B) {
	p := cyclePolynomial(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		direct.CoreUpToCoefficients(p)
	}
}

func BenchmarkDirectCoreExact(b *testing.B) {
	d := db.NewInstance()
	db.NewGenerator(4).RandomGraph(d, "R", 5, 18)
	p, err := eval.Provenance(query.Single(workload.CycleCQ(4)), d, db.Tuple{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := direct.CoreExact(p, d, db.Tuple{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func cyclePolynomial(b *testing.B, n int) semiring.Polynomial {
	b.Helper()
	d := db.NewInstance()
	db.NewGenerator(4).RandomGraph(d, "R", 5, 18)
	p, err := eval.Provenance(query.Single(workload.CycleCQ(n)), d, db.Tuple{})
	if err != nil {
		b.Fatal(err)
	}
	if p.IsZero() {
		b.Fatal("expected a non-zero polynomial")
	}
	return p
}

// --- E1/E10: containment & equivalence procedures ---

func BenchmarkContainmentHomCQ(b *testing.B) {
	q1 := workload.ChainCQ(6)
	q2 := workload.ChainCQ(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hom.ContainedCQ(q1, q2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEquivalenceGeneral(b *testing.B) {
	for _, n := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			q1, q2 := workload.ChainCQ(n), workload.ChainCQ(n)
			for i := 0; i < b.N; i++ {
				minimize.EquivalentCQ(q1, q2)
			}
		})
	}
}

// --- Order-relation ablation: exact matching vs greedy (DESIGN.md) ---

func BenchmarkPolyOrder(b *testing.B) {
	p := cyclePolynomial(b, 3)
	q := cyclePolynomial(b, 4)
	b.Run("matching", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			order.PolyLE(p, q)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			order.GreedyPolyLE(p, q)
		}
	})
}

// --- E8: downstream tools, full vs core provenance ---

func BenchmarkProbFullVsCore(b *testing.B) {
	p := cyclePolynomial(b, 3)
	core := direct.CoreUpToCoefficients(p)
	pr := prob.UniformProb(0.5)
	if len(semiring.Why(p).Witnesses()) > prob.MaxExactWitnesses {
		b.Skip("random polynomial exceeds the exact-inference witness cap")
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prob.Exact(p, pr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prob.Exact(core, pr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDeletionPropagation(b *testing.B) {
	d := db.NewInstance()
	db.NewGenerator(5).RandomGraph(d, "R", 8, 40)
	res, err := eval.EvalCQ(workload.QHat, d)
	if err != nil {
		b.Fatal(err)
	}
	deleted := map[string]bool{"s1": true, "s5": true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deletion.Propagate(res, deleted)
	}
}

// --- E9: canonical rewriting cost (Step I of MinProv) ---

func BenchmarkCanonicalRewriting(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("vars=%d", n+1), func(b *testing.B) {
			q := workload.ChainCQ(n)
			for i := 0; i < b.N; i++ {
				minimize.Can(q, nil)
			}
		})
	}
}
