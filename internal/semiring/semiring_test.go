package semiring

import (
	"math"
	"testing"
)

func TestEvalCounting(t *testing.T) {
	p := MustParsePolynomial("x*y^2 + 2*z")
	got := Eval[int](p, Counting{}, func(string) int { return 1 })
	if got != 3 {
		t.Errorf("derivation count = %d, want 3", got)
	}
	// With x=2, y=3, z=5: 2*9 + 2*5 = 28.
	val := map[string]int{"x": 2, "y": 3, "z": 5}
	got = Eval[int](p, Counting{}, func(v string) int { return val[v] })
	if got != 28 {
		t.Errorf("Eval = %d, want 28", got)
	}
}

func TestEvalBoolean(t *testing.T) {
	p := MustParsePolynomial("s1*s2 + s3")
	cases := []struct {
		present map[string]bool
		want    bool
	}{
		{map[string]bool{"s1": true, "s2": true}, true},
		{map[string]bool{"s3": true}, true},
		{map[string]bool{"s1": true}, false},
		{map[string]bool{}, false},
	}
	for _, c := range cases {
		got := Eval[bool](p, Boolean{}, func(v string) bool { return c.present[v] })
		if got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.present, got, c.want)
		}
	}
}

func TestEvalTropical(t *testing.T) {
	// cost(s1)=1, cost(s2)=2, cost(s3)=10: min(1+2, 10) = 3.
	p := MustParsePolynomial("s1*s2 + s3")
	cost := map[string]float64{"s1": 1, "s2": 2, "s3": 10}
	got := Eval[float64](p, Tropical{}, func(v string) float64 { return cost[v] })
	if got != 3 {
		t.Errorf("tropical Eval = %v, want 3", got)
	}
	// Zero polynomial evaluates to +inf.
	if got := Eval[float64](Zero, Tropical{}, func(string) float64 { return 0 }); got != TropicalInf {
		t.Errorf("tropical Eval(0) = %v, want inf", got)
	}
}

func TestEvalViterbi(t *testing.T) {
	p := MustParsePolynomial("s1*s2 + s3")
	conf := map[string]float64{"s1": 0.9, "s2": 0.8, "s3": 0.5}
	got := Eval[float64](p, Viterbi{}, func(v string) float64 { return conf[v] })
	if math.Abs(got-0.72) > 1e-12 {
		t.Errorf("viterbi Eval = %v, want 0.72", got)
	}
}

func TestWhyProvenance(t *testing.T) {
	// 2*s1^2*s2 + s1*s2 + s3 -> witnesses {s1,s2}, {s3}
	p := MustParsePolynomial("2*s1^2*s2 + s1*s2 + s3")
	w := Why(p)
	if w.Len() != 2 {
		t.Fatalf("Why = %v", w)
	}
	if !w.Witnesses()[0].Equal(NewMonomial("s3")) || !w.Witnesses()[1].Equal(NewMonomial("s1", "s2")) {
		t.Errorf("Why = %v", w)
	}
}

func TestWhyMinimal(t *testing.T) {
	// witnesses {s1}, {s1,s2}: minimal keeps only {s1}.
	p := MustParsePolynomial("s1 + s1*s2")
	min := Why(p).Minimal()
	if min.Len() != 1 || !min.Witnesses()[0].Equal(NewMonomial("s1")) {
		t.Errorf("Minimal = %v", min)
	}
}

func TestWhyEqual(t *testing.T) {
	a := Why(MustParsePolynomial("s1*s2 + s3"))
	b := Why(MustParsePolynomial("3*s1^4*s2 + s3^2"))
	if !a.Equal(b) {
		t.Errorf("Why must ignore exponents and coefficients: %v vs %v", a, b)
	}
	c := Why(MustParsePolynomial("s1 + s3"))
	if a.Equal(c) {
		t.Error("distinct witness families must not be equal")
	}
}

func TestTrioDropsExponentsKeepsCoefficients(t *testing.T) {
	p := MustParsePolynomial("2*s1^2*s2 + s1*s2 + s3")
	got := Trio(p)
	want := MustParsePolynomial("3*s1*s2 + s3")
	if !got.Equal(want) {
		t.Errorf("Trio = %v, want %v", got, want)
	}
}

func TestNumDerivations(t *testing.T) {
	if got := NumDerivations(MustParsePolynomial("2*s1 + s2*s3")); got != 3 {
		t.Errorf("NumDerivations = %d, want 3", got)
	}
	if got := NumDerivations(Zero); got != 0 {
		t.Errorf("NumDerivations(0) = %d, want 0", got)
	}
}

func TestWitnessSetString(t *testing.T) {
	w := Why(MustParsePolynomial("s1*s2 + s3"))
	if got := w.String(); got != "{ {s3}, {s1,s2} }" {
		t.Errorf("String = %q", got)
	}
	if got := Why(Zero).String(); got != "{}" {
		t.Errorf("String(0) = %q", got)
	}
}
