package semiring

import "sort"

// Semiring is a commutative semiring (K, +, ·, 0, 1). N[X] is the free
// commutative semiring over X, so any valuation X -> K extends uniquely to
// a semiring homomorphism N[X] -> K; Eval computes that extension. This is
// the "factorization property" that makes provenance polynomials the most
// general annotation model (Green et al. 2007), and it is why the paper's
// downstream tools (trust, probability, counting) consume polynomials.
type Semiring[T any] interface {
	Zero() T
	One() T
	Add(a, b T) T
	Mul(a, b T) T
}

// Eval applies the unique homomorphism N[X] -> K induced by the valuation
// val to the polynomial p.
func Eval[T any](p Polynomial, k Semiring[T], val func(variable string) T) T {
	acc := k.Zero()
	for _, t := range p.Terms() {
		term := k.One()
		for _, tm := range t.Monomial.Terms() {
			v := val(tm.Var)
			for i := 0; i < tm.Exp; i++ {
				term = k.Mul(term, v)
			}
		}
		for i := 0; i < t.Coef; i++ {
			acc = k.Add(acc, term)
		}
	}
	return acc
}

// Counting is the semiring (N, +, ·, 0, 1); evaluating a polynomial under
// the all-ones valuation yields the number of derivations (bag semantics
// multiplicity).
type Counting struct{}

func (Counting) Zero() int        { return 0 }
func (Counting) One() int         { return 1 }
func (Counting) Add(a, b int) int { return a + b }
func (Counting) Mul(a, b int) int { return a * b }

// Boolean is the semiring (B, ∨, ∧, false, true); set semantics.
type Boolean struct{}

func (Boolean) Zero() bool         { return false }
func (Boolean) One() bool          { return true }
func (Boolean) Add(a, b bool) bool { return a || b }
func (Boolean) Mul(a, b bool) bool { return a && b }

// Tropical is the min-plus semiring (R∪{+inf}, min, +, +inf, 0), used for
// cost-based trust assessment: the value of a tuple is the cheapest
// derivation cost.
type Tropical struct{}

// TropicalInf is the additive unit of the tropical semiring.
const TropicalInf = 1e308

func (Tropical) Zero() float64 { return TropicalInf }
func (Tropical) One() float64  { return 0 }
func (Tropical) Add(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func (Tropical) Mul(a, b float64) float64 { return a + b }

// Viterbi is the semiring ([0,1], max, ·, 0, 1), used for confidence-based
// trust assessment: the value of a tuple is its most trusted derivation.
type Viterbi struct{}

func (Viterbi) Zero() float64 { return 0 }
func (Viterbi) One() float64  { return 1 }
func (Viterbi) Add(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func (Viterbi) Mul(a, b float64) float64 { return a * b }

// WitnessSet is a set of variable sets: the Why-provenance of a tuple
// (Buneman, Khanna, Tan 2001). The paper (§7) notes Why-provenance is the
// image of N[X] under dropping exponents and coefficients.
type WitnessSet struct {
	witnesses []Monomial // support monomials, canonical order, distinct
}

// Why drops exponents and coefficients from p, yielding its Why-provenance.
func Why(p Polynomial) WitnessSet {
	seen := map[string]bool{}
	var ws []Monomial
	for _, t := range p.Terms() {
		s := t.Monomial.Support()
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			ws = append(ws, s)
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Compare(ws[j]) < 0 })
	return WitnessSet{witnesses: ws}
}

// Witnesses returns the distinct witness sets in canonical order.
func (w WitnessSet) Witnesses() []Monomial { return w.witnesses }

// Len returns the number of witnesses.
func (w WitnessSet) Len() int { return len(w.witnesses) }

// Equal reports set equality of witness families.
func (w WitnessSet) Equal(x WitnessSet) bool {
	if len(w.witnesses) != len(x.witnesses) {
		return false
	}
	for i := range w.witnesses {
		if !w.witnesses[i].Equal(x.witnesses[i]) {
			return false
		}
	}
	return true
}

// Minimal returns the witnesses minimal under set inclusion — the
// PosBool[X] normal form (absorption law applied). The paper observes that
// core provenance prunes exactly the non-minimal witnesses, so
// Minimal(Why(p)) == Why(core(p)).
func (w WitnessSet) Minimal() WitnessSet {
	var out []Monomial
	for i, m := range w.witnesses {
		dominated := false
		for j, n := range w.witnesses {
			if i != j && n.Divides(m) && !n.Equal(m) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, m)
		}
	}
	return WitnessSet{witnesses: out}
}

// String renders the witness family as "{ {s1,s2}, {s3} }".
func (w WitnessSet) String() string {
	if len(w.witnesses) == 0 {
		return "{}"
	}
	s := "{ "
	for i, m := range w.witnesses {
		if i > 0 {
			s += ", "
		}
		s += "{"
		for j, v := range m.Vars() {
			if j > 0 {
				s += ","
			}
			s += v
		}
		s += "}"
	}
	return s + " }"
}

// Trio drops exponents but keeps coefficients, yielding the Trio lineage
// representation (Benjelloun et al.): polynomials with no exponents.
func Trio(p Polynomial) Polynomial {
	out := Polynomial{}
	for _, t := range p.Terms() {
		out = out.AddMonomial(t.Monomial.Support(), t.Coef)
	}
	return out
}

// NumDerivations counts derivations of p under the all-ones valuation: the
// value of the tuple under bag semantics.
func NumDerivations(p Polynomial) int {
	return Eval[int](p, Counting{}, func(string) int { return 1 })
}
