package semiring

import "testing"

// FuzzParsePolynomial checks the polynomial parser never panics and that
// accepted inputs round-trip through the canonical printer.
func FuzzParsePolynomial(f *testing.F) {
	seeds := []string{
		"0", "1", "s1", "2*s1^2*s2 + s3", "x*y^2 + 2*z",
		"s1*s1*s2 + s3 + s3", " 2 * s1 ^ 2 + s2 ", "0*s1 + s2",
		"", "+", "^2", "s1 s2", "9999999*s1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParsePolynomial(input)
		if err != nil {
			return
		}
		q, err := ParsePolynomial(p.String())
		if err != nil {
			t.Fatalf("round trip parse failed for %q -> %q: %v", input, p.String(), err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip not equal: %v vs %v", p, q)
		}
		// The expanded form must agree as well (when it stays reasonable).
		if p.NumOccurrences() < 100 && p.Size() < 1000 {
			e, err := ParsePolynomial(p.ExpandedString())
			if err != nil || !e.Equal(p) {
				t.Fatalf("expanded round trip failed: %v (%v)", p, err)
			}
		}
	})
}
