package semiring

// Derivative returns the formal partial derivative ∂p/∂v of the provenance
// polynomial with respect to the annotation variable v. In provenance
// terms, Green et al. relate derivatives to incremental view maintenance:
// the derivative collects (with multiplicity) the ways the remaining tuples
// combine with one occurrence of v, quantifying the sensitivity of the
// output to v's multiplicity.
func Derivative(p Polynomial, v string) Polynomial {
	out := Polynomial{}
	for _, t := range p.Terms() {
		e := t.Monomial.Exponent(v)
		if e == 0 {
			continue
		}
		exp := map[string]int{}
		for _, tm := range t.Monomial.Terms() {
			exp[tm.Var] = tm.Exp
		}
		exp[v] = e - 1
		out = out.AddMonomial(monomialFromMap(exp), t.Coef*e)
	}
	return out
}

// DependsOn reports whether any monomial of p mentions v, i.e. whether the
// output tuple's annotation is sensitive to the input tuple tagged v at all.
func DependsOn(p Polynomial, v string) bool {
	for _, t := range p.Terms() {
		if t.Monomial.Exponent(v) > 0 {
			return true
		}
	}
	return false
}

// Restrict sets variable v to zero: every monomial mentioning v is dropped.
// This is the polynomial-level effect of deleting the input tuple tagged v.
func Restrict(p Polynomial, v string) Polynomial {
	out := Polynomial{}
	for _, t := range p.Terms() {
		if t.Monomial.Exponent(v) == 0 {
			out = out.AddMonomial(t.Monomial, t.Coef)
		}
	}
	return out
}

// AccessLevel is a clearance in the access-control semiring of Foster,
// Green & Tannen: the annotation of an output tuple is the minimum
// clearance needed to see some derivation of it.
type AccessLevel int

// Clearances, ordered from most permissive to most restrictive. LevelNone
// (0, the semiring's zero) means "no clearance suffices" (underivable).
const (
	LevelPublic AccessLevel = iota + 1
	LevelConfidential
	LevelSecret
	LevelTopSecret
	LevelNone AccessLevel = 0
)

// String names the level.
func (l AccessLevel) String() string {
	switch l {
	case LevelPublic:
		return "public"
	case LevelConfidential:
		return "confidential"
	case LevelSecret:
		return "secret"
	case LevelTopSecret:
		return "top-secret"
	}
	return "none"
}

// Access is the access-control semiring: addition picks the more permissive
// (lower) requirement among derivations, multiplication the more restrictive
// (higher) requirement among joined tuples. Zero is LevelNone, one is
// LevelPublic.
type Access struct{}

// Zero returns LevelNone (underivable).
func (Access) Zero() AccessLevel { return LevelNone }

// One returns LevelPublic (no restriction).
func (Access) One() AccessLevel { return LevelPublic }

// Add picks the more permissive derivation.
func (Access) Add(a, b AccessLevel) AccessLevel {
	if a == LevelNone {
		return b
	}
	if b == LevelNone {
		return a
	}
	if a < b {
		return a
	}
	return b
}

// Mul picks the more restrictive requirement.
func (Access) Mul(a, b AccessLevel) AccessLevel {
	if a == LevelNone || b == LevelNone {
		return LevelNone
	}
	if a > b {
		return a
	}
	return b
}
