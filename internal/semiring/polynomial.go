package semiring

import (
	"slices"
	"sort"
	"strconv"
	"strings"
)

// MonomialTerm is one monomial together with its coefficient (number of
// occurrences of the monomial, i.e. number of assignments that yielded it).
type MonomialTerm struct {
	Monomial Monomial
	Coef     int // always >= 1 in a canonical polynomial
}

// Polynomial is an element of the provenance semiring N[X]: a finite
// multiset of monomials represented as coefficient-tagged canonical terms.
// The zero value is the zero polynomial. Polynomials are immutable value
// types; all operations return new polynomials.
type Polynomial struct {
	terms []MonomialTerm // sorted by Monomial.Compare, coefficients >= 1
}

// Zero is the additive unit of N[X].
var Zero = Polynomial{}

// OnePoly returns the multiplicative unit polynomial (the monomial 1 with
// coefficient 1).
func OnePoly() Polynomial {
	return Polynomial{terms: []MonomialTerm{{Monomial: One, Coef: 1}}}
}

// Var returns the polynomial consisting of the single variable v.
func Var(v string) Polynomial {
	return FromMonomial(NewMonomial(v), 1)
}

// FromMonomial returns coef·m as a polynomial. A non-positive coefficient
// yields the zero polynomial.
func FromMonomial(m Monomial, coef int) Polynomial {
	if coef <= 0 {
		return Polynomial{}
	}
	return Polynomial{terms: []MonomialTerm{{Monomial: m, Coef: coef}}}
}

// FromMonomials sums a list of monomial occurrences (each contributing
// coefficient 1), the way Def. 2.12 accumulates one monomial per assignment.
func FromMonomials(ms []Monomial) Polynomial {
	p := Polynomial{}
	for _, m := range ms {
		p = p.AddMonomial(m, 1)
	}
	return p
}

// Terms returns the canonical term sequence. The slice must not be modified.
func (p Polynomial) Terms() []MonomialTerm { return p.terms }

// IsZero reports whether p is the zero polynomial.
func (p Polynomial) IsZero() bool { return len(p.terms) == 0 }

// NumMonomials returns the number of distinct monomials.
func (p Polynomial) NumMonomials() int { return len(p.terms) }

// NumOccurrences returns the total number of monomial occurrences (the sum
// of coefficients); under Def. 2.12 this equals the number of assignments.
func (p Polynomial) NumOccurrences() int {
	n := 0
	for _, t := range p.terms {
		n += t.Coef
	}
	return n
}

// Size returns the total number of variable occurrences across all monomial
// occurrences (degree-weighted); a natural measure of provenance size used
// by the compactness experiments.
func (p Polynomial) Size() int {
	n := 0
	for _, t := range p.terms {
		n += t.Coef * t.Monomial.Degree()
	}
	return n
}

// Coefficient returns the coefficient of monomial m in p (0 if absent).
func (p Polynomial) Coefficient(m Monomial) int {
	i := sort.Search(len(p.terms), func(i int) bool { return p.terms[i].Monomial.Compare(m) >= 0 })
	if i < len(p.terms) && p.terms[i].Monomial.Equal(m) {
		return p.terms[i].Coef
	}
	return 0
}

// Monomials returns the distinct monomials in canonical order.
func (p Polynomial) Monomials() []Monomial {
	out := make([]Monomial, len(p.terms))
	for i, t := range p.terms {
		out[i] = t.Monomial
	}
	return out
}

// MonomialOccurrences expands p into the list of monomial occurrences with
// multiplicity, matching the paper's expanded form where each monomial
// occurrence corresponds to one assignment.
func (p Polynomial) MonomialOccurrences() []Monomial {
	out := make([]Monomial, 0, p.NumOccurrences())
	for _, t := range p.terms {
		for i := 0; i < t.Coef; i++ {
			out = append(out, t.Monomial)
		}
	}
	return out
}

// Vars returns the sorted set of annotation variables appearing in p.
func (p Polynomial) Vars() []string {
	seen := map[string]bool{}
	for _, t := range p.terms {
		for _, tm := range t.Monomial.Terms() {
			seen[tm.Var] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Degree returns the maximum monomial degree (0 for the zero polynomial).
func (p Polynomial) Degree() int {
	d := 0
	for _, t := range p.terms {
		if t.Monomial.Degree() > d {
			d = t.Monomial.Degree()
		}
	}
	return d
}

// AddMonomial returns p + coef·m.
func (p Polynomial) AddMonomial(m Monomial, coef int) Polynomial {
	if coef <= 0 {
		return p
	}
	i := sort.Search(len(p.terms), func(i int) bool { return p.terms[i].Monomial.Compare(m) >= 0 })
	out := make([]MonomialTerm, 0, len(p.terms)+1)
	out = append(out, p.terms[:i]...)
	if i < len(p.terms) && p.terms[i].Monomial.Equal(m) {
		out = append(out, MonomialTerm{Monomial: m, Coef: p.terms[i].Coef + coef})
		out = append(out, p.terms[i+1:]...)
	} else {
		out = append(out, MonomialTerm{Monomial: m, Coef: coef})
		out = append(out, p.terms[i:]...)
	}
	return Polynomial{terms: out}
}

// AddTerms returns p plus the sum of the given monomial occurrences, which
// need not be sorted or distinct. One sort plus one merge replaces the
// per-occurrence merge-copy that repeated AddMonomial/Add calls would do,
// so accumulating k contributions costs O(k log k) instead of O(k²). The
// input slice is not modified.
func (p Polynomial) AddTerms(ts []MonomialTerm) Polynomial {
	if len(ts) == 0 {
		return p
	}
	s := make([]MonomialTerm, len(ts))
	copy(s, ts)
	slices.SortFunc(s, func(a, b MonomialTerm) int { return a.Monomial.Compare(b.Monomial) })
	w := 0
	for i := 1; i < len(s); i++ {
		if s[i].Monomial.Compare(s[w].Monomial) == 0 {
			s[w].Coef += s[i].Coef
		} else {
			w++
			s[w] = s[i]
		}
	}
	return p.Add(Polynomial{terms: s[:w+1]})
}

// Add returns p + q.
func (p Polynomial) Add(q Polynomial) Polynomial {
	if p.IsZero() {
		return q
	}
	if q.IsZero() {
		return p
	}
	out := make([]MonomialTerm, 0, len(p.terms)+len(q.terms))
	i, j := 0, 0
	for i < len(p.terms) && j < len(q.terms) {
		switch c := p.terms[i].Monomial.Compare(q.terms[j].Monomial); {
		case c < 0:
			out = append(out, p.terms[i])
			i++
		case c > 0:
			out = append(out, q.terms[j])
			j++
		default:
			out = append(out, MonomialTerm{Monomial: p.terms[i].Monomial, Coef: p.terms[i].Coef + q.terms[j].Coef})
			i++
			j++
		}
	}
	out = append(out, p.terms[i:]...)
	out = append(out, q.terms[j:]...)
	return Polynomial{terms: out}
}

// Mul returns p·q (distributing and collecting like monomials).
func (p Polynomial) Mul(q Polynomial) Polynomial {
	if p.IsZero() || q.IsZero() {
		return Polynomial{}
	}
	acc := Polynomial{}
	for _, a := range p.terms {
		for _, b := range q.terms {
			acc = acc.AddMonomial(a.Monomial.Mul(b.Monomial), a.Coef*b.Coef)
		}
	}
	return acc
}

// Scale returns k·p. Non-positive k yields the zero polynomial.
func (p Polynomial) Scale(k int) Polynomial {
	if k <= 0 {
		return Polynomial{}
	}
	if k == 1 {
		return p
	}
	out := make([]MonomialTerm, len(p.terms))
	for i, t := range p.terms {
		out[i] = MonomialTerm{Monomial: t.Monomial, Coef: t.Coef * k}
	}
	return Polynomial{terms: out}
}

// Equal reports semantic equality of polynomials.
func (p Polynomial) Equal(q Polynomial) bool {
	if len(p.terms) != len(q.terms) {
		return false
	}
	for i := range p.terms {
		if p.terms[i].Coef != q.terms[i].Coef || !p.terms[i].Monomial.Equal(q.terms[i].Monomial) {
			return false
		}
	}
	return true
}

// Rename returns the polynomial with every variable v replaced by f(v).
// Distinct variables may collapse onto one name; the result is
// re-canonicalized. Used by the general-annotation experiments (§6) where
// abstract tags are replaced by arbitrary annotations.
func (p Polynomial) Rename(f func(string) string) Polynomial {
	out := Polynomial{}
	for _, t := range p.terms {
		exp := map[string]int{}
		for _, tm := range t.Monomial.Terms() {
			exp[f(tm.Var)] += tm.Exp
		}
		out = out.AddMonomial(monomialFromMap(exp), t.Coef)
	}
	return out
}

// String renders the polynomial in compact canonical form, e.g.
// "2*s1^2*s2 + s3". The zero polynomial renders as "0".
func (p Polynomial) String() string {
	if len(p.terms) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, t := range p.terms {
		if i > 0 {
			b.WriteString(" + ")
		}
		if t.Coef > 1 {
			b.WriteString(strconv.Itoa(t.Coef))
			if !t.Monomial.IsOne() {
				b.WriteByte('*')
				b.WriteString(t.Monomial.String())
			}
		} else {
			b.WriteString(t.Monomial.String())
		}
	}
	return b.String()
}

// ExpandedString renders the polynomial in the paper's fully expanded form
// with unit coefficients and exponents, e.g. "s1*s1*s2 + s3 + s3".
func (p Polynomial) ExpandedString() string {
	if len(p.terms) == 0 {
		return "0"
	}
	parts := make([]string, 0, p.NumOccurrences())
	for _, m := range p.MonomialOccurrences() {
		parts = append(parts, m.ExpandedString())
	}
	return strings.Join(parts, " + ")
}
