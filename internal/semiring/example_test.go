package semiring_test

import (
	"fmt"

	"provmin/internal/semiring"
)

func ExamplePolynomial_String() {
	p := semiring.MustParsePolynomial("s1*s1*s2 + s3 + s3")
	fmt.Println(p)                  // compact form
	fmt.Println(p.ExpandedString()) // the paper's expanded form
	// Output:
	// 2*s3 + s1^2*s2
	// s3 + s3 + s1*s1*s2
}

func ExampleEval() {
	// The factorization property: one polynomial, many semirings.
	p := semiring.MustParsePolynomial("s1*s2 + s3")
	count := semiring.Eval[int](p, semiring.Counting{}, func(string) int { return 1 })
	derivable := semiring.Eval[bool](p, semiring.Boolean{}, func(v string) bool { return v != "s3" })
	cost := semiring.Eval[float64](p, semiring.Tropical{}, func(v string) float64 {
		return map[string]float64{"s1": 1, "s2": 2, "s3": 10}[v]
	})
	fmt.Println(count, derivable, cost)
	// Output:
	// 2 true 3
}

func ExampleWhy() {
	p := semiring.MustParsePolynomial("2*s1^2*s2 + s1*s2 + s3")
	fmt.Println(semiring.Why(p))
	fmt.Println(semiring.Trio(p))
	// Output:
	// { {s3}, {s1,s2} }
	// s3 + 3*s1*s2
}

func ExampleMonomial_Divides() {
	// The order relation on monomials is multiset inclusion (Def. 2.15).
	m := semiring.NewMonomial("x", "y")
	n := semiring.NewMonomial("x", "y", "y")
	fmt.Println(m.Divides(n), n.Divides(m))
	// Output:
	// true false
}

func ExampleDerivative() {
	p := semiring.MustParsePolynomial("x*y^2 + 2*z")
	fmt.Println(semiring.Derivative(p, "y"))
	// Output:
	// 2*x*y
}
