package semiring

import "testing"

func TestParsePolynomialRoundTrip(t *testing.T) {
	cases := []string{
		"0",
		"1",
		"s1",
		"2*s1",
		"s1^2",
		"2*s1^2*s2 + s3",
		"s1*s2 + s1*s2", // collects to 2*s1*s2
		"x*y^2 + 2*z",
	}
	for _, in := range cases {
		p, err := ParsePolynomial(in)
		if err != nil {
			t.Errorf("ParsePolynomial(%q): %v", in, err)
			continue
		}
		q, err := ParsePolynomial(p.String())
		if err != nil {
			t.Errorf("re-parse %q: %v", p.String(), err)
			continue
		}
		if !p.Equal(q) {
			t.Errorf("round trip %q: %v != %v", in, p, q)
		}
	}
}

func TestParsePolynomialExpandedForm(t *testing.T) {
	p := MustParsePolynomial("s1*s1*s2 + s3 + s3")
	want := MustParsePolynomial("s1^2*s2 + 2*s3")
	if !p.Equal(want) {
		t.Errorf("expanded parse = %v, want %v", p, want)
	}
}

func TestParsePolynomialWhitespace(t *testing.T) {
	p := MustParsePolynomial("  2 * s1 ^ 2  +  s2 ")
	want := MustParsePolynomial("2*s1^2+s2")
	if !p.Equal(want) {
		t.Errorf("whitespace parse = %v, want %v", p, want)
	}
}

func TestParsePolynomialZeroCoef(t *testing.T) {
	p := MustParsePolynomial("0*s1 + s2")
	want := Var("s2")
	if !p.Equal(want) {
		t.Errorf("zero-coef parse = %v, want %v", p, want)
	}
}

func TestParsePolynomialErrors(t *testing.T) {
	bad := []string{"", "+", "s1 +", "s1 ^", "^2", "s1 s2", "* s1", "s1 + + s2"}
	for _, in := range bad {
		if _, err := ParsePolynomial(in); err == nil {
			t.Errorf("ParsePolynomial(%q) should fail", in)
		}
	}
}

func TestParsePolynomialUnderscoreNames(t *testing.T) {
	p := MustParsePolynomial("tup_1*tup_2")
	if p.NumMonomials() != 1 || !p.Monomials()[0].Equal(NewMonomial("tup_1", "tup_2")) {
		t.Errorf("parse = %v", p)
	}
}
