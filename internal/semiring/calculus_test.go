package semiring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDerivativeBasics(t *testing.T) {
	// d/dx (x*y^2 + 2z) = y^2 ; d/dy = 2*x*y ; d/dz = 2.
	p := MustParsePolynomial("x*y^2 + 2*z")
	if got := Derivative(p, "x"); !got.Equal(MustParsePolynomial("y^2")) {
		t.Errorf("d/dx = %v", got)
	}
	if got := Derivative(p, "y"); !got.Equal(MustParsePolynomial("2*x*y")) {
		t.Errorf("d/dy = %v", got)
	}
	if got := Derivative(p, "z"); !got.Equal(MustParsePolynomial("2")) {
		t.Errorf("d/dz = %v", got)
	}
	if got := Derivative(p, "w"); !got.IsZero() {
		t.Errorf("d/dw = %v", got)
	}
}

func TestDerivativeLinearity(t *testing.T) {
	f := func(a, b quickPoly) bool {
		l := Derivative(a.P.Add(b.P), "s1")
		r := Derivative(a.P, "s1").Add(Derivative(b.P, "s1"))
		return l.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDerivativeProductRule(t *testing.T) {
	f := func(a, b quickPoly) bool {
		l := Derivative(a.P.Mul(b.P), "s1")
		r := Derivative(a.P, "s1").Mul(b.P).Add(a.P.Mul(Derivative(b.P, "s1")))
		return l.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDerivativeNumericCheck(t *testing.T) {
	// Evaluate p at s1=k and s1=k+1 (others fixed): the difference must
	// equal the derivative evaluated somewhere in between for linear-in-s1
	// parts; instead verify via the exact finite-difference identity for
	// polynomials of s1-degree <= 2: p(k+1) - p(k) = p'(k) + (p''/2 terms).
	// Simpler exact check: compare against symbolic expansion on a fixed
	// example. p = 3*s1^2*s2: p' = 6*s1*s2; at s1=5, s2=7: 210.
	p := MustParsePolynomial("3*s1^2*s2")
	d := Derivative(p, "s1")
	val := func(v string) int {
		if v == "s1" {
			return 5
		}
		return 7
	}
	if got := Eval[int](d, Counting{}, val); got != 210 {
		t.Errorf("p'(5,7) = %d, want 210", got)
	}
}

func TestDependsOnAndRestrict(t *testing.T) {
	p := MustParsePolynomial("s1*s2 + s3")
	if !DependsOn(p, "s1") || DependsOn(p, "s9") {
		t.Error("DependsOn wrong")
	}
	if got := Restrict(p, "s1"); !got.Equal(MustParsePolynomial("s3")) {
		t.Errorf("Restrict = %v", got)
	}
	if got := Restrict(p, "s9"); !got.Equal(p) {
		t.Errorf("Restrict by absent var must be identity: %v", got)
	}
}

func TestRestrictMatchesBooleanDeletion(t *testing.T) {
	// Restrict(p, v) is non-zero iff the tuple survives deleting v.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		p := genPoly(r, 4, 3)
		for _, v := range []string{"s1", "s2"} {
			restricted := !Restrict(p, v).IsZero()
			survived := Eval[bool](p, Boolean{}, func(x string) bool { return x != v })
			if restricted != survived {
				t.Fatalf("poly %v var %s: Restrict=%v boolean=%v", p, v, restricted, survived)
			}
		}
	}
}

func TestAccessSemiring(t *testing.T) {
	// A tuple derivable publicly OR via a secret join is public.
	p := MustParsePolynomial("s1 + s2*s3")
	level := func(v string) AccessLevel {
		switch v {
		case "s1":
			return LevelPublic
		case "s2":
			return LevelSecret
		default:
			return LevelConfidential
		}
	}
	if got := Eval[AccessLevel](p, Access{}, level); got != LevelPublic {
		t.Errorf("level = %v, want public", got)
	}
	// Remove the public derivation: the join requires the max of its parts.
	q := MustParsePolynomial("s2*s3")
	if got := Eval[AccessLevel](q, Access{}, level); got != LevelSecret {
		t.Errorf("level = %v, want secret", got)
	}
	// Underivable.
	if got := Eval[AccessLevel](Zero, Access{}, level); got != LevelNone {
		t.Errorf("level = %v, want none", got)
	}
}

func TestAccessSemiringLaws(t *testing.T) {
	levels := []AccessLevel{LevelNone, LevelPublic, LevelConfidential, LevelSecret, LevelTopSecret}
	k := Access{}
	for _, a := range levels {
		if k.Add(a, k.Zero()) != a {
			t.Errorf("additive unit broken for %v", a)
		}
		if k.Mul(a, k.One()) != a {
			t.Errorf("multiplicative unit broken for %v", a)
		}
		if k.Mul(a, k.Zero()) != k.Zero() {
			t.Errorf("annihilation broken for %v", a)
		}
		for _, b := range levels {
			if k.Add(a, b) != k.Add(b, a) || k.Mul(a, b) != k.Mul(b, a) {
				t.Errorf("commutativity broken for %v, %v", a, b)
			}
			for _, c := range levels {
				if k.Mul(a, k.Add(b, c)) != k.Add(k.Mul(a, b), k.Mul(a, c)) {
					t.Errorf("distributivity broken for %v, %v, %v", a, b, c)
				}
			}
		}
	}
}

func TestAccessLevelString(t *testing.T) {
	if LevelPublic.String() != "public" || LevelNone.String() != "none" || LevelTopSecret.String() != "top-secret" {
		t.Error("AccessLevel.String misnames levels")
	}
}
