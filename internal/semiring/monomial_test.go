package semiring

import (
	"testing"
)

func TestNewMonomialCanonical(t *testing.T) {
	m := NewMonomial("s2", "s1", "s2")
	want := []Term{{"s1", 1}, {"s2", 2}}
	got := m.Terms()
	if len(got) != len(want) {
		t.Fatalf("terms = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("term[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMonomialOne(t *testing.T) {
	if !One.IsOne() {
		t.Error("One.IsOne() = false")
	}
	if One.Degree() != 0 {
		t.Errorf("One.Degree() = %d, want 0", One.Degree())
	}
	if One.String() != "1" {
		t.Errorf("One.String() = %q, want \"1\"", One.String())
	}
	if got := NewMonomial(); !got.IsOne() {
		t.Error("NewMonomial() should be the unit")
	}
}

func TestMonomialDegreeAndVars(t *testing.T) {
	m := NewMonomial("s1", "s1", "s2", "s3")
	if m.Degree() != 4 {
		t.Errorf("Degree = %d, want 4", m.Degree())
	}
	if m.NumVars() != 3 {
		t.Errorf("NumVars = %d, want 3", m.NumVars())
	}
	if got := m.Exponent("s1"); got != 2 {
		t.Errorf("Exponent(s1) = %d, want 2", got)
	}
	if got := m.Exponent("s9"); got != 0 {
		t.Errorf("Exponent(s9) = %d, want 0", got)
	}
	vars := m.Vars()
	if len(vars) != 3 || vars[0] != "s1" || vars[1] != "s2" || vars[2] != "s3" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestMonomialMul(t *testing.T) {
	a := NewMonomial("s1", "s2")
	b := NewMonomial("s2", "s3")
	got := a.Mul(b)
	want := NewMonomial("s1", "s2", "s2", "s3")
	if !got.Equal(want) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
	if !a.Mul(One).Equal(a) || !One.Mul(a).Equal(a) {
		t.Error("multiplication by One must be identity")
	}
}

func TestMonomialMulCommutes(t *testing.T) {
	a := NewMonomial("x", "y", "y")
	b := NewMonomial("y", "z")
	if !a.Mul(b).Equal(b.Mul(a)) {
		t.Error("Mul must commute")
	}
}

func TestMonomialSupport(t *testing.T) {
	m := NewMonomial("s1", "s1", "s2")
	s := m.Support()
	if !s.Equal(NewMonomial("s1", "s2")) {
		t.Errorf("Support = %v", s)
	}
	if !s.IsSupport() {
		t.Error("Support result must be a support monomial")
	}
	if m.IsSupport() {
		t.Error("s1^2*s2 is not a support monomial")
	}
}

func TestMonomialDivides(t *testing.T) {
	cases := []struct {
		m, n []string
		want bool
	}{
		{nil, nil, true},
		{nil, []string{"s1"}, true},
		{[]string{"s1"}, nil, false},
		{[]string{"s1"}, []string{"s1"}, true},
		{[]string{"s1"}, []string{"s1", "s1"}, true},
		{[]string{"s1", "s1"}, []string{"s1"}, false},
		{[]string{"s1", "s2"}, []string{"s1", "s2", "s3"}, true},
		{[]string{"s1", "s3"}, []string{"s1", "s2"}, false},
		// paper Example 2.16 building block: s3 divides s2*s3
		{[]string{"s3"}, []string{"s2", "s3"}, true},
		// and s3*s4 does not divide s1*s2
		{[]string{"s3", "s4"}, []string{"s1", "s2"}, false},
	}
	for _, c := range cases {
		m, n := NewMonomial(c.m...), NewMonomial(c.n...)
		if got := m.Divides(n); got != c.want {
			t.Errorf("%v.Divides(%v) = %v, want %v", m, n, got, c.want)
		}
	}
}

func TestMonomialProperlyDivides(t *testing.T) {
	a := NewMonomial("s1")
	b := NewMonomial("s1", "s2")
	if !a.ProperlyDivides(b) {
		t.Error("s1 should properly divide s1*s2")
	}
	if a.ProperlyDivides(a) {
		t.Error("a monomial must not properly divide itself")
	}
}

func TestMonomialCompareTotalOrder(t *testing.T) {
	ms := []Monomial{
		One,
		NewMonomial("s1"),
		NewMonomial("s2"),
		NewMonomial("s1", "s2"),
		NewMonomial("s1", "s1"),
		NewMonomial("s1", "s1", "s2"),
	}
	for i := range ms {
		for j := range ms {
			c := ms[i].Compare(ms[j])
			switch {
			case i == j && c != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", ms[i], ms[j], c)
			case i < j && c >= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", ms[i], ms[j], c)
			case i > j && c <= 0:
				t.Errorf("Compare(%v,%v) = %d, want >0", ms[i], ms[j], c)
			}
		}
	}
}

func TestMonomialString(t *testing.T) {
	m := NewMonomial("s1", "s1", "s2")
	if got := m.String(); got != "s1^2*s2" {
		t.Errorf("String = %q", got)
	}
	if got := m.ExpandedString(); got != "s1*s1*s2" {
		t.Errorf("ExpandedString = %q", got)
	}
}

func TestMonomialOccurrences(t *testing.T) {
	m := NewMonomial("b", "a", "b")
	occ := m.Occurrences()
	if len(occ) != 3 || occ[0] != "a" || occ[1] != "b" || occ[2] != "b" {
		t.Errorf("Occurrences = %v", occ)
	}
}

func TestMonomialFromExponents(t *testing.T) {
	m := MonomialFromExponents(map[string]int{"x": 2, "y": 0, "z": -1, "w": 1})
	want := NewMonomial("x", "x", "w")
	if !m.Equal(want) {
		t.Errorf("MonomialFromExponents = %v, want %v", m, want)
	}
}
