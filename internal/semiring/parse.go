package semiring

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParsePolynomial parses the textual polynomial syntax produced by
// Polynomial.String and Polynomial.ExpandedString:
//
//	poly  := term ('+' term)*
//	term  := coef | coef '*' mono | mono
//	mono  := factor ('*' factor)*
//	factor:= var | var '^' exp
//	var   := letter (letter|digit|'_')*
//
// Whitespace is insignificant. "0" denotes the zero polynomial and "1" the
// unit monomial. This is the input format of `provmin core -poly`.
func ParsePolynomial(s string) (Polynomial, error) {
	p := &polyParser{in: s}
	poly, err := p.parse()
	if err != nil {
		return Polynomial{}, fmt.Errorf("parse polynomial %q: %w", s, err)
	}
	return poly, nil
}

// MustParsePolynomial is ParsePolynomial that panics on error; intended for
// tests and package examples with literal inputs.
func MustParsePolynomial(s string) Polynomial {
	p, err := ParsePolynomial(s)
	if err != nil {
		panic(err)
	}
	return p
}

type polyParser struct {
	in  string
	pos int
}

func (p *polyParser) parse() (Polynomial, error) {
	poly := Polynomial{}
	for {
		coef, m, err := p.parseTerm()
		if err != nil {
			return Polynomial{}, err
		}
		if coef > 0 {
			poly = poly.AddMonomial(m, coef)
		}
		p.skipSpace()
		if p.pos >= len(p.in) {
			return poly, nil
		}
		if p.in[p.pos] != '+' {
			return Polynomial{}, fmt.Errorf("unexpected %q at offset %d", p.in[p.pos], p.pos)
		}
		p.pos++
	}
}

func (p *polyParser) parseTerm() (int, Monomial, error) {
	p.skipSpace()
	coef := 1
	sawCoef := false
	if p.pos < len(p.in) && unicode.IsDigit(rune(p.in[p.pos])) {
		n, err := p.parseInt()
		if err != nil {
			return 0, Monomial{}, err
		}
		coef = n
		sawCoef = true
	}
	m := One
	sawVar := false
	for {
		p.skipSpace()
		if sawCoef || sawVar {
			if p.pos >= len(p.in) || p.in[p.pos] != '*' {
				break
			}
			p.pos++
			p.skipSpace()
		}
		if p.pos >= len(p.in) || !isVarStart(rune(p.in[p.pos])) {
			if sawVar || sawCoef {
				break
			}
			return 0, Monomial{}, fmt.Errorf("expected term at offset %d", p.pos)
		}
		v := p.parseIdent()
		exp := 1
		p.skipSpace()
		if p.pos < len(p.in) && p.in[p.pos] == '^' {
			p.pos++
			p.skipSpace()
			n, err := p.parseInt()
			if err != nil {
				return 0, Monomial{}, err
			}
			exp = n
		}
		m = m.Mul(MonomialFromExponents(map[string]int{v: exp}))
		sawVar = true
	}
	if sawCoef && coef == 0 {
		return 0, Monomial{}, nil
	}
	return coef, m, nil
}

func (p *polyParser) parseInt() (int, error) {
	start := p.pos
	for p.pos < len(p.in) && unicode.IsDigit(rune(p.in[p.pos])) {
		p.pos++
	}
	n, err := strconv.Atoi(p.in[start:p.pos])
	if err != nil {
		return 0, fmt.Errorf("bad integer at offset %d: %w", start, err)
	}
	return n, nil
}

func (p *polyParser) parseIdent() string {
	start := p.pos
	for p.pos < len(p.in) {
		c := rune(p.in[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			p.pos++
			continue
		}
		break
	}
	return p.in[start:p.pos]
}

func (p *polyParser) skipSpace() {
	for p.pos < len(p.in) && strings.ContainsRune(" \t\n\r", rune(p.in[p.pos])) {
		p.pos++
	}
}

func isVarStart(c rune) bool { return unicode.IsLetter(c) || c == '_' }
