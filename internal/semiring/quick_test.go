package semiring

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genPoly is a deterministic-ish random polynomial generator over a small
// variable alphabet, used by the property tests below.
func genPoly(r *rand.Rand, maxTerms, maxDeg int) Polynomial {
	vars := []string{"s1", "s2", "s3", "s4"}
	p := Polynomial{}
	n := r.Intn(maxTerms + 1)
	for i := 0; i < n; i++ {
		deg := r.Intn(maxDeg + 1)
		occ := make([]string, deg)
		for j := range occ {
			occ[j] = vars[r.Intn(len(vars))]
		}
		p = p.AddMonomial(NewMonomial(occ...), 1+r.Intn(3))
	}
	return p
}

// quickPoly adapts genPoly to testing/quick's Generator protocol.
type quickPoly struct{ P Polynomial }

func (quickPoly) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(quickPoly{P: genPoly(r, 4, 3)})
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(a, b quickPoly) bool { return a.P.Add(b.P).Equal(b.P.Add(a.P)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddAssociative(t *testing.T) {
	f := func(a, b, c quickPoly) bool {
		return a.P.Add(b.P).Add(c.P).Equal(a.P.Add(b.P.Add(c.P)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulCommutative(t *testing.T) {
	f := func(a, b quickPoly) bool { return a.P.Mul(b.P).Equal(b.P.Mul(a.P)) }
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulAssociative(t *testing.T) {
	f := func(a, b, c quickPoly) bool {
		return a.P.Mul(b.P).Mul(c.P).Equal(a.P.Mul(b.P.Mul(c.P)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestQuickDistributivity(t *testing.T) {
	f := func(a, b, c quickPoly) bool {
		left := a.P.Mul(b.P.Add(c.P))
		right := a.P.Mul(b.P).Add(a.P.Mul(c.P))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnits(t *testing.T) {
	f := func(a quickPoly) bool {
		return a.P.Add(Zero).Equal(a.P) &&
			a.P.Mul(OnePoly()).Equal(a.P) &&
			a.P.Mul(Zero).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(a quickPoly) bool {
		q, err := ParsePolynomial(a.P.String())
		return err == nil && q.Equal(a.P)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickExpandedStringRoundTrip(t *testing.T) {
	f := func(a quickPoly) bool {
		q, err := ParsePolynomial(a.P.ExpandedString())
		return err == nil && q.Equal(a.P)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEvalIsHomomorphism(t *testing.T) {
	// Eval under Counting with a fixed valuation must be a semiring
	// homomorphism: Eval(p+q) = Eval(p)+Eval(q), Eval(p*q) = Eval(p)*Eval(q).
	val := func(v string) int {
		switch v {
		case "s1":
			return 2
		case "s2":
			return 3
		case "s3":
			return 5
		default:
			return 7
		}
	}
	f := func(a, b quickPoly) bool {
		ev := func(p Polynomial) int { return Eval[int](p, Counting{}, val) }
		return ev(a.P.Add(b.P)) == ev(a.P)+ev(b.P) &&
			ev(a.P.Mul(b.P)) == ev(a.P)*ev(b.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickDividesIsPartialOrder(t *testing.T) {
	genMono := func(r *rand.Rand) Monomial {
		vars := []string{"s1", "s2", "s3"}
		deg := r.Intn(4)
		occ := make([]string, deg)
		for j := range occ {
			occ[j] = vars[r.Intn(len(vars))]
		}
		return NewMonomial(occ...)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b, c := genMono(r), genMono(r), genMono(r)
		if !a.Divides(a) {
			t.Fatalf("reflexivity failed: %v", a)
		}
		if a.Divides(b) && b.Divides(a) && !a.Equal(b) {
			t.Fatalf("antisymmetry failed: %v, %v", a, b)
		}
		if a.Divides(b) && b.Divides(c) && !a.Divides(c) {
			t.Fatalf("transitivity failed: %v, %v, %v", a, b, c)
		}
	}
}

func TestQuickWhyMinimalIdempotent(t *testing.T) {
	f := func(a quickPoly) bool {
		m := Why(a.P).Minimal()
		return m.Minimal().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
