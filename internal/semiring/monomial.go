// Package semiring implements the provenance semiring N[X] of Green,
// Karvounarakis and Tannen ("Provenance semirings", PODS 2007), which the
// paper "On Provenance Minimization" (PODS 2011) uses as its provenance
// model, together with a generic commutative-semiring interface and the
// standard coarser provenance models (Why, Trio/lineage, PosBool, counting,
// tropical) obtained by specializing polynomials.
//
// A Monomial is a finite multiset of annotation variables (a product such as
// s1·s1·s2, compactly s1²·s2). A Polynomial is a finite multiset of
// monomials with natural-number coefficients. Both are immutable value
// types with canonical internal representations, so equality of the
// representations coincides with semantic equality.
//
// Canonical representations mean canonical output: polynomial strings and
// encodings are compared byte-for-byte by the differential tests, so no
// map iteration order, clock value or RNG draw may reach this package's
// output.
//
//provlint:canonical
package semiring

import (
	"sort"
	"strconv"
	"strings"
)

// Term is one variable raised to a positive power inside a monomial.
type Term struct {
	Var string // annotation variable name, e.g. "s1"
	Exp int    // exponent, always >= 1 in a canonical monomial
}

// Monomial is a product of annotation variables with positive integer
// exponents. The zero value is the empty monomial, i.e. the multiplicative
// unit 1. Monomials are immutable: all methods return new values.
type Monomial struct {
	terms []Term // sorted by Var, exponents >= 1, no duplicate vars
}

// One is the multiplicative unit monomial (the empty product).
var One = Monomial{}

// NewMonomial builds a monomial from a list of variable occurrences.
// Repeated names accumulate exponents: NewMonomial("s1","s2","s1") is s1²·s2.
func NewMonomial(vars ...string) Monomial {
	if len(vars) == 0 {
		return Monomial{}
	}
	exp := make(map[string]int, len(vars))
	for _, v := range vars {
		exp[v]++
	}
	return monomialFromMap(exp)
}

// MonomialFromVars builds a monomial from a list of variable occurrences,
// sorting vars in place. Equivalent to NewMonomial(vars...) but without the
// counting map — one allocation per call. This is the evaluator's
// per-assignment hot path.
func MonomialFromVars(vars []string) Monomial {
	if len(vars) == 0 {
		return Monomial{}
	}
	sort.Strings(vars)
	terms := make([]Term, 0, len(vars))
	for i := 0; i < len(vars); {
		j := i + 1
		for j < len(vars) && vars[j] == vars[i] {
			j++
		}
		terms = append(terms, Term{Var: vars[i], Exp: j - i})
		i = j
	}
	return Monomial{terms: terms}
}

// MonomialFromExponents builds a monomial from an exponent map. Entries with
// non-positive exponents are ignored.
func MonomialFromExponents(exp map[string]int) Monomial {
	return monomialFromMap(exp)
}

func monomialFromMap(exp map[string]int) Monomial {
	terms := make([]Term, 0, len(exp))
	for v, e := range exp {
		if e > 0 {
			terms = append(terms, Term{Var: v, Exp: e})
		}
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Var < terms[j].Var })
	return Monomial{terms: terms}
}

// Terms returns the canonical (Var, Exp) sequence, sorted by variable name.
// The returned slice must not be modified.
func (m Monomial) Terms() []Term { return m.terms }

// IsOne reports whether m is the empty product.
func (m Monomial) IsOne() bool { return len(m.terms) == 0 }

// Degree returns the total degree (number of variable occurrences counted
// with multiplicity). The paper calls this the monomial's size.
func (m Monomial) Degree() int {
	d := 0
	for _, t := range m.terms {
		d += t.Exp
	}
	return d
}

// NumVars returns the number of distinct variables.
func (m Monomial) NumVars() int { return len(m.terms) }

// Exponent returns the exponent of v in m (0 if absent).
func (m Monomial) Exponent(v string) int {
	i := sort.Search(len(m.terms), func(i int) bool { return m.terms[i].Var >= v })
	if i < len(m.terms) && m.terms[i].Var == v {
		return m.terms[i].Exp
	}
	return 0
}

// Vars returns the distinct variable names in sorted order.
func (m Monomial) Vars() []string {
	vs := make([]string, len(m.terms))
	for i, t := range m.terms {
		vs[i] = t.Var
	}
	return vs
}

// Occurrences expands the monomial into the sorted list of variable
// occurrences with multiplicity, e.g. s1²·s2 -> [s1 s1 s2]. This is the
// "expanded form" the paper uses so that monomials correspond one-to-one
// with assignments.
func (m Monomial) Occurrences() []string {
	out := make([]string, 0, m.Degree())
	for _, t := range m.terms {
		for i := 0; i < t.Exp; i++ {
			out = append(out, t.Var)
		}
	}
	return out
}

// Mul returns the product m·n.
func (m Monomial) Mul(n Monomial) Monomial {
	if m.IsOne() {
		return n
	}
	if n.IsOne() {
		return m
	}
	out := make([]Term, 0, len(m.terms)+len(n.terms))
	i, j := 0, 0
	for i < len(m.terms) && j < len(n.terms) {
		switch {
		case m.terms[i].Var < n.terms[j].Var:
			out = append(out, m.terms[i])
			i++
		case m.terms[i].Var > n.terms[j].Var:
			out = append(out, n.terms[j])
			j++
		default:
			out = append(out, Term{Var: m.terms[i].Var, Exp: m.terms[i].Exp + n.terms[j].Exp})
			i++
			j++
		}
	}
	out = append(out, m.terms[i:]...)
	out = append(out, n.terms[j:]...)
	return Monomial{terms: out}
}

// MulVar returns m multiplied by a single variable occurrence.
func (m Monomial) MulVar(v string) Monomial {
	return m.Mul(NewMonomial(v))
}

// Support returns the monomial obtained by dropping exponents (every
// exponent becomes 1). Step II of direct minimization (Lemma 5.3) replaces
// each monomial by its support.
func (m Monomial) Support() Monomial {
	terms := make([]Term, len(m.terms))
	for i, t := range m.terms {
		terms[i] = Term{Var: t.Var, Exp: 1}
	}
	return Monomial{terms: terms}
}

// IsSupport reports whether every exponent equals 1.
func (m Monomial) IsSupport() bool {
	for _, t := range m.terms {
		if t.Exp != 1 {
			return false
		}
	}
	return true
}

// Equal reports semantic equality (identical canonical representations).
func (m Monomial) Equal(n Monomial) bool {
	if len(m.terms) != len(n.terms) {
		return false
	}
	for i := range m.terms {
		if m.terms[i] != n.terms[i] {
			return false
		}
	}
	return true
}

// Divides reports whether m divides n as a multiset, i.e. every variable of
// m occurs in n with at least the same exponent. This is exactly the
// paper's order relation on monomials (Def. 2.15): m ≤ n iff there is an
// injective mapping of the occurrences of m into the occurrences of n with
// equal variables, which for multisets is multiset inclusion.
func (m Monomial) Divides(n Monomial) bool {
	j := 0
	for _, t := range m.terms {
		for j < len(n.terms) && n.terms[j].Var < t.Var {
			j++
		}
		if j >= len(n.terms) || n.terms[j].Var != t.Var || n.terms[j].Exp < t.Exp {
			return false
		}
	}
	return true
}

// ProperlyDivides reports m ≤ n and m ≠ n.
func (m Monomial) ProperlyDivides(n Monomial) bool {
	return m.Divides(n) && !m.Equal(n)
}

// Compare gives a total order over monomials used for canonical polynomial
// layout: first by total degree, then lexicographically by the canonical
// term sequence. Returns -1, 0 or 1.
func (m Monomial) Compare(n Monomial) int {
	if d, e := m.Degree(), n.Degree(); d != e {
		if d < e {
			return -1
		}
		return 1
	}
	for i := 0; i < len(m.terms) && i < len(n.terms); i++ {
		if m.terms[i].Var != n.terms[i].Var {
			if m.terms[i].Var < n.terms[i].Var {
				return -1
			}
			return 1
		}
		if m.terms[i].Exp != n.terms[i].Exp {
			if m.terms[i].Exp < n.terms[i].Exp {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(m.terms) < len(n.terms):
		return -1
	case len(m.terms) > len(n.terms):
		return 1
	}
	return 0
}

// Key returns a canonical string key suitable for map indexing.
func (m Monomial) Key() string { return m.String() }

// String renders the monomial in compact form, e.g. "s1^2*s2". The unit
// monomial renders as "1".
func (m Monomial) String() string {
	if len(m.terms) == 0 {
		return "1"
	}
	var b strings.Builder
	for i, t := range m.terms {
		if i > 0 {
			b.WriteByte('*')
		}
		b.WriteString(t.Var)
		if t.Exp > 1 {
			b.WriteByte('^')
			b.WriteString(strconv.Itoa(t.Exp))
		}
	}
	return b.String()
}

// ExpandedString renders the monomial in the paper's expanded form with all
// exponents written out, e.g. "s1*s1*s2".
func (m Monomial) ExpandedString() string {
	if len(m.terms) == 0 {
		return "1"
	}
	return strings.Join(m.Occurrences(), "*")
}
