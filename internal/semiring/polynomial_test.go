package semiring

import "testing"

func TestPolynomialZeroAndOne(t *testing.T) {
	if !Zero.IsZero() {
		t.Error("Zero.IsZero() = false")
	}
	if Zero.String() != "0" {
		t.Errorf("Zero.String() = %q", Zero.String())
	}
	one := OnePoly()
	if one.NumMonomials() != 1 || one.Coefficient(One) != 1 {
		t.Errorf("OnePoly = %v", one)
	}
}

func TestPolynomialAddCollects(t *testing.T) {
	p := Var("s1").Add(Var("s1")).Add(Var("s2"))
	if p.NumMonomials() != 2 {
		t.Fatalf("NumMonomials = %d, want 2", p.NumMonomials())
	}
	if got := p.Coefficient(NewMonomial("s1")); got != 2 {
		t.Errorf("coef(s1) = %d, want 2", got)
	}
	if got := p.Coefficient(NewMonomial("s2")); got != 1 {
		t.Errorf("coef(s2) = %d, want 1", got)
	}
	if p.NumOccurrences() != 3 {
		t.Errorf("NumOccurrences = %d, want 3", p.NumOccurrences())
	}
}

func TestPolynomialMulDistributes(t *testing.T) {
	// (s1 + s2) * (s1 + s3) = s1^2 + s1*s3 + s1*s2 + s2*s3
	p := Var("s1").Add(Var("s2"))
	q := Var("s1").Add(Var("s3"))
	got := p.Mul(q)
	want := FromMonomial(NewMonomial("s1", "s1"), 1).
		Add(FromMonomial(NewMonomial("s1", "s3"), 1)).
		Add(FromMonomial(NewMonomial("s1", "s2"), 1)).
		Add(FromMonomial(NewMonomial("s2", "s3"), 1))
	if !got.Equal(want) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestPolynomialMulCollectsCoefficients(t *testing.T) {
	// (s1 + s1) * s2 = 2*s1*s2
	p := Var("s1").Add(Var("s1"))
	got := p.Mul(Var("s2"))
	if got.NumMonomials() != 1 || got.Coefficient(NewMonomial("s1", "s2")) != 2 {
		t.Errorf("Mul = %v, want 2*s1*s2", got)
	}
}

func TestPolynomialMulByZero(t *testing.T) {
	p := Var("s1").Add(Var("s2"))
	if !p.Mul(Zero).IsZero() || !Zero.Mul(p).IsZero() {
		t.Error("multiplying by zero must yield zero")
	}
}

func TestPolynomialPaperExample(t *testing.T) {
	// Introduction example: x*y + y + z + z = x*y^2... actually the paper's
	// example is xy·y + z + z = xy² + 2z with three derivations.
	xy := NewMonomial("x", "y")
	p := FromMonomial(xy.MulVar("y"), 1).Add(Var("z")).Add(Var("z"))
	if got := p.String(); got != "2*z + x*y^2" {
		t.Errorf("String = %q", got)
	}
	if p.NumOccurrences() != 3 {
		t.Errorf("derivation count = %d, want 3", p.NumOccurrences())
	}
}

func TestPolynomialSizeAndDegree(t *testing.T) {
	p := MustParsePolynomial("2*s1^2*s2 + s3")
	if got := p.Size(); got != 7 { // 2 occurrences of degree-3 + 1 of degree-1
		t.Errorf("Size = %d, want 7", got)
	}
	if got := p.Degree(); got != 3 {
		t.Errorf("Degree = %d, want 3", got)
	}
}

func TestPolynomialVars(t *testing.T) {
	p := MustParsePolynomial("s2*s3 + s1")
	vars := p.Vars()
	if len(vars) != 3 || vars[0] != "s1" || vars[1] != "s2" || vars[2] != "s3" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestPolynomialMonomialOccurrences(t *testing.T) {
	p := MustParsePolynomial("2*s1 + s2")
	occ := p.MonomialOccurrences()
	if len(occ) != 3 {
		t.Fatalf("occurrences = %v", occ)
	}
	if !occ[0].Equal(NewMonomial("s1")) || !occ[1].Equal(NewMonomial("s1")) || !occ[2].Equal(NewMonomial("s2")) {
		t.Errorf("occurrences = %v", occ)
	}
}

func TestPolynomialScale(t *testing.T) {
	p := MustParsePolynomial("s1 + s2")
	got := p.Scale(3)
	if got.Coefficient(NewMonomial("s1")) != 3 || got.Coefficient(NewMonomial("s2")) != 3 {
		t.Errorf("Scale = %v", got)
	}
	if !p.Scale(0).IsZero() {
		t.Error("Scale(0) must be zero")
	}
}

func TestPolynomialRenameCollapse(t *testing.T) {
	// Section 6 scenario: collapse s1 and s2 onto the same annotation s.
	p := MustParsePolynomial("s1*s2 + s3")
	got := p.Rename(func(v string) string {
		if v == "s1" || v == "s2" {
			return "s"
		}
		return v
	})
	want := MustParsePolynomial("s^2 + s3")
	if !got.Equal(want) {
		t.Errorf("Rename = %v, want %v", got, want)
	}
}

func TestPolynomialExpandedString(t *testing.T) {
	p := MustParsePolynomial("2*s1^2 + s2")
	if got := p.ExpandedString(); got != "s2 + s1*s1 + s1*s1" {
		t.Errorf("ExpandedString = %q", got)
	}
}

func TestFromMonomials(t *testing.T) {
	p := FromMonomials([]Monomial{NewMonomial("a"), NewMonomial("a"), NewMonomial("b")})
	if p.Coefficient(NewMonomial("a")) != 2 || p.Coefficient(NewMonomial("b")) != 1 {
		t.Errorf("FromMonomials = %v", p)
	}
}

func TestPolynomialEqualOrderIndependent(t *testing.T) {
	p := Var("s1").Add(Var("s2")).Add(FromMonomial(NewMonomial("s1", "s2"), 1))
	q := FromMonomial(NewMonomial("s1", "s2"), 1).Add(Var("s2")).Add(Var("s1"))
	if !p.Equal(q) {
		t.Errorf("addition must be order independent: %v vs %v", p, q)
	}
}
