package partition

import "testing"

func vars(n int) []string {
	names := []string{"v1", "v2", "v3", "v4", "v5", "v6", "v7"}
	return names[:n]
}

func TestCountBellNumbers(t *testing.T) {
	// Unconstrained partitions of n variables = Bell(n).
	bell := []int{1, 1, 2, 5, 15, 52, 203, 877}
	for n := 0; n <= 7; n++ {
		if got := Count(vars(n), nil, nil); got != bell[n] {
			t.Errorf("Count(%d vars) = %d, want Bell=%d", n, got, bell[n])
		}
	}
}

func TestCountWithOneConstant(t *testing.T) {
	// Each variable may also join the constant's block: partitions of n
	// items where blocks may be marked by one label = Bell(n+1) (classic
	// identity: adding a distinguished element).
	bellShift := []int{1, 2, 5, 15, 52}
	for n := 0; n <= 4; n++ {
		if got := Count(vars(n), []string{"a"}, nil); got != bellShift[n] {
			t.Errorf("Count(%d vars, 1 const) = %d, want %d", n, got, bellShift[n])
		}
	}
}

func TestSeparationConstraintVarVar(t *testing.T) {
	// Two variables that must be separated: only the discrete partition.
	got := Count(vars(2), nil, [][2]string{{"v1", "v2"}})
	if got != 1 {
		t.Errorf("Count = %d, want 1", got)
	}
	// Three variables with v1|v2 separated: partitions of {v1,v2,v3} minus
	// those merging v1,v2: Bell(3)=5, minus {v1v2|v3, v1v2v3} = 3.
	got = Count(vars(3), nil, [][2]string{{"v1", "v2"}})
	if got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
}

func TestSeparationConstraintVarConst(t *testing.T) {
	// One variable, one constant, separated: the variable cannot join the
	// constant's block, so exactly one partition.
	got := Count(vars(1), []string{"a"}, [][2]string{{"v1", "a"}})
	if got != 1 {
		t.Errorf("Count = %d, want 1", got)
	}
}

func TestExample42PartitionCount(t *testing.T) {
	// The query of Example 4.2: Var = {x, y}, C = {a, b}, with x != a and
	// x != y required separations. The paper lists exactly 5 completions.
	got := Count([]string{"x", "y"}, []string{"a", "b"}, [][2]string{{"x", "a"}, {"x", "y"}})
	if got != 5 {
		t.Errorf("Count = %d, want 5 (Example 4.2)", got)
	}
}

func TestBlocksWellFormed(t *testing.T) {
	seen := 0
	Enumerate([]string{"x", "y"}, []string{"a"}, [][2]string{{"x", "y"}}, func(blocks []Block) bool {
		seen++
		// Constant anchors come first and are preserved.
		if blocks[0].Const != "a" {
			t.Errorf("first block should anchor 'a': %v", blocks)
		}
		// x and y never share a block.
		for _, b := range blocks {
			hasX, hasY := false, false
			for _, v := range b.Vars {
				if v == "x" {
					hasX = true
				}
				if v == "y" {
					hasY = true
				}
			}
			if hasX && hasY {
				t.Errorf("separated variables share a block: %v", blocks)
			}
		}
		return true
	})
	// x in {a-block, own}, y in {a-block, x's block?, own} minus x~y:
	// partitions: {ax, ay}? impossible (both can't anchor same block? they can:
	// block a with x and y would violate x!=y). Enumerate: x->a or x alone;
	// y->a (if x not there it's fine; if x there, conflict), y->x-block
	// (conflict), y alone. So: (x@a: y alone), (x alone: y@a, y alone) = 3.
	if seen != 3 {
		t.Errorf("partitions = %d, want 3", seen)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	n := 0
	done := Enumerate(vars(4), nil, nil, func([]Block) bool {
		n++
		return n < 3
	})
	if done {
		t.Error("Enumerate should report early stop")
	}
	if n != 3 {
		t.Errorf("callbacks = %d, want 3", n)
	}
}

func TestBlocksAreCopies(t *testing.T) {
	var captured [][]Block
	Enumerate(vars(2), nil, nil, func(blocks []Block) bool {
		captured = append(captured, blocks)
		return true
	})
	// Mutating one captured partition must not affect others.
	if len(captured) != 2 {
		t.Fatalf("partitions = %d", len(captured))
	}
	captured[0][0].Vars[0] = "mutated"
	ok := false
	for _, b := range captured[1] {
		for _, v := range b.Vars {
			if v == "v1" {
				ok = true
			}
		}
	}
	if !ok {
		t.Error("partitions share storage")
	}
}
