// Package partition enumerates constrained set partitions of a query's
// arguments, the combinatorial core of the canonical rewriting (Def. 4.1):
// the arguments Var(Q) ∪ C are split into disjoint subsets such that each
// subset contains at most one constant and the two endpoints of every
// disequality fall into different subsets.
package partition

// Block is one class of a partition: an optional constant anchor plus the
// variables identified with it (or with each other when Const is empty).
type Block struct {
	Const string   // "" when the block has no constant
	Vars  []string // variables in the block, in insertion order
}

// Enumerate generates every partition of vars into blocks, where each block
// may additionally be anchored at one of the given constants (constants are
// pairwise distinct values so they always occupy distinct blocks), subject
// to the separation constraints: for each pair {a, b} in separated, a and b
// must not end up in the same block. Pair members may name variables or
// constants.
//
// fn is invoked once per partition with freshly allocated blocks; blocks
// holding only a constant and no variables are included (they correspond to
// constants of C unused by the completion). fn returns false to stop early.
// Enumerate reports whether the enumeration ran to completion.
func Enumerate(vars, consts []string, separated [][2]string, fn func(blocks []Block) bool) bool {
	sep := map[[2]string]bool{}
	for _, p := range separated {
		sep[[2]string{p[0], p[1]}] = true
		sep[[2]string{p[1], p[0]}] = true
	}
	blocks := make([]Block, len(consts))
	for i, c := range consts {
		blocks[i] = Block{Const: c}
	}
	e := &enum{vars: vars, sep: sep, fn: fn, blocks: blocks, fixed: len(consts)}
	return e.place(0)
}

// Count returns the number of partitions Enumerate would produce.
func Count(vars, consts []string, separated [][2]string) int {
	n := 0
	Enumerate(vars, consts, separated, func([]Block) bool {
		n++
		return true
	})
	return n
}

type enum struct {
	vars   []string
	sep    map[[2]string]bool
	fn     func([]Block) bool
	blocks []Block
	fixed  int // first `fixed` blocks are constant anchors and always kept
}

func (e *enum) place(i int) bool {
	if i == len(e.vars) {
		out := make([]Block, len(e.blocks))
		for j, b := range e.blocks {
			vs := make([]string, len(b.Vars))
			copy(vs, b.Vars)
			out[j] = Block{Const: b.Const, Vars: vs}
		}
		return e.fn(out)
	}
	v := e.vars[i]
	for j := range e.blocks {
		if e.conflicts(v, e.blocks[j]) {
			continue
		}
		e.blocks[j].Vars = append(e.blocks[j].Vars, v)
		if !e.place(i + 1) {
			return false
		}
		e.blocks[j].Vars = e.blocks[j].Vars[:len(e.blocks[j].Vars)-1]
	}
	// New block containing only v.
	e.blocks = append(e.blocks, Block{Vars: []string{v}})
	ok := e.place(i + 1)
	e.blocks = e.blocks[:len(e.blocks)-1]
	return ok
}

func (e *enum) conflicts(v string, b Block) bool {
	if b.Const != "" && e.sep[[2]string{v, b.Const}] {
		return true
	}
	for _, w := range b.Vars {
		if e.sep[[2]string{v, w}] {
			return true
		}
	}
	return false
}
