package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs_total") != c {
		t.Fatalf("Counter did not return the same instance for one name")
	}
	g := r.Gauge("instances")
	g.Set(3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(10 * time.Second)
	if got := h.Count(); got != 101 {
		t.Fatalf("count = %d, want 101", got)
	}
	if m := h.Mean(); m < time.Millisecond || m > time.Second {
		t.Fatalf("mean = %v, out of plausible range", m)
	}
	// p50 of 100×1ms + 1×10s lands in the 1.6ms bucket.
	if q := h.Quantile(0.5); q > 0.01 {
		t.Fatalf("p50 = %v, want <= 10ms", q)
	}
	if q := h.Quantile(1.0); q < 10 {
		t.Fatalf("p100 = %v, want >= 10s bucket bound", q)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_cache_hits_total").Add(7)
	r.Gauge("engine_instances").Set(2)
	r.Histogram("http_request_seconds").Observe(3 * time.Millisecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE engine_cache_hits_total counter",
		"engine_cache_hits_total 7",
		"# TYPE engine_instances gauge",
		"engine_instances 2",
		"# TYPE http_request_seconds histogram",
		`http_request_seconds_bucket{le="+Inf"} 1`,
		"http_request_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONEncodable(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	h := r.Histogram("b_seconds")
	// Land every observation in the overflow bucket so quantiles would be
	// +Inf without clamping.
	h.Observe(5 * time.Minute)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
	if !strings.Contains(string(data), "a_total") {
		t.Fatalf("snapshot missing counter: %s", data)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total").Inc()
				r.Histogram("h_seconds").Observe(time.Microsecond)
				r.Gauge("g").Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
