// Package metrics is a small, dependency-free instrumentation registry for
// the provmind service: counters, gauges and latency histograms, exposed in
// Prometheus text format and as a JSON snapshot. It exists so the engine and
// server layers can record request counts, per-endpoint latency and cache
// hit rates without pulling an external client library into the module.
//
// The Prometheus text rendering and the JSON snapshot are scraped and
// diffed by tests, so this package is canonical: metric series must
// render in sorted order, never in map order.
//
//provlint:canonical
package metrics

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (n may be negative) — for gauges tracking occupancy deltas,
// like cache entry and byte counts.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// defaultBuckets are latency bucket upper bounds in seconds, exponential
// from 100µs to ~26s — provenance evaluation spans that whole range.
var defaultBuckets = []float64{
	0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384, 6.5536, 26.2144,
}

// Histogram is a fixed-bucket latency histogram. Observations are recorded
// lock-free; bucket bounds are set at construction.
type Histogram struct {
	bounds []float64      // upper bounds, ascending
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	sum    atomic.Int64   // total observed, in nanoseconds
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = defaultBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// from the bucket counts: the upper bound of the bucket containing the
// q-th observation. Returns +Inf seconds when it falls in the overflow
// bucket, 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Registry holds named metrics. Metric getters create on first use, so
// callers never pre-register; names follow Prometheus conventions
// (snake_case with _total/_seconds suffixes).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if absent.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(nil)
		r.hists[name] = h
	}
	return h
}

func (r *Registry) sortedNames() (cs, gs, hs []string) {
	for n := range r.counters {
		cs = append(cs, n)
	}
	for n := range r.gauges {
		gs = append(gs, n)
	}
	for n := range r.hists {
		hs = append(hs, n)
	}
	sort.Strings(cs)
	sort.Strings(gs)
	sort.Strings(hs)
	return
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (gauges and counters as bare samples, histograms with _bucket,
// _sum and _count series). Rendering happens into a buffer so the registry
// mutex — which every hot-path metric getter takes — is never held across
// a network write to a possibly slow scraper.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var buf bytes.Buffer
	r.mu.Lock()
	cs, gs, hs := r.sortedNames()
	for _, n := range cs {
		fmt.Fprintf(&buf, "# TYPE %s counter\n%s %d\n", n, n, r.counters[n].Value())
	}
	for _, n := range gs {
		fmt.Fprintf(&buf, "# TYPE %s gauge\n%s %d\n", n, n, r.gauges[n].Value())
	}
	for _, n := range hs {
		h := r.hists[n]
		fmt.Fprintf(&buf, "# TYPE %s histogram\n", n)
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(&buf, "%s_bucket{le=\"%g\"} %d\n", n, b, cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(&buf, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(&buf, "%s_sum %g\n%s_count %d\n", n, h.Sum().Seconds(), n, h.Count())
	}
	r.mu.Unlock()
	_, err := w.Write(buf.Bytes())
	return err
}

// Snapshot returns a JSON-friendly view of every metric: counters and
// gauges as int64, histograms as {count, mean_seconds, p50, p99}.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]any{}
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.hists {
		out[n] = map[string]any{
			"count":        h.Count(),
			"mean_seconds": h.Mean().Seconds(),
			"p50_seconds":  finiteQuantile(h, 0.50),
			"p99_seconds":  finiteQuantile(h, 0.99),
		}
	}
	return out
}

// finiteQuantile is Quantile with +Inf (overflow bucket) clamped to the
// largest bound, so snapshots stay JSON-encodable.
func finiteQuantile(h *Histogram, q float64) float64 {
	v := h.Quantile(q)
	if math.IsInf(v, 1) {
		return h.bounds[len(h.bounds)-1]
	}
	return v
}
