package hom

import (
	"fmt"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/query"
)

// ContainedCQ decides q1 ⊆ q2 for disequality-free conjunctive queries via
// the Chandra–Merlin homomorphism theorem (Theorem 3.1): q1 ⊆ q2 iff there
// is a homomorphism from q2 to q1.
func ContainedCQ(q1, q2 *query.CQ) (bool, error) {
	if q1.HasDiseqs() || q2.HasDiseqs() {
		return false, fmt.Errorf("ContainedCQ requires disequality-free queries; use minimize.Contained")
	}
	return Exists(q2, q1), nil
}

// EquivalentCQ decides q1 ≡ q2 for disequality-free conjunctive queries.
func EquivalentCQ(q1, q2 *query.CQ) (bool, error) {
	c1, err := ContainedCQ(q1, q2)
	if err != nil {
		return false, err
	}
	if !c1 {
		return false, nil
	}
	return ContainedCQ(q2, q1)
}

// ContainedCompleteLHS decides q1 ⊆ q2 where q1 is complete (and, for
// soundness, complete with respect to Const(q2) as well — Lemma 4.9's
// hypothesis) and q2 is any CQ≠, using Theorem 3.1's second form: q1 ⊆ q2
// iff there is a homomorphism from q2 to q1. The completeness precondition
// is checked.
func ContainedCompleteLHS(q1, q2 *query.CQ) (bool, error) {
	if !q1.IsCompleteWRT(q2.Consts()) {
		return false, fmt.Errorf("left query must be complete w.r.t. the right query's constants")
	}
	return Exists(q2, q1), nil
}

// Freeze builds the canonical database of a disequality-free query: every
// variable becomes a fresh domain value (its own name, prefixed to avoid
// clashing with constants) and every atom becomes a tuple tagged f1, f2, ...
// It also returns the frozen head tuple.
func Freeze(q *query.CQ) (*db.Instance, db.Tuple) {
	inst := db.NewInstance()
	val := func(a query.Arg) string {
		if a.Const {
			return a.Name
		}
		return "_" + a.Name
	}
	for i, at := range q.Atoms {
		vals := make([]string, len(at.Args))
		for j, a := range at.Args {
			vals[j] = val(a)
		}
		inst.MustAdd(at.Rel, fmt.Sprintf("f%d", i+1), vals...)
	}
	head := make(db.Tuple, len(q.Head.Args))
	for i, a := range q.Head.Args {
		head[i] = val(a)
	}
	return inst, head
}

// ContainedCQViaCanonicalDB decides q1 ⊆ q2 for disequality-free queries by
// the canonical-database method: evaluate q2 over the frozen q1 and test
// whether the frozen head appears. It is an independent cross-check of
// ContainedCQ used by the test suite and the containment benchmarks.
func ContainedCQViaCanonicalDB(q1, q2 *query.CQ) (bool, error) {
	if q1.HasDiseqs() || q2.HasDiseqs() {
		return false, fmt.Errorf("canonical-database containment requires disequality-free queries")
	}
	inst, head := Freeze(q1)
	res, err := eval.EvalCQ(q2, inst)
	if err != nil {
		return false, err
	}
	return res.Contains(head), nil
}
