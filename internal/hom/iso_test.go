package hom

import (
	"testing"

	"provmin/internal/query"
)

func TestIsomorphicRenaming(t *testing.T) {
	a := query.MustParse("ans(x) :- R(x,y), R(y,x), x != y")
	b := query.MustParse("ans(u) :- R(u,v), R(v,u), u != v")
	if !Isomorphic(a, b) {
		t.Error("renamed queries must be isomorphic")
	}
}

func TestIsomorphicRejectsCollapse(t *testing.T) {
	a := query.MustParse("ans(x) :- R(x,y), R(y,x)")
	b := query.MustParse("ans(x) :- R(x,x)")
	// There is a homomorphism a -> b but no isomorphism.
	if Isomorphic(a, b) || Isomorphic(b, a) {
		t.Error("queries of different sizes are not isomorphic")
	}
}

func TestIsomorphicDiseqSetsMustAgree(t *testing.T) {
	a := query.MustParse("ans() :- R(x,y), x != y")
	b := query.MustParse("ans() :- R(x,y)")
	if Isomorphic(a, b) || Isomorphic(b, a) {
		t.Error("different disequality sets are not isomorphic")
	}
}

func TestLemma38NonIsomorphicMinimalPair(t *testing.T) {
	// QnoPmin and Qalt (Figure 2) are equivalent, both standard-minimal,
	// yet not isomorphic — the counterexample behind Lemma 3.8.
	qNoPmin := query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x2")
	qAlt := query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x3")
	if Isomorphic(qNoPmin, qAlt) {
		t.Error("QnoPmin and Qalt are not isomorphic (Lemma 3.8)")
	}
	if !Isomorphic(qNoPmin, qNoPmin.Clone()) {
		t.Error("a query is isomorphic to its clone")
	}
}

func TestIsomorphicRespectsConstants(t *testing.T) {
	a := query.MustParse("ans(x) :- R(x,'a')")
	b := query.MustParse("ans(x) :- R(x,'b')")
	if Isomorphic(a, b) {
		t.Error("constants must match exactly under isomorphism")
	}
	c := query.MustParse("ans(y) :- R(y,'a')")
	if !Isomorphic(a, c) {
		t.Error("variable renaming with fixed constants is an isomorphism")
	}
}

func TestAutomorphismsTriangle(t *testing.T) {
	// The directed triangle has exactly its 3 rotations as automorphisms.
	tri := query.MustParse("ans() :- R(x,y), R(y,z), R(z,x)")
	if got := CountAutomorphisms(tri); got != 3 {
		t.Errorf("Aut(triangle) = %d, want 3", got)
	}
}

func TestAutomorphismsCompleteTriangleAdjunct(t *testing.T) {
	// Q̂5 from Figure 3: the complete triangle adjunct also has exactly 3
	// automorphisms — this is the coefficient in Example 5.8.
	q5 := query.MustParse("ans() :- R(v1,v2), R(v2,v3), R(v3,v1), v1 != v2, v2 != v3, v1 != v3")
	if got := CountAutomorphisms(q5); got != 3 {
		t.Errorf("Aut(Q̂5) = %d, want 3", got)
	}
}

func TestAutomorphismsIdentityOnly(t *testing.T) {
	q := query.MustParse("ans() :- R(v1,v1)")
	if got := CountAutomorphisms(q); got != 1 {
		t.Errorf("Aut = %d, want 1", got)
	}
	// Head variables are fixed pointwise up to position, so ans(x,y) with a
	// symmetric body still has only the identity.
	q2 := query.MustParse("ans(x,y) :- R(x,y), R(y,x)")
	if got := CountAutomorphisms(q2); got != 1 {
		t.Errorf("Aut = %d, want 1", got)
	}
}

func TestAutomorphismsSymmetricPair(t *testing.T) {
	// Boolean query with two independent unary atoms: swapping x and y is
	// an automorphism.
	q := query.MustParse("ans() :- R(x), R(y)")
	if got := CountAutomorphisms(q); got != 2 {
		t.Errorf("Aut = %d, want 2", got)
	}
	// The directed 2-cycle: swap is an automorphism.
	q2 := query.MustParse("ans() :- R(x,y), R(y,x)")
	if got := CountAutomorphisms(q2); got != 2 {
		t.Errorf("Aut = %d, want 2", got)
	}
}

func TestAutomorphismsFiveCycle(t *testing.T) {
	// Directed 5-cycle without anchors: 5 rotations.
	q := query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1)")
	if got := CountAutomorphisms(q); got != 5 {
		t.Errorf("Aut(C5) = %d, want 5", got)
	}
	// Anchoring x1 with S(x1) kills all rotations.
	qa := query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1)")
	if got := CountAutomorphisms(qa); got != 1 {
		t.Errorf("Aut(anchored C5) = %d, want 1", got)
	}
}

func TestAutomorphismsAreValidSubstitutions(t *testing.T) {
	q := query.MustParse("ans() :- R(x,y), R(y,z), R(z,x)")
	for _, s := range Automorphisms(q) {
		img := q.ApplySubst(s)
		if !img.Equal(q) {
			t.Errorf("automorphism %v does not preserve the query: %v", s, img)
		}
	}
}
