package hom

import (
	"testing"

	"provmin/internal/query"
)

func TestExample211HomomorphismDirections(t *testing.T) {
	qconj := query.MustParse("ans(x) :- R(x,y), R(y,x)")
	q2 := query.MustParse("ans(x) :- R(x,x)")
	// There is a homomorphism from Qconj to Q2 mapping both atoms to the
	// single atom of Q2 (x,y -> x)...
	h, ok := Find(qconj, q2)
	if !ok {
		t.Fatal("expected homomorphism Qconj -> Q2")
	}
	if h.VarMap["x"] != query.V("x") || h.VarMap["y"] != query.V("x") {
		t.Errorf("VarMap = %v", h.VarMap)
	}
	// ...but no homomorphism from Q2 to Qconj.
	if Exists(q2, qconj) {
		t.Error("no homomorphism Q2 -> Qconj should exist")
	}
}

func TestExample32DiseqBlocksHomomorphism(t *testing.T) {
	q := query.MustParse("ans() :- R(x,y), R(y,z), x != z")
	qp := query.MustParse("ans() :- R(x,y), x != y")
	// Q ⊆ Q' holds semantically, but there is no homomorphism Q' -> Q
	// because the disequality x != y cannot map onto x != z.
	if Exists(qp, q) {
		t.Error("no homomorphism Q' -> Q should exist (Example 3.2)")
	}
	// Without the disequality there is a homomorphism.
	qpNoDiseq := query.MustParse("ans() :- R(x,y)")
	if !Exists(qpNoDiseq, q) {
		t.Error("relational part should map")
	}
}

func TestExample34Surjectivity(t *testing.T) {
	q := query.MustParse("ans() :- R(x), R(y)")
	qp := query.MustParse("ans() :- R(x)")
	// Trivial homomorphism Q' -> Q exists but no surjective one.
	if !Exists(qp, q) {
		t.Error("homomorphism Q' -> Q should exist")
	}
	if ExistsSurjective(qp, q) {
		t.Error("no surjective homomorphism Q' -> Q (|atoms| shrinks)")
	}
	// Mapping both atoms of Q onto the single atom of Q' is surjective.
	if !ExistsSurjective(q, qp) {
		t.Error("surjective homomorphism Q -> Q' should exist")
	}
	// Theorem 3.3 direction: provenance of Q' is terser.
	if !TerserBySurjectivity(qp, q) {
		t.Error("TerserBySurjectivity(Q', Q) should hold")
	}
}

func TestHeadMustMap(t *testing.T) {
	a := query.MustParse("ans(x) :- R(x,y)")
	b := query.MustParse("ans(y) :- R(x,y)")
	// Head of a maps x to head of b, i.e. to y; atom R(x,y) must then map
	// with x->y, forcing R(y, ?) in b — only R(x,y) is available, so x->y
	// requires the first argument of the image to be y. Not available.
	if Exists(a, b) {
		t.Error("head positions must be respected")
	}
	c := query.MustParse("ans(x) :- R(y,x)")
	// a: ans(x):-R(x,y) vs c: ans(x):-R(y,x): map head x->x, then
	// R(x,y) needs an atom R(x,?): c has R(y,x) only; no.
	if Exists(a, c) {
		t.Error("no homomorphism a -> c")
	}
}

func TestConstantsMapToThemselves(t *testing.T) {
	a := query.MustParse("ans() :- R('c',x)")
	b := query.MustParse("ans() :- R('c','d')")
	if !Exists(a, b) {
		t.Error("R('c',x) should map onto R('c','d') with x -> 'd'")
	}
	c := query.MustParse("ans() :- R('e','d')")
	if Exists(a, c) {
		t.Error("constant 'c' cannot map to 'e'")
	}
}

func TestDiseqToDistinctConstants(t *testing.T) {
	a := query.MustParse("ans() :- R(x,y), x != y")
	b := query.MustParse("ans() :- R('c','d')")
	// x -> 'c', y -> 'd': the disequality maps to two distinct constants,
	// which is vacuously satisfied.
	if !Exists(a, b) {
		t.Error("diseq over distinct constants should be accepted")
	}
	c := query.MustParse("ans() :- R('c','c')")
	if Exists(a, c) {
		t.Error("diseq collapsing to 'c' != 'c' must be rejected")
	}
}

func TestDiseqCollapseRejected(t *testing.T) {
	a := query.MustParse("ans() :- R(x,y), x != y")
	b := query.MustParse("ans() :- R(z,z)")
	// x, y both map to z: the disequality collapses; no homomorphism.
	if Exists(a, b) {
		t.Error("collapsed diseq must block the homomorphism")
	}
}

func TestSurjectiveHomQnoPminFamily(t *testing.T) {
	// The five-cycle queries of Figure 2 all map onto each other's
	// relational structure, but the disequalities are incompatible, so no
	// homomorphisms exist between distinct members in either direction.
	qNoPmin := query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x2")
	qAlt := query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x3")
	if Exists(qNoPmin, qAlt) || Exists(qAlt, qNoPmin) {
		t.Error("five-cycle queries with different diseqs admit no homomorphisms")
	}
}

func TestFindReturnsValidMapping(t *testing.T) {
	from := query.MustParse("ans(x) :- R(x,y), S(y)")
	to := query.MustParse("ans(u) :- R(u,v), S(v), T(v)")
	h, ok := Find(from, to)
	if !ok {
		t.Fatal("homomorphism should exist")
	}
	// Verify the atom mapping is consistent with the variable mapping.
	for i, at := range from.Atoms {
		img := to.Atoms[h.AtomMap[i]]
		if img.Rel != at.Rel {
			t.Errorf("atom %d maps across relations", i)
		}
		for k, a := range at.Args {
			want := h.VarMap.Apply(a)
			if img.Args[k] != want {
				t.Errorf("atom %d arg %d: image %v, VarMap says %v", i, k, img.Args[k], want)
			}
		}
	}
}

func TestSurjectiveNeedsFullCover(t *testing.T) {
	from := query.MustParse("ans() :- R(x,y), R(y,z)")
	to := query.MustParse("ans() :- R(u,u), S(u)")
	// S(u) can never be covered by atoms of `from`.
	if ExistsSurjective(from, to) {
		t.Error("surjective homomorphism cannot cover S(u)")
	}
}
