package hom

import (
	"sort"
	"strings"

	"provmin/internal/query"
)

// Isomorphic reports whether a and b are isomorphic: there is a bijective
// mapping of atoms inducing a variable bijection that preserves heads,
// constants and the disequality sets exactly. The canonical rewriting
// (Def. 4.1) identifies completions up to isomorphism.
func Isomorphic(a, b *query.CQ) bool {
	if len(a.Atoms) != len(b.Atoms) || len(a.Diseqs) != len(b.Diseqs) {
		return false
	}
	if len(a.Vars()) != len(b.Vars()) {
		return false
	}
	found := false
	search(a, b, searchOpts{bijectiveAtom: true, injectiveVar: true}, func(*Homomorphism) bool {
		found = true
		return false
	})
	return found
}

// Automorphisms returns the distinct automorphisms of q: isomorphisms from q
// to itself, identified by their variable mapping. Lemma 5.7 ties the
// coefficient of a monomial in the core provenance to this count for the
// adjunct that produced it.
func Automorphisms(q *query.CQ) []query.Subst {
	seen := map[string]bool{}
	var out []query.Subst
	search(q, q, searchOpts{bijectiveAtom: true, injectiveVar: true}, func(h *Homomorphism) bool {
		k := substKey(h.VarMap)
		if !seen[k] {
			seen[k] = true
			vm := query.Subst{}
			for a, b := range h.VarMap {
				vm[a] = b
			}
			out = append(out, vm)
		}
		return true
	})
	return out
}

// CountAutomorphisms returns |Aut(q)|.
func CountAutomorphisms(q *query.CQ) int { return len(Automorphisms(q)) }

func substKey(s query.Subst) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("->")
		b.WriteString(s[k].String())
		b.WriteByte(';')
	}
	return b.String()
}
