package hom

import (
	"math/rand"
	"testing"

	"provmin/internal/query"
)

func TestExample29Containment(t *testing.T) {
	q2 := query.MustParse("ans(x) :- R(x,x)")
	qconj := query.MustParse("ans(x) :- R(x,y), R(y,x)")
	got, err := ContainedCQ(q2, qconj)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("Q2 ⊆ Qconj (Example 2.9)")
	}
	rev, err := ContainedCQ(qconj, q2)
	if err != nil {
		t.Fatal(err)
	}
	if rev {
		t.Error("Qconj ⊄ Q2")
	}
}

func TestEquivalentCQ(t *testing.T) {
	a := query.MustParse("ans(x) :- R(x,y), R(x,z)")
	b := query.MustParse("ans(x) :- R(x,y)")
	eq, err := EquivalentCQ(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("R(x,y),R(x,z) ≡ R(x,y)")
	}
	c := query.MustParse("ans(x) :- R(y,x)")
	eq, err = EquivalentCQ(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("different column bindings are not equivalent")
	}
}

func TestContainedCQRejectsDiseqs(t *testing.T) {
	a := query.MustParse("ans() :- R(x,y), x != y")
	b := query.MustParse("ans() :- R(x,y)")
	if _, err := ContainedCQ(a, b); err == nil {
		t.Error("ContainedCQ must reject queries with disequalities")
	}
}

func TestContainedCompleteLHS(t *testing.T) {
	// Complete query: ans(x) :- R(x,y), x != y. Is it contained in
	// ans(x) :- R(x,y)? Yes: hom from the latter to the former.
	c := query.MustParse("ans(x) :- R(x,y), x != y")
	g := query.MustParse("ans(x) :- R(x,y)")
	got, err := ContainedCompleteLHS(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("complete query should be contained in its relaxation")
	}
	// Containment fails against an unrelated query.
	u := query.MustParse("ans(x) :- S(x)")
	got, err = ContainedCompleteLHS(c, u)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("R-query is not contained in S-query")
	}
}

func TestContainedCompleteLHSPreconditions(t *testing.T) {
	incomplete := query.MustParse("ans() :- R(x,y), R(y,z), x != z")
	g := query.MustParse("ans() :- R(x,y)")
	if _, err := ContainedCompleteLHS(incomplete, g); err == nil {
		t.Error("incomplete left query must be rejected")
	}
	// Complete but not w.r.t. the right query's constants.
	c := query.MustParse("ans(x) :- R(x,y), x != y")
	withConst := query.MustParse("ans(x) :- R(x,'c')")
	if _, err := ContainedCompleteLHS(c, withConst); err == nil {
		t.Error("left query must be complete w.r.t. right constants")
	}
}

func TestFreeze(t *testing.T) {
	q := query.MustParse("ans(x) :- R(x,y), S(y,'c')")
	inst, head := Freeze(q)
	if inst.Lookup("R") == nil || inst.Lookup("S") == nil {
		t.Fatal("frozen instance missing relations")
	}
	if !inst.Lookup("R").Contains("_x", "_y") {
		t.Error("frozen R tuple missing")
	}
	if !inst.Lookup("S").Contains("_y", "c") {
		t.Error("frozen S tuple must keep the constant")
	}
	if len(head) != 1 || head[0] != "_x" {
		t.Errorf("frozen head = %v", head)
	}
	if !inst.IsAbstractlyTagged() {
		t.Error("frozen instance must be abstractly tagged")
	}
}

func TestCanonicalDBAgreesWithHomomorphism(t *testing.T) {
	// Cross-validate the two containment procedures on random CQ pairs.
	rng := rand.New(rand.NewSource(11))
	rels := []string{"R", "S"}
	genCQ := func() *query.CQ {
		nAtoms := 1 + rng.Intn(3)
		vars := []string{"x", "y", "z"}
		atoms := make([]query.Atom, nAtoms)
		for i := range atoms {
			atoms[i] = query.NewAtom(rels[rng.Intn(len(rels))],
				query.V(vars[rng.Intn(len(vars))]), query.V(vars[rng.Intn(len(vars))]))
		}
		head := query.NewAtom("ans", atoms[0].Args[0])
		return query.NewCQ(head, atoms, nil)
	}
	for i := 0; i < 300; i++ {
		q1, q2 := genCQ(), genCQ()
		byHom, err := ContainedCQ(q1, q2)
		if err != nil {
			t.Fatal(err)
		}
		byDB, err := ContainedCQViaCanonicalDB(q1, q2)
		if err != nil {
			t.Fatal(err)
		}
		if byHom != byDB {
			t.Fatalf("containment disagreement on\n%v\n%v\nhom=%v db=%v", q1, q2, byHom, byDB)
		}
	}
}
