// Package hom implements homomorphisms between conjunctive queries with
// disequalities (Def. 2.10), isomorphism and automorphism counting, and the
// homomorphism-based containment tests of Theorem 3.1 together with the
// provenance-order sufficient condition of Theorem 3.3 (surjective
// homomorphisms).
package hom

import (
	"provmin/internal/query"
)

// Homomorphism is a mapping h : Q -> Q' from the atoms of Q to the atoms of
// Q' inducing a mapping on arguments (Def. 2.10). AtomMap[i] is the index in
// Q'.Atoms of the image of Q.Atoms[i]; VarMap is the induced argument
// mapping restricted to variables (constants always map to themselves).
type Homomorphism struct {
	AtomMap []int
	VarMap  query.Subst
}

// Find returns some homomorphism from `from` to `to`, if one exists.
func Find(from, to *query.CQ) (*Homomorphism, bool) {
	var found *Homomorphism
	search(from, to, searchOpts{}, func(h *Homomorphism) bool {
		found = h
		return false
	})
	return found, found != nil
}

// Exists reports whether any homomorphism from `from` to `to` exists.
func Exists(from, to *query.CQ) bool {
	_, ok := Find(from, to)
	return ok
}

// FindSurjective returns a homomorphism from `from` to `to` that is
// surjective on relational atoms, if one exists (Thm. 3.3's hypothesis).
func FindSurjective(from, to *query.CQ) (*Homomorphism, bool) {
	var found *Homomorphism
	search(from, to, searchOpts{surjective: true}, func(h *Homomorphism) bool {
		found = h
		return false
	})
	return found, found != nil
}

// ExistsSurjective reports whether a homomorphism from `from` to `to` exists
// that is surjective on relational atoms.
func ExistsSurjective(from, to *query.CQ) bool {
	_, ok := FindSurjective(from, to)
	return ok
}

// TerserBySurjectivity reports the Theorem 3.3 sufficient condition for
// q ≤_P qp among equivalent queries: a homomorphism from qp to q surjective
// on relational atoms.
func TerserBySurjectivity(q, qp *query.CQ) bool {
	return ExistsSurjective(qp, q)
}

type searchOpts struct {
	surjective    bool // image must cover every atom of `to`
	bijectiveAtom bool // atom map must be a bijection (isomorphism search)
	injectiveVar  bool // variable map must be injective, variables to variables
}

// search enumerates homomorphisms from `from` to `to` under the given
// constraints, calling yield for each; yield returns false to stop. search
// reports whether enumeration ran to completion.
func search(from, to *query.CQ, opts searchOpts, yield func(*Homomorphism) bool) bool {
	if opts.bijectiveAtom && len(from.Atoms) != len(to.Atoms) {
		return true
	}
	s := &homSearch{
		from: from, to: to, opts: opts, yield: yield,
		varMap:  query.Subst{},
		inverse: map[query.Arg]string{},
		atomMap: make([]int, len(from.Atoms)),
		covered: make([]int, len(to.Atoms)),
	}
	// Condition 2 of Def. 2.10: the head of `from` maps to the head of `to`.
	if len(from.Head.Args) != len(to.Head.Args) || from.Head.Rel != to.Head.Rel {
		return true
	}
	for i, a := range from.Head.Args {
		if !s.bindArg(a, to.Head.Args[i]) {
			return true
		}
	}
	return s.extend(0)
}

type homSearch struct {
	from, to *query.CQ
	opts     searchOpts
	yield    func(*Homomorphism) bool
	varMap   query.Subst
	inverse  map[query.Arg]string // image -> preimage variable (injectivity)
	atomMap  []int
	covered  []int // usage count per `to` atom
	bound    []string
}

// bindArg attempts to record that argument a of `from` maps to argument b of
// `to`, extending varMap. It returns false on conflict. Newly bound
// variables are pushed on s.bound for rollback.
func (s *homSearch) bindArg(a, b query.Arg) bool {
	if a.Const {
		// Condition 4: constants map to occurrences of the same constant.
		return b.Const && a.Name == b.Name
	}
	if img, ok := s.varMap[a.Name]; ok {
		return img == b // condition 3: consistency
	}
	if s.opts.injectiveVar {
		if b.Const {
			return false
		}
		if _, taken := s.inverse[b]; taken {
			return false
		}
		s.inverse[b] = a.Name
	}
	s.varMap[a.Name] = b
	s.bound = append(s.bound, a.Name)
	return true
}

func (s *homSearch) rollbackTo(mark int) {
	for len(s.bound) > mark {
		v := s.bound[len(s.bound)-1]
		s.bound = s.bound[:len(s.bound)-1]
		if s.opts.injectiveVar {
			delete(s.inverse, s.varMap[v])
		}
		delete(s.varMap, v)
	}
}

func (s *homSearch) extend(i int) bool {
	if i == len(s.from.Atoms) {
		if s.opts.surjective && !s.allCovered() {
			return true
		}
		if !s.diseqsMapped() {
			return true
		}
		return s.emit()
	}
	// Surjectivity pruning: the remaining atoms must be able to cover the
	// still-uncovered atoms of `to`.
	if s.opts.surjective {
		uncovered := 0
		for _, c := range s.covered {
			if c == 0 {
				uncovered++
			}
		}
		if uncovered > len(s.from.Atoms)-i {
			return true
		}
	}
	at := s.from.Atoms[i]
	for j, cand := range s.to.Atoms {
		if cand.Rel != at.Rel || len(cand.Args) != len(at.Args) {
			continue
		}
		if s.opts.bijectiveAtom && s.covered[j] > 0 {
			continue
		}
		mark := len(s.bound)
		ok := true
		for k, a := range at.Args {
			if !s.bindArg(a, cand.Args[k]) {
				ok = false
				break
			}
		}
		if ok {
			s.atomMap[i] = j
			s.covered[j]++
			if !s.extend(i + 1) {
				s.covered[j]--
				s.rollbackTo(mark)
				return false
			}
			s.covered[j]--
		}
		s.rollbackTo(mark)
	}
	return true
}

func (s *homSearch) allCovered() bool {
	for _, c := range s.covered {
		if c == 0 {
			return false
		}
	}
	return true
}

// diseqsMapped checks condition 1 of Def. 2.10 for disequality atoms: every
// disequality of `from` must map to a disequality present in `to`. A
// disequality whose sides map to two distinct constants is accepted as
// vacuously mapped (distinct constants are unequal by definition); a
// disequality collapsing to identical sides can never be mapped.
func (s *homSearch) diseqsMapped() bool {
	for _, d := range s.from.Diseqs {
		l := s.varMap.Apply(d.Left)
		r := s.varMap.Apply(d.Right)
		if l == r {
			return false
		}
		if l.Const && r.Const {
			continue // distinct constants
		}
		if s.opts.injectiveVar {
			// Isomorphism search: the image disequality must literally exist.
			if !s.to.HasDiseq(l, r) {
				return false
			}
			continue
		}
		if !s.to.HasDiseq(l, r) {
			return false
		}
	}
	if s.opts.injectiveVar {
		// For isomorphisms the disequality sets must correspond exactly;
		// with an injective variable map it suffices that counts agree.
		if len(s.from.Diseqs) != len(s.to.Diseqs) {
			return false
		}
	}
	return true
}

func (s *homSearch) emit() bool {
	am := make([]int, len(s.atomMap))
	copy(am, s.atomMap)
	vm := query.Subst{}
	for k, v := range s.varMap {
		vm[k] = v
	}
	return s.yield(&Homomorphism{AtomMap: am, VarMap: vm})
}
