package hom_test

import (
	"fmt"

	"provmin/internal/hom"
	"provmin/internal/query"
)

func ExampleExists() {
	// Example 2.11: a homomorphism from Qconj to Q2 exists, none back.
	qconj := query.MustParse("ans(x) :- R(x,y), R(y,x)")
	q2 := query.MustParse("ans(x) :- R(x,x)")
	fmt.Println(hom.Exists(qconj, q2), hom.Exists(q2, qconj))
	// Output:
	// true false
}

func ExampleExistsSurjective() {
	// Theorem 3.3's hypothesis on Example 3.4's pair.
	q := query.MustParse("ans() :- R(x), R(y)")
	qp := query.MustParse("ans() :- R(x)")
	fmt.Println(hom.ExistsSurjective(q, qp), hom.ExistsSurjective(qp, q))
	// Output:
	// true false
}

func ExampleCountAutomorphisms() {
	tri := query.MustParse("ans() :- R(x,y), R(y,z), R(z,x)")
	fmt.Println(hom.CountAutomorphisms(tri))
	// Output:
	// 3
}

func ExampleContainedCQ() {
	q2 := query.MustParse("ans(x) :- R(x,x)")
	qconj := query.MustParse("ans(x) :- R(x,y), R(y,x)")
	ok, _ := hom.ContainedCQ(q2, qconj)
	fmt.Println(ok)
	// Output:
	// true
}
