package algebra

import (
	"testing"

	"provmin/internal/db"
	"provmin/internal/semiring"
	"provmin/internal/workload"
)

func scan(t *testing.T, rel string, cols ...string) *Scan {
	t.Helper()
	s, err := NewScan(rel, cols...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScanEval(t *testing.T) {
	d := workload.Table2()
	res, err := Eval(scan(t, "R", "a", "b"), d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("result:\n%s", res)
	}
	p, _ := res.Lookup(db.Tuple{"a", "b"})
	if !p.Equal(semiring.Var("s2")) {
		t.Errorf("prov = %v", p)
	}
}

func TestScanMissingRelationEmpty(t *testing.T) {
	res, err := Eval(scan(t, "Nope", "a"), db.NewInstance())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Error("missing relation should evaluate to empty")
	}
}

func TestScanArityMismatch(t *testing.T) {
	if _, err := Eval(scan(t, "R", "only"), workload.Table2()); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestSelectEvalEqConst(t *testing.T) {
	d := workload.Table2()
	sel, err := NewSelect(scan(t, "R", "x", "y"), Condition{Op: OpEq, Left: "x", Right: "a", RightIsConst: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(sel, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || !res.Contains(db.Tuple{"a", "a"}) || !res.Contains(db.Tuple{"a", "b"}) {
		t.Fatalf("result:\n%s", res)
	}
}

func TestSelectEvalNeqCols(t *testing.T) {
	d := workload.Table2()
	sel, err := NewSelect(scan(t, "R", "x", "y"), Condition{Op: OpNeq, Left: "x", Right: "y"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(sel, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Contains(db.Tuple{"a", "a"}) {
		t.Fatalf("result:\n%s", res)
	}
}

func TestProjectAddsAnnotations(t *testing.T) {
	d := workload.Table2()
	proj, err := NewProject(scan(t, "R", "x", "y"), "x")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(proj, d)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := res.Lookup(db.Tuple{"a"})
	if !pa.Equal(semiring.MustParsePolynomial("s1 + s2")) {
		t.Errorf("prov(a) = %v, want s1 + s2", pa)
	}
}

func TestJoinMultipliesAnnotations(t *testing.T) {
	// Qconj as a plan: π_x(R(x,y) ⋈ ρ(R(y,x))).
	d := workload.Table2()
	left := scan(t, "R", "x", "y")
	right := scan(t, "R", "y", "x")
	join, err := NewJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewProject(join, "x")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(proj, d)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := res.Lookup(db.Tuple{"a"})
	if !pa.Equal(semiring.MustParsePolynomial("s1^2 + s2*s3")) {
		t.Errorf("prov(a) = %v, want s1^2 + s2*s3 (Example 2.14)", pa)
	}
}

func TestCartesianProduct(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("U", "u1", "a")
	d.MustAdd("V", "v1", "b")
	join, err := NewJoin(scan(t, "U", "x"), scan(t, "V", "y"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(join, d)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := res.Lookup(db.Tuple{"a", "b"})
	if !p.Equal(semiring.MustParsePolynomial("u1*v1")) {
		t.Errorf("prov = %v", p)
	}
}

func TestUnionAddsAnnotations(t *testing.T) {
	d := workload.Table2()
	u, err := NewUnion(scan(t, "R", "x", "y"), scan(t, "R", "x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(u, d)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := res.Lookup(db.Tuple{"a", "b"})
	if !p.Equal(semiring.MustParsePolynomial("2*s2")) {
		t.Errorf("prov = %v, want 2*s2", p)
	}
}

func TestRename(t *testing.T) {
	d := workload.Table2()
	r, err := NewRename(scan(t, "R", "x", "y"), "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	cols := r.Columns()
	if cols[0] != "x" || cols[1] != "z" {
		t.Errorf("Columns = %v", cols)
	}
	res, err := Eval(r, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Errorf("rename must not change tuples:\n%s", res)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewScan("R", "x", "x"); err == nil {
		t.Error("duplicate scan columns must fail")
	}
	s := scan(t, "R", "x", "y")
	if _, err := NewSelect(s, Condition{Op: OpEq, Left: "zz", Right: "x"}); err == nil {
		t.Error("unknown select column must fail")
	}
	if _, err := NewProject(s, "zz"); err == nil {
		t.Error("unknown project column must fail")
	}
	if _, err := NewProject(s, "x", "x"); err == nil {
		t.Error("duplicate project column must fail")
	}
	if _, err := NewRename(s, "zz", "w"); err == nil {
		t.Error("unknown rename source must fail")
	}
	if _, err := NewRename(s, "x", "y"); err == nil {
		t.Error("rename onto existing column must fail")
	}
	one := scan(t, "S", "x")
	if _, err := NewUnion(s, one); err == nil {
		t.Error("incompatible union schemas must fail")
	}
}

func TestPlanStrings(t *testing.T) {
	s := scan(t, "R", "x", "y")
	sel := Must(NewSelect(s, Condition{Op: OpNeq, Left: "x", Right: "y"}))
	proj := Must(NewProject(sel, "x"))
	str := proj.String()
	if str != "π[x](σ[x!=y](R(x,y)))" {
		t.Errorf("String = %q", str)
	}
}
