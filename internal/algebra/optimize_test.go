package algebra

import (
	"strings"
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/minimize"
	"provmin/internal/workload"
)

func TestOptimizeMergesSelections(t *testing.T) {
	inner := Must(NewSelect(scan(t, "R", "x", "y"), Condition{Op: OpNeq, Left: "x", Right: "y"}))
	outer := Must(NewSelect(inner, Condition{Op: OpEq, Left: "x", Right: "a", RightIsConst: true}))
	opt := Optimize(outer)
	if strings.Count(opt.String(), "σ") != 1 {
		t.Errorf("selections not merged: %v", opt)
	}
}

func TestOptimizePushesSelectionBelowUnion(t *testing.T) {
	u := Must(NewUnion(scan(t, "R", "x", "y"), scan(t, "S", "x", "y")))
	sel := Must(NewSelect(u, Condition{Op: OpNeq, Left: "x", Right: "y"}))
	opt := Optimize(sel)
	if _, ok := opt.(*Union); !ok {
		t.Errorf("selection not pushed below union: %v", opt)
	}
}

func TestOptimizePushesSelectionIntoJoin(t *testing.T) {
	j := Must(NewJoin(scan(t, "R", "x", "y"), scan(t, "S", "y", "z")))
	sel := Must(NewSelect(j,
		Condition{Op: OpEq, Left: "x", Right: "a", RightIsConst: true}, // left side
		Condition{Op: OpNeq, Left: "y", Right: "z"},                    // right side
		Condition{Op: OpNeq, Left: "x", Right: "z"},                    // spans both: stays
	))
	opt := Optimize(sel)
	s := opt.String()
	// The x='a' condition must now sit under the join's left input.
	if !strings.Contains(s, "σ[x='a'](R(x,y))") {
		t.Errorf("left pushdown missing: %v", s)
	}
	if !strings.Contains(s, "σ[y!=z](S(y,z))") {
		t.Errorf("right pushdown missing: %v", s)
	}
	if !strings.Contains(s, "σ[x!=z]") {
		t.Errorf("spanning condition lost: %v", s)
	}
}

func TestOptimizeCollapsesProjections(t *testing.T) {
	p1 := Must(NewProject(scan(t, "R", "x", "y"), "x", "y"))
	p2 := Must(NewProject(p1, "x"))
	opt := Optimize(p2)
	if strings.Count(opt.String(), "π") != 1 {
		t.Errorf("projections not collapsed: %v", opt)
	}
	// Identity projection disappears entirely.
	ident := Must(NewProject(scan(t, "R", "x", "y"), "x", "y"))
	if _, ok := Optimize(ident).(*Scan); !ok {
		t.Errorf("identity projection kept: %v", Optimize(ident))
	}
}

func TestOptimizePreservesResultsAndCore(t *testing.T) {
	// The optimizer must preserve the computed query exactly (same tuples)
	// and the core provenance (MinProv of compiled plans), though the raw
	// provenance may differ.
	plans := []Plan{
		Must(NewSelect(
			Must(NewProject(Must(NewJoin(scan(t, "R", "x", "y"), scan(t, "R", "y", "x"))), "x", "y")),
			Condition{Op: OpNeq, Left: "x", Right: "y"})),
		Must(NewSelect(
			Must(NewUnion(scan(t, "R", "x", "y"), scan(t, "R", "x", "y"))),
			Condition{Op: OpEq, Left: "x", Right: "a", RightIsConst: true})),
		Must(NewProject(Must(NewProject(Must(NewJoin(scan(t, "R", "x", "y"), scan(t, "S", "y", "z"))), "x", "y")), "x")),
	}
	d := workload.Table2()
	db.NewGenerator(9).RandomRelation(d, "S", 2, 5, 3)
	for _, p := range plans {
		opt := Optimize(p)
		rOrig, err := Eval(p, d)
		if err != nil {
			t.Fatal(err)
		}
		rOpt, err := Eval(opt, d)
		if err != nil {
			t.Fatal(err)
		}
		if !rOrig.SameTuples(rOpt) {
			t.Fatalf("optimizer changed the result of %v:\n%s\nvs %v:\n%s", p, rOrig, opt, rOpt)
		}
		qOrig, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		qOpt, err := Compile(opt)
		if err != nil {
			t.Fatal(err)
		}
		if !minimize.Equivalent(qOrig, qOpt) {
			t.Fatalf("optimizer broke equivalence of %v", p)
		}
		coreOrig, err := eval.EvalUCQ(minimize.MinProv(qOrig), d)
		if err != nil {
			t.Fatal(err)
		}
		coreOpt, err := eval.EvalUCQ(minimize.MinProv(qOpt), d)
		if err != nil {
			t.Fatal(err)
		}
		if !coreOrig.SameAnnotated(coreOpt) {
			t.Fatalf("core provenance not invariant under optimization of %v", p)
		}
	}
}

func TestSwapCommutesJoin(t *testing.T) {
	j := Must(NewJoin(scan(t, "R", "x", "y"), scan(t, "S", "y", "z")))
	swapped, err := Swap(j)
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewInstance()
	db.NewGenerator(1).RandomGraph(d, "R", 3, 5)
	db.NewGenerator(2).RandomRelation(d, "S", 2, 5, 3)
	a, err := Eval(j, d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Eval(swapped, d)
	if err != nil {
		t.Fatal(err)
	}
	// Join commutation is provenance-neutral: annotated results coincide.
	if !a.SameAnnotated(b) {
		t.Errorf("join commutation changed provenance:\n%s\nvs\n%s", a, b)
	}
}

func TestOptimizeDropsIdentityRename(t *testing.T) {
	r := &Rename{In: scan(t, "R", "x", "y"), From: "x", To: "x"}
	if _, ok := Optimize(r).(*Scan); !ok {
		t.Errorf("identity rename kept: %v", Optimize(r))
	}
}
