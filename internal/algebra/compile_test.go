package algebra

import (
	"math/rand"
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/minimize"
	"provmin/internal/workload"
)

// planQconj is Qconj as a plan: π_x(R(x,y) ⋈ R(y,x)).
func planQconj(t *testing.T) Plan {
	t.Helper()
	join := Must(NewJoin(scan(t, "R", "x", "y"), scan(t, "R", "y", "x")))
	return Must(NewProject(join, "x"))
}

func TestCompileScan(t *testing.T) {
	u, err := Compile(scan(t, "R", "x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Adjuncts) != 1 || len(u.Adjuncts[0].Atoms) != 1 {
		t.Fatalf("compiled = %v", u)
	}
}

func TestCompileMatchesEvalOnPaperPlans(t *testing.T) {
	plans := []Plan{
		scan(t, "R", "x", "y"),
		Must(NewProject(scan(t, "R", "x", "y"), "x")),
		Must(NewSelect(scan(t, "R", "x", "y"), Condition{Op: OpNeq, Left: "x", Right: "y"})),
		Must(NewSelect(scan(t, "R", "x", "y"), Condition{Op: OpEq, Left: "x", Right: "a", RightIsConst: true})),
		Must(NewSelect(scan(t, "R", "x", "y"), Condition{Op: OpEq, Left: "x", Right: "y"})),
		planQconj(t),
		Must(NewUnion(
			Must(NewProject(Must(NewSelect(Must(NewJoin(scan(t, "R", "x", "y"), scan(t, "R", "y", "x"))),
				Condition{Op: OpNeq, Left: "x", Right: "y"})), "x")),
			Must(NewProject(Must(NewSelect(scan(t, "R", "x", "y"), Condition{Op: OpEq, Left: "x", Right: "y"})), "x")),
		)), // Qunion as a plan
	}
	dbs := []*db.Instance{workload.Table2(), workload.Table6()}
	for seed := int64(0); seed < 2; seed++ {
		d := db.NewInstance()
		db.NewGenerator(seed).RandomGraph(d, "R", 4, 9)
		dbs = append(dbs, d)
	}
	for _, p := range plans {
		u, err := Compile(p)
		if err != nil {
			t.Fatalf("Compile(%v): %v", p, err)
		}
		for di, d := range dbs {
			rPlan, err := Eval(p, d)
			if err != nil {
				t.Fatal(err)
			}
			rQuery, err := eval.EvalUCQ(u, d)
			if err != nil {
				t.Fatal(err)
			}
			if !rPlan.SameAnnotated(rQuery) {
				t.Errorf("plan %v db %d: plan eval and compiled eval differ:\n%s\nvs\n%s\ncompiled: %v",
					p, di, rPlan, rQuery, u)
			}
		}
	}
}

func TestCompileUnsatisfiableSelection(t *testing.T) {
	sel := Must(NewSelect(scan(t, "R", "x", "y"),
		Condition{Op: OpEq, Left: "x", Right: "a", RightIsConst: true},
		Condition{Op: OpEq, Left: "x", Right: "b", RightIsConst: true}))
	if _, err := Compile(sel); err == nil {
		t.Error("contradictory selections must fail compilation")
	}
	// And evaluation agrees: empty result.
	res, err := Eval(sel, workload.Table2())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Error("contradictory selection should evaluate to empty")
	}
}

func TestCompileNeqOnConstants(t *testing.T) {
	// x = 'a' then x != 'b': vacuously true, no diseq needed.
	sel := Must(NewSelect(scan(t, "R", "x", "y"),
		Condition{Op: OpEq, Left: "x", Right: "a", RightIsConst: true},
		Condition{Op: OpNeq, Left: "x", Right: "b", RightIsConst: true}))
	u, err := Compile(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Adjuncts[0].Diseqs) != 0 {
		t.Errorf("vacuous diseq kept: %v", u)
	}
	// x = 'a' then x != 'a': unsatisfiable.
	bad := Must(NewSelect(scan(t, "R", "x", "y"),
		Condition{Op: OpEq, Left: "x", Right: "a", RightIsConst: true},
		Condition{Op: OpNeq, Left: "x", Right: "a", RightIsConst: true}))
	if _, err := Compile(bad); err == nil {
		t.Error("x='a' ∧ x≠'a' must fail compilation")
	}
}

// TestPlanInvarianceOfCoreProvenance is the §8 payoff: two different
// physical plans for the same query yield different provenance, but the
// core provenance — MinProv of either compiled query — is identical.
func TestPlanInvarianceOfCoreProvenance(t *testing.T) {
	// Plan A: Qconj directly (join then project).
	planA := planQconj(t)
	// Plan B: the by-case plan (Qunion): diseq branch ∪ self-loop branch.
	planB := Must(NewUnion(
		Must(NewProject(Must(NewSelect(Must(NewJoin(scan(t, "R", "x", "y"), scan(t, "R", "y", "x"))),
			Condition{Op: OpNeq, Left: "x", Right: "y"})), "x")),
		Must(NewProject(Must(NewSelect(scan(t, "R", "x", "y"), Condition{Op: OpEq, Left: "x", Right: "y"})), "x")),
	))
	d := workload.Table2()
	rA, err := Eval(planA, d)
	if err != nil {
		t.Fatal(err)
	}
	rB, err := Eval(planB, d)
	if err != nil {
		t.Fatal(err)
	}
	if rA.SameAnnotated(rB) {
		t.Fatal("the two plans should produce different provenance (else the demo is vacuous)")
	}
	qA, err := Compile(planA)
	if err != nil {
		t.Fatal(err)
	}
	qB, err := Compile(planB)
	if err != nil {
		t.Fatal(err)
	}
	if !minimize.Equivalent(qA, qB) {
		t.Fatal("compiled queries must be equivalent")
	}
	coreA, err := eval.EvalUCQ(minimize.MinProv(qA), d)
	if err != nil {
		t.Fatal(err)
	}
	coreB, err := eval.EvalUCQ(minimize.MinProv(qB), d)
	if err != nil {
		t.Fatal(err)
	}
	if !coreA.SameAnnotated(coreB) {
		t.Errorf("core provenance must be plan-invariant:\n%s\nvs\n%s", coreA, coreB)
	}
}

// TestCompileMatchesEvalOnRandomPlans fuzzes plan shapes against the
// compiled-query semantics.
func TestCompileMatchesEvalOnRandomPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := db.NewInstance()
	db.NewGenerator(17).RandomGraph(d, "R", 3, 6)
	db.NewGenerator(18).RandomRelation(d, "S", 2, 5, 3)

	var genPlan func(depth int, varPfx string) Plan
	genPlan = func(depth int, varPfx string) Plan {
		if depth == 0 || rng.Intn(3) == 0 {
			rels := []string{"R", "S"}
			return scan(t, rels[rng.Intn(2)], varPfx+"1", varPfx+"2")
		}
		switch rng.Intn(4) {
		case 0:
			in := genPlan(depth-1, varPfx)
			cols := in.Columns()
			cond := Condition{Op: OpNeq, Left: cols[0], Right: cols[len(cols)-1]}
			if cols[0] == cols[len(cols)-1] {
				cond = Condition{Op: OpEq, Left: cols[0], Right: "d0", RightIsConst: true}
			}
			if rng.Intn(2) == 0 {
				cond.Op = OpEq
			}
			if cond.Op == OpEq && cond.Left == cond.Right && !cond.RightIsConst {
				return in
			}
			return Must(NewSelect(in, cond))
		case 1:
			in := genPlan(depth-1, varPfx)
			cols := in.Columns()
			return Must(NewProject(in, cols[rng.Intn(len(cols))]))
		case 2:
			l := genPlan(depth-1, varPfx+"l")
			r := genPlan(depth-1, varPfx+"r")
			return Must(NewJoin(l, r))
		default:
			l := genPlan(depth-1, varPfx)
			// Union requires identical schemas; reuse the same generator
			// path only when schemas match, else fall back to the branch.
			r := genPlan(depth-1, varPfx)
			if len(l.Columns()) == len(r.Columns()) {
				same := true
				for i := range l.Columns() {
					if l.Columns()[i] != r.Columns()[i] {
						same = false
					}
				}
				if same {
					return Must(NewUnion(l, r))
				}
			}
			return l
		}
	}

	for i := 0; i < 60; i++ {
		p := genPlan(2, "c")
		u, err := Compile(p)
		if err != nil {
			// Unsatisfiable plans are legitimate generator outputs; their
			// evaluation must then be empty.
			res, evalErr := Eval(p, d)
			if evalErr == nil && res.Len() != 0 {
				t.Fatalf("plan %v: compile failed (%v) but evaluation is non-empty", p, err)
			}
			continue
		}
		rPlan, err := Eval(p, d)
		if err != nil {
			t.Fatal(err)
		}
		rQuery, err := eval.EvalUCQ(u, d)
		if err != nil {
			t.Fatalf("plan %v compiled to invalid query %v: %v", p, u, err)
		}
		if !rPlan.SameAnnotated(rQuery) {
			t.Fatalf("iteration %d: plan %v\ncompiled %v\nplan result:\n%s\nquery result:\n%s",
				i, p, u, rPlan, rQuery)
		}
	}
}
