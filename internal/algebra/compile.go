package algebra

import (
	"fmt"

	"provmin/internal/query"
)

// Compile translates an SPJU plan into an equivalent UCQ≠ query whose
// provenance semantics (Def. 2.12) coincides with the plan's N[X] semantics
// — the tests verify annotated-result equality on every instance tried.
// Once compiled, the paper's machinery applies: MinProv of the compiled
// query realizes the core provenance, which is invariant across all
// equivalent plans (§8's observation, answered by the core).
func Compile(p Plan) (*query.UCQ, error) {
	c := &compiler{}
	bodies, err := c.compile(p)
	if err != nil {
		return nil, err
	}
	if len(bodies) == 0 {
		return nil, fmt.Errorf("plan is unsatisfiable (contradictory selections on every branch)")
	}
	cols := p.Columns()
	adjuncts := make([]*query.CQ, 0, len(bodies))
	for _, b := range bodies {
		headArgs := make([]query.Arg, len(cols))
		for i, col := range cols {
			headArgs[i] = b.colArg[col]
		}
		q := query.NewCQ(query.NewAtom("ans", headArgs...), b.atoms, b.diseqs)
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("compiled adjunct invalid: %w", err)
		}
		adjuncts = append(adjuncts, q)
	}
	return &query.UCQ{Adjuncts: adjuncts}, nil
}

// body is one conjunctive branch under construction.
type body struct {
	atoms  []query.Atom
	diseqs []query.Diseq
	colArg map[string]query.Arg
}

func (b *body) clone() *body {
	nb := &body{
		atoms:  make([]query.Atom, len(b.atoms)),
		diseqs: make([]query.Diseq, len(b.diseqs)),
		colArg: make(map[string]query.Arg, len(b.colArg)),
	}
	for i, a := range b.atoms {
		nb.atoms[i] = a.Clone()
	}
	copy(nb.diseqs, b.diseqs)
	for k, v := range b.colArg {
		nb.colArg[k] = v
	}
	return nb
}

// substitute replaces variable v by arg throughout the body. It reports
// false if a disequality collapses (the body becomes unsatisfiable).
func (b *body) substitute(v string, arg query.Arg) bool {
	s := query.Subst{v: arg}
	for i := range b.atoms {
		for j := range b.atoms[i].Args {
			b.atoms[i].Args[j] = s.Apply(b.atoms[i].Args[j])
		}
	}
	for i := range b.diseqs {
		d := query.Diseq{Left: s.Apply(b.diseqs[i].Left), Right: s.Apply(b.diseqs[i].Right)}
		if d.Left == d.Right {
			return false
		}
		b.diseqs[i] = d.Normalize()
	}
	for k, a := range b.colArg {
		b.colArg[k] = s.Apply(a)
	}
	return true
}

// unify makes the two arguments equal in the body; reports false when that
// is impossible (distinct constants) or collapses a disequality.
func (b *body) unify(x, y query.Arg) bool {
	switch {
	case x == y:
		return true
	case x.Const && y.Const:
		return false
	case x.Const:
		return b.substitute(y.Name, x)
	default:
		return b.substitute(x.Name, y)
	}
}

type compiler struct {
	nextVar int
}

func (c *compiler) fresh() query.Arg {
	c.nextVar++
	return query.V(fmt.Sprintf("v%d", c.nextVar))
}

func (c *compiler) compile(p Plan) ([]*body, error) {
	switch n := p.(type) {
	case *Scan:
		args := make([]query.Arg, len(n.Cols))
		colArg := map[string]query.Arg{}
		for i, col := range n.Cols {
			args[i] = c.fresh()
			colArg[col] = args[i]
		}
		return []*body{{
			atoms:  []query.Atom{query.NewAtom(n.Rel, args...)},
			colArg: colArg,
		}}, nil

	case *Select:
		in, err := c.compile(n.In)
		if err != nil {
			return nil, err
		}
		var out []*body
		for _, b := range in {
			nb := b.clone()
			ok := true
			for _, cond := range n.Conds {
				l := nb.colArg[cond.Left]
				var r query.Arg
				if cond.RightIsConst {
					r = query.C(cond.Right)
				} else {
					r = nb.colArg[cond.Right]
				}
				switch cond.Op {
				case OpEq:
					if !nb.unify(l, r) {
						ok = false
					}
				case OpNeq:
					// Re-read l, r: earlier conditions may have substituted.
					l = nb.colArg[cond.Left]
					if !cond.RightIsConst {
						r = nb.colArg[cond.Right]
					}
					switch {
					case l == r:
						ok = false
					case l.Const && r.Const:
						// Distinct constants: vacuously true.
					default:
						nb.diseqs = append(nb.diseqs, query.NewDiseq(l, r))
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				out = append(out, nb)
			}
		}
		return out, nil

	case *Project:
		in, err := c.compile(n.In)
		if err != nil {
			return nil, err
		}
		for _, b := range in {
			kept := map[string]query.Arg{}
			for _, col := range n.Cols {
				kept[col] = b.colArg[col]
			}
			b.colArg = kept
		}
		return in, nil

	case *Join:
		l, err := c.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(n.R)
		if err != nil {
			return nil, err
		}
		shared := sharedCols(n.L.Columns(), n.R.Columns())
		leftCols := map[string]bool{}
		for _, col := range n.L.Columns() {
			leftCols[col] = true
		}
		// Track the right branch's columns under prefixed keys inside the
		// merged body so that unification substitutions rewrite them too.
		const rpfx = "\x00r:"
		var out []*body
		for _, lb := range l {
			for _, rb := range r {
				nb := lb.clone()
				rc := rb.clone()
				nb.atoms = append(nb.atoms, rc.atoms...)
				nb.diseqs = append(nb.diseqs, rc.diseqs...)
				for col, a := range rc.colArg {
					nb.colArg[rpfx+col] = a
				}
				ok := true
				for _, col := range shared {
					if !nb.unify(nb.colArg[col], nb.colArg[rpfx+col]) {
						ok = false
						break
					}
				}
				if ok {
					for col := range rc.colArg {
						if !leftCols[col] {
							nb.colArg[col] = nb.colArg[rpfx+col]
						}
						delete(nb.colArg, rpfx+col)
					}
					out = append(out, nb)
				}
			}
		}
		return out, nil

	case *Rename:
		in, err := c.compile(n.In)
		if err != nil {
			return nil, err
		}
		for _, b := range in {
			if a, ok := b.colArg[n.From]; ok {
				delete(b.colArg, n.From)
				b.colArg[n.To] = a
			}
		}
		return in, nil

	case *Union:
		l, err := c.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(n.R)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	}
	return nil, fmt.Errorf("unknown plan node %T", p)
}

func sharedCols(l, r []string) []string {
	have := map[string]bool{}
	for _, c := range l {
		have[c] = true
	}
	var out []string
	for _, c := range r {
		if have[c] {
			out = append(out, c)
		}
	}
	return out
}
