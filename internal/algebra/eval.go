package algebra

import (
	"fmt"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/semiring"
)

// annRow is one tuple with its annotation during plan evaluation.
type annRow struct {
	vals db.Tuple
	prov semiring.Polynomial
}

// annRel is an intermediate annotated relation: tuples keyed canonically.
type annRel struct {
	cols []string
	rows map[string]*annRow
}

func newAnnRel(cols []string) *annRel {
	return &annRel{cols: cols, rows: map[string]*annRow{}}
}

func (r *annRel) add(vals db.Tuple, p semiring.Polynomial) {
	k := vals.Key()
	if row, ok := r.rows[k]; ok {
		row.prov = row.prov.Add(p)
		return
	}
	r.rows[k] = &annRow{vals: vals.Clone(), prov: p}
}

// Eval evaluates the plan over an annotated instance under the N[X]
// semantics of [19]: σ filters, π adds collapsing annotations, ⋈ multiplies,
// ∪ adds across branches. The resulting provenance depends on the plan, not
// only on the query it computes — compile the plan and run MinProv to get
// the plan-invariant core.
func Eval(p Plan, d *db.Instance) (*eval.Result, error) {
	rel, err := evalRel(p, d)
	if err != nil {
		return nil, err
	}
	res := eval.NewResult()
	for _, row := range rel.rows {
		res.Add(row.vals, row.prov)
	}
	res.Finish()
	return res, nil
}

func evalRel(p Plan, d *db.Instance) (*annRel, error) {
	switch n := p.(type) {
	case *Scan:
		out := newAnnRel(n.Cols)
		stored := d.Lookup(n.Rel)
		if stored == nil {
			return out, nil
		}
		if stored.Arity != len(n.Cols) {
			return nil, fmt.Errorf("scan %s: relation has arity %d, plan names %d columns", n.Rel, stored.Arity, len(n.Cols))
		}
		for _, row := range stored.Rows() {
			out.add(row.Tuple, semiring.Var(row.Tag))
		}
		return out, nil

	case *Select:
		in, err := evalRel(n.In, d)
		if err != nil {
			return nil, err
		}
		idx := colIndex(in.cols)
		out := newAnnRel(in.cols)
		for _, row := range in.rows {
			if selectMatches(n.Conds, idx, row.vals) {
				out.add(row.vals, row.prov)
			}
		}
		return out, nil

	case *Project:
		in, err := evalRel(n.In, d)
		if err != nil {
			return nil, err
		}
		idx := colIndex(in.cols)
		out := newAnnRel(n.Cols)
		for _, row := range in.rows {
			vals := make(db.Tuple, len(n.Cols))
			for i, c := range n.Cols {
				vals[i] = row.vals[idx[c]]
			}
			out.add(vals, row.prov)
		}
		return out, nil

	case *Join:
		l, err := evalRel(n.L, d)
		if err != nil {
			return nil, err
		}
		r, err := evalRel(n.R, d)
		if err != nil {
			return nil, err
		}
		cols := n.Columns()
		lIdx, rIdx := colIndex(l.cols), colIndex(r.cols)
		var shared [][2]int // (left pos, right pos) of shared columns
		for c, li := range lIdx {
			if ri, ok := rIdx[c]; ok {
				shared = append(shared, [2]int{li, ri})
			}
		}
		out := newAnnRel(cols)
		for _, lr := range l.rows {
			for _, rr := range r.rows {
				ok := true
				for _, s := range shared {
					if lr.vals[s[0]] != rr.vals[s[1]] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				vals := make(db.Tuple, len(cols))
				for i, c := range cols {
					if li, ok := lIdx[c]; ok {
						vals[i] = lr.vals[li]
					} else {
						vals[i] = rr.vals[rIdx[c]]
					}
				}
				out.add(vals, lr.prov.Mul(rr.prov))
			}
		}
		return out, nil

	case *Rename:
		in, err := evalRel(n.In, d)
		if err != nil {
			return nil, err
		}
		out := newAnnRel(n.Columns())
		for _, row := range in.rows {
			out.add(row.vals, row.prov)
		}
		return out, nil

	case *Union:
		l, err := evalRel(n.L, d)
		if err != nil {
			return nil, err
		}
		r, err := evalRel(n.R, d)
		if err != nil {
			return nil, err
		}
		out := newAnnRel(l.cols)
		for _, row := range l.rows {
			out.add(row.vals, row.prov)
		}
		for _, row := range r.rows {
			out.add(row.vals, row.prov)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown plan node %T", p)
}

func colIndex(cols []string) map[string]int {
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		idx[c] = i
	}
	return idx
}

func selectMatches(conds []Condition, idx map[string]int, vals db.Tuple) bool {
	for _, c := range conds {
		l := vals[idx[c.Left]]
		r := c.Right
		if !c.RightIsConst {
			r = vals[idx[c.Right]]
		}
		switch c.Op {
		case OpEq:
			if l != r {
				return false
			}
		case OpNeq:
			if l == r {
				return false
			}
		}
	}
	return true
}
