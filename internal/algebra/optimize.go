package algebra

// Plan rewriting: a small rule-based optimizer over SPJU plans. The rewrite
// rules are the classical equivalences (selection pushdown, selection
// merging, join commutation). Rewritten plans compute the same query — the
// compiled UCQ≠ queries are equivalent — but generally carry *different*
// provenance, which is exactly the §8 phenomenon; the core provenance
// (MinProv of the compiled query) is invariant under every rule here, and
// the tests verify it.

// Optimize applies the rewrite rules bottom-up until a fixpoint.
func Optimize(p Plan) Plan {
	for {
		q, changed := rewrite(p)
		if !changed {
			return q
		}
		p = q
	}
}

func rewrite(p Plan) (Plan, bool) {
	switch n := p.(type) {
	case *Scan:
		return n, false

	case *Select:
		in, changed := rewrite(n.In)
		if changed {
			return &Select{In: in, Conds: n.Conds}, true
		}
		// Merge nested selections: σ_a(σ_b(x)) -> σ_{a∧b}(x).
		if inner, ok := in.(*Select); ok {
			return &Select{In: inner.In, Conds: append(append([]Condition{}, inner.Conds...), n.Conds...)}, true
		}
		// Push selection below a union: σ(x ∪ y) -> σ(x) ∪ σ(y).
		if u, ok := in.(*Union); ok {
			return &Union{
				L: &Select{In: u.L, Conds: n.Conds},
				R: &Select{In: u.R, Conds: n.Conds},
			}, true
		}
		// Push selection into the side of a join that covers its columns.
		if j, ok := in.(*Join); ok {
			lCols := colSet(j.L.Columns())
			rCols := colSet(j.R.Columns())
			var lConds, rConds, keep []Condition
			for _, c := range n.Conds {
				switch {
				case covered(c, lCols):
					lConds = append(lConds, c)
				case covered(c, rCols):
					rConds = append(rConds, c)
				default:
					keep = append(keep, c)
				}
			}
			if len(lConds) > 0 || len(rConds) > 0 {
				l, r := j.L, j.R
				if len(lConds) > 0 {
					l = &Select{In: l, Conds: lConds}
				}
				if len(rConds) > 0 {
					r = &Select{In: r, Conds: rConds}
				}
				var out Plan = &Join{L: l, R: r}
				if len(keep) > 0 {
					out = &Select{In: out, Conds: keep}
				}
				return out, true
			}
		}
		return n, false

	case *Project:
		in, changed := rewrite(n.In)
		if changed {
			return &Project{In: in, Cols: n.Cols}, true
		}
		// Collapse nested projections: π_a(π_b(x)) -> π_a(x).
		if inner, ok := in.(*Project); ok {
			return &Project{In: inner.In, Cols: n.Cols}, true
		}
		// Drop identity projections.
		if sameCols(n.Cols, in.Columns()) {
			return in, true
		}
		return n, false

	case *Join:
		l, changedL := rewrite(n.L)
		r, changedR := rewrite(n.R)
		if changedL || changedR {
			return &Join{L: l, R: r}, true
		}
		return n, false

	case *Rename:
		in, changed := rewrite(n.In)
		if changed {
			return &Rename{In: in, From: n.From, To: n.To}, true
		}
		if n.From == n.To {
			return in, true
		}
		return n, false

	case *Union:
		l, changedL := rewrite(n.L)
		r, changedR := rewrite(n.R)
		if changedL || changedR {
			return &Union{L: l, R: r}, true
		}
		return n, false
	}
	return p, false
}

func colSet(cols []string) map[string]bool {
	s := make(map[string]bool, len(cols))
	for _, c := range cols {
		s[c] = true
	}
	return s
}

func covered(c Condition, cols map[string]bool) bool {
	if !cols[c.Left] {
		return false
	}
	return c.RightIsConst || cols[c.Right]
}

func sameCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Swap commutes a join: R ⋈ S -> S ⋈ R. Tuple results are identical up to
// column order of the natural join; the helper reprojects to the original
// schema so results compare directly. Provenance is unchanged (semiring
// multiplication commutes), making this the one classical rule that is
// provenance-neutral — the tests contrast it with projection/selection
// rules, which are not.
func Swap(j *Join) (Plan, error) {
	swapped, err := NewJoin(j.R, j.L)
	if err != nil {
		return nil, err
	}
	return NewProject(swapped, j.Columns()...)
}
