// Package algebra implements a provenance-aware select-project-join-union
// (SPJU) relational algebra in the style of Green, Karvounarakis and Tannen
// ("Provenance semirings", PODS 2007), whose N[X] semantics the paper adopts
// (its Def. 2.12 cites the SPJU definition of [19]).
//
// The package serves two purposes:
//
//  1. It evaluates physical plans with provenance: selection keeps
//     annotations, projection adds them, join multiplies them, union adds
//     across branches. Different plans for the same query can yield
//     different provenance polynomials — the phenomenon the paper's §8
//     highlights ("different physical query plans for the same query may
//     result in different provenance").
//  2. It compiles plans to UCQ≠ queries, so the paper's machinery applies:
//     MinProv over the compiled query computes the core provenance, which
//     is invariant across all equivalent plans. The tests demonstrate this
//     plan-invariance end to end.
//
// Plans are schema-typed: every node exposes named output columns, and
// constructors validate column references eagerly.
package algebra

import (
	"fmt"
	"strings"
)

// Plan is a relational algebra expression over annotated relations.
type Plan interface {
	// Columns returns the output schema (column names, in order).
	Columns() []string
	// String renders the plan as a one-line expression.
	String() string
	// validate checks internal consistency; constructors call it.
	validate() error
}

// Scan reads a stored relation, naming its columns.
type Scan struct {
	Rel  string
	Cols []string
}

// NewScan builds a scan node with distinct column names.
func NewScan(rel string, cols ...string) (*Scan, error) {
	s := &Scan{Rel: rel, Cols: cols}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Scan) Columns() []string { return s.Cols }
func (s *Scan) String() string {
	return fmt.Sprintf("%s(%s)", s.Rel, strings.Join(s.Cols, ","))
}
func (s *Scan) validate() error {
	seen := map[string]bool{}
	for _, c := range s.Cols {
		if seen[c] {
			return fmt.Errorf("scan of %s: duplicate column %q", s.Rel, c)
		}
		seen[c] = true
	}
	return nil
}

// CompareOp is a selection comparison operator.
type CompareOp int

const (
	// OpEq is equality.
	OpEq CompareOp = iota
	// OpNeq is disequality, compiled to the paper's ≠ atoms.
	OpNeq
)

func (o CompareOp) String() string {
	if o == OpEq {
		return "="
	}
	return "!="
}

// Condition is one comparison of a column against a column or a constant.
type Condition struct {
	Op    CompareOp
	Left  string // column name
	Right string // column name or constant value (see RightIsConst)
	// RightIsConst marks Right as a constant literal.
	RightIsConst bool
}

func (c Condition) String() string {
	r := c.Right
	if c.RightIsConst {
		r = "'" + r + "'"
	}
	return fmt.Sprintf("%s%s%s", c.Left, c.Op, r)
}

// Select filters its input by a conjunction of conditions; annotations pass
// through unchanged.
type Select struct {
	In    Plan
	Conds []Condition
}

// NewSelect builds a selection node.
func NewSelect(in Plan, conds ...Condition) (*Select, error) {
	s := &Select{In: in, Conds: conds}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Select) Columns() []string { return s.In.Columns() }
func (s *Select) String() string {
	parts := make([]string, len(s.Conds))
	for i, c := range s.Conds {
		parts[i] = c.String()
	}
	return fmt.Sprintf("σ[%s](%s)", strings.Join(parts, " ∧ "), s.In)
}
func (s *Select) validate() error {
	cols := map[string]bool{}
	for _, c := range s.In.Columns() {
		cols[c] = true
	}
	for _, c := range s.Conds {
		if !cols[c.Left] {
			return fmt.Errorf("select: unknown column %q", c.Left)
		}
		if !c.RightIsConst && !cols[c.Right] {
			return fmt.Errorf("select: unknown column %q", c.Right)
		}
	}
	return nil
}

// Project keeps the named columns (in the given order); annotations of input
// tuples collapsing onto the same output tuple are added.
type Project struct {
	In   Plan
	Cols []string
}

// NewProject builds a projection node.
func NewProject(in Plan, cols ...string) (*Project, error) {
	p := &Project{In: in, Cols: cols}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Project) Columns() []string { return p.Cols }
func (p *Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Cols, ","), p.In)
}
func (p *Project) validate() error {
	in := map[string]bool{}
	for _, c := range p.In.Columns() {
		in[c] = true
	}
	seen := map[string]bool{}
	for _, c := range p.Cols {
		if !in[c] {
			return fmt.Errorf("project: unknown column %q", c)
		}
		if seen[c] {
			return fmt.Errorf("project: duplicate column %q", c)
		}
		seen[c] = true
	}
	return nil
}

// Join is the natural join: matching values on shared column names;
// annotations multiply. Disjoint schemas give the Cartesian product.
type Join struct {
	L, R Plan
}

// NewJoin builds a natural-join node.
func NewJoin(l, r Plan) (*Join, error) {
	j := &Join{L: l, R: r}
	if err := j.validate(); err != nil {
		return nil, err
	}
	return j, nil
}

func (j *Join) Columns() []string {
	cols := append([]string{}, j.L.Columns()...)
	have := map[string]bool{}
	for _, c := range cols {
		have[c] = true
	}
	for _, c := range j.R.Columns() {
		if !have[c] {
			cols = append(cols, c)
		}
	}
	return cols
}
func (j *Join) String() string  { return fmt.Sprintf("(%s ⋈ %s)", j.L, j.R) }
func (j *Join) validate() error { return nil }

// Rename renames one column.
type Rename struct {
	In       Plan
	From, To string
}

// NewRename builds a rename node.
func NewRename(in Plan, from, to string) (*Rename, error) {
	r := &Rename{In: in, From: from, To: to}
	if err := r.validate(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Rename) Columns() []string {
	cols := append([]string{}, r.In.Columns()...)
	for i, c := range cols {
		if c == r.From {
			cols[i] = r.To
		}
	}
	return cols
}
func (r *Rename) String() string { return fmt.Sprintf("ρ[%s→%s](%s)", r.From, r.To, r.In) }
func (r *Rename) validate() error {
	found := false
	for _, c := range r.In.Columns() {
		if c == r.From {
			found = true
		}
		if c == r.To && r.To != r.From {
			return fmt.Errorf("rename: target column %q already exists", r.To)
		}
	}
	if !found {
		return fmt.Errorf("rename: unknown column %q", r.From)
	}
	return nil
}

// Union combines two schema-compatible branches; annotations add.
type Union struct {
	L, R Plan
}

// NewUnion builds a union node; both branches must expose identical schemas.
func NewUnion(l, r Plan) (*Union, error) {
	u := &Union{L: l, R: r}
	if err := u.validate(); err != nil {
		return nil, err
	}
	return u, nil
}

func (u *Union) Columns() []string { return u.L.Columns() }
func (u *Union) String() string    { return fmt.Sprintf("(%s ∪ %s)", u.L, u.R) }
func (u *Union) validate() error {
	lc, rc := u.L.Columns(), u.R.Columns()
	if len(lc) != len(rc) {
		return fmt.Errorf("union: schemas %v and %v differ", lc, rc)
	}
	for i := range lc {
		if lc[i] != rc[i] {
			return fmt.Errorf("union: schemas %v and %v differ", lc, rc)
		}
	}
	return nil
}

// Must panics on a constructor error; for literal plans in tests/examples.
func Must[P Plan](p P, err error) P {
	if err != nil {
		panic(err)
	}
	return p
}
