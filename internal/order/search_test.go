package order

import (
	"testing"

	"provmin/internal/query"
)

func TestFindCounterexampleRefutesQconjTerseness(t *testing.T) {
	// Qconj is NOT ≤_P Qunion (the other direction of Example 2.18): a
	// random search should find a witness quickly.
	qconj := query.MustParseUnion("ans(x) :- R(x,y), R(y,x)")
	qunion := query.MustParseUnion("ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)")
	ce, err := FindCounterexample(qconj, qunion, 40)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("expected a counterexample to Qconj ≤_P Qunion")
	}
	if ce.Observed == Less || ce.Observed == Equal {
		t.Errorf("witness relation = %v", ce.Observed)
	}
	// Confirm the witness really violates the order.
	rel, err := CompareOnDB(qconj, qunion, ce.DB)
	if err != nil {
		t.Fatal(err)
	}
	if rel != ce.Observed {
		t.Errorf("witness does not reproduce: %v vs %v", rel, ce.Observed)
	}
}

func TestFindCounterexampleAcceptsTrueOrder(t *testing.T) {
	// Qunion ≤_P Qconj holds (Theorem 3.11): no witness should exist.
	qconj := query.MustParseUnion("ans(x) :- R(x,y), R(y,x)")
	qunion := query.MustParseUnion("ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)")
	ce, err := FindCounterexample(qunion, qconj, 40)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("found a false counterexample on\n%s (%v)", ce.DB, ce.Observed)
	}
}

func TestFindCounterexampleLemma36(t *testing.T) {
	// QnoPmin vs Qalt: both directions must be refutable.
	qNoPmin := query.MustParseUnion("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x2")
	qAlt := query.MustParseUnion("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x3")
	ce1, err := FindCounterexample(qNoPmin, qAlt, 60)
	if err != nil {
		t.Fatal(err)
	}
	ce2, err := FindCounterexample(qAlt, qNoPmin, 60)
	if err != nil {
		t.Fatal(err)
	}
	if ce1 == nil || ce2 == nil {
		t.Errorf("expected counterexamples in both directions (Lemma 3.6): %v / %v", ce1, ce2)
	}
}

func TestRelationSignature(t *testing.T) {
	u := query.MustParseUnion("ans(x) :- R(x,y), S(x)\nans(x) :- R(x,x)")
	sig := relationSignature(u)
	if len(sig) != 2 || sig[0].name != "R" || sig[0].arity != 2 || sig[1].name != "S" || sig[1].arity != 1 {
		t.Errorf("signature = %v", sig)
	}
}
