package order

import (
	"fmt"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/query"
)

// ResultLE reports whether annotated result a is pointwise ≤ result b: the
// two results contain the same tuples and, for every tuple, a's provenance
// is ≤ b's (the per-database content of Def. 2.17).
func ResultLE(a, b *eval.Result) bool {
	if !a.SameTuples(b) {
		return false
	}
	for _, t := range a.Tuples() {
		pb, _ := b.Lookup(t.Tuple)
		if !PolyLE(t.Prov, pb) {
			return false
		}
	}
	return true
}

// CompareResults classifies two annotated results under the pointwise order.
// Results over different tuple sets are Incomparable (the queries were not
// equivalent on this database).
func CompareResults(a, b *eval.Result) Relation {
	le, ge := ResultLE(a, b), ResultLE(b, a)
	switch {
	case le && ge:
		return Equal
	case le:
		return Less
	case ge:
		return Greater
	}
	return Incomparable
}

// CompareOnDB evaluates two queries over one database and classifies their
// annotated results. It is the per-instance check underlying Def. 2.17:
// Q ≤_P Q' requires Less-or-Equal on every abstractly-tagged instance.
func CompareOnDB(q1, q2 *query.UCQ, d *db.Instance) (Relation, error) {
	r1, err := eval.EvalUCQ(q1, d)
	if err != nil {
		return Incomparable, fmt.Errorf("evaluating q1: %w", err)
	}
	r2, err := eval.EvalUCQ(q2, d)
	if err != nil {
		return Incomparable, fmt.Errorf("evaluating q2: %w", err)
	}
	return CompareResults(r1, r2), nil
}

// Witness is the outcome of testing Q ≤_P Q' over a family of databases.
type Witness struct {
	Holds      bool         // no database violated q1 ≤ q2
	CounterDB  *db.Instance // a database where q1 ≤ q2 fails (when !Holds)
	CounterRel Relation     // the relation observed on CounterDB
}

// CertifyLEOnDatabases checks q1 ≤ q2 pointwise on each given database.
// Passing cannot prove Q1 ≤_P Q2 (which quantifies over all instances), but
// a failure yields a concrete counterexample database; the paper's
// incomparability arguments (Lemma 3.6) are exactly such witnesses.
func CertifyLEOnDatabases(q1, q2 *query.UCQ, dbs []*db.Instance) (Witness, error) {
	for _, d := range dbs {
		rel, err := CompareOnDB(q1, q2, d)
		if err != nil {
			return Witness{}, err
		}
		if rel != Less && rel != Equal {
			return Witness{Holds: false, CounterDB: d, CounterRel: rel}, nil
		}
	}
	return Witness{Holds: true}, nil
}
