package order

import (
	"math/rand"
	"testing"

	"provmin/internal/semiring"
)

// brutePolyLE decides p ≤ q by exhaustive search over injective mappings of
// monomial occurrences — the literal Def. 2.15 — used to cross-validate the
// max-flow implementation.
func brutePolyLE(p, q semiring.Polynomial) bool {
	left := p.MonomialOccurrences()
	right := q.MonomialOccurrences()
	if len(left) > len(right) {
		return false
	}
	used := make([]bool, len(right))
	var try func(i int) bool
	try = func(i int) bool {
		if i == len(left) {
			return true
		}
		for j := range right {
			if used[j] || !left[i].Divides(right[j]) {
				continue
			}
			used[j] = true
			if try(i + 1) {
				used[j] = false
				return true
			}
			used[j] = false
		}
		return false
	}
	return try(0)
}

func genSmallPoly(r *rand.Rand) semiring.Polynomial {
	vars := []string{"a", "b", "c"}
	p := semiring.Zero
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		deg := r.Intn(4)
		occ := make([]string, deg)
		for j := range occ {
			occ[j] = vars[r.Intn(len(vars))]
		}
		p = p.AddMonomial(semiring.NewMonomial(occ...), 1+r.Intn(2))
	}
	return p
}

func TestPolyLEMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for i := 0; i < 3000; i++ {
		p, q := genSmallPoly(r), genSmallPoly(r)
		got := PolyLE(p, q)
		want := brutePolyLE(p, q)
		if got != want {
			t.Fatalf("PolyLE(%v, %v) = %v, brute force = %v", p, q, got, want)
		}
	}
}

func TestGreedySoundnessRandom(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	misses := 0
	for i := 0; i < 3000; i++ {
		p, q := genSmallPoly(r), genSmallPoly(r)
		exact := PolyLE(p, q)
		greedy := GreedyPolyLE(p, q)
		if greedy && !exact {
			t.Fatalf("greedy unsound: %v vs %v", p, q)
		}
		if exact && !greedy {
			misses++
		}
	}
	// The ablation's point: greedy misses some positives. Don't assert a
	// specific count (it depends on the generator), just record soundness.
	t.Logf("greedy missed %d of 3000 random pairs", misses)
}

func TestPolyLESelfAdditivity(t *testing.T) {
	// p ≤ p + q for all p, q.
	r := rand.New(rand.NewSource(55))
	for i := 0; i < 500; i++ {
		p, q := genSmallPoly(r), genSmallPoly(r)
		if !PolyLE(p, p.Add(q)) {
			t.Fatalf("p ≤ p+q failed for %v, %v", p, q)
		}
	}
}

func TestPolyLEMultiplicationMonotone(t *testing.T) {
	// p ≤ q implies p*m ≤ q*m for a monomial m.
	r := rand.New(rand.NewSource(77))
	m := semiring.FromMonomial(semiring.NewMonomial("z"), 1)
	for i := 0; i < 500; i++ {
		p, q := genSmallPoly(r), genSmallPoly(r)
		if PolyLE(p, q) && !PolyLE(p.Mul(m), q.Mul(m)) {
			t.Fatalf("monotonicity failed for %v ≤ %v", p, q)
		}
	}
}
