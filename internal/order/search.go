package order

import (
	"fmt"

	"provmin/internal/db"
	"provmin/internal/query"
)

// Counterexample is a database witnessing that q1 ≤_P q2 fails, together
// with the relation observed on it.
type Counterexample struct {
	DB       *db.Instance
	Observed Relation
}

// FindCounterexample searches random small databases for a witness that
// q1 ≤_P q2 does NOT hold (the queries are assumed equivalent). It tries
// the given number of random instances over the queries' relations; nil
// means no counterexample was found (which does not prove Q1 ≤_P Q2 — the
// order quantifies over all instances — but is strong evidence). This is
// the experimental analogue of the paper's Lemma 3.6 argument, which
// exhibits exactly such witness databases for QnoPmin and Qalt.
func FindCounterexample(q1, q2 *query.UCQ, tries int) (*Counterexample, error) {
	rels := relationSignature(q1, q2)
	for seed := int64(0); seed < int64(tries); seed++ {
		d := db.NewInstance()
		g := db.NewGenerator(seed)
		for _, r := range rels {
			// Vary density and domain with the seed for diversity.
			domain := 2 + int(seed)%3
			max := 1
			for i := 0; i < r.arity; i++ {
				max *= domain
			}
			n := 1 + (int(seed)+r.arity)%max
			g.RandomRelation(d, r.name, r.arity, n, domain)
		}
		rel, err := CompareOnDB(q1, q2, d)
		if err != nil {
			return nil, fmt.Errorf("comparing on random db (seed %d): %w", seed, err)
		}
		if rel != Less && rel != Equal {
			return &Counterexample{DB: d, Observed: rel}, nil
		}
	}
	return nil, nil
}

type relSig struct {
	name  string
	arity int
}

func relationSignature(qs ...*query.UCQ) []relSig {
	seen := map[string]int{}
	var order []string
	for _, u := range qs {
		for _, q := range u.Adjuncts {
			for _, at := range q.Atoms {
				if _, ok := seen[at.Rel]; !ok {
					order = append(order, at.Rel)
				}
				seen[at.Rel] = len(at.Args)
			}
		}
	}
	out := make([]relSig, 0, len(order))
	for _, n := range order {
		out = append(out, relSig{name: n, arity: seen[n]})
	}
	return out
}
