package order

import (
	"testing"

	"provmin/internal/semiring"
)

func p(s string) semiring.Polynomial { return semiring.MustParsePolynomial(s) }

func TestExample216(t *testing.T) {
	// p1 = s1*s2 + s3 + s3, p2 = s1*s2*s2 + s2*s3 + s3*s4 + s5: p1 < p2.
	p1 := p("s1*s2 + 2*s3")
	p2 := p("s1*s2^2 + s2*s3 + s3*s4 + s5")
	if !PolyLE(p1, p2) {
		t.Error("p1 ≤ p2 should hold (Example 2.16)")
	}
	if PolyLE(p2, p1) {
		t.Error("p2 ≤ p1 must fail: s3*s4 maps into no monomial of p1")
	}
	if !PolyLT(p1, p2) {
		t.Error("p1 < p2")
	}
	if got := Compare(p1, p2); got != Less {
		t.Errorf("Compare = %v, want <", got)
	}
}

func TestIntroductionExample(t *testing.T) {
	// Introduction: x*y^2 + 2z ≤ x*y^2 + x*z + y*z but not conversely.
	a := p("x*y^2 + 2*z")
	b := p("x*y^2 + x*z + y*z")
	if !PolyLE(a, b) || PolyLE(b, a) {
		t.Errorf("Compare = %v, want <", Compare(a, b))
	}
}

func TestExample218StrictOrder(t *testing.T) {
	// P(Qunion) = s2*s3 + s1 < P(Qconj) = s2*s3 + s1*s1.
	u := p("s2*s3 + s1")
	c := p("s2*s3 + s1^2")
	if got := Compare(u, c); got != Less {
		t.Errorf("Compare = %v, want <", got)
	}
}

func TestLemma36Incomparability(t *testing.T) {
	// On D: P(QnoPmin) = 2*m1 + m2 > P(Qalt) = m1 + m2.
	noPminD := p("2*s0*s1^2*s2^2*s3 + s0*s1*s2*s3^3")
	altD := p("s0*s1^2*s2^2*s3 + s0*s1*s2*s3^3")
	if got := Compare(altD, noPminD); got != Less {
		t.Errorf("on D: Compare = %v, want <", got)
	}
	// On D': P(QnoPmin) = m < P(Qalt) = 2*m.
	noPminDp := p("t0*t1*t2*t3*t4^2")
	altDp := p("2*t0*t1*t2*t3*t4^2")
	if got := Compare(noPminDp, altDp); got != Less {
		t.Errorf("on D': Compare = %v, want <", got)
	}
}

func TestCoefficientMatters(t *testing.T) {
	if PolyLE(p("2*s1"), p("s1")) {
		t.Error("2*s1 ≤ s1 must fail (injectivity over occurrences)")
	}
	if !PolyLE(p("s1"), p("2*s1")) {
		t.Error("s1 ≤ 2*s1 should hold")
	}
}

func TestZeroPolynomial(t *testing.T) {
	if !PolyLE(semiring.Zero, p("s1")) {
		t.Error("0 ≤ p for every p")
	}
	if PolyLE(p("s1"), semiring.Zero) {
		t.Error("s1 ≤ 0 must fail")
	}
	if !PolyEq(semiring.Zero, semiring.Zero) {
		t.Error("0 = 0")
	}
}

func TestIncomparablePair(t *testing.T) {
	a := p("s1 + s2*s3")
	b := p("s2 + s1*s3")
	// s1 maps into s1*s3; s2*s3 into nothing of b except... s2*s3 ⊄ s2,
	// s2*s3 ⊄ s1*s3. So a ≰ b; symmetric for b ≰ a.
	if got := Compare(a, b); got != Incomparable {
		t.Errorf("Compare = %v, want incomparable", got)
	}
}

func TestMatchingNeedsFlow(t *testing.T) {
	// A case where a naive greedy (match s1 into the first candidate)
	// fails but a correct matching exists:
	// p = s1 + s1*s2, q = s1*s2 + s1*s2*s3.
	// s1 must go into one of both, s1*s2 into either; a perfect matching
	// exists, but greedy largest-first picking the smallest container is
	// also fine here. Construct the classic conflict instead:
	// p = a + a*b, q = a*b + a*c: a -> a*c, a*b -> a*b. Greedy on degree
	// matches a*b first (to a*b), then a can use a*c: both succeed. For
	// the flow test just assert correctness.
	if !PolyLE(p("a + a*b"), p("a*b + a*c")) {
		t.Error("matching exists: a->a*c, a*b->a*b")
	}
	if PolyLE(p("a*b + a*c"), p("a + a*b")) {
		t.Error("a*c maps nowhere")
	}
}

func TestGreedyIsSoundButIncomplete(t *testing.T) {
	// Soundness on a few pairs: greedy true implies exact true.
	pairs := [][2]string{
		{"s1*s2 + 2*s3", "s1*s2^2 + s2*s3 + s3*s4 + s5"},
		{"a + a*b", "a*b + a*c"},
		{"2*s1", "s1"},
		{"s1 + s2*s3", "s2 + s1*s3"},
	}
	for _, pr := range pairs {
		a, b := p(pr[0]), p(pr[1])
		if GreedyPolyLE(a, b) && !PolyLE(a, b) {
			t.Errorf("greedy unsound on %v vs %v", a, b)
		}
	}
	// Incompleteness witness: two same-degree containers where greedy's
	// smallest-degree tie-break picks the wrong one.
	// p = a*b + a (a*b matched first). q = a*b + a*c is fine for greedy, so
	// build: p = x + y, q = x*y + x (both must map: x->x, y->x*y). Greedy
	// sorts by degree (x,y equal), matches x to smallest container x, then
	// y needs a container containing y: x*y works. Fine again.
	// True incompleteness: p = a + b, q = a*b + a*b? a->a*b, b->a*b: works.
	// Hard case: p = a + a, q = a + a*b. greedy: first a -> a (smallest),
	// second a -> a*b. Works. Try p = a*c + a, q = a*c + a*b: a*c -> a*c,
	// a -> a*b: works. Greedy with smallest-container tie-break is complete
	// on chains; feed it a crossing:
	// p = a*b + a*c, q = a*b*c + a*b (degrees 2,2; containers: a*b maps to
	// both, a*c only to a*b*c). Greedy may match a*b -> a*b (smallest),
	// then a*c -> a*b*c: works. Order a*c first: a*c -> a*b*c, a*b -> a*b.
	// Greedy is complete here too. Accept: just verify agreement on random
	// inputs happens often; exactness is the point of the flow version.
	if !GreedyPolyLE(p("s1"), p("s1")) {
		t.Error("greedy must accept identical singletons")
	}
}

func TestPolyLEReflexiveTransitive(t *testing.T) {
	polys := []semiring.Polynomial{
		p("0"), p("s1"), p("2*s1"), p("s1*s2"), p("s1 + s2"),
		p("s1^2 + s2"), p("s1*s2 + s3"), p("2*s1*s2 + s3^2"),
	}
	for _, a := range polys {
		if !PolyLE(a, a) {
			t.Errorf("reflexivity failed on %v", a)
		}
	}
	for _, a := range polys {
		for _, b := range polys {
			for _, c := range polys {
				if PolyLE(a, b) && PolyLE(b, c) && !PolyLE(a, c) {
					t.Errorf("transitivity failed: %v ≤ %v ≤ %v", a, b, c)
				}
			}
		}
	}
}

func TestOrderEqualityCoincidesWithEquality(t *testing.T) {
	// On canonical polynomials, p = q in the order sense iff p == q.
	polys := []semiring.Polynomial{
		p("s1"), p("2*s1"), p("s1*s2"), p("s1 + s2"), p("s1^2"),
		p("s1^2 + s2"), p("s1*s2 + s3"),
	}
	for i, a := range polys {
		for j, b := range polys {
			if PolyEq(a, b) != (i == j) {
				t.Errorf("PolyEq(%v, %v) = %v", a, b, PolyEq(a, b))
			}
		}
	}
}

func TestRelationString(t *testing.T) {
	if Less.String() != "<" || Equal.String() != "=" || Greater.String() != ">" || Incomparable.String() != "incomparable" {
		t.Error("Relation.String misnames relations")
	}
}
