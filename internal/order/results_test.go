package order

import (
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/query"
)

func table2() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "b")
	return d
}

func lemma36D() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "b")
	d.MustAdd("R", "s2", "b", "a")
	d.MustAdd("R", "s3", "a", "a")
	d.MustAdd("S", "s0", "a")
	return d
}

func lemma36DPrime() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "t1", "a", "b")
	d.MustAdd("R", "t2", "b", "c")
	d.MustAdd("R", "t3", "c", "a")
	d.MustAdd("R", "t4", "a", "a")
	d.MustAdd("S", "s0", "a")
	return d
}

var (
	qUnion = query.MustParseUnion("ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)")
	qConj  = query.MustParseUnion("ans(x) :- R(x,y), R(y,x)")
)

func TestCompareOnDBFig1(t *testing.T) {
	rel, err := CompareOnDB(qUnion, qConj, table2())
	if err != nil {
		t.Fatal(err)
	}
	if rel != Less {
		t.Errorf("Qunion vs Qconj on Table 2 = %v, want <", rel)
	}
}

func TestLemma36QueriesIncomparable(t *testing.T) {
	qNoPmin := query.MustParseUnion("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x2")
	qAlt := query.MustParseUnion("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x3")
	// On D, Qalt is strictly terser; on D', QnoPmin is strictly terser.
	relD, err := CompareOnDB(qNoPmin, qAlt, lemma36D())
	if err != nil {
		t.Fatal(err)
	}
	if relD != Greater {
		t.Errorf("on D: %v, want >", relD)
	}
	relDp, err := CompareOnDB(qNoPmin, qAlt, lemma36DPrime())
	if err != nil {
		t.Fatal(err)
	}
	if relDp != Less {
		t.Errorf("on D': %v, want <", relDp)
	}
	// Certification must find the counterexample for each direction.
	dbs := []*db.Instance{lemma36D(), lemma36DPrime()}
	w, err := CertifyLEOnDatabases(qNoPmin, qAlt, dbs)
	if err != nil {
		t.Fatal(err)
	}
	if w.Holds || w.CounterDB != dbs[0] {
		t.Errorf("QnoPmin ≤ Qalt should fail on D: %+v", w)
	}
	w, err = CertifyLEOnDatabases(qAlt, qNoPmin, dbs)
	if err != nil {
		t.Fatal(err)
	}
	if w.Holds || w.CounterDB != dbs[1] {
		t.Errorf("Qalt ≤ QnoPmin should fail on D': %+v", w)
	}
}

func TestCertifyHoldsForTerserQuery(t *testing.T) {
	dbs := []*db.Instance{table2(), lemma36D(), lemma36DPrime()}
	w, err := CertifyLEOnDatabases(qUnion, qConj, dbs)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Holds {
		t.Errorf("Qunion ≤_P Qconj must hold on all test databases: %+v", w)
	}
}

func TestCompareResultsDifferentTuples(t *testing.T) {
	qa := query.MustParseUnion("ans(x) :- R(x,x)")
	qb := query.MustParseUnion("ans(x) :- R(x,y)")
	ra, err := eval.EvalUCQ(qa, table2())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := eval.EvalUCQ(qb, table2())
	if err != nil {
		t.Fatal(err)
	}
	// Same tuple sets here ({a},{b}) actually — R(x,y) yields a,b too; use a
	// db where they differ.
	d := db.NewInstance()
	d.MustAdd("R", "u1", "a", "b")
	ra, err = eval.EvalUCQ(qa, d)
	if err != nil {
		t.Fatal(err)
	}
	rb, err = eval.EvalUCQ(qb, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := CompareResults(ra, rb); got != Incomparable {
		t.Errorf("results over different tuple sets = %v, want incomparable", got)
	}
}

func TestCompareOnDBEqual(t *testing.T) {
	q := query.MustParseUnion("ans(x) :- R(x,x)")
	rel, err := CompareOnDB(q, q, table2())
	if err != nil {
		t.Fatal(err)
	}
	if rel != Equal {
		t.Errorf("self comparison = %v, want =", rel)
	}
}
