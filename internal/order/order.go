// Package order implements the paper's order relations (Section 2.4):
// m ≤ m' on monomials (an injective mapping of variable occurrences with
// equal variables, i.e. multiset inclusion), p ≤ p' on polynomials (an
// injective mapping of monomial occurrences into containing monomial
// occurrences, Def. 2.15), and the induced relation ≤_P on the annotated
// results of equivalent queries (Def. 2.17).
//
// The polynomial test is a bipartite matching problem with multiplicities;
// it is solved exactly by integer max-flow. A greedy variant is exported for
// the ablation benchmark that demonstrates why matching is necessary.
package order

import (
	"provmin/internal/semiring"
)

// Relation is the outcome of comparing two polynomials (or results) under
// the partial order ≤.
type Relation int

const (
	// Incomparable: neither p ≤ q nor q ≤ p.
	Incomparable Relation = iota
	// Less: p ≤ q and not q ≤ p (strictly terser).
	Less
	// Equal: p ≤ q and q ≤ p.
	Equal
	// Greater: q ≤ p and not p ≤ q.
	Greater
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case Less:
		return "<"
	case Equal:
		return "="
	case Greater:
		return ">"
	}
	return "incomparable"
}

// MonomialLE reports m ≤ n per Def. 2.15: an injective mapping of the
// occurrences of m into occurrences of n preserving variables, which is
// exactly multiset inclusion.
func MonomialLE(m, n semiring.Monomial) bool { return m.Divides(n) }

// PolyLE reports p ≤ q per Def. 2.15: an injective mapping of the monomial
// occurrences of p into the monomial occurrences of q such that each
// monomial maps into a containing monomial.
func PolyLE(p, q semiring.Polynomial) bool {
	pt, qt := p.Terms(), q.Terms()
	if p.NumOccurrences() > q.NumOccurrences() {
		return false
	}
	// Build the bipartite compatibility graph over distinct monomials with
	// capacities given by coefficients, then check that a saturating flow
	// from the p side exists.
	adj := make([][]int, len(pt))
	for i, a := range pt {
		for j, b := range qt {
			if a.Monomial.Divides(b.Monomial) {
				adj[i] = append(adj[i], j)
			}
		}
		if adj[i] == nil {
			return false
		}
	}
	return saturates(adj, coefs(pt), coefs(qt))
}

// PolyEq reports p = q in the order sense (p ≤ q and q ≤ p). Note this is
// coarser than semiring equality: s1 + s1 and 2*s1 are trivially =, but so
// are no distinct canonical polynomials — in fact order-equality coincides
// with polynomial equality (the paper's p = p'), which the tests verify on
// random inputs; both implementations are kept as a cross-check.
func PolyEq(p, q semiring.Polynomial) bool { return PolyLE(p, q) && PolyLE(q, p) }

// PolyLT reports p < q: p ≤ q but not p = q.
func PolyLT(p, q semiring.Polynomial) bool { return PolyLE(p, q) && !PolyLE(q, p) }

// Compare classifies the pair under the partial order.
func Compare(p, q semiring.Polynomial) Relation {
	le, ge := PolyLE(p, q), PolyLE(q, p)
	switch {
	case le && ge:
		return Equal
	case le:
		return Less
	case ge:
		return Greater
	}
	return Incomparable
}

func coefs(ts []semiring.MonomialTerm) []int {
	out := make([]int, len(ts))
	for i, t := range ts {
		out[i] = t.Coef
	}
	return out
}

// saturates decides whether a flow assigning every unit of the left
// capacities along compatibility edges into right capacities exists
// (Edmonds–Karp on the small bipartite network).
func saturates(adj [][]int, leftCap, rightCap []int) bool {
	nL, nR := len(leftCap), len(rightCap)
	// Node ids: 0 = source, 1..nL = left, nL+1..nL+nR = right, nL+nR+1 = sink.
	n := nL + nR + 2
	src, snk := 0, n-1
	cap := make([][]int, n)
	for i := range cap {
		cap[i] = make([]int, n)
	}
	need := 0
	for i, c := range leftCap {
		cap[src][1+i] = c
		need += c
	}
	for j, c := range rightCap {
		cap[1+nL+j][snk] = c
	}
	for i, js := range adj {
		for _, j := range js {
			cap[1+i][1+nL+j] = leftCap[i] // edge capacity bounded by supply
		}
	}
	flow := 0
	for {
		// BFS for an augmenting path.
		prev := make([]int, n)
		for i := range prev {
			prev[i] = -1
		}
		prev[src] = src
		queue := []int{src}
		for len(queue) > 0 && prev[snk] == -1 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if prev[v] == -1 && cap[u][v] > 0 {
					prev[v] = u
					queue = append(queue, v)
				}
			}
		}
		if prev[snk] == -1 {
			break
		}
		// Bottleneck.
		aug := int(^uint(0) >> 1)
		for v := snk; v != src; v = prev[v] {
			if cap[prev[v]][v] < aug {
				aug = cap[prev[v]][v]
			}
		}
		for v := snk; v != src; v = prev[v] {
			cap[prev[v]][v] -= aug
			cap[v][prev[v]] += aug
		}
		flow += aug
	}
	return flow == need
}

// GreedyPolyLE is an intentionally incomplete greedy approximation of
// PolyLE: it matches each occurrence of p (largest degree first) to the
// smallest still-available containing occurrence of q. It can report false
// negatives; the ablation benchmark quantifies how often. Kept for the
// DESIGN.md "matching vs greedy" ablation.
func GreedyPolyLE(p, q semiring.Polynomial) bool {
	left := p.MonomialOccurrences()
	right := q.MonomialOccurrences()
	if len(left) > len(right) {
		return false
	}
	// Largest-degree-first on the left.
	for i := 0; i < len(left); i++ {
		for j := i + 1; j < len(left); j++ {
			if left[j].Degree() > left[i].Degree() {
				left[i], left[j] = left[j], left[i]
			}
		}
	}
	used := make([]bool, len(right))
	for _, m := range left {
		best := -1
		for j, n := range right {
			if used[j] || !m.Divides(n) {
				continue
			}
			if best == -1 || n.Degree() < right[best].Degree() {
				best = j
			}
		}
		if best == -1 {
			return false
		}
		used[best] = true
	}
	return true
}
