package db

import (
	"errors"
	"fmt"
)

// Interning: every domain value an instance has ever seen is assigned a
// dense uint32 id by a per-instance SymbolTable, at Add time. Relations keep
// the interned image of each row next to the string rows, so the evaluator
// can join on fixed-width integer keys (compare one machine word) instead
// of re-hashing length-prefixed strings per probe. Ids are instance-local
// and never escape the process boundary as identifiers — snapshots persist
// the table only so a recovered instance re-interns to the same ids (and
// skips nothing on replay); results are always resolved back to strings.

// invalidID is the reserved symbol id 0: never assigned to a value, so the
// evaluator can use 0 as its "unbound variable" sentinel.
const invalidID uint32 = 0

// SymbolTable interns domain values of one instance into dense uint32 ids,
// starting at 1 (id 0 is reserved). It also memoizes a 64-bit hash per
// symbol — computed once at intern time — which the distinct-count sketches
// and the join partitioner consume, so neither ever re-hashes a string.
//
// Concurrency contract: reads (Lookup, Value, Hash) may run concurrently
// with each other; Intern mutates and requires external exclusion against
// both reads and writes — the same single-writer contract Relation already
// has (the engine's per-instance RW lock provides it).
type SymbolTable struct {
	ids  map[string]uint32
	vals []string // vals[id]; vals[0] is the reserved placeholder
	hash []uint64 // hash[id]: avalanche-mixed FNV-1a of the symbol
}

// NewSymbolTable creates an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{
		ids:  map[string]uint32{},
		vals: []string{""},
		hash: []uint64{0},
	}
}

// Intern returns the id of v, assigning the next dense id on first sight.
func (s *SymbolTable) Intern(v string) uint32 {
	if id, ok := s.ids[v]; ok {
		return id
	}
	id := uint32(len(s.vals))
	s.ids[v] = id
	s.vals = append(s.vals, v)
	s.hash = append(s.hash, symbolHash(v))
	return id
}

// Lookup returns the id of v without assigning one; ok is false when v has
// never been interned (and therefore occurs in no stored row).
func (s *SymbolTable) Lookup(v string) (uint32, bool) {
	id, ok := s.ids[v]
	return id, ok
}

// Value resolves an id back to its string. Panics on the reserved id 0 or
// an id never assigned — both indicate evaluator bugs, not data.
func (s *SymbolTable) Value(id uint32) string {
	if id == invalidID || int(id) >= len(s.vals) {
		panic("db: symbol id out of range")
	}
	return s.vals[id]
}

// Hash returns the memoized 64-bit hash of the symbol.
func (s *SymbolTable) Hash(id uint32) uint64 { return s.hash[id] }

// Len returns the number of interned symbols (the reserved id excluded).
func (s *SymbolTable) Len() int { return len(s.vals) - 1 }

// Symbols returns every interned value in id order (id 1 first). The slice
// is a copy; snapshot writers embed it in the envelope.
func (s *SymbolTable) Symbols() []string {
	out := make([]string, len(s.vals)-1)
	copy(out, s.vals[1:])
	return out
}

// symbolHash is FNV-1a finished with a murmur-style avalanche mix (the same
// finisher the cluster ring uses): FNV alone diffuses low bits poorly, and
// both the sketches and the join partitioner take bit slices.
func symbolHash(v string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

var errSeedNonEmpty = errors.New("db: SeedSymbols on a non-empty symbol table")

func errSeedDuplicate(v string) error {
	return fmt.Errorf("db: SeedSymbols: duplicate symbol %q", v)
}

// SeedSymbols pre-populates the instance's symbol table from a persisted
// symbol list (id 1 first), so rows decoded afterwards intern to exactly
// the ids the snapshot writer used. It must run on a fresh instance; a
// duplicate entry means the file is corrupt.
func (d *Instance) SeedSymbols(symbols []string) error {
	if d.symbols.Len() > 0 {
		return errSeedNonEmpty
	}
	for _, v := range symbols {
		if _, ok := d.symbols.Lookup(v); ok {
			return errSeedDuplicate(v)
		}
		d.symbols.Intern(v)
	}
	return nil
}

// Symbols returns the instance's symbol table.
func (d *Instance) Symbols() *SymbolTable { return d.symbols }
