package db

import (
	"fmt"
	"math"
	"math/bits"
)

// Cardinality statistics: every relation column carries a small HyperLogLog
// sketch of its distinct values, updated incrementally on Add from the
// symbol table's memoized hashes — O(1) per value, 64 bytes per column, no
// rescans. The evaluator's cost-based join planner consumes the estimates
// to order joins by expected intermediate cardinality instead of guessing
// from relation sizes alone.
//
// Deletions do not shrink the sketch (HLL is monotone), so after deletes
// the estimate is an upper bound — which only makes the planner slightly
// conservative, never wrong: plans affect cost, not results.

// hllRegisters is the sketch size (m = 2^hllP registers). p=6 keeps the
// sketch at 64 bytes per column with a standard error of 1.04/sqrt(64) ~
// 13% — plenty for join ordering, where estimates feed ratio comparisons.
const (
	hllP         = 6
	hllRegisters = 1 << hllP
)

// distinctSketch is a fixed-size HyperLogLog counter.
type distinctSketch struct {
	reg [hllRegisters]uint8
}

// add observes one 64-bit hash.
func (s *distinctSketch) add(h uint64) {
	idx := h >> (64 - hllP)
	// Rank of the remaining bits: leading zeros + 1, capped by the width.
	rest := h<<hllP | 1<<(hllP-1) // low bits set so rank is always defined
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > s.reg[idx] {
		s.reg[idx] = rank
	}
}

// estimate returns the approximate number of distinct hashes observed.
func (s *distinctSketch) estimate() float64 {
	// Standard HLL estimator with the small-range (linear counting)
	// correction; the large-range correction is irrelevant at 2^32 scale.
	const alpha = 0.709 // alpha_64 for m=64
	sum := 0.0
	zeros := 0
	for _, r := range s.reg {
		sum += 1.0 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	m := float64(hllRegisters)
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// DistinctEstimate returns the approximate count of distinct values in the
// column, clamped to [1, Len] (a non-empty column has at least one distinct
// value and at most one per row). It returns (0, false) when the relation
// carries no statistics — rows added outside an instance — or the column is
// out of range; callers fall back to size-based planning.
func (r *Relation) DistinctEstimate(col int) (float64, bool) {
	if r.sketches == nil || col < 0 || col >= r.Arity || r.Len() == 0 {
		return 0, false
	}
	e := r.sketches[col].estimate()
	if e < 1 {
		e = 1
	}
	if n := float64(r.Len()); e > n {
		e = n
	}
	return e, true
}

// Stats renders the relation's per-column distinct estimates for
// introspection (admin endpoints, tests).
func (r *Relation) Stats() string {
	if r.sketches == nil {
		return fmt.Sprintf("%s/%d: no statistics", r.Name, r.Arity)
	}
	s := fmt.Sprintf("%s/%d rows=%d distinct~[", r.Name, r.Arity, r.Len())
	for c := 0; c < r.Arity; c++ {
		if c > 0 {
			s += " "
		}
		e, _ := r.DistinctEstimate(c)
		s += fmt.Sprintf("%.0f", e)
	}
	return s + "]"
}
