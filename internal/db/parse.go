package db

import (
	"fmt"
	"strings"
)

// ParseInstance parses the plain-text instance format used by the CLI:
// one fact per line,
//
//	<relation> <tag> <value> <value> ...
//
// e.g. "R s2 a b". Blank lines and lines starting with '#' or '--' are
// skipped. All facts of a relation must have the same arity.
func ParseInstance(text string) (*Instance, error) {
	d := NewInstance()
	for lineno, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: want \"rel tag values...\", got %q", lineno+1, line)
		}
		rel, tag := fields[0], fields[1]
		if err := d.Add(rel, tag, fields[2:]...); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno+1, err)
		}
	}
	return d, nil
}

// FormatInstance renders an instance in the ParseInstance text format.
func FormatInstance(d *Instance) string {
	var b strings.Builder
	for _, r := range d.Relations() {
		for _, row := range r.Rows() {
			b.WriteString(r.Name)
			b.WriteByte(' ')
			b.WriteString(row.Tag)
			for _, v := range row.Tuple {
				b.WriteByte(' ')
				b.WriteString(v)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
