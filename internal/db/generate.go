package db

import (
	"fmt"
	"math/rand"
)

// Generator produces deterministic synthetic instances for tests and
// benchmarks. All generators are seeded, so runs are reproducible.
type Generator struct {
	rng *rand.Rand
	tag int
}

// NewGenerator creates a generator with the given seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

func (g *Generator) nextTag() string {
	g.tag++
	return fmt.Sprintf("s%d", g.tag)
}

// domain returns the value names d0..d{n-1}.
func domain(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("d%d", i)
	}
	return out
}

// RandomRelation adds a relation with the given arity containing n distinct
// random tuples over a domain of the given size, each abstractly tagged.
// n is clamped to the number of possible distinct tuples (domainSize^arity).
func (g *Generator) RandomRelation(d *Instance, name string, arity, n, domainSize int) *Relation {
	max := 1
	for i := 0; i < arity && max < n; i++ {
		max *= domainSize
	}
	if n > max {
		n = max
	}
	r := d.MustRelation(name, arity)
	dom := domain(domainSize)
	seen := map[string]bool{}
	for r.Len() < n {
		t := make([]string, arity)
		for i := range t {
			t[i] = dom[g.rng.Intn(len(dom))]
		}
		k := Tuple(t).Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		r.MustAdd(g.nextTag(), t...)
	}
	return r
}

// RandomGraph adds a binary relation representing a random directed graph
// with the given number of nodes and edges (no self-loop restriction).
func (g *Generator) RandomGraph(d *Instance, name string, nodes, edges int) *Relation {
	if edges > nodes*nodes {
		edges = nodes * nodes
	}
	r := d.MustRelation(name, 2)
	dom := domain(nodes)
	seen := map[string]bool{}
	for r.Len() < edges {
		a, b := dom[g.rng.Intn(nodes)], dom[g.rng.Intn(nodes)]
		k := a + "->" + b
		if seen[k] {
			continue
		}
		seen[k] = true
		r.MustAdd(g.nextTag(), a, b)
	}
	return r
}

// Cycle adds a binary relation forming a directed cycle d0 -> d1 -> ... -> d0.
func (g *Generator) Cycle(d *Instance, name string, nodes int) *Relation {
	r := d.MustRelation(name, 2)
	dom := domain(nodes)
	for i := range dom {
		r.MustAdd(g.nextTag(), dom[i], dom[(i+1)%len(dom)])
	}
	return r
}

// Path adds a binary relation forming a directed path d0 -> d1 -> ... .
func (g *Generator) Path(d *Instance, name string, nodes int) *Relation {
	r := d.MustRelation(name, 2)
	dom := domain(nodes)
	for i := 0; i+1 < len(dom); i++ {
		r.MustAdd(g.nextTag(), dom[i], dom[i+1])
	}
	return r
}

// Unary adds a unary relation containing the first n domain values.
func (g *Generator) Unary(d *Instance, name string, n int) *Relation {
	r := d.MustRelation(name, 1)
	for _, v := range domain(n) {
		r.MustAdd(g.nextTag(), v)
	}
	return r
}
