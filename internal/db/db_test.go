package db

import "testing"

// paperRelationR builds the relation R of Table 2.
func paperRelationR() *Instance {
	d := NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "b")
	return d
}

func TestInstanceBasics(t *testing.T) {
	d := paperRelationR()
	r := d.Lookup("R")
	if r == nil || r.Len() != 4 || r.Arity != 2 {
		t.Fatalf("R = %v", r)
	}
	if !r.Contains("a", "b") || r.Contains("c", "c") {
		t.Error("Contains is wrong")
	}
	if got := r.TagOf("b", "a"); got != "s3" {
		t.Errorf("TagOf(b,a) = %q", got)
	}
	if got := r.TagOf("z", "z"); got != "" {
		t.Errorf("TagOf(absent) = %q", got)
	}
	if d.NumTuples() != 4 {
		t.Errorf("NumTuples = %d", d.NumTuples())
	}
}

func TestInstanceAbstractlyTagged(t *testing.T) {
	d := paperRelationR()
	if !d.IsAbstractlyTagged() {
		t.Error("Table 2 instance is abstractly tagged")
	}
	// §6 example: both tuples annotated with the same tag s.
	g := NewInstance()
	g.MustAdd("R", "s", "a")
	g.MustAdd("R", "s", "b")
	if g.IsAbstractlyTagged() {
		t.Error("repeated tags must not count as abstractly tagged")
	}
}

func TestArityMismatch(t *testing.T) {
	d := NewInstance()
	d.MustAdd("R", "s1", "a", "b")
	if err := d.Add("R", "s2", "a"); err == nil {
		t.Error("arity mismatch must fail")
	}
	if _, err := d.Relation("R", 3); err == nil {
		t.Error("re-declaring with different arity must fail")
	}
}

func TestAddReplacesTag(t *testing.T) {
	d := NewInstance()
	d.MustAdd("R", "s1", "a")
	d.MustAdd("R", "s9", "a")
	r := d.Lookup("R")
	if r.Len() != 1 || r.TagOf("a") != "s9" {
		t.Errorf("set semantics: %v", r.Rows())
	}
}

func TestDelete(t *testing.T) {
	d := paperRelationR()
	r := d.Lookup("R")
	if !r.Delete("a", "b") {
		t.Fatal("Delete should find (a,b)")
	}
	if r.Contains("a", "b") || r.Len() != 3 {
		t.Error("tuple still present after delete")
	}
	if r.Delete("a", "b") {
		t.Error("second delete should report absence")
	}
	// byKey must be reindexed.
	if got := r.TagOf("b", "b"); got != "s4" {
		t.Errorf("TagOf after delete = %q", got)
	}
}

func TestRowsWithIndex(t *testing.T) {
	d := paperRelationR()
	r := d.Lookup("R")
	rows := r.RowsWith(0, "a")
	if len(rows) != 2 {
		t.Fatalf("RowsWith(0,a) = %v", rows)
	}
	for _, i := range rows {
		if r.Rows()[i].Tuple[0] != "a" {
			t.Errorf("row %d does not match", i)
		}
	}
	if got := r.RowsWith(1, "zzz"); len(got) != 0 {
		t.Errorf("RowsWith miss = %v", got)
	}
	if got := r.RowsWith(5, "a"); got != nil {
		t.Errorf("out-of-range column = %v", got)
	}
	// Index must invalidate after mutation.
	r.MustAdd("s5", "a", "c")
	if got := r.RowsWith(0, "a"); len(got) != 3 {
		t.Errorf("RowsWith after add = %v", got)
	}
}

func TestActiveDomainAndTags(t *testing.T) {
	d := paperRelationR()
	dom := d.ActiveDomain()
	if len(dom) != 2 || dom[0] != "a" || dom[1] != "b" {
		t.Errorf("ActiveDomain = %v", dom)
	}
	tags := d.Tags()
	if len(tags) != 4 || tags[0] != "s1" || tags[3] != "s4" {
		t.Errorf("Tags = %v", tags)
	}
}

func TestFactOf(t *testing.T) {
	d := paperRelationR()
	rel, tup, ok := d.FactOf("s3")
	if !ok || rel != "R" || !tup.Equal(Tuple{"b", "a"}) {
		t.Errorf("FactOf(s3) = %s %v %v", rel, tup, ok)
	}
	if _, _, ok := d.FactOf("nope"); ok {
		t.Error("FactOf(absent tag) must report false")
	}
}

func TestRetag(t *testing.T) {
	g := NewInstance()
	g.MustAdd("R", "s", "a")
	g.MustAdd("R", "s", "b")
	fresh, mapping := g.Retag("t")
	if !fresh.IsAbstractlyTagged() {
		t.Error("Retag must produce an abstractly tagged instance")
	}
	if len(mapping) != 2 {
		t.Fatalf("mapping = %v", mapping)
	}
	for _, old := range mapping {
		if old != "s" {
			t.Errorf("mapping value = %q, want s", old)
		}
	}
	// Original must be untouched.
	if g.Lookup("R").TagOf("a") != "s" {
		t.Error("Retag must not mutate the original")
	}
}

func TestCloneDeep(t *testing.T) {
	d := paperRelationR()
	c := d.Clone()
	c.Lookup("R").Delete("a", "a")
	if d.Lookup("R").Len() != 4 {
		t.Error("Clone must be deep")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := NewInstance(), NewInstance()
	NewGenerator(42).RandomRelation(a, "R", 2, 10, 5)
	NewGenerator(42).RandomRelation(b, "R", 2, 10, 5)
	if a.String() != b.String() {
		t.Error("same seed must produce the same instance")
	}
	c := NewInstance()
	NewGenerator(43).RandomRelation(c, "R", 2, 10, 5)
	if a.String() == c.String() {
		t.Error("different seeds should (overwhelmingly) differ")
	}
}

func TestGeneratorShapes(t *testing.T) {
	d := NewInstance()
	g := NewGenerator(1)
	if r := g.Cycle(d, "C", 5); r.Len() != 5 || !r.Contains("d4", "d0") {
		t.Errorf("Cycle = %v", r.Rows())
	}
	if r := g.Path(d, "P", 5); r.Len() != 4 || r.Contains("d4", "d0") {
		t.Errorf("Path = %v", r.Rows())
	}
	if r := g.Unary(d, "U", 3); r.Len() != 3 || !r.Contains("d2") {
		t.Errorf("Unary = %v", r.Rows())
	}
	if r := g.RandomGraph(d, "G", 4, 100); r.Len() != 16 {
		t.Errorf("RandomGraph should clamp to %d, got %d", 16, r.Len())
	}
	if r := g.RandomRelation(d, "W", 2, 100, 2); r.Len() != 4 {
		t.Errorf("RandomRelation should clamp to 4, got %d", r.Len())
	}
	if !d.IsAbstractlyTagged() {
		t.Error("generated instances must be abstractly tagged")
	}
}

func TestTupleHelpers(t *testing.T) {
	tup := Tuple{"a", "b"}
	if tup.String() != "(a,b)" {
		t.Errorf("String = %q", tup.String())
	}
	if !tup.Equal(Tuple{"a", "b"}) || tup.Equal(Tuple{"a"}) || tup.Equal(Tuple{"a", "c"}) {
		t.Error("Equal is wrong")
	}
	c := tup.Clone()
	c[0] = "z"
	if tup[0] != "a" {
		t.Error("Clone must copy")
	}
}
