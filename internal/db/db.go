// Package db implements annotated relational instances: N[X]-relations in
// the sense of Green et al. 2007 as used by the paper. Every tuple of an
// input relation carries an annotation variable (a tag from X). An instance
// is abstractly tagged when all tags are distinct (§2.3); the general case
// (§6) allows repeated tags.
package db

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Tuple is a database tuple: a fixed-arity list of domain values.
type Tuple []string

// String renders the tuple as "(a,b)".
func (t Tuple) String() string { return "(" + strings.Join(t, ",") + ")" }

// Key returns a canonical map key for the tuple.
func (t Tuple) Key() string { return strings.Join(t, "\x1f") }

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Row is a tuple together with its annotation tag.
type Row struct {
	Tuple Tuple
	Tag   string // annotation variable from X
}

// Relation is an annotated relation: an ordered list of tagged tuples with a
// fixed arity. Insertion order is preserved so evaluation results are
// deterministic.
type Relation struct {
	Name  string
	Arity int
	rows  []Row
	byKey map[string]int     // tuple key -> row index
	index []map[string][]int // column index: index[col][value] -> row indices
	// indexMu guards the lazy build and reads of index and idIndex, making
	// concurrent read-only use (RowsWith / RowsWithID from parallel
	// evaluations) safe. Mutating methods (Add, Delete) still require
	// external exclusion.
	indexMu sync.Mutex

	// Interned image of the rows (relations created via an Instance only):
	// ids holds each row's tuple as symbol ids, row-major with stride
	// Arity, so the evaluator joins on fixed-width integers; idIndex is the
	// per-column index keyed by id; sketches are the per-column distinct-
	// count statistics. Standalone relations (NewRelation) carry none of
	// this and evaluation falls back to string keys.
	intern   *SymbolTable
	ids      []uint32
	idIndex  []map[uint32][]int
	sketches []distinctSketch
}

// NewRelation creates an empty relation.
func NewRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity, byKey: map[string]int{}}
}

// newInternedRelation creates an empty relation wired to an instance's
// symbol table.
func newInternedRelation(name string, arity int, intern *SymbolTable) *Relation {
	r := NewRelation(name, arity)
	r.intern = intern
	r.sketches = make([]distinctSketch, arity)
	return r
}

// Add inserts a tagged tuple. Adding a tuple that already exists replaces
// its tag (relations are sets of tuples, as in the paper). It returns an
// error on arity mismatch.
func (r *Relation) Add(tag string, values ...string) error {
	if len(values) != r.Arity {
		return fmt.Errorf("relation %s: tuple %v has arity %d, want %d", r.Name, values, len(values), r.Arity)
	}
	t := Tuple(values).Clone()
	if i, ok := r.byKey[t.Key()]; ok {
		r.rows[i].Tag = tag // ids and sketches unchanged: same tuple
		return nil
	}
	r.rows = append(r.rows, Row{Tuple: t, Tag: tag})
	r.byKey[t.Key()] = len(r.rows) - 1
	r.index = nil // invalidate
	if r.intern != nil {
		for c, v := range t {
			id := r.intern.Intern(v)
			r.ids = append(r.ids, id)
			r.sketches[c].add(r.intern.Hash(id))
		}
		r.idIndex = nil
	}
	return nil
}

// MustAdd is Add that panics on error; for literal test fixtures.
func (r *Relation) MustAdd(tag string, values ...string) {
	if err := r.Add(tag, values...); err != nil {
		panic(err)
	}
}

// Delete removes a tuple if present and reports whether it was found.
// Used by the deletion-propagation application.
func (r *Relation) Delete(values ...string) bool {
	k := Tuple(values).Key()
	i, ok := r.byKey[k]
	if !ok {
		return false
	}
	r.rows = append(r.rows[:i], r.rows[i+1:]...)
	delete(r.byKey, k)
	for j := i; j < len(r.rows); j++ {
		r.byKey[r.rows[j].Tuple.Key()] = j
	}
	r.index = nil
	if r.intern != nil {
		// Splice the row's interned image so ids stays row-aligned. The
		// sketches are monotone and keep counting the deleted value — an
		// upper bound is fine for planning (see stats.go).
		r.ids = append(r.ids[:i*r.Arity], r.ids[(i+1)*r.Arity:]...)
		r.idIndex = nil
	}
	return true
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Rows returns the rows in insertion order. The slice must not be modified.
func (r *Relation) Rows() []Row { return r.rows }

// Contains reports membership of the tuple.
func (r *Relation) Contains(values ...string) bool {
	_, ok := r.byKey[Tuple(values).Key()]
	return ok
}

// TagOf returns the annotation of the given tuple, or "" if absent.
func (r *Relation) TagOf(values ...string) string {
	if i, ok := r.byKey[Tuple(values).Key()]; ok {
		return r.rows[i].Tag
	}
	return ""
}

// RowsWith returns the indices of rows whose column col equals val, using a
// lazily built per-column index. The build is guarded by indexMu so that
// concurrent read-only evaluations (e.g. parallel queries in the provmind
// engine, which hold only a read lock on the instance) can share one
// relation; writers still require external exclusion, as Add/Delete mutate
// rows without this lock.
func (r *Relation) RowsWith(col int, val string) []int {
	if col < 0 || col >= r.Arity {
		return nil
	}
	r.indexMu.Lock()
	if r.index == nil {
		idx := make([]map[string][]int, r.Arity)
		for c := 0; c < r.Arity; c++ {
			idx[c] = map[string][]int{}
		}
		for i, row := range r.rows {
			for c, v := range row.Tuple {
				idx[c][v] = append(idx[c][v], i)
			}
		}
		r.index = idx
	}
	rows := r.index[col][val]
	r.indexMu.Unlock()
	return rows
}

// Interned reports whether the relation carries an interned image of its
// rows (relations created through an Instance always do).
func (r *Relation) Interned() bool { return r.intern != nil }

// RowIDs returns row i's tuple as symbol ids (stride-Arity view into the
// relation's interned storage). Only valid when Interned; the slice must
// not be modified.
func (r *Relation) RowIDs(i int) []uint32 {
	return r.ids[i*r.Arity : (i+1)*r.Arity]
}

// RowsWithID is RowsWith on the interned image: the indices of rows whose
// column col holds the value with symbol id. The lazy build shares indexMu
// with the string index, so concurrent read-only evaluations are safe.
func (r *Relation) RowsWithID(col int, id uint32) []int {
	if r.intern == nil || col < 0 || col >= r.Arity {
		return nil
	}
	r.indexMu.Lock()
	if r.idIndex == nil {
		idx := make([]map[uint32][]int, r.Arity)
		for c := 0; c < r.Arity; c++ {
			idx[c] = map[uint32][]int{}
		}
		for i := 0; i < len(r.rows); i++ {
			row := r.ids[i*r.Arity : (i+1)*r.Arity]
			for c, v := range row {
				idx[c][v] = append(idx[c][v], i)
			}
		}
		r.idIndex = idx
	}
	rows := r.idIndex[col][id]
	r.indexMu.Unlock()
	return rows
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Name, r.Arity)
	for _, row := range r.rows {
		out.MustAdd(row.Tag, row.Tuple...)
	}
	return out
}

// Instance is a database instance: a set of annotated relations sharing one
// symbol table.
type Instance struct {
	rels    map[string]*Relation
	order   []string // relation names in creation order
	symbols *SymbolTable
}

// NewInstance creates an empty instance.
func NewInstance() *Instance {
	return &Instance{rels: map[string]*Relation{}, symbols: NewSymbolTable()}
}

// Relation returns the named relation, creating it with the given arity on
// first use. It returns an error if the relation exists with a different
// arity.
func (d *Instance) Relation(name string, arity int) (*Relation, error) {
	if r, ok := d.rels[name]; ok {
		if r.Arity != arity {
			return nil, fmt.Errorf("relation %s has arity %d, requested %d", name, r.Arity, arity)
		}
		return r, nil
	}
	r := newInternedRelation(name, arity, d.symbols)
	d.rels[name] = r
	d.order = append(d.order, name)
	return r, nil
}

// MustRelation is Relation that panics on error.
func (d *Instance) MustRelation(name string, arity int) *Relation {
	r, err := d.Relation(name, arity)
	if err != nil {
		panic(err)
	}
	return r
}

// Add inserts a tagged tuple into the named relation, creating the relation
// on first use with the tuple's arity.
func (d *Instance) Add(rel, tag string, values ...string) error {
	r, err := d.Relation(rel, len(values))
	if err != nil {
		return err
	}
	return r.Add(tag, values...)
}

// MustAdd is Add that panics on error.
func (d *Instance) MustAdd(rel, tag string, values ...string) {
	if err := d.Add(rel, tag, values...); err != nil {
		panic(err)
	}
}

// Lookup returns the named relation or nil.
func (d *Instance) Lookup(name string) *Relation { return d.rels[name] }

// Relations returns the relations in creation order.
func (d *Instance) Relations() []*Relation {
	out := make([]*Relation, len(d.order))
	for i, n := range d.order {
		out[i] = d.rels[n]
	}
	return out
}

// NumTuples returns the total tuple count across relations.
func (d *Instance) NumTuples() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// Tags returns all annotation tags in the instance, sorted.
func (d *Instance) Tags() []string {
	var out []string
	for _, r := range d.Relations() {
		for _, row := range r.Rows() {
			out = append(out, row.Tag)
		}
	}
	sort.Strings(out)
	return out
}

// IsAbstractlyTagged reports whether all tags across the instance are
// pairwise distinct (§2.3).
func (d *Instance) IsAbstractlyTagged() bool {
	seen := map[string]bool{}
	for _, r := range d.rels {
		for _, row := range r.rows {
			if seen[row.Tag] {
				return false
			}
			seen[row.Tag] = true
		}
	}
	return true
}

// ActiveDomain returns the sorted set of values occurring in the instance.
func (d *Instance) ActiveDomain() []string {
	seen := map[string]bool{}
	for _, r := range d.rels {
		for _, row := range r.rows {
			for _, v := range row.Tuple {
				seen[v] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// FactOf returns the relation name and tuple carrying the given tag, used by
// direct minimization (Lemma 5.9) to reconstruct queries from monomials.
// When tags repeat (general annotations) the first match in creation order
// is returned; ok is false if the tag is absent.
func (d *Instance) FactOf(tag string) (rel string, tuple Tuple, ok bool) {
	for _, r := range d.Relations() {
		for _, row := range r.Rows() {
			if row.Tag == tag {
				return r.Name, row.Tuple, true
			}
		}
	}
	return "", nil, false
}

// Retag returns a copy of the instance with fresh distinct tags t1, t2, ...
// and the mapping new-tag -> old-tag. This is the §6 construction used to
// reduce general annotations to the abstractly-tagged case.
func (d *Instance) Retag(prefix string) (*Instance, map[string]string) {
	out := NewInstance()
	mapping := map[string]string{}
	i := 0
	for _, r := range d.Relations() {
		nr := out.MustRelation(r.Name, r.Arity)
		for _, row := range r.Rows() {
			i++
			fresh := fmt.Sprintf("%s%d", prefix, i)
			mapping[fresh] = row.Tag
			nr.MustAdd(fresh, row.Tuple...)
		}
	}
	return out, mapping
}

// Clone returns a deep copy of the instance.
func (d *Instance) Clone() *Instance {
	out := NewInstance()
	for _, r := range d.Relations() {
		nr := out.MustRelation(r.Name, r.Arity)
		for _, row := range r.Rows() {
			nr.MustAdd(row.Tag, row.Tuple...)
		}
	}
	return out
}

// String renders the instance relation by relation for debugging.
func (d *Instance) String() string {
	var b strings.Builder
	for _, r := range d.Relations() {
		fmt.Fprintf(&b, "%s/%d:\n", r.Name, r.Arity)
		for _, row := range r.Rows() {
			fmt.Fprintf(&b, "  %s  [%s]\n", row.Tuple, row.Tag)
		}
	}
	return b.String()
}
