package db

import "testing"

func TestParseInstance(t *testing.T) {
	d, err := ParseInstance(`
# relation R from Table 2
R s1 a a
R s2 a b

-- and a unary relation
S s0 a
`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lookup("R").Len() != 2 || d.Lookup("S").Len() != 1 {
		t.Fatalf("parsed:\n%s", d)
	}
	if d.Lookup("R").TagOf("a", "b") != "s2" {
		t.Error("tag lost in parsing")
	}
}

func TestParseInstanceZeroArity(t *testing.T) {
	d, err := ParseInstance("B s1")
	if err != nil {
		t.Fatal(err)
	}
	if d.Lookup("B").Arity != 0 || d.Lookup("B").Len() != 1 {
		t.Errorf("zero-arity relation mishandled: %v", d)
	}
}

func TestParseInstanceErrors(t *testing.T) {
	if _, err := ParseInstance("R"); err == nil {
		t.Error("missing tag must fail")
	}
	if _, err := ParseInstance("R s1 a\nR s2 a b"); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestFormatInstanceRoundTrip(t *testing.T) {
	d := NewInstance()
	d.MustAdd("R", "s1", "a", "b")
	d.MustAdd("S", "s2", "x")
	text := FormatInstance(d)
	d2, err := ParseInstance(text)
	if err != nil {
		t.Fatal(err)
	}
	if FormatInstance(d2) != text {
		t.Errorf("round trip failed:\n%q\nvs\n%q", text, FormatInstance(d2))
	}
}
