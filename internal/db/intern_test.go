package db

import (
	"fmt"
	"testing"
)

func TestSymbolTableInternLookupValue(t *testing.T) {
	s := NewSymbolTable()
	a := s.Intern("a")
	b := s.Intern("b")
	empty := s.Intern("") // the empty string is a legal domain value
	if a == invalidID || b == invalidID || empty == invalidID {
		t.Fatalf("reserved id assigned: a=%d b=%d empty=%d", a, b, empty)
	}
	if a == b || a == empty || b == empty {
		t.Fatalf("distinct values shared an id: a=%d b=%d empty=%d", a, b, empty)
	}
	if got := s.Intern("a"); got != a {
		t.Fatalf("re-intern of a: got %d want %d", got, a)
	}
	if id, ok := s.Lookup("b"); !ok || id != b {
		t.Fatalf("Lookup(b) = %d,%v want %d,true", id, ok, b)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Fatal("Lookup of a never-interned value succeeded")
	}
	if got := s.Value(empty); got != "" {
		t.Fatalf("Value(empty) = %q", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d want 3", s.Len())
	}
	if got := s.Symbols(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "" {
		t.Fatalf("Symbols = %q", got)
	}
}

func TestRelationInternedRowsTrackAddDelete(t *testing.T) {
	d := NewInstance()
	r := d.MustRelation("R", 2)
	r.MustAdd("t1", "x", "y")
	r.MustAdd("t2", "y", "z")
	r.MustAdd("t3", "x", "z")
	if !r.Interned() {
		t.Fatal("instance relation not interned")
	}
	checkAligned := func() {
		t.Helper()
		for i, row := range r.Rows() {
			ids := r.RowIDs(i)
			for c, v := range row.Tuple {
				if d.Symbols().Value(ids[c]) != v {
					t.Fatalf("row %d col %d: id %d resolves to %q want %q",
						i, c, ids[c], d.Symbols().Value(ids[c]), v)
				}
			}
		}
	}
	checkAligned()

	// Tag overwrite must not grow the interned storage.
	before := len(r.ids)
	r.MustAdd("t1b", "x", "y")
	if len(r.ids) != before {
		t.Fatalf("tag overwrite grew ids: %d -> %d", before, len(r.ids))
	}
	checkAligned()

	// Deleting a middle row must splice ids in lockstep with rows.
	if !r.Delete("y", "z") {
		t.Fatal("Delete(y,z) missed")
	}
	if r.Len() != 2 || len(r.ids) != 2*r.Arity {
		t.Fatalf("after delete: rows=%d ids=%d", r.Len(), len(r.ids))
	}
	checkAligned()

	// The id index reflects the post-delete state.
	xid, _ := d.Symbols().Lookup("x")
	rows := r.RowsWithID(0, xid)
	if len(rows) != 2 {
		t.Fatalf("RowsWithID(0,x) = %v want both remaining rows", rows)
	}
}

func TestSeedSymbolsRoundTrip(t *testing.T) {
	src := NewInstance()
	r := src.MustRelation("R", 2)
	r.MustAdd("t1", "c", "a")
	r.MustAdd("t2", "a", "b")

	dst := NewInstance()
	if err := dst.SeedSymbols(src.Symbols().Symbols()); err != nil {
		t.Fatal(err)
	}
	nr := dst.MustRelation("R", 2)
	nr.MustAdd("t1", "c", "a")
	nr.MustAdd("t2", "a", "b")
	for i := range r.Rows() {
		for c := range r.Rows()[i].Tuple {
			if r.RowIDs(i)[c] != nr.RowIDs(i)[c] {
				t.Fatalf("row %d col %d: seeded id %d != original %d",
					i, c, nr.RowIDs(i)[c], r.RowIDs(i)[c])
			}
		}
	}

	if err := dst.SeedSymbols([]string{"zzz"}); err == nil {
		t.Fatal("SeedSymbols on a non-empty table succeeded")
	}
	if err := NewInstance().SeedSymbols([]string{"a", "a"}); err == nil {
		t.Fatal("SeedSymbols with a duplicate succeeded")
	}
}

func TestDistinctEstimateTracksCardinality(t *testing.T) {
	d := NewInstance()
	r := d.MustRelation("R", 2)
	n := 500
	for i := 0; i < n; i++ {
		// Column 0: all distinct. Column 1: exactly 10 distinct values.
		r.MustAdd(fmt.Sprintf("t%d", i), fmt.Sprintf("k%d", i), fmt.Sprintf("g%d", i%10))
	}
	hi, ok := r.DistinctEstimate(0)
	if !ok {
		t.Fatal("no estimate for instance relation")
	}
	lo, _ := r.DistinctEstimate(1)
	// The sketch has ~13% standard error; assert loose brackets and, more
	// importantly, that the planner can tell the two columns apart.
	if hi < float64(n)/2 || hi > float64(n) {
		t.Fatalf("column 0 estimate %.0f for %d distinct", hi, n)
	}
	if lo < 2 || lo > 40 {
		t.Fatalf("column 1 estimate %.0f for 10 distinct", lo)
	}
	if hi < 5*lo {
		t.Fatalf("estimates cannot rank columns: hi=%.0f lo=%.0f", hi, lo)
	}

	if _, ok := NewRelation("S", 1).DistinctEstimate(0); ok {
		t.Fatal("standalone relation reported statistics")
	}
}
