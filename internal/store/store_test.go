package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"provmin/internal/db"
	"provmin/internal/direct"
	"provmin/internal/eval"
	"provmin/internal/minimize"
	"provmin/internal/query"
	"provmin/internal/semiring"
	"provmin/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	d := workload.Table2()
	q := query.MustParse("ans(x) :- R(x,y), R(y,x)")
	res, err := eval.EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d, res, q.Consts()); err != nil {
		t.Fatal(err)
	}
	d2, res2, consts, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(consts) != 0 {
		t.Errorf("consts = %v", consts)
	}
	if !res.SameAnnotated(res2) {
		t.Errorf("result round trip failed:\n%s\nvs\n%s", res, res2)
	}
	if d2.NumTuples() != d.NumTuples() || !d2.IsAbstractlyTagged() {
		t.Errorf("database round trip failed:\n%s", d2)
	}
	if d2.Lookup("R").TagOf("a", "b") != "s2" {
		t.Error("tags lost in round trip")
	}
}

// TestOfflineCoreWorkflow is the end-to-end §1/§5 story: evaluate, store,
// forget the query, reload elsewhere, and compute the exact core — equal to
// what MinProv would have produced.
func TestOfflineCoreWorkflow(t *testing.T) {
	d := workload.Table6()
	q := workload.QHat
	res, err := eval.EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := Write(&wire, d, res, q.Consts()); err != nil {
		t.Fatal(err)
	}

	// "Another machine": only the bytes travel.
	d2, res2, consts, err := Read(bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	core, err := direct.CoreResult(res2, d2, consts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.EvalUCQ(minimize.MinProvCQ(q), d)
	if err != nil {
		t.Fatal(err)
	}
	if !core.SameAnnotated(want) {
		t.Errorf("offline core:\n%s\nwant:\n%s", core, want)
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, _, err := Read(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON must fail")
	}
	if _, _, _, err := Read(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("unknown version must fail")
	}
	if _, _, _, err := Read(strings.NewReader(`{"version": 0}`)); err == nil {
		t.Error("missing version must fail")
	}
	bad := `{"version":1,"result":[{"values":["a"],"provenance":"not a poly ("}]}`
	if _, _, _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("bad polynomial must fail")
	}
	badArity := `{"version":1,"database":[{"name":"R","arity":2,"rows":[{"tag":"s1","values":["a"]}]}]}`
	if _, _, _, err := Read(strings.NewReader(badArity)); err == nil {
		t.Error("arity mismatch must fail")
	}
}

// TestGoldenV1StillDecodes pins backward compatibility: a version-1 file
// committed before the version-2 bump must keep decoding byte-for-byte.
func TestGoldenV1StillDecodes(t *testing.T) {
	f, err := os.Open("testdata/v1_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, res, consts, err := Read(f)
	if err != nil {
		t.Fatalf("v1 golden file must decode with a v2 reader: %v", err)
	}
	if len(consts) != 1 || consts[0] != "c" {
		t.Errorf("consts = %v, want [c]", consts)
	}
	if d.NumTuples() != 3 || d.Lookup("R").TagOf("a", "b") != "s2" {
		t.Errorf("database lost in v1 decode:\n%s", d)
	}
	if res.Len() != 2 {
		t.Errorf("result rows = %d, want 2", res.Len())
	}
	p, err := eval.Provenance(query.MustParseUnion("ans(x) :- R(x,y), R(y,x)"), d, db.Tuple{"a"})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Tuples()[0]
	if got.Prov.String() != p.String() {
		t.Errorf("golden provenance %q, re-evaluated %q", got.Prov, p)
	}
}

// TestV2RefusedByV1Reader is the forward-compatibility half: a reader that
// only understands version 1 must refuse a newer file with an error naming
// both versions, not silently drop the newer fields.
func TestV2RefusedByV1Reader(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a")
	env := NewEnvelope(d, nil, nil)
	env.Version = FormatVersion // as the snapshot layer writes it
	env.Instance = "i1"
	env.LastSeq = 7
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeEnvelope(bytes.NewReader(raw), 1)
	if err == nil {
		t.Fatal("v1-only reader accepted a v2 file")
	}
	for _, want := range []string{fmt.Sprintf("version %d", FormatVersion), "max 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("refusal error %q does not mention %q", err, want)
		}
	}
	// The same bytes decode fine with the current reader.
	if _, err := DecodeEnvelope(bytes.NewReader(raw), FormatVersion); err != nil {
		t.Fatalf("v2 reader refused its own file: %v", err)
	}
}

// TestEnvelopeV2RoundTrip exercises the v2-only fields end to end.
func TestEnvelopeV2RoundTrip(t *testing.T) {
	d := workload.Table2()
	env := NewEnvelope(d, nil, nil)
	env.Instance = "i7"
	env.InstanceVersion = 42
	env.LastSeq = 99
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(bytes.NewReader(raw), FormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	if got.Instance != "i7" || got.InstanceVersion != 42 || got.LastSeq != 99 {
		t.Errorf("v2 fields lost: %+v", got)
	}
	d2, _, _, err := got.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumTuples() != d.NumTuples() {
		t.Errorf("tuples = %d, want %d", d2.NumTuples(), d.NumTuples())
	}
}

// TestEnvelopeV3SymbolRoundTrip: a v3 envelope carries the symbol table,
// and decoding reproduces the writer's interned ids exactly — the property
// the crash-recovery path relies on.
func TestEnvelopeV3SymbolRoundTrip(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "b", "a")
	d.MustAdd("R", "s2", "a", "c")
	d.MustAdd("S", "s3", "c")
	env := NewEnvelope(d, nil, nil)
	env.Version = FormatVersion
	env.Instance = "i1"
	env.Symbols = d.Symbols().Symbols()
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(bytes.NewReader(raw), FormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, _, err := got.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if d2.Symbols().Len() != d.Symbols().Len() {
		t.Fatalf("symbol count %d, want %d", d2.Symbols().Len(), d.Symbols().Len())
	}
	for _, r := range d.Relations() {
		r2 := d2.Lookup(r.Name)
		for i := range r.Rows() {
			for c := 0; c < r.Arity; c++ {
				if r.RowIDs(i)[c] != r2.RowIDs(i)[c] {
					t.Fatalf("%s row %d col %d: decoded id %d != written %d",
						r.Name, i, c, r2.RowIDs(i)[c], r.RowIDs(i)[c])
				}
			}
		}
	}
	// Without the symbols section (a v2 file), decoding still works — the
	// table is rebuilt from the rows.
	env.Symbols = nil
	env.Version = 2
	raw, _ = json.Marshal(env)
	got, err = DecodeEnvelope(bytes.NewReader(raw), FormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	d3, _, _, err := got.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if d3.Symbols().Len() != d.Symbols().Len() {
		t.Fatalf("rebuilt symbol count %d, want %d", d3.Symbols().Len(), d.Symbols().Len())
	}
}

func TestStoreIsHumanReadable(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a")
	res := eval.NewResult()
	res.Add(db.Tuple{"a"}, semiring.Var("s1"))
	res.Finish()
	var buf bytes.Buffer
	if err := Write(&buf, d, res, []string{"c"}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// Plain offline files stay version 1 (no v2 field is used), so older
	// readers keep accepting them.
	for _, want := range []string{`"version": 1`, `"tag": "s1"`, `"provenance": "s1"`, `"consts"`} {
		if !strings.Contains(s, want) {
			t.Errorf("stored JSON missing %q:\n%s", want, s)
		}
	}
}
