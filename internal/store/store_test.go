package store

import (
	"bytes"
	"strings"
	"testing"

	"provmin/internal/db"
	"provmin/internal/direct"
	"provmin/internal/eval"
	"provmin/internal/minimize"
	"provmin/internal/query"
	"provmin/internal/semiring"
	"provmin/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	d := workload.Table2()
	q := query.MustParse("ans(x) :- R(x,y), R(y,x)")
	res, err := eval.EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d, res, q.Consts()); err != nil {
		t.Fatal(err)
	}
	d2, res2, consts, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(consts) != 0 {
		t.Errorf("consts = %v", consts)
	}
	if !res.SameAnnotated(res2) {
		t.Errorf("result round trip failed:\n%s\nvs\n%s", res, res2)
	}
	if d2.NumTuples() != d.NumTuples() || !d2.IsAbstractlyTagged() {
		t.Errorf("database round trip failed:\n%s", d2)
	}
	if d2.Lookup("R").TagOf("a", "b") != "s2" {
		t.Error("tags lost in round trip")
	}
}

// TestOfflineCoreWorkflow is the end-to-end §1/§5 story: evaluate, store,
// forget the query, reload elsewhere, and compute the exact core — equal to
// what MinProv would have produced.
func TestOfflineCoreWorkflow(t *testing.T) {
	d := workload.Table6()
	q := workload.QHat
	res, err := eval.EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := Write(&wire, d, res, q.Consts()); err != nil {
		t.Fatal(err)
	}

	// "Another machine": only the bytes travel.
	d2, res2, consts, err := Read(bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	core, err := direct.CoreResult(res2, d2, consts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.EvalUCQ(minimize.MinProvCQ(q), d)
	if err != nil {
		t.Fatal(err)
	}
	if !core.SameAnnotated(want) {
		t.Errorf("offline core:\n%s\nwant:\n%s", core, want)
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, _, err := Read(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON must fail")
	}
	if _, _, _, err := Read(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("unknown version must fail")
	}
	bad := `{"version":1,"result":[{"values":["a"],"provenance":"not a poly ("}]}`
	if _, _, _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("bad polynomial must fail")
	}
	badArity := `{"version":1,"database":[{"name":"R","arity":2,"rows":[{"tag":"s1","values":["a"]}]}]}`
	if _, _, _, err := Read(strings.NewReader(badArity)); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestStoreIsHumanReadable(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a")
	res := eval.NewResult()
	res.Add(db.Tuple{"a"}, semiring.Var("s1"))
	res.Finish()
	var buf bytes.Buffer
	if err := Write(&buf, d, res, []string{"c"}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"version": 1`, `"tag": "s1"`, `"provenance": "s1"`, `"consts"`} {
		if !strings.Contains(s, want) {
			t.Errorf("stored JSON missing %q:\n%s", want, s)
		}
	}
}
