package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzEnvelopeDecode drives the full read path — DecodeEnvelope (JSON +
// version window), then Decode (symbol-table seeding, relation rebuild,
// polynomial parsing) — with arbitrary bytes. The properties: never
// panic, and anything that decodes cleanly must survive a
// write-and-reread round trip.
func FuzzEnvelopeDecode(f *testing.F) {
	if golden, err := os.ReadFile(filepath.Join("testdata", "v1_golden.json")); err == nil {
		f.Add(golden)
	}
	// A v2 snapshot envelope: instance identity and WAL watermark set.
	f.Add([]byte(`{"version":2,"instance":"orders","instance_version":7,"last_seq":41,
		"database":[{"name":"R","arity":1,"rows":[{"tag":"s1","values":["x"]}]}]}`))
	// A v3 envelope with a seeded symbol table.
	f.Add([]byte(`{"version":3,"instance":"orders","symbols":["a","b","c"],
		"database":[{"name":"R","arity":2,"rows":[{"tag":"s1","values":["a","b"]},{"tag":"s2","values":["c","a"]}]}],
		"result":[{"values":["a"],"provenance":"s1*s2 + s1^2"}]}`))
	// Refused inputs: a future version and a missing version.
	f.Add([]byte(`{"version":99,"database":[]}`))
	f.Add([]byte(`{"database":[]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(bytes.NewReader(data), FormatVersion)
		if err != nil {
			return // malformed, torn or version-refused input: fine, as long as no panic
		}
		if env.Version < 1 || env.Version > FormatVersion {
			t.Fatalf("DecodeEnvelope accepted version %d outside [1, %d]", env.Version, FormatVersion)
		}
		d, res, consts, err := env.Decode()
		if err != nil {
			return // structurally valid JSON with semantic garbage: fine
		}
		var buf bytes.Buffer
		if err := Write(&buf, d, res, consts); err != nil {
			t.Fatalf("re-encode of a decoded envelope failed: %v", err)
		}
		if _, err := DecodeEnvelope(bytes.NewReader(buf.Bytes()), FormatVersion); err != nil {
			t.Fatalf("round-tripped envelope no longer decodes: %v", err)
		}
	})
}
