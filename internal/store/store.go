// Package store serializes annotated results and instances to JSON,
// supporting the paper's off-line workflow (§1, §5): a system evaluates
// whatever plan its optimizer likes and *stores* the annotated result;
// later — possibly on another machine, without the query — the core
// provenance of any output tuple is computed directly from the stored
// polynomial plus the stored database (Theorem 5.1).
package store

import (
	"encoding/json"
	"fmt"
	"io"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/semiring"
)

// Envelope is the top-level stored document.
type Envelope struct {
	// Version of the format; bumped on breaking changes.
	Version int `json:"version"`
	// Consts are the query constants, needed for exact direct minimization
	// (Theorem 5.1 part 2). May be empty.
	Consts []string `json:"consts,omitempty"`
	// Database is the annotated input instance.
	Database []StoredRelation `json:"database"`
	// Result is the annotated query output.
	Result []StoredTuple `json:"result"`
}

// StoredRelation is one relation of the instance.
type StoredRelation struct {
	Name  string      `json:"name"`
	Arity int         `json:"arity"`
	Rows  []StoredRow `json:"rows"`
}

// StoredRow is one tagged tuple.
type StoredRow struct {
	Tag    string   `json:"tag"`
	Values []string `json:"values"`
}

// StoredTuple is one output tuple with its provenance polynomial in the
// canonical textual form of semiring.Polynomial.String.
type StoredTuple struct {
	Values     []string `json:"values"`
	Provenance string   `json:"provenance"`
}

// FormatVersion is the current envelope version.
const FormatVersion = 1

// Write serializes the instance, result and constants to w.
func Write(w io.Writer, d *db.Instance, res *eval.Result, consts []string) error {
	env := Envelope{Version: FormatVersion, Consts: consts}
	for _, r := range d.Relations() {
		sr := StoredRelation{Name: r.Name, Arity: r.Arity}
		for _, row := range r.Rows() {
			sr.Rows = append(sr.Rows, StoredRow{Tag: row.Tag, Values: append([]string{}, row.Tuple...)})
		}
		env.Database = append(env.Database, sr)
	}
	for _, ot := range res.Tuples() {
		env.Result = append(env.Result, StoredTuple{
			Values:     append([]string{}, ot.Tuple...),
			Provenance: ot.Prov.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// Read deserializes an envelope, reconstructing the instance and the
// annotated result.
func Read(r io.Reader) (*db.Instance, *eval.Result, []string, error) {
	var env Envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, nil, nil, fmt.Errorf("decode provenance store: %w", err)
	}
	if env.Version != FormatVersion {
		return nil, nil, nil, fmt.Errorf("unsupported store version %d (want %d)", env.Version, FormatVersion)
	}
	d := db.NewInstance()
	for _, sr := range env.Database {
		rel, err := d.Relation(sr.Name, sr.Arity)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, row := range sr.Rows {
			if err := rel.Add(row.Tag, row.Values...); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	res := eval.NewResult()
	for _, st := range env.Result {
		p, err := semiring.ParsePolynomial(st.Provenance)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("tuple %v: %w", st.Values, err)
		}
		res.Add(db.Tuple(st.Values), p)
	}
	res.Finish()
	return d, res, env.Consts, nil
}
