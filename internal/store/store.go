// Package store serializes annotated results and instances to JSON,
// supporting the paper's off-line workflow (§1, §5): a system evaluates
// whatever plan its optimizer likes and *stores* the annotated result;
// later — possibly on another machine, without the query — the core
// provenance of any output tuple is computed directly from the stored
// polynomial plus the stored database (Theorem 5.1).
//
// The same Envelope doubles as the snapshot record of the provmind
// durability layer (internal/persist): format version 2 adds the instance
// identity, the engine-visible instance version and the last applied WAL
// sequence number, so a snapshot plus a WAL suffix reconstructs an
// instance exactly. Version-2 readers still decode version-1 files;
// version-1-only readers refuse version-2 files with a clear error.
//
// Envelopes are hashed and diffed byte-for-byte (snapshot dedup, golden
// files), so this package is canonical: no map iteration order, clock
// value or RNG draw may reach an encoded envelope.
//
//provlint:canonical
package store

import (
	"encoding/json"
	"fmt"
	"io"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/semiring"
)

// Envelope is the top-level stored document.
type Envelope struct {
	// Version of the format; bumped on breaking changes.
	Version int `json:"version"`
	// Instance names the engine instance this envelope captures (v2;
	// empty in offline-workflow files).
	Instance string `json:"instance,omitempty"`
	// InstanceVersion is the engine's instance version counter at capture
	// time (v2): one increment per applied ingest batch.
	InstanceVersion uint64 `json:"instance_version,omitempty"`
	// LastSeq is the last write-ahead-log sequence number reflected in
	// this envelope (v2); replay applies only records with a larger seq.
	LastSeq uint64 `json:"last_seq,omitempty"`
	// Symbols is the instance's interned symbol table in id order (v3).
	// Decoding seeds the table before the rows, so a recovered instance
	// re-interns every value to exactly the id the writer used; files
	// without it (v1/v2, offline-workflow files) just rebuild the table
	// from the rows in insertion order.
	Symbols []string `json:"symbols,omitempty"`
	// Consts are the query constants, needed for exact direct minimization
	// (Theorem 5.1 part 2). May be empty.
	Consts []string `json:"consts,omitempty"`
	// Database is the annotated input instance.
	Database []StoredRelation `json:"database"`
	// Result is the annotated query output.
	Result []StoredTuple `json:"result,omitempty"`
}

// StoredRelation is one relation of the instance.
type StoredRelation struct {
	Name  string      `json:"name"`
	Arity int         `json:"arity"`
	Rows  []StoredRow `json:"rows"`
}

// StoredRow is one tagged tuple.
type StoredRow struct {
	Tag    string   `json:"tag"`
	Values []string `json:"values"`
}

// StoredTuple is one output tuple with its provenance polynomial in the
// canonical textual form of semiring.Polynomial.String.
type StoredTuple struct {
	Values     []string `json:"values"`
	Provenance string   `json:"provenance"`
}

// FormatVersion is the newest envelope version this package understands.
// Readers accept every version from 1 through FormatVersion; writers emit
// the lowest version that expresses their fields (NewEnvelope stamps 1,
// and the persist snapshot layer raises it to 3 for its instance and
// symbol-table fields).
const FormatVersion = 3

// NewEnvelope captures an instance, an optional annotated result and the
// query constants into an envelope. It stamps version 1 — everything it
// fills is v1-expressible, so plain offline-workflow files stay readable
// by older releases; writers that set any v2 field (the persist snapshot
// layer) must raise Version to FormatVersion themselves.
func NewEnvelope(d *db.Instance, res *eval.Result, consts []string) Envelope {
	env := Envelope{Version: 1, Consts: consts}
	for _, r := range d.Relations() {
		sr := StoredRelation{Name: r.Name, Arity: r.Arity}
		for _, row := range r.Rows() {
			sr.Rows = append(sr.Rows, StoredRow{Tag: row.Tag, Values: append([]string{}, row.Tuple...)})
		}
		env.Database = append(env.Database, sr)
	}
	if res != nil {
		for _, ot := range res.Tuples() {
			env.Result = append(env.Result, StoredTuple{
				Values:     append([]string{}, ot.Tuple...),
				Provenance: ot.Prov.String(),
			})
		}
	}
	return env
}

// DecodeEnvelope reads one envelope from r, enforcing the version window a
// reader supports: files newer than maxVersion are refused with an error
// that names both versions, so a v1-only reader fails loudly on v2 files
// instead of silently dropping the v2 fields.
func DecodeEnvelope(r io.Reader, maxVersion int) (*Envelope, error) {
	var env Envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("decode provenance store: %w", err)
	}
	if err := env.CheckVersion(maxVersion); err != nil {
		return nil, err
	}
	return &env, nil
}

// CheckVersion validates the envelope's declared version against the
// reader's capability.
func (env *Envelope) CheckVersion(maxVersion int) error {
	if env.Version < 1 {
		return fmt.Errorf("store: missing or invalid format version %d", env.Version)
	}
	if env.Version > maxVersion {
		return fmt.Errorf("store: file format version %d is newer than this reader supports (max %d); upgrade the reader", env.Version, maxVersion)
	}
	return nil
}

// Decode reconstructs the instance, the annotated result and the constants
// from an already version-checked envelope. Versions 1-3 share the
// database/result layout, so one decoder serves all; v3's symbol table, if
// present, is seeded first so row decoding reproduces the writer's ids.
func (env *Envelope) Decode() (*db.Instance, *eval.Result, []string, error) {
	d := db.NewInstance()
	if len(env.Symbols) > 0 {
		if err := d.SeedSymbols(env.Symbols); err != nil {
			return nil, nil, nil, err
		}
	}
	for _, sr := range env.Database {
		rel, err := d.Relation(sr.Name, sr.Arity)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, row := range sr.Rows {
			if err := rel.Add(row.Tag, row.Values...); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	res := eval.NewResult()
	for _, st := range env.Result {
		p, err := semiring.ParsePolynomial(st.Provenance)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("tuple %v: %w", st.Values, err)
		}
		res.Add(db.Tuple(st.Values), p)
	}
	res.Finish()
	return d, res, env.Consts, nil
}

// Write serializes the instance, result and constants to w.
func Write(w io.Writer, d *db.Instance, res *eval.Result, consts []string) error {
	env := NewEnvelope(d, res, consts)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// Read deserializes an envelope, reconstructing the instance and the
// annotated result. It accepts every format version up to FormatVersion.
func Read(r io.Reader) (*db.Instance, *eval.Result, []string, error) {
	env, err := DecodeEnvelope(r, FormatVersion)
	if err != nil {
		return nil, nil, nil, err
	}
	return env.Decode()
}
