// Package cli implements the provmin command-line interface. The command
// logic lives here, behind injectable readers/writers, so every subcommand
// is unit-tested; cmd/provmin is a thin wrapper.
package cli

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"provmin/internal/datalog"
	"provmin/internal/db"
	"provmin/internal/direct"
	"provmin/internal/eval"
	"provmin/internal/minimize"
	"provmin/internal/query"
	"provmin/internal/semiring"
	"provmin/internal/store"
)

// Env carries the I/O environment of a CLI invocation.
type Env struct {
	Out       io.Writer
	Err       io.Writer
	ReadFile  func(path string) ([]byte, error)
	WriteFile func(path string, data []byte) error
}

// DefaultEnv is the real process environment.
func DefaultEnv() *Env {
	return &Env{
		Out:      os.Stdout,
		Err:      os.Stderr,
		ReadFile: os.ReadFile,
		WriteFile: func(path string, data []byte) error {
			return os.WriteFile(path, data, 0o644)
		},
	}
}

// ExitError signals a non-zero exit with a specific code (e.g. a false
// containment verdict exits 1 without printing an error).
type ExitError struct{ Code int }

func (e *ExitError) Error() string { return fmt.Sprintf("exit status %d", e.Code) }

// Run dispatches a full argument vector (without the program name).
func Run(env *Env, args []string) error {
	if len(args) < 1 {
		usage(env.Err)
		return &ExitError{Code: 2}
	}
	switch args[0] {
	case "eval":
		return cmdEval(env, args[1:])
	case "minprov":
		return cmdMinProv(env, args[1:])
	case "minimize":
		return cmdMinimize(env, args[1:])
	case "core":
		return cmdCore(env, args[1:])
	case "contain":
		return cmdContain(env, args[1:], false)
	case "equiv":
		return cmdContain(env, args[1:], true)
	case "class":
		return cmdClass(env, args[1:])
	case "explain":
		return cmdExplain(env, args[1:])
	case "unfold":
		return cmdUnfold(env, args[1:])
	case "-h", "--help", "help":
		usage(env.Out)
		return nil
	default:
		fmt.Fprintf(env.Err, "unknown subcommand %q\n", args[0])
		usage(env.Err)
		return &ExitError{Code: 2}
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: provmin <subcommand> [flags]

subcommands:
  eval     -q <rules> -db <file>           evaluate a query with provenance
  minprov  -q <rules> [-steps]             compute the p-minimal equivalent
  minimize -q <rules>                      standard minimization baseline
  core     -poly <p> [-db <file> -tuple a,b -consts a,b]
                                           direct core provenance
  contain  -q1 <rules> -q2 <rules>         decide containment
  equiv    -q1 <rules> -q2 <rules>         decide equivalence
  class    -q <rules>                      report the query class
  explain  -q <rules> -db <file> -tuple a,b
                                           list the derivations of a tuple
  unfold   -program <file> -goal <pred> [-minprov]
                                           unfold a non-recursive Datalog view
`)
}

func newFlagSet(env *Env, name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(env.Err)
	return fs
}

func loadUnion(rules string) (*query.UCQ, error) {
	if rules == "" {
		return nil, fmt.Errorf("missing -q")
	}
	return query.ParseUnion(rules)
}

func loadDB(env *Env, path string) (*db.Instance, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -db")
	}
	data, err := env.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return db.ParseInstance(string(data))
}

func cmdEval(env *Env, args []string) error {
	fs := newFlagSet(env, "eval")
	q := fs.String("q", "", "query rules")
	dbPath := fs.String("db", "", "database file")
	expanded := fs.Bool("expanded", false, "print polynomials in expanded form")
	out := fs.String("out", "", "also write a provenance store (JSON) for off-line core computation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, err := loadUnion(*q)
	if err != nil {
		return err
	}
	d, err := loadDB(env, *dbPath)
	if err != nil {
		return err
	}
	res, err := eval.EvalUCQ(u, d)
	if err != nil {
		return err
	}
	for _, t := range res.Tuples() {
		p := t.Prov.String()
		if *expanded {
			p = t.Prov.ExpandedString()
		}
		fmt.Fprintf(env.Out, "%s\t%s\n", t.Tuple, p)
	}
	if *out != "" {
		var buf bytes.Buffer
		if err := store.Write(&buf, d, res, u.Consts()); err != nil {
			return err
		}
		if err := env.WriteFile(*out, buf.Bytes()); err != nil {
			return err
		}
		fmt.Fprintf(env.Err, "provenance store written to %s\n", *out)
	}
	return nil
}

func cmdMinProv(env *Env, args []string) error {
	fs := newFlagSet(env, "minprov")
	q := fs.String("q", "", "query rules")
	steps := fs.Bool("steps", false, "print the intermediate queries of Algorithm 1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, err := loadUnion(*q)
	if err != nil {
		return err
	}
	st := minimize.MinProvSteps(u)
	if *steps {
		fmt.Fprintf(env.Out, "-- step I (%d adjuncts):\n%s\n", len(st.QI.Adjuncts), st.QI)
		fmt.Fprintf(env.Out, "-- step II (%d adjuncts):\n%s\n", len(st.QII.Adjuncts), st.QII)
		fmt.Fprintf(env.Out, "-- step III (%d adjuncts):\n", len(st.QIII.Adjuncts))
	}
	fmt.Fprintln(env.Out, st.QIII)
	return nil
}

func cmdMinimize(env *Env, args []string) error {
	fs := newFlagSet(env, "minimize")
	q := fs.String("q", "", "query rules")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, err := loadUnion(*q)
	if err != nil {
		return err
	}
	fmt.Fprintln(env.Out, minimize.StandardMinimizeUCQ(u))
	return nil
}

func cmdCore(env *Env, args []string) error {
	fs := newFlagSet(env, "core")
	poly := fs.String("poly", "", "provenance polynomial, e.g. \"s1^3 + 3*s1*s2*s3\"")
	dbPath := fs.String("db", "", "database file (enables exact coefficients)")
	tuple := fs.String("tuple", "", "output tuple values, comma separated")
	consts := fs.String("consts", "", "query constants, comma separated")
	result := fs.String("result", "", "provenance store written by eval -out; computes the exact core of every stored tuple")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *result != "" {
		data, err := env.ReadFile(*result)
		if err != nil {
			return err
		}
		d, res, cs, err := store.Read(bytes.NewReader(data))
		if err != nil {
			return err
		}
		core, err := direct.CoreResult(res, d, cs)
		if err != nil {
			return err
		}
		for _, t := range core.Tuples() {
			fmt.Fprintf(env.Out, "%s\t%s\n", t.Tuple, t.Prov)
		}
		return nil
	}
	if *poly == "" {
		return fmt.Errorf("missing -poly (or -result)")
	}
	p, err := semiring.ParsePolynomial(*poly)
	if err != nil {
		return err
	}
	if *dbPath == "" {
		fmt.Fprintln(env.Out, direct.CoreUpToCoefficients(p))
		fmt.Fprintln(env.Err, "note: coefficients normalized to 1; pass -db/-tuple/-consts for exact coefficients")
		return nil
	}
	d, err := loadDB(env, *dbPath)
	if err != nil {
		return err
	}
	var t db.Tuple
	if *tuple != "" {
		t = db.Tuple(strings.Split(*tuple, ","))
	}
	var cs []string
	if *consts != "" {
		cs = strings.Split(*consts, ",")
	}
	core, err := direct.CoreExact(p, d, t, cs)
	if err != nil {
		return err
	}
	fmt.Fprintln(env.Out, core)
	return nil
}

func cmdContain(env *Env, args []string, equiv bool) error {
	name := "contain"
	if equiv {
		name = "equiv"
	}
	fs := newFlagSet(env, name)
	q1 := fs.String("q1", "", "first query")
	q2 := fs.String("q2", "", "second query")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u1, err := loadUnion(*q1)
	if err != nil {
		return fmt.Errorf("-q1: %w", err)
	}
	u2, err := loadUnion(*q2)
	if err != nil {
		return fmt.Errorf("-q2: %w", err)
	}
	var verdict bool
	if equiv {
		verdict = minimize.Equivalent(u1, u2)
	} else {
		verdict = minimize.Contained(u1, u2)
	}
	fmt.Fprintln(env.Out, verdict)
	if !verdict {
		return &ExitError{Code: 1}
	}
	return nil
}

func cmdUnfold(env *Env, args []string) error {
	fs := newFlagSet(env, "unfold")
	programPath := fs.String("program", "", "Datalog program file")
	goal := fs.String("goal", "", "intensional predicate to unfold")
	minprov := fs.Bool("minprov", false, "also apply MinProv to the unfolded query")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *programPath == "" || *goal == "" {
		return fmt.Errorf("missing -program or -goal")
	}
	data, err := env.ReadFile(*programPath)
	if err != nil {
		return err
	}
	p, err := datalog.Parse(string(data))
	if err != nil {
		return err
	}
	u, err := p.Unfold(*goal)
	if err != nil {
		return err
	}
	if *minprov {
		u = minimize.MinProv(u)
	}
	fmt.Fprintln(env.Out, u)
	return nil
}

func cmdClass(env *Env, args []string) error {
	fs := newFlagSet(env, "class")
	q := fs.String("q", "", "query rules")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, err := loadUnion(*q)
	if err != nil {
		return err
	}
	fmt.Fprintln(env.Out, query.ClassOfUnion(u))
	return nil
}

func cmdExplain(env *Env, args []string) error {
	fs := newFlagSet(env, "explain")
	q := fs.String("q", "", "query rules")
	dbPath := fs.String("db", "", "database file")
	tuple := fs.String("tuple", "", "output tuple values, comma separated (empty for boolean queries)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, err := loadUnion(*q)
	if err != nil {
		return err
	}
	d, err := loadDB(env, *dbPath)
	if err != nil {
		return err
	}
	var t db.Tuple
	if *tuple != "" {
		t = db.Tuple(strings.Split(*tuple, ","))
	}
	ds, err := eval.Derivations(u, d, t)
	if err != nil {
		return err
	}
	if len(ds) == 0 {
		fmt.Fprintln(env.Out, "no derivations: the tuple is not in the result")
		return &ExitError{Code: 1}
	}
	for i, dv := range ds {
		adj := u.Adjuncts[dv.AdjunctIdx]
		fmt.Fprintf(env.Out, "derivation %d (adjunct %d: %s):\n", i+1, dv.AdjunctIdx+1, adj)
		for ai, at := range adj.Atoms {
			rel := d.Lookup(at.Rel)
			row := rel.Rows()[dv.Assignment.Rows[ai]]
			fmt.Fprintf(env.Out, "  %s -> %s%s [%s]\n", at, at.Rel, row.Tuple, row.Tag)
		}
		fmt.Fprintf(env.Out, "  monomial: %s\n", dv.Monomial)
	}
	return nil
}
