package cli

import (
	"strings"
	"testing"
)

const programText = `
Mutual(x) :- E(x,y), E(y,x)
Goal(x) :- Mutual(x)
`

func TestUnfoldCommand(t *testing.T) {
	out, _, err := run(t, map[string]string{"p.dl": programText},
		"unfold", "-program", "p.dl", "-goal", "Goal")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Goal(v1) :- E(v1,v2), E(v2,v1)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestUnfoldWithMinProv(t *testing.T) {
	out, _, err := run(t, map[string]string{"p.dl": programText},
		"unfold", "-program", "p.dl", "-goal", "Goal", "-minprov")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "!=") || !strings.Contains(out, "Goal(v1) :- E(v1,v1)") {
		t.Errorf("p-minimal unfolding:\n%s", out)
	}
}

func TestUnfoldCommandErrors(t *testing.T) {
	if _, _, err := run(t, nil, "unfold", "-goal", "G"); err == nil {
		t.Error("missing -program must fail")
	}
	if _, _, err := run(t, map[string]string{"p.dl": programText},
		"unfold", "-program", "p.dl", "-goal", "Nope"); err == nil {
		t.Error("unknown goal must fail")
	}
	rec := "T(x) :- T(x)\n"
	if _, _, err := run(t, map[string]string{"r.dl": rec},
		"unfold", "-program", "r.dl", "-goal", "T"); err == nil {
		t.Error("recursive program must fail")
	}
}
