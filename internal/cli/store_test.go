package cli

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// storeEnv extends testEnv with a writable fake filesystem.
func storeEnv(files map[string]string) (*Env, *bytes.Buffer, map[string][]byte) {
	out := &bytes.Buffer{}
	written := map[string][]byte{}
	env := &Env{
		Out: out,
		Err: &bytes.Buffer{},
		ReadFile: func(path string) ([]byte, error) {
			if content, ok := files[path]; ok {
				return []byte(content), nil
			}
			if data, ok := written[path]; ok {
				return data, nil
			}
			return nil, fmt.Errorf("no such file: %s", path)
		},
		WriteFile: func(path string, data []byte) error {
			written[path] = data
			return nil
		},
	}
	return env, out, written
}

// TestOfflineWorkflowThroughCLI drives the full §1/§5 off-line story via
// the CLI: eval -out stores the annotated result; core -result later
// recovers the exact core provenance without the query.
func TestOfflineWorkflowThroughCLI(t *testing.T) {
	d6 := `R s1 a a
R s2 a b
R s3 b a
R s4 b c
R s5 c a
`
	env, out, written := storeEnv(map[string]string{"d6.db": d6})
	if err := Run(env, []string{"eval", "-q", "ans() :- R(x,y), R(y,z), R(z,x)", "-db", "d6.db", "-out", "run.json"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := written["run.json"]; !ok {
		t.Fatal("store not written")
	}
	if !strings.Contains(out.String(), "3*s1*s2*s3") {
		t.Fatalf("eval output:\n%s", out)
	}

	env2, out2, _ := storeEnv(nil)
	env2.ReadFile = func(string) ([]byte, error) { return written["run.json"], nil }
	if err := Run(env2, []string{"core", "-result", "run.json"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "s1 + 3*s2*s4*s5") {
		t.Fatalf("core output:\n%s", out2)
	}
}

func TestCoreResultFlagErrors(t *testing.T) {
	env, _, _ := storeEnv(map[string]string{"bad.json": "{"})
	if err := Run(env, []string{"core", "-result", "bad.json"}); err == nil {
		t.Error("corrupt store must fail")
	}
	env2, _, _ := storeEnv(nil)
	if err := Run(env2, []string{"core", "-result", "missing.json"}); err == nil {
		t.Error("missing store must fail")
	}
}
