package cli

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

const table2Text = `R s1 a a
R s2 a b
R s3 b a
R s4 b b
`

// testEnv returns an Env with in-memory I/O and a fake filesystem.
func testEnv(files map[string]string) (*Env, *bytes.Buffer, *bytes.Buffer) {
	out, errBuf := &bytes.Buffer{}, &bytes.Buffer{}
	env := &Env{
		Out: out,
		Err: errBuf,
		ReadFile: func(path string) ([]byte, error) {
			if content, ok := files[path]; ok {
				return []byte(content), nil
			}
			return nil, fmt.Errorf("no such file: %s", path)
		},
	}
	return env, out, errBuf
}

func run(t *testing.T, files map[string]string, args ...string) (string, string, error) {
	t.Helper()
	env, out, errBuf := testEnv(files)
	err := Run(env, args)
	return out.String(), errBuf.String(), err
}

func TestEvalCommand(t *testing.T) {
	out, _, err := run(t, map[string]string{"t2.db": table2Text},
		"eval", "-q", "ans(x) :- R(x,y), R(y,x)", "-db", "t2.db")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(a)\ts1^2 + s2*s3") || !strings.Contains(out, "(b)\ts2*s3 + s4^2") {
		t.Errorf("output:\n%s", out)
	}
}

func TestEvalExpanded(t *testing.T) {
	out, _, err := run(t, map[string]string{"t2.db": table2Text},
		"eval", "-q", "ans(x) :- R(x,y), R(y,x)", "-db", "t2.db", "-expanded")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "s1*s1") {
		t.Errorf("expanded output:\n%s", out)
	}
}

func TestMinProvCommand(t *testing.T) {
	out, _, err := run(t, nil, "minprov", "-q", "ans(x) :- R(x,y), R(y,x)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "R(v1,v1)") || !strings.Contains(out, "v1 != v2") {
		t.Errorf("output:\n%s", out)
	}
}

func TestMinProvSteps(t *testing.T) {
	out, _, err := run(t, nil, "minprov", "-q", "ans() :- R(x,y), R(y,z), R(z,x)", "-steps")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "step I (5 adjuncts)") || !strings.Contains(out, "step III (2 adjuncts)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestMinimizeCommand(t *testing.T) {
	out, _, err := run(t, nil, "minimize", "-q", "ans(x) :- R(x,y), R(x,z)")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "R(") != 1 {
		t.Errorf("output:\n%s", out)
	}
}

func TestCoreCommandPolyOnly(t *testing.T) {
	out, errOut, err := run(t, nil, "core", "-poly", "s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "s1 + s2*s4*s5" {
		t.Errorf("output: %q", out)
	}
	if !strings.Contains(errOut, "coefficients normalized") {
		t.Errorf("stderr: %q", errOut)
	}
}

func TestCoreCommandExact(t *testing.T) {
	d6 := `R s1 a a
R s2 a b
R s3 b a
R s4 b c
R s5 c a
`
	out, _, err := run(t, map[string]string{"d6.db": d6},
		"core", "-poly", "s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5", "-db", "d6.db")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "s1 + 3*s2*s4*s5" {
		t.Errorf("output: %q", out)
	}
}

func TestContainAndEquiv(t *testing.T) {
	out, _, err := run(t, nil, "contain",
		"-q1", "ans(x) :- R(x,x)", "-q2", "ans(x) :- R(x,y), R(y,x)")
	if err != nil || strings.TrimSpace(out) != "true" {
		t.Errorf("contain: out=%q err=%v", out, err)
	}
	out, _, err = run(t, nil, "contain",
		"-q1", "ans(x) :- R(x,y), R(y,x)", "-q2", "ans(x) :- R(x,x)")
	var exit *ExitError
	if !errors.As(err, &exit) || exit.Code != 1 || strings.TrimSpace(out) != "false" {
		t.Errorf("negative contain: out=%q err=%v", out, err)
	}
	out, _, err = run(t, nil, "equiv",
		"-q1", "ans(x) :- R(x,y), R(y,x)",
		"-q2", "ans(x) :- R(x,y), R(y,x), x != y; ans(x) :- R(x,x)")
	if err != nil || strings.TrimSpace(out) != "true" {
		t.Errorf("equiv: out=%q err=%v", out, err)
	}
}

func TestClassCommand(t *testing.T) {
	out, _, err := run(t, nil, "class", "-q", "ans(x) :- R(x,y), x != y")
	if err != nil || strings.TrimSpace(out) != "cCQ!=" {
		t.Errorf("class: out=%q err=%v", out, err)
	}
}

func TestExplainCommand(t *testing.T) {
	out, _, err := run(t, map[string]string{"t2.db": table2Text},
		"explain", "-q", "ans(x) :- R(x,y), R(y,x)", "-db", "t2.db", "-tuple", "a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "derivation 1") || !strings.Contains(out, "monomial: s1^2") {
		t.Errorf("output:\n%s", out)
	}
}

func TestExplainAbsentTuple(t *testing.T) {
	out, _, err := run(t, map[string]string{"t2.db": table2Text},
		"explain", "-q", "ans(x) :- R(x,x)", "-db", "t2.db", "-tuple", "zzz")
	var exit *ExitError
	if !errors.As(err, &exit) || exit.Code != 1 {
		t.Errorf("err = %v", err)
	}
	if !strings.Contains(out, "no derivations") {
		t.Errorf("output:\n%s", out)
	}
}

func TestUsageAndErrors(t *testing.T) {
	_, errOut, err := run(t, nil)
	var exit *ExitError
	if !errors.As(err, &exit) || exit.Code != 2 {
		t.Errorf("empty args: err = %v", err)
	}
	if !strings.Contains(errOut, "usage:") {
		t.Errorf("stderr: %q", errOut)
	}
	_, errOut, err = run(t, nil, "bogus")
	if !errors.As(err, &exit) || exit.Code != 2 || !strings.Contains(errOut, "unknown subcommand") {
		t.Errorf("bogus subcommand: err=%v stderr=%q", err, errOut)
	}
	out, _, err := run(t, nil, "help")
	if err != nil || !strings.Contains(out, "usage:") {
		t.Errorf("help: out=%q err=%v", out, err)
	}
}

func TestMissingFlags(t *testing.T) {
	if _, _, err := run(t, nil, "eval", "-db", "x.db"); err == nil {
		t.Error("missing -q must fail")
	}
	if _, _, err := run(t, nil, "eval", "-q", "ans(x) :- R(x,x)"); err == nil {
		t.Error("missing -db must fail")
	}
	if _, _, err := run(t, nil, "core"); err == nil {
		t.Error("missing -poly must fail")
	}
	if _, _, err := run(t, map[string]string{}, "eval", "-q", "ans(x) :- R(x,x)", "-db", "nope.db"); err == nil {
		t.Error("unreadable db must fail")
	}
	if _, _, err := run(t, nil, "eval", "-q", "not a query", "-db", "x.db"); err == nil {
		t.Error("bad query must fail")
	}
}
