package minimize

import (
	"fmt"

	"provmin/internal/hom"
	"provmin/internal/query"
)

// IsSubQuery reports whether sub is a sub-query of q: same head and its
// relational atoms form a sub-multiset of q's (the shape of the
// DP-complete decision problem of Corollary 3.10, following Fagin–Kolaitis–
// Popa's formulation for standard minimization).
func IsSubQuery(sub, q *query.CQ) bool {
	if !sub.Head.Equal(q.Head) {
		return false
	}
	remaining := make([]query.Atom, len(q.Atoms))
	copy(remaining, q.Atoms)
	for _, a := range sub.Atoms {
		found := -1
		for i, b := range remaining {
			if a.Equal(b) {
				found = i
				break
			}
		}
		if found < 0 {
			return false
		}
		remaining = append(remaining[:found], remaining[found+1:]...)
	}
	// Disequalities of the sub-query must come from q as well.
	for _, d := range sub.Diseqs {
		if !q.HasDiseq(d.Left, d.Right) {
			return false
		}
	}
	return true
}

// IsPMinimalEquivalentCQ decides the PROVENANCE-MINIMIZATION decision
// problem for CQ (Cor. 3.10): given a disequality-free query q and a
// sub-query sub of q, is sub the p-minimal equivalent of q within CQ? By
// Theorem 3.9 this holds iff sub ≡ q and sub is standard-minimal. The
// problem is DP-complete; this procedure is the natural NP∧coNP check.
func IsPMinimalEquivalentCQ(q, sub *query.CQ) (bool, error) {
	if q.HasDiseqs() || sub.HasDiseqs() {
		return false, fmt.Errorf("the CQ decision problem requires disequality-free queries")
	}
	if !IsSubQuery(sub, q) {
		return false, fmt.Errorf("second query is not a sub-query of the first")
	}
	// NP part: sub ≡ q. Since sub ⊆ ... removal of atoms relaxes, q ⊆ sub
	// always; equivalence needs sub ⊆ q, i.e. a homomorphism q -> sub.
	if !hom.Exists(q, sub) {
		return false, nil
	}
	// coNP part: no proper sub-query of sub is equivalent to it.
	minimal, err := IsStandardMinimalCQ(sub)
	if err != nil {
		return false, err
	}
	return minimal, nil
}

// IsPMinimalCCQ decides p-minimality for a complete query (PTIME, by
// Lemma 3.13: minimal iff no duplicated relational atoms).
func IsPMinimalCCQ(q *query.CQ) (bool, error) {
	if !q.IsComplete() {
		return false, fmt.Errorf("IsPMinimalCCQ requires a complete query")
	}
	return !q.HasDuplicateAtoms(), nil
}
