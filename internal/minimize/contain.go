package minimize

import (
	"provmin/internal/hom"
	"provmin/internal/query"
)

// Contained decides u1 ⊆ u2 for arbitrary UCQ≠ queries. The procedure
// rewrites every adjunct of u1 into completions with respect to the full
// constant set of both queries; each completion is then complete w.r.t.
// Const(u2), so by Lemma 4.9 it is contained in u2 iff it is contained in
// some adjunct of u2, which by Theorem 3.1 holds iff that adjunct maps
// homomorphically into the completion.
func Contained(u1, u2 *query.UCQ) bool {
	all := unionConsts(u1.Consts(), u2.Consts())
	for _, q := range u1.Adjuncts {
		for _, qc := range PossibleCompletions(q, all) {
			if !completionContainedIn(qc, u2) {
				return false
			}
		}
	}
	return true
}

func completionContainedIn(qc *query.CQ, u *query.UCQ) bool {
	for _, q2 := range u.Adjuncts {
		if hom.Exists(q2, qc) {
			return true
		}
	}
	return false
}

// Equivalent decides u1 ≡ u2 (Def. 2.8) for UCQ≠ queries.
func Equivalent(u1, u2 *query.UCQ) bool {
	return Contained(u1, u2) && Contained(u2, u1)
}

// ContainedCQ decides q1 ⊆ q2 for arbitrary CQ≠ queries (wrapping the
// union-level procedure).
func ContainedCQ(q1, q2 *query.CQ) bool {
	return Contained(query.Single(q1), query.Single(q2))
}

// EquivalentCQ decides q1 ≡ q2 for arbitrary CQ≠ queries.
func EquivalentCQ(q1, q2 *query.CQ) bool {
	return ContainedCQ(q1, q2) && ContainedCQ(q2, q1)
}
