package minimize

import (
	"math/rand"
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/query"
)

func TestExample32ContainmentWithoutHomomorphism(t *testing.T) {
	// Q ⊆ Q' holds although no homomorphism Q' -> Q exists.
	q := query.MustParse("ans() :- R(x,y), R(y,z), x != z")
	qp := query.MustParse("ans() :- R(x,y), x != y")
	if !ContainedCQ(q, qp) {
		t.Error("Q ⊆ Q' (Example 3.2) should hold")
	}
	if ContainedCQ(qp, q) {
		t.Error("Q' ⊄ Q")
	}
}

func TestExample29ContainmentViaGeneralProcedure(t *testing.T) {
	q2 := query.MustParse("ans(x) :- R(x,x)")
	qconj := query.MustParse("ans(x) :- R(x,y), R(y,x)")
	if !ContainedCQ(q2, qconj) {
		t.Error("Q2 ⊆ Qconj")
	}
	if ContainedCQ(qconj, q2) {
		t.Error("Qconj ⊄ Q2")
	}
}

func TestFig1Equivalence(t *testing.T) {
	qunion := query.MustParseUnion("ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)")
	qconj := query.MustParseUnion("ans(x) :- R(x,y), R(y,x)")
	if !Equivalent(qunion, qconj) {
		t.Error("Qunion ≡ Qconj (Example 2.18)")
	}
}

func TestFig2Equivalence(t *testing.T) {
	qNoPmin := query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x2")
	qAlt := query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x3")
	qAlt2 := query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x4")
	qAlt3 := query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x5")
	for _, other := range []*query.CQ{qAlt, qAlt2, qAlt3} {
		if !EquivalentCQ(qNoPmin, other) {
			t.Errorf("QnoPmin ≡ %v should hold (proof of Lemma 3.7)", other)
		}
	}
}

func TestConstantsBreakEquivalence(t *testing.T) {
	a := query.MustParse("ans(x) :- R(x,'a')")
	b := query.MustParse("ans(x) :- R(x,'b')")
	if Equivalent(query.Single(a), query.Single(b)) {
		t.Error("different constants are not equivalent")
	}
	if !EquivalentCQ(a, a.Clone()) {
		t.Error("self equivalence")
	}
}

func TestDiseqConstantInteraction(t *testing.T) {
	// ans(x) :- R(x), x != 'a'  vs  ans(x) :- R(x): strict containment.
	a := query.MustParse("ans(x) :- R(x), x != 'a'")
	b := query.MustParse("ans(x) :- R(x)")
	if !ContainedCQ(a, b) {
		t.Error("restricted query is contained in relaxation")
	}
	if ContainedCQ(b, a) {
		t.Error("relaxation is not contained in restriction")
	}
}

func TestUnionContainment(t *testing.T) {
	u1 := query.MustParseUnion("ans(x) :- R(x,x)")
	u2 := query.MustParseUnion("ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)")
	if !Contained(u1, u2) {
		t.Error("R(x,x) adjunct is contained in the union")
	}
	if Contained(u2, u1) {
		t.Error("the union is not contained in R(x,x)")
	}
}

// TestContainmentAgreesWithEvaluation cross-validates the decision procedure
// against brute-force evaluation over random small instances: if Q1 ⊆ Q2 is
// claimed, no instance may witness a violating tuple; if containment is
// denied, *some* random instance usually witnesses it (not guaranteed, so
// only the sound direction is asserted).
func TestContainmentAgreesWithEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vars := []string{"x", "y", "z"}
	genCQ := func() *query.CQ {
		n := 1 + rng.Intn(2)
		atoms := make([]query.Atom, n)
		for i := range atoms {
			atoms[i] = query.NewAtom("R",
				query.V(vars[rng.Intn(len(vars))]), query.V(vars[rng.Intn(len(vars))]))
		}
		var ds []query.Diseq
		if rng.Intn(2) == 0 {
			a, b := vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))]
			if a != b && usedIn(atoms, a) && usedIn(atoms, b) {
				ds = append(ds, query.NewDiseq(query.V(a), query.V(b)))
			}
		}
		head := query.NewAtom("ans", atoms[0].Args[0])
		return query.NewCQ(head, atoms, ds)
	}
	for i := 0; i < 120; i++ {
		q1, q2 := genCQ(), genCQ()
		claim := ContainedCQ(q1, q2)
		for seed := int64(0); seed < 3; seed++ {
			d := db.NewInstance()
			db.NewGenerator(seed*31+int64(i)).RandomGraph(d, "R", 3, 5)
			r1, err := eval.EvalCQ(q1, d)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := eval.EvalCQ(q2, d)
			if err != nil {
				t.Fatal(err)
			}
			for _, ot := range r1.Tuples() {
				if claim && !r2.Contains(ot.Tuple) {
					t.Fatalf("claimed %v ⊆ %v but tuple %v is a counterexample on\n%s",
						q1, q2, ot.Tuple, d)
				}
			}
		}
	}
}

func usedIn(atoms []query.Atom, v string) bool {
	for _, at := range atoms {
		for _, a := range at.Args {
			if a == query.V(v) {
				return true
			}
		}
	}
	return false
}
