package minimize

import (
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/hom"
	"provmin/internal/order"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

var (
	qHat   = query.MustParse("ans() :- R(x,y), R(y,z), R(z,x)")
	qConj  = query.MustParse("ans(x) :- R(x,y), R(y,x)")
	qUnion = query.MustParseUnion("ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)")
	qMin1  = query.MustParse("ans() :- R(v1,v1)")
	qHat5  = query.MustParse("ans() :- R(v1,v2), R(v2,v3), R(v3,v1), v1 != v2, v2 != v3, v1 != v3")
)

func table2() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "b")
	return d
}

func tableD6() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "c")
	d.MustAdd("R", "s5", "c", "a")
	return d
}

func TestExample47MinProvStepByStep(t *testing.T) {
	st := MinProvSteps(query.Single(qHat))
	if len(st.QI.Adjuncts) != 5 {
		t.Fatalf("Q̂I has %d adjuncts, want 5", len(st.QI.Adjuncts))
	}
	if len(st.QII.Adjuncts) != 5 {
		t.Fatalf("Q̂II has %d adjuncts, want 5", len(st.QII.Adjuncts))
	}
	// Step II replaces Q̂1 by Q̂min1 (single atom); exactly one adjunct of
	// QII must be isomorphic to Q̂min1.
	found := 0
	for _, a := range st.QII.Adjuncts {
		if hom.Isomorphic(a, qMin1) {
			found++
		}
	}
	if found != 1 {
		t.Errorf("Q̂II should contain Q̂min1 exactly once, found %d", found)
	}
	// Step III: output is Q̂min1 ∪ Q̂5.
	if len(st.QIII.Adjuncts) != 2 {
		t.Fatalf("Q̂III has %d adjuncts, want 2:\n%v", len(st.QIII.Adjuncts), st.QIII)
	}
	for _, w := range []*query.CQ{qMin1, qHat5} {
		ok := false
		for _, a := range st.QIII.Adjuncts {
			if hom.Isomorphic(a, w) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("Q̂III missing adjunct isomorphic to %v", w)
		}
	}
}

func TestExample52And54And58Provenance(t *testing.T) {
	// The three provenance polynomials of Section 5's running example.
	d := tableD6()
	st := MinProvSteps(query.Single(qHat))
	pI, err := eval.Provenance(st.QI, d, db.Tuple{})
	if err != nil {
		t.Fatal(err)
	}
	// Example 5.2: s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5 (same as Q̂ itself).
	if want := semiring.MustParsePolynomial("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5"); !pI.Equal(want) {
		t.Errorf("pI = %v, want %v", pI, want)
	}
	pII, err := eval.Provenance(st.QII, d, db.Tuple{})
	if err != nil {
		t.Fatal(err)
	}
	// Example 5.4: s1 + 3*s1*s2*s3 + 3*s2*s4*s5.
	if want := semiring.MustParsePolynomial("s1 + 3*s1*s2*s3 + 3*s2*s4*s5"); !pII.Equal(want) {
		t.Errorf("pII = %v, want %v", pII, want)
	}
	pIII, err := eval.Provenance(st.QIII, d, db.Tuple{})
	if err != nil {
		t.Fatal(err)
	}
	// Example 5.8: s1 + 3*s2*s4*s5 (coefficient 3 = automorphisms of Q̂5).
	if want := semiring.MustParsePolynomial("s1 + 3*s2*s4*s5"); !pIII.Equal(want) {
		t.Errorf("pIII = %v, want %v", pIII, want)
	}
}

func TestTheorem311MinProvOfQconjMatchesQunion(t *testing.T) {
	out := MinProvCQ(qConj)
	if !Equivalent(out, query.Single(qConj)) {
		t.Fatal("MinProv output must be equivalent to the input")
	}
	if !Equivalent(out, qUnion) {
		t.Fatal("MinProv(Qconj) must be equivalent to Qunion")
	}
	// On Table 2 the output realizes exactly Qunion's provenance.
	rOut, err := eval.EvalUCQ(out, table2())
	if err != nil {
		t.Fatal(err)
	}
	rUnion, err := eval.EvalUCQ(qUnion, table2())
	if err != nil {
		t.Fatal(err)
	}
	if !rOut.SameAnnotated(rUnion) {
		t.Errorf("MinProv(Qconj) provenance:\n%s\nwant Qunion's:\n%s", rOut, rUnion)
	}
	// And it is strictly terser than Qconj's own provenance.
	rel, err := order.CompareOnDB(out, query.Single(qConj), table2())
	if err != nil {
		t.Fatal(err)
	}
	if rel != order.Less {
		t.Errorf("MinProv(Qconj) vs Qconj on Table 2 = %v, want <", rel)
	}
}

func TestMinProvEquivalentOnSuite(t *testing.T) {
	suite := []string{
		"ans(x) :- R(x,y), R(y,x)",
		"ans() :- R(x,y), R(y,z), R(z,x)",
		"ans(x,y) :- R(x,y), x != 'a', x != y",
		"ans(x) :- R(x,y), S(y,'c')",
		"ans() :- R(x,y), R(y,z), x != z",
		"ans(x) :- R(x,x)",
	}
	for _, s := range suite {
		q := query.MustParse(s)
		out := MinProvCQ(q)
		if !Equivalent(out, query.Single(q)) {
			t.Errorf("MinProv changed semantics of %v:\n%v", q, out)
		}
	}
}

func TestMinProvProvenanceNeverLarger(t *testing.T) {
	// On random instances, the output's provenance must be pointwise ≤ the
	// input's (it is the core provenance).
	suite := []string{
		"ans(x) :- R(x,y), R(y,x)",
		"ans() :- R(x,y), R(y,z), R(z,x)",
		"ans() :- R(x,y), R(y,z), x != z",
	}
	for seed := int64(0); seed < 4; seed++ {
		d := db.NewInstance()
		db.NewGenerator(seed).RandomGraph(d, "R", 4, 8)
		for _, s := range suite {
			q := query.MustParse(s)
			out := MinProvCQ(q)
			rel, err := order.CompareOnDB(out, query.Single(q), d)
			if err != nil {
				t.Fatal(err)
			}
			if rel != order.Less && rel != order.Equal {
				t.Errorf("seed %d: MinProv(%v) vs input = %v, want ≤", seed, q, rel)
			}
		}
	}
}

func TestMinProvIdempotentProvenance(t *testing.T) {
	// Running MinProv twice must not change the realized provenance.
	q := query.Single(qHat)
	once := MinProv(q)
	twice := MinProv(once)
	d := tableD6()
	r1, err := eval.EvalUCQ(once, d)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eval.EvalUCQ(twice, d)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.SameAnnotated(r2) {
		t.Errorf("MinProv not provenance-idempotent:\n%s\nvs\n%s", r1, r2)
	}
}

func TestMinProvOnQnoPminBeatsBothAlternatives(t *testing.T) {
	// Theorem 3.5: no p-minimal query exists in CQ≠ for QnoPmin, but
	// MinProv finds one in UCQ≠ that is ≤ both QnoPmin and Qalt on the
	// paper's witness databases D and D'.
	qNoPmin := query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x2")
	qAlt := query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x3")
	if !EquivalentCQ(qNoPmin, qAlt) {
		t.Fatal("QnoPmin ≡ Qalt (paper claim)")
	}
	out := MinProvCQ(qNoPmin)
	if !Equivalent(out, query.Single(qNoPmin)) {
		t.Fatal("MinProv output must stay equivalent")
	}
	dD := db.NewInstance()
	dD.MustAdd("R", "s1", "a", "b")
	dD.MustAdd("R", "s2", "b", "a")
	dD.MustAdd("R", "s3", "a", "a")
	dD.MustAdd("S", "s0", "a")
	dDp := db.NewInstance()
	dDp.MustAdd("R", "t1", "a", "b")
	dDp.MustAdd("R", "t2", "b", "c")
	dDp.MustAdd("R", "t3", "c", "a")
	dDp.MustAdd("R", "t4", "a", "a")
	dDp.MustAdd("S", "s0", "a")
	for _, cand := range []*query.UCQ{query.Single(qNoPmin), query.Single(qAlt)} {
		for _, d := range []*db.Instance{dD, dDp} {
			rel, err := order.CompareOnDB(out, cand, d)
			if err != nil {
				t.Fatal(err)
			}
			if rel != order.Less && rel != order.Equal {
				t.Errorf("MinProv output vs candidate = %v, want ≤", rel)
			}
		}
	}
}

func TestMinProvQnFamilyGrowth(t *testing.T) {
	// Theorem 4.10's family: Qn = R1(x1,y1),R1(y1,x1),...,Rn(xn,yn),Rn(yn,xn).
	// The p-minimal equivalent must have at least 2^n adjuncts.
	for n := 1; n <= 2; n++ {
		q := qnQuery(n)
		out := MinProvCQ(q)
		min := 1 << n
		if len(out.Adjuncts) < min {
			t.Errorf("MinProv(Q_%d) has %d adjuncts, want >= %d", n, len(out.Adjuncts), min)
		}
		if !Equivalent(out, query.Single(q)) {
			t.Errorf("MinProv(Q_%d) not equivalent", n)
		}
	}
}

// qnQuery builds the Theorem 4.10 query Q_n.
func qnQuery(n int) *query.CQ {
	var atoms []query.Atom
	for i := 1; i <= n; i++ {
		rel := "R" + string(rune('0'+i))
		x := query.V("x" + string(rune('0'+i)))
		y := query.V("y" + string(rune('0'+i)))
		atoms = append(atoms, query.NewAtom(rel, x, y), query.NewAtom(rel, y, x))
	}
	return query.NewCQ(query.NewAtom("ans"), atoms, nil)
}

func TestMinProvSingleCompleteQueryUnchanged(t *testing.T) {
	// A complete, duplicate-free single adjunct: MinProv output is
	// equivalent with the same realized provenance (Theorem 3.12).
	q := query.MustParse("ans(x) :- R(x,y), x != y")
	out := MinProvCQ(q)
	d := table2()
	rIn, err := eval.EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	rOut, err := eval.EvalUCQ(out, d)
	if err != nil {
		t.Fatal(err)
	}
	if !rIn.SameAnnotated(rOut) {
		t.Errorf("complete query provenance changed:\n%s\nvs\n%s", rIn, rOut)
	}
}
