package minimize

import (
	"testing"

	"provmin/internal/hom"
	"provmin/internal/query"
)

func TestStandardMinimizeCQRemovesRedundantAtoms(t *testing.T) {
	q := query.MustParse("ans(x) :- R(x,y), R(x,z)")
	m, err := StandardMinimizeCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 1 {
		t.Errorf("minimized = %v, want one atom", m)
	}
	eq, err := hom.EquivalentCQ(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("minimization must preserve equivalence")
	}
}

func TestStandardMinimizeCQKeepsCore(t *testing.T) {
	// Qconj is already minimal: no surjective self-embedding into a proper
	// sub-query exists (Theorem 3.11's first claim).
	q := query.MustParse("ans(x) :- R(x,y), R(y,x)")
	m, err := StandardMinimizeCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 2 {
		t.Errorf("Qconj should be minimal, got %v", m)
	}
	min, err := IsStandardMinimalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if !min {
		t.Error("IsStandardMinimalCQ(Qconj) = false")
	}
}

func TestStandardMinimizeCQChain(t *testing.T) {
	// Boolean chain with a redundant longer path folds to one atom.
	q := query.MustParse("ans() :- R(x,y), R(u,v), R(v,w)")
	m, err := StandardMinimizeCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 2 {
		// R(u,v),R(v,w) requires a 2-path; R(x,y) maps into it.
		t.Errorf("minimized = %v, want the 2-path", m)
	}
}

func TestStandardMinimizeCQRejectsDiseqs(t *testing.T) {
	q := query.MustParse("ans() :- R(x,y), x != y")
	if _, err := StandardMinimizeCQ(q); err == nil {
		t.Error("StandardMinimizeCQ must reject CQ≠ queries")
	}
}

func TestMinimizeCCQ(t *testing.T) {
	q := query.MustParse("ans() :- R(v1,v1), R(v1,v1), R(v1,v1)")
	m, err := MinimizeCCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 1 {
		t.Errorf("MinimizeCCQ = %v", m)
	}
	incomplete := query.MustParse("ans() :- R(x,y), R(y,z), x != z")
	if _, err := MinimizeCCQ(incomplete); err == nil {
		t.Error("MinimizeCCQ must reject incomplete queries")
	}
}

func TestLemma313DedupCharacterizesMinimality(t *testing.T) {
	// A complete query is minimal iff it has no duplicated atoms: check the
	// "only if" side by verifying the deduped query is equivalent.
	q := query.MustParse("ans(x) :- R(x,y), R(x,y), x != y")
	m, err := MinimizeCCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 1 {
		t.Fatalf("MinimizeCCQ = %v", m)
	}
	if !EquivalentCQ(q, m) {
		t.Error("deduped complete query must be equivalent")
	}
}

func TestStandardMinimizeCQNeq(t *testing.T) {
	// Duplicate atom with a disequality present.
	q := query.MustParse("ans(x) :- R(x,y), R(x,y), x != y")
	m := StandardMinimizeCQNeq(q)
	if len(m.Atoms) != 1 {
		t.Errorf("minimized = %v", m)
	}
	if !EquivalentCQ(q, m) {
		t.Error("equivalence lost")
	}
	// Example 3.2's Q: both atoms are needed (removal changes semantics).
	q2 := query.MustParse("ans() :- R(x,y), R(y,z), x != z")
	m2 := StandardMinimizeCQNeq(q2)
	if len(m2.Atoms) != 2 {
		t.Errorf("Q from Example 3.2 is minimal, got %v", m2)
	}
}

func TestStandardMinimizeUCQ(t *testing.T) {
	// Q2 ⊆ Qconj: the union collapses to Qconj alone.
	u := query.MustParseUnion("ans(x) :- R(x,y), R(y,x)\nans(x) :- R(x,x)")
	m := StandardMinimizeUCQ(u)
	if len(m.Adjuncts) != 1 {
		t.Fatalf("minimized union = %v", m)
	}
	if !hom.Isomorphic(m.Adjuncts[0], query.MustParse("ans(x) :- R(x,y), R(y,x)")) {
		t.Errorf("kept adjunct = %v, want Qconj", m.Adjuncts[0])
	}
	if !Equivalent(m, u) {
		t.Error("union minimization must preserve equivalence")
	}
}

func TestStandardMinimizeUCQKeepsIncomparableAdjuncts(t *testing.T) {
	u := query.MustParseUnion("ans(x) :- R(x,x)\nans(x) :- S(x)")
	m := StandardMinimizeUCQ(u)
	if len(m.Adjuncts) != 2 {
		t.Errorf("incomparable adjuncts must both survive: %v", m)
	}
}

func TestStandardMinimizeUCQMergesEquivalentAdjuncts(t *testing.T) {
	u := query.MustParseUnion("ans(x) :- R(x,y)\nans(u) :- R(u,v), R(u,w)")
	m := StandardMinimizeUCQ(u)
	if len(m.Adjuncts) != 1 {
		t.Errorf("equivalent adjuncts must merge: %v", m)
	}
}

func TestRemoveRedundantAdjunctsMutualContainment(t *testing.T) {
	a := query.MustParse("ans(x) :- R(x,y)")
	b := query.MustParse("ans(u) :- R(u,v)")
	out := removeRedundantAdjuncts([]*query.CQ{a, b}, func(p, q *query.CQ) bool {
		return ContainedCQ(p, q)
	})
	if len(out) != 1 || out[0] != a {
		t.Errorf("mutual containment should keep the first adjunct: %v", out)
	}
}
