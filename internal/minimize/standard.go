package minimize

import (
	"fmt"

	"provmin/internal/hom"
	"provmin/internal/query"
)

// StandardMinimizeCQ computes the Chandra–Merlin minimal equivalent (the
// core) of a disequality-free conjunctive query: atoms are removed while a
// homomorphism from the original into the reduced query exists. By
// Theorem 3.9 the result is also the p-minimal equivalent of q within CQ.
func StandardMinimizeCQ(q *query.CQ) (*query.CQ, error) {
	if q.HasDiseqs() {
		return nil, fmt.Errorf("StandardMinimizeCQ requires a disequality-free query; got %v", q)
	}
	cur := q.Clone()
	for {
		reduced := false
		for i := range cur.Atoms {
			cand := cur.RemoveAtom(i)
			if len(cand.Atoms) == 0 || cand.Validate() != nil {
				continue
			}
			// cur ⊆ cand always (fewer conjuncts); equivalence needs
			// cand ⊆ cur, i.e. a homomorphism cur -> cand.
			if hom.Exists(cur, cand) {
				cur = cand
				reduced = true
				break
			}
		}
		if !reduced {
			return cur, nil
		}
	}
}

// MinimizeCCQ computes the minimal equivalent of a complete query in PTIME
// by removing duplicated relational atoms (Lemma 3.13). By Theorem 3.12 the
// result is both standard-minimal and p-minimal.
func MinimizeCCQ(q *query.CQ) (*query.CQ, error) {
	if !q.IsComplete() {
		return nil, fmt.Errorf("MinimizeCCQ requires a complete query; got %v", q)
	}
	return q.DedupAtoms(), nil
}

// StandardMinimizeCQNeq computes a standard-minimal (fewest relational
// atoms) equivalent of a conjunctive query with disequalities, following
// Klug: atoms are removed as long as the reduced query remains equivalent,
// decided with the general UCQ≠ equivalence procedure. Worst-case
// exponential, as is unavoidable.
func StandardMinimizeCQNeq(q *query.CQ) *query.CQ {
	cur := q.Clone()
	for {
		reduced := false
		for i := range cur.Atoms {
			cand := cur.RemoveAtom(i)
			if len(cand.Atoms) == 0 || cand.Validate() != nil {
				continue
			}
			if EquivalentCQ(cand, cur) {
				cur = cand
				reduced = true
				break
			}
		}
		if !reduced {
			return cur
		}
	}
}

// StandardMinimizeUCQ computes a standard-minimal equivalent of a union in
// the Sagiv–Yannakakis sense: every adjunct is minimized, and adjuncts
// contained in another adjunct (or, more precisely, in the rest of the
// union) are removed.
func StandardMinimizeUCQ(u *query.UCQ) *query.UCQ {
	adjs := make([]*query.CQ, len(u.Adjuncts))
	for i, q := range u.Adjuncts {
		switch {
		case !q.HasDiseqs():
			m, err := StandardMinimizeCQ(q)
			if err != nil {
				// Unreachable: q has no disequalities by the case guard.
				panic(err)
			}
			adjs[i] = m
		case q.IsComplete():
			m, err := MinimizeCCQ(q)
			if err != nil {
				panic(err)
			}
			adjs[i] = m
		default:
			adjs[i] = StandardMinimizeCQNeq(q)
		}
	}
	alive := removeRedundantAdjuncts(adjs, func(a, b *query.CQ) bool {
		return ContainedCQ(a, b)
	})
	return &query.UCQ{Adjuncts: alive}
}

// removeRedundantAdjuncts drops every adjunct contained in another adjunct,
// keeping exactly one representative of each class of mutually contained
// (equivalent) adjuncts — the first in input order.
func removeRedundantAdjuncts(adjs []*query.CQ, contained func(a, b *query.CQ) bool) []*query.CQ {
	n := len(adjs)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for j := 0; j < n; j++ {
		if !alive[j] {
			continue
		}
		for i := 0; i < n; i++ {
			if i == j || !alive[i] {
				continue
			}
			if !contained(adjs[j], adjs[i]) {
				continue
			}
			if contained(adjs[i], adjs[j]) {
				// Mutually contained: keep the earlier one.
				if i < j {
					alive[j] = false
					break
				}
				continue
			}
			alive[j] = false
			break
		}
	}
	var out []*query.CQ
	for i, a := range adjs {
		if alive[i] {
			out = append(out, a)
		}
	}
	return out
}

// IsStandardMinimalCQ reports whether no proper sub-query of q (removal of
// relational atoms) is equivalent to q; for CQ this characterizes the
// Chandra–Merlin core.
func IsStandardMinimalCQ(q *query.CQ) (bool, error) {
	if q.HasDiseqs() {
		return false, fmt.Errorf("IsStandardMinimalCQ requires a disequality-free query")
	}
	m, err := StandardMinimizeCQ(q)
	if err != nil {
		return false, err
	}
	return len(m.Atoms) == len(q.Atoms), nil
}
