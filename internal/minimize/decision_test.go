package minimize

import (
	"testing"

	"provmin/internal/eval"
	"provmin/internal/query"
	"provmin/internal/workload"
)

func TestIsSubQuery(t *testing.T) {
	q := query.MustParse("ans(x) :- R(x,y), R(x,z), S(x)")
	sub := query.MustParse("ans(x) :- R(x,y), S(x)")
	if !IsSubQuery(sub, q) {
		t.Error("sub should be a sub-query")
	}
	if IsSubQuery(q, sub) {
		t.Error("superset is not a sub-query")
	}
	otherHead := query.MustParse("ans(y) :- R(x,y), S(y)")
	if IsSubQuery(otherHead, q) {
		t.Error("different heads are not sub-queries")
	}
	// Multiset semantics: q has one S atom, sub cannot use it twice.
	dup := query.MustParse("ans(x) :- S(x), S(x)")
	if IsSubQuery(dup, q) {
		t.Error("sub-multiset condition violated")
	}
}

func TestIsSubQueryDiseqs(t *testing.T) {
	q := query.MustParse("ans() :- R(x,y), R(y,z), x != y")
	okSub := query.MustParse("ans() :- R(x,y), x != y")
	if !IsSubQuery(okSub, q) {
		t.Error("diseq inherited from q should be allowed")
	}
	badSub := query.MustParse("ans() :- R(x,y), R(y,z), x != z")
	if IsSubQuery(badSub, q) {
		t.Error("new diseq must disqualify the sub-query")
	}
}

func TestIsPMinimalEquivalentCQ(t *testing.T) {
	q := query.MustParse("ans(x) :- R(x,y), R(x,z)")
	yes := query.MustParse("ans(x) :- R(x,y)")
	got, err := IsPMinimalEquivalentCQ(q, yes)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("R(x,y) is the p-minimal equivalent (Theorem 3.9)")
	}
	// The full query itself is not minimal.
	got, err = IsPMinimalEquivalentCQ(q, q)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("a reducible query is not its own p-minimal equivalent")
	}
}

func TestIsPMinimalEquivalentCQNotEquivalent(t *testing.T) {
	q := query.MustParse("ans(x) :- R(x,y), S(x)")
	sub := query.MustParse("ans(x) :- S(x)")
	got, err := IsPMinimalEquivalentCQ(q, sub)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("dropping R changes the query; not equivalent")
	}
}

func TestIsPMinimalEquivalentCQErrors(t *testing.T) {
	withDiseq := query.MustParse("ans() :- R(x,y), x != y")
	if _, err := IsPMinimalEquivalentCQ(withDiseq, withDiseq); err == nil {
		t.Error("disequalities must be rejected")
	}
	q := query.MustParse("ans(x) :- R(x,y)")
	notSub := query.MustParse("ans(x) :- S(x)")
	if _, err := IsPMinimalEquivalentCQ(q, notSub); err == nil {
		t.Error("non-sub-query must be rejected")
	}
}

func TestIsPMinimalCCQ(t *testing.T) {
	dup := query.MustParse("ans() :- R(v1,v1), R(v1,v1)")
	got, err := IsPMinimalCCQ(dup)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("duplicated atoms mean not minimal")
	}
	min := query.MustParse("ans(x) :- R(x,y), x != y")
	got, err = IsPMinimalCCQ(min)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("duplicate-free complete query is minimal")
	}
	incomplete := query.MustParse("ans() :- R(x,y), R(y,z), x != z")
	if _, err := IsPMinimalCCQ(incomplete); err == nil {
		t.Error("incomplete query must be rejected")
	}
}

// TestLemma45AdjunctAssignmentsDisjoint verifies Lemma 4.5 on the Figure 3
// example: because Can keeps Q's atom order in every completion, an
// assignment is a vector of rows per atom position, and no vector satisfies
// two different adjuncts.
func TestLemma45AdjunctAssignmentsDisjoint(t *testing.T) {
	can := Can(workload.QHat, nil)
	d := workload.Table6()
	seen := map[string]int{} // row-vector key -> adjunct index
	for ai, adj := range can.Adjuncts {
		err := eval.ForEachAssignment(adj, d, eval.Options{}, func(a eval.Assignment) error {
			key := ""
			for _, r := range a.Rows {
				key += string(rune('0' + r))
			}
			if prev, ok := seen[key]; ok && prev != ai {
				t.Errorf("assignment %q satisfies adjuncts %d and %d", key, prev, ai)
			}
			seen[key] = ai
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no assignments found")
	}
}
