package minimize_test

import (
	"fmt"

	"provmin/internal/minimize"
	"provmin/internal/query"
)

func ExampleMinProv() {
	// The paper's Figure 1: MinProv(Qconj) is Qunion up to renaming.
	q := query.MustParse("ans(x) :- R(x,y), R(y,x)")
	fmt.Println(minimize.MinProvCQ(q))
	// Output:
	// ans(v1) :- R(v1,v1)
	// ans(v1) :- R(v1,v2), R(v2,v1), v1 != v2
}

func ExampleMinProvSteps() {
	// Example 4.7, step by step on Q̂.
	st := minimize.MinProvSteps(query.MustParseUnion("ans() :- R(x,y), R(y,z), R(z,x)"))
	fmt.Println("step I adjuncts:", len(st.QI.Adjuncts))
	fmt.Println("step III:")
	fmt.Println(st.QIII)
	// Output:
	// step I adjuncts: 5
	// step III:
	// ans() :- R(v1,v1)
	// ans() :- R(v1,v2), R(v2,v3), R(v3,v1), v1 != v2, v1 != v3, v2 != v3
}

func ExampleCan() {
	// Example 4.2's extended canonical rewriting.
	q := query.MustParse("ans(x,y) :- R(x,y), x != 'a', x != y")
	can := minimize.Can(q, []string{"a", "b"})
	fmt.Println(len(can.Adjuncts), "adjuncts")
	// Output:
	// 5 adjuncts
}

func ExampleEquivalent() {
	a := query.MustParseUnion("ans() :- R(x,y), R(y,z), x != z")
	b := query.MustParseUnion("ans() :- R(x,y), R(y,z), x != z")
	fmt.Println(minimize.Equivalent(a, b))
	// Output:
	// true
}

func ExampleStandardMinimizeCQ() {
	q := query.MustParse("ans(x) :- R(x,y), R(x,z)")
	m, _ := minimize.StandardMinimizeCQ(q)
	fmt.Println(m)
	// Output:
	// ans(x) :- R(x,z)
}
