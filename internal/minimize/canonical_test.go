package minimize

import (
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/hom"
	"provmin/internal/query"
)

func TestExample42CanonicalRewriting(t *testing.T) {
	q := query.MustParse("ans(x,y) :- R(x,y), x != 'a', x != y")
	can := Can(q, []string{"a", "b"})
	if len(can.Adjuncts) != 5 {
		t.Fatalf("Can(Q,{a,b}) has %d adjuncts, want 5:\n%v", len(can.Adjuncts), can)
	}
	want := []*query.CQ{
		query.MustParse("ans(v1,'a') :- R(v1,'a'), v1 != 'a', v1 != 'b'"),
		query.MustParse("ans(v1,'b') :- R(v1,'b'), v1 != 'a', v1 != 'b'"),
		query.MustParse("ans(v1,v2) :- R(v1,v2), v1 != 'a', v1 != v2, v2 != 'a', v1 != 'b', v2 != 'b'"),
		query.MustParse("ans('b','a') :- R('b','a')"),
		query.MustParse("ans('b',v2) :- R('b',v2), v2 != 'a', v2 != 'b'"),
	}
	for _, w := range want {
		found := 0
		for _, a := range can.Adjuncts {
			if hom.Isomorphic(w, a) {
				found++
			}
		}
		if found != 1 {
			t.Errorf("expected completion %v to match exactly one adjunct, matched %d", w, found)
		}
	}
}

func TestFig3CanonicalRewriting(t *testing.T) {
	qhat := query.MustParse("ans() :- R(x,y), R(y,z), R(z,x)")
	can := Can(qhat, nil)
	if len(can.Adjuncts) != 5 {
		t.Fatalf("Can(Q̂) has %d adjuncts, want 5 (Q̂1..Q̂5):\n%v", len(can.Adjuncts), can)
	}
	want := []*query.CQ{
		query.MustParse("ans() :- R(v1,v1), R(v1,v1), R(v1,v1)"),
		query.MustParse("ans() :- R(v1,v2), R(v2,v1), R(v1,v1), v1 != v2"),
		query.MustParse("ans() :- R(v1,v2), R(v2,v2), R(v2,v1), v1 != v2"),
		query.MustParse("ans() :- R(v1,v1), R(v1,v2), R(v2,v1), v1 != v2"),
		query.MustParse("ans() :- R(v1,v2), R(v2,v3), R(v3,v1), v1 != v2, v2 != v3, v1 != v3"),
	}
	for _, w := range want {
		found := false
		for _, a := range can.Adjuncts {
			if hom.Isomorphic(w, a) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("completion %v missing from Can(Q̂)", w)
		}
	}
}

func TestTheorem43CanPreservesResults(t *testing.T) {
	queries := []string{
		"ans(x) :- R(x,y), R(y,x)",
		"ans() :- R(x,y), R(y,z), R(z,x)",
		"ans(x,y) :- R(x,y), x != 'a', x != y",
		"ans(x) :- R(x,y), S(y,'c')",
	}
	for _, s := range queries {
		q := query.MustParse(s)
		can := Can(q, q.Consts())
		if !Equivalent(query.Single(q), can) {
			t.Errorf("Q ≢ Can(Q) for %v", q)
		}
	}
}

func TestTheorem43ExtendedConstants(t *testing.T) {
	q := query.MustParse("ans(x,y) :- R(x,y), x != 'a', x != y")
	can := Can(q, []string{"a", "b"})
	if !Equivalent(query.Single(q), can) {
		t.Error("Q ≢ Can(Q, {a,b})")
	}
}

func TestTheorem44CanPreservesProvenance(t *testing.T) {
	// Q ≡_P Can(Q, C): evaluate both over several instances and require
	// identical annotated results.
	cases := []struct {
		q      string
		consts []string
	}{
		{"ans(x) :- R(x,y), R(y,x)", nil},
		{"ans() :- R(x,y), R(y,z), R(z,x)", nil},
		{"ans(x,y) :- R(x,y), x != 'a', x != y", []string{"a", "b"}},
	}
	dbs := []*db.Instance{}
	d1 := db.NewInstance()
	d1.MustAdd("R", "s1", "a", "a")
	d1.MustAdd("R", "s2", "a", "b")
	d1.MustAdd("R", "s3", "b", "a")
	d1.MustAdd("R", "s4", "b", "b")
	dbs = append(dbs, d1)
	d2 := db.NewInstance()
	g := db.NewGenerator(5)
	g.RandomGraph(d2, "R", 4, 9)
	dbs = append(dbs, d2)

	for _, c := range cases {
		q := query.MustParse(c.q)
		can := Can(q, c.consts)
		for di, d := range dbs {
			rq, err := eval.EvalCQ(q, d)
			if err != nil {
				t.Fatal(err)
			}
			rc, err := eval.EvalUCQ(can, d)
			if err != nil {
				t.Fatal(err)
			}
			if !rq.SameAnnotated(rc) {
				t.Errorf("provenance differs for %v on db %d:\n%s\nvs\n%s", q, di, rq, rc)
			}
		}
	}
}

func TestCompletionsAreComplete(t *testing.T) {
	q := query.MustParse("ans(x,y) :- R(x,y), S(y,'c'), x != y")
	for _, c := range PossibleCompletions(q, []string{"c", "d"}) {
		if !c.IsCompleteWRT([]string{"c", "d"}) {
			t.Errorf("completion not complete w.r.t. constants: %v", c)
		}
		if c.HasContradiction() {
			t.Errorf("contradictory completion generated: %v", c)
		}
	}
}

func TestCompletionsRespectDiseqs(t *testing.T) {
	// The disequality x != y must prevent any completion merging x and y:
	// every completion keeps two distinct arguments in R's positions unless
	// one is a constant — but never the same variable twice.
	q := query.MustParse("ans() :- R(x,y), x != y")
	for _, c := range PossibleCompletions(q, nil) {
		at := c.Atoms[0]
		if at.Args[0] == at.Args[1] {
			t.Errorf("completion merged separated variables: %v", c)
		}
	}
}

func TestCanKeepsOneAdjunctPerPartition(t *testing.T) {
	// ans() :- R(x), R(y), R(z): the partitions {xy}{z}, {xz}{y}, {yz}{x}
	// give isomorphic completions, yet Can must keep all Bell(3)=5 — one
	// adjunct per equality pattern — or Theorem 4.4's provenance bijection
	// breaks (compare Q̂2/Q̂3/Q̂4 in Figure 3).
	q := query.MustParse("ans() :- R(x), R(y), R(z)")
	can := Can(q, nil)
	if len(can.Adjuncts) != 5 {
		t.Errorf("Can has %d adjuncts, want Bell(3)=5:\n%v", len(can.Adjuncts), can)
	}
}

func TestCanUCQKeepsDuplicateAdjuncts(t *testing.T) {
	// Two identical adjuncts must stay separate (provenance doubling).
	u := query.MustParseUnion("ans(x) :- R(x,x)\nans(x) :- R(x,x)")
	can := CanUCQ(u, nil)
	if len(can.Adjuncts) != 2 {
		t.Errorf("CanUCQ must not merge across input adjuncts: %v", can)
	}
}

func TestCanRespectsHeadConstants(t *testing.T) {
	// Head variables replaced by constants must appear in the head, as in
	// Example 4.2's Q1: ans(v1,'a').
	q := query.MustParse("ans(x,y) :- R(x,y), x != y")
	can := Can(q, []string{"a"})
	foundHeadConst := false
	for _, a := range can.Adjuncts {
		for _, arg := range a.Head.Args {
			if arg == query.C("a") {
				foundHeadConst = true
			}
		}
	}
	if !foundHeadConst {
		t.Error("some completion should map a head variable to the constant")
	}
}
