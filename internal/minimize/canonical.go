// Package minimize implements the paper's minimization machinery: possible
// completions and canonical rewritings (Def. 4.1), standard query
// minimization for CQ (Chandra–Merlin), cCQ≠ (duplicate-atom removal,
// Lemma 3.13) and CQ≠/UCQ≠, decision procedures for containment and
// equivalence of UCQ≠ queries (Theorem 3.1 + Lemma 4.9), and the MinProv
// algorithm (Algorithm 1) computing a provenance-minimal equivalent query.
package minimize

import (
	"fmt"

	"provmin/internal/partition"
	"provmin/internal/query"
)

// PossibleCompletions enumerates the possible completions of q with respect
// to the constant set consts ⊇ Const(q) (Def. 4.1): for every admissible
// partition of Var(q) ∪ consts (at most one constant per block, disequality
// endpoints separated), the query obtained by collapsing each block to its
// constant or to a fresh variable, made complete with respect to consts.
// The completions are returned without isomorphism deduplication.
func PossibleCompletions(q *query.CQ, consts []string) []*query.CQ {
	allConsts := unionConsts(q.Consts(), consts)
	var separated [][2]string
	for _, d := range q.Diseqs {
		separated = append(separated, [2]string{d.Left.Name, d.Right.Name})
	}
	var out []*query.CQ
	partition.Enumerate(q.Vars(), allConsts, separated, func(blocks []partition.Block) bool {
		out = append(out, completionFromBlocks(q, blocks, allConsts))
		return true
	})
	return out
}

// completionFromBlocks builds the completion query for one partition.
func completionFromBlocks(q *query.CQ, blocks []partition.Block, allConsts []string) *query.CQ {
	subst := query.Subst{}
	var newVars []string
	next := 0
	for _, b := range blocks {
		if b.Const != "" {
			for _, v := range b.Vars {
				subst[v] = query.C(b.Const)
			}
			continue
		}
		if len(b.Vars) == 0 {
			continue
		}
		next++
		nv := fmt.Sprintf("v%d", next)
		newVars = append(newVars, nv)
		for _, v := range b.Vars {
			subst[v] = query.V(nv)
		}
	}
	out := q.ApplySubst(subst)
	// Def. 4.1: drop the original disequalities (now between distinct blocks,
	// hence subsumed) and add the complete set over new variables and
	// constants.
	var ds []query.Diseq
	for i := 0; i < len(newVars); i++ {
		for j := i + 1; j < len(newVars); j++ {
			ds = append(ds, query.NewDiseq(query.V(newVars[i]), query.V(newVars[j])))
		}
		for _, c := range allConsts {
			ds = append(ds, query.NewDiseq(query.V(newVars[i]), query.C(c)))
		}
	}
	return query.NewCQ(out.Head, out.Atoms, ds)
}

// Can computes the canonical rewriting Can(q, consts) (Def. 4.1): the union
// of the possible completions, one adjunct per admissible partition. Note
// that completions arising from different partitions may be isomorphic as
// queries (e.g. Q̂2 and Q̂4 in Figure 3) and are deliberately kept separate:
// Theorem 4.4 (Q ≡_P Can(Q)) requires one adjunct per equality pattern so
// that the assignments of Q and of Can(Q) are in provenance-preserving
// bijection. Step III of MinProv later collapses mutually contained
// adjuncts. With consts equal to Const(q) this is the paper's Can(Q).
func Can(q *query.CQ, consts []string) *query.UCQ {
	return &query.UCQ{Adjuncts: PossibleCompletions(q, consts)}
}

// CanUCQ applies the canonical rewriting adjunct-wise to a union, with
// respect to the union's full constant set extended by consts — this is
// Step I of MinProv when consts is empty. Adjuncts originating from
// different input adjuncts are NOT identified: Theorem 4.4 requires the
// rewriting to preserve provenance, and a union with two equivalent
// adjuncts legitimately produces doubled provenance.
func CanUCQ(u *query.UCQ, consts []string) *query.UCQ {
	all := unionConsts(u.Consts(), consts)
	var adjuncts []*query.CQ
	for _, q := range u.Adjuncts {
		adjuncts = append(adjuncts, Can(q, all).Adjuncts...)
	}
	return &query.UCQ{Adjuncts: adjuncts}
}

func unionConsts(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, xs := range [][]string{a, b} {
		for _, c := range xs {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}
