package minimize

import (
	"provmin/internal/hom"
	"provmin/internal/query"
)

// Steps records the intermediate queries of Algorithm 1 for inspection;
// Section 5 analyzes the effect of each step on provenance polynomials, and
// the paper-example driver replays them.
type Steps struct {
	Input *query.UCQ
	QI    *query.UCQ // after Step I: canonical rewriting of every adjunct
	QII   *query.UCQ // after Step II: per-adjunct minimization
	QIII  *query.UCQ // after Step III: contained adjuncts removed (output)
}

// MinProv implements Algorithm 1: given a UCQ≠ query it returns an
// equivalent p-minimal query (Theorem 4.6, Proposition 4.8). The output
// realizes the core provenance of the input on every abstractly-tagged
// database. Worst-case output size is exponential in the input, which
// Theorem 4.10 shows is unavoidable.
func MinProv(u *query.UCQ) *query.UCQ {
	return MinProvSteps(u).QIII
}

// MinProvCQ runs MinProv on a single conjunctive query.
func MinProvCQ(q *query.CQ) *query.UCQ {
	return MinProv(query.Single(q))
}

// MinProvSteps runs Algorithm 1 and returns all intermediate queries.
func MinProvSteps(u *query.UCQ) Steps {
	st := Steps{Input: u}

	// Step I: replace each adjunct by its canonical rewriting with respect
	// to the full set of constants of the query.
	st.QI = CanUCQ(u, nil)

	// Step II: minimize each adjunct. Every adjunct is complete, so by
	// Lemma 3.13 minimization is duplicate-atom removal (PTIME).
	adjII := make([]*query.CQ, len(st.QI.Adjuncts))
	for i, q := range st.QI.Adjuncts {
		adjII[i] = q.DedupAtoms()
	}
	st.QII = &query.UCQ{Adjuncts: adjII}

	// Step III: remove adjuncts contained in another adjunct. All adjuncts
	// are complete with respect to every constant in the query, so
	// containment Qj ⊆ Qi reduces to the existence of a homomorphism
	// Qi -> Qj (Theorem 3.1).
	alive := removeRedundantAdjuncts(adjII, func(a, b *query.CQ) bool {
		return hom.Exists(b, a)
	})
	st.QIII = &query.UCQ{Adjuncts: alive}
	return st
}

// IsPMinimalWitness checks, over the supplied equivalent candidates, that
// none yields strictly terser provenance than minProv's output would allow.
// It is a testing aid: true p-minimality quantifies over all equivalent
// queries and is certified by Proposition 4.8; this function cross-checks
// the implementation against explicit candidate sets.
func IsPMinimalWitness(out *query.UCQ, candidates []*query.UCQ) bool {
	for _, c := range candidates {
		if !Equivalent(out, c) {
			return false
		}
	}
	return true
}
