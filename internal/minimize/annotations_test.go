package minimize

import (
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/order"
	"provmin/internal/query"
	"provmin/internal/workload"
)

// TestTheorem61PMinimalTransfersToGeneralAnnotations verifies Thm 6.1: a
// query that is p-minimal w.r.t. abstractly tagged databases keeps minimal
// provenance on databases with repeated annotations. We take p-minimal
// outputs of MinProv, collapse tags in the instance, and check the order
// still holds pointwise against the original queries.
func TestTheorem61PMinimalTransfersToGeneralAnnotations(t *testing.T) {
	cases := []*query.CQ{workload.QConj, workload.QHat}
	for _, q := range cases {
		u := query.Single(q)
		pmin := MinProv(u)
		// Abstract instance, then collapse half the tags onto shared names.
		base := db.NewInstance()
		db.NewGenerator(41).RandomGraph(base, "R", 4, 9)
		collapsed := db.NewInstance()
		for _, r := range base.Relations() {
			nr := collapsed.MustRelation(r.Name, r.Arity)
			for i, row := range r.Rows() {
				tag := row.Tag
				if i%2 == 0 {
					tag = "shared"
				}
				nr.MustAdd(tag, row.Tuple...)
			}
		}
		if collapsed.IsAbstractlyTagged() {
			t.Fatal("test setup: instance should have repeated tags")
		}
		rMin, err := eval.EvalUCQ(pmin, collapsed)
		if err != nil {
			t.Fatal(err)
		}
		rOrig, err := eval.EvalUCQ(u, collapsed)
		if err != nil {
			t.Fatal(err)
		}
		if !rMin.SameTuples(rOrig) {
			t.Fatalf("equivalence must hold on general annotations for %v", q)
		}
		for _, ot := range rMin.Tuples() {
			po, _ := rOrig.Lookup(ot.Tuple)
			if !order.PolyLE(ot.Prov, po) {
				t.Errorf("query %v tuple %v: p-minimal provenance %v not ≤ %v on collapsed tags",
					q, ot.Tuple, ot.Prov, po)
			}
		}
	}
}
