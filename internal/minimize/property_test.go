package minimize

import (
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/hom"
	"provmin/internal/order"
	"provmin/internal/query"
	"provmin/internal/semiring"
	"provmin/internal/workload"
)

// TestMinProvRandomizedInvariants drives MinProv over random CQ≠ queries
// and checks the paper's guarantees hold on random instances:
//  1. equivalence to the input (Def. 2.19 requires it);
//  2. output provenance ≤ input provenance pointwise (core provenance);
//  3. the output is a union of complete adjuncts without duplicate atoms
//     (structure of Algorithm 1's output);
//  4. no output adjunct is contained in another (Step III ran to fixpoint).
func TestMinProvRandomizedInvariants(t *testing.T) {
	params := workload.QueryParams{
		NumAtoms: 2, NumVars: 3, NumRels: 2, Arity: 2, HeadArity: 1,
		DiseqProb: 0.3, SelfJoinOK: true,
	}
	for seed := int64(0); seed < 25; seed++ {
		q := workload.RandomCQ(seed, params)
		u := query.Single(q)
		out := MinProv(u)

		if !Equivalent(out, u) {
			t.Fatalf("seed %d: MinProv changed semantics of %v", seed, q)
		}
		consts := out.Consts()
		for _, a := range out.Adjuncts {
			if !a.IsCompleteWRT(consts) {
				t.Fatalf("seed %d: output adjunct not complete: %v", seed, a)
			}
			if a.HasDuplicateAtoms() {
				t.Fatalf("seed %d: output adjunct has duplicate atoms: %v", seed, a)
			}
		}
		for i, a := range out.Adjuncts {
			for j, b := range out.Adjuncts {
				if i != j && hom.Exists(b, a) {
					t.Fatalf("seed %d: adjunct %v contained in %v survived Step III", seed, a, b)
				}
			}
		}
		for dbSeed := int64(0); dbSeed < 2; dbSeed++ {
			d := db.NewInstance()
			g := db.NewGenerator(dbSeed*13 + seed)
			g.RandomRelation(d, "R1", 2, 6, 3)
			g.RandomRelation(d, "R2", 2, 6, 3)
			rel, err := order.CompareOnDB(out, u, d)
			if err != nil {
				t.Fatal(err)
			}
			if rel != order.Less && rel != order.Equal {
				t.Fatalf("seed %d db %d: output provenance %v input (want ≤)\nquery: %v\noutput: %v",
					seed, dbSeed, rel, q, out)
			}
		}
	}
}

// TestLemma55NoContainingMonomials checks that pIII never contains a pair
// of monomials where one strictly includes the other (Lemma 5.5), on random
// workloads.
func TestLemma55NoContainingMonomials(t *testing.T) {
	params := workload.QueryParams{
		NumAtoms: 2, NumVars: 3, NumRels: 1, Arity: 2, HeadArity: 0,
		DiseqProb: 0.2, SelfJoinOK: true,
	}
	for seed := int64(0); seed < 15; seed++ {
		q := workload.RandomCQ(seed, params)
		out := MinProvCQ(q)
		d := db.NewInstance()
		db.NewGenerator(seed).RandomGraph(d, "R1", 4, 8)
		res, err := eval.EvalUCQ(out, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, ot := range res.Tuples() {
			ms := ot.Prov.Monomials()
			for i := range ms {
				for j := range ms {
					if i != j && ms[i].ProperlyDivides(ms[j]) {
						t.Fatalf("seed %d tuple %v: monomial %v strictly inside %v in core provenance %v",
							seed, ot.Tuple, ms[i], ms[j], ot.Prov)
					}
				}
			}
		}
	}
}

// TestLemma57CoefficientsAreAutomorphismCounts verifies that every
// coefficient in the realized core provenance equals the automorphism count
// of the adjunct reconstructed from the monomial (Lemma 5.7 + Lemma 5.9).
func TestLemma57CoefficientsAreAutomorphismCounts(t *testing.T) {
	suite := []*query.CQ{
		workload.QHat,
		workload.QConj,
		query.MustParse("ans() :- R(x,y), R(y,x)"),
		query.MustParse("ans() :- R(x,y), R(u,v)"),
	}
	dbs := []*db.Instance{workload.Table2(), workload.Table6()}
	for _, q := range suite {
		out := MinProvCQ(q)
		for _, d := range dbs {
			res, err := eval.EvalUCQ(out, d)
			if err != nil {
				t.Fatal(err)
			}
			for _, ot := range res.Tuples() {
				for _, term := range ot.Prov.Terms() {
					if !term.Monomial.IsSupport() {
						t.Fatalf("core monomial with exponent: %v", term.Monomial)
					}
					adj, err := reconstruct(term.Monomial, d, ot.Tuple, q.Consts())
					if err != nil {
						t.Fatalf("reconstruct %v: %v", term.Monomial, err)
					}
					if k := hom.CountAutomorphisms(adj); k != term.Coef {
						t.Errorf("query %v tuple %v monomial %v: coefficient %d, Aut = %d",
							q, ot.Tuple, term.Monomial, term.Coef, k)
					}
				}
			}
		}
	}
}

// reconstruct mirrors direct.ReconstructAdjunct without importing the
// direct package (avoiding an import cycle in tests is not an issue here,
// but the duplication keeps this test independent of that implementation).
func reconstruct(m semiring.Monomial, d *db.Instance, t db.Tuple, consts []string) (*query.CQ, error) {
	isConst := map[string]bool{}
	for _, c := range consts {
		isConst[c] = true
	}
	varOf := map[string]string{}
	next := 0
	argFor := func(value string) query.Arg {
		if isConst[value] {
			return query.C(value)
		}
		if v, ok := varOf[value]; ok {
			return query.V(v)
		}
		next++
		v := "w" + string(rune('0'+next))
		varOf[value] = v
		return query.V(v)
	}
	var atoms []query.Atom
	for _, tm := range m.Terms() {
		rel, tuple, ok := d.FactOf(tm.Var)
		if !ok {
			return nil, errNotFound
		}
		args := make([]query.Arg, len(tuple))
		for i, val := range tuple {
			args[i] = argFor(val)
		}
		atoms = append(atoms, query.NewAtom(rel, args...))
	}
	headArgs := make([]query.Arg, len(t))
	for i, val := range t {
		headArgs[i] = argFor(val)
	}
	var vars []string
	for _, v := range varOf {
		vars = append(vars, v)
	}
	var ds []query.Diseq
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			ds = append(ds, query.NewDiseq(query.V(vars[i]), query.V(vars[j])))
		}
		for _, c := range consts {
			ds = append(ds, query.NewDiseq(query.V(vars[i]), query.C(c)))
		}
	}
	return query.NewCQ(query.NewAtom("ans", headArgs...), atoms, ds), nil
}

var errNotFound = &notFoundError{}

type notFoundError struct{}

func (*notFoundError) Error() string { return "tag not found" }
