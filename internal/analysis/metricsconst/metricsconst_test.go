package metricsconst_test

import (
	"testing"

	"provmin/internal/analysis/analysistest"
	"provmin/internal/analysis/metricsconst"
)

func TestMetricsConst(t *testing.T) {
	analysistest.Run(t, "testdata", metricsconst.Analyzer, "metricfix")
}
