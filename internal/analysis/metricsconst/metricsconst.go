package metricsconst

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"provmin/internal/analysis"
)

// Analyzer flags dynamically built metric names and kind collisions in
// calls to metrics.Registry create-on-use methods.
var Analyzer = &analysis.Analyzer{
	Name: "metricsconst",
	Doc:  "metric names must be compile-time constants, and a name must keep one kind — dynamic names are unbounded cardinality, kind collisions panic at runtime",
	Run:  run,
}

var kinds = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

type use struct {
	pos  token.Pos
	name string
	kind string
}

func run(pass *analysis.Pass) error {
	var uses []use
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := metricsMethod(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(),
					"metric name passed to %s is not a compile-time constant: dynamic names are unbounded registry cardinality (use a const and a label-free fixed name)", kind)
				return true
			}
			uses = append(uses, use{pos: call.Pos(), name: constant.StringVal(tv.Value), kind: kind})
			return true
		})
	}

	sort.Slice(uses, func(i, j int) bool { return uses[i].pos < uses[j].pos })
	first := map[string]string{}
	for _, u := range uses {
		if k, ok := first[u.name]; ok {
			if k != u.kind {
				pass.Reportf(u.pos,
					"metric %q registered as %s here but as %s earlier in this package: the second registration panics at runtime", u.name, u.kind, k)
			}
			continue
		}
		first[u.name] = u.kind
	}
	return nil
}

// metricsMethod reports whether call is Counter/Gauge/Histogram on a
// value whose type lives in a package named "metrics", returning the
// method name.
func metricsMethod(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !kinds[sel.Sel.Name] {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "metrics" {
		return "", false
	}
	if pass.TypesInfo.Selections[sel] == nil {
		return "", false // a package-level function, not a method
	}
	return sel.Sel.Name, true
}
