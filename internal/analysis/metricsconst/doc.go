// Package metricsconst keeps the metric namespace static and consistent.
//
// # Invariant
//
// Metric series are created on first use: Registry.Counter/Gauge/
// Histogram register the name if it is new. A dynamically built name
// (fmt.Sprintf with an instance ID, string concatenation with user
// input) creates unbounded cardinality in the registry and in every
// scraper downstream, and a name registered under two different kinds
// panics at runtime on the second registration. Both mistakes are
// invisible in tests that never hit the offending code path.
//
// # Rule
//
// For calls to methods named Counter, Gauge or Histogram on a value
// whose type is declared in a package named "metrics":
//
//   - the name argument must be a compile-time constant (a string
//     literal, a named const, or a constant expression built from them);
//   - within the analyzed package, the same constant name must not be
//     passed to two different kinds (the first use in source order wins;
//     later conflicting uses are flagged).
//
// # Suppression
//
//	//lint:ignore provlint/metricsconst <reason>
//
// The only accepted reason for a dynamic name is a bounded, code-owned
// enumeration (e.g. ranging over a fixed table of shard names); say so.
package metricsconst
