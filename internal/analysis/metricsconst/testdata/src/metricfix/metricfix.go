// Package metricfix is the fixture for metricsconst.
package metricfix

import (
	"fmt"

	"metricfix/metrics"
)

const evalTotal = "provmin_eval_total"
const prefix = "provmin_"

func literals(r *metrics.Registry) {
	r.Counter("provmin_ingest_total").Inc()
	r.Gauge(evalTotal + "_inflight").Set(1)
	r.Histogram(prefix + "latency_us").Observe(5)
}

func dynamic(r *metrics.Registry, id string) {
	r.Counter(fmt.Sprintf("provmin_instance_%s_ops", id)).Inc() // want "metric name passed to Counter is not a compile-time constant"
	name := prefix + id
	r.Gauge(name).Set(0) // want "metric name passed to Gauge is not a compile-time constant"
}

func collision(r *metrics.Registry) {
	r.Counter("provmin_cache_events").Inc()
	r.Gauge("provmin_cache_events").Set(2) // want "registered as Gauge here but as Counter earlier"
}

func suppressed(r *metrics.Registry) {
	for _, shard := range []string{"a", "b"} {
		//lint:ignore provlint/metricsconst fixture: bounded code-owned shard enumeration
		r.Counter(prefix + shard).Inc()
	}
}

func notTheRegistry(id string) {
	fmt.Println("Counter", id) // different package: not our business
}
