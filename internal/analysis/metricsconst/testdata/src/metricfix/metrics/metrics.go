// Package metrics is a fixture stand-in for the real registry.
package metrics

type Registry struct{}

func (r *Registry) Counter(name string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (c *Counter) Inc()            {}
func (g *Gauge) Set(v float64)     {}
func (h *Histogram) Observe(v int) {}
