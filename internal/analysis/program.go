package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Program is a set of type-checked packages: every package found under the
// load root, plus (cached, not analyzed) everything they import.
type Program struct {
	Fset *token.FileSet
	// Packages are the target packages in deterministic (import-path)
	// order — the ones analyzers run over.
	Packages []*PackageInfo

	byTypes map[*types.Package]*PackageInfo
}

// PackageInfo is one loaded target package.
type PackageInfo struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// FilesOf returns the parsed files of a target package, or nil for
// packages outside the load root (stdlib). Analyzers use it to read
// directive comments attached to declarations in other packages.
func (p *Program) FilesOf(pkg *types.Package) []*ast.File {
	if pi, ok := p.byTypes[pkg]; ok {
		return pi.Files
	}
	return nil
}

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is the root directory to load packages from.
	Dir string
	// ModulePath is the import-path prefix that maps to Dir (the module
	// path from go.mod). Empty selects fixture mode: every directory under
	// Dir is importable by its slash-separated path relative to Dir —
	// the layout of analysistest testdata/src trees.
	ModulePath string
	// IncludeTests also parses and checks _test.go files in each target
	// package (external test packages are not loaded).
	IncludeTests bool
}

// Load discovers, parses and type-checks every Go package under cfg.Dir.
// Imports that resolve inside the root are compiled from source as target
// packages; everything else (the standard library) is satisfied by the
// toolchain's export data, falling back to compiling from source when no
// export data is installed.
func Load(cfg LoadConfig) (*Program, error) {
	root, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	dirs, err := discover(root)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: token.NewFileSet(), byTypes: map[*types.Package]*PackageInfo{}}
	ld := &loader{
		cfg:     cfg,
		root:    root,
		prog:    prog,
		local:   map[string]string{},
		loaded:  map[string]*PackageInfo{},
		loading: map[string]bool{},
	}
	paths := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		var path string
		switch {
		case rel == "." && cfg.ModulePath != "":
			path = cfg.ModulePath
		case rel == ".":
			continue // fixture mode has no root package
		case cfg.ModulePath != "":
			path = cfg.ModulePath + "/" + filepath.ToSlash(rel)
		default:
			path = filepath.ToSlash(rel)
		}
		ld.local[path] = dir
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		pi, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		if pi != nil {
			prog.byTypes[pi.Pkg] = pi
		}
	}
	// Packages were appended in dependency order; re-sort by path so the
	// analysis (and its output) order is independent of import structure.
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].PkgPath < prog.Packages[j].PkgPath
	})
	return prog, nil
}

// discover walks root collecting directories that contain Go files,
// skipping hidden directories, testdata trees and vendored code.
func discover(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// loader resolves imports: local paths compile from source, the rest go to
// the toolchain importers. It implements types.Importer.
type loader struct {
	cfg     LoadConfig
	root    string
	prog    *Program
	local   map[string]string // import path -> directory
	loaded  map[string]*PackageInfo
	loading map[string]bool
	std     types.Importer // export-data importer, created lazily
	src     types.Importer // from-source fallback, created lazily
	stdPkgs map[string]*types.Package
}

func (ld *loader) Import(path string) (*types.Package, error) {
	if _, ok := ld.local[path]; ok {
		pi, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pi.Pkg, nil
	}
	return ld.importStd(path)
}

// importStd resolves a non-local import (standard library): export data
// first — fast, and present on any installed toolchain — then compiling
// from source under GOROOT when export data is missing.
func (ld *loader) importStd(path string) (*types.Package, error) {
	if ld.stdPkgs == nil {
		ld.stdPkgs = map[string]*types.Package{}
	}
	if pkg, ok := ld.stdPkgs[path]; ok {
		return pkg, nil
	}
	if ld.std == nil {
		ld.std = importer.Default()
	}
	pkg, err := ld.std.Import(path)
	if err != nil {
		if ld.src == nil {
			ld.src = importer.ForCompiler(ld.prog.Fset, "source", nil)
		}
		pkg, err = ld.src.Import(path)
		if err != nil {
			return nil, fmt.Errorf("import %q: %w", path, err)
		}
	}
	ld.stdPkgs[path] = pkg
	return pkg, nil
}

// load parses and type-checks one local package (memoized).
func (ld *loader) load(path string) (*PackageInfo, error) {
	if pi, ok := ld.loaded[path]; ok {
		return pi, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := ld.local[path]
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !ld.cfg.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	pkgName := ""
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(ld.prog.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if excludedByBuildTag(f) {
			continue
		}
		// _test.go files of an external test package (package foo_test)
		// belong to a different package; keep only the primary one.
		if pkgName == "" && !strings.HasSuffix(name, "_test.go") {
			pkgName = f.Name.Name
		}
		if pkgName != "" && f.Name.Name != pkgName {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("package %q: no buildable Go files in %s", path, dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %q: %w", path, err)
	}
	pi := &PackageInfo{PkgPath: path, Dir: dir, Files: files, Pkg: pkg, Info: info}
	ld.loaded[path] = pi
	ld.prog.Packages = append(ld.prog.Packages, pi)
	ld.prog.byTypes[pkg] = pi
	return pi, nil
}

// excludedByBuildTag reports whether a file opts out of normal builds via a
// constraint mentioning "ignore". Full constraint evaluation is not needed
// for this repository; generators and one-off scripts use exactly this tag.
func excludedByBuildTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build") && strings.Contains(c.Text, "ignore") {
				return true
			}
		}
	}
	return false
}
