// Package persist is a fixture mirror of the real WAL op enum.
package persist

// Op names one kind of WAL record.
//
//provlint:exhaustive
type Op string

const (
	OpCreate Op = "create"
	OpIngest Op = "ingest"
	OpDrop   Op = "drop"
	OpEvict  Op = "evict"
)
