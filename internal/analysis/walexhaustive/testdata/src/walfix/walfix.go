// Package walfix is the flagged fixture for walexhaustive: switches over a
// marked op type that skip declared constants.
package walfix

import "walfix/persist"

func residencyPrePass(op persist.Op) int {
	switch op { // want "switch over persist.Op is not exhaustive: missing OpCreate, OpIngest"
	case persist.OpEvict:
		return 1
	case persist.OpDrop:
		return 2
	}
	return 0
}

func applyPass(op persist.Op) int {
	// Exhaustive by explicit default: compliant.
	switch op {
	case persist.OpCreate, persist.OpIngest:
		return 1
	default:
		return 0
	}
}

func fullyListed(op persist.Op) int {
	// Every declared constant listed: compliant without a default.
	switch op {
	case persist.OpCreate:
		return 1
	case persist.OpIngest:
		return 2
	case persist.OpDrop, persist.OpEvict:
		return 3
	}
	return 0
}

func localAlias(op persist.Op) int {
	// Aliased constants count by value: compliant.
	const created = persist.OpCreate
	switch op {
	case created, persist.OpIngest, persist.OpDrop, persist.OpEvict:
		return 1
	}
	return 0
}

func aliasStillMissing(op persist.Op) int {
	const created = persist.OpCreate
	switch op { // want "missing OpDrop, OpEvict"
	case created, persist.OpIngest:
		return 1
	}
	return 0
}

func suppressed(op persist.Op) int {
	//lint:ignore provlint/walexhaustive fixture proves a documented ignore silences the diagnostic
	switch op {
	case persist.OpCreate:
		return 1
	}
	return 0
}

func unmarkedType(s string) int {
	// A plain string switch is never exhaustive-checked.
	switch s {
	case "a":
		return 1
	}
	return 0
}
