package walexhaustive

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"provmin/internal/analysis"
)

// Analyzer flags non-exhaustive switches over //provlint:exhaustive types.
var Analyzer = &analysis.Analyzer{
	Name: "walexhaustive",
	Doc:  "switches over types marked //provlint:exhaustive (persist.Op) must cover every declared constant or have an explicit default",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Memoize per declaring type: is it marked, and what are its constants.
	marked := map[*types.TypeName]bool{}
	consts := map[*types.TypeName]map[string]string{} // value (exact) -> const name

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if _, seen := marked[obj]; !seen {
				marked[obj] = isExhaustive(pass, obj)
				if marked[obj] {
					consts[obj] = declaredConsts(obj, named)
				}
			}
			if !marked[obj] {
				return true
			}

			covered := map[string]bool{}
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if v := pass.TypesInfo.Types[e].Value; v != nil {
						covered[v.ExactString()] = true
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for val, name := range consts[obj] {
				if !covered[val] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(sw.Pos(),
					"switch over %s.%s is not exhaustive: missing %s (add the cases or an explicit default — a silently skipped op is data loss on replay)",
					obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

// declaredConsts collects every package-level constant of the named type
// in its declaring package, keyed by exact constant value.
func declaredConsts(obj *types.TypeName, named *types.Named) map[string]string {
	out := map[string]string{}
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		if prev, dup := out[key]; !dup || name < prev {
			out[key] = name
		}
	}
	return out
}

// isExhaustive reports whether the type's declaration carries the
// //provlint:exhaustive directive. The declaring package's syntax must be
// part of the loaded program; types from outside it (stdlib) are never
// exhaustive-checked.
func isExhaustive(pass *analysis.Pass, obj *types.TypeName) bool {
	files := pass.Prog.FilesOf(obj.Pkg())
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != obj.Name() {
					continue
				}
				if hasDirective(gd.Doc) || hasDirective(ts.Doc) || hasDirective(ts.Comment) {
					return true
				}
			}
		}
	}
	return false
}

func hasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == "//provlint:exhaustive" {
			return true
		}
	}
	return false
}
