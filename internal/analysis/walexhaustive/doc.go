// Package walexhaustive enforces exhaustive switches over enum-like named
// types marked with a "//provlint:exhaustive" directive — in this
// repository, persist.Op, the WAL record kind.
//
// # Invariant
//
// Crash recovery replays every WAL record through switches in
// internal/persist (the residency pre-pass and the apply pass). A new op
// constant that one of those switches silently falls through is data loss:
// the record is acknowledged, logged, and then ignored at boot. The same
// applies to any future switch over the op type anywhere in the module.
//
// # Rule
//
// Every switch statement whose tag has a type marked
// "//provlint:exhaustive" (on the type declaration) must either list every
// declared constant of that type among its cases or carry an explicit
// default clause. Constants are matched by value, so aliased constants
// count as covered.
//
// # Suppression
//
//	//lint:ignore provlint/walexhaustive <reason>
//
// on (or directly above) the switch line.
package walexhaustive
