package walexhaustive_test

import (
	"testing"

	"provmin/internal/analysis/analysistest"
	"provmin/internal/analysis/walexhaustive"
)

func TestWalExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", walexhaustive.Analyzer, "walfix")
}
