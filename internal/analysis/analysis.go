// Package analysis is a small, dependency-free static-analysis framework
// for provlint, the project's custom linter (cmd/provlint). It mirrors the
// shape of golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic —
// but is built entirely on the standard library's go/ast, go/parser,
// go/types and go/importer, so the linter compiles from this module's
// source with zero external dependencies and can never be version-skewed
// against the repository it checks. If the x/tools dependency ever becomes
// available to the build, the analyzers port mechanically: only the loader
// (program.go) and the driver (run.go) are framework-specific.
//
// The analyzers themselves live in subpackages (walexhaustive,
// deterministic, errwrapsentinel, lockdiscipline, metricsconst); each one
// machine-checks a correctness invariant the system's guarantees rest on
// and documents it in its doc.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. Run inspects a single package (one Pass)
// and reports diagnostics through the pass; it must not retain the pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in suppression
	// directives ("//lint:ignore provlint/<name> reason").
	Name string
	// Doc is a one-paragraph statement of the invariant the analyzer
	// guards, shown by `provlint -help`.
	Doc string
	// Run performs the check over one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the whole loaded program: analyzers that need another
	// package's syntax (for example to read a directive comment on a type
	// declared elsewhere) reach it through Prog.FilesOf.
	Prog *Program

	report func(Diagnostic)
}

// Diagnostic is one finding: a position and a message, attributed to the
// analyzer that produced it.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
