package deterministic_test

import (
	"testing"

	"provmin/internal/analysis/analysistest"
	"provmin/internal/analysis/deterministic"
)

func TestDeterministic(t *testing.T) {
	analysistest.Run(t, "testdata", deterministic.Analyzer, "canonfix", "noncanon")
}
