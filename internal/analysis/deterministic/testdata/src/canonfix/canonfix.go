// Package canonfix is the flagged fixture for deterministic: a canonical
// package with unsorted map iterations and clock/RNG calls.
//
//provlint:canonical
package canonfix

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration appends to \"keys\" without a subsequent sort"
		keys = append(keys, k)
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortSliceKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func writesDuringRange(m map[string]int, buf *bytes.Buffer) {
	for k, v := range m {
		fmt.Fprintf(buf, "%s=%d\n", k, v) // want "write to a writer inside map iteration"
	}
}

func methodWriteDuringRange(m map[string]bool, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want "write to a writer inside map iteration"
	}
}

func mapToMap(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v // insertion order is irrelevant: compliant
	}
	return out
}

func clock() int64 {
	return time.Now().UnixNano() // want "canonical package calls time.Now"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "canonical package calls time.Since"
}

func random() int {
	return rand.Intn(10) // want "canonical package calls rand.Intn"
}

func suppressedClock() time.Time {
	//lint:ignore provlint/deterministic fixture: timestamp feeds a log line, not canonical output
	return time.Now()
}

func sliceRangeIsFine(xs []string, buf *bytes.Buffer) {
	for _, x := range xs {
		buf.WriteString(x)
	}
}
