// Package noncanon is the clean fixture: the same hazards in a package
// without the canonical directive are not the analyzer's business.
package noncanon

import "time"

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func clock() time.Time { return time.Now() }
