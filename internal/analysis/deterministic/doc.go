// Package deterministic guards the byte-identical-output invariant of
// canonical packages — packages whose output feeds a canonical encoding
// (snapshots, /metrics text, polynomial strings, evaluation results) and
// is compared byte-for-byte across the cold, cached, maintained, interned
// and parallel paths by the differential tests.
//
// # Invariant
//
// A canonical package must be deterministic: same inputs, same bytes out.
// The two ways this breaks in practice are Go's randomized map iteration
// order leaking into an output sequence, and wall-clock or RNG values
// reaching an encode/eval path. The differential tests catch such bugs
// only probabilistically (a lucky iteration order passes CI and fails in
// production); this analyzer catches them structurally.
//
// # Rule
//
// In packages marked canonical (a "//provlint:canonical" directive
// anywhere in the package, conventionally above the package clause):
//
//   - a `range` over a map whose body appends to a slice must be followed
//     (later in the same enclosing block) by a sort call that mentions the
//     slice — the collect-then-sort idiom. Appending without sorting makes
//     the slice order random.
//   - a `range` over a map whose body writes to a writer (Write*,
//     Fprint*/Fprintf/Fprintln, WriteString, ...) is always flagged:
//     bytes already written cannot be sorted afterwards.
//   - any call to time.Now, time.Since or a math/rand (v1 or v2) function
//     is flagged: canonical output must not depend on the clock or an RNG.
//
// Map-to-map transfers are not flagged (insertion order does not matter),
// and the analyzer checks direct calls within the canonical package — a
// deliberate approximation of "reachable from encode/eval entry points"
// that keeps the check call-graph-free; the canonical packages contain no
// non-canonical helpers that would make it noisy.
//
// # Suppression
//
//	//lint:ignore provlint/deterministic <reason>
package deterministic
