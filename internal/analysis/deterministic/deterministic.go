package deterministic

import (
	"go/ast"
	"go/types"
	"strings"

	"provmin/internal/analysis"
)

// Analyzer flags nondeterminism hazards in //provlint:canonical packages.
var Analyzer = &analysis.Analyzer{
	Name: "deterministic",
	Doc:  "in //provlint:canonical packages, map iteration must not order output (append-then-sort or no writer writes) and the clock/RNG must stay out of encode/eval paths",
	Run:  run,
}

// writerMethods are method names that emit bytes irrevocably.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// fmtWriters are fmt functions that write to an io.Writer.
var fmtWriters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func run(pass *analysis.Pass) error {
	if !isCanonical(pass.Files) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkClockAndRand(pass, n)
			case *ast.BlockStmt:
				checkMapRanges(pass, n)
			}
			return true
		})
	}
	return nil
}

func isCanonical(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == "//provlint:canonical" {
					return true
				}
			}
		}
	}
	return false
}

// checkClockAndRand flags calls into time.Now/time.Since and math/rand.
func checkClockAndRand(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			pass.Reportf(call.Pos(),
				"canonical package calls time.%s: clock values must not reach canonical output (pass timestamps in from a non-canonical caller)", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(call.Pos(),
			"canonical package calls %s.%s: randomness must not reach canonical output (thread a seeded source in from a non-canonical caller)", obj.Pkg().Name(), sel.Sel.Name)
	}
}

// checkMapRanges inspects each map-range statement that is a direct child
// of block, so the "is there a sort after the loop?" question has a
// well-defined statement list to scan.
func checkMapRanges(pass *analysis.Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok || !isMapType(pass, rng.X) {
			continue
		}
		appended, wrote := scanBody(pass, rng.Body)
		for _, w := range wrote {
			pass.Reportf(w.Pos(),
				"write to a writer inside map iteration: iteration order is randomized, so the emitted bytes are nondeterministic (collect keys, sort, then write)")
		}
		for _, obj := range appended {
			if !sortedAfter(pass, block.List[i+1:], obj) {
				pass.Reportf(rng.Pos(),
					"map iteration appends to %q without a subsequent sort in this block: the slice order is randomized (sort it, or iterate sorted keys)", obj.Name())
			}
		}
	}
}

func isMapType(pass *analysis.Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// scanBody finds output accumulation inside a map-range body: objects
// appended to, and writer-call sites. Nested map ranges are handled by
// their own enclosing-block visit.
func scanBody(pass *analysis.Pass, body *ast.BlockStmt) (appended []*types.Var, wrote []ast.Node) {
	seen := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for j, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || j >= len(n.Lhs) {
					continue
				}
				if obj := assignedVar(pass, n.Lhs[j]); obj != nil && !seen[obj] {
					seen[obj] = true
					appended = append(appended, obj)
				}
			}
		case *ast.CallExpr:
			if isWriterCall(pass, n) {
				wrote = append(wrote, n)
			}
		}
		return true
	})
	return appended, wrote
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func assignedVar(pass *analysis.Pass, lhs ast.Expr) *types.Var {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		v, _ := pass.TypesInfo.Uses[lhs].(*types.Var)
		if v == nil {
			v, _ = pass.TypesInfo.Defs[lhs].(*types.Var)
		}
		return v
	case *ast.SelectorExpr:
		v, _ := pass.TypesInfo.Uses[lhs.Sel].(*types.Var)
		return v
	}
	return nil
}

func isWriterCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return fmtWriters[fn.Name()]
	}
	// A method named like a writer on any receiver (bytes.Buffer,
	// strings.Builder, bufio.Writer, io.Writer, ...).
	if pass.TypesInfo.Selections[sel] != nil {
		return writerMethods[sel.Sel.Name]
	}
	return false
}

// sortedAfter reports whether any statement in stmts calls into sort or
// slices with obj among the call's argument expressions.
func sortedAfter(pass *analysis.Pass, stmts []ast.Stmt, obj *types.Var) bool {
	for _, s := range stmts {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "sort", "slices":
			default:
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
