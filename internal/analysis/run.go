package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one resolved diagnostic: position, analyzer and message,
// after suppression filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (provlint/%s)", f.Pos, f.Message, f.Analyzer)
}

// ignoreDirective is one parsed "//lint:ignore provlint/<name> reason"
// comment. It suppresses diagnostics of the named analyzer on its own line
// and on the line immediately following (the comment-above-the-statement
// form). The reason is mandatory: an undocumented suppression is itself
// reported as a finding, so every silenced diagnostic carries its
// justification in the source.
type ignoreDirective struct {
	analyzer string
	line     int
	used     bool
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+provlint/([a-z0-9_-]+)(?:\s+(.*))?$`)

// collectIgnores scans one file for provlint suppression directives.
// Malformed directives (no reason) are reported through report.
func collectIgnores(fset *token.FileSet, f *ast.File, report func(Finding)) map[string][]*ignoreDirective {
	out := map[string][]*ignoreDirective{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			if strings.TrimSpace(m[2]) == "" {
				report(Finding{
					Analyzer: "suppression",
					Pos:      pos,
					Message:  fmt.Sprintf("lint:ignore provlint/%s needs a reason: every suppression must document why the invariant does not apply", m[1]),
				})
				continue
			}
			out[m[1]] = append(out[m[1]], &ignoreDirective{analyzer: m[1], line: pos.Line})
		}
	}
	return out
}

// Run executes every analyzer over every target package of prog, applies
// the suppression directives, and returns the surviving findings sorted by
// position. Unused suppressions are reported as findings themselves: a
// directive that no longer silences anything is stale documentation and
// must be removed.
func Run(prog *Program, analyzers []*Analyzer) ([]Finding, error) {
	return RunPackages(prog, prog.Packages, analyzers)
}

// RunPackages is Run restricted to a subset of the program's packages —
// the analysistest harness uses it to check one fixture package at a time
// while its dependency fixtures stay loaded but unanalyzed.
func RunPackages(prog *Program, pkgs []*PackageInfo, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	// filename -> analyzer -> directives
	ignores := map[string]map[string][]*ignoreDirective{}
	for _, pi := range pkgs {
		for _, f := range pi.Files {
			name := prog.Fset.Position(f.Package).Filename
			ignores[name] = collectIgnores(prog.Fset, f, func(fd Finding) {
				findings = append(findings, fd)
			})
		}
	}

	for _, pi := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pi.Files,
				Pkg:       pi.Pkg,
				TypesInfo: pi.Info,
				Prog:      prog,
			}
			pass.report = func(d Diagnostic) {
				pos := prog.Fset.Position(d.Pos)
				for _, dir := range ignores[pos.Filename][a.Name] {
					if dir.line == pos.Line || dir.line == pos.Line-1 {
						dir.used = true
						return
					}
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pi.PkgPath, err)
			}
		}
	}

	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name] = true
	}
	for file, byName := range ignores {
		for name, dirs := range byName {
			if !names[name] {
				continue // another analyzer set's directive; not ours to judge
			}
			for _, dir := range dirs {
				if !dir.used {
					findings = append(findings, Finding{
						Analyzer: "suppression",
						Pos:      token.Position{Filename: file, Line: dir.line},
						Message:  fmt.Sprintf("stale lint:ignore provlint/%s: it suppresses nothing; remove it", name),
					})
				}
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}
