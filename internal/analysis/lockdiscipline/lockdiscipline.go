package lockdiscipline

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"

	"provmin/internal/analysis"
)

// Analyzer enforces the engine's lock hierarchy on fields annotated with
// //provlint:lockorder N.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "locks annotated //provlint:lockorder N must be acquired in strictly increasing level order and released in the same function",
	Run:  run,
}

var orderRe = regexp.MustCompile(`^//provlint:lockorder\s+(\d+)$`)

type lockEvent struct {
	node     ast.Node
	level    int
	recv     string // types.ExprString of the receiver, for unlock pairing
	acquire  bool
	deferred bool
}

type funcFacts struct {
	decl     *ast.FuncDecl
	events   []lockEvent
	calls    []callSite
	acquires map[int]bool // levels acquired, direct then transitive
}

type callSite struct {
	node   ast.Node
	callee *types.Func
}

func run(pass *analysis.Pass) error {
	levels := map[*types.Var]int{}
	facts := map[*types.Func]*funcFacts{}
	var order []*types.Func

	for _, f := range pass.Files {
		collectLevels(pass, f, levels)
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := collectFacts(pass, fd, levels)
			facts[fn] = ff
			order = append(order, fn)
		}
	}

	// Fixpoint: propagate acquired levels up the intra-package call graph.
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			ff := facts[fn]
			for _, cs := range ff.calls {
				callee := facts[cs.callee]
				if callee == nil {
					continue
				}
				for lvl := range callee.acquires {
					if !ff.acquires[lvl] {
						ff.acquires[lvl] = true
						changed = true
					}
				}
			}
		}
	}

	for _, fn := range order {
		checkFunc(pass, facts, facts[fn])
	}
	return nil
}

// collectLevels finds struct fields annotated //provlint:lockorder N and
// records the field object's level.
func collectLevels(pass *analysis.Pass, f *ast.File, levels map[*types.Var]int) {
	ast.Inspect(f, func(n ast.Node) bool {
		field, ok := n.(*ast.Field)
		if !ok {
			return true
		}
		lvl, ok := fieldDirective(field)
		if !ok {
			return true
		}
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				levels[v] = lvl
			}
		}
		return true
	})
}

func fieldDirective(field *ast.Field) (int, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := orderRe.FindStringSubmatch(c.Text); m != nil {
				lvl, err := strconv.Atoi(m[1])
				if err == nil && lvl > 0 {
					return lvl, true
				}
			}
		}
	}
	return 0, false
}

var lockNames = map[string]bool{"Lock": true, "RLock": true}
var unlockNames = map[string]bool{"Unlock": true, "RUnlock": true}

// collectFacts gathers lock/unlock events and same-package call sites in
// source order, plus the set of levels the function acquires directly.
func collectFacts(pass *analysis.Pass, fd *ast.FuncDecl, levels map[*types.Var]int) *funcFacts {
	ff := &funcFacts{decl: fd, acquires: map[int]bool{}}
	deferred := map[ast.Node]bool{}
	spawned := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.GoStmt:
			// A goroutine acquires its locks on its own stack: its levels
			// are not held by the spawner, so the call does not propagate.
			spawned[n.Call] = true
		case *ast.CallExpr:
			if spawned[n] {
				return true
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				if id, ok := n.Fun.(*ast.Ident); ok {
					if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && fn.Pkg() == pass.Pkg {
						ff.calls = append(ff.calls, callSite{node: n, callee: fn})
					}
				}
				return true
			}
			name := sel.Sel.Name
			if lockNames[name] || unlockNames[name] {
				if lvl, recv, ok := annotatedReceiver(pass, sel.X, levels); ok {
					ev := lockEvent{node: n, level: lvl, recv: recv, acquire: lockNames[name], deferred: deferred[n]}
					ff.events = append(ff.events, ev)
					if ev.acquire {
						ff.acquires[lvl] = true
					}
					return true
				}
			}
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() == pass.Pkg {
				ff.calls = append(ff.calls, callSite{node: n, callee: fn})
			}
		}
		return true
	})
	return ff
}

// annotatedReceiver resolves the mutex expression (e.g. e.closeMu or
// s.shards[i].mu) to an annotated field and a pairing key.
func annotatedReceiver(pass *analysis.Pass, x ast.Expr, levels map[*types.Var]int) (int, string, bool) {
	sx, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return 0, "", false
	}
	var v *types.Var
	if s := pass.TypesInfo.Selections[sx]; s != nil {
		v, _ = s.Obj().(*types.Var)
	} else {
		v, _ = pass.TypesInfo.Uses[sx.Sel].(*types.Var)
	}
	if v == nil {
		return 0, "", false
	}
	lvl, ok := levels[v]
	if !ok {
		return 0, "", false
	}
	return lvl, types.ExprString(sx), true
}

func checkFunc(pass *analysis.Pass, facts map[*types.Func]*funcFacts, ff *funcFacts) {
	held := map[int]int{} // level -> count
	maxHeld := func() int {
		m := 0
		for lvl, n := range held {
			if n > 0 && lvl > m {
				m = lvl
			}
		}
		return m
	}

	// Interleave events and call sites in source order.
	type step struct {
		ev   *lockEvent
		call *callSite
		pos  int
	}
	var steps []step
	for i := range ff.events {
		steps = append(steps, step{ev: &ff.events[i], pos: int(ff.events[i].node.Pos())})
	}
	for i := range ff.calls {
		steps = append(steps, step{call: &ff.calls[i], pos: int(ff.calls[i].node.Pos())})
	}
	for i := 1; i < len(steps); i++ {
		for j := i; j > 0 && steps[j].pos < steps[j-1].pos; j-- {
			steps[j], steps[j-1] = steps[j-1], steps[j]
		}
	}

	for _, s := range steps {
		if s.call != nil {
			callee := facts[s.call.callee]
			if callee == nil || maxHeld() == 0 {
				continue
			}
			for lvl := range callee.acquires {
				if lvl <= maxHeld() {
					pass.Reportf(s.call.node.Pos(),
						"call to %s while holding lock level %d: the callee (transitively) acquires level %d, violating the lock order", s.call.callee.Name(), maxHeld(), lvl)
					break
				}
			}
			continue
		}
		ev := s.ev
		if ev.acquire {
			if m := maxHeld(); m >= ev.level {
				pass.Reportf(ev.node.Pos(),
					"acquiring %s (level %d) while holding level %d: lock levels must strictly increase (closeMu -> shard -> instance -> batcher fence)", ev.recv, ev.level, m)
			}
			held[ev.level]++
			if !unlockedLater(ff.events, ev) {
				pass.Reportf(ev.node.Pos(),
					"%s is locked here but never unlocked in this function: this codebase does not hand locked state to callers", ev.recv)
			}
		} else if !ev.deferred {
			if held[ev.level] > 0 {
				held[ev.level]--
			}
		}
	}
}

// unlockedLater reports whether a matching unlock of the same receiver
// appears after the acquire (deferred unlocks may appear earlier in
// source order but run at function exit, so any deferred unlock counts).
func unlockedLater(events []lockEvent, acq *lockEvent) bool {
	for i := range events {
		ev := &events[i]
		if ev.acquire || ev.recv != acq.recv {
			continue
		}
		if ev.deferred || ev.node.Pos() > acq.node.Pos() {
			return true
		}
	}
	return false
}
