// Package lockfix is the fixture for lockdiscipline.
package lockfix

import "sync"

type engine struct {
	closeMu sync.RWMutex //provlint:lockorder 1
	mu      sync.Mutex   //provlint:lockorder 2
	imu     sync.RWMutex //provlint:lockorder 3

	plain sync.Mutex // unannotated: not the analyzer's business
}

func (e *engine) good() {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.imu.Lock()
	e.imu.Unlock()
}

func (e *engine) inverted() {
	e.mu.Lock()
	e.closeMu.RLock() // want "acquiring e.closeMu \\(level 1\\) while holding level 2"
	e.closeMu.RUnlock()
	e.mu.Unlock()
}

func (e *engine) reacquire() {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	e.closeMu.RLock() // want "acquiring e.closeMu \\(level 1\\) while holding level 1"
	e.closeMu.RUnlock()
}

func (e *engine) leaky() {
	e.mu.Lock() // want "e.mu is locked here but never unlocked"
}

func (e *engine) sequential() {
	// Release before acquiring downward: legal.
	e.imu.Lock()
	e.imu.Unlock()
	e.closeMu.RLock()
	e.closeMu.RUnlock()
}

func (e *engine) lockLow() {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
}

func (e *engine) callsDown() {
	e.imu.Lock()
	defer e.imu.Unlock()
	e.lockLow() // want "call to lockLow while holding lock level 3"
}

func (e *engine) middle() {
	e.lockLow()
}

func (e *engine) transitive() {
	e.imu.Lock()
	defer e.imu.Unlock()
	e.middle() // want "call to middle while holding lock level 3"
}

func (e *engine) callUnheld() {
	e.middle() // holding nothing: fine
}

func (e *engine) spawner() {
	go e.lockLow()
}

func (e *engine) spawnsWhileHeld() {
	// The goroutine acquires level 1 on its own stack: fine.
	e.imu.Lock()
	defer e.imu.Unlock()
	e.spawner()
}

func (e *engine) suppressed() {
	e.mu.Lock()
	//lint:ignore provlint/lockdiscipline fixture: the two branches are mutually exclusive at runtime
	e.closeMu.RLock()
	e.closeMu.RUnlock()
	e.mu.Unlock()
}

func (e *engine) unannotated() {
	e.plain.Lock()
	e.plain.Unlock()
}

func localMutex() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}
