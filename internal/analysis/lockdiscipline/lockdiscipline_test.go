package lockdiscipline_test

import (
	"testing"

	"provmin/internal/analysis/analysistest"
	"provmin/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", lockdiscipline.Analyzer, "lockfix")
}
