// Package lockdiscipline encodes the engine's lock ordering as a static
// check.
//
// # Invariant
//
// The engine's locks form a strict hierarchy, documented in the
// internal/engine package comment:
//
//	closeMu (1) -> registry shard mu (2) -> instance mu (3) -> batcher addMu (4)
//
// A goroutine may only acquire a lock whose level is strictly greater
// than every lock it already holds. Acquiring downward (or re-acquiring
// the same level) is the deadlock shape that killed the v3 snapshot
// writer: two goroutines interleaving shard->instance and
// instance->shard acquisition.
//
// # Rule
//
// Lock fields opt in with a directive on the struct field:
//
//	mu sync.RWMutex //provlint:lockorder 2
//
// For every function in the analyzed package, the analyzer walks the
// body in source order, tracking the multiset of annotated levels held:
//
//   - Lock/RLock on an annotated field while a level >= its own is held
//     is flagged (out-of-order acquisition).
//   - A call to a same-package function that (transitively, via an
//     intra-package call-graph fixpoint) acquires a level <= a currently
//     held level is flagged at the call site.
//   - A `go f()` statement does not propagate f's acquisitions to the
//     spawner: the goroutine takes its locks on its own stack.
//   - Lock/RLock on an annotated field with no later Unlock/RUnlock of
//     the same receiver expression in the same function (deferred counts)
//     is flagged — the caller-must-unlock pattern is not used in this
//     codebase, so a missing unlock is a leak.
//
// The scan is path-insensitive: statements are considered in source
// order regardless of branching. That over-approximates "held" across
// if/else arms that lock and unlock symmetrically; such code should be
// restructured or carry a suppression explaining why the paths are
// exclusive.
//
// # Suppression
//
//	//lint:ignore provlint/lockdiscipline <reason>
package lockdiscipline
