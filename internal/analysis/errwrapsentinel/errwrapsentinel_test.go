package errwrapsentinel_test

import (
	"testing"

	"provmin/internal/analysis/analysistest"
	"provmin/internal/analysis/errwrapsentinel"
)

func TestErrWrapSentinel(t *testing.T) {
	analysistest.Run(t, "testdata", errwrapsentinel.Analyzer, "wrapfix")
}
