package errwrapsentinel

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"provmin/internal/analysis"
)

// Analyzer flags sentinel errors that are stringified instead of wrapped,
// and == / != comparisons against sentinels that should be errors.Is.
var Analyzer = &analysis.Analyzer{
	Name: "errwrapsentinel",
	Doc:  "sentinel errors must be wrapped with %w and tested with errors.Is, or callers' errors.Is checks silently break",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, n)
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelOf returns the package-level error variable an expression
// resolves to, or nil. It recognizes bare identifiers and pkg.Ident
// selectors.
func sentinelOf(pass *analysis.Pass, x ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Implements(v.Type(), errorIface) && !types.Implements(types.NewPointer(v.Type()), errorIface) {
		return nil
	}
	return v
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := verbsByArg(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		v := sentinelOf(pass, arg)
		if v == nil {
			continue
		}
		verb, ok := verbs[i]
		if !ok || verb == 'w' {
			continue
		}
		pass.Reportf(arg.Pos(),
			"sentinel %s formatted with %%%c: this flattens it to a string and breaks callers' errors.Is — wrap it with %%w", v.Name(), verb)
	}
}

// verbsByArg parses a Printf format string and maps each consumed
// argument index (0-based, counting from the first vararg) to the verb
// that formats it. *-widths and *-precisions consume an argument each
// (mapped to '*'); %[n] explicit indexes reposition the cursor; %% maps
// to nothing.
func verbsByArg(format string) map[int]rune {
	out := map[int]rune{}
	arg := 0
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		// Flags.
		for i < len(rs) && (rs[i] == '+' || rs[i] == '-' || rs[i] == '#' || rs[i] == ' ' || rs[i] == '0') {
			i++
		}
		// Explicit argument index: %[n]verb (1-based).
		if i < len(rs) && rs[i] == '[' {
			j := i + 1
			n := 0
			for j < len(rs) && rs[j] >= '0' && rs[j] <= '9' {
				n = n*10 + int(rs[j]-'0')
				j++
			}
			if j < len(rs) && rs[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		// Width.
		if i < len(rs) && rs[i] == '*' {
			out[arg] = '*'
			arg++
			i++
		} else {
			for i < len(rs) && rs[i] >= '0' && rs[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i < len(rs) && rs[i] == '.' {
			i++
			if i < len(rs) && rs[i] == '*' {
				out[arg] = '*'
				arg++
				i++
			} else {
				for i < len(rs) && rs[i] >= '0' && rs[i] <= '9' {
					i++
				}
			}
		}
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		out[arg] = rs[i]
		arg++
	}
	return out
}

func checkComparison(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	v := sentinelOf(pass, b.X)
	if v == nil {
		v = sentinelOf(pass, b.Y)
	}
	if v == nil {
		return
	}
	op := "errors.Is(err, " + v.Name() + ")"
	if b.Op == token.NEQ {
		op = "!" + op
	}
	pass.Reportf(b.Pos(),
		"comparison with sentinel %s using %s: breaks once any layer wraps the error — use %s", v.Name(), b.Op, op)
}
