// Package errwrapsentinel keeps the engine's sentinel-error contract
// intact across wrapping boundaries.
//
// # Invariant
//
// The public API's error contract is "errors.Is(err, engine.ErrX)". That
// contract survives only if every layer that decorates an error keeps the
// sentinel in the unwrap chain (%w) and every layer that tests for one
// uses errors.Is. Stringifying a sentinel with %v/%s produces an error
// that looks right in logs but silently breaks callers' errors.Is checks;
// comparing with == breaks as soon as anyone upstream adds wrapping.
//
// # Rule
//
//   - A fmt.Errorf call that passes a sentinel (a package-level variable
//     of type error, e.g. engine.ErrClosed or io.EOF) to a verb other
//     than %w is flagged. The format string is parsed for real — %%,
//     *-widths and explicit [n] argument indexes are handled — so the
//     verb matched to the sentinel is the one that actually formats it.
//     Non-constant format strings are skipped.
//   - A == or != comparison where either operand resolves to a
//     package-level error variable is flagged: use errors.Is (or
//     errors.Is(...) == false) so wrapped errors still match.
//
// Comparisons inside a switch statement's case list are not expanded by
// this analyzer; the codebase does not use value switches on errors.
//
// # Suppression
//
//	//lint:ignore provlint/errwrapsentinel <reason>
//
// The legitimate use of %v on a sentinel is a message that deliberately
// flattens an inner error while a different sentinel is wrapped alongside
// it (e.g. "%w: details: %v" where the %w sentinel carries the contract).
// Suppress those with a reason naming the contract-bearing sentinel.
package errwrapsentinel
