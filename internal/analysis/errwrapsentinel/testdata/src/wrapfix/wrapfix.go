// Package wrapfix is the fixture for errwrapsentinel.
package wrapfix

import (
	"errors"
	"fmt"
	"io"
)

var ErrClosed = errors.New("wrapfix: closed")
var ErrBusy = errors.New("wrapfix: busy")

func stringified(id string) error {
	return fmt.Errorf("open %q: %v", id, ErrClosed) // want "sentinel ErrClosed formatted with %v"
}

func stringifiedS() error {
	return fmt.Errorf("state: %s", ErrBusy) // want "sentinel ErrBusy formatted with %s"
}

func wrapped(id string) error {
	return fmt.Errorf("open %q: %w", id, ErrClosed)
}

func wrappedWithDetail() error {
	//lint:ignore provlint/errwrapsentinel ErrBusy carries the contract via %w; ErrClosed is flattened detail
	return fmt.Errorf("%w: retry later: %v", ErrBusy, ErrClosed)
}

func starWidth(n int) error {
	return fmt.Errorf("pad %*d then %v", n, n, ErrClosed) // want "sentinel ErrClosed formatted with %v"
}

func indexed() error {
	return fmt.Errorf("%[2]s before %[1]w", ErrClosed, "detail")
}

func indexedBad() error {
	return fmt.Errorf("%[2]v after %[1]s", "detail", ErrBusy) // want "sentinel ErrBusy formatted with %v"
}

func percentLiteral() error {
	return fmt.Errorf("100%% done: %w", ErrClosed)
}

func compared(err error) bool {
	return err == io.EOF // want "comparison with sentinel EOF using =="
}

func comparedNeq(err error) bool {
	return err != ErrClosed // want "comparison with sentinel ErrClosed using !="
}

func comparedRight(err error) bool {
	return ErrBusy == err // want "comparison with sentinel ErrBusy using =="
}

func properIs(err error) bool {
	return errors.Is(err, ErrClosed)
}

func nilCheck(err error) bool {
	return err == nil
}

func localNotSentinel() bool {
	local := errors.New("scratch")
	other := errors.New("scratch2")
	return local == other
}
