// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against "// want" expectations embedded in the fixture
// source — the same contract as golang.org/x/tools/go/analysis/analysistest,
// reimplemented on this module's stdlib-only framework.
//
// Fixtures live under <testdata>/src/<pkgpath>/*.go; fixture packages may
// import each other by their path relative to src. A line that should be
// flagged carries a trailing comment of the form
//
//	x := f() // want "regexp matching the diagnostic"
//
// with one quoted regexp per expected diagnostic on that line. Every
// expectation must be matched and every diagnostic must be expected;
// anything else fails the test. Suppression directives
// ("//lint:ignore provlint/<name> reason") are honored, so fixtures can
// also prove that a documented ignore silences its diagnostic.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"provmin/internal/analysis"
)

// expectation is one "want" pattern at a file line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads <testdata>/src, analyzes the named fixture packages with a,
// and reports any mismatch between diagnostics and want expectations as
// test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	prog, err := analysis.Load(analysis.LoadConfig{Dir: filepath.Join(testdata, "src")})
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	byPath := map[string]*analysis.PackageInfo{}
	for _, pi := range prog.Packages {
		byPath[pi.PkgPath] = pi
	}
	for _, path := range pkgpaths {
		pi, ok := byPath[path]
		if !ok {
			t.Errorf("fixture package %q not found under %s/src", path, testdata)
			continue
		}
		findings, err := analysis.RunPackages(prog, []*analysis.PackageInfo{pi}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("analyze %q: %v", path, err)
			continue
		}
		checkExpectations(t, pi, findings)
	}
}

func checkExpectations(t *testing.T, pi *analysis.PackageInfo, findings []analysis.Finding) {
	t.Helper()
	var wants []*expectation
	for _, name := range fixtureFiles(pi) {
		wants = append(wants, parseWants(t, name)...)
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.pattern.MatchString(f.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

func fixtureFiles(pi *analysis.PackageInfo) []string {
	matches, _ := filepath.Glob(filepath.Join(pi.Dir, "*.go"))
	return matches
}

func parseWants(t *testing.T, filename string) []*expectation {
	t.Helper()
	raw, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("read fixture %s: %v", filename, err)
	}
	data := strings.Split(string(raw), "\n")
	var out []*expectation
	for i, line := range data {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range quotedRe.FindAllString(m[1], -1) {
			pat, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", filename, i+1, q, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", filename, i+1, pat, err)
			}
			out = append(out, &expectation{file: filename, line: i + 1, pattern: re})
		}
	}
	return out
}
