package eval

import (
	"testing"

	"provmin/internal/db"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

func TestEvalDirectAgreesWithPolynomialPath(t *testing.T) {
	u := query.MustParseUnion("ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)")
	d := table2()
	val := func(tag string) int {
		return map[string]int{"s1": 2, "s2": 3, "s3": 5, "s4": 7}[tag]
	}
	viaPoly, tuplesPoly, err := EvalInSemiring[int](u, d, semiring.Counting{}, val)
	if err != nil {
		t.Fatal(err)
	}
	direct, tuplesDirect, err := EvalDirect[int](u, d, semiring.Counting{}, val)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuplesPoly) != len(tuplesDirect) {
		t.Fatalf("tuple sets differ: %v vs %v", tuplesPoly, tuplesDirect)
	}
	for k, v := range viaPoly {
		if direct[k] != v {
			t.Errorf("tuple %q: direct=%d poly=%d", k, direct[k], v)
		}
	}
}

func TestEvalDirectBoolean(t *testing.T) {
	u := query.MustParseUnion("ans(x) :- R(x,y), R(y,x)")
	vals, _, err := EvalDirect[bool](u, table2(), semiring.Boolean{}, func(string) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("vals = %v", vals)
	}
	for k, v := range vals {
		if !v {
			t.Errorf("tuple %q should be derivable", k)
		}
	}
}

func TestEvalDirectTropical(t *testing.T) {
	u := query.MustParseUnion("ans(x) :- R(x,y), R(y,x)")
	cost := func(tag string) float64 {
		return map[string]float64{"s1": 1, "s2": 2, "s3": 3, "s4": 4}[tag]
	}
	vals, _, err := EvalDirect[float64](u, table2(), semiring.Tropical{}, cost)
	if err != nil {
		t.Fatal(err)
	}
	// (a): min(1+1, 2+3) = 2; (b): min(4+4, 2+3) = 5.
	if vals[db.Tuple{"a"}.Key()] != 2 {
		t.Errorf("cost(a) = %v, want 2", vals[db.Tuple{"a"}.Key()])
	}
	if vals[db.Tuple{"b"}.Key()] != 5 {
		t.Errorf("cost(b) = %v, want 5", vals[db.Tuple{"b"}.Key()])
	}
}

func TestDerivationsExplainTuple(t *testing.T) {
	u := query.MustParseUnion("ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)")
	ds, err := Derivations(u, table2(), db.Tuple{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("derivations = %v", ds)
	}
	// One from each adjunct, and their monomials sum to the provenance.
	sum := semiring.Zero
	adjSeen := map[int]bool{}
	for _, dv := range ds {
		adjSeen[dv.AdjunctIdx] = true
		sum = sum.AddMonomial(dv.Monomial, 1)
	}
	if !adjSeen[0] || !adjSeen[1] {
		t.Errorf("expected one derivation per adjunct: %v", ds)
	}
	p, err := Provenance(u, table2(), db.Tuple{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equal(p) {
		t.Errorf("derivation monomials sum to %v, provenance is %v", sum, p)
	}
}

func TestDerivationsAbsentTuple(t *testing.T) {
	u := query.MustParseUnion("ans(x) :- R(x,x)")
	ds, err := Derivations(u, table2(), db.Tuple{"zzz"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Errorf("derivations of absent tuple = %v", ds)
	}
}
