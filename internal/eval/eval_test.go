package eval

import (
	"testing"

	"provmin/internal/db"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

// table2 builds relation R of Table 2 with its provenance column.
func table2() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "b")
	return d
}

// table4 builds database D of the Lemma 3.6 proof (Table 4 + S = {(a):s0}).
func table4() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "b")
	d.MustAdd("R", "s2", "b", "a")
	d.MustAdd("R", "s3", "a", "a")
	d.MustAdd("S", "s0", "a")
	return d
}

// table5 builds database D' of the Lemma 3.6 proof (Table 5 + S = {(a):s0}).
func table5() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "t1", "a", "b")
	d.MustAdd("R", "t2", "b", "c")
	d.MustAdd("R", "t3", "c", "a")
	d.MustAdd("R", "t4", "a", "a")
	d.MustAdd("S", "s0", "a")
	return d
}

const (
	qUnionText = "ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)"
	qConjText  = "ans(x) :- R(x,y), R(y,x)"
	qNoPminTxt = "ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x2"
	qAltText   = "ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x3"
)

func mustProv(t *testing.T, res *Result, tuple db.Tuple) semiring.Polynomial {
	t.Helper()
	p, ok := res.Lookup(tuple)
	if !ok {
		t.Fatalf("tuple %v not in result:\n%s", tuple, res)
	}
	return p
}

func TestExample213QunionReproducesTable3(t *testing.T) {
	u := query.MustParseUnion(qUnionText)
	res, err := EvalUCQ(u, table2())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("result:\n%s", res)
	}
	// Table 3: (a) -> s2*s3 + s1, (b) -> s3*s2 + s4.
	if got, want := mustProv(t, res, db.Tuple{"a"}), semiring.MustParsePolynomial("s2*s3 + s1"); !got.Equal(want) {
		t.Errorf("prov(a) = %v, want %v", got, want)
	}
	if got, want := mustProv(t, res, db.Tuple{"b"}), semiring.MustParsePolynomial("s2*s3 + s4"); !got.Equal(want) {
		t.Errorf("prov(b) = %v, want %v", got, want)
	}
}

func TestExample214QconjProvenance(t *testing.T) {
	q := query.MustParse(qConjText)
	res, err := EvalCQ(q, table2())
	if err != nil {
		t.Fatal(err)
	}
	// Example 2.14: (a) -> s2*s3 + s1*s1, (b) -> s3*s2 + s4*s4.
	if got, want := mustProv(t, res, db.Tuple{"a"}), semiring.MustParsePolynomial("s2*s3 + s1^2"); !got.Equal(want) {
		t.Errorf("prov(a) = %v, want %v", got, want)
	}
	if got, want := mustProv(t, res, db.Tuple{"b"}), semiring.MustParsePolynomial("s2*s3 + s4^2"); !got.Equal(want) {
		t.Errorf("prov(b) = %v, want %v", got, want)
	}
}

func TestExample34BooleanQueries(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "s", "a")
	q := query.MustParse("ans() :- R(x), R(y)")
	qp := query.MustParse("ans() :- R(x)")
	res, err := EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustProv(t, res, db.Tuple{}), semiring.MustParsePolynomial("s^2"); !got.Equal(want) {
		t.Errorf("prov(Q) = %v, want s^2", got)
	}
	resP, err := EvalCQ(qp, d)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustProv(t, resP, db.Tuple{}), semiring.MustParsePolynomial("s"); !got.Equal(want) {
		t.Errorf("prov(Q') = %v, want s", got)
	}
}

func TestLemma36ProvenanceOnD(t *testing.T) {
	d := table4()
	resNoPmin, err := EvalCQ(query.MustParse(qNoPminTxt), d)
	if err != nil {
		t.Fatal(err)
	}
	// 2*(s1)^2*(s2)^2*s3*s0 + s1*s2*(s3)^3*s0
	want := semiring.MustParsePolynomial("2*s0*s1^2*s2^2*s3 + s0*s1*s2*s3^3")
	if got := mustProv(t, resNoPmin, db.Tuple{}); !got.Equal(want) {
		t.Errorf("P(QnoPmin, D) = %v, want %v", got, want)
	}
	resAlt, err := EvalCQ(query.MustParse(qAltText), d)
	if err != nil {
		t.Fatal(err)
	}
	// (s1)^2*(s2)^2*s3*s0 + s1*s2*(s3)^3*s0 — strictly smaller.
	wantAlt := semiring.MustParsePolynomial("s0*s1^2*s2^2*s3 + s0*s1*s2*s3^3")
	if got := mustProv(t, resAlt, db.Tuple{}); !got.Equal(wantAlt) {
		t.Errorf("P(Qalt, D) = %v, want %v", got, wantAlt)
	}
}

func TestLemma36ProvenanceOnDPrime(t *testing.T) {
	d := table5()
	resNoPmin, err := EvalCQ(query.MustParse(qNoPminTxt), d)
	if err != nil {
		t.Fatal(err)
	}
	want := semiring.MustParsePolynomial("s0*t1*t2*t3*t4^2")
	if got := mustProv(t, resNoPmin, db.Tuple{}); !got.Equal(want) {
		t.Errorf("P(QnoPmin, D') = %v, want %v", got, want)
	}
	resAlt, err := EvalCQ(query.MustParse(qAltText), d)
	if err != nil {
		t.Fatal(err)
	}
	// Two equal monomials: strictly greater than QnoPmin's provenance.
	wantAlt := semiring.MustParsePolynomial("2*s0*t1*t2*t3*t4^2")
	if got := mustProv(t, resAlt, db.Tuple{}); !got.Equal(wantAlt) {
		t.Errorf("P(Qalt, D') = %v, want %v", got, wantAlt)
	}
}

func TestExample52TriangleQuery(t *testing.T) {
	// Q̂ over D̂ (Table 6): s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5.
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "c")
	d.MustAdd("R", "s5", "c", "a")
	q := query.MustParse("ans() :- R(x,y), R(y,z), R(z,x)")
	res, err := EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	want := semiring.MustParsePolynomial("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
	if got := mustProv(t, res, db.Tuple{}); !got.Equal(want) {
		t.Errorf("P(Q̂, D̂) = %v, want %v", got, want)
	}
}

func TestEvalWithConstants(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "b")
	d.MustAdd("R", "s2", "b", "b")
	q := query.MustParse("ans(x) :- R(x,'b'), x != 'b'")
	res, err := EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Contains(db.Tuple{"a"}) {
		t.Fatalf("result:\n%s", res)
	}
}

func TestEvalHeadConstant(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "b", "a")
	q := query.MustParse("ans('b','a') :- R('b','a')")
	res, err := EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(db.Tuple{"b", "a"}) {
		t.Fatalf("result:\n%s", res)
	}
}

func TestEvalDiseqVarConst(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a")
	d.MustAdd("R", "s2", "b")
	q := query.MustParse("ans(x) :- R(x), x != 'a'")
	res, err := EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Contains(db.Tuple{"b"}) {
		t.Fatalf("result:\n%s", res)
	}
}

func TestEvalMissingRelationIsEmpty(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a")
	q := query.MustParse("ans(x) :- R(x), Nope(x)")
	res, err := EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("result should be empty:\n%s", res)
	}
}

func TestEvalArityMismatchFails(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "b")
	q := query.MustParse("ans(x) :- R(x)")
	if _, err := EvalCQ(q, d); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestEvalOrderInvariance(t *testing.T) {
	// The provenance result must not depend on the join strategy, the
	// nested-loop join-order heuristic or the per-column index. Join must
	// be pinned explicitly: without it every variant would silently take
	// the (default) hash-join path and compare it against itself.
	d := table4()
	q := query.MustParse(qNoPminTxt)
	greedy, err := EvalCQOpts(q, d, Options{Join: JoinNestedLoop, Order: OrderGreedy})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := EvalCQOpts(q, d, Options{Join: JoinNestedLoop, Order: OrderAsWritten})
	if err != nil {
		t.Fatal(err)
	}
	noIndex, err := EvalCQOpts(q, d, Options{Join: JoinNestedLoop, Order: OrderGreedy, NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := EvalCQOpts(q, d, Options{Join: JoinHash})
	if err != nil {
		t.Fatal(err)
	}
	if !greedy.SameAnnotated(naive) || !greedy.SameAnnotated(noIndex) || !greedy.SameAnnotated(hash) {
		t.Errorf("evaluation options changed the result:\n%s\nvs\n%s\nvs\n%s\nvs\n%s", greedy, naive, noIndex, hash)
	}
}

func TestForEachAssignmentCount(t *testing.T) {
	// Example 2.7: Qunion has two assignments per adjunct over Table 2.
	u := query.MustParseUnion(qUnionText)
	counts := make([]int, len(u.Adjuncts))
	for i, q := range u.Adjuncts {
		n := 0
		if err := ForEachAssignment(q, table2(), Options{}, func(Assignment) error {
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		counts[i] = n
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("assignment counts = %v, want [2 2]", counts)
	}
}

func TestProvenanceHelper(t *testing.T) {
	u := query.MustParseUnion(qUnionText)
	p, err := Provenance(u, table2(), db.Tuple{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(semiring.MustParsePolynomial("s1 + s2*s3")) {
		t.Errorf("Provenance = %v", p)
	}
	zero, err := Provenance(u, table2(), db.Tuple{"zzz"})
	if err != nil {
		t.Fatal(err)
	}
	if !zero.IsZero() {
		t.Errorf("Provenance of absent tuple = %v", zero)
	}
}

func TestEvalInSemiringCounting(t *testing.T) {
	u := query.MustParseUnion(qConjText)
	vals, tuples, err := EvalInSemiring[int](u, table2(), semiring.Counting{}, func(string) int { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("tuples = %v", tuples)
	}
	// Each tuple of Qconj has exactly two derivations over Table 2.
	for k, v := range vals {
		if v != 2 {
			t.Errorf("derivations[%q] = %d, want 2", k, v)
		}
	}
}

func TestSelfJoinSameAtomTwice(t *testing.T) {
	// Both atoms map to the same tuple: annotation must be squared.
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	q := query.MustParse("ans() :- R(x,y), R(y,x)")
	res, err := EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustProv(t, res, db.Tuple{}); !got.Equal(semiring.MustParsePolynomial("s1^2")) {
		t.Errorf("prov = %v, want s1^2", got)
	}
}

func TestCrossProductNoSharedVars(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "r1", "a")
	d.MustAdd("R", "r2", "b")
	d.MustAdd("S", "t1", "x")
	q := query.MustParse("ans() :- R(u), S(v)")
	res, err := EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	want := semiring.MustParsePolynomial("r1*t1 + r2*t1")
	if got := mustProv(t, res, db.Tuple{}); !got.Equal(want) {
		t.Errorf("prov = %v, want %v", got, want)
	}
}
