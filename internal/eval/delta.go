package eval

import (
	"provmin/internal/db"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

// EvalUCQDelta computes the semiring delta of a UCQ under a purely-additive
// update: the monomials that the inserted facts add to the result, and
// nothing else. N[X] provenance is additive for monotone queries, so
// eval(old) + delta == eval(new) tuple-for-tuple and coefficient-for-
// coefficient; the engine's result cache uses this to promote entries
// across a generation instead of invalidating them.
//
// d must be the POST-insert instance. oldLen maps every relation the batch
// touched to its pre-insert row count (0 for relations the batch created);
// relations absent from oldLen are unchanged. Ingest only ever appends, so
// rows [oldLen[r], Len) of a touched relation are exactly the inserted
// facts. The caller must guarantee the batch replaced no existing tuple's
// tag (such a batch is a mutation, not an insertion, and has no additive
// delta).
//
// Each adjunct expands into one delta term per body atom over a touched
// relation, using the standard partition that counts every new assignment
// exactly once — by the position of its FIRST delta row: in term i, atoms
// before i range over their pre-insert prefix, atom i over the inserted
// rows, and atoms after i over the full post-insert relation. (Binding
// every non-delta atom to the full instance, as a naive reading of the
// delta rules suggests, would double-count assignments that use two or
// more inserted rows.) Disequalities only filter assignments and never
// depend on the instance, so they pass through the partition unchanged.
func EvalUCQDelta(u *query.UCQ, d *db.Instance, oldLen map[string]int) (*Result, error) {
	return EvalUCQDeltaOpts(u, d, oldLen, Options{})
}

// EvalUCQDeltaOpts is EvalUCQDelta with explicit evaluation options: the
// delta windows run on the interned enumerator when the instance carries
// symbol ids, with opts.NoIntern forcing the string enumerator for the
// differential tests.
func EvalUCQDeltaOpts(u *query.UCQ, d *db.Instance, oldLen map[string]int, opts Options) (*Result, error) {
	res := newResult()
	for _, q := range u.Adjuncts {
		if err := deltaCQInto(res, q, d, oldLen, opts); err != nil {
			return nil, err
		}
	}
	res.finish()
	return res, nil
}

func deltaCQInto(res *Result, q *query.CQ, d *db.Instance, oldLen map[string]int, opts Options) error {
	if err := validateCQ(q, d); err != nil {
		return err
	}
	interned := !opts.NoIntern && !opts.NoIndex && internedAvailable(q, d)
	for i, at := range q.Atoms {
		lo, touched := oldLen[at.Rel]
		if !touched {
			continue
		}
		rel := d.Lookup(at.Rel)
		if rel == nil || rel.Len() <= lo {
			continue // no rows actually appended
		}
		ranges := make([]rowRange, len(q.Atoms))
		for j, bt := range q.Atoms {
			switch {
			case j == i:
				ranges[j] = rowRange{lo: lo, hi: rel.Len()}
			case j < i:
				if bl, ok := oldLen[bt.Rel]; ok {
					ranges[j] = rowRange{lo: 0, hi: bl}
				} else {
					ranges[j] = rowRange{lo: 0, hi: -1}
				}
			default:
				ranges[j] = rowRange{lo: 0, hi: -1}
			}
		}
		// The delta window is typically tiny relative to the relation, so
		// start enumeration there and let the greedy order arrange the rest
		// around its bindings; the general planner would order by relation
		// size and bury the most selective atom.
		if interned {
			if err := internedEnumEval(res, q, d, deltaAtomOrder(q, i), ranges); err != nil {
				return err
			}
			continue
		}
		e := &enumerator{q: q, d: d, order: deltaAtomOrder(q, i), ranges: ranges,
			fn: func(a Assignment) error {
				res.add(headTuple(q, a.Binding), semiring.FromMonomial(assignmentMonomial(q, d, a), 1))
				return nil
			},
			binding: map[string]string{}, rows: make([]int, len(q.Atoms))}
		if err := e.extend(0); err != nil {
			return err
		}
	}
	return nil
}

// deltaAtomOrder is atomOrder's greedy heuristic with the delta-bound atom
// forced first: its row window is the batch size, almost always the most
// selective starting point.
func deltaAtomOrder(q *query.CQ, deltaIdx int) []int {
	n := len(q.Atoms)
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := map[string]bool{}
	take := func(i int) {
		order = append(order, i)
		used[i] = true
		for _, a := range q.Atoms[i].Args {
			if !a.Const {
				bound[a.Name] = true
			}
		}
	}
	take(deltaIdx)
	for len(order) < n {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := 0
			for _, a := range q.Atoms[i].Args {
				if a.Const || bound[a.Name] {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		take(best)
	}
	return order
}
