package eval

import (
	"slices"
	"strings"

	"provmin/internal/db"
	"provmin/internal/semiring"
)

// OutTuple is one output tuple with its provenance annotation.
type OutTuple struct {
	Tuple db.Tuple
	Prov  semiring.Polynomial
}

// Result is an annotated query result: a set of tuples, each with its
// provenance polynomial, in canonical (sorted) order.
//
// While a result is being built, repeated contributions to one tuple are
// buffered as raw monomial terms (pend) and merged into the canonical
// polynomial once, at finish time. Merging per Add would copy the whole
// polynomial each time — quadratic in the number of witnesses per tuple,
// and the dominant cost of evaluating cyclic queries on dense graphs.
type Result struct {
	tuples []OutTuple
	keys   []string // tuples[i].Tuple.Key(), computed once per tuple
	byKey  map[string]int
	pend   [][]semiring.MonomialTerm // unmerged contributions, parallel to tuples
}

func newResult() *Result { return &Result{byKey: map[string]int{}} }

// NewResult creates an empty annotated result for external producers (the
// algebra evaluator builds results tuple by tuple). Call Add for each tuple
// contribution and Finish once before handing the result out.
func NewResult() *Result { return newResult() }

// Add accumulates provenance p onto tuple t.
func (r *Result) Add(t db.Tuple, p semiring.Polynomial) { r.add(t, p) }

// Finish puts the result into canonical order; required after the last Add.
func (r *Result) Finish() { r.finish() }

func (r *Result) add(t db.Tuple, p semiring.Polynomial) {
	k := t.Key()
	if i, ok := r.byKey[k]; ok {
		r.pend[i] = append(r.pend[i], p.Terms()...)
		return
	}
	r.byKey[k] = len(r.tuples)
	r.tuples = append(r.tuples, OutTuple{Tuple: t.Clone(), Prov: p})
	r.keys = append(r.keys, k)
	r.pend = append(r.pend, nil)
}

// addWitness accumulates one assignment's monomial onto tuple t without
// first wrapping it in a single-term polynomial — the emit hot path.
func (r *Result) addWitness(t db.Tuple, m semiring.Monomial) {
	k := t.Key()
	if i, ok := r.byKey[k]; ok {
		r.pend[i] = append(r.pend[i], semiring.MonomialTerm{Monomial: m, Coef: 1})
		return
	}
	r.byKey[k] = len(r.tuples)
	r.tuples = append(r.tuples, OutTuple{Tuple: t.Clone(), Prov: semiring.FromMonomial(m, 1)})
	r.keys = append(r.keys, k)
	r.pend = append(r.pend, nil)
}

// flush merges tuple i's buffered contributions into its polynomial.
func (r *Result) flush(i int) {
	if i >= len(r.pend) || len(r.pend[i]) == 0 {
		return
	}
	r.tuples[i].Prov = r.tuples[i].Prov.AddTerms(r.pend[i])
	r.pend[i] = nil
}

// merge folds every tuple of o — buffered contributions included — into r.
// Used to combine per-worker partial results after a parallel emit; o must
// not be used afterwards (r takes over its tuples and buffers).
func (r *Result) merge(o *Result) {
	for i, ot := range o.tuples {
		k := o.keys[i]
		if j, ok := r.byKey[k]; ok {
			r.pend[j] = append(r.pend[j], ot.Prov.Terms()...)
			r.pend[j] = append(r.pend[j], o.pend[i]...)
			continue
		}
		r.byKey[k] = len(r.tuples)
		r.tuples = append(r.tuples, ot)
		r.keys = append(r.keys, k)
		r.pend = append(r.pend, o.pend[i])
	}
}

// finish puts tuples in canonical order for deterministic output. Sorting
// goes through a permutation over the cached keys, so Tuple.Key (which
// joins the tuple's values into a fresh string) is never re-derived in the
// comparator.
func (r *Result) finish() {
	for i := range r.tuples {
		r.flush(i)
	}
	perm := make([]int, len(r.tuples))
	for i := range perm {
		perm[i] = i
	}
	slices.SortFunc(perm, func(a, b int) int { return strings.Compare(r.keys[a], r.keys[b]) })
	tuples := make([]OutTuple, len(r.tuples))
	keys := make([]string, len(r.keys))
	for i, j := range perm {
		tuples[i] = r.tuples[j]
		keys[i] = r.keys[j]
		r.byKey[keys[i]] = i
	}
	r.tuples, r.keys = tuples, keys
	r.pend = make([][]semiring.MonomialTerm, len(r.tuples))
}

// Len returns the number of distinct output tuples.
func (r *Result) Len() int { return len(r.tuples) }

// Tuples returns the output tuples in canonical order. Do not modify.
func (r *Result) Tuples() []OutTuple { return r.tuples }

// Lookup returns the provenance of t and whether t is in the result.
func (r *Result) Lookup(t db.Tuple) (semiring.Polynomial, bool) {
	if i, ok := r.byKey[t.Key()]; ok {
		r.flush(i) // valid mid-build too, before finish re-sorts indices
		return r.tuples[i].Prov, true
	}
	return semiring.Zero, false
}

// Contains reports membership of the tuple in the result.
func (r *Result) Contains(t db.Tuple) bool {
	_, ok := r.byKey[t.Key()]
	return ok
}

// SameTuples reports whether two results contain exactly the same tuple sets
// (ignoring provenance) — i.e. equality under set semantics.
func (r *Result) SameTuples(o *Result) bool {
	if r.Len() != o.Len() {
		return false
	}
	for _, t := range r.tuples {
		if !o.Contains(t.Tuple) {
			return false
		}
	}
	return true
}

// SameAnnotated reports whether two results agree on tuples and provenance.
func (r *Result) SameAnnotated(o *Result) bool {
	if !r.SameTuples(o) {
		return false
	}
	for _, t := range r.tuples {
		p, _ := o.Lookup(t.Tuple)
		if !t.Prov.Equal(p) {
			return false
		}
	}
	return true
}

// TotalProvenanceSize sums Polynomial.Size over all output tuples; the
// compactness experiments report this measure.
func (r *Result) TotalProvenanceSize() int {
	n := 0
	for _, t := range r.tuples {
		n += t.Prov.Size()
	}
	return n
}

// String renders the result as a small table, tuples in canonical order.
func (r *Result) String() string {
	var b strings.Builder
	for _, t := range r.tuples {
		b.WriteString(t.Tuple.String())
		b.WriteString("  ")
		b.WriteString(t.Prov.String())
		b.WriteByte('\n')
	}
	return b.String()
}
