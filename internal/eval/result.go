package eval

import (
	"sort"
	"strings"

	"provmin/internal/db"
	"provmin/internal/semiring"
)

// OutTuple is one output tuple with its provenance annotation.
type OutTuple struct {
	Tuple db.Tuple
	Prov  semiring.Polynomial
}

// Result is an annotated query result: a set of tuples, each with its
// provenance polynomial, in canonical (sorted) order.
type Result struct {
	tuples []OutTuple
	byKey  map[string]int
}

func newResult() *Result { return &Result{byKey: map[string]int{}} }

// NewResult creates an empty annotated result for external producers (the
// algebra evaluator builds results tuple by tuple). Call Add for each tuple
// contribution and Finish once before handing the result out.
func NewResult() *Result { return newResult() }

// Add accumulates provenance p onto tuple t.
func (r *Result) Add(t db.Tuple, p semiring.Polynomial) { r.add(t, p) }

// Finish puts the result into canonical order; required after the last Add.
func (r *Result) Finish() { r.finish() }

func (r *Result) add(t db.Tuple, p semiring.Polynomial) {
	if i, ok := r.byKey[t.Key()]; ok {
		r.tuples[i].Prov = r.tuples[i].Prov.Add(p)
		return
	}
	r.byKey[t.Key()] = len(r.tuples)
	r.tuples = append(r.tuples, OutTuple{Tuple: t.Clone(), Prov: p})
}

// finish puts tuples in canonical order for deterministic output.
func (r *Result) finish() {
	sort.Slice(r.tuples, func(i, j int) bool {
		return r.tuples[i].Tuple.Key() < r.tuples[j].Tuple.Key()
	})
	for i, t := range r.tuples {
		r.byKey[t.Tuple.Key()] = i
	}
}

// Len returns the number of distinct output tuples.
func (r *Result) Len() int { return len(r.tuples) }

// Tuples returns the output tuples in canonical order. Do not modify.
func (r *Result) Tuples() []OutTuple { return r.tuples }

// Lookup returns the provenance of t and whether t is in the result.
func (r *Result) Lookup(t db.Tuple) (semiring.Polynomial, bool) {
	if i, ok := r.byKey[t.Key()]; ok {
		return r.tuples[i].Prov, true
	}
	return semiring.Zero, false
}

// Contains reports membership of the tuple in the result.
func (r *Result) Contains(t db.Tuple) bool {
	_, ok := r.byKey[t.Key()]
	return ok
}

// SameTuples reports whether two results contain exactly the same tuple sets
// (ignoring provenance) — i.e. equality under set semantics.
func (r *Result) SameTuples(o *Result) bool {
	if r.Len() != o.Len() {
		return false
	}
	for _, t := range r.tuples {
		if !o.Contains(t.Tuple) {
			return false
		}
	}
	return true
}

// SameAnnotated reports whether two results agree on tuples and provenance.
func (r *Result) SameAnnotated(o *Result) bool {
	if !r.SameTuples(o) {
		return false
	}
	for _, t := range r.tuples {
		p, _ := o.Lookup(t.Tuple)
		if !t.Prov.Equal(p) {
			return false
		}
	}
	return true
}

// TotalProvenanceSize sums Polynomial.Size over all output tuples; the
// compactness experiments report this measure.
func (r *Result) TotalProvenanceSize() int {
	n := 0
	for _, t := range r.tuples {
		n += t.Prov.Size()
	}
	return n
}

// String renders the result as a small table, tuples in canonical order.
func (r *Result) String() string {
	var b strings.Builder
	for _, t := range r.tuples {
		b.WriteString(t.Tuple.String())
		b.WriteString("  ")
		b.WriteString(t.Prov.String())
		b.WriteByte('\n')
	}
	return b.String()
}
