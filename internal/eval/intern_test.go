package eval

import (
	"fmt"
	"testing"

	"provmin/internal/db"
	"provmin/internal/query"
	"provmin/internal/workload"
)

// evalAllModes evaluates u under every evaluator configuration — interned
// hash join (with and without statistics, sequential and forced-parallel),
// string-keyed hash join, interned enumerator and string nested loop — and
// fails unless all rendered results are byte-identical. This is the
// equivalence contract the engine's result cache and the ablation
// benchmarks depend on.
func evalAllModes(t *testing.T, u *query.UCQ, d *db.Instance) string {
	t.Helper()
	modes := []struct {
		name string
		opts Options
	}{
		{"interned-hash", Options{Join: JoinHash}},
		{"interned-hash-nostats", Options{Join: JoinHash, NoStats: true}},
		{"interned-hash-parallel", Options{Join: JoinHash, Parallelism: 4, ParallelThreshold: 1}},
		{"string-hash", Options{Join: JoinHash, NoIntern: true}},
		{"nested-loop", Options{Join: JoinNestedLoop}},
		{"nested-loop-noindex", Options{Join: JoinNestedLoop, NoIndex: true}},
	}
	var want string
	for i, m := range modes {
		res, err := EvalUCQOpts(u, d, m.opts)
		if err != nil {
			t.Fatalf("%s eval of %s: %v", m.name, u, err)
		}
		if i == 0 {
			want = res.String()
			continue
		}
		if got := res.String(); got != want {
			t.Errorf("%s diverges from %s on %s:\n%s\nvs\n%s",
				m.name, modes[0].name, u, got, want)
		}
	}
	return want
}

func TestInternedMatchesStringFixed(t *testing.T) {
	forceHashJoin(t)
	d := db.NewInstance()
	d.MustAdd("R", "r1", "a", "a")
	d.MustAdd("R", "r2", "a", "b")
	d.MustAdd("R", "r3", "b", "a")
	d.MustAdd("R", "r4", "b", "c")
	d.MustAdd("R", "r5", "", "a") // the empty string is a legal value
	d.MustAdd("S", "s1", "a")
	d.MustAdd("S", "s2", "c")
	d.MustAdd("S", "s3", "")
	d.MustAdd("T", "t1", "x", "y", "z")

	cases := []string{
		"ans(x) :- R(x,y), R(y,x)",
		"ans(x) :- R(x,x)",
		"ans(x,y) :- R(x,z), R(z,y)",
		"ans(x) :- R(x,y), S(y)",
		"ans(x) :- R(x,'a')",
		"ans(x) :- R('a',x), R(x,'a')",
		"ans(x) :- R(x,'zzz')",            // constant the instance never stored
		"ans(x) :- R(x,y), x != 'zzz'",    // diseq against an unstored constant
		"ans(x) :- R(x,y), S(x), y != ''", // diseq against the empty string
		"ans(x) :- R('',x)",               // empty-string constant
		"ans(x,y) :- R(x,y), x != y",
		"ans(x,u) :- R(x,y), S(u)", // cross product
		"ans() :- R(x,y), R(y,z), R(z,x)",
		"ans(x) :- R(x,y), R(y,z), R(z,w), w != x",
		"ans(x) :- R(x,y); ans(x) :- R(y,x)",
		"ans(x) :- R(x,y), S(y); ans(x) :- R(x,x)",
		"ans(x) :- Missing(x)",
		"ans(x) :- R(x,y), Missing(y)",
		"ans(x,y,z) :- T(x,y,z)",
		"ans('k') :- R(x,x)", // constant head
		"ans(x) :- R(x,y), R(x,z), y != z",
		"ans(x) :- R(x,y), R(y,z), R(x,z)",
		"ans(x) :- R(x,y), S(x), S(y)",
		"ans(x,y) :- R(x,y), x != y, y != 'c', x != 'b'",
		"ans(x,y,z,w) :- R(x,y), R(y,z), R(z,w)", // 3 join vars: wide key path
	}
	for _, qt := range cases {
		u, err := query.ParseUnion(qt)
		if err != nil {
			t.Fatalf("%s: %v", qt, err)
		}
		evalAllModes(t, u, d)
	}
}

// TestInternedMatchesStringRandom sweeps random unions over random
// instances through every evaluator mode.
func TestInternedMatchesStringRandom(t *testing.T) {
	forceHashJoin(t)
	params := workload.DefaultParams()
	params.NumAtoms = 4
	params.NumVars = 5
	params.NumRels = 3
	for seed := int64(0); seed < 30; seed++ {
		d := db.NewInstance()
		g := db.NewGenerator(seed)
		g.RandomRelation(d, "R1", 2, 20, 6)
		g.RandomRelation(d, "R2", 2, 15, 6)
		g.RandomRelation(d, "R3", 2, 10, 6)
		u := workload.RandomUCQ(seed, int(seed%3)+1, params)
		evalAllModes(t, u, d)
	}
}

// TestDeltaInternedMatchesString: the delta maintainer must produce the
// same delta on interned and string keys, and old + delta must equal a
// fresh evaluation — per mode — or promoted cache entries drift.
func TestDeltaInternedMatchesString(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		d := db.NewInstance()
		g := db.NewGenerator(seed)
		g.RandomGraph(d, "R", 10, 25)
		g.RandomRelation(d, "S", 1, 8, 10)
		u := query.MustParseUnion(
			"ans(x,z) :- R(x,y), R(y,z), S(x); ans(x,x) :- R(x,x)")
		old, err := EvalUCQ(u, d)
		if err != nil {
			t.Fatal(err)
		}
		oldLen := map[string]int{"R": d.Lookup("R").Len(), "S": d.Lookup("S").Len()}
		// Append rows that cannot already exist (values nK are outside the
		// generator's domain): the delta contract covers insertions only, a
		// tag overwrite would make the batch a mutation.
		for i := 0; i < 4; i++ {
			d.MustAdd("R", fmt.Sprintf("nr%d", i), fmt.Sprintf("d%d", i), fmt.Sprintf("n%d", i))
			d.MustAdd("R", fmt.Sprintf("nb%d", i), fmt.Sprintf("n%d", i), fmt.Sprintf("d%d", i+2))
		}
		d.MustAdd("R", "nloop", "n1", "n1")
		d.MustAdd("S", "sx", "n1")

		interned, err := EvalUCQDeltaOpts(u, d, oldLen, Options{})
		if err != nil {
			t.Fatal(err)
		}
		str, err := EvalUCQDeltaOpts(u, d, oldLen, Options{NoIntern: true})
		if err != nil {
			t.Fatal(err)
		}
		if interned.String() != str.String() {
			t.Fatalf("seed %d: interned delta diverges from string delta:\n%s\nvs\n%s",
				seed, interned, str)
		}
		sum := newResult()
		for _, ot := range old.Tuples() {
			sum.add(ot.Tuple, ot.Prov)
		}
		for _, ot := range interned.Tuples() {
			sum.add(ot.Tuple, ot.Prov)
		}
		sum.finish()
		fresh, err := EvalUCQ(u, d)
		if err != nil {
			t.Fatal(err)
		}
		if !fresh.SameAnnotated(sum) {
			t.Fatalf("seed %d: old + interned delta != fresh eval:\n%s\nvs\n%s",
				seed, sum, fresh)
		}
	}
}

// TestParallelJoinStress drives the parallel probe and emit hard enough to
// matter under -race: large probe sets, many workers, tiny threshold, and
// every result compared byte-for-byte against the sequential evaluator.
// CI runs this in a dedicated -race step.
func TestParallelJoinStress(t *testing.T) {
	queries := []string{
		"ans(x,y,z) :- R(x,y), R(y,z), R(z,x)",
		"ans(x,w) :- R(x,y), R(y,z), R(z,w)",
		"ans(x,y) :- R(x,y), R(y,z), x != z",
	}
	for seed := int64(0); seed < 4; seed++ {
		d := db.NewInstance()
		db.NewGenerator(seed).RandomGraph(d, "R", 40, 400)
		for _, qt := range queries {
			u := query.MustParseUnion(qt)
			seq, err := EvalUCQOpts(u, d, Options{Join: JoinHash, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 8} {
				got, err := EvalUCQOpts(u, d, Options{
					Join: JoinHash, Parallelism: par, ParallelThreshold: 1})
				if err != nil {
					t.Fatal(err)
				}
				if got.String() != seq.String() {
					t.Fatalf("seed %d par %d: parallel join diverges on %s", seed, par, qt)
				}
			}
		}
	}
}

// TestPlanOrderCostUsesDistincts: two join candidates of identical size —
// indistinguishable to the size-based planner — are ranked by their join
// column's distinct count. Joining Seed through Keyed (distinct keys,
// ~1 match per binding) before Skewed (5 distinct values, ~20 matches)
// keeps the intermediate result small.
func TestPlanOrderCostUsesDistincts(t *testing.T) {
	d := db.NewInstance()
	for i := 0; i < 10; i++ {
		d.MustAdd("Seed", fmt.Sprintf("s%d", i), fmt.Sprintf("k%d", i))
	}
	for i := 0; i < 100; i++ {
		d.MustAdd("Skewed", fmt.Sprintf("f%d", i), fmt.Sprintf("k%d", i%5), fmt.Sprintf("p%d", i))
		d.MustAdd("Keyed", fmt.Sprintf("g%d", i), fmt.Sprintf("k%d", i), fmt.Sprintf("q%d", i))
	}
	// Body order puts Skewed before Keyed, so a size-based tie keeps it
	// there; only the distinct-count division can flip the order.
	q := query.MustParse("ans(x,z,w) :- Seed(x), Skewed(x,z), Keyed(x,w)")
	order, ok := planOrderCost(q, d)
	if !ok {
		t.Fatal("instance relations must have statistics")
	}
	if order[0] != 0 || order[1] != 2 {
		t.Errorf("cost order %v: want Seed then the key-joined atom [0 2 1]", order)
	}
	if szOrder := planOrder(q, d); szOrder[1] != 1 {
		t.Errorf("size order %v: expected the size tie to keep body order — if the "+
			"size planner distinguishes these atoms the cost test above is vacuous", szOrder)
	}

	// Standalone relations carry no sketches: the cost planner must decline
	// so the hash join falls back to the size-based order.
	free := db.NewRelation("F", 1)
	_ = free
	if _, ok := planOrderCost(query.MustParse("ans(x) :- Nope(x)"), d); !ok {
		t.Log("absent relation handled by cost planner") // absent rel is fine: est 0
	}
}

// TestInternedErrorParity pins that the interned paths reject malformed
// queries with the same wording as the string paths (the server's HTTP
// status mapping matches on it).
func TestInternedErrorParity(t *testing.T) {
	forceHashJoin(t)
	d := db.NewInstance()
	d.MustAdd("R", "r1", "a", "b")
	u := query.MustParseUnion("ans(x) :- R(x,y,z)") // arity mismatch
	_, errInterned := EvalUCQOpts(u, d, Options{Join: JoinHash})
	_, errString := EvalUCQOpts(u, d, Options{Join: JoinHash, NoIntern: true})
	if errInterned == nil || errString == nil {
		t.Fatalf("arity mismatch accepted: interned=%v string=%v", errInterned, errString)
	}
	if errInterned.Error() != errString.Error() {
		t.Errorf("error wording diverges:\n%q\nvs\n%q", errInterned, errString)
	}
}
