// Package eval implements provenance-aware evaluation of conjunctive
// queries and unions over annotated instances, following Def. 2.6
// (assignments) and Def. 2.12 (provenance of query results): the provenance
// of an output tuple t is the sum, over all assignments yielding t, of the
// product of the annotations of the tuples the assignment uses.
//
// Results are compared byte-for-byte across the cold, cached, maintained
// and parallel paths, so this package is canonical: no map iteration
// order, clock value or RNG draw may reach its output.
//
//provlint:canonical
package eval

import (
	"fmt"

	"provmin/internal/db"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

// AtomOrder selects the join-order heuristic for assignment enumeration.
type AtomOrder int

const (
	// OrderGreedy reorders atoms so each step binds as many already-bound
	// variables as possible (most-constrained-first). The default.
	OrderGreedy AtomOrder = iota
	// OrderAsWritten enumerates atoms in the body order of the query. Used
	// by the evaluator ablation benchmark.
	OrderAsWritten
)

// JoinStrategy selects how conjuncts are combined.
type JoinStrategy int

const (
	// JoinHash joins conjuncts set-at-a-time with hash joins on their
	// shared variables, ordered by a selectivity planner (hashjoin.go).
	// The default. Conjuncts with fewer than hashJoinMinAtoms atoms fall
	// back to the enumerator: below that the hash build cost exceeds the
	// join it saves.
	JoinHash JoinStrategy = iota
	// JoinNestedLoop enumerates assignments tuple-at-a-time with the
	// backtracking enumerator — the ablation baseline, and the engine
	// behind ForEachAssignment.
	JoinNestedLoop
)

// hashJoinMinAtoms is the conjunct size from which JoinHash actually hash
// joins; smaller conjuncts do at most one join, where the tuple-at-a-time
// enumerator is measurably cheaper (no per-relation hash build). A
// variable so the differential tests can force the hash path on small
// queries too.
var hashJoinMinAtoms = 3

// Options configures evaluation.
type Options struct {
	Join    JoinStrategy
	Order   AtomOrder // nested-loop only: atom-order heuristic
	NoIndex bool      // nested-loop only: disable the per-column index
	// NoIntern disables the interned (symbol-id) evaluator and keeps join
	// keys as strings — the ablation baseline for the interning step.
	NoIntern bool
	// NoStats disables the cardinality-statistics join planner; the hash
	// join falls back to the size-based selectivity order.
	NoStats bool
	// Parallelism bounds the worker count of the parallel hash-join probe:
	// 1 evaluates sequentially (the ablation baseline), 0 or below means
	// GOMAXPROCS. Only joins past ParallelThreshold fan out at all.
	Parallelism int
	// ParallelThreshold is the minimum number of partial assignments a join
	// step must carry before its probe is split across workers; 0 selects
	// the built-in default. Exposed so tests can force tiny joins parallel.
	ParallelThreshold int
}

// Assignment is a satisfying assignment of a query's relational atoms to
// database rows (Def. 2.6). Atom i is mapped to row Rows[i] of the relation
// named by the atom; Binding is the induced mapping on variables.
type Assignment struct {
	Rows    []int             // per body-atom row index
	Binding map[string]string // variable -> domain value
}

// EvalCQ evaluates a conjunctive query and returns its annotated result.
func EvalCQ(q *query.CQ, d *db.Instance) (*Result, error) {
	return EvalCQOpts(q, d, Options{})
}

// EvalCQOpts evaluates with explicit options.
func EvalCQOpts(q *query.CQ, d *db.Instance, opts Options) (*Result, error) {
	res := newResult()
	if err := evalCQInto(res, q, d, opts); err != nil {
		return nil, err
	}
	res.finish()
	return res, nil
}

// evalCQInto accumulates one adjunct's assignments into res with the
// configured join strategy. Every strategy contributes the same
// (tuple, monomial) multiset, so results are identical across all of them;
// the interned paths are preferred whenever the instance carries symbol
// ids, with NoIntern forcing the string-keyed originals for ablation.
func evalCQInto(res *Result, q *query.CQ, d *db.Instance, opts Options) error {
	interned := !opts.NoIntern && internedAvailable(q, d)
	if opts.Join == JoinHash && len(q.Atoms) >= hashJoinMinAtoms {
		if interned {
			return hashEvalCQInterned(res, q, d, opts)
		}
		return hashEvalCQ(res, q, d, opts)
	}
	if opts.Join == JoinHash && interned && !opts.NoIndex {
		// Small conjunct under the hash strategy: the tuple-at-a-time
		// enumerator wins, and its interned twin wins harder.
		return internedEnumEval(res, q, d, atomOrder(q, opts.Order), nil)
	}
	return ForEachAssignment(q, d, opts, func(a Assignment) error {
		t := headTuple(q, a.Binding)
		m := assignmentMonomial(q, d, a)
		res.add(t, semiring.FromMonomial(m, 1))
		return nil
	})
}

// EvalUCQ evaluates a union adjunct by adjunct, summing provenance
// (Def. 2.12 for unions).
func EvalUCQ(u *query.UCQ, d *db.Instance) (*Result, error) {
	return EvalUCQOpts(u, d, Options{})
}

// EvalUCQOpts evaluates a union with explicit options.
func EvalUCQOpts(u *query.UCQ, d *db.Instance, opts Options) (*Result, error) {
	res := newResult()
	for _, q := range u.Adjuncts {
		if err := evalCQInto(res, q, d, opts); err != nil {
			return nil, err
		}
	}
	res.finish()
	return res, nil
}

// Provenance returns P(t, Q, D) for one tuple (the zero polynomial when t is
// not in the result).
func Provenance(u *query.UCQ, d *db.Instance, t db.Tuple) (semiring.Polynomial, error) {
	res, err := EvalUCQ(u, d)
	if err != nil {
		return semiring.Zero, err
	}
	p, _ := res.Lookup(t)
	return p, nil
}

// EvalInSemiring evaluates the union and maps every output annotation
// through the semiring homomorphism induced by val, exploiting the
// factorization property of N[X].
func EvalInSemiring[T any](u *query.UCQ, d *db.Instance, k semiring.Semiring[T], val func(tag string) T) (map[string]T, []db.Tuple, error) {
	res, err := EvalUCQ(u, d)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]T, res.Len())
	tuples := make([]db.Tuple, 0, res.Len())
	for _, ot := range res.Tuples() {
		out[ot.Tuple.Key()] = semiring.Eval[T](ot.Prov, k, val)
		tuples = append(tuples, ot.Tuple)
	}
	return out, tuples, nil
}

// validateCQ is the shared entry check of both join strategies: the query
// must be well-formed and every atom must agree with its relation's arity.
// One copy keeps the error wording identical across strategies — the
// server's HTTP status mapping matches on it.
func validateCQ(q *query.CQ, d *db.Instance) error {
	if err := q.Validate(); err != nil {
		return err
	}
	for _, at := range q.Atoms {
		if r := d.Lookup(at.Rel); r != nil && r.Arity != len(at.Args) {
			return fmt.Errorf("atom %s: relation has arity %d", at, r.Arity)
		}
	}
	return nil
}

// ForEachAssignment enumerates every satisfying assignment of q over d and
// invokes fn for each. Enumeration order is deterministic. fn may return an
// error to abort.
func ForEachAssignment(q *query.CQ, d *db.Instance, opts Options, fn func(Assignment) error) error {
	if err := validateCQ(q, d); err != nil {
		return err
	}
	order := atomOrder(q, opts.Order)
	e := &enumerator{q: q, d: d, opts: opts, order: order, fn: fn,
		binding: map[string]string{}, rows: make([]int, len(q.Atoms))}
	return e.extend(0)
}

// atomOrder returns the order in which body atoms are matched.
func atomOrder(q *query.CQ, mode AtomOrder) []int {
	n := len(q.Atoms)
	order := make([]int, n)
	if mode == OrderAsWritten {
		for i := range order {
			order[i] = i
		}
		return order
	}
	used := make([]bool, n)
	bound := map[string]bool{}
	for step := 0; step < n; step++ {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := 0
			for _, a := range q.Atoms[i].Args {
				if a.Const || bound[a.Name] {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		order[step] = best
		used[best] = true
		for _, a := range q.Atoms[best].Args {
			if !a.Const {
				bound[a.Name] = true
			}
		}
	}
	return order
}

type enumerator struct {
	q       *query.CQ
	d       *db.Instance
	opts    Options
	order   []int
	fn      func(Assignment) error
	binding map[string]string
	rows    []int
	// ranges, when non-nil, restricts each body atom (by atom index) to a
	// row window of its relation. Used by the delta evaluator to split a
	// relation into its pre-insert prefix and inserted suffix.
	ranges []rowRange
}

// rowRange is a half-open row window [lo, hi); hi < 0 means the relation's
// full current length.
type rowRange struct{ lo, hi int }

func (e *enumerator) extend(step int) error {
	if step == len(e.order) {
		if !e.diseqsSatisfied() {
			return nil
		}
		rows := make([]int, len(e.rows))
		copy(rows, e.rows)
		b := make(map[string]string, len(e.binding))
		for k, v := range e.binding {
			b[k] = v
		}
		return e.fn(Assignment{Rows: rows, Binding: b})
	}
	atomIdx := e.order[step]
	at := e.q.Atoms[atomIdx]
	rel := e.d.Lookup(at.Rel)
	if rel == nil {
		return nil // empty relation: no assignments
	}
	for _, rowIdx := range e.candidates(atomIdx, rel, at) {
		row := rel.Rows()[rowIdx]
		newly, ok := e.tryBind(at, row.Tuple)
		if ok && e.diseqsConsistent() {
			e.rows[atomIdx] = rowIdx
			if err := e.extend(step + 1); err != nil {
				return err
			}
		}
		for _, v := range newly {
			delete(e.binding, v)
		}
	}
	return nil
}

// candidates returns the row indices that could match the atom, using the
// column index on the first bound position when available, restricted to
// the atom's row window when one is set.
func (e *enumerator) candidates(atomIdx int, rel *db.Relation, at query.Atom) []int {
	lo, hi := 0, rel.Len()
	if e.ranges != nil {
		r := e.ranges[atomIdx]
		lo = r.lo
		if r.hi >= 0 && r.hi < hi {
			hi = r.hi
		}
	}
	if !e.opts.NoIndex {
		for col, a := range at.Args {
			var rows []int
			if a.Const {
				rows = rel.RowsWith(col, a.Name)
			} else if v, ok := e.binding[a.Name]; ok {
				rows = rel.RowsWith(col, v)
			} else {
				continue
			}
			if lo == 0 && hi == rel.Len() {
				return rows
			}
			in := make([]int, 0, len(rows))
			for _, i := range rows {
				if i >= lo && i < hi {
					in = append(in, i)
				}
			}
			return in
		}
	}
	all := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		all = append(all, i)
	}
	return all
}

// tryBind attempts to unify the atom's arguments with the tuple, extending
// the binding. It returns the variables newly bound (for rollback) and
// whether unification succeeded; on failure the binding is already restored.
func (e *enumerator) tryBind(at query.Atom, t db.Tuple) (newly []string, ok bool) {
	for i, a := range at.Args {
		if a.Const {
			if a.Name != t[i] {
				e.rollback(newly)
				return nil, false
			}
			continue
		}
		if v, bound := e.binding[a.Name]; bound {
			if v != t[i] {
				e.rollback(newly)
				return nil, false
			}
			continue
		}
		e.binding[a.Name] = t[i]
		newly = append(newly, a.Name)
	}
	return newly, true
}

func (e *enumerator) rollback(newly []string) {
	for _, v := range newly {
		delete(e.binding, v)
	}
}

// diseqsConsistent checks only disequalities whose sides are both decided;
// it prunes the search without rejecting extendable partial bindings.
func (e *enumerator) diseqsConsistent() bool {
	for _, d := range e.q.Diseqs {
		l, lok := e.valueOf(d.Left)
		r, rok := e.valueOf(d.Right)
		if lok && rok && l == r {
			return false
		}
	}
	return true
}

// diseqsSatisfied verifies every disequality under the full binding.
func (e *enumerator) diseqsSatisfied() bool {
	for _, d := range e.q.Diseqs {
		l, lok := e.valueOf(d.Left)
		r, rok := e.valueOf(d.Right)
		if !lok || !rok {
			return false // unbound diseq variable: invalid query, but Validate catches it
		}
		if l == r {
			return false
		}
	}
	return true
}

func (e *enumerator) valueOf(a query.Arg) (string, bool) {
	if a.Const {
		return a.Name, true
	}
	v, ok := e.binding[a.Name]
	return v, ok
}

// headTuple instantiates the head under a binding.
func headTuple(q *query.CQ, binding map[string]string) db.Tuple {
	out := make(db.Tuple, len(q.Head.Args))
	for i, a := range q.Head.Args {
		if a.Const {
			out[i] = a.Name
		} else {
			out[i] = binding[a.Name]
		}
	}
	return out
}

// assignmentMonomial computes the product of the annotations of the rows an
// assignment uses, with multiplicity (Def. 2.12).
func assignmentMonomial(q *query.CQ, d *db.Instance, a Assignment) semiring.Monomial {
	tags := make([]string, 0, len(q.Atoms))
	for i, at := range q.Atoms {
		rel := d.Lookup(at.Rel)
		tags = append(tags, rel.Rows()[a.Rows[i]].Tag)
	}
	return semiring.NewMonomial(tags...)
}
