package eval

import (
	"provmin/internal/db"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

// EvalDirect evaluates a union directly in an arbitrary commutative
// semiring, multiplying tag valuations per assignment and adding across
// assignments — without materializing N[X] polynomials. By the
// factorization property this agrees with EvalInSemiring (which evaluates
// the polynomial afterwards), but skips the polynomial construction; the
// evaluator ablation benchmark quantifies the saving.
func EvalDirect[T any](u *query.UCQ, d *db.Instance, k semiring.Semiring[T], val func(tag string) T) (map[string]T, []db.Tuple, error) {
	acc := map[string]T{}
	var tuples []db.Tuple
	for _, q := range u.Adjuncts {
		err := ForEachAssignment(q, d, Options{}, func(a Assignment) error {
			t := headTuple(q, a.Binding)
			term := k.One()
			for i, at := range q.Atoms {
				rel := d.Lookup(at.Rel)
				term = k.Mul(term, val(rel.Rows()[a.Rows[i]].Tag))
			}
			key := t.Key()
			if cur, ok := acc[key]; ok {
				acc[key] = k.Add(cur, term)
			} else {
				acc[key] = term
				tuples = append(tuples, t)
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return acc, tuples, nil
}

// Derivations returns the assignments that yield tuple t, each with the
// monomial it contributes — the explanations of t. The monomials sum to
// P(t, Q, D). AdjunctIdx identifies which adjunct produced the derivation.
type Derivation struct {
	AdjunctIdx int
	Assignment Assignment
	Monomial   semiring.Monomial
}

// Derivations enumerates all derivations of t under u over d.
func Derivations(u *query.UCQ, d *db.Instance, t db.Tuple) ([]Derivation, error) {
	var out []Derivation
	for ai, q := range u.Adjuncts {
		err := ForEachAssignment(q, d, Options{}, func(a Assignment) error {
			if !headTuple(q, a.Binding).Equal(t) {
				return nil
			}
			out = append(out, Derivation{
				AdjunctIdx: ai,
				Assignment: a,
				Monomial:   assignmentMonomial(q, d, a),
			})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
