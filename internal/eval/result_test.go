package eval

import (
	"strings"
	"testing"

	"provmin/internal/db"
	"provmin/internal/semiring"
)

func TestResultAccumulatesProvenance(t *testing.T) {
	r := newResult()
	r.add(db.Tuple{"a"}, semiring.Var("s1"))
	r.add(db.Tuple{"a"}, semiring.Var("s2"))
	r.add(db.Tuple{"b"}, semiring.Var("s3"))
	r.finish()
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	p, ok := r.Lookup(db.Tuple{"a"})
	if !ok || !p.Equal(semiring.MustParsePolynomial("s1 + s2")) {
		t.Errorf("prov(a) = %v", p)
	}
}

func TestResultCanonicalOrder(t *testing.T) {
	r := newResult()
	r.add(db.Tuple{"z"}, semiring.Var("s1"))
	r.add(db.Tuple{"a"}, semiring.Var("s2"))
	r.add(db.Tuple{"m"}, semiring.Var("s3"))
	r.finish()
	ts := r.Tuples()
	if ts[0].Tuple[0] != "a" || ts[1].Tuple[0] != "m" || ts[2].Tuple[0] != "z" {
		t.Errorf("order = %v", ts)
	}
	// Lookup must still work after reordering.
	if p, ok := r.Lookup(db.Tuple{"z"}); !ok || !p.Equal(semiring.Var("s1")) {
		t.Errorf("Lookup(z) = %v, %v", p, ok)
	}
}

func TestResultComparisons(t *testing.T) {
	a := newResult()
	a.add(db.Tuple{"x"}, semiring.Var("s1"))
	a.finish()
	b := newResult()
	b.add(db.Tuple{"x"}, semiring.Var("s2"))
	b.finish()
	if !a.SameTuples(b) {
		t.Error("same tuple sets must compare equal under SameTuples")
	}
	if a.SameAnnotated(b) {
		t.Error("different provenance must fail SameAnnotated")
	}
	c := newResult()
	c.add(db.Tuple{"x"}, semiring.Var("s1"))
	c.add(db.Tuple{"y"}, semiring.Var("s1"))
	c.finish()
	if a.SameTuples(c) {
		t.Error("different tuple sets must not compare equal")
	}
}

func TestResultTotalProvenanceSize(t *testing.T) {
	r := newResult()
	r.add(db.Tuple{"x"}, semiring.MustParsePolynomial("s1^2*s2 + s3"))
	r.add(db.Tuple{"y"}, semiring.Var("s4"))
	r.finish()
	if got := r.TotalProvenanceSize(); got != 5 {
		t.Errorf("TotalProvenanceSize = %d, want 5", got)
	}
}

func TestResultString(t *testing.T) {
	r := newResult()
	r.add(db.Tuple{"a", "b"}, semiring.Var("s1"))
	r.finish()
	if s := r.String(); !strings.Contains(s, "(a,b)") || !strings.Contains(s, "s1") {
		t.Errorf("String = %q", s)
	}
}
