package eval

import (
	"encoding/binary"

	"provmin/internal/db"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

// This file is the set-at-a-time evaluator: instead of enumerating
// assignments tuple by tuple (the nested-loop path in eval.go), it joins
// whole conjuncts with hash joins on their shared variables, in an order a
// small planner picks by estimated selectivity. Both evaluators realize
// Def. 2.12 exactly — one monomial per satisfying assignment — so their
// results are identical; the hash join only changes the cost of getting
// there: each relation is hashed once per conjunct instead of probed once
// per partial assignment, and partial assignments are parent-linked trie
// nodes instead of per-row binding maps.

// hashEvalCQ evaluates one conjunctive query set-at-a-time and accumulates
// every satisfying assignment's head tuple and monomial into res.
func hashEvalCQ(res *Result, q *query.CQ, d *db.Instance, opts Options) error {
	if err := validateCQ(q, d); err != nil {
		return err
	}
	// Constant-constant disequalities are statically decided: an equal pair
	// makes the query unsatisfiable, an unequal pair always holds.
	for _, dq := range q.Diseqs {
		if dq.Left.Const && dq.Right.Const && dq.Left.Name == dq.Right.Name {
			return nil
		}
	}
	if len(q.Atoms) == 0 {
		// No relational atoms: exactly the empty assignment (variables
		// cannot occur anywhere by safety), annotated with the unit 1.
		res.add(headTuple(q, nil), semiring.FromMonomial(semiring.One, 1))
		return nil
	}
	e := &hashEval{q: q, d: d, order: planAtomOrder(q, d, opts), varAt: map[string]varRef{}}
	return e.run(res)
}

// varRef locates a variable's value inside the join trie: bound at plan
// step, at position idx of that step's newly-bound values.
type varRef struct {
	step, idx int
}

// hjNode is one partial assignment after some plan step: the values of the
// variables this step newly bound, the annotation tag of the row joined in,
// and a link to the assignment it extends. Sharing the parent chain keeps
// the pipeline allocation-light: emitting a row costs one node, never a
// copy of the whole binding.
type hjNode struct {
	parent *hjNode
	vals   []string // values of this step's new variables (shared, immutable)
	tag    string
}

// value resolves a variable reference from the node for plan step `step`.
func (n *hjNode) value(step int, ref varRef) string {
	for ; step > ref.step; step-- {
		n = n.parent
	}
	return n.vals[ref.idx]
}

type hashEval struct {
	q     *query.CQ
	d     *db.Instance
	order []int
	varAt map[string]varRef
	key   []byte // reusable join-key scratch
}

func (e *hashEval) run(res *Result) error {
	q := e.q
	diseqStep := e.scheduleDiseqs()
	cur := []*hjNode{{}}
	for step, atomIdx := range e.order {
		at := q.Atoms[atomIdx]
		rel := e.d.Lookup(at.Rel)
		if rel == nil || rel.Len() == 0 {
			return nil // an empty conjunct admits no assignments
		}
		joinRefs, buckets := e.buildSide(step, at, rel)
		next := make([]*hjNode, 0, len(cur))
		for _, cn := range cur {
			e.key = e.key[:0]
			for _, ref := range joinRefs {
				e.key = appendKeyPart(e.key, cn.value(step-1, ref))
			}
			for _, m := range buckets[string(e.key)] {
				node := &hjNode{parent: cn, vals: m.vals, tag: m.tag}
				if !e.diseqsHold(diseqStep, step, node) {
					continue
				}
				next = append(next, node)
			}
		}
		if len(next) == 0 {
			return nil
		}
		cur = next
	}

	last := len(e.order) - 1
	headRefs := make([]varRef, len(q.Head.Args))
	for i, a := range q.Head.Args {
		if !a.Const {
			headRefs[i] = e.varAt[a.Name]
		}
	}
	tags := make([]string, len(e.order))
	for _, n := range cur {
		t := make(db.Tuple, len(q.Head.Args))
		for i, a := range q.Head.Args {
			if a.Const {
				t[i] = a.Name
			} else {
				t[i] = n.value(last, headRefs[i])
			}
		}
		for i, p := len(tags)-1, n; i >= 0; i, p = i-1, p.parent {
			tags[i] = p.tag
		}
		res.add(t, semiring.FromMonomial(semiring.NewMonomial(tags...), 1))
	}
	return nil
}

// match is one relation row admitted by an atom's constants, projected to
// the values of the atom's newly introduced variables.
type match struct {
	vals []string
	tag  string
}

// buildSide scans the relation for rows compatible with the atom's
// constants and intra-atom repeated variables, and hashes them by the
// values of the variables shared with the already-bound set. It registers
// the atom's new variables in e.varAt and returns the references of the
// shared (join) variables plus the hash buckets.
func (e *hashEval) buildSide(step int, at query.Atom, rel *db.Relation) ([]varRef, map[string][]match) {
	// firstCol[i] is the first column of at where the variable of column i
	// occurs; columns with firstCol[i] != i must repeat that earlier value.
	firstCol := make([]int, len(at.Args))
	seen := map[string]int{}
	var joinRefs, newRefs []varRef
	var joinCols, newCols []int
	for i, a := range at.Args {
		firstCol[i] = i
		if a.Const {
			continue
		}
		if j, ok := seen[a.Name]; ok {
			firstCol[i] = j
			continue
		}
		seen[a.Name] = i
		if ref, bound := e.varAt[a.Name]; bound {
			joinRefs = append(joinRefs, ref)
			joinCols = append(joinCols, i)
		} else {
			ref := varRef{step: step, idx: len(newRefs)}
			e.varAt[a.Name] = ref
			newRefs = append(newRefs, ref)
			newCols = append(newCols, i)
		}
	}

	buckets := map[string][]match{}
	for _, rowIdx := range candidateRows(rel, at) {
		row := rel.Rows()[rowIdx]
		ok := true
		for i, a := range at.Args {
			if a.Const {
				if row.Tuple[i] != a.Name {
					ok = false
					break
				}
			} else if firstCol[i] != i && row.Tuple[i] != row.Tuple[firstCol[i]] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		e.key = e.key[:0]
		for _, c := range joinCols {
			e.key = appendKeyPart(e.key, row.Tuple[c])
		}
		m := match{tag: row.Tag}
		if len(newCols) > 0 {
			m.vals = make([]string, len(newCols))
			for i, c := range newCols {
				m.vals[i] = row.Tuple[c]
			}
		}
		buckets[string(e.key)] = append(buckets[string(e.key)], m)
	}
	return joinRefs, buckets
}

// appendKeyPart appends one join-key component, length-prefixed: values are
// arbitrary strings (they arrive over HTTP), so a separator byte could make
// two distinct bindings collide — e.g. ("a\x1f","b") vs ("a","\x1fb") under
// the naive 0x1f framing — and admit joins the nested-loop evaluator
// rejects. A length prefix makes the encoding injective.
func appendKeyPart(key []byte, v string) []byte {
	key = binary.AppendUvarint(key, uint64(len(v)))
	return append(key, v...)
}

// candidateRows narrows the scan by the per-column index on the first
// constant argument, falling back to a full scan.
func candidateRows(rel *db.Relation, at query.Atom) []int {
	for col, a := range at.Args {
		if a.Const {
			return rel.RowsWith(col, a.Name)
		}
	}
	all := make([]int, rel.Len())
	for i := range all {
		all[i] = i
	}
	return all
}

// planAtomOrder picks the join order for a hash evaluation: the
// cardinality-statistics planner when the instance carries distinct-count
// sketches and stats are not ablated away, otherwise the original
// size-based selectivity order.
func planAtomOrder(q *query.CQ, d *db.Instance, opts Options) []int {
	if !opts.NoStats {
		if order, ok := planOrderCost(q, d); ok {
			return order
		}
	}
	return planOrder(q, d)
}

// planOrderCost is the cost-based planner: it greedily grows the join
// prefix by the atom minimizing the estimated intermediate cardinality
//
//	card' = card × rows(atom) / Π over bound join columns max(1, distinct(col))
//
// with per-column distinct counts taken from the relations' HyperLogLog
// sketches. The size-based planner treats a join through a 2-distinct
// column and one through a key column identically; the division above is
// exactly what tells them apart. Atoms sharing a bound variable are still
// preferred over cross products regardless of estimate, and ties keep body
// order, so plans stay deterministic. Returns ok=false when some touched
// relation carries no statistics (a standalone relation outside any
// instance); the caller then falls back to planOrder.
func planOrderCost(q *query.CQ, d *db.Instance) ([]int, bool) {
	n := len(q.Atoms)
	base := make([]float64, n)
	rels := make([]*db.Relation, n)
	for i, at := range q.Atoms {
		rel := d.Lookup(at.Rel)
		rels[i] = rel
		if rel == nil {
			continue // base 0: scheduled first, terminates evaluation at once
		}
		if !rel.Interned() {
			return nil, false
		}
		e := float64(rel.Len())
		for col, a := range at.Args {
			if a.Const {
				if c := float64(len(rel.RowsWith(col, a.Name))); c < e {
					e = c
				}
			}
		}
		base[i] = e
	}
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := map[string]bool{}
	card := 1.0
	for len(order) < n {
		best, bestShares := -1, false
		bestCard := 0.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			sel := 1.0
			shares := false
			if rels[i] != nil {
				for col, a := range q.Atoms[i].Args {
					if a.Const || !bound[a.Name] {
						continue
					}
					shares = true
					if dist, ok := rels[i].DistinctEstimate(col); ok && dist > 1 {
						sel /= dist
					}
				}
			}
			cand := card * base[i] * sel
			switch {
			case best == -1,
				shares && !bestShares,
				shares == bestShares && cand < bestCard:
				best, bestShares, bestCard = i, shares, cand
			}
		}
		order = append(order, best)
		used[best] = true
		if card = bestCard; card < 1 {
			card = 1
		}
		for _, a := range q.Atoms[best].Args {
			if !a.Const {
				bound[a.Name] = true
			}
		}
	}
	return order, true
}

// planOrder is the selectivity planner: every atom's cardinality is
// estimated from its relation size, tightened by the index count of its
// most selective constant column; the order then greedily extends the
// joined prefix, always preferring atoms that share a bound variable (so
// cross products happen only when the query itself is disconnected) and,
// among those, the smallest estimate.
func planOrder(q *query.CQ, d *db.Instance) []int {
	n := len(q.Atoms)
	est := make([]int, n)
	for i, at := range q.Atoms {
		rel := d.Lookup(at.Rel)
		if rel == nil {
			continue // est 0: schedule first, terminates evaluation at once
		}
		e := rel.Len()
		for col, a := range at.Args {
			if a.Const {
				if c := len(rel.RowsWith(col, a.Name)); c < e {
					e = c
				}
			}
		}
		est[i] = e
	}
	order := make([]int, 0, n)
	used := make([]bool, n)
	boundVars := map[string]bool{}
	for len(order) < n {
		best, bestShares := -1, false
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			shares := false
			for _, a := range q.Atoms[i].Args {
				if !a.Const && boundVars[a.Name] {
					shares = true
					break
				}
			}
			switch {
			case best == -1,
				shares && !bestShares,
				shares == bestShares && est[i] < est[best]:
				best, bestShares = i, shares
			}
		}
		order = append(order, best)
		used[best] = true
		for _, a := range q.Atoms[best].Args {
			if !a.Const {
				boundVars[a.Name] = true
			}
		}
	}
	return order
}

// scheduleDiseqs maps each disequality to the earliest plan step after
// which both of its sides are decided, so the pipeline filters as soon as
// possible. Constant-constant pairs were decided statically and get -1.
func (e *hashEval) scheduleDiseqs() []int {
	boundAt := map[string]int{}
	for step, atomIdx := range e.order {
		for _, a := range e.q.Atoms[atomIdx].Args {
			if !a.Const {
				if _, ok := boundAt[a.Name]; !ok {
					boundAt[a.Name] = step
				}
			}
		}
	}
	stepOf := make([]int, len(e.q.Diseqs))
	for i, dq := range e.q.Diseqs {
		step := -1
		for _, side := range []query.Arg{dq.Left, dq.Right} {
			if !side.Const && boundAt[side.Name] > step {
				step = boundAt[side.Name]
			}
		}
		stepOf[i] = step
	}
	return stepOf
}

// diseqsHold checks the disequalities scheduled at this step against a
// freshly extended assignment.
func (e *hashEval) diseqsHold(diseqStep []int, step int, n *hjNode) bool {
	for i, dq := range e.q.Diseqs {
		if diseqStep[i] != step {
			continue
		}
		l, r := dq.Left.Name, dq.Right.Name
		if !dq.Left.Const {
			l = n.value(step, e.varAt[dq.Left.Name])
		}
		if !dq.Right.Const {
			r = n.value(step, e.varAt[dq.Right.Name])
		}
		if l == r {
			return false
		}
	}
	return true
}
