package eval

import (
	"fmt"
	"testing"

	"provmin/internal/db"
	"provmin/internal/query"
	"provmin/internal/workload"
)

// forceHashJoin drops the small-conjunct fallback for one test, so the
// differential suite exercises the hash path on every query size instead
// of silently routing 1–2-atom conjuncts to the enumerator.
func forceHashJoin(t *testing.T) {
	t.Helper()
	old := hashJoinMinAtoms
	hashJoinMinAtoms = 0
	t.Cleanup(func() { hashJoinMinAtoms = old })
}

// evalBoth evaluates u with the hash-join and nested-loop strategies and
// fails unless the rendered results are byte-identical — the equivalence
// contract the engine's result cache depends on.
func evalBoth(t *testing.T, u *query.UCQ, d *db.Instance) string {
	t.Helper()
	hash, err := EvalUCQOpts(u, d, Options{Join: JoinHash})
	if err != nil {
		t.Fatalf("hash eval: %v", err)
	}
	nested, err := EvalUCQOpts(u, d, Options{Join: JoinNestedLoop})
	if err != nil {
		t.Fatalf("nested-loop eval: %v", err)
	}
	if got, want := hash.String(), nested.String(); got != want {
		t.Errorf("hash join diverges from nested loop on %s:\nhash:\n%s\nnested:\n%s", u, got, want)
	}
	return hash.String()
}

func TestHashJoinMatchesNestedLoopFixed(t *testing.T) {
	forceHashJoin(t)
	d := db.NewInstance()
	d.MustAdd("R", "r1", "a", "a")
	d.MustAdd("R", "r2", "a", "b")
	d.MustAdd("R", "r3", "b", "a")
	d.MustAdd("R", "r4", "b", "c")
	d.MustAdd("S", "s1", "a")
	d.MustAdd("S", "s2", "c")
	d.MustAdd("T", "t1", "x", "y", "z")

	cases := []string{
		"ans(x) :- R(x,y), R(y,x)",                       // paper query, self join
		"ans(x) :- R(x,x)",                               // repeated variable in one atom
		"ans(x,y) :- R(x,z), R(z,y)",                     // chain
		"ans(x) :- R(x,y), S(y)",                         // cross relation join
		"ans(x) :- R(x,'a')",                             // constant argument
		"ans(x) :- R('a',x), R(x,'a')",                   // constants both ends
		"ans(x,y) :- R(x,y), x != y",                     // disequality
		"ans(x,y) :- R(x,y), x != 'a'",                   // var-const disequality
		"ans(x,u) :- R(x,y), S(u)",                       // cross product (disconnected)
		"ans() :- R(x,y), R(y,z), R(z,x)",                // boolean cycle
		"ans(x) :- R(x,y), R(y,z), R(z,w), w != x",       // long chain + diseq
		"ans(x) :- R(x,y); ans(x) :- R(y,x)",             // union
		"ans(x) :- R(x,y), S(y); ans(x) :- R(x,x)",       // mixed union
		"ans(x) :- Missing(x)",                           // unknown relation: empty
		"ans(x) :- R(x,y), Missing(y)",                   // join with unknown relation
		"ans(x,y,z) :- T(x,y,z)",                         // ternary scan
		"ans('k') :- R(x,x)",                             // constant head
		"ans(x) :- R(x,y), R(x,z), y != z",               // branching + diseq
		"ans(x) :- R(x,y), R(y,z), R(x,z)",               // triangle
		"ans(x,y) :- R(x,y), R(y,y)",                     // join into self-loop
		"ans(x) :- R(x,y), S(x), S(y)",                   // multiple unary filters
		"ans(x) :- S(x), R(x,y), R(y,w), R(w,'a')",       // selective constant late
		"ans(x,y) :- R(x,y), x != y, y != 'c', x != 'b'", // several diseqs
	}
	for _, qt := range cases {
		u, err := query.ParseUnion(qt)
		if err != nil {
			t.Fatalf("%s: %v", qt, err)
		}
		evalBoth(t, u, d)
	}
}

func TestHashJoinStaticDiseqs(t *testing.T) {
	forceHashJoin(t)
	d := db.NewInstance()
	d.MustAdd("R", "r1", "a", "b")
	// 'a' != 'a' is statically unsatisfiable; 'a' != 'b' always holds.
	sat := query.NewCQ(
		query.NewAtom("ans", query.V("x")),
		[]query.Atom{query.NewAtom("R", query.V("x"), query.V("y"))},
		[]query.Diseq{query.NewDiseq(query.C("a"), query.C("b"))},
	)
	unsat := query.NewCQ(
		query.NewAtom("ans", query.V("x")),
		[]query.Atom{query.NewAtom("R", query.V("x"), query.V("y"))},
		[]query.Diseq{query.NewDiseq(query.C("a"), query.C("a"))},
	)
	if got := evalBoth(t, query.Single(sat), d); got == "" {
		t.Errorf("satisfied constant disequality emptied the result")
	}
	if got := evalBoth(t, query.Single(unsat), d); got != "" {
		t.Errorf("unsatisfiable constant disequality produced tuples:\n%s", got)
	}
}

// TestHashJoinMatchesNestedLoopRandom sweeps random unions over random
// instances, self-joins and disequalities included.
func TestHashJoinMatchesNestedLoopRandom(t *testing.T) {
	forceHashJoin(t)
	params := workload.DefaultParams()
	params.NumAtoms = 4
	params.NumVars = 5
	params.NumRels = 3
	for seed := int64(0); seed < 40; seed++ {
		d := db.NewInstance()
		g := db.NewGenerator(seed)
		g.RandomRelation(d, "R1", 2, 20, 6)
		g.RandomRelation(d, "R2", 2, 15, 6)
		g.RandomRelation(d, "R3", 2, 10, 6)
		u := workload.RandomUCQ(seed, int(seed%3)+1, params)
		evalBoth(t, u, d)
	}
}

// TestHashJoinSeparatorInjection: values are arbitrary strings, so a
// separator byte inside a value must not make two distinct bindings build
// the same join key. Under naive 0x1f framing, ("a\x1f","b") and
// ("a","\x1fb") collide on a two-variable join and produce a match the
// nested-loop evaluator (correctly) rejects.
func TestHashJoinSeparatorInjection(t *testing.T) {
	forceHashJoin(t)
	d := db.NewInstance()
	d.MustAdd("A", "a1", "a", "\x1fb")
	d.MustAdd("B", "b1", "a\x1f", "b")
	q := query.NewCQ(
		query.NewAtom("ans", query.V("x"), query.V("y")),
		[]query.Atom{
			query.NewAtom("A", query.V("x"), query.V("y")),
			query.NewAtom("B", query.V("x"), query.V("y")),
		},
		nil,
	)
	if got := evalBoth(t, query.Single(q), d); got != "" {
		t.Errorf("distinct bindings joined via separator collision:\n%s", got)
	}
}

// TestHashJoinErrors pins error parity with the nested-loop path.
func TestHashJoinErrors(t *testing.T) {
	forceHashJoin(t)
	d := db.NewInstance()
	d.MustAdd("R", "r1", "a", "b")
	u := query.MustParseUnion("ans(x) :- R(x,y,z)") // arity mismatch
	if _, err := EvalUCQOpts(u, d, Options{Join: JoinHash}); err == nil {
		t.Error("hash join accepted an arity-mismatched atom")
	}
	bad := query.Single(query.NewCQ(
		query.NewAtom("ans", query.V("q")), // head var not in body
		[]query.Atom{query.NewAtom("R", query.V("x"), query.V("y"))},
		nil,
	))
	if _, err := EvalUCQOpts(bad, d, Options{Join: JoinHash}); err == nil {
		t.Error("hash join accepted an unsafe head variable")
	}
}

// TestPlanOrderSelectivity: the planner starts from the most selective
// atom and only leaves the connected prefix when it must.
func TestPlanOrderSelectivity(t *testing.T) {
	d := db.NewInstance()
	for i := 0; i < 50; i++ {
		d.MustAdd("Big", fmt.Sprintf("b%d", i), fmt.Sprintf("v%d", i), "a")
	}
	d.MustAdd("Small", "s1", "v1")
	q := query.MustParse("ans(x) :- Big(x,y), Small(x)")
	order := planOrder(q, d)
	if order[0] != 1 {
		t.Errorf("plan order %v: want the 1-row Small atom first", order)
	}
	// A constant narrows Big below Small via the column index.
	d2 := db.NewInstance()
	for i := 0; i < 50; i++ {
		d2.MustAdd("Big", fmt.Sprintf("b%d", i), fmt.Sprintf("v%d", i), "a")
	}
	for i := 0; i < 10; i++ {
		d2.MustAdd("Small", fmt.Sprintf("s%d", i), fmt.Sprintf("v%d", i))
	}
	q2 := query.MustParse("ans(x) :- Big(x,y), Small(x), Big('v7',x)")
	order2 := planOrder(q2, d2)
	if order2[0] != 2 {
		t.Errorf("plan order %v: want the constant-narrowed atom first", order2)
	}
}

// BenchmarkJoinMultiConjunct is the acceptance workload: multi-conjunct
// queries whose cost is in the join search — a 4-atom chain over a sparse
// graph and a triangle with two join variables on its closing atom — where
// set-at-a-time hash joins must beat the tuple-at-a-time nested loop.
func BenchmarkJoinMultiConjunct(b *testing.B) {
	chain := db.NewInstance()
	db.NewGenerator(3).RandomGraph(chain, "R", 300, 600)
	triangle := db.NewInstance()
	db.NewGenerator(5).RandomGraph(triangle, "R", 60, 360)
	workloads := []struct {
		name string
		u    *query.UCQ
		d    *db.Instance
	}{
		{"chain4", query.Single(workload.ChainCQ(4)), chain},
		{"triangle", query.MustParseUnion("ans(x,y,z) :- R(x,y), R(y,z), R(z,x)"), triangle},
	}
	strategies := []struct {
		name string
		opts Options
	}{
		{"hash", Options{Join: JoinHash}},
		{"nested-loop", Options{Join: JoinNestedLoop}},
	}
	for _, w := range workloads {
		for _, cfg := range strategies {
			b.Run(w.name+"/"+cfg.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := EvalUCQOpts(w.u, w.d, cfg.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
