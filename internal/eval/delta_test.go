package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"provmin/internal/db"
	"provmin/internal/query"
)

// mergeResults is the cache-promotion merge: old + delta, re-canonicalized.
func mergeResults(old, delta *Result) *Result {
	m := NewResult()
	for _, ot := range old.Tuples() {
		m.Add(ot.Tuple, ot.Prov)
	}
	for _, ot := range delta.Tuples() {
		m.Add(ot.Tuple, ot.Prov)
	}
	m.Finish()
	return m
}

type deltaFact struct {
	rel    string
	tag    string
	values []string
}

// applyBatch appends facts (skipping tuples already present — a tag
// replacement is a mutation, which the delta rules do not cover) and
// returns the pre-insert row counts of the touched relations.
func applyBatch(t *testing.T, d *db.Instance, facts []deltaFact) map[string]int {
	t.Helper()
	oldLen := map[string]int{}
	for _, f := range facts {
		rel, err := d.Relation(f.rel, len(f.values))
		if err != nil {
			t.Fatalf("relation %s: %v", f.rel, err)
		}
		if _, ok := oldLen[f.rel]; !ok {
			oldLen[f.rel] = rel.Len()
		}
		if rel.Contains(f.values...) {
			continue
		}
		rel.MustAdd(f.tag, f.values...)
	}
	return oldLen
}

// checkDelta asserts the additive identity eval(old) + delta == eval(new)
// byte-for-byte, for every query, across one insert batch.
func checkDelta(t *testing.T, d *db.Instance, queries []*query.UCQ, facts []deltaFact) {
	t.Helper()
	olds := make([]*Result, len(queries))
	for i, u := range queries {
		res, err := EvalUCQ(u, d)
		if err != nil {
			t.Fatalf("eval old %s: %v", u, err)
		}
		olds[i] = res
	}
	oldLen := applyBatch(t, d, facts)
	for i, u := range queries {
		fresh, err := EvalUCQ(u, d)
		if err != nil {
			t.Fatalf("eval new %s: %v", u, err)
		}
		delta, err := EvalUCQDelta(u, d, oldLen)
		if err != nil {
			t.Fatalf("delta %s: %v", u, err)
		}
		if got, want := mergeResults(olds[i], delta).String(), fresh.String(); got != want {
			t.Fatalf("query %s: maintained result diverges from cold eval\nmaintained:\n%s\ncold:\n%s\ndelta:\n%s",
				u, got, want, delta)
		}
	}
}

func deltaQueries(t *testing.T) []*query.UCQ {
	t.Helper()
	texts := []string{
		"ans(x) :- R(x,y), R(y,x)",
		"ans(x) :- R(x,y), R(y,z), R(x,w)", // 3 atoms: full eval hash-joins
		"ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)",
		"ans(x,z) :- R(x,y), S(y), R(y,z)",
		"ans(y) :- R(a,y)", // constant in body
		"ans() :- R(x,y), S(x), x != y",
	}
	out := make([]*query.UCQ, len(texts))
	for i, s := range texts {
		out[i] = query.MustParseUnion(s)
	}
	return out
}

func TestDeltaEvalFixedBatches(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "r1", "a", "a")
	d.MustAdd("R", "r2", "a", "b")
	d.MustAdd("R", "r3", "b", "a")
	d.MustAdd("S", "s1", "a")

	queries := deltaQueries(t)
	batches := [][]deltaFact{
		// single fact closing a new cycle
		{{"R", "g1", []string{"b", "b"}}},
		// multi-fact batch where two inserted rows join with each other —
		// the naive "rest of the atoms over the full instance" rule
		// double-counts exactly this case
		{{"R", "g2", []string{"c", "d"}}, {"R", "g3", []string{"d", "c"}}, {"S", "g4", []string{"c"}}},
		// touch only S: R-only queries must get an empty delta
		{{"S", "g5", []string{"b"}}},
		// batch that creates a brand-new relation (oldLen = 0)
		{{"T", "g6", []string{"a", "b"}}},
		// duplicate tuple inside one batch: second insert is skipped by
		// applyBatch, mirroring the engine's overwrite fallback contract
		{{"R", "g7", []string{"e", "e"}}, {"R", "g8", []string{"e", "e"}}},
	}
	for i, facts := range batches {
		t.Run(fmt.Sprintf("batch%d", i), func(t *testing.T) {
			checkDelta(t, d, queries, facts)
		})
	}
}

func TestDeltaEvalRandomizedBatches(t *testing.T) {
	queries := deltaQueries(t)
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dom := []string{"a", "b", "c", "d", "e"}
			d := db.NewInstance()
			tagN := 0
			tag := func() string { tagN++; return fmt.Sprintf("t%d", tagN) }
			for i := 0; i < 6+rng.Intn(10); i++ {
				d.MustRelation("R", 2) // ensure R exists even if Contains skips all
				x, y := dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))]
				if !d.Lookup("R").Contains(x, y) {
					d.MustAdd("R", tag(), x, y)
				}
			}
			for batch := 0; batch < 12; batch++ {
				var facts []deltaFact
				for i := 0; i < 1+rng.Intn(4); i++ {
					if rng.Intn(3) == 0 {
						facts = append(facts, deltaFact{"S", tag(), []string{dom[rng.Intn(len(dom))]}})
					} else {
						facts = append(facts, deltaFact{"R", tag(), []string{dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))]}})
					}
				}
				checkDelta(t, d, queries, facts)
			}
		})
	}
}

// TestDeltaEvalUntouchedRelations pins that a delta against relations the
// query never mentions is empty — the restamp-only promotion case.
func TestDeltaEvalUntouchedRelations(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "r1", "a", "b")
	u := query.MustParseUnion("ans(x) :- R(x,y)")
	d.MustAdd("Z", "z1", "q")
	delta, err := EvalUCQDelta(u, d, map[string]int{"Z": 0})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Len() != 0 {
		t.Fatalf("expected empty delta, got:\n%s", delta)
	}
}

// TestDeltaEvalArityMismatch pins that the delta evaluator fails the same
// way full evaluation does when a batch-created relation conflicts with a
// query atom's arity — the engine invalidates such entries instead of
// promoting them.
func TestDeltaEvalArityMismatch(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "r1", "a", "b", "c") // arity 3
	u := query.MustParseUnion("ans(x) :- R(x,y)")
	if _, err := EvalUCQDelta(u, d, map[string]int{"R": 0}); err == nil {
		t.Fatal("expected arity error")
	}
}
