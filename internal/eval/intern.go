package eval

import (
	"provmin/internal/db"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

// This file is the interned face of the evaluator: queries are compiled
// against the instance's symbol table so that every domain value is a dense
// uint32 id, bindings are flat []uint32 slices indexed by a per-query
// variable number, and equality checks are single integer compares instead
// of string compares. Both the interned enumerator below and the interned
// hash join (hashjoin_intern.go) start from this compiled form. Results are
// resolved back to strings only at emission, so outputs are byte-identical
// to the string-keyed evaluator's — the differential suite in
// intern_test.go pins that equivalence.

// iArg is one compiled atom (or disequality/head) argument.
type iArg struct {
	isConst bool
	val     uint32 // const: symbol id; invalidID = value stored nowhere
	v       int    // var: dense per-query variable index
}

// invalidID mirrors db's reserved symbol id 0 ("no such value" / "unbound").
const invalidID uint32 = 0

// iAtom is one compiled body atom.
type iAtom struct {
	rel  *db.Relation // nil: relation absent from the instance
	args []iArg
}

// compiledCQ is a conjunctive query bound to one instance's symbol table.
type compiledCQ struct {
	q      *query.CQ
	d      *db.Instance
	syms   *db.SymbolTable
	atoms  []iAtom
	diseqs [][2]iArg // var/const sides; statically-true pairs dropped
	head   []iArg
	nvars  int
	// unsat: a constant-constant disequality with equal sides makes every
	// assignment invalid (the same static check the string paths apply).
	unsat bool
	// empty: some atom can match no row (absent/empty relation, or a
	// constant the instance has never stored), so there are no assignments.
	empty bool
}

// internedAvailable reports whether every relation the query touches
// carries an interned image — true for every relation created through an
// Instance, false only for standalone db.NewRelation use, which cannot
// occur inside an instance. Checked per-relation anyway so the evaluator
// degrades to string keys instead of panicking if that invariant ever
// changes.
func internedAvailable(q *query.CQ, d *db.Instance) bool {
	for _, at := range q.Atoms {
		if rel := d.Lookup(at.Rel); rel != nil && !rel.Interned() {
			return false
		}
	}
	return true
}

// compileCQ validates q and lowers it onto d's symbol table. Variable
// indices are assigned in first-occurrence order over the body atoms.
func compileCQ(q *query.CQ, d *db.Instance) (*compiledCQ, error) {
	if err := validateCQ(q, d); err != nil {
		return nil, err
	}
	c := &compiledCQ{q: q, d: d, syms: d.Symbols()}
	varIdx := map[string]int{}
	arg := func(a query.Arg) iArg {
		if a.Const {
			id, _ := c.syms.Lookup(a.Name) // miss: invalidID
			return iArg{isConst: true, val: id}
		}
		i, ok := varIdx[a.Name]
		if !ok {
			i = c.nvars
			varIdx[a.Name] = i
			c.nvars++
		}
		return iArg{v: i}
	}
	for _, at := range q.Atoms {
		ia := iAtom{rel: d.Lookup(at.Rel), args: make([]iArg, len(at.Args))}
		for i, a := range at.Args {
			ia.args[i] = arg(a)
			if ia.args[i].isConst && ia.args[i].val == invalidID {
				c.empty = true // constant stored nowhere: atom matches no row
			}
		}
		if ia.rel == nil || ia.rel.Len() == 0 {
			c.empty = true
		}
		c.atoms = append(c.atoms, ia)
	}
	for _, dq := range q.Diseqs {
		if dq.Left.Const && dq.Right.Const {
			if dq.Left.Name == dq.Right.Name {
				c.unsat = true
			}
			continue // unequal constants always hold: drop
		}
		c.diseqs = append(c.diseqs, [2]iArg{arg(dq.Left), arg(dq.Right)})
	}
	c.head = make([]iArg, len(q.Head.Args))
	for i, a := range q.Head.Args {
		if a.Const {
			// Head constants are echoed from the query text, not resolved
			// through the table — keep them as variables-free markers; the
			// emitters read q.Head.Args[i].Name directly.
			c.head[i] = iArg{isConst: true}
		} else {
			c.head[i] = iArg{v: varIdx[a.Name]}
		}
	}
	return c, nil
}

// diseqHolds evaluates one compiled disequality under a (possibly partial)
// binding; decided reports whether both sides have values. Const-const
// pairs were decided at compile time and never reach here, so at most one
// side is an uninterned constant (invalidID), which can never equal a
// bound variable's id — every binding value is a stored symbol.
func (c *compiledCQ) diseqHolds(dq [2]iArg, binding []uint32) (holds, decided bool) {
	var l, r uint32
	if dq[0].isConst {
		l = dq[0].val
	} else if l = binding[dq[0].v]; l == invalidID {
		return true, false
	}
	if dq[1].isConst {
		r = dq[1].val
	} else if r = binding[dq[1].v]; r == invalidID {
		return true, false
	}
	return l != r || l == invalidID, true
}

// headTuple materializes the head under a full binding.
func (c *compiledCQ) headTuple(binding []uint32) db.Tuple {
	out := make(db.Tuple, len(c.head))
	for i, a := range c.head {
		if a.isConst {
			out[i] = c.q.Head.Args[i].Name
		} else {
			out[i] = c.syms.Value(binding[a.v])
		}
	}
	return out
}

// monomial computes the annotation product of the rows an assignment uses.
func (c *compiledCQ) monomial(rows []int) semiring.Monomial {
	tags := make([]string, 0, len(c.atoms))
	for i, at := range c.atoms {
		tags = append(tags, at.rel.Rows()[rows[i]].Tag)
	}
	return semiring.NewMonomial(tags...)
}

// iEnum is the interned twin of the string enumerator in eval.go: the same
// backtracking search over the same atom order with the same index-probe
// candidate selection, operating on symbol ids. It exists so the hot
// tuple-at-a-time paths — small conjuncts and, above all, the delta
// maintainer's windowed enumeration — run on integer compares too.
type iEnum struct {
	c       *compiledCQ
	order   []int
	ranges  []rowRange // per atom index; nil = unrestricted
	binding []uint32   // var index -> symbol id; invalidID = unbound
	rows    []int
	fn      func(rows []int, binding []uint32) error
}

func (e *iEnum) extend(step int) error {
	c := e.c
	if step == len(e.order) {
		for _, dq := range c.diseqs {
			if holds, _ := c.diseqHolds(dq, e.binding); !holds {
				return nil
			}
		}
		return e.fn(e.rows, e.binding)
	}
	atomIdx := e.order[step]
	at := c.atoms[atomIdx]
	for _, rowIdx := range e.candidates(atomIdx, at) {
		row := at.rel.RowIDs(rowIdx)
		newly, ok := e.tryBind(at, row)
		if ok && e.diseqsConsistent() {
			e.rows[atomIdx] = rowIdx
			if err := e.extend(step + 1); err != nil {
				return err
			}
		}
		for _, v := range newly {
			e.binding[v] = invalidID
		}
	}
	return nil
}

// candidates mirrors enumerator.candidates: probe the per-column id index
// on the first decided argument, restricted to the atom's row window.
func (e *iEnum) candidates(atomIdx int, at iAtom) []int {
	rel := at.rel
	lo, hi := 0, rel.Len()
	if e.ranges != nil {
		r := e.ranges[atomIdx]
		lo = r.lo
		if r.hi >= 0 && r.hi < hi {
			hi = r.hi
		}
	}
	for col, a := range at.args {
		var id uint32
		if a.isConst {
			id = a.val
		} else if id = e.binding[a.v]; id == invalidID {
			continue
		}
		rows := rel.RowsWithID(col, id)
		if lo == 0 && hi == rel.Len() {
			return rows
		}
		in := make([]int, 0, len(rows))
		for _, i := range rows {
			if i >= lo && i < hi {
				in = append(in, i)
			}
		}
		return in
	}
	all := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		all = append(all, i)
	}
	return all
}

// tryBind unifies the atom's arguments with the row ids, extending the
// binding; newly holds the var indices bound here, for rollback.
func (e *iEnum) tryBind(at iAtom, row []uint32) (newly []int, ok bool) {
	for i, a := range at.args {
		if a.isConst {
			if a.val != row[i] {
				e.rollback(newly)
				return nil, false
			}
			continue
		}
		if v := e.binding[a.v]; v != invalidID {
			if v != row[i] {
				e.rollback(newly)
				return nil, false
			}
			continue
		}
		e.binding[a.v] = row[i]
		newly = append(newly, a.v)
	}
	return newly, true
}

func (e *iEnum) rollback(newly []int) {
	for _, v := range newly {
		e.binding[v] = invalidID
	}
}

// diseqsConsistent prunes on disequalities whose sides are both decided.
func (e *iEnum) diseqsConsistent() bool {
	for _, dq := range e.c.diseqs {
		if holds, decided := e.c.diseqHolds(dq, e.binding); decided && !holds {
			return false
		}
	}
	return true
}

// internedEnumEval accumulates every satisfying assignment of q into res
// with the interned enumerator, optionally restricted to per-atom row
// windows (the delta maintainer's partition). order is the atom order to
// search in (the same order functions both enumerators share); a nil order
// selects the greedy default.
func internedEnumEval(res *Result, q *query.CQ, d *db.Instance, order []int, ranges []rowRange) error {
	c, err := compileCQ(q, d)
	if err != nil {
		return err
	}
	if c.unsat {
		return nil
	}
	if len(c.atoms) == 0 {
		// Exactly the empty assignment, annotated with the unit 1 — same
		// as both string paths.
		res.add(c.headTuple(nil), semiring.FromMonomial(semiring.One, 1))
		return nil
	}
	if c.empty {
		return nil
	}
	if order == nil {
		order = atomOrder(q, OrderGreedy)
	}
	e := &iEnum{
		c:       c,
		order:   order,
		ranges:  ranges,
		binding: make([]uint32, c.nvars),
		rows:    make([]int, len(c.atoms)),
		fn: func(rows []int, binding []uint32) error {
			res.add(c.headTuple(binding), semiring.FromMonomial(c.monomial(rows), 1))
			return nil
		},
	}
	return e.extend(0)
}
