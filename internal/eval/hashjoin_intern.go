package eval

import (
	"runtime"
	"sync"

	"provmin/internal/db"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

// This file is the interned hash join: the set-at-a-time evaluator of
// hashjoin.go rebuilt on symbol ids. Join keys become fixed-width uint64
// composites (one or two packed uint32 ids cover almost every real join;
// wider keys pack ids into a byte string) instead of length-prefixed
// strings, build-side admission checks are integer compares, and — because
// partial assignments are immutable parent-linked nodes and N[X]
// polynomials are canonical — both the probe of a large step and the final
// emission can be split across workers without changing the result by a
// byte. The string evaluator stays behind Options.NoIntern as the ablation
// baseline.

// parallelProbeThreshold is the default minimum number of partial
// assignments a join step must carry before its probe fans out. Below it
// the goroutine hand-off costs more than the probe itself.
const parallelProbeThreshold = 1024

// ihjNode is one partial assignment: ids of the variables its step newly
// bound, the row tag joined in, and the assignment it extends. Immutable
// after construction, so nodes are shared freely across worker goroutines.
type ihjNode struct {
	parent *ihjNode
	vals   []uint32
	tag    string
}

// value resolves a variable reference from the node for plan step `step`.
func (n *ihjNode) value(step int, ref varRef) uint32 {
	for ; step > ref.step; step-- {
		n = n.parent
	}
	return n.vals[ref.idx]
}

// imatch is one build-side row admitted by an atom's constants, projected
// to the ids of the atom's newly introduced variables.
type imatch struct {
	vals []uint32
	tag  string
}

// ibuckets hashes build-side rows by their join-column ids. Up to two join
// columns — the overwhelmingly common case — the key is the two ids packed
// into one uint64 (injective, no allocation); wider keys pack all ids into
// a byte string.
type ibuckets struct {
	wide  bool
	small map[uint64][]imatch
	big   map[string][]imatch
}

func newIBuckets(njoin int) *ibuckets {
	b := &ibuckets{wide: njoin > 2}
	if b.wide {
		b.big = map[string][]imatch{}
	} else {
		b.small = map[uint64][]imatch{}
	}
	return b
}

func packPair(ids []uint32) uint64 {
	var k uint64
	for _, id := range ids { // 0, 1 or 2 ids
		k = k<<32 | uint64(id)
	}
	return k
}

func packWide(key []byte, ids []uint32) []byte {
	for _, id := range ids {
		key = append(key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return key
}

func (b *ibuckets) put(ids []uint32, m imatch) {
	if b.wide {
		k := string(packWide(nil, ids))
		b.big[k] = append(b.big[k], m)
	} else {
		k := packPair(ids)
		b.small[k] = append(b.small[k], m)
	}
}

type ihashEval struct {
	c     *compiledCQ
	opts  Options
	order []int
	varAt []varRef // per dense var index
	bound []bool   // per dense var index: registered in varAt yet?
}

// hashEvalCQInterned evaluates one conjunctive query set-at-a-time on
// symbol ids and accumulates every satisfying assignment's head tuple and
// monomial into res. Byte-identical to hashEvalCQ by construction.
func hashEvalCQInterned(res *Result, q *query.CQ, d *db.Instance, opts Options) error {
	c, err := compileCQ(q, d)
	if err != nil {
		return err
	}
	if c.unsat {
		return nil
	}
	if len(c.atoms) == 0 {
		res.add(c.headTuple(nil), semiring.FromMonomial(semiring.One, 1))
		return nil
	}
	if c.empty {
		return nil
	}
	e := &ihashEval{
		c:     c,
		opts:  opts,
		order: planAtomOrder(q, d, opts),
		varAt: make([]varRef, c.nvars),
		bound: make([]bool, c.nvars),
	}
	return e.run(res)
}

// workers returns how many goroutines may share a probe or emit of n
// items, per the configured parallelism and threshold; 1 means stay
// sequential.
func (e *ihashEval) workers(n int) int {
	thr := e.opts.ParallelThreshold
	if thr <= 0 {
		thr = parallelProbeThreshold
	}
	par := e.opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if n < thr || par <= 1 {
		return 1
	}
	if par > n {
		par = n
	}
	return par
}

func (e *ihashEval) run(res *Result) error {
	diseqStep := e.scheduleDiseqs()
	cur := []*ihjNode{{}}
	for step, atomIdx := range e.order {
		joinRefs, bk := e.buildSide(step, e.c.atoms[atomIdx])
		cur = e.probe(step, cur, joinRefs, bk, diseqStep)
		if len(cur) == 0 {
			return nil
		}
	}
	e.emit(res, cur)
	return nil
}

// buildSide scans the atom's relation for rows compatible with its
// constants and intra-atom repeated variables, hashing admitted rows by
// the ids of the columns whose variables are already bound. It registers
// the atom's new variables in e.varAt and returns the join-variable
// references plus the buckets.
func (e *ihashEval) buildSide(step int, at iAtom) ([]varRef, *ibuckets) {
	firstCol := make([]int, len(at.args))
	seenAt := make(map[int]int, len(at.args)) // var index -> first column
	var joinRefs []varRef
	var joinCols, newCols []int
	nnew := 0
	for i, a := range at.args {
		firstCol[i] = i
		if a.isConst {
			continue
		}
		if j, ok := seenAt[a.v]; ok {
			firstCol[i] = j
			continue
		}
		seenAt[a.v] = i
		if e.bound[a.v] {
			joinRefs = append(joinRefs, e.varAt[a.v])
			joinCols = append(joinCols, i)
		} else {
			e.varAt[a.v] = varRef{step: step, idx: nnew}
			e.bound[a.v] = true
			nnew++
			newCols = append(newCols, i)
		}
	}

	bk := newIBuckets(len(joinCols))
	keyIDs := make([]uint32, len(joinCols))
	rows := e.candidateRows(at)
	// One flat id arena for every admitted row's projection instead of one
	// tiny slice per row; capacity covers all candidates, so appends never
	// reallocate and the sub-slices stay valid.
	var flat []uint32
	if len(newCols) > 0 {
		flat = make([]uint32, 0, len(rows)*len(newCols))
	}
	for _, rowIdx := range rows {
		row := at.rel.RowIDs(rowIdx)
		ok := true
		for i, a := range at.args {
			if a.isConst {
				if row[i] != a.val {
					ok = false
					break
				}
			} else if firstCol[i] != i && row[i] != row[firstCol[i]] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i, c := range joinCols {
			keyIDs[i] = row[c]
		}
		m := imatch{tag: at.rel.Rows()[rowIdx].Tag}
		if len(newCols) > 0 {
			start := len(flat)
			for _, c := range newCols {
				flat = append(flat, row[c])
			}
			m.vals = flat[start:len(flat):len(flat)]
		}
		bk.put(keyIDs, m)
	}
	return joinRefs, bk
}

// candidateRows narrows the build scan by the per-column id index on the
// first constant argument, falling back to a full scan.
func (e *ihashEval) candidateRows(at iAtom) []int {
	for col, a := range at.args {
		if a.isConst {
			return at.rel.RowsWithID(col, a.val)
		}
	}
	all := make([]int, at.rel.Len())
	for i := range all {
		all[i] = i
	}
	return all
}

// probe extends every partial assignment in cur through the buckets,
// fanning the work across workers when the step is large enough. Chunks
// are contiguous and concatenated in order, so the resulting slice is
// exactly what a sequential probe would have produced.
func (e *ihashEval) probe(step int, cur []*ihjNode, joinRefs []varRef, bk *ibuckets, diseqStep []int) []*ihjNode {
	nw := e.workers(len(cur))
	if nw == 1 {
		return e.probeChunk(step, cur, joinRefs, bk, diseqStep)
	}
	parts := make([][]*ihjNode, nw)
	var wg sync.WaitGroup
	chunk := (len(cur) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cur) {
			hi = len(cur)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = e.probeChunk(step, cur[lo:hi], joinRefs, bk, diseqStep)
		}(w, lo, hi)
	}
	wg.Wait()
	next := parts[0]
	for _, p := range parts[1:] {
		next = append(next, p...)
	}
	return next
}

func (e *ihashEval) probeChunk(step int, cur []*ihjNode, joinRefs []varRef, bk *ibuckets, diseqStep []int) []*ihjNode {
	next := make([]*ihjNode, 0, len(cur))
	keyIDs := make([]uint32, len(joinRefs))
	var wideKey []byte
	// Nodes come from block-allocated arenas — one malloc per 512 nodes
	// instead of per node. Pointers into a full block stay valid when the
	// next block is started, and each chunk has its own arena, so worker
	// goroutines never share one.
	var arena []ihjNode
	for _, cn := range cur {
		for i, ref := range joinRefs {
			keyIDs[i] = cn.value(step-1, ref)
		}
		var ms []imatch
		if bk.wide {
			wideKey = packWide(wideKey[:0], keyIDs)
			ms = bk.big[string(wideKey)]
		} else {
			ms = bk.small[packPair(keyIDs)]
		}
		for _, m := range ms {
			if len(arena) == cap(arena) {
				arena = make([]ihjNode, 0, 512)
			}
			arena = append(arena, ihjNode{parent: cn, vals: m.vals, tag: m.tag})
			node := &arena[len(arena)-1]
			if !e.diseqsHold(diseqStep, step, node) {
				arena = arena[:len(arena)-1] // slot reused by the next match
				continue
			}
			next = append(next, node)
		}
	}
	return next
}

// emit materializes the final assignments into res, splitting across
// workers with per-worker partial results when the set is large. The
// partials are merged in chunk order and polynomial addition is
// commutative with a canonical representation, so the merged result is
// byte-identical to a sequential emit.
func (e *ihashEval) emit(res *Result, cur []*ihjNode) {
	nw := e.workers(len(cur))
	if nw == 1 {
		e.emitChunk(res, cur)
		return
	}
	parts := make([]*Result, nw)
	var wg sync.WaitGroup
	chunk := (len(cur) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cur) {
			hi = len(cur)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = newResult()
			e.emitChunk(parts[w], cur[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range parts {
		if p != nil {
			res.merge(p)
		}
	}
}

func (e *ihashEval) emitChunk(res *Result, cur []*ihjNode) {
	c := e.c
	last := len(e.order) - 1
	headRefs := make([]varRef, len(c.head))
	for i, a := range c.head {
		if !a.isConst {
			headRefs[i] = e.varAt[a.v]
		}
	}
	tags := make([]string, len(e.order))
	for _, n := range cur {
		t := make(db.Tuple, len(c.head))
		for i, a := range c.head {
			if a.isConst {
				t[i] = c.q.Head.Args[i].Name
			} else {
				t[i] = c.syms.Value(n.value(last, headRefs[i]))
			}
		}
		for i, p := len(tags)-1, n; i >= 0; i, p = i-1, p.parent {
			tags[i] = p.tag
		}
		res.addWitness(t, semiring.MonomialFromVars(tags))
	}
}

// scheduleDiseqs maps each compiled disequality to the earliest plan step
// after which both sides are decided (const-const pairs were decided at
// compile time and never reach here).
func (e *ihashEval) scheduleDiseqs() []int {
	boundAt := make([]int, e.c.nvars)
	for i := range boundAt {
		boundAt[i] = -1
	}
	for step, atomIdx := range e.order {
		for _, a := range e.c.atoms[atomIdx].args {
			if !a.isConst && boundAt[a.v] < 0 {
				boundAt[a.v] = step
			}
		}
	}
	stepOf := make([]int, len(e.c.diseqs))
	for i, dq := range e.c.diseqs {
		step := -1
		for _, side := range dq {
			if !side.isConst && boundAt[side.v] > step {
				step = boundAt[side.v]
			}
		}
		stepOf[i] = step
	}
	return stepOf
}

// diseqsHold checks the disequalities scheduled at this step against a
// freshly extended assignment. An uninterned constant side (invalidID)
// never equals a bound variable's id, so the integer compare is exact.
func (e *ihashEval) diseqsHold(diseqStep []int, step int, n *ihjNode) bool {
	for i, dq := range e.c.diseqs {
		if diseqStep[i] != step {
			continue
		}
		var l, r uint32
		if dq[0].isConst {
			l = dq[0].val
		} else {
			l = n.value(step, e.varAt[dq[0].v])
		}
		if dq[1].isConst {
			r = dq[1].val
		} else {
			r = n.value(step, e.varAt[dq[1].v])
		}
		if l == r {
			return false
		}
	}
	return true
}
