package datalog

import (
	"strings"
	"testing"
)

func TestParseAndClassify(t *testing.T) {
	p := MustParse(`
		# two-hop reachability
		Hop2(x,z) :- E(x,y), E(y,z)
		Goal(x,z) :- Hop2(x,z)
		Goal(x,y) :- E(x,y)
	`)
	if got := p.IDB(); len(got) != 2 || got[0] != "Goal" || got[1] != "Hop2" {
		t.Errorf("IDB = %v", got)
	}
	if got := p.EDB(); len(got) != 1 || got[0] != "E" {
		t.Errorf("EDB = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(""); err == nil {
		t.Error("empty program must fail")
	}
	if _, err := Parse("Goal(x) :- "); err == nil {
		t.Error("bad rule must fail")
	}
	if _, err := Parse("Goal(x) :- E(x)\nGoal(x,y) :- E(x), E(y)"); err == nil {
		t.Error("inconsistent head arity must fail")
	}
	if _, err := Parse("Goal(x) :- E(x)\nOther(x) :- E(x), Goal(x,y)"); err == nil {
		t.Error("inconsistent relation arity must fail")
	}
}

func TestRecursionRejected(t *testing.T) {
	// Self recursion.
	if _, err := Parse("T(x,y) :- T(x,z), E(z,y)\nT(x,y) :- E(x,y)"); err == nil ||
		!strings.Contains(err.Error(), "recursive") {
		t.Errorf("self recursion must be rejected, got %v", err)
	}
	// Mutual recursion.
	if _, err := Parse("A(x) :- B(x)\nB(x) :- A(x)"); err == nil ||
		!strings.Contains(err.Error(), "recursive") {
		t.Errorf("mutual recursion must be rejected, got %v", err)
	}
}

func TestTopoOrder(t *testing.T) {
	p := MustParse(`
		C(x) :- B(x), A(x)
		B(x) :- A(x)
		A(x) :- E(x)
	`)
	order := p.topoOrder()
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos["A"] < pos["B"] && pos["B"] < pos["C"]) {
		t.Errorf("topoOrder = %v", order)
	}
}
