// Package datalog implements non-recursive Datalog programs over annotated
// databases. The paper's conclusions (§8) name provenance minimization for
// Datalog as future work; the non-recursive fragment is exactly the part
// where the paper's UCQ≠ machinery already applies: every intensional
// predicate unfolds into a union of conjunctive queries with disequalities
// over the extensional schema, with composed N[X] provenance, and MinProv
// then computes its core provenance.
//
// A program is a list of rules in the package query rule syntax. Relations
// that never occur in a rule head are extensional (EDB); the rest are
// intensional (IDB). Recursion — any cycle among IDB predicates, including
// self-reference — is detected and rejected.
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"provmin/internal/query"
)

// Program is a set of Datalog rules.
type Program struct {
	Rules []*query.CQ
}

// Parse parses a program: one rule per line (or ';'-separated), comments
// starting with '#' or '--'.
func Parse(text string) (*Program, error) {
	var rules []*query.CQ
	for _, line := range strings.Split(strings.ReplaceAll(text, ";", "\n"), "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "#") || strings.HasPrefix(s, "--") {
			continue
		}
		r, err := query.ParseRule(s)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("parse program: no rules found")
	}
	p := &Program{Rules: rules}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse that panics on error.
func MustParse(text string) *Program {
	p, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return p
}

// IDB returns the intensional predicates (rule heads), sorted.
func (p *Program) IDB() []string {
	seen := map[string]bool{}
	for _, r := range p.Rules {
		seen[r.Head.Rel] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EDB returns the extensional predicates (body-only relations), sorted.
func (p *Program) EDB() []string {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Rel] = true
	}
	seen := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Atoms {
			if !idb[a.Rel] {
				seen[a.Rel] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate checks rule-head arity consistency and the absence of recursion.
func (p *Program) Validate() error {
	headArity := map[string]int{}
	for _, r := range p.Rules {
		if n, ok := headArity[r.Head.Rel]; ok && n != len(r.Head.Args) {
			return fmt.Errorf("predicate %s defined with arities %d and %d", r.Head.Rel, n, len(r.Head.Args))
		}
		headArity[r.Head.Rel] = len(r.Head.Args)
	}
	// Cross-rule arity consistency for every relation.
	arity := map[string]int{}
	for rel, n := range headArity {
		arity[rel] = n
	}
	for _, r := range p.Rules {
		for _, a := range r.Atoms {
			if n, ok := arity[a.Rel]; ok && n != len(a.Args) {
				return fmt.Errorf("relation %s used with arities %d and %d", a.Rel, n, len(a.Args))
			}
			arity[a.Rel] = len(a.Args)
		}
	}
	if cycle := p.findCycle(); cycle != nil {
		return fmt.Errorf("recursive program not supported (the paper leaves Datalog minimization open): cycle %s",
			strings.Join(cycle, " -> "))
	}
	return nil
}

// findCycle returns a dependency cycle among IDB predicates, or nil.
func (p *Program) findCycle() []string {
	idb := map[string]bool{}
	deps := map[string][]string{}
	for _, r := range p.Rules {
		idb[r.Head.Rel] = true
	}
	for _, r := range p.Rules {
		for _, a := range r.Atoms {
			if idb[a.Rel] {
				deps[r.Head.Rel] = append(deps[r.Head.Rel], a.Rel)
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var dfs func(n string) []string
	dfs = func(n string) []string {
		color[n] = gray
		stack = append(stack, n)
		for _, m := range deps[n] {
			switch color[m] {
			case gray:
				// Found a cycle: slice the stack from m's occurrence.
				for i, s := range stack {
					if s == m {
						return append(append([]string{}, stack[i:]...), m)
					}
				}
				return []string{m, m}
			case white:
				if c := dfs(m); c != nil {
					return c
				}
			}
		}
		color[n] = black
		stack = stack[:len(stack)-1]
		return nil
	}
	names := p.IDB()
	for _, n := range names {
		if color[n] == white {
			if c := dfs(n); c != nil {
				return c
			}
		}
	}
	return nil
}

// topoOrder returns the IDB predicates in dependency order (dependencies
// first). The program must be validated (acyclic).
func (p *Program) topoOrder() []string {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Rel] = true
	}
	deps := map[string]map[string]bool{}
	for _, r := range p.Rules {
		if deps[r.Head.Rel] == nil {
			deps[r.Head.Rel] = map[string]bool{}
		}
		for _, a := range r.Atoms {
			if idb[a.Rel] && a.Rel != r.Head.Rel {
				deps[r.Head.Rel][a.Rel] = true
			}
		}
	}
	var order []string
	done := map[string]bool{}
	var visit func(n string)
	visit = func(n string) {
		if done[n] {
			return
		}
		done[n] = true
		reqs := make([]string, 0, len(deps[n]))
		for m := range deps[n] {
			reqs = append(reqs, m)
		}
		sort.Strings(reqs)
		for _, m := range reqs {
			visit(m)
		}
		order = append(order, n)
	}
	for _, n := range p.IDB() {
		visit(n)
	}
	return order
}
