package datalog

import (
	"fmt"

	"provmin/internal/query"
)

// Unfold rewrites the given intensional predicate into an equivalent UCQ≠
// over the extensional schema by repeatedly inlining rule bodies. The
// unfolded query's N[X] provenance is the composed provenance of the view
// hierarchy: evaluating it over the base annotations equals materializing
// each intermediate view with its (polynomial) annotations and substituting
// — the tests verify this compositionality.
func (p *Program) Unfold(goal string) (*query.UCQ, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Rel] = true
	}
	if !idb[goal] {
		return nil, fmt.Errorf("predicate %s has no rules", goal)
	}

	u := &unfolder{program: p, idb: idb, defs: map[string][]adjunctDef{}}
	for _, pred := range p.topoOrder() {
		if err := u.definePred(pred); err != nil {
			return nil, err
		}
	}

	defs := u.defs[goal]
	if len(defs) == 0 {
		return nil, fmt.Errorf("predicate %s unfolds to the empty query (every rule is unsatisfiable)", goal)
	}
	adjuncts := make([]*query.CQ, 0, len(defs))
	for _, d := range defs {
		q := normalizeVars(query.NewCQ(query.NewAtom(goal, d.head...), d.atoms, d.diseqs))
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("unfolded adjunct invalid: %w", err)
		}
		adjuncts = append(adjuncts, q)
	}
	return &query.UCQ{Adjuncts: adjuncts}, nil
}

// adjunctDef is one conjunctive branch of a predicate's definition over the
// extensional schema.
type adjunctDef struct {
	head   []query.Arg
	atoms  []query.Atom
	diseqs []query.Diseq
}

type unfolder struct {
	program *Program
	idb     map[string]bool
	defs    map[string][]adjunctDef
	fresh   int
}

func (u *unfolder) freshVar() string {
	u.fresh++
	return fmt.Sprintf("u%d", u.fresh)
}

// definePred computes the EDB-level definition of pred; definitions of its
// dependencies are already available (topological order).
func (u *unfolder) definePred(pred string) error {
	var out []adjunctDef
	for _, r := range u.program.Rules {
		if r.Head.Rel != pred {
			continue
		}
		expanded, err := u.expandRule(r)
		if err != nil {
			return err
		}
		out = append(out, expanded...)
	}
	u.defs[pred] = out
	return nil
}

// expandRule inlines every IDB atom of the rule with every combination of
// its definition's adjuncts.
func (u *unfolder) expandRule(r *query.CQ) ([]adjunctDef, error) {
	// Rename the rule apart so different uses never clash.
	r = u.renameApart(r)
	combos := []combo{{}}
	for _, at := range r.Atoms {
		if !u.idb[at.Rel] {
			for i := range combos {
				combos[i].atoms = append(combos[i].atoms, at)
			}
			continue
		}
		defs := u.defs[at.Rel]
		var next []combo
		for _, c := range combos {
			for _, d := range defs {
				rd := u.renameDef(d)
				if len(rd.head) != len(at.Args) {
					return nil, fmt.Errorf("arity mismatch inlining %s", at.Rel)
				}
				nc := c.clone()
				nc.atoms = append(nc.atoms, rd.atoms...)
				nc.diseqs = append(nc.diseqs, rd.diseqs...)
				for i := range rd.head {
					nc.equations = append(nc.equations, [2]query.Arg{rd.head[i], at.Args[i]})
				}
				next = append(next, nc)
			}
		}
		combos = next
	}

	var out []adjunctDef
	for _, c := range combos {
		def, ok := c.resolve(r)
		if ok {
			out = append(out, def)
		}
	}
	return out, nil
}

// combo accumulates one inlining choice: collected atoms/diseqs plus the
// unification equations between definition heads and call-site arguments.
type combo struct {
	atoms     []query.Atom
	diseqs    []query.Diseq
	equations [][2]query.Arg
}

func (c combo) clone() combo {
	nc := combo{
		atoms:     append([]query.Atom{}, c.atoms...),
		diseqs:    append([]query.Diseq{}, c.diseqs...),
		equations: append([][2]query.Arg{}, c.equations...),
	}
	return nc
}

// resolve solves the equations by union-find over arguments and applies the
// solution to the collected atoms, the rule's own diseqs and its head. It
// reports ok=false when the equations are unsolvable (distinct constants
// equated) or a disequality collapses.
func (c combo) resolve(rule *query.CQ) (adjunctDef, bool) {
	uf := newUnionFind()
	for _, eq := range c.equations {
		if !uf.union(eq[0], eq[1]) {
			return adjunctDef{}, false
		}
	}
	apply := func(a query.Arg) query.Arg { return uf.find(a) }

	var def adjunctDef
	for _, at := range c.atoms {
		args := make([]query.Arg, len(at.Args))
		for i, a := range at.Args {
			args[i] = apply(a)
		}
		def.atoms = append(def.atoms, query.NewAtom(at.Rel, args...))
	}
	allDiseqs := append(append([]query.Diseq{}, c.diseqs...), rule.Diseqs...)
	for _, d := range allDiseqs {
		l, r := apply(d.Left), apply(d.Right)
		if l == r {
			return adjunctDef{}, false
		}
		if l.Const && r.Const {
			continue // distinct constants: vacuous
		}
		def.diseqs = append(def.diseqs, query.NewDiseq(l, r))
	}
	def.head = make([]query.Arg, len(rule.Head.Args))
	for i, a := range rule.Head.Args {
		def.head[i] = apply(a)
	}
	return def, true
}

// renameApart renames the rule's variables into the unfolder's fresh space.
func (u *unfolder) renameApart(r *query.CQ) *query.CQ {
	s := query.Subst{}
	for _, v := range r.Vars() {
		s[v] = query.V(u.freshVar())
	}
	return r.ApplySubst(s)
}

// renameDef renames a definition's variables into fresh space.
func (u *unfolder) renameDef(d adjunctDef) adjunctDef {
	s := query.Subst{}
	vars := map[string]bool{}
	collect := func(a query.Arg) {
		if !a.Const {
			vars[a.Name] = true
		}
	}
	for _, a := range d.head {
		collect(a)
	}
	for _, at := range d.atoms {
		for _, a := range at.Args {
			collect(a)
		}
	}
	for _, dq := range d.diseqs {
		collect(dq.Left)
		collect(dq.Right)
	}
	for v := range vars {
		s[v] = query.V(u.freshVar())
	}
	apply := func(a query.Arg) query.Arg { return s.Apply(a) }
	out := adjunctDef{head: make([]query.Arg, len(d.head))}
	for i, a := range d.head {
		out.head[i] = apply(a)
	}
	for _, at := range d.atoms {
		args := make([]query.Arg, len(at.Args))
		for i, a := range at.Args {
			args[i] = apply(a)
		}
		out.atoms = append(out.atoms, query.NewAtom(at.Rel, args...))
	}
	for _, dq := range d.diseqs {
		out.diseqs = append(out.diseqs, query.NewDiseq(apply(dq.Left), apply(dq.Right)))
	}
	return out
}

// unionFind over query.Arg values; constants are forced class
// representatives and two distinct constants cannot merge.
type unionFind struct {
	parent map[query.Arg]query.Arg
}

func newUnionFind() *unionFind { return &unionFind{parent: map[query.Arg]query.Arg{}} }

func (u *unionFind) find(a query.Arg) query.Arg {
	p, ok := u.parent[a]
	if !ok || p == a {
		return a
	}
	root := u.find(p)
	u.parent[a] = root
	return root
}

func (u *unionFind) union(a, b query.Arg) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return true
	}
	switch {
	case ra.Const && rb.Const:
		return false
	case ra.Const:
		u.parent[rb] = ra
	default:
		u.parent[ra] = rb
	}
	return true
}

// normalizeVars renames an adjunct's variables to v1, v2, ... in order of
// first occurrence (head first), for readable unfolded queries.
func normalizeVars(q *query.CQ) *query.CQ {
	s := query.Subst{}
	next := 0
	note := func(a query.Arg) {
		if a.Const {
			return
		}
		if _, ok := s[a.Name]; !ok {
			next++
			s[a.Name] = query.V(fmt.Sprintf("v%d", next))
		}
	}
	for _, a := range q.Head.Args {
		note(a)
	}
	for _, at := range q.Atoms {
		for _, a := range at.Args {
			note(a)
		}
	}
	for _, d := range q.Diseqs {
		note(d.Left)
		note(d.Right)
	}
	return q.ApplySubst(s)
}
