package datalog

import (
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/minimize"
	"provmin/internal/order"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

func TestUnfoldSingleView(t *testing.T) {
	p := MustParse(`
		Hop2(x,z) :- E(x,y), E(y,z)
		Goal(x,z) :- Hop2(x,z)
	`)
	u, err := p.Unfold("Goal")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Adjuncts) != 1 || len(u.Adjuncts[0].Atoms) != 2 {
		t.Fatalf("unfolded = %v", u)
	}
	want := query.MustParseUnion("Goal(x,z) :- E(x,y), E(y,z)")
	if !minimize.Equivalent(u, want) {
		t.Errorf("unfolded %v not equivalent to %v", u, want)
	}
}

func TestUnfoldUnionOfRules(t *testing.T) {
	p := MustParse(`
		Goal(x) :- E(x,y), E(y,x), x != y
		Goal(x) :- E(x,x)
	`)
	u, err := p.Unfold("Goal")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Adjuncts) != 2 {
		t.Fatalf("unfolded = %v", u)
	}
}

func TestUnfoldProvenanceMatchesDirectQuery(t *testing.T) {
	// A two-level view stack computing the triangle query.
	p := MustParse(`
		Path2(x,z) :- E(x,y), E(y,z)
		Tri() :- Path2(x,z), E(z,x)
	`)
	u, err := p.Unfold("Tri")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewInstance()
	d.MustAdd("E", "s1", "a", "a")
	d.MustAdd("E", "s2", "a", "b")
	d.MustAdd("E", "s3", "b", "a")
	d.MustAdd("E", "s4", "b", "c")
	d.MustAdd("E", "s5", "c", "a")
	got, err := eval.Provenance(u, d, db.Tuple{})
	if err != nil {
		t.Fatal(err)
	}
	direct := query.MustParse("ans() :- E(x,y), E(y,z), E(z,x)")
	want, err := eval.Provenance(query.Single(direct), d, db.Tuple{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("unfolded provenance %v, direct %v", got, want)
	}
}

// TestUnfoldCompositionality: the unfolded provenance equals materializing
// the intermediate view with its polynomial annotations and substituting —
// the view-composition semantics of annotated relations.
func TestUnfoldCompositionality(t *testing.T) {
	p := MustParse(`
		V(x) :- E(x,y), E(y,x)
		Goal(x) :- V(x), U(x)
	`)
	u, err := p.Unfold("Goal")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewInstance()
	d.MustAdd("E", "s1", "a", "a")
	d.MustAdd("E", "s2", "a", "b")
	d.MustAdd("E", "s3", "b", "a")
	d.MustAdd("U", "u1", "a")
	d.MustAdd("U", "u2", "b")

	// Direct unfolded evaluation.
	res, err := eval.EvalUCQ(u, d)
	if err != nil {
		t.Fatal(err)
	}

	// Two-step composition: materialize V with its polynomials...
	vQuery := query.MustParse("ans(x) :- E(x,y), E(y,x)")
	vRes, err := eval.EvalCQ(vQuery, d)
	if err != nil {
		t.Fatal(err)
	}
	// ...then compose Goal(x) = V(x) * U(x) by hand.
	for _, vt := range vRes.Tuples() {
		uTag := d.Lookup("U").TagOf(vt.Tuple...)
		if uTag == "" {
			continue
		}
		want := vt.Prov.Mul(semiring.Var(uTag))
		got, ok := res.Lookup(vt.Tuple)
		if !ok {
			t.Fatalf("tuple %v missing from unfolded result", vt.Tuple)
		}
		if !got.Equal(want) {
			t.Errorf("tuple %v: unfolded %v, composed %v", vt.Tuple, got, want)
		}
	}
}

func TestUnfoldRepeatedHeadVarsUnify(t *testing.T) {
	// V's head repeats a variable: calling V(a,b) must force a = b.
	p := MustParse(`
		V(x,x) :- E(x,x)
		Goal(a,b) :- V(a,b)
	`)
	u, err := p.Unfold("Goal")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewInstance()
	d.MustAdd("E", "s1", "a", "a")
	d.MustAdd("E", "s2", "a", "b")
	res, err := eval.EvalUCQ(u, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Contains(db.Tuple{"a", "a"}) {
		t.Fatalf("result:\n%s", res)
	}
}

func TestUnfoldHeadConstants(t *testing.T) {
	p := MustParse(`
		V(x,'tag') :- E(x)
		Goal(x,y) :- V(x,y)
	`)
	u, err := p.Unfold("Goal")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewInstance()
	d.MustAdd("E", "s1", "a")
	res, err := eval.EvalUCQ(u, d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(db.Tuple{"a", "tag"}) {
		t.Fatalf("result:\n%s", res)
	}
	// Calling with an incompatible constant yields an unsatisfiable rule.
	p2 := MustParse(`
		V(x,'tag') :- E(x)
		Goal(x) :- V(x,'other')
	`)
	if _, err := p2.Unfold("Goal"); err == nil {
		t.Error("constant clash should make Goal empty and be reported")
	}
}

func TestUnfoldDiseqsPropagate(t *testing.T) {
	p := MustParse(`
		V(x,y) :- E(x,y), x != y
		Goal(x) :- V(x,z), V(z,x), x != z
	`)
	u, err := p.Unfold("Goal")
	if err != nil {
		t.Fatal(err)
	}
	adj := u.Adjuncts[0]
	if len(adj.Diseqs) != 1 {
		// x != z appears three times (twice from V, once from the rule) but
		// normalizes to a single disequality between the two variables.
		t.Errorf("diseqs = %v", adj.Diseqs)
	}
	if len(adj.Atoms) != 2 {
		t.Errorf("atoms = %v", adj.Atoms)
	}
}

func TestUnfoldDiseqCollapseDropsAdjunct(t *testing.T) {
	// V requires y != 'a'; Goal calls V(x,'a'): contradiction, no adjuncts.
	p := MustParse(`
		V(x,y) :- E(x,y), y != 'a'
		Goal(x) :- V(x,'a')
	`)
	if _, err := p.Unfold("Goal"); err == nil {
		t.Error("contradictory unfolding must report emptiness")
	}
}

func TestUnfoldSharedViewUsedTwice(t *testing.T) {
	// The same view twice in one body: renamed apart, annotations multiply.
	p := MustParse(`
		V(x,y) :- E(x,y)
		Goal() :- V(x,y), V(y,x)
	`)
	u, err := p.Unfold("Goal")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewInstance()
	d.MustAdd("E", "s1", "a", "b")
	d.MustAdd("E", "s2", "b", "a")
	got, err := eval.Provenance(u, d, db.Tuple{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(semiring.MustParsePolynomial("2*s1*s2")) {
		t.Errorf("provenance = %v, want 2*s1*s2", got)
	}
}

func TestUnfoldUnknownGoal(t *testing.T) {
	p := MustParse("Goal(x) :- E(x)")
	if _, err := p.Unfold("Nope"); err == nil {
		t.Error("unknown goal must fail")
	}
}

// TestUnfoldThenMinProv: the §8 future-work payoff — core provenance of a
// (non-recursive) Datalog view, via unfolding + MinProv.
func TestUnfoldThenMinProv(t *testing.T) {
	p := MustParse(`
		Mutual(x) :- E(x,y), E(y,x)
		Goal(x) :- Mutual(x)
	`)
	u, err := p.Unfold("Goal")
	if err != nil {
		t.Fatal(err)
	}
	pmin := minimize.MinProv(u)
	d := db.NewInstance()
	d.MustAdd("E", "s1", "a", "a")
	d.MustAdd("E", "s2", "a", "b")
	d.MustAdd("E", "s3", "b", "a")
	rel, err := order.CompareOnDB(pmin, u, d)
	if err != nil {
		t.Fatal(err)
	}
	if rel != order.Less {
		t.Errorf("core of the Datalog view should be strictly terser here, got %v", rel)
	}
}
