// Package prob implements query answering over tuple-independent
// probabilistic databases using provenance polynomials as input — one of the
// data-management tools the paper motivates core provenance with (its §1
// cites query answering in probabilistic databases as a consumer of
// provenance).
//
// Each input tuple (annotation tag) is present independently with a given
// probability; the probability of an output tuple is the probability that at
// least one of its derivations survives. Because dropping exponents and
// dominated monomials does not change the derivation event (the event of a
// superset witness is contained in the event of its subset), the probability
// computed from the core provenance equals the probability computed from the
// full polynomial — with exponentially less work in the best case. The test
// suite verifies this invariant.
package prob

import (
	"fmt"
	"math/rand"

	"provmin/internal/semiring"
)

// MaxExactWitnesses bounds the inclusion–exclusion expansion: 2^k terms for
// k distinct witnesses.
const MaxExactWitnesses = 20

// Exact computes the exact probability that the output tuple annotated with
// p is derivable, given independent tuple probabilities. It expands
// inclusion–exclusion over the distinct witness sets of p and therefore
// refuses polynomials with more than MaxExactWitnesses distinct witnesses —
// use MonteCarlo for those.
func Exact(p semiring.Polynomial, prob func(tag string) float64) (float64, error) {
	ws := semiring.Why(p).Witnesses()
	if len(ws) > MaxExactWitnesses {
		return 0, fmt.Errorf("polynomial has %d witnesses, exact inclusion-exclusion capped at %d", len(ws), MaxExactWitnesses)
	}
	if len(ws) == 0 {
		return 0, nil
	}
	total := 0.0
	for mask := 1; mask < 1<<len(ws); mask++ {
		union := map[string]bool{}
		bits := 0
		for i := range ws {
			if mask&(1<<i) != 0 {
				bits++
				for _, v := range ws[i].Vars() {
					union[v] = true
				}
			}
		}
		term := 1.0
		for v := range union {
			term *= prob(v)
		}
		if bits%2 == 1 {
			total += term
		} else {
			total -= term
		}
	}
	return total, nil
}

// MonteCarlo estimates the derivation probability by sampling tuple
// presence. Deterministic in the seed.
func MonteCarlo(p semiring.Polynomial, prob func(tag string) float64, samples int, seed int64) float64 {
	ws := semiring.Why(p).Witnesses()
	if len(ws) == 0 {
		return 0
	}
	vars := p.Vars()
	rng := rand.New(rand.NewSource(seed))
	hits := 0
	present := map[string]bool{}
	for s := 0; s < samples; s++ {
		for _, v := range vars {
			present[v] = rng.Float64() < prob(v)
		}
		for _, w := range ws {
			ok := true
			for _, v := range w.Vars() {
				if !present[v] {
					ok = false
					break
				}
			}
			if ok {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(samples)
}

// UniformProb returns a constant-probability valuation.
func UniformProb(q float64) func(string) float64 {
	return func(string) float64 { return q }
}
