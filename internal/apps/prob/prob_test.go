package prob

import (
	"math"
	"testing"

	"provmin/internal/db"
	"provmin/internal/direct"
	"provmin/internal/eval"
	"provmin/internal/query"
	"provmin/internal/semiring"
	"provmin/internal/workload"
)

func TestExactSingleWitness(t *testing.T) {
	p := semiring.MustParsePolynomial("s1*s2")
	got, err := Exact(p, func(v string) float64 {
		return map[string]float64{"s1": 0.5, "s2": 0.4}[v]
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Exact = %v, want 0.2", got)
	}
}

func TestExactTwoWitnessesInclusionExclusion(t *testing.T) {
	// P(s1 ∪ s2) = p1 + p2 - p1*p2.
	p := semiring.MustParsePolynomial("s1 + s2")
	got, err := Exact(p, func(v string) float64 {
		return map[string]float64{"s1": 0.5, "s2": 0.5}[v]
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Exact = %v, want 0.75", got)
	}
}

func TestExactOverlappingWitnesses(t *testing.T) {
	// p = s1*s2 + s1*s3 with all probs 1/2:
	// P = 1/4 + 1/4 - 1/8 = 3/8.
	p := semiring.MustParsePolynomial("s1*s2 + s1*s3")
	got, err := Exact(p, UniformProb(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.375) > 1e-12 {
		t.Errorf("Exact = %v, want 0.375", got)
	}
}

func TestExactZeroAndCap(t *testing.T) {
	got, err := Exact(semiring.Zero, UniformProb(0.5))
	if err != nil || got != 0 {
		t.Errorf("Exact(0) = %v, %v", got, err)
	}
	big := semiring.Zero
	for i := 0; i < MaxExactWitnesses+1; i++ {
		big = big.AddMonomial(semiring.NewMonomial("t"+string(rune('a'+i%26))+string(rune('a'+i/26))), 1)
	}
	if _, err := Exact(big, UniformProb(0.5)); err == nil {
		t.Error("witness cap must be enforced")
	}
}

func TestCoreProbabilityEqualsFullProbability(t *testing.T) {
	// The paper's motivating invariant: feeding the (cheaper) core
	// provenance to the probabilistic tool yields the same answer.
	p := semiring.MustParsePolynomial("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
	core := direct.CoreUpToCoefficients(p)
	full, err := Exact(p, UniformProb(0.5))
	if err != nil {
		t.Fatal(err)
	}
	fromCore, err := Exact(core, UniformProb(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-fromCore) > 1e-12 {
		t.Errorf("probability differs: full=%v core=%v", full, fromCore)
	}
}

func TestCoreProbabilityInvariantOnEvaluatedQueries(t *testing.T) {
	// End to end: evaluate Qconj over Table 2, compare per-tuple
	// probabilities from raw provenance vs core provenance.
	res, err := eval.EvalCQ(workload.QConj, workload.Table2())
	if err != nil {
		t.Fatal(err)
	}
	for _, ot := range res.Tuples() {
		full, err := Exact(ot.Prov, UniformProb(0.3))
		if err != nil {
			t.Fatal(err)
		}
		fromCore, err := Exact(direct.CoreUpToCoefficients(ot.Prov), UniformProb(0.3))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(full-fromCore) > 1e-12 {
			t.Errorf("tuple %v: full=%v core=%v", ot.Tuple, full, fromCore)
		}
	}
}

func TestMonteCarloConvergesToExact(t *testing.T) {
	p := semiring.MustParsePolynomial("s1*s2 + s3")
	probs := func(v string) float64 {
		return map[string]float64{"s1": 0.9, "s2": 0.5, "s3": 0.2}[v]
	}
	exact, err := Exact(p, probs)
	if err != nil {
		t.Fatal(err)
	}
	est := MonteCarlo(p, probs, 200000, 42)
	if math.Abs(est-exact) > 0.01 {
		t.Errorf("MonteCarlo = %v, exact = %v", est, exact)
	}
}

func TestMonteCarloZero(t *testing.T) {
	if got := MonteCarlo(semiring.Zero, UniformProb(0.9), 100, 1); got != 0 {
		t.Errorf("MonteCarlo(0) = %v", got)
	}
}

func TestProbabilityAgreesWithGroundTruthEnumeration(t *testing.T) {
	// Brute-force ground truth over all 2^n worlds of a small instance:
	// P(t in Q(world)) must equal Exact on the provenance polynomial.
	d := workload.Table2()
	u := query.Single(workload.QConj)
	res, err := eval.EvalUCQ(u, d)
	if err != nil {
		t.Fatal(err)
	}
	tags := d.Tags()
	pr := map[string]float64{"s1": 0.3, "s2": 0.7, "s3": 0.5, "s4": 0.9}
	for _, ot := range res.Tuples() {
		want := 0.0
		for mask := 0; mask < 1<<len(tags); mask++ {
			world := db.NewInstance()
			wp := 1.0
			for i, tag := range tags {
				keep := mask&(1<<i) != 0
				if keep {
					wp *= pr[tag]
				} else {
					wp *= 1 - pr[tag]
				}
				if keep {
					rel, tuple, _ := d.FactOf(tag)
					world.MustAdd(rel, tag, tuple...)
				}
			}
			wr, err := eval.EvalUCQ(u, world)
			if err != nil {
				t.Fatal(err)
			}
			if wr.Contains(ot.Tuple) {
				want += wp
			}
		}
		got, err := Exact(ot.Prov, func(v string) float64 { return pr[v] })
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("tuple %v: Exact=%v ground truth=%v", ot.Tuple, got, want)
		}
	}
}
