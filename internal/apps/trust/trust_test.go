package trust

import (
	"math"
	"testing"

	"provmin/internal/direct"
	"provmin/internal/eval"
	"provmin/internal/semiring"
	"provmin/internal/workload"
)

func TestCostCheapestDerivation(t *testing.T) {
	p := semiring.MustParsePolynomial("s1*s2 + s3")
	costs := func(v string) float64 {
		return map[string]float64{"s1": 1, "s2": 2, "s3": 10}[v]
	}
	if got := Cost(p, costs); got != 3 {
		t.Errorf("Cost = %v, want 3", got)
	}
}

func TestCostRespectsExponents(t *testing.T) {
	// Using a tuple twice costs twice under the tropical model.
	p := semiring.MustParsePolynomial("s1^2")
	if got := Cost(p, Uniform(5)); got != 10 {
		t.Errorf("Cost(s1^2) = %v, want 10", got)
	}
}

func TestCostOfUnderivable(t *testing.T) {
	if got := Cost(semiring.Zero, Uniform(1)); got != semiring.TropicalInf {
		t.Errorf("Cost(0) = %v, want inf", got)
	}
}

func TestConfidenceMostConfidentDerivation(t *testing.T) {
	p := semiring.MustParsePolynomial("s1*s2 + s3")
	conf := func(v string) float64 {
		return map[string]float64{"s1": 0.9, "s2": 0.9, "s3": 0.5}[v]
	}
	if got := Confidence(p, conf); math.Abs(got-0.81) > 1e-12 {
		t.Errorf("Confidence = %v, want 0.81", got)
	}
}

func TestCoreImprovesOrPreservesTrust(t *testing.T) {
	// The core provenance is realized by an equivalent (p-minimal) query,
	// so its cheapest derivation can only be cheaper and its best
	// confidence can only be higher: cost(core) ≤ cost(p) and
	// conf(core) ≥ conf(p) for non-negative costs and confidences in [0,1].
	polys := []string{
		"s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5",
		"s1*s2 + s1^2",
		"2*s1*s2*s3 + s4",
		"s1 + s1*s2",
	}
	costs := func(v string) float64 {
		return map[string]float64{"s1": 3, "s2": 1, "s3": 4, "s4": 7, "s5": 2}[v]
	}
	confs := func(v string) float64 {
		return map[string]float64{"s1": 0.5, "s2": 0.9, "s3": 0.4, "s4": 0.8, "s5": 0.7}[v]
	}
	for _, s := range polys {
		p := semiring.MustParsePolynomial(s)
		core := direct.CoreUpToCoefficients(p)
		if Cost(core, costs) > Cost(p, costs) {
			t.Errorf("%v: core cost %v > full cost %v", p, Cost(core, costs), Cost(p, costs))
		}
		if Confidence(core, confs) < Confidence(p, confs) {
			t.Errorf("%v: core confidence %v < full %v", p, Confidence(core, confs), Confidence(p, confs))
		}
	}
}

func TestCorePreservesTrustOnExponentFreeMinimalPolynomials(t *testing.T) {
	// When the polynomial is already exponent-free and antichain (its own
	// core up to coefficients), trust values are identical.
	p := semiring.MustParsePolynomial("s1*s2 + s3*s4")
	core := direct.CoreUpToCoefficients(p)
	costs := Uniform(2)
	if Cost(p, costs) != Cost(core, costs) {
		t.Error("cost must be preserved on core-shaped polynomials")
	}
}

func TestTrustOnEvaluatedQuery(t *testing.T) {
	// Qunion vs Qconj on Table 2: equivalent queries, and the terser
	// provenance gives a no-worse trust assessment for every tuple.
	costs := func(v string) float64 {
		return map[string]float64{"s1": 1, "s2": 2, "s3": 3, "s4": 4}[v]
	}
	rUnion, err := eval.EvalUCQ(workload.QUnion, workload.Table2())
	if err != nil {
		t.Fatal(err)
	}
	rConj, err := eval.EvalCQ(workload.QConj, workload.Table2())
	if err != nil {
		t.Fatal(err)
	}
	for _, ot := range rUnion.Tuples() {
		pc, _ := rConj.Lookup(ot.Tuple)
		if Cost(ot.Prov, costs) > Cost(pc, costs) {
			t.Errorf("tuple %v: Qunion cost exceeds Qconj cost", ot.Tuple)
		}
	}
	// Concretely for (a): Qunion gives min(c1, c2+c3) = 1; Qconj gives
	// min(2*c1, c2+c3) = 2.
	pa, _ := rUnion.Lookup(rUnion.Tuples()[0].Tuple)
	if got := Cost(pa, costs); got != 1 {
		t.Errorf("Qunion cost(a) = %v, want 1", got)
	}
	pca, _ := rConj.Lookup(rUnion.Tuples()[0].Tuple)
	if got := Cost(pca, costs); got != 2 {
		t.Errorf("Qconj cost(a) = %v, want 2", got)
	}
}
