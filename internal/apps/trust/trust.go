// Package trust implements provenance-based trust assessment, a consumer of
// provenance polynomials the paper cites in its motivation (§1, §7).
//
// Two standard trust models are provided, both obtained by evaluating the
// provenance polynomial in a coarser semiring (the factorization property of
// N[X]):
//
//   - Cost (tropical semiring, min-plus): every input tuple has a
//     non-negative access/verification cost; the trustworthiness of an
//     output tuple is the cost of its cheapest derivation.
//   - Confidence (Viterbi semiring, max-times): every input tuple has a
//     confidence in [0,1]; an output tuple's confidence is that of its most
//     confident derivation.
//
// Relationship to core provenance: dropping a dominated monomial never
// changes either value (a superset derivation costs at least as much and is
// at most as confident), and dropping exponents can only improve them — the
// core value is the trust of the *inherent* computation, realized by the
// p-minimal query. The tests pin down these monotonicity facts.
package trust

import (
	"provmin/internal/semiring"
)

// Cost returns the cheapest-derivation cost of a tuple with provenance p
// under per-tuple costs. The zero polynomial yields semiring.TropicalInf.
func Cost(p semiring.Polynomial, cost func(tag string) float64) float64 {
	return semiring.Eval[float64](p, semiring.Tropical{}, cost)
}

// Confidence returns the most-confident-derivation value of a tuple with
// provenance p under per-tuple confidences in [0,1].
func Confidence(p semiring.Polynomial, conf func(tag string) float64) float64 {
	return semiring.Eval[float64](p, semiring.Viterbi{}, conf)
}

// Uniform returns a constant valuation.
func Uniform(v float64) func(string) float64 {
	return func(string) float64 { return v }
}
