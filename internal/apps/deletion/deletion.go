// Package deletion implements deletion propagation / incremental view
// maintenance from provenance, the third data-management tool the paper's
// introduction motivates (view maintenance via provenance, citing update
// exchange).
//
// Given the annotated result of a query, deleting a set of input tuples
// (identified by their annotation tags) invalidates every derivation that
// uses a deleted tuple; an output tuple survives iff some derivation
// survives. This is the Boolean specialization of the provenance polynomial
// with deleted tags set to false — no re-evaluation of the query is needed.
//
// Because survival only depends on the witness sets, the survival verdicts
// computed from the core provenance coincide with those from the full
// polynomial; the tests verify this and cross-check against genuine
// re-evaluation on the smaller database.
package deletion

import (
	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/semiring"
)

// Survives reports whether a tuple with provenance p remains derivable after
// the tagged input tuples in deleted are removed.
func Survives(p semiring.Polynomial, deleted map[string]bool) bool {
	return semiring.Eval[bool](p, semiring.Boolean{}, func(tag string) bool {
		return !deleted[tag]
	})
}

// Propagate computes, from an annotated result alone, which output tuples
// survive the deletion of the given input tags. Tuples are returned in the
// result's canonical order.
func Propagate(res *eval.Result, deleted map[string]bool) (survivors, lost []db.Tuple) {
	for _, ot := range res.Tuples() {
		if Survives(ot.Prov, deleted) {
			survivors = append(survivors, ot.Tuple)
		} else {
			lost = append(lost, ot.Tuple)
		}
	}
	return survivors, lost
}

// DeleteByTags removes from a copy of the instance every tuple whose tag is
// in deleted, returning the reduced instance. Used by the cross-check
// against real re-evaluation.
func DeleteByTags(d *db.Instance, deleted map[string]bool) *db.Instance {
	out := d.Clone()
	for _, r := range out.Relations() {
		var doomed []db.Tuple
		for _, row := range r.Rows() {
			if deleted[row.Tag] {
				doomed = append(doomed, row.Tuple.Clone())
			}
		}
		for _, t := range doomed {
			r.Delete(t...)
		}
	}
	return out
}
