package deletion

import (
	"testing"

	"provmin/internal/db"
	"provmin/internal/direct"
	"provmin/internal/eval"
	"provmin/internal/semiring"
	"provmin/internal/workload"
)

func TestSurvives(t *testing.T) {
	p := semiring.MustParsePolynomial("s1*s2 + s3")
	if !Survives(p, map[string]bool{"s1": true}) {
		t.Error("s3 derivation survives deleting s1")
	}
	if Survives(p, map[string]bool{"s1": true, "s3": true}) {
		t.Error("no derivation survives deleting s1 and s3")
	}
	if Survives(semiring.Zero, nil) {
		t.Error("zero polynomial never survives")
	}
}

func TestPropagateMatchesReEvaluation(t *testing.T) {
	// Ground truth: delete the tuples and re-run the query.
	cases := []map[string]bool{
		{"s1": true},
		{"s2": true},
		{"s2": true, "s3": true},
		{"s1": true, "s4": true},
		{},
	}
	d := workload.Table2()
	res, err := eval.EvalUCQ(workload.QUnion, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, deleted := range cases {
		survivors, lost := Propagate(res, deleted)
		reduced := DeleteByTags(d, deleted)
		reRes, err := eval.EvalUCQ(workload.QUnion, reduced)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range survivors {
			if !reRes.Contains(s) {
				t.Errorf("deleted %v: %v claimed to survive but re-evaluation disagrees", deleted, s)
			}
		}
		for _, l := range lost {
			if reRes.Contains(l) {
				t.Errorf("deleted %v: %v claimed lost but re-evaluation disagrees", deleted, l)
			}
		}
		if len(survivors)+len(lost) != res.Len() {
			t.Errorf("partition broken: %d + %d != %d", len(survivors), len(lost), res.Len())
		}
	}
}

func TestCoreProvenancePreservesSurvival(t *testing.T) {
	// Deletion verdicts from the core provenance equal verdicts from the
	// full polynomial — the compactness payoff for view maintenance.
	res, err := eval.EvalCQ(workload.QConj, workload.Table2())
	if err != nil {
		t.Fatal(err)
	}
	deletions := []map[string]bool{
		{"s1": true}, {"s2": true}, {"s3": true},
		{"s1": true, "s2": true}, {"s2": true, "s3": true},
	}
	for _, ot := range res.Tuples() {
		core := direct.CoreUpToCoefficients(ot.Prov)
		for _, del := range deletions {
			if Survives(ot.Prov, del) != Survives(core, del) {
				t.Errorf("tuple %v deletion %v: core and full verdicts differ", ot.Tuple, del)
			}
		}
	}
}

func TestCoreSurvivalInvariantExhaustive(t *testing.T) {
	// For a polynomial with dominated monomials and exponents, survival
	// must agree with the core under every deletion subset.
	p := semiring.MustParsePolynomial("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
	core := direct.CoreUpToCoefficients(p)
	vars := p.Vars()
	for mask := 0; mask < 1<<len(vars); mask++ {
		del := map[string]bool{}
		for i, v := range vars {
			if mask&(1<<i) != 0 {
				del[v] = true
			}
		}
		if Survives(p, del) != Survives(core, del) {
			t.Errorf("deletion %v: verdicts differ", del)
		}
	}
}

func TestDeleteByTags(t *testing.T) {
	d := workload.Table2()
	out := DeleteByTags(d, map[string]bool{"s2": true, "s4": true})
	if out.Lookup("R").Len() != 2 {
		t.Errorf("reduced size = %d, want 2", out.Lookup("R").Len())
	}
	if out.Lookup("R").Contains("a", "b") || out.Lookup("R").Contains("b", "b") {
		t.Error("deleted tuples still present")
	}
	// Original untouched.
	if d.Lookup("R").Len() != 4 {
		t.Error("DeleteByTags must not mutate the input")
	}
}

func TestPropagateOrdersAndTypes(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "r1", "a", "a")
	res, err := eval.EvalCQ(workload.QConj, d)
	if err != nil {
		t.Fatal(err)
	}
	survivors, lost := Propagate(res, map[string]bool{"r1": true})
	if len(survivors) != 0 || len(lost) != 1 {
		t.Errorf("survivors=%v lost=%v", survivors, lost)
	}
}
