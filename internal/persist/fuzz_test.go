package persist

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

// FuzzWALFrameDecode drives parseRecords — the CRC-framed WAL line
// parser that replay trusts to cut a torn log at the last clean frame —
// with arbitrary bytes. The properties: never panic, never read past the
// input, report a clean offset that sits on a frame boundary, and be
// stable when re-fed its own clean prefix.
func FuzzWALFrameDecode(f *testing.F) {
	frame := func(recs ...Record) []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		for i := range recs {
			if _, err := appendRecord(bw, &recs[i]); err != nil {
				f.Fatal(err)
			}
		}
		bw.Flush()
		return buf.Bytes()
	}
	whole := frame(
		Record{Seq: 1, Op: OpCreate, ID: "orders"},
		Record{Seq: 2, Op: OpIngest, ID: "orders", Gen: 1, Facts: []Fact{{Rel: "R", Tag: "s1", Values: []string{"a", "b"}}}},
		Record{Seq: 3, Op: OpEvict, ID: "orders"},
		Record{Seq: 4, Op: OpFaultIn, ID: "orders"},
		Record{Seq: 5, Op: OpRelease, ID: "orders"},
		Record{Seq: 6, Op: OpDrop, ID: "orders"},
	)
	f.Add(whole)
	f.Add(whole[:len(whole)-7]) // torn tail mid-frame
	f.Add(append(append([]byte{}, whole...), "deadbeef not-the-right-crc\n"...))
	f.Add([]byte("00000000 \n"))
	f.Add([]byte("zzzzzzzz {}\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, clean := parseRecords(raw)
		if clean < 0 || clean > len(raw) {
			t.Fatalf("clean offset %d outside [0, %d]", clean, len(raw))
		}
		if clean > 0 && raw[clean-1] != '\n' {
			t.Fatalf("clean offset %d does not end a frame (byte %q)", clean, raw[clean-1])
		}
		// The clean prefix must re-parse to exactly the same records: this
		// is what makes truncate-at-clean a safe crash recovery.
		recs2, clean2 := parseRecords(raw[:clean])
		if clean2 != clean {
			t.Fatalf("re-parse of clean prefix moved the boundary: %d != %d", clean2, clean)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("re-parse of clean prefix lost records: %d != %d", len(recs2), len(recs))
		}
		for i := range recs {
			if !reflect.DeepEqual(recs[i], recs2[i]) {
				t.Fatalf("record %d changed across re-parse: %+v != %+v", i, recs[i], recs2[i])
			}
		}
	})
}
