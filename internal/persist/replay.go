package persist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"time"

	"provmin/internal/db"
	"provmin/internal/store"
)

// RecoveredInstance is one instance reconstructed from snapshot + WAL.
type RecoveredInstance struct {
	ID      string
	DB      *db.Instance
	Version uint64 // engine instance version: one increment per ingest batch
	LastSeq uint64 // last WAL sequence applied to DB
}

var instanceIDPat = regexp.MustCompile(`^i(\d+)$`)

// replay loads every snapshot and WAL file in the directory — regardless
// of the configured stripe count, so reshards recover cleanly — and
// rebuilds the instance set. It reports whether the on-disk layout must be
// rewritten (stripe count changed).
func (l *Log) replay() (reshard bool, err error) {
	start := time.Now()
	insts := map[string]*RecoveredInstance{}

	snaps, err := filepath.Glob(filepath.Join(l.opts.Dir, "shard-*.snap"))
	if err != nil {
		return false, err
	}
	sort.Strings(snaps)
	for _, path := range snaps {
		if err := l.loadSnapshot(path, insts); err != nil {
			return false, err
		}
	}

	wals, err := filepath.Glob(filepath.Join(l.opts.Dir, "wal-*.log"))
	if err != nil {
		return false, err
	}
	sort.Strings(wals)
	var recs []Record
	for _, path := range wals {
		raw, err := os.ReadFile(path)
		if err != nil {
			return false, fmt.Errorf("persist: read wal %s: %w", path, err)
		}
		fileRecs, clean := parseRecords(raw)
		if clean < len(raw) {
			// Torn or corrupt tail — the crash case. Truncate so future
			// appends start at the last durable record, never after junk
			// that replay would stop at.
			l.reg.Counter("persist_wal_truncated_tails_total").Inc()
			if err := os.Truncate(path, int64(clean)); err != nil {
				return false, fmt.Errorf("persist: truncate torn wal tail %s: %w", path, err)
			}
		}
		recs = append(recs, fileRecs...)
	}
	// One global sequence orders records across stripes; per-instance
	// records always live in a single stripe, so this sort preserves each
	// instance's op order while making cross-stripe replay deterministic.
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })

	// Residency pre-pass: an instance whose *final* op is an evict lives in
	// a cold blob and must not be replayed into RAM at all — booting a host
	// with a large cold population would otherwise materialize every cold
	// instance transiently and defeat the tier. Dropped instances likewise
	// skip application, and their ids are kept for blob GC.
	final := map[string]Op{}
	for i := range recs {
		final[recs[i].ID] = recs[i].Op
	}
	l.dropped = nil
	var coldCount, releasedCount int64
	for id, op := range final {
		switch op {
		case OpEvict:
			coldCount++
			delete(insts, id) // an older shard snapshot may still carry it
		case OpDrop:
			l.dropped = append(l.dropped, id)
			delete(insts, id)
		case OpRelease:
			// Handed off to another node: forget it here, but never list it
			// as dropped — its blob now belongs to the new owner.
			releasedCount++
			delete(insts, id)
		case OpCreate, OpIngest, OpFaultIn:
			// A final create/ingest/fault-in means the instance ends the
			// history resident: nothing to pre-empt here; the apply pass
			// below builds it.
		default:
			// Unknown final op: treat the instance as resident so the apply
			// pass below surfaces the record through its own default arm
			// instead of this pre-pass silently deciding residency for an op
			// it does not understand.
		}
	}
	sort.Strings(l.dropped)

	var maxID uint64
	maxSeq := l.seqFloor
	for _, in := range insts {
		if in.LastSeq > maxSeq {
			maxSeq = in.LastSeq
		}
		maxID = maxInstanceID(maxID, in.ID)
	}
	for i := range recs {
		rec := &recs[i]
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		maxID = maxInstanceID(maxID, rec.ID)
		switch final[rec.ID] {
		case OpEvict, OpDrop, OpRelease:
			// Finally cold or dropped: the record's effect is fully covered
			// by the blob (or moot); never build the instance in RAM.
			l.reg.Counter("persist_replay_residency_skips_total").Inc()
			continue
		case OpCreate, OpIngest, OpFaultIn:
			// Ends resident: apply below.
		default:
			// Unknown final op: fall through to the apply pass, whose default
			// arm reports the record itself.
		}
		var err error
		if rec.Op == OpFaultIn {
			err = l.applyFaultIn(rec, insts)
		} else {
			err = applyRecord(rec, insts)
		}
		if err != nil {
			if errors.Is(err, errReplayFatal) {
				return false, err
			}
			// A logged record that fails to apply means the validate-
			// before-log invariant was violated on a previous run; count
			// it and keep the instance at its pre-record state rather than
			// refusing to boot.
			l.reg.Counter("persist_replay_skipped_total").Inc()
			continue
		}
		l.reg.Counter("persist_replay_records_total").Inc()
	}

	l.seq.Store(maxSeq)
	l.bumpNextID(maxID)
	l.recovered = make([]RecoveredInstance, 0, len(insts))
	for _, in := range insts {
		l.recovered = append(l.recovered, *in)
	}
	sort.Slice(l.recovered, func(i, j int) bool { return l.recovered[i].ID < l.recovered[j].ID })

	l.reg.Gauge("persist_recovered_instances").Set(int64(len(l.recovered)))
	l.reg.Gauge("persist_replay_cold_instances").Set(coldCount)
	l.reg.Gauge("persist_replay_released_instances").Set(releasedCount)
	l.reg.Gauge("persist_replay_duration_ms").Set(time.Since(start).Milliseconds())

	return l.layoutMismatch(snaps, wals), nil
}

// applyRecord folds one WAL record into the recovered instance set. A
// record whose seq is not above the instance's LastSeq is already covered
// by a snapshot and skipped — replay is idempotent.
func applyRecord(rec *Record, insts map[string]*RecoveredInstance) error {
	switch rec.Op {
	case OpCreate:
		if in, ok := insts[rec.ID]; ok && in.LastSeq >= rec.Seq {
			return nil
		}
		d := db.NewInstance()
		if rec.Initial != "" {
			parsed, err := db.ParseInstance(rec.Initial)
			if err != nil {
				return fmt.Errorf("replay create %s: %w", rec.ID, err)
			}
			d = parsed
		}
		insts[rec.ID] = &RecoveredInstance{ID: rec.ID, DB: d, LastSeq: rec.Seq}
	case OpIngest:
		in, ok := insts[rec.ID]
		if !ok || in.LastSeq >= rec.Seq {
			return nil
		}
		for _, f := range rec.Facts {
			if err := ApplyFact(in.DB, f); err != nil {
				return fmt.Errorf("replay ingest %s: %w", rec.ID, err)
			}
		}
		if rec.Gen > 0 {
			in.Version = rec.Gen
		} else {
			in.Version++ // pre-generation record: derive by counting
		}
		in.LastSeq = rec.Seq
	case OpDrop:
		if in, ok := insts[rec.ID]; ok && in.LastSeq < rec.Seq {
			delete(insts, rec.ID)
		}
	case OpEvict, OpRelease:
		// An intermediate evict (a later fault-in follows, or the instance
		// ends resident) just releases the RAM copy; the following fault-in
		// record reloads the blob. An intermediate release behaves the same
		// way: the instance was handed off and later adopted back, and the
		// adopt-side fault-in record reloads the (rewritten) blob.
		if in, ok := insts[rec.ID]; ok && in.LastSeq < rec.Seq {
			delete(insts, rec.ID)
		}
	default:
		return fmt.Errorf("replay: unknown op %q", rec.Op)
	}
	return nil
}

// errReplayFatal marks replay errors that must fail Open instead of being
// skipped: misconfiguration or an unreachable cold store, where booting
// with silently missing instances would be worse than not booting.
var errReplayFatal = errors.New("persist: fatal replay error")

// applyFaultIn replays one OpFaultIn record: the cold blob re-enters the
// history here, and ingest records after this point apply on top of it.
// The blob may be newer than this record (a later evict overwrote it); its
// LastSeq then skips the intermediate records it already covers, which is
// exactly the snapshot idempotency rule.
func (l *Log) applyFaultIn(rec *Record, insts map[string]*RecoveredInstance) error {
	if in, ok := insts[rec.ID]; ok && in.LastSeq >= rec.Seq {
		return nil
	}
	if l.opts.Cold == nil {
		return fmt.Errorf("%w: WAL has a fault-in record for %s but no cold snapshot store is configured (-snapshot-backend)", errReplayFatal, rec.ID)
	}
	raw, err := l.opts.Cold.Get(context.Background(), rec.ID)
	if errors.Is(err, fs.ErrNotExist) {
		// The blob is gone (lost store, or the instance was later dropped
		// and its blob deleted). Skip: a following drop makes this moot; no
		// following drop means the instance is lost and counted.
		return fmt.Errorf("replay faultin %s: %w", rec.ID, err)
	}
	if err != nil {
		return fmt.Errorf("%w: cold store get %s: %v", errReplayFatal, rec.ID, err)
	}
	st, err := DecodeInstanceBlob(raw)
	if err != nil {
		return fmt.Errorf("replay faultin %s: %w", rec.ID, err)
	}
	lastSeq := st.LastSeq
	if rec.Seq > lastSeq {
		lastSeq = rec.Seq
	}
	insts[rec.ID] = &RecoveredInstance{ID: rec.ID, DB: st.DB, Version: st.Version, LastSeq: lastSeq}
	return nil
}

// ApplyFact inserts one fact, creating its relation on first use. It is
// the single application path shared by live ingest (the engine batcher)
// and WAL replay, so recovered relations are guaranteed to match the
// acknowledged ones, creation order included.
func ApplyFact(d *db.Instance, f Fact) error {
	rel, err := d.Relation(f.Rel, len(f.Values))
	if err != nil {
		return err
	}
	return rel.Add(f.Tag, f.Values...)
}

// loadSnapshot folds one shard snapshot file into insts. The file is a
// JSON-lines stream: a header, then one store Envelope (v2) per instance.
func (l *Log) loadSnapshot(path string, insts map[string]*RecoveredInstance) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("persist: open snapshot %s: %w", path, err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)

	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("persist: snapshot header %s: %w", path, err)
	}
	if hdr.Format != snapshotFormat {
		return fmt.Errorf("persist: %s is not a provmind snapshot (format %q)", path, hdr.Format)
	}
	if hdr.Version > store.FormatVersion {
		return fmt.Errorf("persist: snapshot %s has format version %d, newer than this reader supports (max %d)", path, hdr.Version, store.FormatVersion)
	}
	l.bumpNextID(hdr.NextID)
	// The header's global seq is a floor for the recovered counter: after a
	// compaction with every instance cold, no envelope or WAL record would
	// otherwise witness the high-water mark, and reissued seqs would
	// collide with the LastSeq stored in cold blobs.
	if hdr.Seq > l.seqFloor {
		l.seqFloor = hdr.Seq
	}
	for {
		var env store.Envelope
		if err := dec.Decode(&env); errors.Is(err, io.EOF) {
			return nil
		} else if err != nil {
			return fmt.Errorf("persist: snapshot %s: %w", path, err)
		}
		if err := env.CheckVersion(store.FormatVersion); err != nil {
			return fmt.Errorf("persist: snapshot %s: %w", path, err)
		}
		d, _, _, err := env.Decode()
		if err != nil {
			return fmt.Errorf("persist: snapshot %s instance %s: %w", path, env.Instance, err)
		}
		if env.Instance == "" {
			return fmt.Errorf("persist: snapshot %s: envelope without instance id", path)
		}
		// Later snapshot generations win; WAL records beyond LastSeq are
		// layered on afterwards.
		if prev, ok := insts[env.Instance]; !ok || env.LastSeq >= prev.LastSeq {
			insts[env.Instance] = &RecoveredInstance{
				ID:      env.Instance,
				DB:      d,
				Version: env.InstanceVersion,
				LastSeq: env.LastSeq,
			}
		}
	}
}

// layoutMismatch reports whether the files on disk disagree with the
// configured stripe count (meta.json missing counts as agreement when no
// data files exist yet).
func (l *Log) layoutMismatch(snaps, wals []string) bool {
	raw, err := os.ReadFile(l.metaPath())
	if err == nil {
		var m metaFile
		if json.Unmarshal(raw, &m) == nil && m.Shards == l.opts.Shards {
			return false
		}
		return true
	}
	if len(snaps) == 0 && len(wals) == 0 {
		return false
	}
	// Data files without meta: treat any stripe index outside the new
	// range as a mismatch.
	for _, path := range append(append([]string{}, snaps...), wals...) {
		if stripeIndex(path) >= l.opts.Shards {
			return true
		}
	}
	return false
}

// stripeIndex extracts k from ".../wal-k.log" or ".../shard-k.snap".
func stripeIndex(path string) int {
	base := filepath.Base(path)
	start := -1
	for i, c := range base {
		if c == '-' {
			start = i + 1
			break
		}
	}
	if start < 0 {
		return 0
	}
	end := start
	for end < len(base) && base[end] >= '0' && base[end] <= '9' {
		end++
	}
	n, _ := strconv.Atoi(base[start:end])
	return n
}

func maxInstanceID(cur uint64, id string) uint64 {
	m := instanceIDPat.FindStringSubmatch(id)
	if m == nil {
		return cur
	}
	n, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil || n <= cur {
		return cur
	}
	return n
}
