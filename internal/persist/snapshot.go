package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"provmin/internal/db"
	"provmin/internal/store"
)

// snapshotFormat identifies provmind snapshot files; the header version is
// store.FormatVersion because the per-instance lines are store Envelopes.
const snapshotFormat = "provmind-snapshot"

// snapshotHeader is the first JSON line of a shard snapshot file.
type snapshotHeader struct {
	Format    string `json:"format"`
	Version   int    `json:"version"`
	Shard     int    `json:"shard"`
	Seq       uint64 `json:"seq"`     // global sequence at capture (informational)
	NextID    uint64 `json:"next_id"` // instance-id counter floor at capture
	Instances int    `json:"instances"`
}

// InstanceState is one instance captured for a snapshot: a deep copy (or
// otherwise immutable view) of its database plus the version and WAL
// position the copy reflects.
type InstanceState struct {
	ID      string
	DB      *db.Instance
	Version uint64
	LastSeq uint64
}

// EncodeInstanceBlob renders one instance as a standalone cold-snapshot
// blob: a store Envelope v2, the same per-instance representation shard
// snapshot lines use, so the cold tier introduces no new serialization
// format and blobs stay byte-compatible with what replay already decodes.
func EncodeInstanceBlob(st InstanceState) ([]byte, error) {
	if st.ID == "" {
		return nil, errors.New("persist: cold blob needs an instance id")
	}
	env := store.NewEnvelope(st.DB, nil, nil)
	env.Version = store.FormatVersion
	env.Instance = st.ID
	env.InstanceVersion = st.Version
	env.LastSeq = st.LastSeq
	env.Symbols = st.DB.Symbols().Symbols()
	return json.Marshal(env)
}

// DecodeInstanceBlob parses a cold-snapshot blob back into instance state.
func DecodeInstanceBlob(raw []byte) (InstanceState, error) {
	var env store.Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return InstanceState{}, fmt.Errorf("persist: cold blob: %w", err)
	}
	if err := env.CheckVersion(store.FormatVersion); err != nil {
		return InstanceState{}, fmt.Errorf("persist: cold blob: %w", err)
	}
	if env.Instance == "" {
		return InstanceState{}, errors.New("persist: cold blob without instance id")
	}
	d, _, _, err := env.Decode()
	if err != nil {
		return InstanceState{}, fmt.Errorf("persist: cold blob %s: %w", env.Instance, err)
	}
	return InstanceState{ID: env.Instance, DB: d, Version: env.InstanceVersion, LastSeq: env.LastSeq}, nil
}

// SnapshotStats summarizes one Snapshot/Compact run.
type SnapshotStats struct {
	Shards    int           `json:"shards"`
	Instances int           `json:"instances"`
	Bytes     int64         `json:"bytes"`
	Compacted bool          `json:"compacted"`
	Duration  time.Duration `json:"duration_ns"`
}

// Snapshot writes every shard's instances to its snapshot file, capturing
// each shard's state via the callback while that shard's WAL is quiescent
// (its mutex held). With compact=true the shard's WAL is reset afterwards:
// every record in it was applied before capture — Commit applies under the
// same mutex — so the snapshot fully covers the discarded log.
//
// The callback runs with the shard WAL lock held and may take engine
// registry and instance locks (in that order), never the reverse.
func (l *Log) Snapshot(capture func(shard int) []InstanceState, compact bool) (SnapshotStats, error) {
	// One snapshot/compact at a time: a plain snapshot writes shard files
	// outside the WAL mutex, and two interleaved writers could replace a
	// compaction's fresh snapshot with older state after the WAL was
	// already truncated.
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	start := time.Now()
	stats := SnapshotStats{Shards: len(l.shards), Compacted: compact}
	for k, w := range l.shards {
		w.mu.Lock()
		for w.syncing {
			w.cond.Wait()
		}
		if w.f == nil {
			w.mu.Unlock()
			return stats, errors.New("persist: log closed")
		}
		states := capture(k)
		if !compact {
			// The captured states are immutable deep copies: commits may
			// resume on this shard while the (slow) encode+write runs.
			// Only compaction must keep the WAL quiescent through the
			// file write, because it discards the log afterwards.
			w.mu.Unlock()
		}
		n, err := l.writeShardSnapshot(k, states)
		if compact {
			if err == nil {
				err = w.resetLocked()
			}
			w.mu.Unlock()
		}
		if err != nil {
			return stats, err
		}
		stats.Instances += len(states)
		stats.Bytes += n
	}
	stats.Duration = time.Since(start)
	l.reg.Counter("persist_snapshots_total").Inc()
	l.reg.Counter("persist_snapshot_bytes_total").Add(stats.Bytes)
	if compact {
		l.reg.Counter("persist_compactions_total").Inc()
	}
	l.reg.Histogram("persist_snapshot_seconds").Observe(stats.Duration)
	return stats, nil
}

// writeShardSnapshot renders one shard file (header line + one compact
// Envelope line per instance) and installs it atomically.
func (l *Log) writeShardSnapshot(k int, states []InstanceState) (int64, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	hdr := snapshotHeader{
		Format:    snapshotFormat,
		Version:   store.FormatVersion,
		Shard:     k,
		Seq:       l.seq.Load(),
		NextID:    l.nextID.Load(),
		Instances: len(states),
	}
	if err := enc.Encode(hdr); err != nil {
		return 0, err
	}
	for _, st := range states {
		env := store.NewEnvelope(st.DB, nil, nil)
		env.Version = store.FormatVersion // v3 fields below
		env.Instance = st.ID
		env.InstanceVersion = st.Version
		env.LastSeq = st.LastSeq
		env.Symbols = st.DB.Symbols().Symbols()
		if err := enc.Encode(env); err != nil {
			return 0, err
		}
	}
	path := filepath.Join(l.opts.Dir, fmt.Sprintf("shard-%d.snap", k))
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return 0, fmt.Errorf("persist: write snapshot %s: %w", path, err)
	}
	return int64(buf.Len()), nil
}

// resetLocked discards the shard's WAL file content (caller holds w.mu and
// has ensured no fsync is in flight). The buffer is deliberately NOT
// flushed first: every record it could hold is covered by the snapshot
// just written, and skipping the flush clears bufio's sticky error — so a
// shard wounded by a transient write failure is healed by compaction
// instead of staying broken until process restart.
func (w *walShard) resetLocked() error {
	// Best-effort close: the file's content is being discarded, and a
	// wounded fd (the very thing compaction may be healing) can fail here.
	_ = w.f.Close()
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.bw.Reset(f)
	w.synced = w.dirty
	w.syncErr = nil
	return nil
}

// rewriteAll re-lays the directory under the configured stripe count from
// the recovered state: fresh snapshots for every new stripe, then every
// old WAL and out-of-range snapshot file is removed. Runs at Open, before
// the WAL files are opened for appending. Crash-safe: new snapshots carry
// the highest LastSeq per instance, so a partial rewrite still recovers
// (old WAL records are skipped as already covered).
func (l *Log) rewriteAll() error {
	byShard := make([][]InstanceState, len(l.shards))
	for _, in := range l.recovered {
		k := ShardFor(in.ID, len(l.shards))
		byShard[k] = append(byShard[k], InstanceState{ID: in.ID, DB: in.DB, Version: in.Version, LastSeq: in.LastSeq})
	}
	for k := range l.shards {
		if _, err := l.writeShardSnapshot(k, byShard[k]); err != nil {
			return err
		}
	}
	wals, _ := filepath.Glob(filepath.Join(l.opts.Dir, "wal-*.log"))
	for _, path := range wals {
		if err := os.Remove(path); err != nil {
			return err
		}
	}
	snaps, _ := filepath.Glob(filepath.Join(l.opts.Dir, "shard-*.snap"))
	for _, path := range snaps {
		if stripeIndex(path) >= len(l.shards) {
			if err := os.Remove(path); err != nil {
				return err
			}
		}
	}
	return syncDir(l.opts.Dir)
}
