package persist

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// benchCommit measures WAL commit throughput for one sync mode; with
// SyncAlways the interesting number is how far group commit pushes the
// commit rate above the raw fsync rate.
func benchCommit(b *testing.B, mode SyncMode, parallel bool) {
	l, err := Open(Options{Dir: b.TempDir(), Shards: 4, Sync: mode})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	for i := 1; i <= 4; i++ {
		if _, err := l.Commit(Record{Op: OpCreate, ID: fmt.Sprintf("i%d", i)}, nil); err != nil {
			b.Fatal(err)
		}
	}
	var n atomic.Int64
	commit := func() {
		i := n.Add(1)
		rec := Record{Op: OpIngest, ID: fmt.Sprintf("i%d", i%4+1), Facts: []Fact{
			{Rel: "R", Tag: fmt.Sprintf("t%d", i), Values: []string{"a", "b"}},
		}}
		if _, err := l.Commit(rec, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	if parallel {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				commit()
			}
		})
	} else {
		for i := 0; i < b.N; i++ {
			commit()
		}
	}
	if mode == SyncAlways && parallel {
		b.ReportMetric(float64(l.reg.Counter("persist_wal_fsyncs_total").Value())/float64(b.N), "fsyncs/op")
	}
}

func BenchmarkWALCommitNone(b *testing.B)           { benchCommit(b, SyncNone, false) }
func BenchmarkWALCommitAlways(b *testing.B)         { benchCommit(b, SyncAlways, false) }
func BenchmarkWALCommitAlwaysParallel(b *testing.B) { benchCommit(b, SyncAlways, true) }
