package persist

import (
	"context"
	"fmt"
	"io/fs"
	"strings"
	"sync"
	"testing"

	"provmin/internal/db"
)

// memCold is a map-backed ColdStore for replay tests.
type memCold struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

func newMemCold() *memCold { return &memCold{blobs: map[string][]byte{}} }

func (m *memCold) Get(_ context.Context, id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	raw, ok := m.blobs[id]
	if !ok {
		return nil, fmt.Errorf("memCold %s: %w", id, fs.ErrNotExist)
	}
	return raw, nil
}

func (m *memCold) put(t *testing.T, st InstanceState) {
	t.Helper()
	raw, err := EncodeInstanceBlob(st)
	if err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	m.blobs[st.ID] = raw
	m.mu.Unlock()
}

func openCold(t *testing.T, dir string, shards int, cold ColdStore) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, Shards: shards, Cold: cold})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustDB(t *testing.T, text string) *db.Instance {
	t.Helper()
	d, err := db.ParseInstance(text)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInstanceBlobRoundTrip(t *testing.T) {
	st := InstanceState{
		ID:      "i9",
		DB:      mustDB(t, "R r1 a b\nS s1 c"),
		Version: 7,
		LastSeq: 42,
	}
	raw, err := EncodeInstanceBlob(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInstanceBlob(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "i9" || got.Version != 7 || got.LastSeq != 42 {
		t.Fatalf("decoded header = %+v", got)
	}
	if got.DB.NumTuples() != 2 || got.DB.Lookup("R").TagOf("a", "b") != "r1" {
		t.Fatalf("decoded db mismatch: %d tuples", got.DB.NumTuples())
	}

	if _, err := EncodeInstanceBlob(InstanceState{DB: db.NewInstance()}); err == nil {
		t.Fatal("EncodeInstanceBlob without id succeeded")
	}
	if _, err := DecodeInstanceBlob([]byte("not json")); err == nil {
		t.Fatal("DecodeInstanceBlob of junk succeeded")
	}
	if _, err := DecodeInstanceBlob([]byte(`{"version":1,"database":[]}`)); err == nil {
		t.Fatal("DecodeInstanceBlob without instance id succeeded")
	}
}

// TestReplayFinallyColdStaysOutOfRAM is the core composition rule: an
// instance whose last op is an evict must not be rebuilt into RAM on boot.
func TestReplayFinallyColdStaysOutOfRAM(t *testing.T) {
	dir := t.TempDir()
	cold := newMemCold()
	l := openCold(t, dir, 2, cold)
	commitT(t, l, Record{Op: OpCreate, ID: "i1", Initial: "R r1 a b"})
	commitT(t, l, Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "r2", Values: []string{"b", "c"}}}, Gen: 1})
	commitT(t, l, Record{Op: OpCreate, ID: "i2"})
	// Evict i1 the way the engine does: blob first, then the WAL record.
	evictSeq := l.seq.Load() + 1
	cold.put(t, InstanceState{ID: "i1", DB: mustDB(t, "R r1 a b\nR r2 b c"), Version: 1, LastSeq: l.seq.Load()})
	commitT(t, l, Record{Op: OpEvict, ID: "i1"})
	l.Close()

	l2 := openCold(t, dir, 2, cold)
	defer l2.Close()
	if findRecovered(l2, "i1") != nil {
		t.Fatal("finally-cold i1 was replayed into RAM")
	}
	if findRecovered(l2, "i2") == nil {
		t.Fatal("resident i2 lost")
	}
	if got := l2.reg.Gauge("persist_replay_cold_instances").Value(); got != 1 {
		t.Errorf("cold gauge = %d, want 1", got)
	}
	if l2.seq.Load() < evictSeq {
		t.Errorf("seq regressed to %d, below evict seq %d", l2.seq.Load(), evictSeq)
	}
	if l2.NextID() != 2 {
		t.Errorf("NextID = %d, want 2", l2.NextID())
	}
}

// TestReplayFaultInLayersWAL: evict, fault back in, ingest more — replay
// must load the blob at the fault-in point and layer the later records.
func TestReplayFaultInLayersWAL(t *testing.T) {
	dir := t.TempDir()
	cold := newMemCold()
	l := openCold(t, dir, 1, cold)
	commitT(t, l, Record{Op: OpCreate, ID: "i1", Initial: "R r1 a b"})
	commitT(t, l, Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "r2", Values: []string{"b", "c"}}}, Gen: 1})
	cold.put(t, InstanceState{ID: "i1", DB: mustDB(t, "R r1 a b\nR r2 b c"), Version: 1, LastSeq: l.seq.Load()})
	commitT(t, l, Record{Op: OpEvict, ID: "i1"})
	commitT(t, l, Record{Op: OpFaultIn, ID: "i1"})
	commitT(t, l, Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "r3", Values: []string{"c", "d"}}}, Gen: 2})
	l.Close()

	l2 := openCold(t, dir, 1, cold)
	defer l2.Close()
	i1 := findRecovered(l2, "i1")
	if i1 == nil {
		t.Fatal("i1 not recovered")
	}
	if i1.DB.NumTuples() != 3 || i1.Version != 2 {
		t.Fatalf("i1 = %d tuples, version %d; want 3 tuples, version 2", i1.DB.NumTuples(), i1.Version)
	}
	if tag := i1.DB.Lookup("R").TagOf("c", "d"); tag != "r3" {
		t.Errorf("post-fault-in ingest lost: tag = %q", tag)
	}
}

// TestReplayFaultInNewerBlobSkipsCoveredRecords: a later evict overwrote
// the blob, so replaying an *earlier* fault-in record loads state that
// already covers the ingests between them; LastSeq must skip those.
func TestReplayFaultInNewerBlobSkipsCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	cold := newMemCold()
	l := openCold(t, dir, 1, cold)
	commitT(t, l, Record{Op: OpCreate, ID: "i1", Initial: "R r1 a b"})
	cold.put(t, InstanceState{ID: "i1", DB: mustDB(t, "R r1 a b"), Version: 0, LastSeq: l.seq.Load()})
	commitT(t, l, Record{Op: OpEvict, ID: "i1"})
	commitT(t, l, Record{Op: OpFaultIn, ID: "i1"})
	commitT(t, l, Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "r2", Values: []string{"b", "c"}}}, Gen: 1})
	// Second evict: blob now reflects the ingest above.
	cold.put(t, InstanceState{ID: "i1", DB: mustDB(t, "R r1 a b\nR r2 b c"), Version: 1, LastSeq: l.seq.Load()})
	commitT(t, l, Record{Op: OpEvict, ID: "i1"})
	commitT(t, l, Record{Op: OpFaultIn, ID: "i1"})
	l.Close()

	l2 := openCold(t, dir, 1, cold)
	defer l2.Close()
	i1 := findRecovered(l2, "i1")
	if i1 == nil {
		t.Fatal("i1 not recovered")
	}
	// The first fault-in loads the *new* blob (1 ingest applied); the
	// intermediate ingest record must be skipped, not double-applied.
	if i1.DB.NumTuples() != 2 || i1.Version != 1 {
		t.Fatalf("i1 = %d tuples, version %d; want 2 tuples, version 1", i1.DB.NumTuples(), i1.Version)
	}
}

func TestReplayDroppedIDsForBlobGC(t *testing.T) {
	dir := t.TempDir()
	cold := newMemCold()
	l := openCold(t, dir, 2, cold)
	commitT(t, l, Record{Op: OpCreate, ID: "i1"})
	commitT(t, l, Record{Op: OpCreate, ID: "i2"})
	cold.put(t, InstanceState{ID: "i1", DB: db.NewInstance(), LastSeq: l.seq.Load()})
	commitT(t, l, Record{Op: OpEvict, ID: "i1"})
	// Cold drop: the engine deletes the blob then logs the drop; simulate a
	// crash between the two (blob still present) to exercise boot GC.
	commitT(t, l, Record{Op: OpDrop, ID: "i1"})
	commitT(t, l, Record{Op: OpDrop, ID: "i2"})
	l.Close()

	l2 := openCold(t, dir, 2, cold)
	defer l2.Close()
	if got := l2.DroppedIDs(); len(got) != 2 || got[0] != "i1" || got[1] != "i2" {
		t.Fatalf("DroppedIDs = %v, want [i1 i2]", got)
	}
	if len(l2.Recovered()) != 0 {
		t.Fatalf("recovered = %v, want none", l2.Recovered())
	}
}

// TestReplayColdSeqFloorSurvivesCompact: after a compaction with every
// instance cold, neither snapshots nor WAL witness the seq high-water
// mark; the snapshot header must carry it so new seqs stay above the
// LastSeq frozen in cold blobs.
func TestReplayColdSeqFloorSurvivesCompact(t *testing.T) {
	dir := t.TempDir()
	cold := newMemCold()
	l := openCold(t, dir, 1, cold)
	commitT(t, l, Record{Op: OpCreate, ID: "i1", Initial: "R r1 a b"})
	blobSeq := l.seq.Load()
	cold.put(t, InstanceState{ID: "i1", DB: mustDB(t, "R r1 a b"), LastSeq: blobSeq})
	commitT(t, l, Record{Op: OpEvict, ID: "i1"})
	// Compact with nothing resident: WALs reset, snapshots empty.
	if _, err := l.Snapshot(func(int) []InstanceState { return nil }, true); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2 := openCold(t, dir, 1, cold)
	defer l2.Close()
	if l2.seq.Load() < blobSeq {
		t.Fatalf("recovered seq %d below cold blob LastSeq %d: future records would be skipped at fault-in", l2.seq.Load(), blobSeq)
	}
}

func TestReplayFaultInWithoutColdStoreFailsBoot(t *testing.T) {
	dir := t.TempDir()
	cold := newMemCold()
	l := openCold(t, dir, 1, cold)
	commitT(t, l, Record{Op: OpCreate, ID: "i1"})
	cold.put(t, InstanceState{ID: "i1", DB: db.NewInstance(), LastSeq: l.seq.Load()})
	commitT(t, l, Record{Op: OpEvict, ID: "i1"})
	commitT(t, l, Record{Op: OpFaultIn, ID: "i1"})
	l.Close()

	_, err := Open(Options{Dir: dir, Shards: 1})
	if err == nil || !strings.Contains(err.Error(), "no cold snapshot store") {
		t.Fatalf("boot without cold store: err = %v, want configuration error", err)
	}
}

func TestReplayFaultInMissingBlobSkipsInstance(t *testing.T) {
	dir := t.TempDir()
	cold := newMemCold()
	l := openCold(t, dir, 1, cold)
	commitT(t, l, Record{Op: OpCreate, ID: "i1"})
	cold.put(t, InstanceState{ID: "i1", DB: db.NewInstance(), LastSeq: l.seq.Load()})
	commitT(t, l, Record{Op: OpEvict, ID: "i1"})
	commitT(t, l, Record{Op: OpFaultIn, ID: "i1"})
	commitT(t, l, Record{Op: OpCreate, ID: "i2"})
	l.Close()

	// The blob vanishes (lost store). Boot must proceed, count the loss,
	// and keep unaffected instances.
	cold.mu.Lock()
	delete(cold.blobs, "i1")
	cold.mu.Unlock()

	l2 := openCold(t, dir, 1, cold)
	defer l2.Close()
	if findRecovered(l2, "i1") != nil {
		t.Fatal("i1 recovered without its blob")
	}
	if findRecovered(l2, "i2") == nil {
		t.Fatal("i2 lost")
	}
	if n := l2.reg.Counter("persist_replay_skipped_total").Value(); n != 1 {
		t.Errorf("skipped counter = %d, want 1", n)
	}
}
