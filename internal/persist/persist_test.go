package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"provmin/internal/db"
)

func openT(t *testing.T, dir string, shards int) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func commitT(t *testing.T, l *Log, rec Record) uint64 {
	t.Helper()
	seq, err := l.Commit(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func findRecovered(l *Log, id string) *RecoveredInstance {
	for i := range l.recovered {
		if l.recovered[i].ID == id {
			return &l.recovered[i]
		}
	}
	return nil
}

func TestCommitReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 4)
	commitT(t, l, Record{Op: OpCreate, ID: "i1", Initial: "R r1 a b"})
	commitT(t, l, Record{Op: OpIngest, ID: "i1", Facts: []Fact{
		{Rel: "R", Tag: "r2", Values: []string{"b", "c"}},
		{Rel: "S", Tag: "s1", Values: []string{"c"}},
	}})
	commitT(t, l, Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "r3", Values: []string{"c", "d"}}}})
	commitT(t, l, Record{Op: OpCreate, ID: "i2"})
	commitT(t, l, Record{Op: OpCreate, ID: "i3"})
	commitT(t, l, Record{Op: OpDrop, ID: "i2"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, 4)
	defer l2.Close()
	if got := len(l2.Recovered()); got != 2 {
		t.Fatalf("recovered %d instances, want 2 (i1, i3)", got)
	}
	i1 := findRecovered(l2, "i1")
	if i1 == nil {
		t.Fatal("i1 not recovered")
	}
	if i1.Version != 2 {
		t.Errorf("i1 version = %d, want 2 (one per ingest batch)", i1.Version)
	}
	if i1.DB.NumTuples() != 4 {
		t.Errorf("i1 tuples = %d, want 4", i1.DB.NumTuples())
	}
	if tag := i1.DB.Lookup("R").TagOf("b", "c"); tag != "r2" {
		t.Errorf("tag of (b,c) = %q, want r2", tag)
	}
	if findRecovered(l2, "i2") != nil {
		t.Error("dropped i2 resurrected by replay")
	}
	if l2.NextID() != 3 {
		t.Errorf("NextID = %d, want 3", l2.NextID())
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 1)
	commitT(t, l, Record{Op: OpCreate, ID: "i1", Initial: "R r1 a b"})
	commitT(t, l, Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "r2", Values: []string{"b", "c"}}}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: garbage without a trailing newline.
	path := filepath.Join(dir, "wal-0.log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":99,"op":"ingest","id":"i1","fa`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	l2 := openT(t, dir, 1)
	defer l2.Close()
	i1 := findRecovered(l2, "i1")
	if i1 == nil || i1.DB.NumTuples() != 2 {
		t.Fatalf("clean prefix lost: %+v", i1)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	if n := l2.reg.Counter("persist_wal_truncated_tails_total").Value(); n != 1 {
		t.Errorf("truncated_tails = %d, want 1", n)
	}
}

func TestCorruptMiddleStopsReplayAtCrc(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 1)
	commitT(t, l, Record{Op: OpCreate, ID: "i1"})
	seq2 := commitT(t, l, Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "r1", Values: []string{"a"}}}})
	commitT(t, l, Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "r2", Values: []string{"b"}}}})
	l.Close()

	// Flip one byte inside the second record's payload: its CRC fails and
	// replay must stop there, dropping record 3 as well (no skipping).
	path := filepath.Join(dir, "wal-0.log")
	raw, _ := os.ReadFile(path)
	idx := strings.Index(string(raw), `"r1"`)
	raw[idx+1] ^= 0x01
	os.WriteFile(path, raw, 0o644)

	l2 := openT(t, dir, 1)
	defer l2.Close()
	i1 := findRecovered(l2, "i1")
	if i1 == nil {
		t.Fatal("i1 lost")
	}
	if i1.DB.NumTuples() != 0 || i1.LastSeq >= seq2 {
		t.Errorf("replay continued past a bad CRC: tuples=%d lastSeq=%d", i1.DB.NumTuples(), i1.LastSeq)
	}
}

func TestSnapshotCompactReplay(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 2)
	state := map[string]*RecoveredInstance{}
	apply := func(rec Record) {
		if _, err := l.Commit(rec, nil); err != nil {
			t.Fatal(err)
		}
		m := map[string]*RecoveredInstance{}
		for k, v := range state {
			m[k] = v
		}
		rec.Seq = l.seq.Load()
		if err := applyRecord(&rec, m); err != nil {
			t.Fatal(err)
		}
		state = m
	}
	apply(Record{Op: OpCreate, ID: "i1", Initial: "R r1 a b"})
	apply(Record{Op: OpCreate, ID: "i2"})
	apply(Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "r2", Values: []string{"b", "c"}}}})

	capture := func(k int) []InstanceState {
		var out []InstanceState
		for id, in := range state {
			if ShardFor(id, l.Shards()) == k {
				out = append(out, InstanceState{ID: id, DB: in.DB.Clone(), Version: in.Version, LastSeq: in.LastSeq})
			}
		}
		return out
	}
	stats, err := l.Snapshot(capture, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instances != 2 || stats.Bytes == 0 || !stats.Compacted {
		t.Errorf("stats = %+v", stats)
	}
	for k := 0; k < 2; k++ {
		fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("wal-%d.log", k)))
		if err != nil || fi.Size() != 0 {
			t.Errorf("wal-%d not reset after compact: %v %d", k, err, fi.Size())
		}
	}

	// Post-compact commits land in the fresh WAL and layer over the snapshot.
	apply(Record{Op: OpIngest, ID: "i2", Facts: []Fact{{Rel: "S", Tag: "s1", Values: []string{"x"}}}})
	l.Close()

	l2 := openT(t, dir, 2)
	defer l2.Close()
	i1, i2 := findRecovered(l2, "i1"), findRecovered(l2, "i2")
	if i1 == nil || i1.DB.NumTuples() != 2 || i1.Version != 1 {
		t.Fatalf("i1 after compact+replay: %+v", i1)
	}
	if i2 == nil || i2.DB.NumTuples() != 1 || i2.Version != 1 {
		t.Fatalf("i2 after compact+replay: %+v", i2)
	}
}

func TestReshardOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 2)
	for i := 1; i <= 6; i++ {
		commitT(t, l, Record{Op: OpCreate, ID: fmt.Sprintf("i%d", i), Initial: "R r a b"})
	}
	l.Close()

	l2 := openT(t, dir, 5)
	defer l2.Close()
	if got := len(l2.Recovered()); got != 6 {
		t.Fatalf("recovered %d instances after reshard, want 6", got)
	}
	// Old stripes beyond the new count are gone; WALs restart empty.
	if _, err := os.Stat(filepath.Join(dir, "wal-0.log")); err != nil {
		t.Error("wal-0.log missing after reshard")
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "shard-*.snap"))
	if len(snaps) != 5 {
		t.Errorf("snapshot stripes = %d, want 5", len(snaps))
	}
	commitT(t, l2, Record{Op: OpIngest, ID: "i3", Facts: []Fact{{Rel: "R", Tag: "r9", Values: []string{"x", "y"}}}})
	l2.Close()

	l3 := openT(t, dir, 5)
	defer l3.Close()
	if in := findRecovered(l3, "i3"); in == nil || in.DB.NumTuples() != 2 {
		t.Fatalf("i3 after reshard+ingest: %+v", in)
	}
}

func TestInjectWriteError(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 1)
	defer l.Close()
	commitT(t, l, Record{Op: OpCreate, ID: "i1"})

	boom := errors.New("disk on fire")
	l.InjectWriteError(boom)
	applied := false
	_, err := l.Commit(Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "r", Values: []string{"a"}}}},
		func(uint64) { applied = true })
	if !errors.Is(err, boom) {
		t.Fatalf("Commit error = %v, want injected", err)
	}
	if applied {
		t.Fatal("apply ran despite a failed WAL append — memory would run ahead of disk")
	}
	l.InjectWriteError(nil)
	commitT(t, l, Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "r", Values: []string{"a"}}}})
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 2)
	commitT(t, l, Record{Op: OpCreate, ID: "i1"})
	commitT(t, l, Record{Op: OpCreate, ID: "i2"})

	const writers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("i%d", g%2+1)
			for i := 0; i < per; i++ {
				rec := Record{Op: OpIngest, ID: id, Facts: []Fact{
					{Rel: "R", Tag: fmt.Sprintf("t%d_%d", g, i), Values: []string{fmt.Sprintf("v%d_%d", g, i)}},
				}}
				if _, err := l.Commit(rec, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	records := l.reg.Counter("persist_wal_records_total").Value()
	if want := int64(writers*per + 2); records != want {
		t.Errorf("wal records = %d, want %d", records, want)
	}
	l.Close()

	l2 := openT(t, dir, 2)
	defer l2.Close()
	total := 0
	for _, in := range l2.Recovered() {
		total += in.DB.NumTuples()
	}
	if total != writers*per {
		t.Errorf("recovered %d facts, want %d", total, writers*per)
	}
}

// TestCompactHealsWoundedShard: a transient write failure leaves bufio's
// sticky error and garbage in the buffer; compaction must rotate the file,
// clear the error, and leave the shard fully usable — the in-process
// recovery path for a disk that failed and came back.
func TestCompactHealsWoundedShard(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 1)
	commitT(t, l, Record{Op: OpCreate, ID: "i1", Initial: "R r1 a b"})

	// Wound the shard: kill its fd and poison the buffer, as a failed
	// partial flush would.
	w := l.shards[0]
	w.mu.Lock()
	_ = w.f.Close()
	_, _ = w.bw.WriteString("junk that must never reach the file")
	w.mu.Unlock()
	if _, err := l.Commit(Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "x", Values: []string{"q", "q"}}}}, nil); err == nil {
		t.Fatal("commit on a wounded shard should fail")
	}

	// The engine would capture its live registry here; this test rebuilds
	// the acknowledged state by hand (the create only — the wounded ingest
	// was never acknowledged).
	d, err := db.ParseInstance("R r1 a b")
	if err != nil {
		t.Fatal(err)
	}
	state := []InstanceState{{ID: "i1", DB: d, Version: 0, LastSeq: l.seq.Load()}}
	if _, err := l.Snapshot(func(int) []InstanceState { return state }, true); err != nil {
		t.Fatalf("compact on a wounded shard must heal it: %v", err)
	}
	commitT(t, l, Record{Op: OpIngest, ID: "i1", Facts: []Fact{{Rel: "R", Tag: "r2", Values: []string{"b", "c"}}}})
	l.Close()

	l2 := openT(t, dir, 1)
	defer l2.Close()
	in := findRecovered(l2, "i1")
	if in == nil || in.DB.NumTuples() != 2 {
		t.Fatalf("post-heal commit lost: %+v", in)
	}
}

func TestSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncInterval, SyncNone} {
		t.Run(string(mode), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Options{Dir: dir, Shards: 1, Sync: mode, SyncInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			commitT(t, l, Record{Op: OpCreate, ID: "i1", Initial: "R r a"})
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2 := openT(t, dir, 1)
			defer l2.Close()
			if in := findRecovered(l2, "i1"); in == nil || in.DB.NumTuples() != 1 {
				t.Fatalf("mode %s lost data across clean close: %+v", mode, in)
			}
		})
	}
}

func TestParseSyncMode(t *testing.T) {
	if _, err := ParseSyncMode("always"); err != nil {
		t.Error(err)
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestShardForStable(t *testing.T) {
	// The mapping is part of the on-disk contract (records of an instance
	// must stay in one stripe across restarts); pin a few values.
	for id, want := range map[string]int{"i1": ShardFor("i1", 8)} {
		for i := 0; i < 3; i++ {
			if got := ShardFor(id, 8); got != want {
				t.Fatalf("ShardFor(%q) unstable: %d vs %d", id, got, want)
			}
		}
	}
	counts := make([]int, 8)
	for i := 0; i < 1000; i++ {
		counts[ShardFor(fmt.Sprintf("i%d", i), 8)]++
	}
	for k, n := range counts {
		if n == 0 {
			t.Errorf("shard %d got no instances out of 1000 — bad distribution", k)
		}
	}
}

// TestReplayReleaseForgetsWithoutDrop: a release record (cluster handoff)
// must make replay forget the instance — like a drop — but never list it as
// dropped, because boot GC deletes dropped ids' blobs and a released blob
// belongs to the adopting node.
func TestReplayReleaseForgetsWithoutDrop(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 4)
	commitT(t, l, Record{Op: OpCreate, ID: "h1", Initial: "R r1 a b"})
	commitT(t, l, Record{Op: OpIngest, ID: "h1", Facts: []Fact{{Rel: "R", Tag: "r2", Values: []string{"b", "c"}}}})
	commitT(t, l, Record{Op: OpRelease, ID: "h1"})
	commitT(t, l, Record{Op: OpCreate, ID: "i2"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, 4)
	defer l2.Close()
	if findRecovered(l2, "h1") != nil {
		t.Fatal("released instance replayed into RAM")
	}
	if got := l2.DroppedIDs(); len(got) != 0 {
		t.Fatalf("released instance listed as dropped: %v", got)
	}
	if findRecovered(l2, "i2") == nil {
		t.Fatal("unrelated instance lost by release replay")
	}
	if got := l2.reg.Gauge("persist_replay_released_instances").Value(); got != 1 {
		t.Fatalf("persist_replay_released_instances = %d, want 1", got)
	}
}
