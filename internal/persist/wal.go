// Package persist is the durability layer of the provmind service: an
// append-only write-ahead log of instance operations, sharded the same way
// as the engine's registry, plus periodic compacted snapshots in the
// internal/store Envelope format (version 2).
//
// The paper's workflow (§1, §5) is explicitly offline — annotated results
// are stored and core provenance is recovered later from the stored
// polynomial — so the service must survive restarts. The contract is:
//
//   - every acknowledged mutation was logged (and, in SyncAlways mode,
//     fsynced) before the acknowledgment;
//   - on boot, replaying snapshot + WAL suffix reproduces every
//     acknowledged mutation exactly, including instance version counters;
//   - a torn or corrupt WAL tail (the crash case) is detected by a CRC on
//     every record and truncated, never silently skipped over.
//
// Lock ordering: a shard's WAL mutex is always taken before any engine
// registry or instance lock (Commit holds it across append+apply; Snapshot
// holds it across capture+write), so commits, snapshots and compactions
// never deadlock and compaction can never drop a record that is not yet
// covered by a snapshot.
package persist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"provmin/internal/metrics"
)

// Fact is one annotated tuple in a WAL record: relation name, provenance
// tag and the tuple's values. The engine's ingest Fact is an alias of this
// type, so facts flow into the log without conversion.
type Fact struct {
	Rel    string   `json:"rel"`
	Tag    string   `json:"tag"`
	Values []string `json:"values"`
}

// Op names one kind of WAL record. Every declared Op constant must be
// handled (or explicitly defaulted) by every switch over the type — a new
// op silently skipped in replay is data loss. The directive below makes
// provlint's walexhaustive analyzer enforce that invariant statically.
//
//provlint:exhaustive
type Op string

// Ops recorded in the WAL.
const (
	OpCreate Op = "create" // new instance (Initial carries seed facts as db text)
	OpIngest Op = "ingest" // one applied ingest batch (Facts)
	OpDrop   Op = "drop"   // instance removed

	// Tiering ops. OpEvict records that the instance's state up to this
	// point lives in a cold-store blob and the in-memory copy was released;
	// OpFaultIn records that the blob was loaded back and subsequent ingest
	// records apply on top of it. Replay uses them to leave finally-cold
	// instances out of RAM and to know where a blob re-enters the history.
	OpEvict   Op = "evict"
	OpFaultIn Op = "faultin"

	// OpRelease records a cluster rebalance handoff: the instance's state
	// was snapshotted into its cold blob and this node forgot it, but —
	// unlike OpDrop — the instance still exists, owned by another node.
	// Replay forgets it without marking it dropped, so this node's boot GC
	// never deletes the new owner's blob from a shared backend.
	OpRelease Op = "release"
)

// Record is one WAL entry. Records are JSON-encoded one per line, each
// line framed with a CRC32 of the JSON payload.
type Record struct {
	Seq     uint64 `json:"seq"`
	Op      Op     `json:"op"`
	ID      string `json:"id"`
	Initial string `json:"initial,omitempty"`
	Facts   []Fact `json:"facts,omitempty"`
	// Gen is the instance generation this ingest record produces — the
	// engine's monotonic per-instance counter that stamps result-cache
	// entries. Carrying it explicitly (rather than recounting records at
	// replay) pins recovered generations to the acknowledged ones even if
	// a record is ever skipped. Zero on pre-generation records and on
	// create/drop; replay then falls back to incrementing.
	Gen uint64 `json:"gen,omitempty"`
}

// SyncMode controls when WAL appends reach stable storage.
type SyncMode string

const (
	// SyncAlways fsyncs before a commit is acknowledged. Concurrent
	// commits on one shard share fsyncs (group commit), so the fsync rate
	// stays far below the commit rate under load.
	SyncAlways SyncMode = "always"
	// SyncInterval fsyncs dirty shards on a background ticker; commits do
	// not wait. A crash may lose the last interval of acknowledged writes.
	SyncInterval SyncMode = "interval"
	// SyncNone never fsyncs outside snapshots and Close; the OS decides.
	SyncNone SyncMode = "none"
)

// ParseSyncMode validates a -wal-sync flag value.
func ParseSyncMode(s string) (SyncMode, error) {
	switch SyncMode(s) {
	case SyncAlways, SyncInterval, SyncNone:
		return SyncMode(s), nil
	}
	return "", fmt.Errorf("persist: unknown sync mode %q (want %q, %q or %q)", s, SyncAlways, SyncInterval, SyncNone)
}

// Options configures Open.
type Options struct {
	// Dir is the data directory; created if absent.
	Dir string
	// Shards is the WAL/snapshot stripe count (default 8). It should match
	// the engine's registry shard count; when it differs from the on-disk
	// layout, Open reshards by snapshotting into the new layout.
	Shards int
	// Sync selects the durability mode (default SyncAlways).
	Sync SyncMode
	// SyncInterval is the ticker period for SyncInterval (default 100ms).
	SyncInterval time.Duration
	// Metrics receives WAL/snapshot counters and gauges; a private
	// registry is created when nil.
	Metrics *metrics.Registry
	// Cold reads per-instance cold-snapshot blobs during replay: an
	// OpFaultIn record re-enters the blob's state into the history, so a
	// WAL that contains fault-ins cannot replay without the store that
	// holds the blobs. tier.SnapshotBackend satisfies this interface. May
	// be nil when tiering was never enabled.
	Cold ColdStore
}

// ColdStore is the read side of a cold-snapshot store, the piece replay
// needs. A missing blob must yield an error satisfying
// errors.Is(err, fs.ErrNotExist).
type ColdStore interface {
	Get(ctx context.Context, id string) ([]byte, error)
}

// Log is an open durability layer: per-shard WAL appenders plus the state
// recovered from disk at Open time.
type Log struct {
	opts   Options
	reg    *metrics.Registry
	shards []*walShard
	seq    atomic.Uint64 // last assigned sequence number, global
	nextID atomic.Uint64 // high-water instance-id counter (recovered + runtime creates)

	recovered []RecoveredInstance
	dropped   []string // ids whose final replayed op was OpDrop, for blob GC
	seqFloor  uint64   // snapshot-header seq floor seen during replay

	snapMu    sync.Mutex   // serializes Snapshot/Compact runs
	failWrite atomic.Value // error; non-nil fails appends (chaos/test hook)

	closeOnce sync.Once
	stop      chan struct{}
	tickDone  chan struct{}
}

// walShard is one WAL stripe: an append-only file plus group-commit state.
type walShard struct {
	mu      sync.Mutex
	cond    *sync.Cond // signals fsync completion; waits under mu
	f       *os.File
	bw      *bufio.Writer
	path    string
	dirty   uint64 // last seq written to the buffer
	synced  uint64 // last seq known fsynced
	syncing bool
	syncErr error
}

// ShardFor maps an instance id onto one of n stripes with FNV-1a — the
// same mapping the engine registry uses, so one shard's WAL covers exactly
// one registry stripe.
func ShardFor(id string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}

// Open recovers state from dir (snapshots, then WAL suffixes) and opens
// the WAL stripes for appending. A torn tail is truncated; a shard-count
// change reshards the directory before returning.
func Open(opts Options) (*Log, error) {
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	if opts.Sync == "" {
		opts.Sync = SyncAlways
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 100 * time.Millisecond
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	if opts.Dir == "" {
		return nil, errors.New("persist: empty data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create data dir: %w", err)
	}

	l := &Log{opts: opts, reg: opts.Metrics, stop: make(chan struct{}), tickDone: make(chan struct{})}

	reshard, err := l.replay()
	if err != nil {
		return nil, err
	}

	l.shards = make([]*walShard, opts.Shards)
	for k := range l.shards {
		w := &walShard{path: filepath.Join(opts.Dir, fmt.Sprintf("wal-%d.log", k))}
		w.cond = sync.NewCond(&w.mu)
		l.shards[k] = w
	}

	if reshard {
		// Layout changed (or old files carry another stripe count): write
		// every recovered instance into a fresh snapshot under the new
		// layout and start the WALs empty.
		if err := l.rewriteAll(); err != nil {
			return nil, err
		}
	}
	for _, w := range l.shards {
		if err := w.open(); err != nil {
			return nil, err
		}
	}
	if err := l.writeMeta(); err != nil {
		return nil, err
	}

	if opts.Sync == SyncInterval {
		go l.syncLoop()
	} else {
		close(l.tickDone)
	}
	return l, nil
}

func (w *walShard) open() error {
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: open wal: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 64<<10)
	return nil
}

// Shards returns the stripe count.
func (l *Log) Shards() int { return len(l.shards) }

// Dir returns the data directory.
func (l *Log) Dir() string { return l.opts.Dir }

// NextID returns the recovered instance-id counter: the engine must hand
// out ids strictly above it so recycled ids never collide after replay.
func (l *Log) NextID() uint64 { return l.nextID.Load() }

// bumpNextID raises the instance-id high-water mark to at least n.
func (l *Log) bumpNextID(n uint64) {
	for {
		cur := l.nextID.Load()
		if n <= cur || l.nextID.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Recovered returns the instances reconstructed at Open, sorted by id —
// for inspection and logging. The engine adopts them via TakeRecovered.
func (l *Log) Recovered() []RecoveredInstance { return l.recovered }

// TakeRecovered returns the recovered instances and releases the log's
// references to them, so adopted databases can be garbage-collected once
// the engine drops them.
func (l *Log) TakeRecovered() []RecoveredInstance {
	r := l.recovered
	l.recovered = nil
	return r
}

// DroppedIDs returns the instance ids whose final replayed operation was a
// drop, sorted ascending. The engine's cold-adoption pass uses them to
// garbage-collect blobs whose live deletion was lost to a crash.
func (l *Log) DroppedIDs() []string { return l.dropped }

// InjectWriteError makes every subsequent append fail with err until
// called with nil — a chaos/test hook simulating a dying disk: commits
// fail before the in-memory state mutates, so acknowledged state and
// recovered state stay identical.
func (l *Log) InjectWriteError(err error) {
	l.failWrite.Store(&err)
}

func (l *Log) writeErr() error {
	if p, _ := l.failWrite.Load().(*error); p != nil {
		return *p
	}
	return nil
}

// Commit assigns rec the next global sequence number, appends it to the
// owning shard's WAL and — while still holding the shard lock — runs apply
// with the assigned seq. Append errors fail the commit without running
// apply, so memory never runs ahead of a WAL that will not replay. In
// SyncAlways mode Commit returns only after the record is fsynced (sharing
// fsyncs with concurrent committers).
func (l *Log) Commit(rec Record, apply func(seq uint64)) (uint64, error) {
	w := l.shards[ShardFor(rec.ID, len(l.shards))]
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return 0, errors.New("persist: log closed")
	}
	if err := l.writeErr(); err != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("persist: wal append: %w", err)
	}
	rec.Seq = l.seq.Add(1)
	if rec.Op == OpCreate {
		l.bumpNextID(maxInstanceID(0, rec.ID))
	}
	n, err := appendRecord(w.bw, &rec)
	if err != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("persist: wal append: %w", err)
	}
	w.dirty = rec.Seq
	if apply != nil {
		apply(rec.Seq)
	}
	w.mu.Unlock()

	l.reg.Counter("persist_wal_records_total").Inc()
	l.reg.Counter("persist_wal_bytes_total").Add(int64(n))

	if l.opts.Sync == SyncAlways {
		if err := l.syncShard(w, rec.Seq); err != nil {
			return rec.Seq, err
		}
	}
	return rec.Seq, nil
}

// appendRecord writes one CRC-framed record line; returns bytes written.
func appendRecord(bw *bufio.Writer, rec *Record) (int, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	return bw.WriteString(line)
}

// syncShard blocks until every record up to seq is fsynced, coalescing
// with concurrent waiters: the caller that finds no fsync in flight
// becomes the leader, flushes the buffer and fsyncs once for everyone who
// queued behind it.
func (l *Log) syncShard(w *walShard, seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.synced >= seq {
			return nil
		}
		if w.f == nil {
			return errors.New("persist: log closed")
		}
		if w.syncing {
			w.cond.Wait()
			if w.syncErr != nil && w.synced < seq {
				return w.syncErr
			}
			continue
		}
		w.syncing = true
		target := w.dirty
		err := w.bw.Flush()
		f := w.f
		w.mu.Unlock()
		if err == nil {
			err = f.Sync()
			l.reg.Counter("persist_wal_fsyncs_total").Inc()
		}
		if err != nil {
			// Surface failures even when no committer is waiting (the
			// SyncInterval ticker discards the return value): without this
			// counter a dying disk under -wal-sync interval is invisible.
			l.reg.Counter("persist_wal_fsync_errors_total").Inc()
		}
		w.mu.Lock()
		w.syncing = false
		w.syncErr = err
		if err == nil && target > w.synced {
			w.synced = target
		}
		w.cond.Broadcast()
		if err != nil {
			return err
		}
	}
}

// syncLoop is the SyncInterval ticker: flush+fsync any dirty shard.
func (l *Log) syncLoop() {
	defer close(l.tickDone)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			for _, w := range l.shards {
				w.mu.Lock()
				dirty, synced, open := w.dirty, w.synced, w.f != nil
				w.mu.Unlock()
				if open && dirty > synced {
					_ = l.syncShard(w, dirty)
				}
			}
		}
	}
}

// Sync flushes and fsyncs every shard.
func (l *Log) Sync() error {
	var first error
	for _, w := range l.shards {
		w.mu.Lock()
		dirty, open := w.dirty, w.f != nil
		w.mu.Unlock()
		if !open {
			continue
		}
		if err := l.syncShard(w, dirty); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close syncs and closes every shard file. Further commits fail.
func (l *Log) Close() error {
	var first error
	l.closeOnce.Do(func() {
		close(l.stop)
		<-l.tickDone
		first = l.Sync()
		for _, w := range l.shards {
			w.mu.Lock()
			for w.syncing {
				w.cond.Wait()
			}
			if w.f != nil {
				if err := w.f.Close(); err != nil && first == nil {
					first = err
				}
				w.f = nil
			}
			w.cond.Broadcast()
			w.mu.Unlock()
		}
	})
	return first
}

// meta.json records the stripe layout so Open can detect reshards.
type metaFile struct {
	Format int `json:"format"`
	Shards int `json:"shards"`
}

func (l *Log) metaPath() string { return filepath.Join(l.opts.Dir, "meta.json") }

func (l *Log) writeMeta() error {
	raw, _ := json.Marshal(metaFile{Format: 1, Shards: len(l.shards)})
	return writeFileAtomic(l.metaPath(), raw)
}

// writeFileAtomic writes via tmp+rename and fsyncs file and directory, so
// a crash leaves either the old or the new content, never a torn file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// parseRecords scans CRC-framed record lines from raw, returning the
// records up to the first torn or corrupt line and the byte offset where
// the clean prefix ends.
func parseRecords(raw []byte) (recs []Record, clean int) {
	off := 0
	for off < len(raw) {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		line := raw[off : off+nl]
		if len(line) < 10 || line[8] != ' ' {
			break
		}
		var crc uint32
		if _, err := fmt.Sscanf(string(line[:8]), "%08x", &crc); err != nil {
			break
		}
		payload := line[9:]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
		off += nl + 1
		clean = off
	}
	return recs, clean
}
