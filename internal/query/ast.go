// Package query implements the query calculus of the paper: rule-based
// conjunctive queries with disequalities (CQ≠, Def. 2.1), the subclasses CQ
// (no disequalities) and cCQ≠ (complete queries, Def. 2.2), and unions of
// conjunctive queries UCQ≠ (Def. 2.4).
//
// Queries are written in a Datalog-like surface syntax:
//
//	ans(x, y) :- R(x, y), S(y, 'c'), x != y, y != 'c'
//
// Identifiers are variables; quoted tokens ('c' or "c") and numeric literals
// are constants. A union is a sequence of rules with the same head relation
// separated by newlines or semicolons.
package query

import (
	"fmt"
	"sort"
	"strings"
)

// Arg is an argument of an atom: either a variable or a constant.
type Arg struct {
	Const bool   // true for constants
	Name  string // variable name or constant value
}

// V returns a variable argument.
func V(name string) Arg { return Arg{Name: name} }

// C returns a constant argument.
func C(value string) Arg { return Arg{Const: true, Name: value} }

// String renders a variable bare and a constant quoted.
func (a Arg) String() string {
	if a.Const {
		return "'" + a.Name + "'"
	}
	return a.Name
}

// Atom is a relational atom R(l1, ..., lk).
type Atom struct {
	Rel  string
	Args []Arg
}

// NewAtom builds an atom.
func NewAtom(rel string, args ...Arg) Atom { return Atom{Rel: rel, Args: args} }

// String renders the atom, e.g. "R(x,'a')".
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, arg := range a.Args {
		parts[i] = arg.String()
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

// Equal reports syntactic equality of atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Rel != b.Rel || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (a Atom) Clone() Atom {
	args := make([]Arg, len(a.Args))
	copy(args, a.Args)
	return Atom{Rel: a.Rel, Args: args}
}

// Diseq is a disequality atom l1 != l2. Def. 2.1 requires the left side to
// be a variable; the right side is a variable or a constant. Diseqs are kept
// in a normalized form (see Normalize) so that set operations are cheap.
type Diseq struct {
	Left  Arg // always a variable after Normalize
	Right Arg
}

// NewDiseq builds a normalized disequality.
func NewDiseq(l, r Arg) Diseq { return Diseq{Left: l, Right: r}.Normalize() }

// Normalize orders the two sides canonically: a variable-variable pair is
// sorted by name; a variable-constant pair puts the variable on the left.
func (d Diseq) Normalize() Diseq {
	switch {
	case d.Left.Const && !d.Right.Const:
		return Diseq{Left: d.Right, Right: d.Left}
	case !d.Left.Const && !d.Right.Const && d.Right.Name < d.Left.Name:
		return Diseq{Left: d.Right, Right: d.Left}
	}
	return d
}

// String renders the disequality, e.g. "x != 'a'".
func (d Diseq) String() string { return d.Left.String() + " != " + d.Right.String() }

// Mentions reports whether the disequality involves the given argument.
func (d Diseq) Mentions(a Arg) bool { return d.Left == a || d.Right == a }

// CQ is a rule-based conjunctive query with disequalities (Def. 2.1).
type CQ struct {
	Head   Atom    // head(Q); arity 0 means a boolean query
	Atoms  []Atom  // relational atoms, body order preserved
	Diseqs []Diseq // disequality atoms, normalized
}

// NewCQ builds a conjunctive query, normalizing and deduplicating its
// disequalities.
func NewCQ(head Atom, atoms []Atom, diseqs []Diseq) *CQ {
	q := &CQ{Head: head, Atoms: atoms}
	q.Diseqs = normalizeDiseqs(diseqs)
	return q
}

func normalizeDiseqs(ds []Diseq) []Diseq {
	seen := map[Diseq]bool{}
	out := make([]Diseq, 0, len(ds))
	for _, d := range ds {
		n := d.Normalize()
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return diseqLess(out[i], out[j]) })
	return out
}

func diseqLess(a, b Diseq) bool {
	if a.Left != b.Left {
		if a.Left.Const != b.Left.Const {
			return !a.Left.Const
		}
		return a.Left.Name < b.Left.Name
	}
	if a.Right.Const != b.Right.Const {
		return !a.Right.Const
	}
	return a.Right.Name < b.Right.Name
}

// IsBoolean reports whether the head has arity 0.
func (q *CQ) IsBoolean() bool { return len(q.Head.Args) == 0 }

// Vars returns Var(Q): the sorted set of variables in the body (head
// variables are required to occur in the body by safety).
func (q *CQ) Vars() []string {
	seen := map[string]bool{}
	for _, at := range q.Atoms {
		for _, a := range at.Args {
			if !a.Const {
				seen[a.Name] = true
			}
		}
	}
	for _, a := range q.Head.Args {
		if !a.Const {
			seen[a.Name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Consts returns Const(Q): the sorted set of constants appearing anywhere in
// the query (head, relational atoms, disequalities).
func (q *CQ) Consts() []string {
	seen := map[string]bool{}
	add := func(a Arg) {
		if a.Const {
			seen[a.Name] = true
		}
	}
	add2 := func(at Atom) {
		for _, a := range at.Args {
			add(a)
		}
	}
	add2(q.Head)
	for _, at := range q.Atoms {
		add2(at)
	}
	for _, d := range q.Diseqs {
		add(d.Left)
		add(d.Right)
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// HasDiseq reports whether the normalized disequality between a and b is
// present in the query.
func (q *CQ) HasDiseq(a, b Arg) bool {
	want := NewDiseq(a, b)
	for _, d := range q.Diseqs {
		if d == want {
			return true
		}
	}
	return false
}

// HasDiseqs reports whether the query contains any disequality atoms, i.e.
// whether it falls outside the subclass CQ.
func (q *CQ) HasDiseqs() bool { return len(q.Diseqs) > 0 }

// Clone returns a deep copy of the query.
func (q *CQ) Clone() *CQ {
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = a.Clone()
	}
	diseqs := make([]Diseq, len(q.Diseqs))
	copy(diseqs, q.Diseqs)
	return &CQ{Head: q.Head.Clone(), Atoms: atoms, Diseqs: diseqs}
}

// Subst maps variable names to replacement arguments.
type Subst map[string]Arg

// Apply returns the image of a under the substitution (constants unchanged,
// unmapped variables unchanged).
func (s Subst) Apply(a Arg) Arg {
	if a.Const {
		return a
	}
	if r, ok := s[a.Name]; ok {
		return r
	}
	return a
}

// ApplySubst returns a new query with every variable occurrence replaced
// according to s. Disequalities are re-normalized; a disequality whose two
// sides become the same argument makes the query unsatisfiable, which the
// caller must check via HasContradiction.
func (q *CQ) ApplySubst(s Subst) *CQ {
	out := q.Clone()
	for i := range out.Head.Args {
		out.Head.Args[i] = s.Apply(out.Head.Args[i])
	}
	for i := range out.Atoms {
		for j := range out.Atoms[i].Args {
			out.Atoms[i].Args[j] = s.Apply(out.Atoms[i].Args[j])
		}
	}
	ds := make([]Diseq, 0, len(out.Diseqs))
	for _, d := range out.Diseqs {
		nd := Diseq{Left: s.Apply(d.Left), Right: s.Apply(d.Right)}
		ds = append(ds, nd)
	}
	out.Diseqs = normalizeDiseqs(ds)
	return out
}

// HasContradiction reports whether some disequality has two identical sides
// (l != l) or relates two distinct constants trivially satisfied; only the
// former makes a query unsatisfiable, and that is what this reports.
func (q *CQ) HasContradiction() bool {
	for _, d := range q.Diseqs {
		if d.Left == d.Right {
			return true
		}
	}
	return false
}

// RemoveAtom returns a copy of q without the relational atom at index i.
func (q *CQ) RemoveAtom(i int) *CQ {
	out := q.Clone()
	out.Atoms = append(out.Atoms[:i], out.Atoms[i+1:]...)
	return out
}

// String renders the query as a rule, e.g.
// "ans(x) :- R(x,y), R(y,x), x != y".
func (q *CQ) String() string {
	var b strings.Builder
	b.WriteString(q.Head.String())
	b.WriteString(" :- ")
	parts := make([]string, 0, len(q.Atoms)+len(q.Diseqs))
	for _, a := range q.Atoms {
		parts = append(parts, a.String())
	}
	for _, d := range q.Diseqs {
		parts = append(parts, d.String())
	}
	b.WriteString(strings.Join(parts, ", "))
	return b.String()
}

// SortedString renders the query with relational atoms sorted, giving a
// body-order-insensitive key for syntactic comparison (not isomorphism).
func (q *CQ) SortedString() string {
	atoms := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = a.String()
	}
	sort.Strings(atoms)
	ds := make([]string, len(q.Diseqs))
	for i, d := range q.Diseqs {
		ds[i] = d.String()
	}
	sort.Strings(ds)
	return q.Head.String() + " :- " + strings.Join(append(atoms, ds...), ", ")
}

// Equal reports body-order-insensitive syntactic equality (same head, same
// multiset of atoms, same set of disequalities). Variable names matter; use
// hom.Isomorphic for equality up to renaming.
func (q *CQ) Equal(r *CQ) bool { return q.SortedString() == r.SortedString() }

// UCQ is a union of conjunctive queries with disequalities (Def. 2.4). All
// adjunct heads must share the same relation name and arity.
type UCQ struct {
	Adjuncts []*CQ
}

// NewUCQ builds a union and validates head compatibility.
func NewUCQ(adjuncts ...*CQ) (*UCQ, error) {
	if len(adjuncts) == 0 {
		return nil, fmt.Errorf("union must have at least one adjunct")
	}
	h := adjuncts[0].Head
	for _, q := range adjuncts[1:] {
		if q.Head.Rel != h.Rel || len(q.Head.Args) != len(h.Args) {
			return nil, fmt.Errorf("adjunct head %s incompatible with %s", q.Head, h)
		}
	}
	return &UCQ{Adjuncts: adjuncts}, nil
}

// Single wraps a lone conjunctive query as a UCQ.
func Single(q *CQ) *UCQ { return &UCQ{Adjuncts: []*CQ{q}} }

// IsBoolean reports whether the union's head has arity 0.
func (u *UCQ) IsBoolean() bool { return u.Adjuncts[0].IsBoolean() }

// Vars returns the union of the adjuncts' variable sets (Def. 2.4 note).
func (u *UCQ) Vars() []string {
	seen := map[string]bool{}
	for _, q := range u.Adjuncts {
		for _, v := range q.Vars() {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Consts returns the union of the adjuncts' constant sets.
func (u *UCQ) Consts() []string {
	seen := map[string]bool{}
	for _, q := range u.Adjuncts {
		for _, c := range q.Consts() {
			seen[c] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// NumAtoms returns the total number of relational atoms over all adjuncts, a
// standard size measure for queries.
func (u *UCQ) NumAtoms() int {
	n := 0
	for _, q := range u.Adjuncts {
		n += len(q.Atoms)
	}
	return n
}

// Clone returns a deep copy of the union.
func (u *UCQ) Clone() *UCQ {
	adj := make([]*CQ, len(u.Adjuncts))
	for i, q := range u.Adjuncts {
		adj[i] = q.Clone()
	}
	return &UCQ{Adjuncts: adj}
}

// String renders the union one rule per line.
func (u *UCQ) String() string {
	lines := make([]string, len(u.Adjuncts))
	for i, q := range u.Adjuncts {
		lines[i] = q.String()
	}
	return strings.Join(lines, "\n")
}
