package query

import "testing"

func TestIsCompleteExample23(t *testing.T) {
	// Example 2.3: Q is not complete, Q' is.
	q := MustParse("ans(x,y) :- R(x,y), S(y,'c'), x != y, y != 'c'")
	if q.IsComplete() {
		t.Error("Q from Example 2.3 is not complete (missing x != 'c')")
	}
	qp := MustParse("ans(x,y) :- R(x,y), S(y,'c'), x != y, y != 'c', x != 'c'")
	if !qp.IsComplete() {
		t.Error("Q' from Example 2.3 is complete")
	}
}

func TestIsCompleteVacuous(t *testing.T) {
	if !MustParse("ans(x) :- R(x,x)").IsComplete() {
		t.Error("single-variable constant-free query is vacuously complete")
	}
	if !MustParse("ans() :- R(x)").IsComplete() {
		t.Error("ans() :- R(x) is vacuously complete")
	}
}

func TestIsCompleteMissingVarPair(t *testing.T) {
	q := MustParse("ans() :- R(x,y), R(y,z), x != y, y != z")
	if q.IsComplete() {
		t.Error("missing x != z, query is not complete")
	}
	full := MustParse("ans() :- R(x,y), R(y,z), x != y, y != z, x != z")
	if !full.IsComplete() {
		t.Error("all pairs present, query is complete")
	}
}

func TestIsCompleteWRT(t *testing.T) {
	q := MustParse("ans(x) :- R(x), x != 'a'")
	if !q.IsComplete() {
		t.Fatal("q should be complete (one var, one const)")
	}
	if q.IsCompleteWRT([]string{"b"}) {
		t.Error("q lacks x != 'b'")
	}
	ext := MustParse("ans(x) :- R(x), x != 'a', x != 'b'")
	if !ext.IsCompleteWRT([]string{"b"}) {
		t.Error("extended query is complete w.r.t. {b}")
	}
}

func TestCompleteWRT(t *testing.T) {
	q := MustParse("ans() :- R(x,y), S(y,'c')")
	got := q.CompleteWRT([]string{"d"})
	if !got.IsComplete() {
		t.Error("CompleteWRT result must be complete")
	}
	if !got.IsCompleteWRT([]string{"d"}) {
		t.Error("CompleteWRT result must be complete w.r.t. the extra constants")
	}
	// x != y, x != 'c', y != 'c', x != 'd', y != 'd' => 5 diseqs
	if len(got.Diseqs) != 5 {
		t.Errorf("diseqs = %v", got.Diseqs)
	}
	if q.HasDiseqs() {
		t.Error("CompleteWRT must not mutate the receiver")
	}
}

func TestDedupAtoms(t *testing.T) {
	// Q̂1 from Figure 3: three copies of R(v1,v1) collapse to one.
	q := MustParse("ans() :- R(v1,v1), R(v1,v1), R(v1,v1)")
	got := q.DedupAtoms()
	if len(got.Atoms) != 1 {
		t.Errorf("DedupAtoms = %v", got.Atoms)
	}
	if !q.HasDuplicateAtoms() {
		t.Error("HasDuplicateAtoms should be true before dedup")
	}
	if got.HasDuplicateAtoms() {
		t.Error("HasDuplicateAtoms should be false after dedup")
	}
}

func TestDedupAtomsKeepsDistinct(t *testing.T) {
	q := MustParse("ans() :- R(x,y), R(y,x), x != y")
	got := q.DedupAtoms()
	if len(got.Atoms) != 2 {
		t.Errorf("distinct atoms must be kept: %v", got.Atoms)
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		rule string
		want Class
	}{
		{"ans(x) :- R(x,x)", ClassCQ},
		{"ans() :- R(x,y), R(y,z), x != z", ClassCQNeq},
		{"ans(x) :- R(x,y), x != y", ClassCCQNeq},
	}
	for _, c := range cases {
		if got := ClassOf(MustParse(c.rule)); got != c.want {
			t.Errorf("ClassOf(%q) = %v, want %v", c.rule, got, c.want)
		}
	}
}

func TestClassOfUnion(t *testing.T) {
	u := MustParseUnion("ans(x) :- R(x,y), x != y\nans(x) :- R(x,x)")
	if got := ClassOfUnion(u); got != ClassCUCQNeq {
		t.Errorf("ClassOfUnion = %v, want cUCQ!=", got)
	}
	u2 := MustParseUnion("ans() :- R(x,y), R(y,z), x != z\nans() :- R(x,x)")
	if got := ClassOfUnion(u2); got != ClassUCQNeq {
		t.Errorf("ClassOfUnion = %v, want UCQ!=", got)
	}
	u3 := MustParseUnion("ans(x) :- R(x,x)")
	if got := ClassOfUnion(u3); got != ClassCQ {
		t.Errorf("singleton ClassOfUnion = %v, want CQ", got)
	}
}

func TestClassString(t *testing.T) {
	if ClassCQ.String() != "CQ" || ClassCCQNeq.String() != "cCQ!=" {
		t.Error("Class.String misnames classes")
	}
}
