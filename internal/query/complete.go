package query

// IsComplete reports whether the query is complete in the sense of Def. 2.2:
// (1) for every pair of distinct variables x, y in Var(Q) the query contains
// x != y, and (2) for every variable x and constant c in Const(Q) it
// contains x != c. Queries without disequalities and with at most one
// variable and no constants are vacuously complete.
func (q *CQ) IsComplete() bool {
	vars := q.Vars()
	consts := q.Consts()
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			if !q.HasDiseq(V(vars[i]), V(vars[j])) {
				return false
			}
		}
		for _, c := range consts {
			if !q.HasDiseq(V(vars[i]), C(c)) {
				return false
			}
		}
	}
	return true
}

// IsCompleteWRT reports whether the query is complete with respect to the
// constant set extra ⊇ Const(Q), as used in the proof of Prop. 4.8: complete,
// and additionally containing v != c for every v in Var(Q) and c in extra.
func (q *CQ) IsCompleteWRT(extra []string) bool {
	if !q.IsComplete() {
		return false
	}
	for _, v := range q.Vars() {
		for _, c := range extra {
			if !q.HasDiseq(V(v), C(c)) {
				return false
			}
		}
	}
	return true
}

// CompleteWRT returns a copy of q extended with all disequalities between
// distinct variables and between variables and the given constants (which
// should include Const(Q)). The result is complete w.r.t. consts. Note this
// changes the query's semantics unless the disequalities already hold on the
// intended instances; the canonical rewriting (Def. 4.1), not this helper,
// is the semantics-preserving construction.
func (q *CQ) CompleteWRT(consts []string) *CQ {
	out := q.Clone()
	vars := q.Vars()
	seen := map[string]bool{}
	for _, c := range append(q.Consts(), consts...) {
		seen[c] = true
	}
	allConsts := make([]string, 0, len(seen))
	for c := range seen {
		allConsts = append(allConsts, c)
	}
	ds := out.Diseqs
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			ds = append(ds, NewDiseq(V(vars[i]), V(vars[j])))
		}
		for _, c := range allConsts {
			ds = append(ds, NewDiseq(V(vars[i]), C(c)))
		}
	}
	out.Diseqs = normalizeDiseqs(ds)
	return out
}

// DedupAtoms returns a copy of q with duplicated relational atoms (same
// relation, same argument list) removed, keeping the first occurrence. By
// Lemma 3.13 this is exactly (p-)minimization for complete queries.
func (q *CQ) DedupAtoms() *CQ {
	out := q.Clone()
	seen := map[string]bool{}
	kept := out.Atoms[:0]
	for _, a := range out.Atoms {
		k := a.String()
		if !seen[k] {
			seen[k] = true
			kept = append(kept, a)
		}
	}
	out.Atoms = kept
	return out
}

// HasDuplicateAtoms reports whether two relational atoms are syntactically
// identical.
func (q *CQ) HasDuplicateAtoms() bool {
	seen := map[string]bool{}
	for _, a := range q.Atoms {
		k := a.String()
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}
