package query

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a single conjunctive-query rule:
//
//	head :- body
//	head := ident '(' args? ')'
//	body := item (',' item)*
//	item := ident '(' args? ')' | arg '!=' arg
//	arg  := ident | quoted | number
//
// ":=" is accepted as a synonym for ":-" (the paper uses ":="). Identifiers
// are variables; 'quoted', "quoted" and numeric literals are constants.
func Parse(rule string) (*CQ, error) {
	p := &parser{in: rule}
	q, err := p.parseRule()
	if err != nil {
		return nil, fmt.Errorf("parse query %q: %w", rule, err)
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("invalid query %q: %w", rule, err)
	}
	return q, nil
}

// ParseRule parses a rule with the relaxed validation used by Datalog
// programs: safety conditions are enforced but the head relation may occur
// in rule bodies (the program layer rejects recursion globally).
func ParseRule(rule string) (*CQ, error) {
	p := &parser{in: rule}
	q, err := p.parseRule()
	if err != nil {
		return nil, fmt.Errorf("parse rule %q: %w", rule, err)
	}
	if err := q.ValidateSafety(); err != nil {
		return nil, fmt.Errorf("invalid rule %q: %w", rule, err)
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and literal programs.
func MustParse(rule string) *CQ {
	q, err := Parse(rule)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseUnion parses a union of rules separated by newlines or semicolons.
// Blank lines and lines starting with '#' or '--' are skipped.
func ParseUnion(text string) (*UCQ, error) {
	var adjuncts []*CQ
	for _, chunk := range splitRules(text) {
		q, err := Parse(chunk)
		if err != nil {
			return nil, err
		}
		adjuncts = append(adjuncts, q)
	}
	if len(adjuncts) == 0 {
		return nil, fmt.Errorf("parse union: no rules found")
	}
	return NewUCQ(adjuncts...)
}

// MustParseUnion is ParseUnion that panics on error.
func MustParseUnion(text string) *UCQ {
	u, err := ParseUnion(text)
	if err != nil {
		panic(err)
	}
	return u
}

func splitRules(text string) []string {
	var out []string
	for _, line := range strings.FieldsFunc(text, func(r rune) bool { return r == '\n' || r == ';' }) {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "#") || strings.HasPrefix(s, "--") {
			continue
		}
		out = append(out, s)
	}
	return out
}

type parser struct {
	in  string
	pos int
}

func (p *parser) parseRule() (*CQ, error) {
	head, err := p.parseAtom()
	if err != nil {
		return nil, fmt.Errorf("head: %w", err)
	}
	p.skipSpace()
	if !p.consume(":-") && !p.consume(":=") {
		return nil, fmt.Errorf("expected \":-\" at offset %d", p.pos)
	}
	var atoms []Atom
	var diseqs []Diseq
	for {
		p.skipSpace()
		if p.pos >= len(p.in) {
			break
		}
		save := p.pos
		// Try "arg != arg" first; fall back to a relational atom.
		if d, ok := p.tryParseDiseq(); ok {
			diseqs = append(diseqs, d)
		} else {
			p.pos = save
			a, err := p.parseAtom()
			if err != nil {
				return nil, fmt.Errorf("body: %w", err)
			}
			atoms = append(atoms, a)
		}
		p.skipSpace()
		if p.pos >= len(p.in) {
			break
		}
		if p.in[p.pos] != ',' {
			return nil, fmt.Errorf("expected ',' at offset %d", p.pos)
		}
		p.pos++
	}
	return NewCQ(head, atoms, diseqs), nil
}

func (p *parser) tryParseDiseq() (Diseq, bool) {
	l, err := p.parseArg()
	if err != nil {
		return Diseq{}, false
	}
	p.skipSpace()
	if !p.consume("!=") && !p.consume("<>") {
		return Diseq{}, false
	}
	p.skipSpace()
	r, err := p.parseArg()
	if err != nil {
		return Diseq{}, false
	}
	return NewDiseq(l, r), true
}

func (p *parser) parseAtom() (Atom, error) {
	p.skipSpace()
	rel, err := p.parseIdent()
	if err != nil {
		return Atom{}, err
	}
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != '(' {
		return Atom{}, fmt.Errorf("expected '(' after relation %q at offset %d", rel, p.pos)
	}
	p.pos++
	var args []Arg
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == ')' {
		p.pos++
		return Atom{Rel: rel, Args: args}, nil
	}
	for {
		a, err := p.parseArg()
		if err != nil {
			return Atom{}, err
		}
		args = append(args, a)
		p.skipSpace()
		if p.pos >= len(p.in) {
			return Atom{}, fmt.Errorf("unterminated atom %q", rel)
		}
		switch p.in[p.pos] {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return Atom{Rel: rel, Args: args}, nil
		default:
			return Atom{}, fmt.Errorf("unexpected %q in atom at offset %d", p.in[p.pos], p.pos)
		}
	}
}

func (p *parser) parseArg() (Arg, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return Arg{}, fmt.Errorf("expected argument at offset %d", p.pos)
	}
	switch c := p.in[p.pos]; {
	case c == '\'' || c == '"':
		quote := c
		p.pos++
		start := p.pos
		for p.pos < len(p.in) && p.in[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.in) {
			return Arg{}, fmt.Errorf("unterminated constant at offset %d", start)
		}
		val := p.in[start:p.pos]
		p.pos++
		return C(val), nil
	case unicode.IsDigit(rune(c)):
		start := p.pos
		for p.pos < len(p.in) && (unicode.IsDigit(rune(p.in[p.pos])) || p.in[p.pos] == '.') {
			p.pos++
		}
		return C(p.in[start:p.pos]), nil
	default:
		name, err := p.parseIdent()
		if err != nil {
			return Arg{}, err
		}
		return V(name), nil
	}
}

func (p *parser) parseIdent() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := rune(p.in[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("expected identifier at offset %d", start)
	}
	if unicode.IsDigit(rune(p.in[start])) {
		return "", fmt.Errorf("identifier must not start with a digit at offset %d", start)
	}
	return p.in[start:p.pos], nil
}

func (p *parser) consume(tok string) bool {
	if strings.HasPrefix(p.in[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\r') {
		p.pos++
	}
}
