package query

import "fmt"

// Validate checks the well-formedness conditions of Def. 2.1:
//   - every distinguished (head) variable occurs in a relational atom;
//   - every variable in a disequality occurs in a relational atom;
//   - all atoms of the same relation have the same arity;
//   - the head relation does not occur in the body.
func (q *CQ) Validate() error {
	for _, at := range q.Atoms {
		if at.Rel == q.Head.Rel {
			return fmt.Errorf("head relation %s must not occur in the body", at.Rel)
		}
	}
	return q.ValidateSafety()
}

// ValidateSafety checks Validate's conditions except the head-relation rule,
// which Datalog programs (package datalog) relax: rules over intensional
// predicates may mention other rules' head relations in their bodies, with
// recursion rejected at the program level instead.
func (q *CQ) ValidateSafety() error {
	bodyVars := map[string]bool{}
	arity := map[string]int{}
	for _, at := range q.Atoms {
		if n, ok := arity[at.Rel]; ok && n != len(at.Args) {
			return fmt.Errorf("relation %s used with arities %d and %d", at.Rel, n, len(at.Args))
		}
		arity[at.Rel] = len(at.Args)
		for _, a := range at.Args {
			if !a.Const {
				bodyVars[a.Name] = true
			}
		}
	}
	for _, a := range q.Head.Args {
		if !a.Const && !bodyVars[a.Name] {
			return fmt.Errorf("head variable %s does not occur in the body", a.Name)
		}
	}
	for _, d := range q.Diseqs {
		if d.Left.Const && d.Right.Const {
			continue // constant != constant is statically decided; allowed as input
		}
		for _, side := range []Arg{d.Left, d.Right} {
			if !side.Const && !bodyVars[side.Name] {
				return fmt.Errorf("disequality variable %s does not occur in a relational atom", side.Name)
			}
		}
	}
	return nil
}

// Validate checks every adjunct and head compatibility across the union.
func (u *UCQ) Validate() error {
	if len(u.Adjuncts) == 0 {
		return fmt.Errorf("union has no adjuncts")
	}
	h := u.Adjuncts[0].Head
	arity := map[string]int{}
	for i, q := range u.Adjuncts {
		if err := q.Validate(); err != nil {
			return fmt.Errorf("adjunct %d: %w", i, err)
		}
		if q.Head.Rel != h.Rel || len(q.Head.Args) != len(h.Args) {
			return fmt.Errorf("adjunct %d head %s incompatible with %s", i, q.Head, h)
		}
		for _, at := range q.Atoms {
			if n, ok := arity[at.Rel]; ok && n != len(at.Args) {
				return fmt.Errorf("relation %s used with arities %d and %d across adjuncts", at.Rel, n, len(at.Args))
			}
			arity[at.Rel] = len(at.Args)
		}
	}
	return nil
}

// Class identifies the syntactic query class of the paper's Table 1.
type Class int

const (
	// ClassCQ is the class of conjunctive queries without disequalities.
	ClassCQ Class = iota
	// ClassCQNeq is CQ≠: conjunctive queries with disequalities.
	ClassCQNeq
	// ClassCCQNeq is cCQ≠: complete conjunctive queries with disequalities.
	ClassCCQNeq
	// ClassUCQNeq is UCQ≠: unions of conjunctive queries with disequalities.
	ClassUCQNeq
	// ClassCUCQNeq is cUCQ≠: unions of complete conjunctive queries.
	ClassCUCQNeq
)

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case ClassCQ:
		return "CQ"
	case ClassCQNeq:
		return "CQ!="
	case ClassCCQNeq:
		return "cCQ!="
	case ClassUCQNeq:
		return "UCQ!="
	case ClassCUCQNeq:
		return "cUCQ!="
	}
	return "unknown"
}

// ClassOf returns the most specific class of a single conjunctive query.
func ClassOf(q *CQ) Class {
	if !q.HasDiseqs() {
		return ClassCQ
	}
	if q.IsComplete() {
		return ClassCCQNeq
	}
	return ClassCQNeq
}

// ClassOfUnion returns the most specific class of a union: a singleton union
// reports its adjunct's class; otherwise cUCQ≠ when all adjuncts are
// complete, else UCQ≠.
func ClassOfUnion(u *UCQ) Class {
	if len(u.Adjuncts) == 1 {
		return ClassOf(u.Adjuncts[0])
	}
	allComplete := true
	for _, q := range u.Adjuncts {
		if !q.IsComplete() {
			allComplete = false
			break
		}
	}
	if allComplete {
		return ClassCUCQNeq
	}
	return ClassUCQNeq
}
