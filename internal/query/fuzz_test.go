package query

import "testing"

// FuzzParse checks the parser never panics and that accepted inputs
// round-trip: Parse(q.String()) succeeds and is Equal to q.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"ans(x) :- R(x,y), R(y,x), x != y",
		"ans(x) :- R(x,x)",
		"ans() :- R(x,y), R(y,z), x != z",
		"ans(x,'a') :- R(x,'a'), x != 'a'",
		"ans(x) :- R(x,y), S(y,'c'), x != y, y != 'c'",
		"ans() :- R(x)",
		"ans(x):=R(x,42)",
		"ans(x) :- R(x), 'a' != x",
		"", ":-", "ans(", "ans(x) :- ", "ans(x) :- R(x", "x != y",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("round trip parse failed for %q -> %q: %v", input, q.String(), err)
		}
		if !q.Equal(q2) {
			t.Fatalf("round trip not equal: %q vs %q", q.String(), q2.String())
		}
		if err := q2.Validate(); err != nil {
			t.Fatalf("accepted query fails validation: %v", err)
		}
	})
}

// FuzzParseUnion checks the union parser never panics.
func FuzzParseUnion(f *testing.F) {
	f.Add("ans(x) :- R(x,x)\nans(x) :- S(x)")
	f.Add("ans(x) :- R(x,x); ans(x) :- R(x,y), x != y")
	f.Add("# c\nans() :- R(x)")
	f.Fuzz(func(t *testing.T, input string) {
		u, err := ParseUnion(input)
		if err != nil {
			return
		}
		u2, err := ParseUnion(u.String())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(u.Adjuncts) != len(u2.Adjuncts) {
			t.Fatalf("adjunct count changed: %d vs %d", len(u.Adjuncts), len(u2.Adjuncts))
		}
	})
}
