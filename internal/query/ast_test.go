package query

import "testing"

func TestVarsAndConsts(t *testing.T) {
	q := MustParse("ans(x,y) :- R(x,y), S(y,'c'), x != y, y != 'c'")
	vars := q.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
	consts := q.Consts()
	if len(consts) != 1 || consts[0] != "c" {
		t.Errorf("Consts = %v", consts)
	}
}

func TestConstsIncludeDiseqOnlyConstants(t *testing.T) {
	// Example 4.2's query: constant 'a' appears only in a disequality.
	q := MustParse("ans(x,y) :- R(x,y), x != 'a', x != y")
	consts := q.Consts()
	if len(consts) != 1 || consts[0] != "a" {
		t.Errorf("Consts = %v", consts)
	}
}

func TestHasDiseqSymmetric(t *testing.T) {
	q := MustParse("ans() :- R(x,y), x != y")
	if !q.HasDiseq(V("x"), V("y")) || !q.HasDiseq(V("y"), V("x")) {
		t.Error("HasDiseq must be symmetric for variables")
	}
	if q.HasDiseq(V("x"), C("a")) {
		t.Error("absent diseq reported")
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := MustParse("ans(x) :- R(x,y), x != y")
	c := q.Clone()
	c.Atoms[0].Args[0] = C("mutated")
	c.Head.Args[0] = C("mutated")
	if q.Atoms[0].Args[0] != V("x") || q.Head.Args[0] != V("x") {
		t.Error("Clone must not share argument storage")
	}
}

func TestApplySubst(t *testing.T) {
	q := MustParse("ans(x) :- R(x,y), R(y,x), x != y")
	got := q.ApplySubst(Subst{"y": V("x")})
	// Both atoms become R(x,x); the diseq becomes x != x (contradiction).
	if !got.Atoms[0].Equal(NewAtom("R", V("x"), V("x"))) {
		t.Errorf("atom = %v", got.Atoms[0])
	}
	if !got.HasContradiction() {
		t.Error("x != x must be a contradiction")
	}
}

func TestApplySubstToConstant(t *testing.T) {
	q := MustParse("ans(x) :- R(x,y), x != y")
	got := q.ApplySubst(Subst{"y": C("a")})
	if !got.Atoms[0].Equal(NewAtom("R", V("x"), C("a"))) {
		t.Errorf("atom = %v", got.Atoms[0])
	}
	if !got.HasDiseq(V("x"), C("a")) {
		t.Errorf("diseq not rewritten: %v", got.Diseqs)
	}
}

func TestRemoveAtom(t *testing.T) {
	q := MustParse("ans() :- R(x,y), S(y), T(y,z)")
	got := q.RemoveAtom(1)
	if len(got.Atoms) != 2 || got.Atoms[0].Rel != "R" || got.Atoms[1].Rel != "T" {
		t.Errorf("RemoveAtom = %v", got.Atoms)
	}
	if len(q.Atoms) != 3 {
		t.Error("RemoveAtom must not mutate the receiver")
	}
}

func TestEqualBodyOrderInsensitive(t *testing.T) {
	a := MustParse("ans() :- R(x,y), S(y), x != y")
	b := MustParse("ans() :- S(y), R(x,y), x != y")
	if !a.Equal(b) {
		t.Error("Equal must ignore body order")
	}
	c := MustParse("ans() :- R(x,y), S(x), x != y")
	if a.Equal(c) {
		t.Error("different bodies must not be Equal")
	}
}

func TestUCQAccessors(t *testing.T) {
	u := MustParseUnion("ans(x) :- R(x,y), x != y\nans(x) :- S(x,'a')")
	if got := u.NumAtoms(); got != 2 {
		t.Errorf("NumAtoms = %d", got)
	}
	vars := u.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
	consts := u.Consts()
	if len(consts) != 1 || consts[0] != "a" {
		t.Errorf("Consts = %v", consts)
	}
	c := u.Clone()
	c.Adjuncts[0].Atoms[0].Args[0] = C("z")
	if u.Adjuncts[0].Atoms[0].Args[0] != V("x") {
		t.Error("UCQ.Clone must be deep")
	}
}

func TestDiseqNormalize(t *testing.T) {
	d := Diseq{Left: C("a"), Right: V("x")}.Normalize()
	if d.Left != V("x") || d.Right != C("a") {
		t.Errorf("Normalize = %v", d)
	}
	d = Diseq{Left: V("z"), Right: V("a")}.Normalize()
	if d.Left != V("a") || d.Right != V("z") {
		t.Errorf("Normalize = %v", d)
	}
}

func TestSingleUnion(t *testing.T) {
	q := MustParse("ans(x) :- R(x,x)")
	u := Single(q)
	if len(u.Adjuncts) != 1 || u.Adjuncts[0] != q {
		t.Errorf("Single = %v", u)
	}
}
