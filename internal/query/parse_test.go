package query

import (
	"strings"
	"testing"
)

func TestParseFig1Queries(t *testing.T) {
	q1 := MustParse("ans(x) :- R(x,y), R(y,x), x != y")
	if q1.Head.Rel != "ans" || len(q1.Head.Args) != 1 {
		t.Errorf("head = %v", q1.Head)
	}
	if len(q1.Atoms) != 2 || len(q1.Diseqs) != 1 {
		t.Errorf("body = %v / %v", q1.Atoms, q1.Diseqs)
	}
	q2 := MustParse("ans(x) :- R(x,x)")
	if len(q2.Atoms) != 1 || q2.HasDiseqs() {
		t.Errorf("q2 = %v", q2)
	}
}

func TestParsePaperAssignSyntax(t *testing.T) {
	// The paper writes ":=" for rules.
	q := MustParse("ans(x,y) := R(x,y), S(y,'c'), x != y, y != 'c'")
	if len(q.Atoms) != 2 || len(q.Diseqs) != 2 {
		t.Errorf("q = %v", q)
	}
	if got := q.Consts(); len(got) != 1 || got[0] != "c" {
		t.Errorf("Consts = %v", got)
	}
}

func TestParseConstants(t *testing.T) {
	q := MustParse(`ans(x) :- R(x,'a'), S(x,"b"), T(x,42)`)
	want := []Arg{C("a"), C("b"), C("42")}
	got := []Arg{q.Atoms[0].Args[1], q.Atoms[1].Args[1], q.Atoms[2].Args[1]}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("const %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestParseBooleanQuery(t *testing.T) {
	q := MustParse("ans() :- R(x,y), R(y,z), x != z")
	if !q.IsBoolean() {
		t.Error("query should be boolean")
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"ans(x) :- R(x,y), R(y,x), x != y",
		"ans(x) :- R(x,x)",
		"ans() :- R(x,y), R(y,z), x != z",
		"ans(x,'a') :- R(x,'a'), x != 'a'",
		"ans() :- R(x), S(x,y,z), x != y, x != z, y != z",
	}
	for _, in := range cases {
		q := MustParse(in)
		q2 := MustParse(q.String())
		if !q.Equal(q2) {
			t.Errorf("round trip %q: got %q", in, q2.String())
		}
	}
}

func TestParseUnionFig1(t *testing.T) {
	u := MustParseUnion(`
		# Qunion from Figure 1
		ans(x) :- R(x,y), R(y,x), x != y
		ans(x) :- R(x,x)
	`)
	if len(u.Adjuncts) != 2 {
		t.Fatalf("adjuncts = %d", len(u.Adjuncts))
	}
	if u.IsBoolean() {
		t.Error("Qunion is not boolean")
	}
}

func TestParseUnionSemicolons(t *testing.T) {
	u := MustParseUnion("ans(x) :- R(x,x); ans(x) :- S(x)")
	if len(u.Adjuncts) != 2 {
		t.Fatalf("adjuncts = %d", len(u.Adjuncts))
	}
}

func TestParseUnionHeadMismatch(t *testing.T) {
	if _, err := ParseUnion("ans(x) :- R(x,x)\nout(x) :- S(x)"); err == nil {
		t.Error("mismatched head relations should fail")
	}
	if _, err := ParseUnion("ans(x) :- R(x,x)\nans(x,y) :- S(x,y)"); err == nil {
		t.Error("mismatched head arities should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"ans(x)",                     // no body separator
		"ans(x) :- ",                 // empty body is a missing atom
		"ans(x) :- R(x",              // unterminated atom
		"ans(x) :- R(x,y) S(y)",      // missing comma
		"ans(x) :- R(x,'a",           // unterminated constant
		"ans(y) :- R(x,x)",           // unsafe head variable
		"ans(x) :- R(x,x), y != x",   // wait: y appears only in diseq -> invalid
		"ans(x) :- R(x,y), ans(y,x)", // head relation in body
		"ans(x) :- R(x), R(x,x)",     // arity mismatch
		"ans(x) :- 1R(x)",            // bad identifier
		"ans(x) :- R(x,y), x != ",    // dangling diseq
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseDiseqNormalization(t *testing.T) {
	a := MustParse("ans() :- R(x,y), y != x")
	b := MustParse("ans() :- R(x,y), x != y")
	if !a.Equal(b) {
		t.Errorf("normalized diseqs should agree: %v vs %v", a, b)
	}
	c := MustParse("ans() :- R(x), 'a' != x")
	if c.Diseqs[0].Left != V("x") || c.Diseqs[0].Right != C("a") {
		t.Errorf("const-left diseq should normalize: %v", c.Diseqs[0])
	}
}

func TestParseDiseqDedup(t *testing.T) {
	q := MustParse("ans() :- R(x,y), x != y, y != x, x != y")
	if len(q.Diseqs) != 1 {
		t.Errorf("diseqs = %v", q.Diseqs)
	}
}

func TestParseUnionComments(t *testing.T) {
	u := MustParseUnion("-- comment\nans(x) :- R(x,x)\n# another\n")
	if len(u.Adjuncts) != 1 {
		t.Errorf("adjuncts = %d", len(u.Adjuncts))
	}
}

func TestStringRendering(t *testing.T) {
	q := MustParse("ans(x,'a') :- R(x,'a'), x != 'a'")
	s := q.String()
	if !strings.Contains(s, "ans(x,'a')") || !strings.Contains(s, "x != 'a'") {
		t.Errorf("String = %q", s)
	}
}
