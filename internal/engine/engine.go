// Package engine is the concurrent provenance-evaluation engine behind the
// provmind service. It wraps the library's eval/minimize/direct layers with:
//
//   - a registry of named annotated instances, each guarded by a
//     read-write lock so queries run in parallel with each other and
//     serialize only against ingest;
//   - a fixed-size worker pool bounding concurrent evaluations;
//   - a per-instance ingest batcher that coalesces concurrent tuple
//     writes into single write-lock acquisitions;
//   - an LRU cache from canonical query forms to their p-minimal
//     equivalents (MinProv output), so repeated core-provenance requests
//     skip Algorithm 1 — the worst-case-exponential step — entirely.
//
// The engine is safe for concurrent use by multiple goroutines.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"provmin/internal/apps/deletion"
	"provmin/internal/apps/prob"
	"provmin/internal/apps/trust"
	"provmin/internal/db"
	"provmin/internal/direct"
	"provmin/internal/eval"
	"provmin/internal/metrics"
	"provmin/internal/minimize"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

// Config tunes a new Engine. Zero values select sensible defaults.
type Config struct {
	// Workers is the evaluation worker-pool size (default GOMAXPROCS).
	Workers int
	// CacheSize is the LRU capacity of the minimized-query cache
	// (default 1024 entries).
	CacheSize int
	// IngestBatchSize flushes an ingest batch when this many facts are
	// pending (default 256).
	IngestBatchSize int
	// IngestMaxWait flushes a non-empty ingest batch after this delay
	// (default 2ms).
	IngestMaxWait time.Duration
	// Metrics receives engine counters and histograms; a private registry
	// is created when nil.
	Metrics *metrics.Registry
}

// ErrClosed is returned for operations on a closed engine — a service
// availability condition, distinct from client errors.
var ErrClosed = errors.New("engine closed")

// Engine is a long-lived, concurrency-safe provenance service core.
type Engine struct {
	cfg   Config
	reg   *metrics.Registry
	pool  *pool
	cache *minCache

	mu        sync.RWMutex
	instances map[string]*instance
	nextID    uint64
	closed    bool

	// sfMu/inflight give Minimize singleflight semantics: concurrent
	// cache misses for one canonical key run MinProv once and share it.
	sfMu     sync.Mutex
	inflight map[string]*minFlight
}

// minFlight is one in-progress MinProv computation; min is valid (or nil,
// if the computation panicked) once done is closed.
type minFlight struct {
	done chan struct{}
	min  *query.UCQ
}

// instance is one annotated database plus its concurrency machinery. The
// batcher is created eagerly so Close/Drop never race a lazy initializer.
type instance struct {
	id string

	mu      sync.RWMutex // guards db and version
	db      *db.Instance
	version uint64 // bumped on every applied ingest batch

	batcher *ingestBatcher
}

// New creates an engine and starts its worker pool.
func New(cfg Config) *Engine {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Engine{
		cfg:       cfg,
		reg:       reg,
		pool:      newPool(cfg.Workers),
		cache:     newMinCache(cfg.CacheSize),
		instances: map[string]*instance{},
		inflight:  map[string]*minFlight{},
	}
}

// Metrics returns the registry the engine records into.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Close stops the worker pool and all ingest batchers. In-flight work
// completes; subsequent calls fail.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	insts := make([]*instance, 0, len(e.instances))
	for _, in := range e.instances {
		insts = append(insts, in)
	}
	e.mu.Unlock()

	for _, in := range insts {
		in.batcher.close()
	}
	e.pool.close()
}

// InstanceInfo describes one instance for listings.
type InstanceInfo struct {
	ID        string `json:"id"`
	Relations int    `json:"relations"`
	Tuples    int    `json:"tuples"`
	Version   uint64 `json:"version"`
}

// CreateInstance registers a new annotated instance, optionally seeded from
// facts in the db text format ("<relation> <tag> <value>..." per line).
func (e *Engine) CreateInstance(initial string) (InstanceInfo, error) {
	d := db.NewInstance()
	if initial != "" {
		parsed, err := db.ParseInstance(initial)
		if err != nil {
			return InstanceInfo{}, fmt.Errorf("parse initial facts: %w", err)
		}
		d = parsed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return InstanceInfo{}, ErrClosed
	}
	e.nextID++
	in := &instance{id: fmt.Sprintf("i%d", e.nextID), db: d}
	in.batcher = newIngestBatcher(in, e.cfg.IngestBatchSize, e.cfg.IngestMaxWait)
	e.instances[in.id] = in
	e.reg.Gauge("engine_instances").Set(int64(len(e.instances)))
	return InstanceInfo{ID: in.id, Relations: len(d.Relations()), Tuples: d.NumTuples()}, nil
}

// DropInstance removes an instance and stops its batcher.
func (e *Engine) DropInstance(id string) bool {
	e.mu.Lock()
	in, ok := e.instances[id]
	if ok {
		delete(e.instances, id)
	}
	e.reg.Gauge("engine_instances").Set(int64(len(e.instances)))
	e.mu.Unlock()
	if ok {
		in.batcher.close()
	}
	return ok
}

// Instances lists every instance, sorted by id.
func (e *Engine) Instances() []InstanceInfo {
	e.mu.RLock()
	insts := make([]*instance, 0, len(e.instances))
	for _, in := range e.instances {
		insts = append(insts, in)
	}
	e.mu.RUnlock()
	out := make([]InstanceInfo, 0, len(insts))
	for _, in := range insts {
		out = append(out, e.describe(in))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Instance returns info for one instance.
func (e *Engine) Instance(id string) (InstanceInfo, bool) {
	in, err := e.lookup(id)
	if err != nil {
		return InstanceInfo{}, false
	}
	return e.describe(in), true
}

func (e *Engine) describe(in *instance) InstanceInfo {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return InstanceInfo{
		ID:        in.id,
		Relations: len(in.db.Relations()),
		Tuples:    in.db.NumTuples(),
		Version:   in.version,
	}
}

func (e *Engine) lookup(id string) (*instance, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	in, ok := e.instances[id]
	if !ok {
		return nil, fmt.Errorf("no such instance %q", id)
	}
	return in, nil
}

// Ingest applies a group of facts to an instance through its batcher; it
// blocks until the facts are visible to queries. Facts of one call are
// applied atomically with respect to concurrent queries.
func (e *Engine) Ingest(id string, facts []Fact) error {
	in, err := e.lookup(id)
	if err != nil {
		return err
	}
	if len(facts) == 0 {
		return nil
	}
	if err := in.batcher.add(facts); err != nil {
		return err
	}
	e.reg.Counter("engine_ingest_facts_total").Add(int64(len(facts)))
	return nil
}

// ParseUnion parses query text into a UCQ≠ (one rule, or several separated
// by ';' / newlines).
func ParseUnion(text string) (*query.UCQ, error) { return query.ParseUnion(text) }

// run executes fn on the worker pool, recording queue wait.
func (e *Engine) run(ctx context.Context, fn func() (any, error)) (any, error) {
	submitted := time.Now()
	return e.pool.do(ctx, func() (any, error) {
		e.reg.Histogram("engine_queue_wait_seconds").Observe(time.Since(submitted))
		return fn()
	})
}

// Query evaluates a union over an instance with full N[X] provenance
// annotations. It holds the instance read lock for the duration of the
// evaluation, so results are a consistent snapshot.
func (e *Engine) Query(ctx context.Context, id string, u *query.UCQ) (*eval.Result, uint64, error) {
	in, err := e.lookup(id)
	if err != nil {
		return nil, 0, err
	}
	e.reg.Counter("engine_queries_total").Inc()
	v, err := e.run(ctx, func() (any, error) {
		in.mu.RLock()
		defer in.mu.RUnlock()
		// Time only the evaluation itself, like Core does: queue wait is
		// already engine_queue_wait_seconds, so the shared eval histogram
		// keeps one consistent meaning.
		start := time.Now()
		res, err := eval.EvalUCQ(u, in.db)
		if err != nil {
			return nil, err
		}
		e.reg.Histogram("engine_eval_seconds").Observe(time.Since(start))
		return &evalOut{res: res, version: in.version}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	out := v.(*evalOut)
	return out.res, out.version, nil
}

type evalOut struct {
	res     *eval.Result
	version uint64
}

// Minimize returns the p-minimal form of u, consulting the LRU cache first.
// The boolean reports whether MinProv was skipped (an LRU hit, or another
// caller's in-flight computation was joined). Cached values are shared and
// must not be mutated by callers.
func (e *Engine) Minimize(u *query.UCQ) (*query.UCQ, bool) {
	key := CanonicalKey(u)
	for {
		if min, ok := e.cache.get(key); ok {
			e.reg.Counter("engine_cache_hits_total").Inc()
			return min, true
		}
		e.sfMu.Lock()
		if fl, ok := e.inflight[key]; ok {
			// Another worker is already running MinProv — the
			// worst-case-exponential step — for this key; join it
			// rather than duplicating the work.
			e.sfMu.Unlock()
			<-fl.done
			if fl.min != nil {
				e.reg.Counter("engine_cache_hits_total").Inc()
				return fl.min, true
			}
			continue // leader panicked; retry (likely becoming leader)
		}
		fl := &minFlight{done: make(chan struct{})}
		e.inflight[key] = fl
		e.sfMu.Unlock()

		e.reg.Counter("engine_cache_misses_total").Inc()
		defer func() {
			e.sfMu.Lock()
			delete(e.inflight, key)
			e.sfMu.Unlock()
			close(fl.done)
		}()
		start := time.Now()
		min := minimize.MinProv(u)
		e.reg.Histogram("engine_minprov_seconds").Observe(time.Since(start))
		e.cache.put(key, min)
		fl.min = min
		return min, false
	}
}

// CacheLen returns the number of cached minimized queries.
func (e *Engine) CacheLen() int { return e.cache.len() }

// CoreOut is the result of a core-provenance request.
type CoreOut struct {
	Result    *eval.Result // tuples annotated with core provenance
	Minimized *query.UCQ   // the p-minimal query that realized it
	CacheHit  bool         // whether MinProv was skipped
	Version   uint64       // instance version the result reflects
}

// Core computes the core provenance of every answer tuple of u on the
// instance by evaluating the cached (or freshly computed) p-minimal form,
// which realizes the core provenance on abstractly-tagged databases
// (Theorem 4.6). Repeated calls with the same query hit the minimization
// cache and skip Algorithm 1.
func (e *Engine) Core(ctx context.Context, id string, u *query.UCQ) (*CoreOut, error) {
	in, err := e.lookup(id)
	if err != nil {
		return nil, err
	}
	e.reg.Counter("engine_core_total").Inc()
	v, err := e.run(ctx, func() (any, error) {
		min, hit := e.Minimize(u)
		start := time.Now()
		in.mu.RLock()
		defer in.mu.RUnlock()
		res, err := eval.EvalUCQ(min, in.db)
		if err != nil {
			return nil, err
		}
		e.reg.Histogram("engine_eval_seconds").Observe(time.Since(start))
		return &CoreOut{Result: res, Minimized: min, CacheHit: hit, Version: in.version}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*CoreOut), nil
}

// CoreDirect computes core provenance without the minimized query: it
// evaluates u as-is and post-processes every polynomial with the direct
// Theorem 5.1 construction. It is the cross-check path for Core and the
// fallback when callers want cores on a database that is not abstractly
// tagged up to the paper's assumptions.
func (e *Engine) CoreDirect(ctx context.Context, id string, u *query.UCQ) (*eval.Result, error) {
	in, err := e.lookup(id)
	if err != nil {
		return nil, err
	}
	v, err := e.run(ctx, func() (any, error) {
		in.mu.RLock()
		defer in.mu.RUnlock()
		res, err := eval.EvalUCQ(u, in.db)
		if err != nil {
			return nil, err
		}
		return direct.CoreResult(res, in.db, u.Consts())
	})
	if err != nil {
		return nil, err
	}
	return v.(*eval.Result), nil
}

// TupleProvenance returns P(t, u, D) for one tuple (the zero polynomial if
// the tuple is not an answer).
func (e *Engine) TupleProvenance(ctx context.Context, id string, u *query.UCQ, t db.Tuple) (semiring.Polynomial, error) {
	in, err := e.lookup(id)
	if err != nil {
		return semiring.Zero, err
	}
	v, err := e.run(ctx, func() (any, error) {
		in.mu.RLock()
		defer in.mu.RUnlock()
		return eval.Provenance(u, in.db, t)
	})
	if err != nil {
		return semiring.Zero, err
	}
	return v.(semiring.Polynomial), nil
}

// ProbOpts configures Probability.
type ProbOpts struct {
	// Probs maps tags to probabilities; Default is used for absent tags.
	Probs   map[string]float64
	Default float64
	// UseCore first reduces the polynomial to its core (up to
	// coefficients), shrinking the inclusion–exclusion input without
	// changing the answer.
	UseCore bool
	// MCSamples switches to Monte Carlo estimation when positive.
	MCSamples int
	Seed      int64
}

func (o ProbOpts) tagProb(tag string) float64 {
	if p, ok := o.Probs[tag]; ok {
		return p
	}
	return o.Default
}

// Probability computes the derivation probability of tuple t under a
// tuple-independent probabilistic database (apps/prob on top of the
// provenance polynomial).
func (e *Engine) Probability(ctx context.Context, id string, u *query.UCQ, t db.Tuple, opts ProbOpts) (float64, error) {
	p, err := e.TupleProvenance(ctx, id, u, t)
	if err != nil {
		return 0, err
	}
	v, err := e.run(ctx, func() (any, error) {
		if opts.UseCore {
			p = direct.CoreUpToCoefficients(p)
		}
		if opts.MCSamples > 0 {
			return prob.MonteCarlo(p, opts.tagProb, opts.MCSamples, opts.Seed), nil
		}
		return prob.Exact(p, opts.tagProb)
	})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

// TrustOpts configures Trust: per-tag values plus a default.
type TrustOpts struct {
	Values  map[string]float64
	Default float64
	// Confidence selects Viterbi (most-confident derivation) instead of
	// tropical cheapest-cost.
	Confidence bool
	// UseCore reduces to the core polynomial first.
	UseCore bool
}

func (o TrustOpts) tagValue(tag string) float64 {
	if v, ok := o.Values[tag]; ok {
		return v
	}
	return o.Default
}

// Trust evaluates the trust of tuple t: cheapest-derivation cost in the
// tropical semiring, or most-confident derivation when opts.Confidence.
func (e *Engine) Trust(ctx context.Context, id string, u *query.UCQ, t db.Tuple, opts TrustOpts) (float64, error) {
	p, err := e.TupleProvenance(ctx, id, u, t)
	if err != nil {
		return 0, err
	}
	v, err := e.run(ctx, func() (any, error) {
		if opts.UseCore {
			p = direct.CoreUpToCoefficients(p)
		}
		if opts.Confidence {
			return trust.Confidence(p, opts.tagValue), nil
		}
		return trust.Cost(p, opts.tagValue), nil
	})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

// DeletionOut reports deletion propagation over a whole result.
type DeletionOut struct {
	Survivors []db.Tuple
	Lost      []db.Tuple
}

// Deletion evaluates u, then partitions the answer tuples into those that
// survive deleting the tagged input tuples and those that are lost —
// deletion propagation from provenance alone, no re-evaluation.
func (e *Engine) Deletion(ctx context.Context, id string, u *query.UCQ, deletedTags []string) (*DeletionOut, error) {
	in, err := e.lookup(id)
	if err != nil {
		return nil, err
	}
	deleted := make(map[string]bool, len(deletedTags))
	for _, tg := range deletedTags {
		deleted[tg] = true
	}
	v, err := e.run(ctx, func() (any, error) {
		in.mu.RLock()
		defer in.mu.RUnlock()
		res, err := eval.EvalUCQ(u, in.db)
		if err != nil {
			return nil, err
		}
		surv, lost := deletion.Propagate(res, deleted)
		return &DeletionOut{Survivors: surv, Lost: lost}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*DeletionOut), nil
}
