// Package engine is the concurrent provenance-evaluation engine behind the
// provmind service. It wraps the library's eval/minimize/direct layers with:
//
//   - a sharded registry of named annotated instances — N lock-striped
//     shards keyed by FNV hash of the instance id, so registry operations
//     on different instances contend only within a stripe — each instance
//     guarded by a read-write lock so queries run in parallel with each
//     other and serialize only against ingest;
//   - a fixed-size worker pool bounding concurrent evaluations;
//   - a per-instance ingest batcher that coalesces concurrent tuple
//     writes into single write-lock acquisitions (and, when durability is
//     on, single WAL records sharing group-commit fsyncs);
//   - an LRU cache from canonical query forms to their p-minimal
//     equivalents (MinProv output), so repeated core-provenance requests
//     skip Algorithm 1 — the worst-case-exponential step — entirely;
//   - an optional internal/persist write-ahead log: every acknowledged
//     create/ingest/drop is logged before it mutates memory, and a
//     restart replays snapshot + WAL back into an identical registry.
//
// The engine is safe for concurrent use by multiple goroutines.
//
// # Lock order
//
// The engine's locks form a strict hierarchy; a goroutine only acquires
// a lock whose level is greater than every lock it already holds:
//
//	closeMu (1) -> registry shard mu (2) -> instance mu (3) -> batcher addMu (4)
//
// closeMu is the close fence (every state transition holds its read
// side, Close the write side); the shard mutex guards one registry
// stripe's instance maps; the instance lock serializes ingest against
// queries on one instance; addMu is the batcher's shutdown fence. The
// order is machine-checked: each field carries a //provlint:lockorder
// directive and the provlint lockdiscipline analyzer (see
// internal/analysis/lockdiscipline) rejects out-of-order acquisition at
// build time in CI.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"provmin/internal/apps/deletion"
	"provmin/internal/apps/prob"
	"provmin/internal/apps/trust"
	"provmin/internal/db"
	"provmin/internal/direct"
	"provmin/internal/eval"
	"provmin/internal/metrics"
	"provmin/internal/minimize"
	"provmin/internal/persist"
	"provmin/internal/query"
	"provmin/internal/semiring"
	"provmin/internal/tier"
)

// Config tunes a new Engine. Zero values select sensible defaults.
type Config struct {
	// Workers is the evaluation worker-pool size (default GOMAXPROCS).
	Workers int
	// Eval configures the evaluator for every query, core computation and
	// delta maintenance run: join strategy, interning and statistics
	// ablation switches, and intra-join parallelism. The zero value is the
	// full stack (interned keys, cost-based planning, parallel probes).
	Eval eval.Options
	// CacheSize is the LRU capacity of the minimized-query cache
	// (default 1024 entries).
	CacheSize int
	// ResultCacheSize caps each instance's result cache in entries
	// (default 128; negative disables result caching).
	ResultCacheSize int
	// ResultCacheBytes bounds each instance's cached results in
	// approximate resident bytes (default 32 MiB; negative removes the
	// byte bound, leaving only the entry cap).
	ResultCacheBytes int64
	// DisableResultMaintenance turns off incremental result maintenance:
	// every ingest falls back to invalidating the instance's cached
	// results instead of promoting eligible entries with delta
	// evaluation. The ablation switch for -result-cache-maintain=false.
	DisableResultMaintenance bool
	// IngestBatchSize flushes an ingest batch when this many facts are
	// pending (default 256).
	IngestBatchSize int
	// IngestMaxWait flushes a non-empty ingest batch after this delay
	// (default 2ms).
	IngestMaxWait time.Duration
	// Shards is the registry stripe count (default 8). When Persist is
	// set its stripe count wins, so one WAL stripe covers exactly one
	// registry stripe.
	Shards int
	// Persist enables durability: the engine adopts the log's recovered
	// instances at construction, write-ahead-logs every mutation, and
	// closes the log when the engine closes.
	Persist *persist.Log
	// Metrics receives engine counters and histograms; a private registry
	// is created when nil.
	Metrics *metrics.Registry
	// Backend enables tiered instance storage (see residency.go): idle
	// instances are snapshotted into per-instance blobs, evicted from RAM
	// and faulted back in transparently on next touch. When the engine is
	// durable the same backend must be passed as persist.Options.Cold so
	// WAL replay can read the blobs.
	Backend tier.SnapshotBackend
	// ResidentBudgetBytes bounds the approximate bytes of resident
	// instances; the janitor evicts LRU instances above it (0 = unbounded).
	// Ignored without Backend.
	ResidentBudgetBytes int64
	// ColdAfter evicts instances idle for at least this long regardless of
	// the byte budget (0 = never). Ignored without Backend.
	ColdAfter time.Duration
	// JanitorInterval is the residency-enforcement period (default 500ms;
	// negative disables the goroutine — tests call EnforceResidency
	// directly). Ignored without Backend.
	JanitorInterval time.Duration
	// AdoptOnMiss, when set alongside Backend, is consulted by lookup when
	// an instance id is neither resident nor cold. Returning AdoptOwned
	// adopts the id's blob from the (shared) backend as a locally-owned cold
	// instance — healing the crash window of a cluster rebalance handoff;
	// AdoptBorrowed loads a read-only borrowed copy — the replica read path
	// when this node is not the id's ring owner. AdoptNone keeps the miss.
	// Ignored without Backend.
	AdoptOnMiss func(id string) AdoptMode
}

// AdoptMode is an AdoptOnMiss verdict for an unknown instance id.
type AdoptMode int

const (
	// AdoptNone leaves the miss as ErrUnknownInstance.
	AdoptNone AdoptMode = iota
	// AdoptOwned adopts the id's cold blob as a locally-owned instance.
	AdoptOwned
	// AdoptBorrowed loads the id's cold blob as a read-only borrowed copy.
	AdoptBorrowed
)

// ErrClosed is returned for operations on a closed engine — a service
// availability condition, distinct from client errors.
var ErrClosed = errors.New("engine closed")

// ErrNoPersistence is returned by Snapshot/Compact when the engine runs
// without a data directory.
var ErrNoPersistence = errors.New("engine: durability disabled (no data directory)")

// ErrInvalidSeed wraps seed-parse failures in CreateInstance so callers
// can tell a malformed request (client fault) from a storage failure.
var ErrInvalidSeed = errors.New("invalid seed facts")

// ErrUnknownInstance is wrapped by every operation that names an instance
// the registry does not hold — a client addressing error (HTTP 404), never
// a service fault. Match with errors.Is.
var ErrUnknownInstance = errors.New("no such instance")

// ErrBorrowed rejects writes against a borrowed replica copy: its state
// belongs to another node, and mutating it here would fork the instance.
var ErrBorrowed = errors.New("engine: instance is a borrowed read-only copy")

// ErrInstanceExists is wrapped by CreateInstanceWithID when the requested
// id is already registered (resident or cold) — an HTTP 409 for clients.
var ErrInstanceExists = errors.New("engine: instance already exists")

// ErrBadInstanceID is wrapped by CreateInstanceWithID for ids that are not
// storage-key-safe — a client input error (HTTP 400).
var ErrBadInstanceID = errors.New("engine: invalid instance id")

// Engine is a long-lived, concurrency-safe provenance service core.
type Engine struct {
	cfg      Config
	reg      *metrics.Registry
	pool     *pool
	cache    *minCache
	resStats *resultCacheStats // shared by every instance's result cache
	log      *persist.Log      // nil when running ephemeral

	shards []*regShard
	nextID atomic.Uint64
	closed atomic.Bool

	// closeMu is the shutdown barrier: every mutation that may write the
	// WAL or the cold backend outside an ingest batcher (create, drop,
	// evict, fault-in, release, adopt, borrow) holds the read side across
	// its whole body, and Close takes the write side — after setting closed
	// and stopping the janitor, before closing batchers and the log. A
	// transition therefore either observes closed before doing anything, or
	// finishes its WAL commit before the log's final sync: no evict or
	// release record can land after the store closes.
	closeMu sync.RWMutex //provlint:lockorder 1

	// sfMu/inflight give Minimize singleflight semantics: concurrent
	// cache misses for one canonical key run MinProv once and share it.
	sfMu     sync.Mutex
	inflight map[string]*minFlight

	// Tiered-storage state (residency.go). backend/tracker are nil/unused
	// when tiering is off; residentBytes and per-instance byte accounting
	// are maintained either way for /admin/cache and /metrics.
	backend       tier.SnapshotBackend
	tracker       *tier.Tracker
	residentBytes atomic.Int64
	resMu         sync.Mutex
	resFlights    map[string]*resFlight
	janitorStop   chan struct{}
	janitorDone   chan struct{}
}

// regShard is one registry stripe. Lock ordering: a shard's WAL mutex (in
// persist, held across Commit and Snapshot) comes before regShard.mu,
// which comes before instance.mu. count mirrors len(instances) so the
// occupancy gauges refresh without touching any other stripe's lock.
type regShard struct {
	mu        sync.RWMutex //provlint:lockorder 2
	instances map[string]*instance
	count     atomic.Int64
	// cold holds stub entries for this stripe's evicted instances: the
	// last-known InstanceInfo (zero-valued for boot-discovered blobs) with
	// State "cold". Guarded by mu; coldCount mirrors len(cold).
	cold      map[string]InstanceInfo
	coldCount atomic.Int64
}

// shardOf maps an instance id to its registry stripe with the same FNV
// hash persist uses for WAL stripes.
func (e *Engine) shardOf(id string) *regShard {
	return e.shards[persist.ShardFor(id, len(e.shards))]
}

// minFlight is one in-progress MinProv computation; min is valid (or nil,
// if the computation panicked) once done is closed.
type minFlight struct {
	done chan struct{}
	min  *query.UCQ
}

// instance is one annotated database plus its concurrency machinery. The
// batcher is created eagerly so Close/Drop never race a lazy initializer.
type instance struct {
	id string
	// borrowed marks a read-only replica copy loaded from another node's
	// cold blob (see handoff.go). Immutable after construction: ingest is
	// rejected, snapshots skip it, and evict/drop discard it without
	// touching the WAL or the shared blob.
	borrowed bool

	//provlint:lockorder 3
	mu      sync.RWMutex // guards db, version, lastSeq, bytes and batcher
	db      *db.Instance
	version uint64 // generation counter: bumped on every applied ingest batch
	lastSeq uint64 // last WAL sequence applied (0 when ephemeral)
	bytes   int64  // approximate resident size (instanceCost + factDelta)

	batcher *ingestBatcher
	results *resultCache // generation-stamped evaluated results
}

// currentBatcher reads the batcher under the instance lock: an aborted
// eviction replaces a closed batcher with a fresh one (reviveBatcher), so
// the field is no longer immutable after construction.
func (in *instance) currentBatcher() *ingestBatcher {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.batcher
}

// New creates an engine and starts its worker pool. With cfg.Persist set,
// the engine adopts every instance the log recovered from disk — the
// restart path of the paper's offline workflow (§1, §5): stored provenance
// outlives the process that computed it.
func New(cfg Config) *Engine {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	if cfg.ResultCacheSize == 0 {
		cfg.ResultCacheSize = 128
	}
	if cfg.ResultCacheBytes == 0 {
		cfg.ResultCacheBytes = 32 << 20
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	nShards := cfg.Shards
	if cfg.Persist != nil {
		nShards = cfg.Persist.Shards()
	}
	if nShards <= 0 {
		nShards = 8
	}
	e := &Engine{
		cfg:        cfg,
		reg:        reg,
		pool:       newPool(cfg.Workers),
		cache:      newMinCache(cfg.CacheSize),
		resStats:   newResultCacheStats(reg),
		log:        cfg.Persist,
		shards:     make([]*regShard, nShards),
		inflight:   map[string]*minFlight{},
		backend:    cfg.Backend,
		tracker:    tier.NewTracker(),
		resFlights: map[string]*resFlight{},
	}
	for i := range e.shards {
		e.shards[i] = &regShard{instances: map[string]*instance{}, cold: map[string]InstanceInfo{}}
	}
	if e.log != nil {
		now := time.Now()
		for _, rec := range e.log.TakeRecovered() {
			in := &instance{id: rec.ID, db: rec.DB, version: rec.Version, lastSeq: rec.LastSeq, bytes: instanceCost(rec.DB)}
			in.results = e.newResultCache()
			in.batcher = newIngestBatcher(e, in, cfg.IngestBatchSize, cfg.IngestMaxWait)
			sh := e.shardOf(rec.ID)
			sh.instances[rec.ID] = in
			sh.count.Add(1)
			e.residentBytes.Add(in.bytes)
			if e.backend != nil {
				e.tracker.Add(rec.ID, in.bytes, now)
			}
		}
		e.nextID.Store(e.log.NextID())
	}
	e.updateShardGauges()
	if e.backend != nil && cfg.JanitorInterval >= 0 {
		interval := cfg.JanitorInterval
		if interval == 0 {
			interval = 500 * time.Millisecond
		}
		e.janitorStop = make(chan struct{})
		e.janitorDone = make(chan struct{})
		go e.janitor(interval)
	}
	return e
}

// Metrics returns the registry the engine records into.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Durable reports whether the engine write-ahead-logs its mutations.
func (e *Engine) Durable() bool { return e.log != nil }

// Close stops the worker pool, all ingest batchers and (when durable) the
// write-ahead log. In-flight work completes; subsequent calls fail.
func (e *Engine) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	// Quiesce the janitor first: after this, no new janitor evictions start.
	if e.janitorStop != nil {
		close(e.janitorStop)
		<-e.janitorDone
	}
	// Shutdown barrier: wait out every in-flight registry/residency
	// transition (a new one observes closed under its read hold and backs
	// off). After this, nothing commits WAL records outside the batchers —
	// so an eviction racing shutdown can never leave an acknowledged evict
	// record unflushed behind the log's final sync.
	e.closeMu.Lock()
	e.closeMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	var insts []*instance
	for _, sh := range e.shards {
		sh.mu.Lock()
		for _, in := range sh.instances {
			insts = append(insts, in)
		}
		sh.mu.Unlock()
	}
	for _, in := range insts {
		in.currentBatcher().close()
		// Symmetric with DropInstance: an embedder reusing the metrics
		// registry across engines must not inherit stale cache occupancy.
		in.results.purge()
	}
	e.pool.close()
	if e.log != nil {
		_ = e.log.Close()
	}
}

// InstanceInfo describes one instance for listings. State is "cold" for
// evicted instances (whose counts are the last known before eviction, or
// zero for blobs discovered at boot), "borrowed" for read-only replica
// copies, and empty for resident owned ones, so untiered listings render
// exactly as before.
type InstanceInfo struct {
	ID        string `json:"id"`
	Relations int    `json:"relations"`
	Tuples    int    `json:"tuples"`
	Version   uint64 `json:"version"`
	State     string `json:"state,omitempty"`
	Borrowed  bool   `json:"borrowed,omitempty"`
}

// CreateInstance registers a new annotated instance under a generated id,
// optionally seeded from facts in the db text format
// ("<relation> <tag> <value>..." per line). When durable, the create (with
// its seed text) is write-ahead-logged before the instance becomes visible.
func (e *Engine) CreateInstance(initial string) (InstanceInfo, error) {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	return e.createInstance(fmt.Sprintf("i%d", e.nextID.Add(1)), initial)
}

// CreateInstanceWithID registers a new instance under a caller-chosen id —
// the cluster router picks ids so the ring, not the owning node's counter,
// determines placement. The id must be storage-key-safe; a duplicate is
// ErrInstanceExists. Serialized against residency transitions for the same
// id so a create cannot interleave with an adopt or release of it.
func (e *Engine) CreateInstanceWithID(id, initial string) (InstanceInfo, error) {
	if _, err := tier.BlobName(id); err != nil {
		return InstanceInfo{}, fmt.Errorf("%w: %v", ErrBadInstanceID, err)
	}
	// Lock order: the shutdown barrier strictly before the flight mutex
	// (matching evict/fault-in/adopt), else a queued Close writer wedges a
	// create holding the flight lock against an evict holding the barrier.
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	release := e.lockResidency(id)
	defer release()
	sh := e.shardOf(id)
	sh.mu.RLock()
	_, resident := sh.instances[id]
	_, cold := sh.cold[id]
	sh.mu.RUnlock()
	if resident || cold {
		return InstanceInfo{}, fmt.Errorf("%w: %q", ErrInstanceExists, id)
	}
	// Keep generated ids from ever colliding with an explicit "i<n>".
	if n := numericInstanceID(id); n > 0 {
		for {
			cur := e.nextID.Load()
			if n <= cur || e.nextID.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	return e.createInstance(id, initial)
}

// createInstance is the shared create path behind both id schemes. The
// caller holds closeMu.RLock.
func (e *Engine) createInstance(id, initial string) (InstanceInfo, error) {
	d := db.NewInstance()
	if initial != "" {
		parsed, err := db.ParseInstance(initial)
		if err != nil {
			return InstanceInfo{}, fmt.Errorf("%w: %v", ErrInvalidSeed, err)
		}
		d = parsed
	}
	if e.closed.Load() {
		return InstanceInfo{}, ErrClosed
	}
	in := &instance{id: id, db: d, bytes: instanceCost(d)}
	in.results = e.newResultCache()
	in.batcher = newIngestBatcher(e, in, e.cfg.IngestBatchSize, e.cfg.IngestMaxWait)
	inserted := false
	exists := false
	insert := func(uint64) {
		sh := e.shardOf(in.id)
		sh.mu.Lock()
		// Last-line duplicate guard: explicit-id creates pre-check under the
		// flight lock, so this only fires on pathological races — better a
		// 409 than silently replacing a live instance.
		if _, dup := sh.instances[in.id]; dup {
			exists = true
		} else if _, dup := sh.cold[in.id]; dup {
			exists = true
		} else if !e.closed.Load() {
			// Re-check closed under the shard lock so a concurrent Close
			// cannot miss this instance's batcher. (A durable create that
			// loses this race has already been logged: replay will recreate
			// it as an unowned instance on the next boot — recovery may
			// contain more than was acknowledged, never less.)
			sh.instances[in.id] = in
			sh.count.Add(1)
			inserted = true
		}
		sh.mu.Unlock()
		if inserted {
			e.residentBytes.Add(in.bytes)
			if e.backend != nil {
				e.tracker.Add(in.id, in.bytes, time.Now())
			}
		}
	}
	if e.log != nil {
		_, err := e.log.Commit(persist.Record{Op: persist.OpCreate, ID: in.id, Initial: initial}, insert)
		if err != nil && !inserted {
			// The append failed before anything mutated: a clean failure.
			in.batcher.close()
			return InstanceInfo{}, fmt.Errorf("create %s: %w", in.id, err)
		}
		if err != nil {
			// The record was appended and applied but the fsync failed:
			// the create is live in memory and may well be durable. Keep
			// the instance (its batcher stays usable) and return its real
			// info alongside the storage error, so the caller has a handle
			// to the live instance instead of only an error string.
			e.updateShardGauges()
			return InstanceInfo{ID: in.id, Relations: len(d.Relations()), Tuples: d.NumTuples()},
				fmt.Errorf("create %s: applied but not confirmed durable: %w", in.id, err)
		}
	} else {
		insert(0)
	}
	if !inserted {
		in.batcher.close()
		if exists {
			return InstanceInfo{}, fmt.Errorf("%w: %q", ErrInstanceExists, in.id)
		}
		return InstanceInfo{}, ErrClosed
	}
	e.updateShardGauges()
	return InstanceInfo{ID: in.id, Relations: len(d.Relations()), Tuples: d.NumTuples()}, nil
}

// DropInstance removes an instance and stops its batcher. The boolean is
// false when no such instance exists. When durable, the drop is
// write-ahead-logged before the instance disappears; a log-append failure
// leaves the instance fully in place and is reported as an error, distinct
// from not-found. A drop that was applied but whose fsync failed still
// returns an error — the instance is gone from memory but the drop may
// not be durable.
func (e *Engine) DropInstance(id string) (bool, error) {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.backend != nil {
		// Serialize against evict/fault-in so the instance cannot change
		// residency state under the drop.
		release := e.lockResidency(id)
		defer release()
	}
	sh := e.shardOf(id)
	sh.mu.RLock()
	in, ok := sh.instances[id]
	_, cold := sh.cold[id]
	sh.mu.RUnlock()
	if !ok {
		if cold {
			return e.dropCold(id)
		}
		return false, nil
	}
	if in.borrowed {
		// A borrowed copy is not ours to drop durably: discard the RAM copy
		// without a WAL record, and never GC the blob — it belongs to the
		// owning node.
		return e.discardBorrowed(in), nil
	}
	removed := false
	var bytes int64
	remove := func(uint64) {
		sh.mu.Lock()
		if cur, ok := sh.instances[id]; ok && cur == in {
			delete(sh.instances, id)
			sh.count.Add(-1)
			removed = true
		}
		sh.mu.Unlock()
	}
	finish := func() {
		in.mu.RLock()
		bytes = in.bytes
		in.mu.RUnlock()
		e.residentBytes.Add(-bytes)
		e.tracker.Remove(id)
		in.currentBatcher().close()
		in.results.purge()
		e.gcBlob(id)
	}
	if e.log != nil {
		if _, err := e.log.Commit(persist.Record{Op: persist.OpDrop, ID: id}, remove); err != nil {
			if !removed {
				return false, fmt.Errorf("drop %s: %w", id, err)
			}
			e.updateShardGauges()
			finish()
			return true, fmt.Errorf("drop %s: applied but not confirmed durable: %w", id, err)
		}
	} else {
		remove(0)
	}
	e.updateShardGauges()
	if removed {
		finish()
	}
	return removed, nil
}

// dropCold removes a cold instance: the drop record first (boot GC retries
// the blob deletion via DroppedIDs if we crash or fail past this point),
// then the blob itself. Caller holds the residency flight lock.
func (e *Engine) dropCold(id string) (bool, error) {
	sh := e.shardOf(id)
	removed := false
	remove := func(uint64) {
		sh.mu.Lock()
		if _, ok := sh.cold[id]; ok {
			delete(sh.cold, id)
			sh.coldCount.Add(-1)
			removed = true
		}
		sh.mu.Unlock()
	}
	if e.log != nil {
		if _, err := e.log.Commit(persist.Record{Op: persist.OpDrop, ID: id}, remove); err != nil {
			if !removed {
				return false, fmt.Errorf("drop %s: %w", id, err)
			}
			e.updateShardGauges()
			e.gcBlob(id)
			return true, fmt.Errorf("drop %s: applied but not confirmed durable: %w", id, err)
		}
	} else {
		remove(0)
	}
	e.updateShardGauges()
	if removed {
		e.gcBlob(id)
	}
	return removed, nil
}

// gcBlob best-effort deletes an instance's cold blob after a drop. A
// failure only leaves garbage (counted): replay ignores blobs of dropped
// ids and boot GC retries the deletion.
func (e *Engine) gcBlob(id string) {
	if e.backend == nil {
		return
	}
	if err := e.backend.Delete(context.Background(), id); err != nil {
		e.reg.Counter("engine_blob_gc_failures_total").Inc()
	}
}

// newResultCache builds one instance's result cache over the engine-wide
// stats family.
func (e *Engine) newResultCache() *resultCache {
	return newResultCache(e.cfg.ResultCacheSize, e.cfg.ResultCacheBytes, e.resStats)
}

// updateShardGauges refreshes total and per-stripe occupancy gauges from
// the lock-free per-stripe counters, so create/drop on one stripe never
// touches another stripe's lock.
func (e *Engine) updateShardGauges() {
	var resident, cold, maxN int64
	minN := int64(-1)
	for _, sh := range e.shards {
		n := sh.count.Load()
		resident += n
		cold += sh.coldCount.Load()
		if n > maxN {
			maxN = n
		}
		if minN < 0 || n < minN {
			minN = n
		}
	}
	e.reg.Gauge("engine_instances").Set(resident + cold)
	e.reg.Gauge("engine_resident_instances").Set(resident)
	e.reg.Gauge("engine_cold_instances").Set(cold)
	e.reg.Gauge("engine_resident_bytes").Set(e.residentBytes.Load())
	e.reg.Gauge("engine_shards").Set(int64(len(e.shards)))
	e.reg.Gauge("engine_shard_max_instances").Set(maxN)
	e.reg.Gauge("engine_shard_min_instances").Set(minN)
}

// InstanceCount returns the number of registered instances — resident and
// cold — from the lock-free stripe counters, cheap enough for liveness
// probes.
func (e *Engine) InstanceCount() int {
	var total int64
	for _, sh := range e.shards {
		total += sh.count.Load() + sh.coldCount.Load()
	}
	return int(total)
}

// Instances lists every instance, resident and cold, sorted by id. Cold
// entries are served from their registry stubs — listing never faults
// anything in.
func (e *Engine) Instances() []InstanceInfo {
	var insts []*instance
	var colds []InstanceInfo
	for _, sh := range e.shards {
		sh.mu.RLock()
		for _, in := range sh.instances {
			insts = append(insts, in)
		}
		for _, info := range sh.cold {
			colds = append(colds, info)
		}
		sh.mu.RUnlock()
	}
	out := make([]InstanceInfo, 0, len(insts)+len(colds))
	for _, in := range insts {
		out = append(out, e.describe(in))
	}
	out = append(out, colds...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Snapshot writes the current state of every shard to its snapshot file
// without touching the WAL; Compact additionally resets the WALs, bounding
// replay time. Both fail with ErrNoPersistence on an ephemeral engine.
func (e *Engine) Snapshot() (persist.SnapshotStats, error) { return e.snapshot(false) }

// Compact snapshots every shard and resets its write-ahead log.
func (e *Engine) Compact() (persist.SnapshotStats, error) { return e.snapshot(true) }

func (e *Engine) snapshot(compact bool) (persist.SnapshotStats, error) {
	if e.log == nil {
		return persist.SnapshotStats{}, ErrNoPersistence
	}
	if e.closed.Load() {
		return persist.SnapshotStats{}, ErrClosed
	}
	return e.log.Snapshot(e.captureShard, compact)
}

// captureShard deep-copies one registry stripe for a snapshot. It runs
// with the stripe's WAL mutex held (see persist.Log.Snapshot), takes the
// registry and instance locks in the documented order, and sorts by id so
// snapshot files are deterministic.
func (e *Engine) captureShard(k int) []persist.InstanceState {
	sh := e.shards[k]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make([]persist.InstanceState, 0, len(sh.instances))
	for _, in := range sh.instances {
		if in.borrowed {
			// Borrowed copies are another node's state: capturing one would
			// resurrect it as locally owned on replay.
			continue
		}
		in.mu.RLock()
		out = append(out, persist.InstanceState{ID: in.id, DB: in.db.Clone(), Version: in.version, LastSeq: in.lastSeq})
		in.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Generation returns an instance's current generation counter — the
// cluster router's cache-coherence token. A cold instance is faulted in
// first: a stub's remembered version may predate boot-discovered blobs, and
// a wrong generation here would let the router serve a stale cached result,
// so correctness wins over keeping the instance cold.
func (e *Engine) Generation(id string) (uint64, error) {
	in, err := e.lookup(id)
	if err != nil {
		return 0, err
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.version, nil
}

// Instance returns info for one instance.
func (e *Engine) Instance(id string) (InstanceInfo, bool) {
	in, err := e.lookup(id)
	if err != nil {
		return InstanceInfo{}, false
	}
	return e.describe(in), true
}

func (e *Engine) describe(in *instance) InstanceInfo {
	in.mu.RLock()
	defer in.mu.RUnlock()
	info := InstanceInfo{
		ID:        in.id,
		Relations: len(in.db.Relations()),
		Tuples:    in.db.NumTuples(),
		Version:   in.version,
	}
	if in.borrowed {
		info.State = "borrowed"
		info.Borrowed = true
	}
	return info
}

// lookup resolves an instance id to its resident instance. With tiering
// enabled a cold instance is faulted back in first; the loop re-checks
// residency after each fault-in because a concurrent eviction can undo it
// (the janitor under byte pressure), bounded by faultInRetries so a
// pathologically tight budget surfaces as an error instead of a livelock.
func (e *Engine) lookup(id string) (*instance, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	sh := e.shardOf(id)
	if e.backend == nil {
		return lookupResident(sh, id)
	}
	adoptTried := false
	for range faultInRetries {
		sh.mu.RLock()
		in, ok := sh.instances[id]
		_, cold := sh.cold[id]
		sh.mu.RUnlock()
		if ok {
			e.tracker.Touch(id, time.Now())
			return in, nil
		}
		if !cold {
			// Unknown here, but with a shared cold tier the blob may exist
			// under another node's ownership history: a cluster deployment
			// decides via AdoptOnMiss whether to adopt it (ring owner) or
			// borrow a read-only copy (replica read path). One attempt per
			// lookup — a second miss is a real miss.
			if e.cfg.AdoptOnMiss != nil && !adoptTried {
				adoptTried = true
				switch e.cfg.AdoptOnMiss(id) {
				case AdoptOwned:
					if err := e.AdoptInstance(context.Background(), id); err != nil {
						return nil, err
					}
					continue
				case AdoptBorrowed:
					if err := e.borrowIn(id); err != nil {
						return nil, err
					}
					continue
				}
			}
			return nil, fmt.Errorf("%w %q", ErrUnknownInstance, id)
		}
		if err := e.faultIn(id); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("instance %q: faulted in %d times without staying resident (resident budget too small?)", id, faultInRetries)
}

// lookupResident resolves an id on a shard with no cold tier: the
// instance is resident or it does not exist. Split out of lookup so the
// shard lock's scope is one straight-line function.
func lookupResident(sh *regShard, id string) (*instance, error) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	in, ok := sh.instances[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownInstance, id)
	}
	return in, nil
}

// evalCached evaluates u over the instance under its read lock, serving
// from the result cache when an entry exists at the instance's current
// generation. The generation is read under the same lock hold that runs
// the evaluation, so a cached result is exactly the result a cold
// evaluation at that generation produces. maintained reports whether a hit
// was served from an entry whose stamp came from delta promotion rather
// than full evaluation. Concurrent misses for one key may evaluate
// redundantly; the freshest-generation put wins, all of them are correct.
func (e *Engine) evalCached(in *instance, u *query.UCQ) (res *eval.Result, gen uint64, hit, maintained bool, err error) {
	key := resultKey(u)
	in.mu.RLock()
	defer in.mu.RUnlock()
	gen = in.version
	if res, maintained, ok := in.results.get(key, gen); ok {
		return res, gen, true, maintained, nil
	}
	start := time.Now()
	res, err = eval.EvalUCQOpts(u, in.db, e.cfg.Eval)
	if err != nil {
		return nil, gen, false, false, err
	}
	e.reg.Histogram("engine_eval_seconds").Observe(time.Since(start))
	in.results.put(key, gen, u, res)
	return res, gen, false, false, nil
}

// Ingest applies a group of facts to an instance through its batcher; it
// blocks until the facts are visible to queries (and, when durable, logged
// — with SyncAlways, fsynced). Facts of one call are applied atomically:
// with respect to concurrent queries, and also on failure — one bad fact
// rejects the whole call without applying any of it. The one exception is
// a WAL fsync failure after the facts were logged and applied: the error
// then says "applied but not confirmed durable", and callers must treat
// the write as neither lost nor guaranteed.
func (e *Engine) Ingest(id string, facts []Fact) error {
	for range faultInRetries {
		in, err := e.lookup(id)
		if err != nil {
			return err
		}
		if in.borrowed {
			return fmt.Errorf("%w: %s", ErrBorrowed, id)
		}
		if len(facts) == 0 {
			return nil
		}
		if err := in.currentBatcher().add(facts); err != nil {
			if errors.Is(err, errInstanceClosed) && !e.closed.Load() {
				// The batcher was closed by an eviction racing this write.
				// Wait for the residency transition to settle, then retry:
				// lookup will fault the instance back in with a live batcher.
				e.waitResidency(id)
				continue
			}
			if errors.Is(err, errInstanceClosed) {
				return ErrClosed
			}
			return err
		}
		e.reg.Counter("engine_ingest_facts_total").Add(int64(len(facts)))
		return nil
	}
	return fmt.Errorf("ingest %s: instance kept being evicted mid-write (resident budget too small?)", id)
}

// ParseUnion parses query text into a UCQ≠ (one rule, or several separated
// by ';' / newlines).
func ParseUnion(text string) (*query.UCQ, error) { return query.ParseUnion(text) }

// run executes fn on the worker pool, recording queue wait.
func (e *Engine) run(ctx context.Context, fn func() (any, error)) (any, error) {
	submitted := time.Now()
	return e.pool.do(ctx, func() (any, error) {
		e.reg.Histogram("engine_queue_wait_seconds").Observe(time.Since(submitted))
		return fn()
	})
}

// QueryOut is the result of a full-provenance query request.
type QueryOut struct {
	Result        *eval.Result
	Version       uint64 // instance generation the result reflects
	CacheHit      bool   // served from the result cache (evaluation skipped)
	MaintainedHit bool   // the serving entry was promoted by delta maintenance
}

// Query evaluates a union over an instance with full N[X] provenance
// annotations. It holds the instance read lock for the duration of the
// evaluation, so results are a consistent snapshot; repeated queries at an
// unchanged generation are served from the result cache. The returned
// result may be shared with other callers and must not be mutated.
func (e *Engine) Query(ctx context.Context, id string, u *query.UCQ) (*QueryOut, error) {
	in, err := e.lookup(id)
	if err != nil {
		return nil, err
	}
	e.reg.Counter("engine_queries_total").Inc()
	v, err := e.run(ctx, func() (any, error) {
		res, gen, hit, maintained, err := e.evalCached(in, u)
		if err != nil {
			return nil, err
		}
		return &QueryOut{Result: res, Version: gen, CacheHit: hit, MaintainedHit: maintained}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*QueryOut), nil
}

// Minimize returns the p-minimal form of u, consulting the LRU cache first.
// The boolean reports whether MinProv was skipped (an LRU hit, or another
// caller's in-flight computation was joined). Cached values are shared and
// must not be mutated by callers.
func (e *Engine) Minimize(u *query.UCQ) (*query.UCQ, bool) {
	key := CanonicalKey(u)
	for {
		if min, ok := e.cache.get(key); ok {
			e.reg.Counter("engine_cache_hits_total").Inc()
			return min, true
		}
		e.sfMu.Lock()
		if fl, ok := e.inflight[key]; ok {
			// Another worker is already running MinProv — the
			// worst-case-exponential step — for this key; join it
			// rather than duplicating the work.
			e.sfMu.Unlock()
			<-fl.done
			if fl.min != nil {
				e.reg.Counter("engine_cache_hits_total").Inc()
				return fl.min, true
			}
			continue // leader panicked; retry (likely becoming leader)
		}
		fl := &minFlight{done: make(chan struct{})}
		e.inflight[key] = fl
		e.sfMu.Unlock()

		e.reg.Counter("engine_cache_misses_total").Inc()
		defer func() {
			e.sfMu.Lock()
			delete(e.inflight, key)
			e.sfMu.Unlock()
			close(fl.done)
		}()
		start := time.Now()
		min := minimize.MinProv(u)
		e.reg.Histogram("engine_minprov_seconds").Observe(time.Since(start))
		e.cache.put(key, min)
		fl.min = min
		return min, false
	}
}

// CacheLen returns the number of cached minimized queries.
func (e *Engine) CacheLen() int { return e.cache.len() }

// InstanceCacheStats is one instance's result-cache occupancy plus the
// approximate resident size of the instance itself.
type InstanceCacheStats struct {
	ID         string `json:"id"`
	Generation uint64 `json:"generation"`
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	// InstanceBytes is the approximate resident footprint of the instance
	// database (tags, values, index bookkeeping) — the unit the tiered
	// byte budget is enforced in.
	InstanceBytes int64 `json:"instance_bytes"`
}

// ResultCacheStats reports the result-cache state across all instances:
// totals from the shared counters, per-instance occupancy sorted by id, and
// the configured per-instance bounds.
type ResultCacheStats struct {
	Enabled       bool                 `json:"enabled"`
	MaxEntries    int                  `json:"max_entries_per_instance"`
	MaxBytes      int64                `json:"max_bytes_per_instance"`
	Entries       int64                `json:"entries"`
	Bytes         int64                `json:"bytes"`
	Hits          int64                `json:"hits"`
	Misses        int64                `json:"misses"`
	Evictions     int64                `json:"evictions"`
	Invalidations int64                `json:"invalidations"`
	Promotions    int64                `json:"promotions"`
	Maintain      bool                 `json:"maintain"`
	MinCacheLen   int                  `json:"minimized_query_entries"`
	Instances     []InstanceCacheStats `json:"instances"`
}

// ResultCacheStatsNow snapshots the result cache for /admin/cache.
func (e *Engine) ResultCacheStatsNow() ResultCacheStats {
	st := ResultCacheStats{
		Enabled:       e.cfg.ResultCacheSize > 0,
		MaxEntries:    e.cfg.ResultCacheSize,
		MaxBytes:      e.cfg.ResultCacheBytes,
		Entries:       e.resStats.entries.Value(),
		Bytes:         e.resStats.bytes.Value(),
		Hits:          e.resStats.hits.Value(),
		Misses:        e.resStats.misses.Value(),
		Evictions:     e.resStats.evictions.Value(),
		Invalidations: e.resStats.invalidations.Value(),
		Promotions:    e.resStats.promotions.Value(),
		Maintain:      !e.cfg.DisableResultMaintenance,
		MinCacheLen:   e.cache.len(),
		Instances:     []InstanceCacheStats{},
	}
	for _, sh := range e.shards {
		sh.mu.RLock()
		for _, in := range sh.instances {
			entries, bytes := in.results.usage()
			in.mu.RLock()
			gen, instBytes := in.version, in.bytes
			in.mu.RUnlock()
			st.Instances = append(st.Instances, InstanceCacheStats{
				ID: in.id, Generation: gen, Entries: entries, Bytes: bytes,
				InstanceBytes: instBytes,
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(st.Instances, func(i, j int) bool { return st.Instances[i].ID < st.Instances[j].ID })
	return st
}

// CoreOut is the result of a core-provenance request.
type CoreOut struct {
	Result         *eval.Result // tuples annotated with core provenance
	Minimized      *query.UCQ   // the p-minimal query that realized it
	CacheHit       bool         // whether MinProv was skipped
	ResultCacheHit bool         // whether the evaluation itself was skipped
	MaintainedHit  bool         // the serving entry was promoted by delta maintenance
	Version        uint64       // instance generation the result reflects
}

// Core computes the core provenance of every answer tuple of u on the
// instance by evaluating the cached (or freshly computed) p-minimal form,
// which realizes the core provenance on abstractly-tagged databases
// (Theorem 4.6). Repeated calls with the same query hit the minimization
// cache and skip Algorithm 1.
func (e *Engine) Core(ctx context.Context, id string, u *query.UCQ) (*CoreOut, error) {
	in, err := e.lookup(id)
	if err != nil {
		return nil, err
	}
	e.reg.Counter("engine_core_total").Inc()
	v, err := e.run(ctx, func() (any, error) {
		min, hit := e.Minimize(u)
		// The result is cached under the minimized form's canonical key, so
		// a /core of u and a /query of min share one materialization.
		res, gen, resHit, maintained, err := e.evalCached(in, min)
		if err != nil {
			return nil, err
		}
		return &CoreOut{Result: res, Minimized: min, CacheHit: hit, ResultCacheHit: resHit, MaintainedHit: maintained, Version: gen}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*CoreOut), nil
}

// CoreDirect computes core provenance without the minimized query: it
// evaluates u as-is and post-processes every polynomial with the direct
// Theorem 5.1 construction. It is the cross-check path for Core and the
// fallback when callers want cores on a database that is not abstractly
// tagged up to the paper's assumptions.
func (e *Engine) CoreDirect(ctx context.Context, id string, u *query.UCQ) (*eval.Result, error) {
	in, err := e.lookup(id)
	if err != nil {
		return nil, err
	}
	v, err := e.run(ctx, func() (any, error) {
		in.mu.RLock()
		defer in.mu.RUnlock()
		res, err := eval.EvalUCQOpts(u, in.db, e.cfg.Eval)
		if err != nil {
			return nil, err
		}
		return direct.CoreResult(res, in.db, u.Consts())
	})
	if err != nil {
		return nil, err
	}
	return v.(*eval.Result), nil
}

// TupleProvenance returns P(t, u, D) for one tuple (the zero polynomial if
// the tuple is not an answer). The full evaluation behind it goes through
// the result cache, so repeated /prob and /trust calls at an unchanged
// generation — even for different tuples — share one materialization.
func (e *Engine) TupleProvenance(ctx context.Context, id string, u *query.UCQ, t db.Tuple) (semiring.Polynomial, error) {
	in, err := e.lookup(id)
	if err != nil {
		return semiring.Zero, err
	}
	v, err := e.run(ctx, func() (any, error) {
		res, _, _, _, err := e.evalCached(in, u)
		if err != nil {
			return nil, err
		}
		p, _ := res.Lookup(t)
		return p, nil
	})
	if err != nil {
		return semiring.Zero, err
	}
	return v.(semiring.Polynomial), nil
}

// ProbOpts configures Probability.
type ProbOpts struct {
	// Probs maps tags to probabilities; Default is used for absent tags.
	Probs   map[string]float64
	Default float64
	// UseCore first reduces the polynomial to its core (up to
	// coefficients), shrinking the inclusion–exclusion input without
	// changing the answer.
	UseCore bool
	// MCSamples switches to Monte Carlo estimation when positive.
	MCSamples int
	Seed      int64
}

func (o ProbOpts) tagProb(tag string) float64 {
	if p, ok := o.Probs[tag]; ok {
		return p
	}
	return o.Default
}

// Probability computes the derivation probability of tuple t under a
// tuple-independent probabilistic database (apps/prob on top of the
// provenance polynomial).
func (e *Engine) Probability(ctx context.Context, id string, u *query.UCQ, t db.Tuple, opts ProbOpts) (float64, error) {
	p, err := e.TupleProvenance(ctx, id, u, t)
	if err != nil {
		return 0, err
	}
	v, err := e.run(ctx, func() (any, error) {
		if opts.UseCore {
			p = direct.CoreUpToCoefficients(p)
		}
		if opts.MCSamples > 0 {
			return prob.MonteCarlo(p, opts.tagProb, opts.MCSamples, opts.Seed), nil
		}
		return prob.Exact(p, opts.tagProb)
	})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

// TrustOpts configures Trust: per-tag values plus a default.
type TrustOpts struct {
	Values  map[string]float64
	Default float64
	// Confidence selects Viterbi (most-confident derivation) instead of
	// tropical cheapest-cost.
	Confidence bool
	// UseCore reduces to the core polynomial first.
	UseCore bool
}

func (o TrustOpts) tagValue(tag string) float64 {
	if v, ok := o.Values[tag]; ok {
		return v
	}
	return o.Default
}

// Trust evaluates the trust of tuple t: cheapest-derivation cost in the
// tropical semiring, or most-confident derivation when opts.Confidence.
func (e *Engine) Trust(ctx context.Context, id string, u *query.UCQ, t db.Tuple, opts TrustOpts) (float64, error) {
	p, err := e.TupleProvenance(ctx, id, u, t)
	if err != nil {
		return 0, err
	}
	v, err := e.run(ctx, func() (any, error) {
		if opts.UseCore {
			p = direct.CoreUpToCoefficients(p)
		}
		if opts.Confidence {
			return trust.Confidence(p, opts.tagValue), nil
		}
		return trust.Cost(p, opts.tagValue), nil
	})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

// DeletionOut reports deletion propagation over a whole result.
type DeletionOut struct {
	Survivors []db.Tuple
	Lost      []db.Tuple
}

// Deletion evaluates u, then partitions the answer tuples into those that
// survive deleting the tagged input tuples and those that are lost —
// deletion propagation from provenance alone, no re-evaluation.
func (e *Engine) Deletion(ctx context.Context, id string, u *query.UCQ, deletedTags []string) (*DeletionOut, error) {
	in, err := e.lookup(id)
	if err != nil {
		return nil, err
	}
	deleted := make(map[string]bool, len(deletedTags))
	for _, tg := range deletedTags {
		deleted[tg] = true
	}
	v, err := e.run(ctx, func() (any, error) {
		res, _, _, _, err := e.evalCached(in, u)
		if err != nil {
			return nil, err
		}
		// Propagate only reads the (shared, immutable) cached result.
		surv, lost := deletion.Propagate(res, deleted)
		return &DeletionOut{Survivors: surv, Lost: lost}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*DeletionOut), nil
}
