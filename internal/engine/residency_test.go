package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"provmin/internal/query"
	"provmin/internal/tier"
)

// newTieredEngine builds an ephemeral engine over an FS backend in a temp
// dir, janitor disabled so tests drive EnforceResidency deterministically.
func newTieredEngine(t *testing.T, cfg Config) (*Engine, tier.SnapshotBackend) {
	t.Helper()
	backend, err := tier.NewFSBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Backend = backend
	if cfg.JanitorInterval == 0 {
		cfg.JanitorInterval = -1
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	e := New(cfg)
	t.Cleanup(e.Close)
	return e, backend
}

func seedFacts(n, offset int) []Fact {
	facts := make([]Fact, 0, n)
	for i := 0; i < n; i++ {
		facts = append(facts, Fact{
			Rel: "R", Tag: fmt.Sprintf("r%d", i+offset),
			Values: []string{fmt.Sprintf("v%d", (i+offset)%7), fmt.Sprintf("v%d", (i+offset+1)%7)},
		})
	}
	return facts
}

func TestEvictFaultInRoundTrip(t *testing.T) {
	e, _ := newTieredEngine(t, Config{})
	id := mustCreate(t, e, paperInstance)
	u := query.MustParseUnion(paperQuery)
	before, err := e.Query(context.Background(), id, u)
	if err != nil {
		t.Fatal(err)
	}

	if err := e.EvictInstance(id); err != nil {
		t.Fatal(err)
	}
	// The instance must be listed cold, with its last-known counts, and
	// listing must not fault it back in.
	var seen bool
	for _, info := range e.Instances() {
		if info.ID == id {
			seen = true
			if info.State != "cold" || info.Tuples != 3 {
				t.Fatalf("cold listing = %+v, want state=cold tuples=3", info)
			}
		}
	}
	if !seen {
		t.Fatal("evicted instance missing from listing")
	}
	if got := e.reg.Counter("engine_faultins_total").Value(); got != 0 {
		t.Fatalf("listing faulted in: %d fault-ins", got)
	}
	if e.InstanceCount() != 1 {
		t.Fatalf("InstanceCount = %d, want 1 (cold counts)", e.InstanceCount())
	}
	// Evicting a cold instance is a no-op.
	if err := e.EvictInstance(id); err != nil {
		t.Fatalf("evict of cold instance: %v", err)
	}

	// First touch faults it back in with identical content.
	after, err := e.Query(context.Background(), id, u)
	if err != nil {
		t.Fatal(err)
	}
	if before.Result.String() != after.Result.String() {
		t.Fatalf("result changed across evict/fault-in:\nbefore %s\nafter  %s", before.Result, after.Result)
	}
	if before.Version != after.Version {
		t.Fatalf("generation changed across evict/fault-in: %d -> %d", before.Version, after.Version)
	}
	if got := e.reg.Counter("engine_faultins_total").Value(); got != 1 {
		t.Fatalf("fault-ins = %d, want 1", got)
	}
	if got := e.reg.Counter("engine_evictions_total").Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

func TestEvictErrors(t *testing.T) {
	plain := newTestEngine(t)
	if err := plain.EvictInstance("i1"); !errors.Is(err, ErrNoTiering) {
		t.Fatalf("untiered evict = %v, want ErrNoTiering", err)
	}
	e, _ := newTieredEngine(t, Config{})
	if err := e.EvictInstance("nope"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("evict unknown = %v, want ErrUnknownInstance", err)
	}
}

func TestIngestAfterEviction(t *testing.T) {
	e, _ := newTieredEngine(t, Config{})
	id := mustCreate(t, e, paperInstance)
	if err := e.EvictInstance(id); err != nil {
		t.Fatal(err)
	}
	// Ingest on a cold instance faults it in and layers the new facts on
	// top of the blob state.
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "r4", Values: []string{"b", "b"}}}); err != nil {
		t.Fatal(err)
	}
	info, ok := e.Instance(id)
	if !ok || info.Tuples != 4 {
		t.Fatalf("after fault-in ingest: %+v, want 4 tuples", info)
	}
}

// countingBackend wraps a backend counting Gets, to prove single-flight.
type countingBackend struct {
	tier.SnapshotBackend
	gets atomic.Int64
}

func (c *countingBackend) Get(ctx context.Context, id string) ([]byte, error) {
	c.gets.Add(1)
	return c.SnapshotBackend.Get(ctx, id)
}

func TestFaultInSingleFlight(t *testing.T) {
	fsb, err := tier.NewFSBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cb := &countingBackend{SnapshotBackend: fsb}
	e := New(Config{Workers: 8, Backend: cb, JanitorInterval: -1})
	t.Cleanup(e.Close)
	id := mustCreate(t, e, paperInstance)
	if err := e.EvictInstance(id); err != nil {
		t.Fatal(err)
	}

	u := query.MustParseUnion(paperQuery)
	const callers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = e.Query(context.Background(), id, u)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := cb.gets.Load(); got != 1 {
		t.Fatalf("backend Gets = %d, want 1 (single-flight)", got)
	}
	if got := e.reg.Counter("engine_faultins_total").Value(); got != 1 {
		t.Fatalf("fault-ins = %d, want 1", got)
	}
}

func TestResidencyBudgetEnforced(t *testing.T) {
	const n = 8
	e, _ := newTieredEngine(t, Config{ResidentBudgetBytes: 1}) // everything over budget
	var ids []string
	for i := 0; i < n; i++ {
		id := mustCreate(t, e, "")
		if err := e.Ingest(id, seedFacts(32, i*32)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	evicted := e.EnforceResidency()
	if evicted != n-1 {
		t.Fatalf("evicted %d, want %d (budget keeps one resident)", evicted, n-1)
	}
	// The LRU keeps the most recently used: the last-created instance.
	res := e.Residency()
	if len(res.Resident) != 1 || res.Resident[0].ID != ids[n-1] {
		t.Fatalf("resident = %+v, want just %s", res.Resident, ids[n-1])
	}
	if len(res.Cold) != n-1 {
		t.Fatalf("cold = %d ids, want %d", len(res.Cold), n-1)
	}
	// After settling, resident bytes is the one kept instance's cost and the
	// gauge agrees with the internal accounting.
	if res.ResidentBytes != res.Resident[0].Bytes {
		t.Fatalf("resident bytes %d != surviving instance's %d", res.ResidentBytes, res.Resident[0].Bytes)
	}
	if g := e.reg.Gauge("engine_resident_bytes").Value(); g != res.ResidentBytes {
		t.Fatalf("gauge %d != accounting %d", g, res.ResidentBytes)
	}
	if g := e.reg.Gauge("engine_cold_instances").Value(); g != int64(n-1) {
		t.Fatalf("cold gauge = %d, want %d", g, n-1)
	}
	// Touching a cold instance faults it in; the budget then evicts the
	// previous survivor on the next pass.
	if _, ok := e.Instance(ids[0]); !ok {
		t.Fatalf("cold instance %s not faulted in", ids[0])
	}
	e.EnforceResidency()
	res = e.Residency()
	if len(res.Resident) != 1 || res.Resident[0].ID != ids[0] {
		t.Fatalf("after touch, resident = %+v, want just %s", res.Resident, ids[0])
	}
}

func TestColdAfterIdleEviction(t *testing.T) {
	e, _ := newTieredEngine(t, Config{ColdAfter: time.Millisecond})
	id := mustCreate(t, e, paperInstance)
	time.Sleep(5 * time.Millisecond)
	if n := e.EnforceResidency(); n != 1 {
		t.Fatalf("evicted %d idle instances, want 1", n)
	}
	res := e.Residency()
	if len(res.Cold) != 1 || res.Cold[0] != id {
		t.Fatalf("cold = %v, want [%s]", res.Cold, id)
	}
}

func TestDropColdInstance(t *testing.T) {
	e, backend := newTieredEngine(t, Config{})
	id := mustCreate(t, e, paperInstance)
	if err := e.EvictInstance(id); err != nil {
		t.Fatal(err)
	}
	dropped, err := e.DropInstance(id)
	if err != nil || !dropped {
		t.Fatalf("drop cold = (%v, %v), want (true, nil)", dropped, err)
	}
	if e.InstanceCount() != 0 {
		t.Fatalf("InstanceCount = %d after cold drop", e.InstanceCount())
	}
	ids, err := backend.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("blob survived cold drop: %v", ids)
	}
	if dropped, _ := e.DropInstance(id); dropped {
		t.Fatal("second drop reported true")
	}
}

// TestBudgetedWorkloadByteIdentical is the acceptance check: a workload
// over more instances than the budget admits, with evictions forced between
// every step, must produce byte-identical responses to the unbudgeted run.
func TestBudgetedWorkloadByteIdentical(t *testing.T) {
	run := func(t *testing.T, budget int64) []string {
		t.Helper()
		e, _ := newTieredEngine(t, Config{ResidentBudgetBytes: budget})
		var ids []string
		for i := 0; i < 6; i++ {
			id := mustCreate(t, e, "")
			if err := e.Ingest(id, seedFacts(24, i*5)); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		var out []string
		for round := 0; round < 3; round++ {
			// A distinct query per round: both runs miss the result cache
			// identically, so the comparison is about state, not caching.
			u := query.MustParseUnion(fmt.Sprintf("ans(x,z%d) :- R(x,y), R(y,z%d)", round, round))
			for i, id := range ids {
				if budget > 0 {
					e.EnforceResidency()
				}
				co, err := e.Core(context.Background(), id, u)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, fmt.Sprintf("round=%d id=%d gen=%d\n%s", round, i, co.Version, co.Result))
				if err := e.Ingest(id, seedFacts(4, 1000+round*100+i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if budget > 0 && e.reg.Counter("engine_faultins_total").Value() == 0 {
			t.Fatal("budgeted run never faulted in — budget not exercised")
		}
		return out
	}
	unbudgeted := run(t, 0)
	budgeted := run(t, 1)
	if len(unbudgeted) != len(budgeted) {
		t.Fatalf("response counts differ: %d vs %d", len(unbudgeted), len(budgeted))
	}
	for i := range unbudgeted {
		if unbudgeted[i] != budgeted[i] {
			t.Fatalf("response %d differs under budget:\nunbudgeted:\n%s\nbudgeted:\n%s", i, unbudgeted[i], budgeted[i])
		}
	}
}

// TestEvictIngestQueryStress races ingests, queries, evictions and the
// enforcement pass; run under -race it is the single-flight/fencing proof.
// Every acknowledged ingest must be present exactly once at the end.
func TestEvictIngestQueryStress(t *testing.T) {
	e, _ := newTieredEngine(t, Config{ResidentBudgetBytes: 1, IngestMaxWait: 100 * time.Microsecond})
	const nInst = 4
	var ids []string
	for i := 0; i < nInst; i++ {
		ids = append(ids, mustCreate(t, e, ""))
	}
	const perWorker = 50
	var wg sync.WaitGroup
	var acked [nInst]atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			u := query.MustParseUnion("ans(x,y) :- R(x,y)")
			for i := 0; i < perWorker; i++ {
				k := (w + i) % nInst
				tag := fmt.Sprintf("w%d-%d", w, i)
				err := e.Ingest(ids[k], []Fact{{Rel: "R", Tag: tag, Values: []string{tag, tag}}})
				if err == nil {
					acked[k].Add(1)
				} else {
					t.Errorf("ingest: %v", err)
				}
				if i%5 == 0 {
					if _, err := e.Query(context.Background(), ids[k], u); err != nil {
						t.Errorf("query: %v", err)
					}
				}
				if i%7 == 0 {
					e.EnforceResidency()
				}
				if i%11 == 0 {
					_ = e.EvictInstance(ids[(k+1)%nInst]) // races drop/evict; error is fine
				}
			}
		}(w)
	}
	wg.Wait()
	for k, id := range ids {
		info, ok := e.Instance(id) // faults in if cold
		if !ok {
			t.Fatalf("instance %s lost", id)
		}
		if int64(info.Tuples) != acked[k].Load() {
			t.Fatalf("instance %s has %d tuples, want %d acknowledged", id, info.Tuples, acked[k].Load())
		}
	}
}

func BenchmarkEvict(b *testing.B) {
	backend, err := tier.NewFSBackend(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	e := New(Config{Workers: 4, Backend: backend, JanitorInterval: -1})
	b.Cleanup(e.Close)
	info, err := e.CreateInstance("")
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Ingest(info.ID, seedFacts(256, 0)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.EvictInstance(info.ID); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if _, ok := e.Instance(info.ID); !ok { // fault back in off the clock
			b.Fatal("fault-in failed")
		}
		b.StartTimer()
	}
}

func BenchmarkFaultIn(b *testing.B) {
	backend, err := tier.NewFSBackend(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	e := New(Config{Workers: 4, Backend: backend, JanitorInterval: -1})
	b.Cleanup(e.Close)
	info, err := e.CreateInstance("")
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Ingest(info.ID, seedFacts(256, 0)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := e.EvictInstance(info.ID); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := e.faultIn(info.ID); err != nil {
			b.Fatal(err)
		}
	}
}
