package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"provmin/internal/query"
)

func benchEngine(b *testing.B, tuples int) (*Engine, string) {
	b.Helper()
	// Result caching off: these benchmarks measure the evaluation paths
	// (cold MinProv, min-cache-hit eval, parallel eval, ingest); with the
	// default cache every repeated query degenerates into a cache probe.
	// BenchmarkCoreResultCache below measures the cache itself.
	e := New(Config{Workers: 4, CacheSize: 64, ResultCacheSize: -1})
	b.Cleanup(e.Close)
	info, err := e.CreateInstance("")
	if err != nil {
		b.Fatal(err)
	}
	facts := make([]Fact, 0, tuples)
	for i := 0; i < tuples; i++ {
		facts = append(facts, Fact{
			Rel: "R", Tag: fmt.Sprintf("r%d", i),
			Values: []string{fmt.Sprintf("v%d", i%16), fmt.Sprintf("v%d", (i+1)%16)},
		})
	}
	if err := e.Ingest(info.ID, facts); err != nil {
		b.Fatal(err)
	}
	return e, info.ID
}

// benchQuery has a redundant atom, so MinProv has real work to skip on a
// cache hit.
const benchQuery = "ans(x) :- R(x,y), R(y,z), R(x,w)"

// BenchmarkCoreCold measures core provenance with the minimization cache
// defeated (a fresh variable renaming each iteration takes a new slot).
func BenchmarkCoreCold(b *testing.B) {
	e, id := benchEngine(b, 64)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf("ans(x%d) :- R(x%d,y%d), R(y%d,z%d), R(x%d,w%d)", i, i, i, i, i, i, i)
		u := query.MustParseUnion(q)
		if _, err := e.Core(ctx, id, u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreCached measures the steady-state service hot path: repeated
// core requests for one query, MinProv amortized away by the LRU.
func BenchmarkCoreCached(b *testing.B) {
	e, id := benchEngine(b, 64)
	ctx := context.Background()
	u := query.MustParseUnion(benchQuery)
	if _, err := e.Core(ctx, id, u); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Core(ctx, id, u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreResultCache is the acceptance pair for the result cache:
// repeated /core at a fixed generation served from the generation-stamped
// result cache ("hit") against the same request with result caching
// disabled ("cold" — minimization still cached, so the delta is purely the
// skipped evaluation). The acceptance bar is hit ≥ 10x faster than cold.
func BenchmarkCoreResultCache(b *testing.B) {
	for _, cfg := range []struct {
		name      string
		cacheSize int
	}{
		{"hit", 0},   // default: result cache on
		{"cold", -1}, // result cache disabled
	} {
		b.Run(cfg.name, func(b *testing.B) {
			e := New(Config{Workers: 4, CacheSize: 64, ResultCacheSize: cfg.cacheSize})
			b.Cleanup(e.Close)
			info, err := e.CreateInstance("")
			if err != nil {
				b.Fatal(err)
			}
			facts := make([]Fact, 0, 512)
			for i := 0; i < 512; i++ {
				facts = append(facts, Fact{
					Rel: "R", Tag: fmt.Sprintf("r%d", i),
					Values: []string{fmt.Sprintf("v%d", i%24), fmt.Sprintf("v%d", (i+1)%24)},
				})
			}
			if err := e.Ingest(info.ID, facts); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			u := query.MustParseUnion(benchQuery)
			if _, err := e.Core(ctx, info.ID, u); err != nil {
				b.Fatal(err) // warm both caches
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Core(ctx, info.ID, u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryParallel measures concurrent read throughput on one
// instance through the worker pool.
func BenchmarkQueryParallel(b *testing.B) {
	e, id := benchEngine(b, 64)
	ctx := context.Background()
	u := query.MustParseUnion("ans(x,y) :- R(x,y)")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Query(ctx, id, u); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIngestBatched measures batched write throughput (facts/op) with
// concurrent writers sharing flushes.
func BenchmarkIngestBatched(b *testing.B) {
	e, id := benchEngine(b, 0)
	var n atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v := fmt.Sprintf("b%d", n.Add(1))
			if err := e.Ingest(id, []Fact{{Rel: "W", Tag: "t" + v, Values: []string{v}}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRegistryContention measures concurrent registry traffic
// (create, describe, drop) under different stripe counts: with one stripe
// every operation serializes on a single RWMutex; with more, only
// same-stripe operations contend.
func BenchmarkRegistryContention(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := New(Config{Workers: 2, Shards: shards})
			b.Cleanup(e.Close)
			var seed []string
			for i := 0; i < 64; i++ {
				info, err := e.CreateInstance("")
				if err != nil {
					b.Fatal(err)
				}
				seed = append(seed, info.ID)
			}
			var n atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					switch i := n.Add(1); i % 8 {
					case 0:
						info, err := e.CreateInstance("")
						if err != nil {
							b.Fatal(err)
						}
						e.DropInstance(info.ID)
					default:
						if _, ok := e.Instance(seed[int(i)%len(seed)]); !ok {
							b.Fatal("seed instance vanished")
						}
					}
				}
			})
		})
	}
}

// BenchmarkQueryAfterIngest is the acceptance pair for incremental result
// maintenance: each iteration ingests one fresh fact and re-runs a fixed
// query. With maintenance on, the write promotes the cached result by
// delta-evaluating the single inserted row and the query is a warm hit;
// with maintenance off (the pre-maintenance engine, and the
// -result-cache-maintain=false ablation) the write invalidates the entry
// and every query pays a full re-evaluation of the instance.
func BenchmarkQueryAfterIngest(b *testing.B) {
	const chain = 2000
	for _, cfg := range []struct {
		name    string
		disable bool
	}{
		{"maintained", false},
		{"invalidate", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			e := New(Config{
				Workers: 4, CacheSize: 64,
				DisableResultMaintenance: cfg.disable,
				IngestBatchSize:          1,
			})
			b.Cleanup(e.Close)
			info, err := e.CreateInstance("")
			if err != nil {
				b.Fatal(err)
			}
			// A long chain keeps the full evaluation linear in the instance
			// (distinct constants, so no multiplicity blow-up) while the
			// per-iteration delta stays a single indexed probe.
			facts := make([]Fact, 0, chain)
			for i := 0; i < chain; i++ {
				facts = append(facts, Fact{
					Rel: "R", Tag: fmt.Sprintf("r%d", i),
					Values: []string{fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", i+1)},
				})
			}
			if err := e.Ingest(info.ID, facts); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			u := query.MustParseUnion(benchQuery)
			if _, err := e.Query(ctx, info.ID, u); err != nil {
				b.Fatal(err) // materialize the cache entry
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := Fact{
					Rel: "R", Tag: fmt.Sprintf("n%d", i),
					Values: []string{fmt.Sprintf("a%d", chain+i), fmt.Sprintf("a%d", chain+i+1)},
				}
				if err := e.Ingest(info.ID, []Fact{f}); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Query(ctx, info.ID, u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
