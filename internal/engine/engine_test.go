package engine

import (
	"context"
	"strings"
	"testing"

	"provmin/internal/query"
)

// paperInstance is the running example of the paper: R with a symmetric
// pair and a self-loop, abstractly tagged.
const paperInstance = "R r1 a a\nR r2 a b\nR r3 b a"

const paperQuery = "ans(x) :- R(x,y), R(y,x)"

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(Config{Workers: 4, CacheSize: 8})
	t.Cleanup(e.Close)
	return e
}

func mustCreate(t *testing.T, e *Engine, initial string) string {
	t.Helper()
	info, err := e.CreateInstance(initial)
	if err != nil {
		t.Fatal(err)
	}
	return info.ID
}

func TestQueryEvaluates(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, paperInstance)
	u := query.MustParseUnion(paperQuery)
	out, err := e.Query(context.Background(), id, u)
	if err != nil {
		t.Fatal(err)
	}
	res := out.Result
	if res.Len() != 2 { // (a) and (b)
		t.Fatalf("got %d tuples, want 2:\n%s", res.Len(), res)
	}
	// P((a)) = r1^2 + r2*r3: the self-loop squared plus the 2-cycle.
	var aProv string
	for _, ot := range res.Tuples() {
		if ot.Tuple.Key() == "a" {
			aProv = ot.Prov.String()
		}
	}
	if !strings.Contains(aProv, "r1^2") || !strings.Contains(aProv, "r2*r3") {
		t.Fatalf("P((a)) = %q, want r1^2 + r2*r3", aProv)
	}
}

func TestIngestVisibleToQueries(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, "")
	facts := []Fact{
		{Rel: "R", Tag: "r1", Values: []string{"a", "a"}},
		{Rel: "R", Tag: "r2", Values: []string{"a", "b"}},
		{Rel: "R", Tag: "r3", Values: []string{"b", "a"}},
	}
	if err := e.Ingest(id, facts); err != nil {
		t.Fatal(err)
	}
	info, ok := e.Instance(id)
	if !ok || info.Tuples != 3 {
		t.Fatalf("instance info = %+v, want 3 tuples", info)
	}
	if info.Version == 0 {
		t.Fatalf("version not bumped by ingest: %+v", info)
	}
	out, err := e.Query(context.Background(), id, query.MustParseUnion(paperQuery))
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Len() != 2 {
		t.Fatalf("got %d tuples after ingest, want 2", out.Result.Len())
	}
}

func TestIngestErrors(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, "")
	if err := e.Ingest(id, []Fact{{Rel: "", Tag: "t", Values: []string{"a"}}}); err == nil {
		t.Fatal("want error for missing relation name")
	}
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "", Values: []string{"a"}}}); err == nil {
		t.Fatal("want error for missing tag")
	}
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "r1", Values: []string{"a", "b"}}}); err != nil {
		t.Fatal(err)
	}
	// Arity mismatch against the now-registered R/2.
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "r2", Values: []string{"a"}}}); err == nil {
		t.Fatal("want arity-mismatch error")
	}
	if err := e.Ingest("nope", []Fact{{Rel: "R", Tag: "r", Values: []string{"a"}}}); err == nil {
		t.Fatal("want error for unknown instance")
	}
}

// TestCoreCacheCorrectness is the satellite cache-correctness test: a
// cached (warm) core-provenance run must yield a result identical to the
// cold run, and both must agree with the direct Theorem 5.1 computation
// that never touches the minimized query.
func TestCoreCacheCorrectness(t *testing.T) {
	ctx := context.Background()
	queries := []string{
		paperQuery,
		"ans(x) :- R(x,y), R(y,x), R(x,x)",
		"ans(x,y) :- R(x,z), R(z,y)",
		"ans(x) :- R(x,y); ans(x) :- R(y,x)",
	}
	for _, qt := range queries {
		cold := New(Config{Workers: 2, CacheSize: 8})
		u := query.MustParseUnion(qt)
		id := mustCreate(t, cold, paperInstance)

		coldOut, err := cold.Core(ctx, id, u)
		if err != nil {
			t.Fatalf("%s: cold core: %v", qt, err)
		}
		if coldOut.CacheHit {
			t.Fatalf("%s: first run reported a cache hit", qt)
		}
		warmOut, err := cold.Core(ctx, id, u)
		if err != nil {
			t.Fatalf("%s: warm core: %v", qt, err)
		}
		if !warmOut.CacheHit {
			t.Fatalf("%s: second run missed the cache", qt)
		}
		if got, want := warmOut.Result.String(), coldOut.Result.String(); got != want {
			t.Errorf("%s: warm core differs from cold:\nwarm: %s\ncold: %s", qt, got, want)
		}
		direct, err := cold.CoreDirect(ctx, id, u)
		if err != nil {
			t.Fatalf("%s: direct core: %v", qt, err)
		}
		if got, want := coldOut.Result.String(), direct.String(); got != want {
			t.Errorf("%s: minimized-eval core differs from direct core:\nmin: %s\ndirect: %s", qt, got, want)
		}
		cold.Close()
	}
}

func TestCacheSharedAcrossSyntacticVariants(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, paperInstance)
	ctx := context.Background()
	if _, err := e.Core(ctx, id, query.MustParseUnion("ans(x) :- R(x,y), R(y,x)")); err != nil {
		t.Fatal(err)
	}
	// Same query, atoms reordered: must hit the canonical-key cache.
	out, err := e.Core(ctx, id, query.MustParseUnion("ans(x) :- R(y,x), R(x,y)"))
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatal("reordered atoms missed the cache; CanonicalKey not order-insensitive")
	}
	if e.CacheLen() != 1 {
		t.Fatalf("cache has %d entries, want 1", e.CacheLen())
	}
}

func TestCacheEviction(t *testing.T) {
	e := New(Config{Workers: 1, CacheSize: 2})
	defer e.Close()
	for _, qt := range []string{
		"ans(x) :- R(x,y)",
		"ans(x) :- R(y,x)",
		"ans(x) :- R(x,x)",
	} {
		e.Minimize(query.MustParseUnion(qt))
	}
	if got := e.CacheLen(); got != 2 {
		t.Fatalf("cache len = %d, want capacity 2", got)
	}
	// The first query was evicted (LRU): minimizing it again is a miss.
	hits := e.Metrics().Counter("engine_cache_hits_total").Value()
	if _, hit := e.Minimize(query.MustParseUnion("ans(x) :- R(x,y)")); hit {
		t.Fatal("evicted entry reported as hit")
	}
	if e.Metrics().Counter("engine_cache_hits_total").Value() != hits {
		t.Fatal("hit counter moved on a miss")
	}
	// The most recent one is still cached.
	if _, hit := e.Minimize(query.MustParseUnion("ans(x) :- R(x,x)")); !hit {
		t.Fatal("recent entry missed")
	}
}

func TestAppsEndpointsLogic(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, paperInstance)
	ctx := context.Background()
	u := query.MustParseUnion(paperQuery)
	tup := []string{"a"}

	// P((a)) = r1^2 + r2*r3 under p=1/2 each: 1-(1-1/4)(1-... ) — just
	// sanity-check the value is in (0,1) and core gives the same answer.
	p1, err := e.Probability(ctx, id, u, tup, ProbOpts{Default: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Probability(ctx, id, u, tup, ProbOpts{Default: 0.5, UseCore: true})
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= 0 || p1 >= 1 {
		t.Fatalf("probability = %v, want in (0,1)", p1)
	}
	if diff := p1 - p2; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("core probability %v differs from full %v", p2, p1)
	}

	cost, err := e.Trust(ctx, id, u, tup, TrustOpts{Default: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Cheapest derivation of (a) is the self-loop used twice: tropical
	// cost 2 under unit costs (monomial degree with multiplicity).
	if cost != 2 {
		t.Fatalf("trust cost = %v, want 2", cost)
	}

	conf, err := e.Trust(ctx, id, u, tup, TrustOpts{Default: 0.9, Confidence: true})
	if err != nil {
		t.Fatal(err)
	}
	if conf <= 0 || conf > 1 {
		t.Fatalf("confidence = %v, want in (0,1]", conf)
	}

	del, err := e.Deletion(ctx, id, u, []string{"r1"})
	if err != nil {
		t.Fatal(err)
	}
	// Deleting the self-loop r1 kills (b)'s only derivation r2*r3? No:
	// (b)'s derivation is r3*r2 — unaffected; (a) survives via r2*r3.
	if len(del.Survivors) != 2 || len(del.Lost) != 0 {
		t.Fatalf("deletion r1: survivors=%v lost=%v, want 2/0", del.Survivors, del.Lost)
	}
	del, err = e.Deletion(ctx, id, u, []string{"r2"})
	if err != nil {
		t.Fatal(err)
	}
	// Without r2 the 2-cycle is gone: only (a) via the self-loop remains.
	if len(del.Survivors) != 1 || len(del.Lost) != 1 {
		t.Fatalf("deletion r2: survivors=%v lost=%v, want 1/1", del.Survivors, del.Lost)
	}
}

func TestDropInstance(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, paperInstance)
	if ok, err := e.DropInstance(id); !ok || err != nil {
		t.Fatalf("drop: ok=%t err=%v", ok, err)
	}
	if ok, _ := e.DropInstance(id); ok {
		t.Fatal("second drop succeeded")
	}
	if _, err := e.Query(context.Background(), id, query.MustParseUnion(paperQuery)); err == nil {
		t.Fatal("query on dropped instance succeeded")
	}
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "r", Values: []string{"a", "a"}}}); err == nil {
		t.Fatal("ingest on dropped instance succeeded")
	}
}

func TestEngineClose(t *testing.T) {
	e := New(Config{Workers: 2})
	id := mustCreate(t, e, paperInstance)
	e.Close()
	e.Close() // idempotent
	if _, err := e.Query(context.Background(), id, query.MustParseUnion(paperQuery)); err == nil {
		t.Fatal("query after close succeeded")
	}
	if _, err := e.CreateInstance(""); err == nil {
		t.Fatal("create after close succeeded")
	}
}

func TestBadQueryDoesNotKillEngine(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, paperInstance)
	// A query over a relation with the wrong arity errors cleanly.
	u := query.MustParseUnion("ans(x) :- R(x,y,z)")
	if _, err := e.Query(context.Background(), id, u); err == nil {
		t.Fatal("want arity error")
	}
	// Engine still serves afterwards.
	if _, err := e.Query(context.Background(), id, query.MustParseUnion(paperQuery)); err != nil {
		t.Fatal(err)
	}
}
