package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"provmin/internal/query"
)

// TestStressParallelQueryAndIngest hammers one instance with concurrent
// queries, core requests (sharing the minimization cache) and tuple ingest.
// Run under -race it exercises the instance read-write lock, the ingest
// batcher's single-writer flush, the worker pool and the LRU cache at once.
// Correctness assertions are deliberately weak (no panics, no errors,
// monotone visibility) — the value is the interleaving coverage.
func TestStressParallelQueryAndIngest(t *testing.T) {
	e := New(Config{Workers: 4, CacheSize: 4, IngestBatchSize: 8})
	defer e.Close()
	id := mustCreate(t, e, paperInstance)
	ctx := context.Background()

	queries := []*query.UCQ{
		query.MustParseUnion("ans(x) :- R(x,y), R(y,x)"),
		query.MustParseUnion("ans(x) :- R(x,x)"),
		query.MustParseUnion("ans(x,y) :- R(x,y)"),
		query.MustParseUnion("ans(x) :- R(x,y); ans(x) :- R(y,x)"),
		query.MustParseUnion("ans(x) :- R(x,y), R(y,z)"),
	}

	const (
		readers       = 6
		writers       = 3
		opsPerReader  = 30
		factsPerWrite = 4
		writesPer     = 10
	)

	var wg sync.WaitGroup
	errc := make(chan error, readers*opsPerReader+writers*writesPer)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesPer; i++ {
				facts := make([]Fact, factsPerWrite)
				for j := range facts {
					v1 := fmt.Sprintf("w%d_%d_%d", w, i, j)
					facts[j] = Fact{Rel: "R", Tag: "t" + v1, Values: []string{v1, "a"}}
				}
				if err := e.Ingest(id, facts); err != nil {
					errc <- fmt.Errorf("ingest: %w", err)
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < opsPerReader; i++ {
				u := queries[(r+i)%len(queries)]
				switch i % 3 {
				case 0:
					if _, err := e.Query(ctx, id, u); err != nil {
						errc <- fmt.Errorf("query: %w", err)
					}
				case 1:
					if _, err := e.Core(ctx, id, u); err != nil {
						errc <- fmt.Errorf("core: %w", err)
					}
				case 2:
					if _, err := e.Probability(ctx, id, u, []string{"a"}, ProbOpts{Default: 0.5, UseCore: true, MCSamples: 50, Seed: int64(i)}); err != nil {
						errc <- fmt.Errorf("prob: %w", err)
					}
				}
			}
		}(r)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// All writes landed: 3 tuples seeded + writers*writesPer*factsPerWrite
	// distinct tuples.
	info, ok := e.Instance(id)
	if !ok {
		t.Fatal("instance vanished")
	}
	want := 3 + writers*writesPer*factsPerWrite
	if info.Tuples != want {
		t.Fatalf("tuples = %d, want %d", info.Tuples, want)
	}

	// Every query result is now a consistent snapshot containing all rows:
	// full scan must see exactly want tuples.
	out, err := e.Query(ctx, id, query.MustParseUnion("ans(x,y) :- R(x,y)"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Len() != want {
		t.Fatalf("scan sees %d tuples, want %d", out.Result.Len(), want)
	}
}

// TestStressMinimizeShared checks the cache under concurrent Minimize
// calls: every caller for one canonical key must get an equivalent
// p-minimal form, whether it computed or cached.
func TestStressMinimizeShared(t *testing.T) {
	e := New(Config{Workers: 4, CacheSize: 2})
	defer e.Close()
	u := query.MustParseUnion("ans(x) :- R(x,y), R(y,x)")
	want, _ := e.Minimize(mustClone(u))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				min, _ := e.Minimize(mustClone(u))
				if min.String() != want.String() {
					t.Errorf("concurrent Minimize diverged:\n%s\nvs\n%s", min, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func mustClone(u *query.UCQ) *query.UCQ { return u.Clone() }

// TestIngestRacingDrop closes instances while ingest is in flight: every
// Ingest call must return (applied or "instance closed"), never hang, and
// concurrent DropInstance/Close on one batcher must not panic.
func TestIngestRacingDrop(t *testing.T) {
	for round := 0; round < 20; round++ {
		e := New(Config{Workers: 2, IngestBatchSize: 4, IngestMaxWait: 100 * time.Microsecond})
		id := mustCreate(t, e, "")
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					v := fmt.Sprintf("g%d_%d", g, i)
					// Either outcome is fine; hanging is not.
					_ = e.Ingest(id, []Fact{{Rel: "R", Tag: v, Values: []string{v}}})
				}
			}(g)
		}
		wg.Add(2)
		go func() { defer wg.Done(); e.DropInstance(id) }()
		go func() { defer wg.Done(); e.Close() }()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: ingest or close hung", round)
		}
	}
}

// TestMinimizeSingleflight floods one cold key: exactly one MinProv run
// (one cache miss) must serve every concurrent caller.
func TestMinimizeSingleflight(t *testing.T) {
	e := New(Config{Workers: 4, CacheSize: 8})
	defer e.Close()
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			u := query.MustParseUnion("ans(x) :- R(x,y), R(y,x), R(x,w)")
			if min, _ := e.Minimize(u); min == nil {
				t.Error("Minimize returned nil")
			}
		}()
	}
	close(start)
	wg.Wait()
	if misses := e.Metrics().Counter("engine_cache_misses_total").Value(); misses != 1 {
		t.Fatalf("cache misses = %d, want 1 (singleflight)", misses)
	}
	if hits := e.Metrics().Counter("engine_cache_hits_total").Value(); hits != 15 {
		t.Fatalf("cache hits = %d, want 15", hits)
	}
}
