package engine

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"provmin/internal/metrics"
	"provmin/internal/persist"
	"provmin/internal/tier"
)

// handoffEngine opens a durable engine over a *shared* cold backend — two
// of these with distinct data dirs model two cluster nodes sharing one blob
// store. owns filters boot adoption (nil adopts everything); adopt is the
// AdoptOnMiss policy. IngestBatchSize 1 makes every single-fact Ingest its
// own WAL record, so tests control sequence numbers precisely.
func handoffEngine(t *testing.T, dir string, backend tier.SnapshotBackend, owns func(string) bool, adopt func(string) AdoptMode) *Engine {
	t.Helper()
	reg := metrics.NewRegistry()
	l, err := persist.Open(persist.Options{Dir: dir, Shards: 4, Cold: backend, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{
		Workers: 2, CacheSize: 8, IngestBatchSize: 1, IngestMaxWait: time.Millisecond,
		Persist: l, Backend: backend, JanitorInterval: -1, Metrics: reg, AdoptOnMiss: adopt,
	})
	if err := e.AdoptCold(context.Background(), owns); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestReleaseAdoptHandoff walks the full rebalance handoff: node A releases
// an instance into the shared backend, node B adopts it, queries answer
// byte-identically, B accepts new writes, and A's crash replay forgets the
// instance without GC'ing B's blob.
func TestReleaseAdoptHandoff(t *testing.T) {
	ctx := context.Background()
	backend, err := tier.NewFSBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	a := handoffEngine(t, dirA, backend, nil, nil)

	if _, err := a.CreateInstanceWithID("h1", paperInstance); err != nil {
		t.Fatal(err)
	}
	if err := a.Ingest("h1", []Fact{{Rel: "R", Tag: "r4", Values: []string{"b", "b"}}}); err != nil {
		t.Fatal(err)
	}
	want, wantVer := coreString(t, a, "h1", paperQuery)

	if err := a.ReleaseInstance(ctx, "h1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Instance("h1"); ok {
		t.Fatal("released instance still visible on the releasing node")
	}
	if exists, err := tier.Exists(ctx, backend, "h1"); err != nil || !exists {
		t.Fatalf("released blob must stay in the shared backend (exists=%t err=%v)", exists, err)
	}

	b := handoffEngine(t, dirB, backend, func(string) bool { return false }, nil)
	defer b.Close()
	if err := b.AdoptInstance(ctx, "h1"); err != nil {
		t.Fatal(err)
	}
	res := b.Residency()
	if len(res.Cold) != 1 || res.Cold[0] != "h1" {
		t.Fatalf("adopter residency cold = %v, want [h1]", res.Cold)
	}
	got, gotVer := coreString(t, b, "h1", paperQuery)
	if got != want || gotVer != wantVer {
		t.Fatalf("core after handoff:\n%s (v%d)\nwant:\n%s (v%d)", got, gotVer, want, wantVer)
	}
	// The adopter owns it now: writes must work.
	if err := b.Ingest("h1", []Fact{{Rel: "R", Tag: "r5", Values: []string{"a", "c"}}}); err != nil {
		t.Fatalf("ingest on adopter: %v", err)
	}

	// "Crash" A (abandon un-Closed) and reopen with a ring that no longer
	// owns h1: replay must forget the instance and boot GC must leave the
	// blob — it belongs to B.
	a2 := handoffEngine(t, dirA, backend, func(id string) bool { return id != "h1" }, nil)
	defer a2.Close()
	if _, ok := a2.Instance("h1"); ok {
		t.Fatal("released instance resurrected by the old owner's replay")
	}
	if exists, err := tier.Exists(ctx, backend, "h1"); err != nil || !exists {
		t.Fatalf("old owner's boot GC deleted the adopter's blob (exists=%t err=%v)", exists, err)
	}
}

// TestAdoptRewritesForeignLastSeq is the cross-node sequence-space
// regression: a released blob carries the old owner's WAL LastSeq, which is
// garbage in the adopter's log. Without the adopt-time rewrite to zero,
// the adopter's replay would skip its own post-adopt ingest records (the
// blob's foreign LastSeq exceeds their local seqs) — silent data loss.
func TestAdoptRewritesForeignLastSeq(t *testing.T) {
	ctx := context.Background()
	backend, err := tier.NewFSBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := handoffEngine(t, t.TempDir(), backend, nil, nil)
	if _, err := a.CreateInstanceWithID("h1", ""); err != nil {
		t.Fatal(err)
	}
	// Drive A's WAL sequence well past anything B will reach.
	for i := 0; i < 20; i++ {
		f := Fact{Rel: "R", Tag: fmt.Sprintf("a%d", i), Values: []string{fmt.Sprintf("x%d", i), "y"}}
		if err := a.Ingest("h1", []Fact{f}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.ReleaseInstance(ctx, "h1"); err != nil {
		t.Fatal(err)
	}

	dirB := t.TempDir()
	b := handoffEngine(t, dirB, backend, func(string) bool { return false }, nil)
	if err := b.AdoptInstance(ctx, "h1"); err != nil {
		t.Fatal(err)
	}
	blob, err := backend.Get(ctx, "h1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := persist.DecodeInstanceBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSeq != 0 {
		t.Fatalf("adopted blob LastSeq = %d, want 0 (rebased into local WAL space)", st.LastSeq)
	}
	// B's local history: fault-in (seq 1), one ingest (seq 2) — both far
	// below the 21+ the blob used to carry.
	if err := b.Ingest("h1", []Fact{{Rel: "R", Tag: "b0", Values: []string{"p", "q"}}}); err != nil {
		t.Fatal(err)
	}
	want, wantVer := coreString(t, b, "h1", "ans(x) :- R(x,y)")
	info, _ := b.Instance("h1")
	// Abandon B un-Closed: crash.

	b2 := handoffEngine(t, dirB, backend, func(string) bool { return false }, nil)
	defer b2.Close()
	info2, ok := b2.Instance("h1")
	if !ok || info2.Tuples != info.Tuples {
		t.Fatalf("recovered instance = %+v, want %d tuples (post-adopt ingest lost?)", info2, info.Tuples)
	}
	got, gotVer := coreString(t, b2, "h1", "ans(x) :- R(x,y)")
	if got != want || gotVer != wantVer {
		t.Fatalf("core after adopter crash:\n%s (v%d)\nwant:\n%s (v%d)", got, gotVer, want, wantVer)
	}
}

// TestBorrowedCopyReadOnly exercises the replica read path: AdoptBorrowed
// loads another node's blob as a read-only copy that serves queries,
// rejects writes, is skipped by snapshots, and is discarded — never GC'd
// from the shared backend — by drop and evict.
func TestBorrowedCopyReadOnly(t *testing.T) {
	ctx := context.Background()
	backend, err := tier.NewFSBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// The "owner" writes the blob and goes away.
	a := handoffEngine(t, t.TempDir(), backend, nil, nil)
	if _, err := a.CreateInstanceWithID("h1", paperInstance); err != nil {
		t.Fatal(err)
	}
	want, wantVer := coreString(t, a, "h1", paperQuery)
	if err := a.ReleaseInstance(ctx, "h1"); err != nil {
		t.Fatal(err)
	}
	a.Close()

	b := handoffEngine(t, t.TempDir(), backend, func(string) bool { return false },
		func(string) AdoptMode { return AdoptBorrowed })
	defer b.Close()

	got, gotVer := coreString(t, b, "h1", paperQuery)
	if got != want || gotVer != wantVer {
		t.Fatalf("borrowed core:\n%s (v%d)\nwant:\n%s (v%d)", got, gotVer, want, wantVer)
	}
	info, ok := b.Instance("h1")
	if !ok || !info.Borrowed || info.State != "borrowed" {
		t.Fatalf("borrowed instance info = %+v, want State=borrowed", info)
	}
	err = b.Ingest("h1", []Fact{{Rel: "R", Tag: "w", Values: []string{"z", "z"}}})
	if !errors.Is(err, ErrBorrowed) {
		t.Fatalf("ingest on borrowed copy: err = %v, want ErrBorrowed", err)
	}
	// Snapshots must not capture foreign state as our own.
	if _, err := b.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if gen, err := b.Generation("h1"); err != nil || gen != wantVer {
		t.Fatalf("borrowed generation = %d (err %v), want %d", gen, err, wantVer)
	}
	// Evict discards the copy without touching the blob; the next read
	// borrows it again.
	if err := b.EvictInstance("h1"); err != nil {
		t.Fatalf("evict borrowed: %v", err)
	}
	if exists, err := tier.Exists(ctx, backend, "h1"); err != nil || !exists {
		t.Fatalf("evicting a borrowed copy touched the owner's blob (exists=%t err=%v)", exists, err)
	}
	if got, _ := coreString(t, b, "h1", paperQuery); got != want {
		t.Fatalf("re-borrow after evict: core mismatch:\n%s\nwant:\n%s", got, want)
	}
	// Drop likewise discards without GC.
	if ok, err := b.DropInstance("h1"); !ok || err != nil {
		t.Fatalf("drop borrowed: ok=%t err=%v", ok, err)
	}
	if exists, err := tier.Exists(ctx, backend, "h1"); err != nil || !exists {
		t.Fatalf("dropping a borrowed copy deleted the owner's blob (exists=%t err=%v)", exists, err)
	}
	if n := b.reg.Counter("engine_borrows_total").Value(); n < 2 {
		t.Fatalf("engine_borrows_total = %d, want >= 2", n)
	}
}

// TestAdoptOnMissOwned: the ring owner heals the crash window between a
// peer's release and its own adopt — a lookup miss with an existing blob
// adopts it transparently, and the instance is fully owned (writable).
func TestAdoptOnMissOwned(t *testing.T) {
	ctx := context.Background()
	backend, err := tier.NewFSBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := handoffEngine(t, t.TempDir(), backend, nil, nil)
	if _, err := a.CreateInstanceWithID("h1", paperInstance); err != nil {
		t.Fatal(err)
	}
	want, wantVer := coreString(t, a, "h1", paperQuery)
	if err := a.ReleaseInstance(ctx, "h1"); err != nil {
		t.Fatal(err)
	}
	a.Close()

	b := handoffEngine(t, t.TempDir(), backend, func(string) bool { return false },
		func(string) AdoptMode { return AdoptOwned })
	defer b.Close()
	got, gotVer := coreString(t, b, "h1", paperQuery)
	if got != want || gotVer != wantVer {
		t.Fatalf("adopt-on-miss core:\n%s (v%d)\nwant:\n%s (v%d)", got, gotVer, want, wantVer)
	}
	info, ok := b.Instance("h1")
	if !ok || info.Borrowed {
		t.Fatalf("adopt-on-miss instance info = %+v, want owned", info)
	}
	if err := b.Ingest("h1", []Fact{{Rel: "R", Tag: "w", Values: []string{"z", "z"}}}); err != nil {
		t.Fatalf("ingest after adopt-on-miss: %v", err)
	}
	// A genuinely unknown id must still be a miss, not an adopt loop.
	if _, err := b.Generation("nope"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("unknown id: err = %v, want ErrUnknownInstance", err)
	}
}

// TestCreateInstanceWithID covers the explicit-id create: duplicates (both
// resident and cold) are 409s, unsafe ids are rejected, and the generated
// id counter never collides with explicit numeric ids.
func TestCreateInstanceWithID(t *testing.T) {
	e, _ := newTieredEngine(t, Config{})
	if _, err := e.CreateInstanceWithID("node-a.1", paperInstance); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateInstanceWithID("node-a.1", ""); !errors.Is(err, ErrInstanceExists) {
		t.Fatalf("duplicate resident id: err = %v, want ErrInstanceExists", err)
	}
	if err := e.EvictInstance("node-a.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateInstanceWithID("node-a.1", ""); !errors.Is(err, ErrInstanceExists) {
		t.Fatalf("duplicate cold id: err = %v, want ErrInstanceExists", err)
	}
	if _, err := e.CreateInstanceWithID("../escape", ""); !errors.Is(err, ErrBadInstanceID) {
		t.Fatalf("unsafe id: err = %v, want ErrBadInstanceID", err)
	}
	if _, err := e.CreateInstanceWithID("i400", ""); err != nil {
		t.Fatal(err)
	}
	gen := mustCreate(t, e, "")
	if n := numericInstanceID(gen); n <= 400 {
		t.Fatalf("generated id %s not bumped past explicit i400", gen)
	}
}

// gatedPutBackend blocks the first Put until released — a hook to park an
// eviction mid-blob-write while Close races it.
type gatedPutBackend struct {
	tier.SnapshotBackend
	entered chan struct{}
	gate    chan struct{}
	once    sync.Once
}

func (b *gatedPutBackend) Put(ctx context.Context, id string, data []byte) error {
	b.once.Do(func() {
		close(b.entered)
		<-b.gate
	})
	return b.SnapshotBackend.Put(ctx, id, data)
}

// TestCloseWaitsForInFlightEviction is the shutdown-ordering regression:
// Close must wait out an eviction that is mid-flight (here: parked inside
// the backend Put), so the evict's WAL record lands before the log's final
// sync. Before the closeMu barrier, the acknowledged record could sit
// unflushed in the WAL writer's buffer behind Close's last sync — lost on
// the next boot even though the caller saw success.
func TestCloseWaitsForInFlightEviction(t *testing.T) {
	dir := t.TempDir()
	fsb, err := tier.NewFSBackend(filepath.Join(dir, "cold"))
	if err != nil {
		t.Fatal(err)
	}
	backend := &gatedPutBackend{
		SnapshotBackend: fsb,
		entered:         make(chan struct{}),
		gate:            make(chan struct{}),
	}
	reg := metrics.NewRegistry()
	l, err := persist.Open(persist.Options{Dir: dir, Shards: 4, Cold: backend, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{
		Workers: 2, IngestBatchSize: 1, IngestMaxWait: time.Millisecond,
		Persist: l, Backend: backend, JanitorInterval: -1, Metrics: reg,
	})
	id := mustCreate(t, e, paperInstance)

	evictDone := make(chan error, 1)
	go func() { evictDone <- e.EvictInstance(id) }()
	<-backend.entered // the eviction is parked inside Put

	closeDone := make(chan struct{})
	go func() {
		e.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
		t.Fatal("Close returned while an eviction was mid-blob-write")
	case <-time.After(100 * time.Millisecond):
	}
	close(backend.gate)
	if err := <-evictDone; err != nil {
		t.Fatalf("eviction overlapping Close: %v", err)
	}
	<-closeDone

	// The acknowledged evict must have reached the log before its final
	// sync: recovery sees the instance cold, not resident.
	e2 := tieredDurableEngine(t, dir, fsb)
	defer e2.Close()
	res := e2.Residency()
	if len(res.Cold) != 1 || res.Cold[0] != id {
		t.Fatalf("after close-racing evict, recovery cold = %v resident = %+v, want [%s] cold (evict record lost?)",
			res.Cold, res.Resident, id)
	}
}
