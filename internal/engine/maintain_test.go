package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/persist"
	"provmin/internal/query"
)

// shadowApply mirrors an engine ingest batch onto a plain instance, the
// reference state for differential checks.
func shadowApply(t *testing.T, d *db.Instance, facts []Fact) {
	t.Helper()
	for _, f := range facts {
		if err := persist.ApplyFact(d, f); err != nil {
			t.Fatalf("shadow apply %v: %v", f, err)
		}
	}
}

// coldEval evaluates u cold against the shadow instance.
func coldEval(t *testing.T, u *query.UCQ, d *db.Instance) string {
	t.Helper()
	res, err := eval.EvalUCQ(u, d)
	if err != nil {
		t.Fatal(err)
	}
	return res.String()
}

// TestMaintainDifferentialFixed is the tentpole acceptance test: across a
// fixed sequence of additive ingest batches, every warmed /query entry —
// including a UCQ≠, which stays monotone under pure insertion — is
// promoted (still a cache hit, flagged maintained, at the new generation)
// and its result is byte-identical to a cold re-evaluation of the same
// facts.
func TestMaintainDifferentialFixed(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, paperInstance)
	shadow, err := db.ParseInstance(paperInstance)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	queries := []*query.UCQ{
		query.MustParseUnion(paperQuery),
		query.MustParseUnion("ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)"),
	}
	for _, u := range queries {
		if _, err := e.Query(ctx, id, u); err != nil {
			t.Fatal(err)
		}
	}

	batches := [][]Fact{
		{{Rel: "R", Tag: "g1", Values: []string{"b", "b"}}},
		// two rows that join with each other — the delta-rule
		// double-counting trap
		{{Rel: "R", Tag: "g2", Values: []string{"c", "d"}}, {Rel: "R", Tag: "g3", Values: []string{"d", "c"}}},
		// a batch creating a new relation the queries never mention:
		// promotion is a pure restamp
		{{Rel: "S", Tag: "g4", Values: []string{"a"}}},
	}
	for i, facts := range batches {
		if err := e.Ingest(id, facts); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		shadowApply(t, shadow, facts)
		for _, u := range queries {
			out, err := e.Query(ctx, id, u)
			if err != nil {
				t.Fatal(err)
			}
			if !out.CacheHit || !out.MaintainedHit {
				t.Fatalf("batch %d query %s: hit=%t maintained=%t, want promoted hit", i, u, out.CacheHit, out.MaintainedHit)
			}
			if got, want := out.Result.String(), coldEval(t, u, shadow); got != want {
				t.Fatalf("batch %d query %s: promoted result diverges from cold evaluation\npromoted:\n%s\ncold:\n%s", i, u, got, want)
			}
		}
	}

	if p := e.Metrics().Counter("engine_result_cache_promotions_total").Value(); p < int64(len(batches)) {
		t.Errorf("promotions = %d, want >= %d", p, len(batches))
	}
	if n := e.Metrics().Histogram("engine_delta_eval_seconds").Count(); n == 0 {
		t.Error("engine_delta_eval_seconds never observed")
	}
	st := e.ResultCacheStatsNow()
	if !st.Maintain || st.Promotions == 0 {
		t.Errorf("stats: maintain=%t promotions=%d", st.Maintain, st.Promotions)
	}
}

// TestMaintainDifferentialRandomized interleaves randomized additive
// batches with queries and checks every served result byte-for-byte
// against a cold evaluation of the shadow state.
func TestMaintainDifferentialRandomized(t *testing.T) {
	queries := []*query.UCQ{
		query.MustParseUnion("ans(x) :- R(x,y), R(y,x)"),
		query.MustParseUnion("ans(x) :- R(x,y), R(y,z), R(x,w)"),
		query.MustParseUnion("ans(x,z) :- R(x,y), S(y), R(y,z)"),
		query.MustParseUnion("ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)"),
	}
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dom := []string{"a", "b", "c", "d", "e"}
			e := newTestEngine(t)
			id := mustCreate(t, e, paperInstance)
			shadow, err := db.ParseInstance(paperInstance)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			tagN := 0
			for step := 0; step < 60; step++ {
				if rng.Intn(2) == 0 {
					var facts []Fact
					for i := 0; i < 1+rng.Intn(3); i++ {
						tagN++
						tag := fmt.Sprintf("z%d", tagN)
						if rng.Intn(4) == 0 {
							facts = append(facts, Fact{Rel: "S", Tag: tag, Values: []string{dom[rng.Intn(len(dom))]}})
						} else {
							facts = append(facts, Fact{Rel: "R", Tag: tag, Values: []string{dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))]}})
						}
					}
					if err := e.Ingest(id, facts); err != nil {
						t.Fatal(err)
					}
					shadowApply(t, shadow, facts)
				} else {
					u := queries[rng.Intn(len(queries))]
					out, err := e.Query(ctx, id, u)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := out.Result.String(), coldEval(t, u, shadow); got != want {
						t.Fatalf("step %d query %s (hit=%t maintained=%t):\ngot:\n%s\nwant:\n%s",
							step, u, out.CacheHit, out.MaintainedHit, got, want)
					}
				}
			}
		})
	}
}

// TestMaintainConcurrentReaders runs queries concurrently with ingests and
// checks every result against the expected state of the generation it
// claims — the promote-vs-put race under real interleavings (meaningful
// chiefly under -race).
func TestMaintainConcurrentReaders(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, paperInstance)
	ctx := context.Background()
	u := query.MustParseUnion(paperQuery)

	// Precompute the expected result at every generation. Ingest batches
	// of one fact each keep generation = base + number of applied facts
	// (Ingest returns after its batch is applied, so applying them
	// sequentially pins the mapping even though batching is timing-based).
	shadow, err := db.ParseInstance(paperInstance)
	if err != nil {
		t.Fatal(err)
	}
	out0, err := e.Query(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	base := out0.Version
	const nBatches = 40
	facts := make([]Fact, nBatches)
	expected := map[uint64]string{base: coldEval(t, u, shadow)}
	for i := range facts {
		facts[i] = Fact{Rel: "R", Tag: fmt.Sprintf("c%d", i), Values: []string{fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1)}}
		shadowApply(t, shadow, facts[i:i+1])
		expected[base+uint64(i)+1] = coldEval(t, u, shadow)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, err := e.Query(ctx, id, u)
				if err != nil {
					errs <- err.Error()
					return
				}
				want, ok := expected[out.Version]
				if !ok {
					errs <- fmt.Sprintf("unexpected generation %d", out.Version)
					return
				}
				if got := out.Result.String(); got != want {
					errs <- fmt.Sprintf("generation %d (hit=%t maintained=%t): wrong result\ngot:\n%s\nwant:\n%s",
						out.Version, out.CacheHit, out.MaintainedHit, got, want)
					return
				}
			}
		}()
	}
	for i := range facts {
		if err := e.Ingest(id, facts[i:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}

	// The final state must also be byte-identical to a cold evaluation.
	out, err := e.Query(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Result.String(), expected[base+nBatches]; got != want {
		t.Fatalf("final result:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMaintainOverwriteFallsBack: a batch that replaces an existing
// tuple's tag is a mutation, not an insertion — the whole batch must fall
// back to invalidation, and the next query must see the new tag.
func TestMaintainOverwriteFallsBack(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, paperInstance)
	ctx := context.Background()
	u := query.MustParseUnion(paperQuery)
	if _, err := e.Query(ctx, id, u); err != nil {
		t.Fatal(err)
	}
	// paperInstance already holds R(a,a) tagged r1; retag it.
	if err := e.Ingest(id, []Fact{
		{Rel: "R", Tag: "new", Values: []string{"a", "a"}},
		{Rel: "R", Tag: "extra", Values: []string{"b", "b"}},
	}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Query(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHit || out.MaintainedHit {
		t.Fatalf("tag-replacing batch was maintained: hit=%t maintained=%t", out.CacheHit, out.MaintainedHit)
	}
	d, err := db.ParseInstance(paperInstance)
	if err != nil {
		t.Fatal(err)
	}
	d.Lookup("R").MustAdd("new", "a", "a")
	d.MustAdd("R", "extra", "b", "b")
	if got, want := out.Result.String(), coldEval(t, u, d); got != want {
		t.Fatalf("result after overwrite fallback:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if p := e.Metrics().Counter("engine_result_cache_promotions_total").Value(); p != 0 {
		t.Errorf("promotions = %d, want 0", p)
	}
}

// TestMaintainArityConflictInvalidates: a batch creating a relation whose
// arity conflicts with a cached query's atom flips that query from
// vacuously-empty to erroring — the entry must be dropped, not promoted.
func TestMaintainArityConflictInvalidates(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, paperInstance)
	ctx := context.Background()
	u := query.MustParseUnion("ans(x) :- R(x,y), T(x)") // T absent: empty result
	out, err := e.Query(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Len() != 0 {
		t.Fatalf("query over missing relation not empty: %s", out.Result)
	}
	// Create T with arity 2 — the cached query's T(x) now errors.
	if err := e.Ingest(id, []Fact{{Rel: "T", Tag: "t1", Values: []string{"a", "b"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(ctx, id, u); err == nil {
		t.Fatal("expected arity error after T was created with arity 2")
	}
	// A matching-arity creation is maintainable: U(x) with arity 1.
	u2 := query.MustParseUnion("ans(x) :- R(x,x), U(x)")
	if _, err := e.Query(ctx, id, u2); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(id, []Fact{{Rel: "U", Tag: "u1", Values: []string{"a"}}}); err != nil {
		t.Fatal(err)
	}
	out2, err := e.Query(ctx, id, u2)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.CacheHit || !out2.MaintainedHit {
		t.Fatalf("matching-arity creation not maintained: hit=%t maintained=%t", out2.CacheHit, out2.MaintainedHit)
	}
	if out2.Result.Len() != 1 {
		t.Fatalf("maintained result after U creation:\n%s", out2.Result)
	}
}

// TestMaintainCoreEntries: /core caches under the p-minimal form — a UCQ≠
// in general, since p-minimization introduces disequalities systematically
// — and that entry rides the same promotion path as /query entries.
func TestMaintainCoreEntries(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, paperInstance)
	ctx := context.Background()

	queries := []*query.UCQ{
		query.MustParseUnion("ans(x) :- R(x,y)"), // minimizes into a union with v1 != v2
		query.MustParseUnion(paperQuery),
	}
	for _, q := range queries {
		if _, err := e.Core(ctx, id, q); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "g1", Values: []string{"b", "b"}}}); err != nil {
		t.Fatal(err)
	}
	// Every core entry is promoted and byte-identical to a fully cold core
	// of the same facts.
	cold := newTestEngine(t)
	cid := mustCreate(t, cold, paperInstance+"\nR g1 b b")
	for _, q := range queries {
		out, err := e.Core(ctx, id, q)
		if err != nil {
			t.Fatal(err)
		}
		if !out.ResultCacheHit || !out.MaintainedHit {
			t.Fatalf("core %s after ingest: result hit=%t maintained=%t", q, out.ResultCacheHit, out.MaintainedHit)
		}
		coldOut, err := cold.Core(ctx, cid, q)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := out.Result.String(), coldOut.Result.String(); got != want {
			t.Fatalf("maintained core %s diverges from cold core:\ngot:\n%s\nwant:\n%s", q, got, want)
		}
	}
}

// TestMaintainAblationDisabled: with DisableResultMaintenance every ingest
// falls back to invalidation and nothing is ever promoted.
func TestMaintainAblationDisabled(t *testing.T) {
	e := New(Config{Workers: 2, DisableResultMaintenance: true})
	t.Cleanup(e.Close)
	id := mustCreate(t, e, paperInstance)
	ctx := context.Background()
	u := query.MustParseUnion(paperQuery)
	if _, err := e.Query(ctx, id, u); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "g1", Values: []string{"b", "b"}}}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Query(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHit || out.MaintainedHit {
		t.Fatalf("ablation engine served from cache after ingest: hit=%t maintained=%t", out.CacheHit, out.MaintainedHit)
	}
	st := e.ResultCacheStatsNow()
	if st.Maintain || st.Promotions != 0 {
		t.Errorf("ablation stats: maintain=%t promotions=%d", st.Maintain, st.Promotions)
	}
}

// TestPromoteVsPutRace pins the ordering contract deterministically: a
// stale-generation put (a slow reader that evaluated before the batch)
// must never overwrite an entry a promotion already advanced.
func TestPromoteVsPutRace(t *testing.T) {
	e := newTestEngine(t)
	c := e.newResultCache()
	u := query.MustParseUnion(paperQuery)
	d, err := db.ParseInstance(paperInstance)
	if err != nil {
		t.Fatal(err)
	}
	oldRes, err := eval.EvalUCQ(u, d)
	if err != nil {
		t.Fatal(err)
	}
	c.put("k", 1, u, oldRes)

	d.MustAdd("R", "g1", "b", "b")
	delta, err := eval.EvalUCQDelta(u, d, map[string]int{"R": d.Lookup("R").Len() - 1})
	if err != nil {
		t.Fatal(err)
	}
	if !c.promote("k", 1, 2, delta) {
		t.Fatal("promotion failed")
	}
	promoted, maintained, ok := c.get("k", 2)
	if !ok || !maintained {
		t.Fatalf("promoted entry not served: ok=%t maintained=%t", ok, maintained)
	}

	// The stale put must lose; the promoted entry keeps serving.
	c.put("k", 1, u, oldRes)
	res, maintained, ok := c.get("k", 2)
	if !ok || !maintained {
		t.Fatalf("stale put displaced the promoted entry: ok=%t maintained=%t", ok, maintained)
	}
	if res.String() != promoted.String() {
		t.Fatal("promoted result changed after stale put")
	}

	// A same-generation put (a reader that evaluated at the promoted
	// generation) may replace the entry — and clears the maintained flag.
	fresh, err := eval.EvalUCQ(u, d)
	if err != nil {
		t.Fatal(err)
	}
	c.put("k", 2, u, fresh)
	res, maintained, ok = c.get("k", 2)
	if !ok || maintained {
		t.Fatalf("same-generation put: ok=%t maintained=%t", ok, maintained)
	}
	if res.String() != promoted.String() {
		t.Fatal("fresh evaluation at the promoted generation differs from the promoted result")
	}

	// Promoting an entry that is no longer at oldGen is a no-op.
	if c.promote("k", 1, 3, delta) {
		t.Fatal("promotion applied to an entry at the wrong generation")
	}
}

// TestMaintainNotTrustedAcrossRecovery: promoted entries live only in RAM.
// After a crash (engine abandoned, never closed) the rebuilt engine starts
// with a cold cache at the exact recovered generation; the first query is
// a miss whose result matches what the promoted entry served pre-crash.
func TestMaintainNotTrustedAcrossRecovery(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, 2)
	id := mustCreate(t, e, paperInstance)
	ctx := context.Background()
	u := query.MustParseUnion(paperQuery)
	if _, err := e.Query(ctx, id, u); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "g1", Values: []string{"b", "b"}}}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Query(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit || !out.MaintainedHit {
		t.Fatalf("pre-crash query: hit=%t maintained=%t", out.CacheHit, out.MaintainedHit)
	}
	preCrash, preGen := out.Result.String(), out.Version

	// Crash: abandon without Close. Acknowledged writes are in the WAL.
	e2 := durableEngine(t, dir, 2)
	t.Cleanup(e2.Close)
	out2, err := e2.Query(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	if out2.CacheHit || out2.MaintainedHit {
		t.Fatalf("recovered engine served a cached result cold boot should not have: hit=%t maintained=%t",
			out2.CacheHit, out2.MaintainedHit)
	}
	if out2.Version != preGen {
		t.Fatalf("recovered generation %d, want %d", out2.Version, preGen)
	}
	if out2.Result.String() != preCrash {
		t.Fatalf("recovered result diverges from pre-crash promoted result:\nrecovered:\n%s\npre-crash:\n%s",
			out2.Result, preCrash)
	}
	e.Close() // release the abandoned engine's resources
}
