package engine

import (
	"fmt"
	"sync"
	"time"

	"provmin/internal/db"
)

// Fact is one annotated tuple to ingest: relation name, provenance tag and
// the tuple's values.
type Fact struct {
	Rel    string   `json:"rel"`
	Tag    string   `json:"tag"`
	Values []string `json:"values"`
}

// ingestBatcher coalesces concurrent tuple ingests into one write-lock
// acquisition. Every Instance write invalidates the relation's column
// indexes and contends with readers, so under concurrent load it pays to
// gather facts for up to maxWait (or until batchSize is reached) and apply
// them in a single critical section. Callers block until their facts are
// durably applied, so the batching is invisible except in throughput.
type ingestBatcher struct {
	inst      *instance
	batchSize int
	maxWait   time.Duration

	in        chan *ingestReq
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

type ingestReq struct {
	facts []Fact
	resp  chan error
}

func newIngestBatcher(inst *instance, batchSize int, maxWait time.Duration) *ingestBatcher {
	if batchSize < 1 {
		batchSize = 256
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	b := &ingestBatcher{
		inst:      inst,
		batchSize: batchSize,
		maxWait:   maxWait,
		in:        make(chan *ingestReq, 64),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go b.loop()
	return b
}

// add enqueues a group of facts and blocks until the batch containing them
// has been applied. All facts of one call are applied atomically with
// respect to queries (they land inside one write-lock hold).
func (b *ingestBatcher) add(facts []Fact) error {
	req := &ingestReq{facts: facts, resp: make(chan error, 1)}
	select {
	case b.in <- req:
	case <-b.stop:
		return fmt.Errorf("engine: instance closed")
	}
	// b.in is buffered, so the send can also succeed after the loop's
	// final drain has finished — waiting on resp alone would then hang
	// forever. done closing means no goroutine will read b.in again; one
	// last non-blocking resp check covers the race where the drain did
	// handle this request before exiting.
	select {
	case err := <-req.resp:
		return err
	case <-b.done:
		select {
		case err := <-req.resp:
			return err
		default:
			return fmt.Errorf("engine: instance closed")
		}
	}
}

// close drains outstanding requests and stops the loop. Safe for concurrent
// callers (Engine.Close racing DropInstance).
func (b *ingestBatcher) close() {
	b.closeOnce.Do(func() { close(b.stop) })
	<-b.done
}

func (b *ingestBatcher) loop() {
	defer close(b.done)

	var batch []*ingestReq
	var pending int
	var timer *time.Timer
	var timerC <-chan time.Time

	reset := func() {
		if timer != nil {
			timer.Stop()
		}
		batch, pending, timer, timerC = nil, 0, nil, nil
	}

	for {
		select {
		case req := <-b.in:
			batch = append(batch, req)
			pending += len(req.facts)
			if len(batch) == 1 {
				timer = time.NewTimer(b.maxWait)
				timerC = timer.C
			}
			if pending >= b.batchSize {
				b.flush(batch)
				reset()
			}

		case <-timerC:
			b.flush(batch)
			reset()

		case <-b.stop:
			// Serve requests that raced the close, then exit.
			for {
				select {
				case req := <-b.in:
					batch = append(batch, req)
				default:
					b.flush(batch)
					reset()
					return
				}
			}
		}
	}
}

// flush applies every request's facts under one write lock. A bad fact
// fails only its own request: earlier facts of that request stay applied
// (Instance.Add is not transactional), which the API documents as
// partial-failure semantics per batch entry.
func (b *ingestBatcher) flush(batch []*ingestReq) {
	if len(batch) == 0 {
		return
	}
	b.inst.mu.Lock()
	applied := 0
	for _, req := range batch {
		var err error
		for _, f := range req.facts {
			if e := addFact(b.inst.db, f); e != nil {
				err = e
				break
			}
			applied++
		}
		req.resp <- err
	}
	if applied > 0 {
		b.inst.version++
	}
	b.inst.mu.Unlock()
}

func addFact(d *db.Instance, f Fact) error {
	if f.Rel == "" {
		return fmt.Errorf("fact missing relation name")
	}
	if f.Tag == "" {
		return fmt.Errorf("fact %s%v missing provenance tag", f.Rel, f.Values)
	}
	rel, err := d.Relation(f.Rel, len(f.Values))
	if err != nil {
		return err
	}
	return rel.Add(f.Tag, f.Values...)
}
