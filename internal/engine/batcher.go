package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/persist"
)

// Fact is one annotated tuple to ingest: relation name, provenance tag and
// the tuple's values. It is the persist WAL fact type, so ingest batches
// flow into the log without conversion.
type Fact = persist.Fact

// ingestBatcher coalesces concurrent tuple ingests into one write-lock
// acquisition. Every Instance write invalidates the relation's column
// indexes and contends with readers, so under concurrent load it pays to
// gather facts for up to maxWait (or until batchSize is reached) and apply
// them in a single critical section. When the engine is durable, one batch
// is also one WAL record and one (group-shared) fsync — the fsync batching
// piggybacks on the ingest batching. Callers block until their facts are
// durably applied, so the batching is invisible except in throughput.
type ingestBatcher struct {
	eng       *Engine
	inst      *instance
	batchSize int
	maxWait   time.Duration

	in        chan *ingestReq
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	// addMu/adders/stopped fence add against close: an add either observes
	// stopped and fails before sending, or registers in adders so close
	// waits for its send to land before stopping the loop. The loop's final
	// drain therefore observes every queued request, and every caller gets
	// exactly one response — the previous non-blocking resp check could
	// race a request into the channel buffer after the final drain and
	// silently strand it.
	addMu   sync.Mutex //provlint:lockorder 4
	adders  sync.WaitGroup
	stopped bool
}

// errInstanceClosed rejects adds that arrive at (or after) close.
var errInstanceClosed = errors.New("engine: instance closed")

type ingestReq struct {
	facts []Fact
	resp  chan error
}

func newIngestBatcher(eng *Engine, inst *instance, batchSize int, maxWait time.Duration) *ingestBatcher {
	if batchSize < 1 {
		batchSize = 256
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	b := &ingestBatcher{
		eng:       eng,
		inst:      inst,
		batchSize: batchSize,
		maxWait:   maxWait,
		in:        make(chan *ingestReq, 64),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go b.loop()
	return b
}

// add enqueues a group of facts and blocks until the batch containing them
// has been applied. All facts of one call are applied atomically with
// respect to queries (they land inside one write-lock hold). Exactly one
// outcome is delivered per call: errInstanceClosed means the facts were
// never enqueued; any other return came from the flush that owned the
// request — so an error is never lost and never delivered twice, even when
// close runs concurrently.
func (b *ingestBatcher) add(facts []Fact) error {
	b.addMu.Lock()
	if b.stopped {
		b.addMu.Unlock()
		return errInstanceClosed
	}
	b.adders.Add(1)
	b.addMu.Unlock()
	req := &ingestReq{facts: facts, resp: make(chan error, 1)}
	b.in <- req // the loop drains b.in until close's adders.Wait returns
	b.adders.Done()
	return <-req.resp
}

// close fences out new adds, waits for in-flight sends to land in the
// channel, then stops the loop; its final drain serves every queued
// request. Safe for concurrent callers (Engine.Close racing DropInstance).
func (b *ingestBatcher) close() {
	b.closeOnce.Do(func() {
		b.addMu.Lock()
		b.stopped = true
		b.addMu.Unlock()
		b.adders.Wait()
		close(b.stop)
	})
	<-b.done
}

func (b *ingestBatcher) loop() {
	defer close(b.done)

	var batch []*ingestReq
	var pending int
	var timer *time.Timer
	var timerC <-chan time.Time

	reset := func() {
		if timer != nil {
			timer.Stop()
		}
		batch, pending, timer, timerC = nil, 0, nil, nil
	}

	for {
		select {
		case req := <-b.in:
			batch = append(batch, req)
			pending += len(req.facts)
			if len(batch) == 1 {
				timer = time.NewTimer(b.maxWait)
				timerC = timer.C
			}
			if pending >= b.batchSize {
				b.flush(batch)
				reset()
			}

		case <-timerC:
			b.flush(batch)
			reset()

		case <-b.stop:
			// Serve requests that raced the close, then exit.
			for {
				select {
				case req := <-b.in:
					batch = append(batch, req)
				default:
					b.flush(batch)
					reset()
					return
				}
			}
		}
	}
}

// flush validates every request, write-ahead-logs the valid ones as a
// single record (when durable), and applies them under one write lock.
// Requests are all-or-nothing: a bad fact rejects its whole request and
// nothing of it is applied or logged — so every logged record replays
// cleanly, and the in-memory state never runs ahead of the WAL.
func (b *ingestBatcher) flush(batch []*ingestReq) {
	if len(batch) == 0 {
		return
	}
	valid, rejected := b.validate(batch)
	if len(valid) > 0 {
		var facts []Fact
		for _, req := range valid {
			facts = append(facts, req.facts...)
		}
		// The batch bumps the instance generation by one; the stamp is
		// computed here and written into the WAL record, so replay restores
		// the exact generation every acknowledged batch produced (and with
		// it, result-cache correctness across crashes). Reading version
		// outside the lock is safe: this loop is the instance's only writer.
		b.inst.mu.RLock()
		gen := b.inst.version + 1
		b.inst.mu.RUnlock()
		applied := false
		var delta, newBytes int64
		// Maintenance bookkeeping: pre-insert row counts of the relations
		// this batch touches (rows are append-only, so the inserted facts
		// are exactly the suffix past oldLen), arities of relations the
		// batch creates, and whether any fact replaced an existing tuple's
		// tag — a replacement is a mutation, not an insertion, and voids
		// the additive delta rules for the whole batch.
		oldLen := map[string]int{}
		created := map[string]int{}
		overwrite := false
		var plan []maintainTask
		var newSymbols int
		apply := func(seq uint64) {
			applied = true
			b.inst.mu.Lock()
			symsBefore := b.inst.db.Symbols().Len()
			for _, f := range facts {
				if _, seen := oldLen[f.Rel]; !seen {
					if rel := b.inst.db.Lookup(f.Rel); rel != nil {
						oldLen[f.Rel] = rel.Len()
					} else {
						oldLen[f.Rel] = 0
						created[f.Rel] = len(f.Values)
					}
				}
				if !overwrite {
					if rel := b.inst.db.Lookup(f.Rel); rel != nil && rel.Contains(f.Values...) {
						overwrite = true
					}
				}
				// The size delta must be read before the fact lands: it
				// compares the fact against the current relation state.
				delta += factDelta(b.inst.db, f)
				// Validation guarantees application cannot fail.
				_ = persist.ApplyFact(b.inst.db, f)
			}
			b.inst.bytes += delta
			newBytes = b.inst.bytes
			b.inst.version = gen
			b.inst.lastSeq = seq
			// Every cached result now carries a stale stamp. Purely
			// additive batches keep eligible entries alive for delta
			// maintenance (promoted to gen right after this lock is
			// released, before the batch is acknowledged); anything else
			// falls back to the eager sweep so dead entries don't stay
			// pinned until LRU pressure. Both run under the write lock:
			// evalCached puts only while holding the read lock over the
			// same generation it stamped.
			if b.eng.cfg.DisableResultMaintenance || overwrite {
				b.inst.results.invalidateAll()
			} else {
				plan = b.inst.results.planMaintenance(gen-1, created)
			}
			newSymbols = b.inst.db.Symbols().Len() - symsBefore
			b.inst.mu.Unlock()
		}
		if log := b.eng.log; log != nil {
			rec := persist.Record{Op: persist.OpIngest, ID: b.inst.id, Facts: facts, Gen: gen}
			if _, err := log.Commit(rec, apply); err != nil {
				// Mirror the create/drop wording: an append failure means
				// nothing was applied; a post-apply fsync failure means the
				// facts are visible (and logged) but durability was not
				// confirmed — the caller must not assume either way.
				if applied {
					err = fmt.Errorf("wal: applied but not confirmed durable: %w", err)
				} else {
					err = fmt.Errorf("wal: not applied: %w", err)
				}
				for _, req := range valid {
					req.resp <- err
				}
				valid = nil
			}
		} else {
			apply(0)
		}
		if applied {
			b.eng.noteInstanceBytes(b.inst.id, delta, newBytes)
			if newSymbols > 0 {
				// Distinct values interned (and sketch updates absorbed) by
				// ingest, across all instances — the growth side of the
				// cardinality statistics the join planner reads.
				b.eng.reg.Counter("engine_interned_symbols_total").Add(int64(newSymbols))
			}
			if len(plan) > 0 {
				b.maintain(plan, gen, oldLen)
			}
		}
	}
	for _, req := range valid {
		req.resp <- nil
	}
	for req, err := range rejected {
		req.resp <- err
	}
}

// maintain promotes every surviving cached entry across the batch it just
// applied: the delta rules are evaluated over the inserted row suffixes and
// merged into a copy of each cached result, restamping it to gen. It runs
// in the batcher goroutine between applying a batch and acknowledging it —
// this loop is the instance's only writer, so under the read lock the
// database is exactly the state generation gen names, and once add returns
// to a caller the cache has already been promoted (no window where a
// follow-up query pays a cold re-evaluation). Concurrent readers that miss
// meanwhile re-evaluate at gen and win the put race; promote then leaves
// their fresher entries alone.
func (b *ingestBatcher) maintain(plan []maintainTask, gen uint64, oldLen map[string]int) {
	b.inst.mu.RLock()
	defer b.inst.mu.RUnlock()
	for _, task := range plan {
		start := time.Now()
		delta, err := eval.EvalUCQDeltaOpts(task.u, b.inst.db, oldLen, b.eng.cfg.Eval)
		if err != nil {
			// planMaintenance filters every known-failing shape; anything
			// that still errors is dropped rather than promoted wrongly.
			b.inst.results.invalidateKey(task.key)
			continue
		}
		b.eng.resStats.deltaEval.Observe(time.Since(start))
		b.inst.results.promote(task.key, gen-1, gen, delta)
	}
}

// validate checks every request's facts against the instance schema before
// anything is logged or applied. The batcher goroutine is the only writer,
// but validation still takes the read lock so it composes with any future
// writer. Relations a valid earlier request would create are visible to
// later requests in the same batch (pending arities); a rejected request
// contributes nothing.
func (b *ingestBatcher) validate(batch []*ingestReq) (valid []*ingestReq, rejected map[*ingestReq]error) {
	rejected = map[*ingestReq]error{}
	pending := map[string]int{}
	b.inst.mu.RLock()
	defer b.inst.mu.RUnlock()
	for _, req := range batch {
		tentative := map[string]int{}
		var err error
		for _, f := range req.facts {
			if err = checkFact(b.inst.db, pending, tentative, f); err != nil {
				break
			}
		}
		if err != nil {
			rejected[req] = err
			continue
		}
		for rel, ar := range tentative {
			pending[rel] = ar
		}
		valid = append(valid, req)
	}
	return valid, rejected
}

// checkFact validates one fact against the live schema plus the arities of
// relations that earlier facts in this batch will create.
func checkFact(d *db.Instance, pending, tentative map[string]int, f Fact) error {
	if f.Rel == "" {
		return fmt.Errorf("fact missing relation name")
	}
	if f.Tag == "" {
		return fmt.Errorf("fact %s%v missing provenance tag", f.Rel, f.Values)
	}
	if rel := d.Lookup(f.Rel); rel != nil {
		if rel.Arity != len(f.Values) {
			return fmt.Errorf("relation %s: tuple %v has arity %d, want %d", f.Rel, f.Values, len(f.Values), rel.Arity)
		}
		return nil
	}
	if ar, ok := pending[f.Rel]; ok && ar != len(f.Values) {
		return fmt.Errorf("relation %s: tuple %v has arity %d, want %d", f.Rel, f.Values, len(f.Values), ar)
	}
	if ar, ok := tentative[f.Rel]; ok && ar != len(f.Values) {
		return fmt.Errorf("relation %s: tuple %v has arity %d, want %d", f.Rel, f.Values, len(f.Values), ar)
	}
	tentative[f.Rel] = len(f.Values)
	return nil
}
