package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"provmin/internal/db"
	"provmin/internal/metrics"
	"provmin/internal/persist"
	"provmin/internal/store"
	"provmin/internal/tier"
)

// tieredDurableEngine opens (or reopens) a durable engine with a cold
// backend wired into both layers — engine.Config.Backend for the residency
// machinery, persist.Options.Cold for WAL replay — exactly as cmd/provmind
// does. Not registered for cleanup: crash tests abandon it un-Closed.
func tieredDurableEngine(t *testing.T, dir string, backend tier.SnapshotBackend) *Engine {
	t.Helper()
	reg := metrics.NewRegistry()
	l, err := persist.Open(persist.Options{Dir: dir, Shards: 4, Cold: backend, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{
		Workers: 2, CacheSize: 8, IngestBatchSize: 8, IngestMaxWait: time.Millisecond,
		Persist: l, Backend: backend, JanitorInterval: -1, Metrics: reg,
	})
	if err := e.AdoptCold(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestTieredRecoveryEvictedStaysCold is the crash half of the tiering
// contract: an instance evicted before the "kill" must come back *cold* —
// registered but not replayed into RAM — and the first core query after
// fault-in must be byte-identical to the pre-evict response.
func TestTieredRecoveryEvictedStaysCold(t *testing.T) {
	dir := t.TempDir()
	backend, err := tier.NewFSBackend(filepath.Join(dir, "cold"))
	if err != nil {
		t.Fatal(err)
	}
	e := tieredDurableEngine(t, dir, backend)
	id1 := mustCreate(t, e, paperInstance)
	id2 := mustCreate(t, e, "")
	if err := e.Ingest(id2, []Fact{{Rel: "T", Tag: "t1", Values: []string{"x"}}}); err != nil {
		t.Fatal(err)
	}
	wantCore, wantVer := coreString(t, e, id1, paperQuery)
	if err := e.EvictInstance(id1); err != nil {
		t.Fatal(err)
	}
	// Abandon e — the process "dies" here with id1 cold and id2 resident.

	e2 := tieredDurableEngine(t, dir, backend)
	defer e2.Close()
	res := e2.Residency()
	if len(res.Cold) != 1 || res.Cold[0] != id1 {
		t.Fatalf("cold after recovery = %v, want [%s]", res.Cold, id1)
	}
	if len(res.Resident) != 1 || res.Resident[0].ID != id2 {
		t.Fatalf("resident after recovery = %+v, want just %s", res.Resident, id2)
	}
	if got := e2.reg.Gauge("persist_replay_cold_instances").Value(); got != 1 {
		t.Fatalf("replay cold gauge = %d, want 1", got)
	}
	gotCore, gotVer := coreString(t, e2, id1, paperQuery)
	if gotCore != wantCore || gotVer != wantVer {
		t.Fatalf("first core after fault-in:\n%s (v%d)\nwant pre-evict:\n%s (v%d)", gotCore, gotVer, wantCore, wantVer)
	}
	// New ids must not collide with anything, resident or cold.
	id3 := mustCreate(t, e2, "")
	if id3 == id1 || id3 == id2 {
		t.Fatalf("recovered engine reused instance id %s", id3)
	}
}

// TestTieredRecoveryLayersPostFaultInIngest: state written after a
// fault-in must survive a crash — replay loads the blob at the fault-in
// record and layers the later ingest records on top.
func TestTieredRecoveryLayersPostFaultInIngest(t *testing.T) {
	dir := t.TempDir()
	backend, err := tier.NewFSBackend(filepath.Join(dir, "cold"))
	if err != nil {
		t.Fatal(err)
	}
	e := tieredDurableEngine(t, dir, backend)
	id := mustCreate(t, e, paperInstance)
	if err := e.EvictInstance(id); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "r4", Values: []string{"b", "b"}}}); err != nil {
		t.Fatal(err)
	}
	want, wantVer := coreString(t, e, id, paperQuery)
	// Abandon.

	e2 := tieredDurableEngine(t, dir, backend)
	defer e2.Close()
	info, ok := e2.Instance(id)
	if !ok || info.Tuples != 4 {
		t.Fatalf("recovered instance = %+v, want 4 tuples", info)
	}
	got, gotVer := coreString(t, e2, id, paperQuery)
	if got != want || gotVer != wantVer {
		t.Fatalf("core after recovery:\n%s (v%d)\nwant:\n%s (v%d)", got, gotVer, want, wantVer)
	}
}

// TestAdoptColdGCAndOrphans: boot adoption deletes blobs of dropped
// instances (a crash may have lost the live deletion), adopts foreign
// blobs as cold entries, and bumps the id counter past them.
func TestAdoptColdGCAndOrphans(t *testing.T) {
	dir := t.TempDir()
	backend, err := tier.NewFSBackend(filepath.Join(dir, "cold"))
	if err != nil {
		t.Fatal(err)
	}
	e := tieredDurableEngine(t, dir, backend)
	id := mustCreate(t, e, paperInstance)
	if err := e.EvictInstance(id); err != nil {
		t.Fatal(err)
	}
	if ok, err := e.DropInstance(id); !ok || err != nil {
		t.Fatalf("drop: ok=%t err=%v", ok, err)
	}
	ctx := context.Background()
	// Resurrect the dropped instance's blob (as if the live Delete failed)
	// and plant an orphan with a high numeric id, as an object store shared
	// across rebuilds would.
	if err := backend.Put(ctx, id, mustBlob(t, "zombie")); err != nil {
		t.Fatal(err)
	}
	orphanID := "i900"
	if err := backend.Put(ctx, orphanID, mustBlob(t, orphanID)); err != nil {
		t.Fatal(err)
	}
	// Abandon.

	e2 := tieredDurableEngine(t, dir, backend)
	defer e2.Close()
	if _, ok := e2.Instance(id); ok {
		t.Fatalf("dropped instance %s resurrected by adoption", id)
	}
	if _, err := backend.Get(ctx, id); err == nil {
		t.Fatalf("dropped instance %s blob not GCed at boot", id)
	}
	res := e2.Residency()
	if len(res.Cold) != 1 || res.Cold[0] != orphanID {
		t.Fatalf("cold after adoption = %v, want [%s]", res.Cold, orphanID)
	}
	next := mustCreate(t, e2, "")
	if numericInstanceID(next) <= 900 {
		t.Fatalf("new id %s not bumped past adopted blob %s", next, orphanID)
	}
}

// mustBlob encodes a minimal cold blob carrying the given instance id. The
// zombie blob reuses the dropped id, so its content never matters; the
// orphan's id must round-trip.
func mustBlob(t *testing.T, id string) []byte {
	t.Helper()
	d, err := db.ParseInstance(paperInstance)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := persist.EncodeInstanceBlob(persist.InstanceState{ID: id, DB: d, Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestEvictFlushesPendingBatch: eviction's batcher fence must drain a
// pending (un-flushed) ingest batch into the instance before the snapshot
// is captured — the acknowledged facts travel with the blob.
func TestEvictFlushesPendingBatch(t *testing.T) {
	// A long max-wait parks the batch in the batcher loop; only the
	// eviction fence (or the 200ms backstop) flushes it.
	e, _ := newTieredEngine(t, Config{IngestBatchSize: 1 << 20, IngestMaxWait: 200 * time.Millisecond})
	id := mustCreate(t, e, "")
	done := make(chan error, 1)
	go func() {
		done <- e.Ingest(id, []Fact{{Rel: "R", Tag: "p1", Values: []string{"a", "b"}}})
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the batcher
	if err := e.EvictInstance(id); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("ingest overlapping evict: %v", err)
	}
	info, ok := e.Instance(id) // fault back in
	if !ok || info.Tuples != 1 {
		t.Fatalf("after fault-in: %+v, want the flushed fact present", info)
	}
}

// TestSnapshotNeverSplitsIngestBatch races Snapshot against concurrent
// multi-fact ingest batches and decodes every produced snapshot file: a
// captured instance must always hold a whole number of 5-fact requests.
// The fence being audited: persist.Log.Snapshot captures a shard under the
// same WAL mutex Commit applies under, and the batch apply runs inside
// Commit — so capture can never observe a half-applied batch.
func TestSnapshotNeverSplitsIngestBatch(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, 2)
	defer e.Close()
	id := mustCreate(t, e, "")
	const reqFacts = 5
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				facts := make([]Fact, reqFacts)
				for j := range facts {
					v := fmt.Sprintf("w%d-%d-%d", w, i, j)
					facts[j] = Fact{Rel: "R", Tag: v, Values: []string{v, v}}
				}
				if err := e.Ingest(id, facts); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		if _, err := e.Snapshot(); err != nil {
			t.Fatal(err)
		}
		if n := snapshotTuples(t, dir, id); n%reqFacts != 0 {
			t.Fatalf("snapshot %d captured %d tuples — a split %d-fact batch", i, n, reqFacts)
		}
	}
	close(stop)
	wg.Wait()
}

// snapshotTuples decodes the shard snapshot files under dir and returns
// the captured tuple count for one instance.
func snapshotTuples(t *testing.T, dir, id string) int {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		var hdr map[string]any
		if err := dec.Decode(&hdr); err != nil {
			t.Fatalf("%s: header: %v", path, err)
		}
		for dec.More() {
			var env store.Envelope
			if err := dec.Decode(&env); err != nil {
				t.Fatalf("%s: envelope: %v", path, err)
			}
			if env.Instance != id {
				continue
			}
			d, _, _, err := env.Decode()
			if err != nil {
				t.Fatalf("%s: decode %s: %v", path, id, err)
			}
			return d.NumTuples()
		}
	}
	return 0 // not captured yet
}
