package engine

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"time"

	"provmin/internal/persist"
)

// This file is the cluster handoff layer: moving instance ownership between
// nodes that share one cold snapshot backend, without row-level re-ingest.
//
//   - ReleaseInstance is the give-up side: snapshot the instance into its
//     cold blob (if resident), write an OpRelease WAL record, and forget it
//     locally. Unlike a drop, the blob stays — it now belongs to whichever
//     node adopts it — so replay must forget the instance without ever
//     GC'ing the blob (see persist.OpRelease).
//   - AdoptInstance is the take-over side: rewrite the blob so its WAL
//     bookkeeping is local-relative, then register it as a cold stub. The
//     first touch faults it in exactly like any evicted instance.
//   - borrowIn is the replica read path: load a blob this node does NOT own
//     as a read-only "borrowed" instance, letting a replica serve reads
//     while the owner is down, without ever acting like the owner.
//
// The LastSeq rewrite in AdoptInstance is load-bearing. A blob's LastSeq is
// a sequence number in the *originating node's* WAL; replayed against this
// node's WAL it would be garbage — typically large, making replay skip
// every local ingest record that follows a fault-in (silent data loss).
// Resetting it to zero makes the blob look like a fresh instance to the
// local history: fault-in records anchor it, and every later local ingest
// replays on top.

// AdoptInstance takes local ownership of an instance whose blob lives in
// the shared cold backend: the rebalance destination, and the AdoptOwned
// heal for the crash window between a peer's release and our adopt. It is
// idempotent — an id already resident (owned) or cold is left untouched. A
// resident borrowed copy is discarded first: the blob supersedes it, and
// adopting promotes this node from reader to owner. No WAL record is
// written; if we crash before the first fault-in, the ring-filtered
// AdoptCold at next boot re-adopts the blob.
func (e *Engine) AdoptInstance(ctx context.Context, id string) error {
	if e.backend == nil {
		return ErrNoTiering
	}
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() {
		return ErrClosed
	}
	release := e.lockResidency(id)
	defer release()

	sh := e.shardOf(id)
	sh.mu.RLock()
	in, resident := sh.instances[id]
	_, cold := sh.cold[id]
	sh.mu.RUnlock()
	if resident {
		if !in.borrowed {
			return nil
		}
		e.discardBorrowed(in)
	} else if cold {
		return nil
	}

	raw, err := e.backend.Get(ctx, id)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w %q (no cold blob to adopt)", ErrUnknownInstance, id)
		}
		return fmt.Errorf("adopt %s: %w", id, err)
	}
	st, err := persist.DecodeInstanceBlob(raw)
	if err != nil {
		return fmt.Errorf("adopt %s: %w", id, err)
	}
	if st.ID != id {
		return fmt.Errorf("adopt %s: blob carries instance id %q", id, st.ID)
	}
	// Rebase the blob into this node's WAL sequence space: a foreign
	// LastSeq replayed locally would make recovery skip local ingest
	// records. Rewriting before registering keeps the invariant that every
	// cold blob in the registry is replayable against the local log.
	if st.LastSeq != 0 {
		st.LastSeq = 0
		rebased, err := persist.EncodeInstanceBlob(st)
		if err != nil {
			return fmt.Errorf("adopt %s: %w", id, err)
		}
		if err := e.backend.Put(ctx, id, rebased); err != nil {
			return fmt.Errorf("adopt %s: %w", id, err)
		}
	}

	info := InstanceInfo{
		ID:        id,
		Relations: len(st.DB.Relations()),
		Tuples:    st.DB.NumTuples(),
		Version:   st.Version,
		State:     "cold",
	}
	adopted := false
	sh.mu.Lock()
	if !e.closed.Load() {
		if _, dup := sh.instances[id]; !dup {
			if _, dup := sh.cold[id]; !dup {
				sh.cold[id] = info
				sh.coldCount.Add(1)
				adopted = true
			}
		}
	}
	sh.mu.Unlock()
	if !adopted {
		return ErrClosed
	}
	// Generated ids must never collide with an adopted one.
	if n := numericInstanceID(id); n > 0 {
		for {
			cur := e.nextID.Load()
			if n <= cur || e.nextID.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	e.reg.Counter("engine_adopts_total").Inc()
	e.updateShardGauges()
	return nil
}

// ReleaseInstance gives up local ownership of an instance for a cluster
// handoff: its current state is made durable in the cold blob, an
// OpRelease record makes the local WAL forget it (without ever marking it
// dropped — the blob now belongs to the adopting node), and the RAM copy
// is discarded. A borrowed copy is simply discarded; releasing an unknown
// id is ErrUnknownInstance.
func (e *Engine) ReleaseInstance(ctx context.Context, id string) error {
	if e.backend == nil {
		return ErrNoTiering
	}
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() {
		return ErrClosed
	}
	release := e.lockResidency(id)
	defer release()

	sh := e.shardOf(id)
	sh.mu.RLock()
	in, resident := sh.instances[id]
	_, cold := sh.cold[id]
	sh.mu.RUnlock()
	switch {
	case resident && in.borrowed:
		e.discardBorrowed(in)
		return nil
	case resident:
		return e.releaseResident(ctx, in)
	case cold:
		return e.releaseCold(id)
	default:
		return fmt.Errorf("%w %q", ErrUnknownInstance, id)
	}
}

// releaseResident snapshots a resident owned instance into its blob and
// forgets it. Caller holds closeMu.RLock and the id's flight lock.
func (e *Engine) releaseResident(ctx context.Context, in *instance) error {
	id := in.id
	sh := e.shardOf(id)
	// Same write fence as eviction: after close returns, nothing mutates
	// the database, so the captured blob is the instance's final state.
	in.currentBatcher().close()

	in.mu.RLock()
	st := persist.InstanceState{ID: id, DB: in.db, Version: in.version, LastSeq: in.lastSeq}
	blob, err := persist.EncodeInstanceBlob(st)
	bytes := in.bytes
	in.mu.RUnlock()
	if err == nil {
		err = e.backend.Put(ctx, id, blob)
	}
	if err != nil {
		e.reviveBatcher(in)
		return fmt.Errorf("release %s: %w", id, err)
	}

	removed := false
	remove := func(uint64) {
		sh.mu.Lock()
		if cur, ok := sh.instances[id]; ok && cur == in {
			delete(sh.instances, id)
			sh.count.Add(-1)
			removed = true
		}
		sh.mu.Unlock()
	}
	if e.log != nil {
		if _, err := e.log.Commit(persist.Record{Op: persist.OpRelease, ID: id}, remove); err != nil {
			if !removed {
				e.reviveBatcher(in)
				return fmt.Errorf("release %s: %w", id, err)
			}
			// Applied but fsync unconfirmed: the blob is durable, so if the
			// release record is lost, replay resurrects the instance locally
			// — both nodes may own it until the next rebalance, never
			// neither. Report like other post-apply sync failures.
			e.finishRelease(in, bytes)
			return fmt.Errorf("release %s: applied but not confirmed durable: %w", id, err)
		}
	} else {
		remove(0)
	}
	if !removed {
		return fmt.Errorf("%w %q", ErrUnknownInstance, id)
	}
	e.finishRelease(in, bytes)
	return nil
}

// releaseCold forgets an already-cold instance: its blob is current by
// construction (eviction wrote it and cold state never mutates), so only
// the stub and the WAL history need to go.
func (e *Engine) releaseCold(id string) error {
	sh := e.shardOf(id)
	removed := false
	remove := func(uint64) {
		sh.mu.Lock()
		if _, ok := sh.cold[id]; ok {
			delete(sh.cold, id)
			sh.coldCount.Add(-1)
			removed = true
		}
		sh.mu.Unlock()
	}
	if e.log != nil {
		if _, err := e.log.Commit(persist.Record{Op: persist.OpRelease, ID: id}, remove); err != nil {
			if !removed {
				return fmt.Errorf("release %s: %w", id, err)
			}
			e.reg.Counter("engine_releases_total").Inc()
			e.updateShardGauges()
			return fmt.Errorf("release %s: applied but not confirmed durable: %w", id, err)
		}
	} else {
		remove(0)
	}
	if !removed {
		return fmt.Errorf("%w %q", ErrUnknownInstance, id)
	}
	e.reg.Counter("engine_releases_total").Inc()
	e.updateShardGauges()
	return nil
}

// finishRelease settles accounting after the registry forgot a resident
// instance (mirrors finishEvict, without the eviction metrics).
func (e *Engine) finishRelease(in *instance, bytes int64) {
	in.results.purge()
	e.tracker.Remove(in.id)
	e.residentBytes.Add(-bytes)
	e.reg.Counter("engine_releases_total").Inc()
	e.updateShardGauges()
}

// borrowIn loads another node's cold blob as a read-only borrowed copy —
// the replica read path when the ring owner is unreachable. No WAL record
// is written and the blob is read, never overwritten: the copy is a
// snapshot at borrow time, discarded by evict/drop/release and refreshed
// only by being discarded and borrowed again.
func (e *Engine) borrowIn(id string) error {
	if e.backend == nil {
		return ErrNoTiering
	}
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() {
		return ErrClosed
	}
	release := e.lockResidency(id)
	defer release()

	sh := e.shardOf(id)
	sh.mu.RLock()
	_, resident := sh.instances[id]
	_, cold := sh.cold[id]
	sh.mu.RUnlock()
	if resident || cold {
		return nil // lookup's retry will find (or fault in) the local entry
	}

	start := time.Now()
	raw, err := e.backend.Get(context.Background(), id)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w %q", ErrUnknownInstance, id)
		}
		return fmt.Errorf("borrow %s: %w", id, err)
	}
	st, err := persist.DecodeInstanceBlob(raw)
	if err != nil {
		return fmt.Errorf("borrow %s: %w", id, err)
	}
	if st.ID != id {
		return fmt.Errorf("borrow %s: blob carries instance id %q", id, st.ID)
	}

	in := &instance{id: id, borrowed: true, db: st.DB, version: st.Version, bytes: instanceCost(st.DB)}
	in.results = e.newResultCache()
	in.batcher = newIngestBatcher(e, in, e.cfg.IngestBatchSize, e.cfg.IngestMaxWait)

	installed := false
	sh.mu.Lock()
	if !e.closed.Load() {
		if _, dup := sh.instances[id]; !dup {
			sh.instances[id] = in
			sh.count.Add(1)
			installed = true
		}
	}
	sh.mu.Unlock()
	if !installed {
		in.batcher.close()
		return ErrClosed
	}
	in.mu.RLock()
	bytes := in.bytes
	in.mu.RUnlock()
	e.tracker.Add(id, bytes, time.Now())
	e.residentBytes.Add(bytes)
	e.reg.Counter("engine_borrows_total").Inc()
	e.reg.Histogram("engine_borrow_seconds").Observe(time.Since(start))
	e.updateShardGauges()
	return nil
}

// discardBorrowed drops a borrowed copy from RAM: no WAL record (it was
// never in the local history) and no blob GC (the blob is the owner's).
// Returns whether this call removed it. Caller holds the id's flight lock.
func (e *Engine) discardBorrowed(in *instance) bool {
	id := in.id
	sh := e.shardOf(id)
	removed := false
	sh.mu.Lock()
	if cur, ok := sh.instances[id]; ok && cur == in {
		delete(sh.instances, id)
		sh.count.Add(-1)
		removed = true
	}
	sh.mu.Unlock()
	if !removed {
		return false
	}
	in.mu.RLock()
	bytes := in.bytes
	in.mu.RUnlock()
	e.residentBytes.Add(-bytes)
	e.tracker.Remove(id)
	in.currentBatcher().close()
	in.results.purge()
	e.reg.Counter("engine_borrow_discards_total").Inc()
	e.updateShardGauges()
	return true
}
