package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"provmin/internal/eval"
	"provmin/internal/persist"
	"provmin/internal/query"
)

// durableEngine opens (or reopens) a durable engine over dir. The returned
// engine is NOT registered for cleanup — crash tests abandon it without
// Close, exactly like a SIGKILL would.
func durableEngine(t *testing.T, dir string, shards int) *Engine {
	t.Helper()
	l, err := persist.Open(persist.Options{Dir: dir, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{Workers: 2, CacheSize: 8, IngestBatchSize: 8, IngestMaxWait: time.Millisecond, Persist: l})
}

func coreString(t *testing.T, e *Engine, id, q string) (string, uint64) {
	t.Helper()
	out, err := e.Core(context.Background(), id, query.MustParseUnion(q))
	if err != nil {
		t.Fatal(err)
	}
	return out.Result.String(), out.Version
}

// TestRecoveryAfterAbandon is the in-process SIGKILL: acknowledged state
// must survive an engine that is never closed (WAL fsynced on ack, buffers
// never flushed by a shutdown path).
func TestRecoveryAfterAbandon(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, 4)
	id := mustCreate(t, e, paperInstance)
	if err := e.Ingest(id, []Fact{
		{Rel: "R", Tag: "r4", Values: []string{"b", "b"}},
		{Rel: "S", Tag: "s1", Values: []string{"a"}},
	}); err != nil {
		t.Fatal(err)
	}
	id2 := mustCreate(t, e, "")
	if err := e.Ingest(id2, []Fact{{Rel: "T", Tag: "t1", Values: []string{"x"}}}); err != nil {
		t.Fatal(err)
	}
	wantCore, wantVer := coreString(t, e, id, paperQuery)
	wantInfos := e.Instances()
	// Abandon e: no Close, no flush — the process "dies" here.

	e2 := durableEngine(t, dir, 4)
	defer e2.Close()
	gotInfos := e2.Instances()
	if len(gotInfos) != len(wantInfos) {
		t.Fatalf("recovered %d instances, want %d", len(gotInfos), len(wantInfos))
	}
	for i := range wantInfos {
		if gotInfos[i] != wantInfos[i] {
			t.Errorf("instance %d: recovered %+v, want %+v", i, gotInfos[i], wantInfos[i])
		}
	}
	gotCore, gotVer := coreString(t, e2, id, paperQuery)
	if gotCore != wantCore || gotVer != wantVer {
		t.Errorf("core after recovery:\n%s (v%d)\nwant:\n%s (v%d)", gotCore, gotVer, wantCore, wantVer)
	}

	// The recovered registry is live: new ids don't collide, ingest works.
	id3 := mustCreate(t, e2, "")
	if id3 == id || id3 == id2 {
		t.Fatalf("recovered engine reused instance id %s", id3)
	}
	if err := e2.Ingest(id, []Fact{{Rel: "R", Tag: "r9", Values: []string{"z", "z"}}}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryDropsStayDropped: a logged drop must not resurrect.
func TestRecoveryDropsStayDropped(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, 2)
	keep := mustCreate(t, e, paperInstance)
	gone := mustCreate(t, e, "")
	if ok, err := e.DropInstance(gone); !ok || err != nil {
		t.Fatalf("drop: ok=%t err=%v", ok, err)
	}

	e2 := durableEngine(t, dir, 2)
	defer e2.Close()
	if _, ok := e2.Instance(gone); ok {
		t.Errorf("dropped instance %s resurrected", gone)
	}
	if _, ok := e2.Instance(keep); !ok {
		t.Errorf("kept instance %s lost", keep)
	}
}

// TestSnapshotCompactThenRecover: compaction must not lose state, and
// post-compaction writes must layer correctly over the snapshot.
func TestSnapshotCompactThenRecover(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, 2)
	id := mustCreate(t, e, paperInstance)
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "r4", Values: []string{"c", "c"}}}); err != nil {
		t.Fatal(err)
	}
	stats, err := e.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instances != 1 || !stats.Compacted {
		t.Fatalf("compact stats = %+v", stats)
	}
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "r5", Values: []string{"d", "d"}}}); err != nil {
		t.Fatal(err)
	}
	want, wantVer := coreString(t, e, id, paperQuery)

	e2 := durableEngine(t, dir, 2)
	defer e2.Close()
	got, gotVer := coreString(t, e2, id, paperQuery)
	if got != want || gotVer != wantVer {
		t.Errorf("after compact+crash: core %q (v%d), want %q (v%d)", got, gotVer, want, wantVer)
	}
	info, _ := e2.Instance(id)
	if info.Tuples != 5 {
		t.Errorf("tuples = %d, want 5", info.Tuples)
	}
}

// TestRecoveryGenerationExact: with -wal-sync always and concurrent
// writers, the generation counter — the stamp result-cache correctness
// hangs on — must be restored exactly from snapshot + WAL after a crash,
// and queries at the recovered generation must re-materialize (never serve
// pre-crash cache state) with byte-identical results.
func TestRecoveryGenerationExact(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, 2)
	id := mustCreate(t, e, paperInstance)
	const writers, per = 6, 8
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := fmt.Sprintf("g%d_%d", g, i)
				if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "t" + v, Values: []string{v, v}}}); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	pre, _ := e.Instance(id)
	if pre.Version == 0 {
		t.Fatal("no ingest batch bumped the generation")
	}
	// Warm the result cache, then crash (abandon without Close).
	preCore, preVer := coreString(t, e, id, paperQuery)
	if preVer != pre.Version {
		t.Fatalf("core generation %d != instance generation %d", preVer, pre.Version)
	}

	e2 := durableEngine(t, dir, 2)
	defer e2.Close()
	got, _ := e2.Instance(id)
	if got.Version != pre.Version || got.Tuples != pre.Tuples {
		t.Fatalf("recovered (gen=%d tuples=%d), want (gen=%d tuples=%d)",
			got.Version, got.Tuples, pre.Version, pre.Tuples)
	}
	gotCore, gotVer := coreString(t, e2, id, paperQuery)
	if gotCore != preCore || gotVer != preVer {
		t.Errorf("core after recovery: %q (gen %d), want %q (gen %d)", gotCore, gotVer, preCore, preVer)
	}
	if hits := e2.Metrics().Counter("engine_result_cache_hits_total").Value(); hits != 0 {
		t.Errorf("recovered engine served %d result-cache hits before any warm-up", hits)
	}
}

// TestRecoveryGenerationInterval: under -wal-sync interval the fsync is a
// background tick; a crash loses exactly the suffix written after the last
// tick. Concurrent ingest runs before a deterministic tick (Log.Sync), a
// small unsynced suffix lands after it, and recovery must restore exactly
// the synced prefix — generation included.
func TestRecoveryGenerationInterval(t *testing.T) {
	dir := t.TempDir()
	l, err := persist.Open(persist.Options{
		Dir: dir, Shards: 2,
		Sync:         persist.SyncInterval,
		SyncInterval: time.Hour, // the only "tick" is the explicit Sync below
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 2, IngestBatchSize: 8, IngestMaxWait: time.Millisecond, Persist: l})
	id := mustCreate(t, e, paperInstance)
	const writers, per = 4, 6
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := fmt.Sprintf("g%d_%d", g, i)
				if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "t" + v, Values: []string{v, v}}}); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	synced, _ := e.Instance(id)
	if err := l.Sync(); err != nil { // the interval tick
		t.Fatal(err)
	}
	// Acknowledged but unsynced suffix: small enough to stay in the WAL's
	// write buffer, so the "crash" below genuinely loses it.
	for i := 0; i < 3; i++ {
		v := fmt.Sprintf("late%d", i)
		if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "t" + v, Values: []string{v, v}}}); err != nil {
			t.Fatal(err)
		}
	}

	e2 := durableEngine(t, dir, 2)
	defer e2.Close()
	got, _ := e2.Instance(id)
	if got.Version != synced.Version || got.Tuples != synced.Tuples {
		t.Fatalf("recovered (gen=%d tuples=%d), want synced prefix (gen=%d tuples=%d)",
			got.Version, got.Tuples, synced.Version, synced.Tuples)
	}
}

// TestEphemeralSnapshotRefused pins the ErrNoPersistence contract.
func TestEphemeralSnapshotRefused(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Snapshot(); err != ErrNoPersistence {
		t.Errorf("Snapshot on ephemeral engine: %v, want ErrNoPersistence", err)
	}
	if e.Durable() {
		t.Error("ephemeral engine claims durability")
	}
}

// TestFailedWALIngestNotApplied: when the WAL write fails, the ingest must
// be rejected AND invisible — memory never runs ahead of disk.
func TestFailedWALIngestNotApplied(t *testing.T) {
	dir := t.TempDir()
	l, err := persist.Open(persist.Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 2, IngestBatchSize: 4, IngestMaxWait: time.Millisecond, Persist: l})
	defer e.Close()
	id := mustCreate(t, e, paperInstance)

	l.InjectWriteError(fmt.Errorf("disk gone"))
	err = e.Ingest(id, []Fact{{Rel: "R", Tag: "rX", Values: []string{"q", "q"}}})
	if err == nil {
		t.Fatal("ingest acknowledged despite WAL failure")
	}
	info, _ := e.Instance(id)
	if info.Tuples != 3 || info.Version != 0 {
		t.Errorf("unlogged ingest visible: %+v", info)
	}
	l.InjectWriteError(nil)
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "rY", Values: []string{"q", "q"}}}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRegistryConcurrent hammers create/drop/lookup across stripes.
func TestShardedRegistryConcurrent(t *testing.T) {
	e := New(Config{Workers: 2, Shards: 4})
	defer e.Close()
	var wg sync.WaitGroup
	ids := make([][]string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				info, err := e.CreateInstance("")
				if err != nil {
					t.Error(err)
					return
				}
				ids[g] = append(ids[g], info.ID)
				if i%3 == 0 {
					e.DropInstance(info.ID)
					ids[g] = ids[g][:len(ids[g])-1]
				}
				if _, err := e.lookup(info.ID); i%3 != 0 && err != nil {
					t.Errorf("lookup %s: %v", info.ID, err)
				}
			}
		}(g)
	}
	wg.Wait()
	want := 0
	seen := map[string]bool{}
	for _, group := range ids {
		for _, id := range group {
			if seen[id] {
				t.Fatalf("duplicate instance id %s", id)
			}
			seen[id] = true
			want++
		}
	}
	if got := len(e.Instances()); got != want {
		t.Fatalf("instances = %d, want %d", got, want)
	}
	if g := e.Metrics().Gauge("engine_instances").Value(); g != int64(want) {
		t.Errorf("engine_instances gauge = %d, want %d", g, want)
	}
	if e.Metrics().Gauge("engine_shards").Value() != 4 {
		t.Error("engine_shards gauge wrong")
	}
	if e.Metrics().Gauge("engine_shard_max_instances").Value() < e.Metrics().Gauge("engine_shard_min_instances").Value() {
		t.Error("shard occupancy gauges inverted")
	}
}

// TestShardDistribution: with enough instances every stripe is occupied.
func TestShardDistribution(t *testing.T) {
	e := New(Config{Workers: 2, Shards: 8})
	defer e.Close()
	for i := 0; i < 200; i++ {
		if _, err := e.CreateInstance(""); err != nil {
			t.Fatal(err)
		}
	}
	if min := e.Metrics().Gauge("engine_shard_min_instances").Value(); min == 0 {
		t.Error("some stripe got no instances out of 200 — bad hash spread")
	}
}

// TestAllOrNothingIngest pins the transactional request semantics: one bad
// fact rejects its whole request, and a valid concurrent-batch neighbor
// still lands.
func TestAllOrNothingIngest(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, "")
	err := e.Ingest(id, []Fact{
		{Rel: "R", Tag: "r1", Values: []string{"a", "b"}}, // valid alone
		{Rel: "R", Tag: "r2", Values: []string{"a"}},      // arity clash
	})
	if err == nil {
		t.Fatal("mixed-arity request accepted")
	}
	info, _ := e.Instance(id)
	if info.Tuples != 0 {
		t.Errorf("rejected request partially applied: %d tuples", info.Tuples)
	}
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "r3", Values: []string{"x", "y"}}}); err != nil {
		t.Fatal(err)
	}
	info, _ = e.Instance(id)
	if info.Tuples != 1 || info.Version != 1 {
		t.Errorf("valid follow-up: %+v", info)
	}
}

// TestDurableIngestConcurrent: many writers over several durable instances;
// everything acked must be there after a crash, with matching versions.
func TestDurableIngestConcurrent(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, 4)
	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, mustCreate(t, e, ""))
	}
	const writers, per = 8, 15
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := fmt.Sprintf("g%d_%d", g, i)
				if err := e.Ingest(ids[g%len(ids)], []Fact{{Rel: "R", Tag: "t" + v, Values: []string{v}}}); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	want := e.Instances()
	// Crash.
	e2 := durableEngine(t, dir, 4)
	defer e2.Close()
	got := e2.Instances()
	total := 0
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("instance %s: recovered %+v, want %+v", want[i].ID, got[i], want[i])
		}
		total += got[i].Tuples
	}
	if total != writers*per {
		t.Errorf("recovered %d tuples, want %d", total, writers*per)
	}
}

// TestSymbolTableSurvivesRecovery: interned symbol ids are part of durable
// state (snapshot envelopes carry the table, WAL replay re-interns in
// apply order), so a recovered instance must answer interned-key queries
// byte-identically to string-key evaluation, and every stored row id must
// still resolve to the value the writer interned — across the snapshot,
// the compacted-WAL suffix, and a post-recovery ingest.
func TestSymbolTableSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, 4)
	id := mustCreate(t, e, paperInstance)
	// Values with empty strings and separator bytes: the symbols that make
	// naive serialization or rebuilding go wrong first.
	if err := e.Ingest(id, []Fact{
		{Rel: "R", Tag: "r4", Values: []string{"b", ""}},
		{Rel: "R", Tag: "r5", Values: []string{"a\x1f", "b"}},
	}); err != nil {
		t.Fatal(err)
	}
	// Snapshot + compact: recovery below must seed symbols from the
	// envelope, not rebuild them from replayed WAL records.
	if _, err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot suffix: replay must extend the seeded table.
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "r6", Values: []string{"", "c"}}}); err != nil {
		t.Fatal(err)
	}
	q := query.MustParseUnion("ans(x,y) :- R(x,y), R(y,x); ans(x,x) :- R(x,'')")
	want, _ := coreString(t, e, id, "ans(x) :- R(x,y), R(y,x)")
	wantQ, err := e.Query(context.Background(), id, q)
	if err != nil {
		t.Fatal(err)
	}
	// Abandon e: no Close, no flush — the process "dies" here.

	e2 := durableEngine(t, dir, 4)
	defer e2.Close()
	got, _ := coreString(t, e2, id, "ans(x) :- R(x,y), R(y,x)")
	if got != want {
		t.Errorf("recovered core diverges:\n%s\nvs\n%s", got, want)
	}
	gotQ, err := e2.Query(context.Background(), id, q)
	if err != nil {
		t.Fatal(err)
	}
	if gotQ.Result.String() != wantQ.Result.String() {
		t.Errorf("recovered query diverges:\n%s\nvs\n%s", gotQ.Result, wantQ.Result)
	}

	in, err := e2.lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	in.mu.RLock()
	// Every stored id must resolve back to the value it was interned from,
	// and interned vs string-key evaluation must agree on the recovered db.
	for _, rel := range in.db.Relations() {
		for i, row := range rel.Rows() {
			for c, v := range row.Tuple {
				if got := in.db.Symbols().Value(rel.RowIDs(i)[c]); got != v {
					t.Fatalf("%s row %d col %d: recovered id resolves to %q want %q",
						rel.Name, i, c, got, v)
				}
			}
		}
	}
	interned, err := eval.EvalUCQOpts(q, in.db, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	strKeys, err := eval.EvalUCQOpts(q, in.db, eval.Options{NoIntern: true})
	if err != nil {
		t.Fatal(err)
	}
	in.mu.RUnlock()
	if interned.String() != strKeys.String() {
		t.Errorf("interned eval diverges from string eval on recovered instance:\n%s\nvs\n%s",
			interned, strKeys)
	}

	// The recovered table keeps interning: new values get fresh ids, old
	// values their existing ones.
	if err := e2.Ingest(id, []Fact{{Rel: "R", Tag: "r7", Values: []string{"c", "zz"}}}); err != nil {
		t.Fatal(err)
	}
	got2, err := e2.Query(context.Background(), id, query.MustParseUnion("ans(x) :- R('', x), R(x, 'zz')"))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Result.Len() != 1 {
		t.Errorf("post-recovery ingest not joinable through recovered symbols:\n%s", got2.Result)
	}
}
