package engine

import (
	"container/list"
	"sync"

	"provmin/internal/eval"
	"provmin/internal/metrics"
	"provmin/internal/query"
)

// This file is the read-path result cache. The minimization cache
// (cache.go) already amortizes Algorithm 1 — the worst-case-exponential
// rewrite — but every /query and /core still re-evaluated the (p-minimal)
// query against the relation store on each request, even when the instance
// had not changed. The result cache closes that gap: each instance keeps an
// LRU of fully evaluated results, stamped with the instance's generation
// counter (the version bumped inside the ingest batcher's critical section
// and restored exactly by WAL replay). A lookup at an unchanged generation
// returns the materialized result without touching the relation store; any
// ingest bumps the generation, which invalidates every older stamp.

// resultCacheStats are the engine-wide counters and gauges shared by every
// instance's cache, so the registry shows one engine_result_cache_* family
// regardless of instance count.
type resultCacheStats struct {
	hits          *metrics.Counter
	misses        *metrics.Counter
	evictions     *metrics.Counter
	invalidations *metrics.Counter
	promotions    *metrics.Counter
	entries       *metrics.Gauge
	bytes         *metrics.Gauge
	deltaEval     *metrics.Histogram
}

func newResultCacheStats(reg *metrics.Registry) *resultCacheStats {
	return &resultCacheStats{
		hits:          reg.Counter("engine_result_cache_hits_total"),
		misses:        reg.Counter("engine_result_cache_misses_total"),
		evictions:     reg.Counter("engine_result_cache_evictions_total"),
		invalidations: reg.Counter("engine_result_cache_invalidations_total"),
		promotions:    reg.Counter("engine_result_cache_promotions_total"),
		entries:       reg.Gauge("engine_result_cache_entries"),
		bytes:         reg.Gauge("engine_result_cache_bytes"),
		deltaEval:     reg.Histogram("engine_delta_eval_seconds"),
	}
}

// resultCache is one instance's LRU of evaluated results. Entries are keyed
// by canonical query form and stamped with the generation they were
// computed at; a stamp mismatch is a miss that also drops the stale entry,
// so at most one materialization per query is ever retained. Cached results
// are shared with callers and must never be mutated.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int   // <= 0 disables the cache entirely
	maxBytes   int64 // <= 0 means no byte bound
	stats      *resultCacheStats

	order  *list.List               // front = most recent; values are *resultEntry
	items  map[string]*list.Element // canonical query -> element
	bytes  int64
	closed bool // set by purge: the owning instance was dropped
}

type resultEntry struct {
	key   string
	gen   uint64
	res   *eval.Result
	bytes int64
	// u is the query this entry materializes (for /core entries, the
	// p-minimal form the result was actually evaluated from) — the ingest
	// batcher re-plans it for delta maintenance. maintained marks entries
	// whose current stamp came from a promotion rather than a full
	// evaluation; it is reporting-only and never affects correctness.
	u          *query.UCQ
	maintained bool
}

func newResultCache(maxEntries int, maxBytes int64, stats *resultCacheStats) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		stats:      stats,
		order:      list.New(),
		items:      map[string]*list.Element{},
	}
}

// get returns the cached result for key if it was materialized at exactly
// generation gen, and whether that stamp came from a promotion. An entry at
// any other generation is stale — the instance changed since — and is
// removed on sight.
func (c *resultCache) get(key string, gen uint64) (res *eval.Result, maintained, ok bool) {
	if c.maxEntries <= 0 {
		// Disabled caches answer without touching the hit/miss counters: a
		// cache that cannot hold entries has no hit ratio, and counting
		// every request as a miss would drown the stats of enabled
		// instances sharing the engine-wide registry.
		return nil, false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.items[key]
	if !found {
		c.stats.misses.Inc()
		return nil, false, false
	}
	en := el.Value.(*resultEntry)
	if en.gen != gen {
		c.removeLocked(el)
		c.stats.invalidations.Inc()
		c.stats.misses.Inc()
		return nil, false, false
	}
	c.order.MoveToFront(el)
	c.stats.hits.Inc()
	return en.res, en.maintained, true
}

// put stores a freshly evaluated result under its generation stamp,
// evicting least-recently-used entries until both the entry and byte
// bounds hold again. Oversized single results (cost above the byte bound)
// are not cached at all — caching them would immediately evict everything
// else for a result unlikely to be re-served before the next ingest.
func (c *resultCache) put(key string, gen uint64, u *query.UCQ, res *eval.Result) {
	if c.maxEntries <= 0 {
		return
	}
	cost := resultCost(res)
	if c.maxBytes > 0 && cost > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		// A query that held the instance read lock across a concurrent
		// DropInstance finishes after the purge; inserting now would pin
		// the entry (and its share of the engine-wide gauges) forever.
		return
	}
	if el, ok := c.items[key]; ok {
		// Concurrent misses for one key race to put; keep the newest stamp.
		// Generations only move forward, so an existing entry with a newer
		// stamp wins: a promotion may have advanced this key past the
		// generation a slow reader evaluated at, and overwriting it would
		// serve a stale result at the promoted generation forever after.
		if el.Value.(*resultEntry).gen > gen {
			return
		}
		c.removeLocked(el)
	}
	en := &resultEntry{key: key, gen: gen, res: res, bytes: cost, u: u}
	c.items[key] = c.order.PushFront(en)
	c.bytes += cost
	c.stats.entries.Inc()
	c.stats.bytes.Add(cost)
	// This can never evict the entry just inserted: maxEntries >= 1 here,
	// and a single entry over the byte bound was rejected above.
	for c.order.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		c.removeLocked(c.order.Back())
		c.stats.evictions.Inc()
	}
}

// removeLocked unlinks one entry and settles the byte accounting.
func (c *resultCache) removeLocked(el *list.Element) {
	en := el.Value.(*resultEntry)
	c.order.Remove(el)
	delete(c.items, en.key)
	c.bytes -= en.bytes
	c.stats.entries.Dec()
	c.stats.bytes.Add(-en.bytes)
}

// purge drops every entry and refuses future puts — called when the owning
// instance is dropped, so the engine-wide occupancy gauges stay truthful.
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for c.order.Len() > 0 {
		c.removeLocked(c.order.Back())
	}
}

// invalidateAll drops every entry and counts each as an invalidation —
// called by the ingest batcher when it bumps the generation, while the
// instance write lock is held. Every existing entry carries an older stamp
// and can never hit again; without the eager sweep those dead results
// would stay resident (and inflate the occupancy gauges) until LRU
// pressure or a same-key re-request happened to evict them. The stale
// check in get remains as a correctness backstop.
func (c *resultCache) invalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.order.Len() > 0 {
		c.removeLocked(c.order.Back())
		c.stats.invalidations.Inc()
	}
}

// maintainTask is one cache entry the ingest batcher will try to carry
// across a generation with delta evaluation instead of invalidating.
type maintainTask struct {
	key string
	u   *query.UCQ
}

// planMaintenance is called by the ingest batcher after applying an
// additive batch, while it still holds the instance write lock. It sweeps
// the entries that cannot be maintained across this batch — stamped at a
// generation other than oldGen (already stale), carrying no query, or
// mentioning a relation the batch created with a conflicting arity (the
// query flipped from vacuously-empty to erroring) — and returns the
// survivors for delta evaluation. Disequalities do NOT disqualify an
// entry: they filter assignments by their bindings alone, never by
// instance state, so a UCQ≠ stays monotone under pure insertion and the
// delta partition stays exact — which matters because p-minimization
// (the /core path) introduces disequalities systematically. Survivors
// keep their old stamp until promote lands, so a reader that races in
// meanwhile simply misses and re-evaluates.
func (c *resultCache) planMaintenance(oldGen uint64, created map[string]int) []maintainTask {
	if c.maxEntries <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var tasks []maintainTask
	var drop []*list.Element
	for el := c.order.Front(); el != nil; el = el.Next() {
		en := el.Value.(*resultEntry)
		if en.gen != oldGen || !maintainable(en.u, created) {
			drop = append(drop, el)
			continue
		}
		tasks = append(tasks, maintainTask{key: en.key, u: en.u})
	}
	for _, el := range drop {
		c.removeLocked(el)
		c.stats.invalidations.Inc()
	}
	return tasks
}

// maintainable reports whether an entry's query can be carried across an
// additive batch by the delta rules.
func maintainable(u *query.UCQ, created map[string]int) bool {
	if u == nil {
		return false
	}
	for _, q := range u.Adjuncts {
		for _, at := range q.Atoms {
			if ar, ok := created[at.Rel]; ok && ar != len(at.Args) {
				return false
			}
		}
	}
	return true
}

// promote merges freshly derived delta monomials into the entry for key and
// restamps it from oldGen to newGen. The cached result is shared with past
// readers and is never mutated: the merge builds a new Result from a copy
// of the old tuples plus the delta. Promotion only applies to an entry
// still stamped exactly oldGen — if a concurrent reader already
// materialized this key at a newer generation, that fresher entry wins and
// the promotion is dropped. Returns whether the entry was promoted.
func (c *resultCache) promote(key string, oldGen, newGen uint64, delta *eval.Result) bool {
	if c.maxEntries <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	el, ok := c.items[key]
	if !ok {
		return false
	}
	en := el.Value.(*resultEntry)
	if en.gen != oldGen {
		return false
	}
	merged := en.res
	if delta.Len() > 0 {
		m := eval.NewResult()
		for _, ot := range en.res.Tuples() {
			m.Add(ot.Tuple, ot.Prov)
		}
		for _, ot := range delta.Tuples() {
			m.Add(ot.Tuple, ot.Prov)
		}
		m.Finish()
		merged = m
	}
	cost := resultCost(merged)
	if c.maxBytes > 0 && cost > c.maxBytes {
		// The maintained result outgrew the byte bound; drop it like put
		// drops oversized fresh results.
		c.removeLocked(el)
		c.stats.evictions.Inc()
		return false
	}
	c.stats.bytes.Add(cost - en.bytes)
	c.bytes += cost - en.bytes
	en.res, en.gen, en.bytes, en.maintained = merged, newGen, cost, true
	c.order.MoveToFront(el)
	c.stats.promotions.Inc()
	// The merge may have grown past the byte bound; evict colder entries.
	// The promoted entry itself was just moved to the front and fits alone
	// (checked above), so it is never the victim.
	for c.maxBytes > 0 && c.bytes > c.maxBytes && c.order.Len() > 1 {
		c.removeLocked(c.order.Back())
		c.stats.evictions.Inc()
	}
	return true
}

// invalidateKey drops a single entry (if present) and counts it as an
// invalidation — the batcher's fallback when delta evaluation of one
// surviving entry fails unexpectedly.
func (c *resultCache) invalidateKey(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
		c.stats.invalidations.Inc()
	}
}

// usage returns the current entry and byte occupancy.
func (c *resultCache) usage() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.bytes
}

// resultCost approximates a result's resident size in bytes: string
// payloads plus slice/header overhead per tuple and per monomial term. The
// estimate only has to be fair across results — the byte bound is a memory
// pressure valve, not an allocator.
func resultCost(res *eval.Result) int64 {
	n := int64(96) // Result headers, map
	for _, ot := range res.Tuples() {
		n += 64 // OutTuple, map entry, key string
		for _, v := range ot.Tuple {
			n += int64(len(v)) + 16
		}
		n += int64(ot.Prov.Size()) * 24
	}
	return n
}
