package engine

import (
	"container/list"
	"sync"

	"provmin/internal/eval"
	"provmin/internal/metrics"
)

// This file is the read-path result cache. The minimization cache
// (cache.go) already amortizes Algorithm 1 — the worst-case-exponential
// rewrite — but every /query and /core still re-evaluated the (p-minimal)
// query against the relation store on each request, even when the instance
// had not changed. The result cache closes that gap: each instance keeps an
// LRU of fully evaluated results, stamped with the instance's generation
// counter (the version bumped inside the ingest batcher's critical section
// and restored exactly by WAL replay). A lookup at an unchanged generation
// returns the materialized result without touching the relation store; any
// ingest bumps the generation, which invalidates every older stamp.

// resultCacheStats are the engine-wide counters and gauges shared by every
// instance's cache, so the registry shows one engine_result_cache_* family
// regardless of instance count.
type resultCacheStats struct {
	hits          *metrics.Counter
	misses        *metrics.Counter
	evictions     *metrics.Counter
	invalidations *metrics.Counter
	entries       *metrics.Gauge
	bytes         *metrics.Gauge
}

func newResultCacheStats(reg *metrics.Registry) *resultCacheStats {
	return &resultCacheStats{
		hits:          reg.Counter("engine_result_cache_hits_total"),
		misses:        reg.Counter("engine_result_cache_misses_total"),
		evictions:     reg.Counter("engine_result_cache_evictions_total"),
		invalidations: reg.Counter("engine_result_cache_invalidations_total"),
		entries:       reg.Gauge("engine_result_cache_entries"),
		bytes:         reg.Gauge("engine_result_cache_bytes"),
	}
}

// resultCache is one instance's LRU of evaluated results. Entries are keyed
// by canonical query form and stamped with the generation they were
// computed at; a stamp mismatch is a miss that also drops the stale entry,
// so at most one materialization per query is ever retained. Cached results
// are shared with callers and must never be mutated.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int   // <= 0 disables the cache entirely
	maxBytes   int64 // <= 0 means no byte bound
	stats      *resultCacheStats

	order  *list.List               // front = most recent; values are *resultEntry
	items  map[string]*list.Element // canonical query -> element
	bytes  int64
	closed bool // set by purge: the owning instance was dropped
}

type resultEntry struct {
	key   string
	gen   uint64
	res   *eval.Result
	bytes int64
}

func newResultCache(maxEntries int, maxBytes int64, stats *resultCacheStats) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		stats:      stats,
		order:      list.New(),
		items:      map[string]*list.Element{},
	}
}

// get returns the cached result for key if it was materialized at exactly
// generation gen. An entry at any other generation is stale — the instance
// changed since — and is removed on sight.
func (c *resultCache) get(key string, gen uint64) (*eval.Result, bool) {
	if c.maxEntries <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.stats.misses.Inc()
		return nil, false
	}
	en := el.Value.(*resultEntry)
	if en.gen != gen {
		c.removeLocked(el)
		c.stats.invalidations.Inc()
		c.stats.misses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.stats.hits.Inc()
	return en.res, true
}

// put stores a freshly evaluated result under its generation stamp,
// evicting least-recently-used entries until both the entry and byte
// bounds hold again. Oversized single results (cost above the byte bound)
// are not cached at all — caching them would immediately evict everything
// else for a result unlikely to be re-served before the next ingest.
func (c *resultCache) put(key string, gen uint64, res *eval.Result) {
	if c.maxEntries <= 0 {
		return
	}
	cost := resultCost(res)
	if c.maxBytes > 0 && cost > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		// A query that held the instance read lock across a concurrent
		// DropInstance finishes after the purge; inserting now would pin
		// the entry (and its share of the engine-wide gauges) forever.
		return
	}
	if el, ok := c.items[key]; ok {
		// Concurrent misses for one key race to put; keep the newest stamp.
		c.removeLocked(el)
	}
	en := &resultEntry{key: key, gen: gen, res: res, bytes: cost}
	c.items[key] = c.order.PushFront(en)
	c.bytes += cost
	c.stats.entries.Inc()
	c.stats.bytes.Add(cost)
	// This can never evict the entry just inserted: maxEntries >= 1 here,
	// and a single entry over the byte bound was rejected above.
	for c.order.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		c.removeLocked(c.order.Back())
		c.stats.evictions.Inc()
	}
}

// removeLocked unlinks one entry and settles the byte accounting.
func (c *resultCache) removeLocked(el *list.Element) {
	en := el.Value.(*resultEntry)
	c.order.Remove(el)
	delete(c.items, en.key)
	c.bytes -= en.bytes
	c.stats.entries.Dec()
	c.stats.bytes.Add(-en.bytes)
}

// purge drops every entry and refuses future puts — called when the owning
// instance is dropped, so the engine-wide occupancy gauges stay truthful.
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for c.order.Len() > 0 {
		c.removeLocked(c.order.Back())
	}
}

// invalidateAll drops every entry and counts each as an invalidation —
// called by the ingest batcher when it bumps the generation, while the
// instance write lock is held. Every existing entry carries an older stamp
// and can never hit again; without the eager sweep those dead results
// would stay resident (and inflate the occupancy gauges) until LRU
// pressure or a same-key re-request happened to evict them. The stale
// check in get remains as a correctness backstop.
func (c *resultCache) invalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.order.Len() > 0 {
		c.removeLocked(c.order.Back())
		c.stats.invalidations.Inc()
	}
}

// usage returns the current entry and byte occupancy.
func (c *resultCache) usage() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.bytes
}

// resultCost approximates a result's resident size in bytes: string
// payloads plus slice/header overhead per tuple and per monomial term. The
// estimate only has to be fair across results — the byte bound is a memory
// pressure valve, not an allocator.
func resultCost(res *eval.Result) int64 {
	n := int64(96) // Result headers, map
	for _, ot := range res.Tuples() {
		n += 64 // OutTuple, map entry, key string
		for _, v := range ot.Tuple {
			n += int64(len(v)) + 16
		}
		n += int64(ot.Prov.Size()) * 24
	}
	return n
}
