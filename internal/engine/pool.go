package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// pool is a fixed-size worker pool that bounds the number of provenance
// evaluations running at once. Evaluation is CPU-bound and worst-case
// exponential, so an unbounded goroutine-per-request model would let one
// burst of heavy queries swamp the process; the pool gives provmind a
// predictable concurrency ceiling (and a queue whose wait time shows up in
// the engine_queue_wait_seconds histogram).
type pool struct {
	jobs chan poolJob
	wg   sync.WaitGroup

	closeOnce sync.Once
	closed    chan struct{}
}

type poolJob struct {
	ctx  context.Context
	run  func() (any, error)
	resp chan poolResult
}

type poolResult struct {
	val any
	err error
}

func newPool(workers int) *pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &pool{
		jobs:   make(chan poolJob),
		closed: make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// worker pulls jobs until the pool closes. The jobs channel is unbuffered,
// so a successful send in do() means some worker owns the job and will
// deliver a response even if the pool closes meanwhile.
func (p *pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case job := <-p.jobs:
			if err := job.ctx.Err(); err != nil {
				job.resp <- poolResult{err: err}
				continue
			}
			val, err := safeRun(job.run)
			job.resp <- poolResult{val: val, err: err}
		case <-p.closed:
			return
		}
	}
}

// safeRun converts a panic in a job into an error so one malformed request
// cannot take down the whole service.
func safeRun(fn func() (any, error)) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: job panicked: %v", r)
		}
	}()
	return fn()
}

// do submits fn and waits for its result, a free worker, or ctx/pool
// cancellation — whichever comes first.
func (p *pool) do(ctx context.Context, fn func() (any, error)) (any, error) {
	job := poolJob{ctx: ctx, run: fn, resp: make(chan poolResult, 1)}
	select {
	case p.jobs <- job:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.closed:
		return nil, fmt.Errorf("engine: pool closed")
	}
	res := <-job.resp
	return res.val, res.err
}

// close stops accepting jobs and waits for in-flight ones to finish. The
// jobs channel is never closed: senders race close() and a send on a closed
// channel would panic, while an orphaned unbuffered send just blocks until
// the sender's own closed-case fires.
func (p *pool) close() {
	p.closeOnce.Do(func() { close(p.closed) })
	p.wg.Wait()
}
