package engine

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"time"

	"provmin/internal/db"
	"provmin/internal/persist"
)

// This file is the residency layer: the engine side of tiered instance
// storage (internal/tier). With a snapshot backend configured, every
// instance is either *resident* (in a registry shard, fully queryable) or
// *cold* (a blob in the backend plus a stub entry in the shard's cold
// map). Evicting snapshots a resident instance into its blob and releases
// the RAM copy; any engine call that touches a cold instance faults it
// back in transparently. A janitor enforces the byte budget and the
// cold-after idle deadline using the tier.Tracker's LRU order.
//
// Per-id residency transitions (evict, fault-in, drop) are serialized by a
// flight mutex, which also makes fault-in single-flight: concurrent
// requests for one cold instance load its blob exactly once, the rest wait
// on the flight and find the instance resident. Lock ordering: the flight
// mutex is taken before everything else (WAL shard mutex, regShard.mu,
// instance.mu); the tracker's internal mutex is a leaf.

// ErrNoTiering is returned by EvictInstance when no snapshot backend is
// configured — a deployment-shape condition (HTTP 409), like
// ErrNoPersistence.
var ErrNoTiering = errors.New("engine: tiered storage disabled (no snapshot backend)")

// faultInRetries bounds the lookup retry loop: each round trip means the
// instance was evicted again between fault-in and use, so more than a few
// indicates budget thrashing, not a transient race.
const faultInRetries = 8

// Tiered reports whether a snapshot backend is configured.
func (e *Engine) Tiered() bool { return e.backend != nil }

// resFlight is one id's residency transition lock (see lockResidency).
type resFlight struct {
	mu   chan struct{} // 1-buffered: a mutex that supports try-free cleanup
	refs int
}

// lockResidency acquires the per-id residency flight mutex and returns its
// release func. The flight map holds an entry only while someone holds or
// waits for the lock, so idle instances cost nothing.
func (e *Engine) lockResidency(id string) func() {
	e.resMu.Lock()
	fl := e.resFlights[id]
	if fl == nil {
		fl = &resFlight{mu: make(chan struct{}, 1)}
		e.resFlights[id] = fl
	}
	fl.refs++
	e.resMu.Unlock()
	fl.mu <- struct{}{}
	return func() {
		<-fl.mu
		e.resMu.Lock()
		fl.refs--
		if fl.refs == 0 {
			delete(e.resFlights, id)
		}
		e.resMu.Unlock()
	}
}

// waitResidency blocks until no residency transition is in flight for id —
// the barrier Ingest uses after losing a race with an eviction, instead of
// spinning on lookups while the evict completes.
func (e *Engine) waitResidency(id string) {
	e.lockResidency(id)()
}

// EvictInstance snapshots a resident instance into the cold backend and
// releases its RAM copy. The ingest batcher is closed first, so an
// instance is never evicted mid-batch: the close waits for the batcher
// loop to drain, after which nothing mutates the database again. Evicting
// an already-cold instance is a no-op; an unknown id is ErrUnknownInstance.
func (e *Engine) EvictInstance(id string) error {
	if e.backend == nil {
		return ErrNoTiering
	}
	// Hold the shutdown barrier across the whole eviction (blob write and
	// WAL record): Close waits this out before its final log sync, so an
	// acknowledged evict record can never be lost behind it.
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() {
		return ErrClosed
	}
	release := e.lockResidency(id)
	defer release()

	sh := e.shardOf(id)
	sh.mu.RLock()
	in, resident := sh.instances[id]
	_, cold := sh.cold[id]
	sh.mu.RUnlock()
	if !resident {
		if cold {
			return nil
		}
		return fmt.Errorf("%w %q", ErrUnknownInstance, id)
	}
	if in.borrowed {
		// Evicting a borrowed copy just discards it: its authoritative state
		// is the owning node's blob — writing ours back could clobber a
		// newer one, and a WAL record would resurrect foreign state.
		e.discardBorrowed(in)
		return nil
	}

	start := time.Now()
	// The eviction fence: no new ingests are accepted and the in-flight
	// batch (if any) finishes applying before close returns. Ingest callers
	// that lose this race get errInstanceClosed and retry through
	// waitResidency + fault-in.
	in.currentBatcher().close()

	// Queries may still hold the read lock; the capture is consistent
	// because the batcher — the only writer — is gone.
	in.mu.RLock()
	st := persist.InstanceState{ID: id, DB: in.db, Version: in.version, LastSeq: in.lastSeq}
	blob, err := persist.EncodeInstanceBlob(st)
	info := InstanceInfo{
		ID:        id,
		Relations: len(in.db.Relations()),
		Tuples:    in.db.NumTuples(),
		Version:   in.version,
		State:     "cold",
	}
	bytes := in.bytes
	in.mu.RUnlock()
	if err == nil {
		err = e.backend.Put(context.Background(), id, blob)
	}
	if err != nil {
		e.reviveBatcher(in)
		e.reg.Counter("engine_evict_errors_total").Inc()
		return fmt.Errorf("evict %s: %w", id, err)
	}

	// Blob is durable; now flip the registry entry cold. The WAL record
	// makes replay skip this instance's history (its state lives in the
	// blob) — ordering blob-then-record means a crash between the two just
	// leaves a stale blob that the next eviction overwrites.
	transitioned := false
	flip := func(uint64) {
		sh.mu.Lock()
		if cur, ok := sh.instances[id]; ok && cur == in {
			delete(sh.instances, id)
			sh.count.Add(-1)
			sh.cold[id] = info
			sh.coldCount.Add(1)
			transitioned = true
		}
		sh.mu.Unlock()
	}
	if e.log != nil {
		if _, err := e.log.Commit(persist.Record{Op: persist.OpEvict, ID: id}, flip); err != nil {
			if !transitioned {
				e.reviveBatcher(in)
				e.reg.Counter("engine_evict_errors_total").Inc()
				return fmt.Errorf("evict %s: %w", id, err)
			}
			// Applied but fsync unconfirmed: the instance is cold in memory
			// and the blob is durable, so a crash replays it resident (the
			// evict record may be lost) — more state than acknowledged,
			// never less. Report like other post-apply sync failures.
			e.finishEvict(in, bytes, start)
			return fmt.Errorf("evict %s: applied but not confirmed durable: %w", id, err)
		}
	} else {
		flip(0)
	}
	if !transitioned {
		// Lost a race with DropInstance (or Close collected the shard):
		// nothing to release; the blob is stale and drop GC handles it.
		return fmt.Errorf("%w %q", ErrUnknownInstance, id)
	}
	e.finishEvict(in, bytes, start)
	return nil
}

// finishEvict settles accounting after a successful registry flip.
func (e *Engine) finishEvict(in *instance, bytes int64, start time.Time) {
	in.results.purge()
	e.tracker.Remove(in.id)
	e.residentBytes.Add(-bytes)
	e.reg.Counter("engine_evictions_total").Inc()
	e.reg.Histogram("engine_evict_seconds").Observe(time.Since(start))
	e.updateShardGauges()
}

// reviveBatcher replaces a closed batcher on an instance that stays
// resident after an aborted eviction. Skipped while the engine is closing:
// Close has already collected its batcher list, and a fresh loop would
// leak.
func (e *Engine) reviveBatcher(in *instance) {
	if e.closed.Load() {
		return
	}
	in.mu.Lock()
	in.batcher = newIngestBatcher(e, in, e.cfg.IngestBatchSize, e.cfg.IngestMaxWait)
	in.mu.Unlock()
}

// faultIn loads a cold instance's blob and installs it resident. Callers
// arrive from lookup after seeing a cold entry; the flight mutex makes the
// load single-flight — every concurrent caller past the first finds the
// instance already resident and returns without touching the backend.
func (e *Engine) faultIn(id string) error {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() {
		return ErrClosed
	}
	release := e.lockResidency(id)
	defer release()

	sh := e.shardOf(id)
	sh.mu.RLock()
	_, resident := sh.instances[id]
	_, cold := sh.cold[id]
	sh.mu.RUnlock()
	if resident {
		return nil // another flight won the race; lookup retries and hits
	}
	if !cold {
		return fmt.Errorf("%w %q", ErrUnknownInstance, id)
	}

	start := time.Now()
	raw, err := e.backend.Get(context.Background(), id)
	if err != nil {
		e.reg.Counter("engine_faultin_errors_total").Inc()
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("fault-in %s: cold snapshot blob missing from %s: %w", id, e.backend.String(), err)
		}
		return fmt.Errorf("fault-in %s: %w", id, err)
	}
	st, err := persist.DecodeInstanceBlob(raw)
	if err != nil {
		e.reg.Counter("engine_faultin_errors_total").Inc()
		return fmt.Errorf("fault-in %s: %w", id, err)
	}
	if st.ID != id {
		e.reg.Counter("engine_faultin_errors_total").Inc()
		return fmt.Errorf("fault-in %s: blob carries instance id %q", id, st.ID)
	}

	in := &instance{id: id, db: st.DB, version: st.Version, lastSeq: st.LastSeq, bytes: instanceCost(st.DB)}
	in.results = e.newResultCache()
	in.batcher = newIngestBatcher(e, in, e.cfg.IngestBatchSize, e.cfg.IngestMaxWait)

	installed := false
	install := func(seq uint64) {
		if seq > in.lastSeq {
			in.lastSeq = seq
		}
		sh.mu.Lock()
		if !e.closed.Load() {
			delete(sh.cold, id)
			sh.coldCount.Add(-1)
			sh.instances[id] = in
			sh.count.Add(1)
			installed = true
		}
		sh.mu.Unlock()
	}
	if e.log != nil {
		// The fault-in record marks where the blob re-enters the history:
		// replay loads it here and layers later ingest records on top.
		if _, err := e.log.Commit(persist.Record{Op: persist.OpFaultIn, ID: id}, install); err != nil && !installed {
			in.batcher.close()
			e.reg.Counter("engine_faultin_errors_total").Inc()
			return fmt.Errorf("fault-in %s: %w", id, err)
		}
		// An applied-but-unsynced fault-in record is benign on its own: if
		// it is lost, replay leaves the instance cold and the blob still
		// covers it. Any later acknowledged ingest on this shard fsyncs
		// behind it, making it durable before it matters.
	} else {
		install(0)
	}
	if !installed {
		in.batcher.close()
		return ErrClosed
	}
	in.mu.RLock()
	bytes := in.bytes
	in.mu.RUnlock()
	e.tracker.Add(id, bytes, time.Now())
	e.residentBytes.Add(bytes)
	e.reg.Counter("engine_faultins_total").Inc()
	e.reg.Histogram("engine_faultin_seconds").Observe(time.Since(start))
	e.updateShardGauges()
	return nil
}

// EnforceResidency runs one janitor pass: ask the tracker for LRU victims
// over the byte budget or past the idle deadline, and evict them. Returns
// the number evicted. Exported so tests (and embedders without the janitor
// goroutine) can drive enforcement deterministically.
func (e *Engine) EnforceResidency() int {
	if e.backend == nil || e.closed.Load() {
		return 0
	}
	var deadline time.Time
	if e.cfg.ColdAfter > 0 {
		deadline = time.Now().Add(-e.cfg.ColdAfter)
	}
	n := 0
	for _, id := range e.tracker.VictimsOver(e.cfg.ResidentBudgetBytes, deadline) {
		// A victim touched since selection is evicted anyway — the budget
		// is a hard bound and LRU selection is an approximation; its next
		// use faults it back in.
		if err := e.EvictInstance(id); err == nil {
			n++
		}
	}
	return n
}

// janitor periodically enforces the residency budget until Close.
func (e *Engine) janitor(interval time.Duration) {
	defer close(e.janitorDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-e.janitorStop:
			return
		case <-t.C:
			e.EnforceResidency()
		}
	}
}

// AdoptCold composes tiering with crash recovery: it lists the backend and
// registers every blob whose instance is neither resident nor dropped as a
// cold entry — *without* loading it, so a host with a large cold
// population boots in O(listing). Blobs of dropped instances are deleted
// (the live deletion may have been lost to a crash); blobs of resident
// instances are left in place — they look stale, but WAL replay needs them
// at fault-in records until a compaction covers the resident state. Call
// once after New, before serving.
//
// owns filters adoption on a shared backend: nil adopts every blob (the
// single-node deployment); in a cluster each node passes its consistent-
// hash ownership predicate, so two nodes listing one bucket never both
// claim an instance. Unowned blobs are left completely alone — not
// adopted, and not GC'd even when this node's WAL says dropped, because a
// re-created instance of the same id may now live under another owner.
func (e *Engine) AdoptCold(ctx context.Context, owns func(id string) bool) error {
	if e.backend == nil {
		return nil
	}
	ids, err := e.backend.List(ctx)
	if err != nil {
		return fmt.Errorf("engine: list cold backend %s: %w", e.backend.String(), err)
	}
	dropped := map[string]bool{}
	if e.log != nil {
		for _, id := range e.log.DroppedIDs() {
			dropped[id] = true
		}
	}
	var maxID uint64
	for _, id := range ids {
		// The id-counter bump looks at every listed blob, owned or not:
		// generated ids must not collide with any instance in a shared
		// bucket, whoever owns it.
		if n := numericInstanceID(id); n > maxID {
			maxID = n
		}
		if owns != nil && !owns(id) {
			continue
		}
		if dropped[id] {
			if err := e.backend.Delete(ctx, id); err != nil {
				e.reg.Counter("engine_blob_gc_failures_total").Inc()
			} else {
				e.reg.Counter("engine_blob_gc_total").Inc()
			}
			continue
		}
		sh := e.shardOf(id)
		sh.mu.Lock()
		_, resident := sh.instances[id]
		_, cold := sh.cold[id]
		if !resident && !cold {
			// Boot-discovered entry: tuple/relation counts unknown until
			// first fault-in (listing must not load blobs).
			sh.cold[id] = InstanceInfo{ID: id, State: "cold"}
			sh.coldCount.Add(1)
		}
		sh.mu.Unlock()
	}
	// Ids that exist only as blobs (orphaned from a wiped data dir, or an
	// object store shared across rebuilds) must not be reissued to creates.
	for {
		cur := e.nextID.Load()
		if maxID <= cur || e.nextID.CompareAndSwap(cur, maxID) {
			break
		}
	}
	e.updateShardGauges()
	return nil
}

// numericInstanceID extracts n from an engine-generated id "i<n>"; 0 for
// foreign ids.
func numericInstanceID(id string) uint64 {
	if !strings.HasPrefix(id, "i") {
		return 0
	}
	n, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// ResidentEntry is one resident instance in a residency report.
type ResidentEntry struct {
	ID     string `json:"id"`
	Bytes  int64  `json:"bytes"`
	IdleMS int64  `json:"idle_ms"`
}

// ResidencyInfo is the /admin/residency payload. Building it never faults
// anything in — it is the observability window the cold tier is judged by.
type ResidencyInfo struct {
	Enabled       bool            `json:"enabled"`
	Backend       string          `json:"backend,omitempty"`
	BudgetBytes   int64           `json:"budget_bytes,omitempty"`
	ColdAfterMS   int64           `json:"cold_after_ms,omitempty"`
	ResidentBytes int64           `json:"resident_bytes"`
	Resident      []ResidentEntry `json:"resident"`
	Cold          []string        `json:"cold"`
	Evictions     int64           `json:"evictions"`
	FaultIns      int64           `json:"fault_ins"`
}

// Residency reports the current residency state.
func (e *Engine) Residency() ResidencyInfo {
	info := ResidencyInfo{
		Enabled:       e.backend != nil,
		ResidentBytes: e.residentBytes.Load(),
		Resident:      []ResidentEntry{},
		Cold:          []string{},
	}
	if e.backend != nil {
		info.Backend = e.backend.String()
		info.BudgetBytes = e.cfg.ResidentBudgetBytes
		info.ColdAfterMS = e.cfg.ColdAfter.Milliseconds()
		now := time.Now()
		for _, en := range e.tracker.Snapshot() {
			info.Resident = append(info.Resident, ResidentEntry{
				ID:     en.ID,
				Bytes:  en.Bytes,
				IdleMS: now.Sub(en.LastUsed).Milliseconds(),
			})
		}
	} else {
		// Untiered engines still report per-instance bytes, sorted by id.
		for _, sh := range e.shards {
			sh.mu.RLock()
			for _, in := range sh.instances {
				in.mu.RLock()
				info.Resident = append(info.Resident, ResidentEntry{ID: in.id, Bytes: in.bytes})
				in.mu.RUnlock()
			}
			sh.mu.RUnlock()
		}
		sort.Slice(info.Resident, func(i, j int) bool { return info.Resident[i].ID < info.Resident[j].ID })
	}
	for _, sh := range e.shards {
		sh.mu.RLock()
		for id := range sh.cold {
			info.Cold = append(info.Cold, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(info.Cold)
	info.Evictions = e.reg.Counter("engine_evictions_total").Value()
	info.FaultIns = e.reg.Counter("engine_faultins_total").Value()
	return info
}

// noteInstanceBytes settles accounting after an ingest batch changed an
// instance's approximate size.
func (e *Engine) noteInstanceBytes(id string, delta, newBytes int64) {
	e.residentBytes.Add(delta)
	e.reg.Gauge("engine_resident_bytes").Set(e.residentBytes.Load())
	if e.backend != nil {
		e.tracker.SetBytes(id, newBytes)
	}
}

// instanceCost approximates an instance's resident size in bytes, in the
// same spirit as resultCost: string payloads plus fixed per-row and
// per-relation overheads. Fairness across instances is what matters — the
// figure drives the LRU budget, it is not an allocator.
func instanceCost(d *db.Instance) int64 {
	n := int64(96) // Instance header, relation map
	for _, r := range d.Relations() {
		n += relationBaseCost
		for _, row := range r.Rows() {
			n += rowCost(row.Tag, row.Tuple)
		}
	}
	return n
}

// relationBaseCost covers a Relation struct, its name and map headers.
const relationBaseCost = 160

// rowCost covers one tagged tuple: Row struct, byKey entry and payloads.
func rowCost(tag string, values []string) int64 {
	n := int64(64) + int64(len(tag))
	for _, v := range values {
		n += int64(len(v)) + 16
	}
	return n
}

// factDelta predicts how applying f changes the owning instance's cost.
// Must be called before persist.ApplyFact mutates the database, under the
// instance write lock.
func factDelta(d *db.Instance, f Fact) int64 {
	rel := d.Lookup(f.Rel)
	if rel == nil {
		return relationBaseCost + rowCost(f.Tag, f.Values)
	}
	if rel.Contains(f.Values...) {
		return int64(len(f.Tag) - len(rel.TagOf(f.Values...)))
	}
	return rowCost(f.Tag, f.Values)
}
