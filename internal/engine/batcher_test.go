package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBatcherAddAfterCloseFails is the deterministic sequencing half of the
// close/add contract: once close returned, add must fail fast with the
// closed error, and a pre-close add's facts must be fully applied.
func TestBatcherAddAfterCloseFails(t *testing.T) {
	e := New(Config{Workers: 2, IngestBatchSize: 4, IngestMaxWait: time.Millisecond})
	t.Cleanup(e.Close)
	id := mustCreate(t, e, "")
	in, err := e.lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.batcher.add([]Fact{{Rel: "R", Tag: "pre", Values: []string{"v"}}}); err != nil {
		t.Fatalf("pre-close add: %v", err)
	}
	in.batcher.close()
	in.batcher.close() // idempotent
	if err := in.batcher.add([]Fact{{Rel: "R", Tag: "post", Values: []string{"v"}}}); !errors.Is(err, errInstanceClosed) {
		t.Fatalf("post-close add: %v, want errInstanceClosed", err)
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	rel := in.db.Lookup("R")
	if rel == nil || rel.Len() != 1 || rel.Rows()[0].Tag != "pre" {
		t.Fatalf("pre-close facts lost or post-close facts applied: %v", in.db)
	}
}

// TestBatcherCloseAddRace is the regression test for the close/drain race:
// the old add path did a non-blocking resp check after observing done, so a
// request could land in the channel buffer after the loop's final drain and
// be silently stranded — or, when the drain did handle it, the caller could
// observe the closed error while its facts were applied. The contract under
// concurrent close is: every add returns exactly once, and it returns nil
// if and only if its facts are visible in the instance.
func TestBatcherCloseAddRace(t *testing.T) {
	const rounds = 60
	for round := 0; round < rounds; round++ {
		e := New(Config{Workers: 2, IngestBatchSize: 2, IngestMaxWait: 50 * time.Microsecond})
		id := mustCreate(t, e, "")
		in, err := e.lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		const adders = 8
		results := make([]error, adders)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < adders; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				results[i] = in.batcher.add([]Fact{{
					Rel: "R", Tag: fmt.Sprintf("t%d", i), Values: []string{fmt.Sprintf("v%d", i)},
				}})
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			in.batcher.close()
		}()
		close(start)
		wg.Wait() // a stranded request would hang here and trip the test timeout

		applied := map[string]bool{}
		in.mu.RLock()
		if rel := in.db.Lookup("R"); rel != nil {
			for _, row := range rel.Rows() {
				applied[row.Tag] = true
			}
		}
		in.mu.RUnlock()
		for i, err := range results {
			tag := fmt.Sprintf("t%d", i)
			switch {
			case err == nil && !applied[tag]:
				t.Fatalf("round %d: add %s acknowledged but facts absent", round, tag)
			case err != nil && applied[tag]:
				t.Fatalf("round %d: add %s failed (%v) but facts applied", round, tag, err)
			case err != nil && !errors.Is(err, errInstanceClosed):
				t.Fatalf("round %d: add %s: unexpected error %v", round, tag, err)
			}
		}
		e.Close()
	}
}
