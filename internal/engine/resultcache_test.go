package engine

import (
	"context"
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/metrics"
	"provmin/internal/query"
)

// TestResultCacheHitAndInvalidation pins the acceptance contract of the
// ablation path (maintenance off): a repeat query at an unchanged
// generation is a hit serving the identical materialization; an ingest
// bumps the generation and invalidates; and the result served after
// invalidation is byte-identical to a cold evaluation of the same facts.
// The maintained path is pinned by maintain_test.go.
func TestResultCacheHitAndInvalidation(t *testing.T) {
	e := New(Config{Workers: 4, CacheSize: 8, DisableResultMaintenance: true})
	t.Cleanup(e.Close)
	id := mustCreate(t, e, paperInstance)
	u := query.MustParseUnion(paperQuery)
	ctx := context.Background()

	out1, err := e.Query(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	if out1.CacheHit {
		t.Fatal("first query reported a result-cache hit")
	}
	out2, err := e.Query(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.CacheHit {
		t.Fatal("repeat query at unchanged generation missed the result cache")
	}
	if out2.Result != out1.Result {
		t.Fatal("cache hit returned a different materialization")
	}
	if out2.Version != out1.Version {
		t.Fatalf("generation moved without ingest: %d -> %d", out1.Version, out2.Version)
	}

	// Ingest bumps the generation; the stale entry must not be served.
	if err := e.Ingest(id, []Fact{{Rel: "R", Tag: "r4", Values: []string{"b", "b"}}}); err != nil {
		t.Fatal(err)
	}
	out3, err := e.Query(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	if out3.CacheHit {
		t.Fatal("query after ingest served a stale cached result")
	}
	if out3.Version != out1.Version+1 {
		t.Fatalf("generation after one ingest batch = %d, want %d", out3.Version, out1.Version+1)
	}
	out4, err := e.Query(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	if !out4.CacheHit {
		t.Fatal("re-warmed query missed the result cache")
	}

	// Byte-identical to a cold evaluation of the same facts, outside any
	// engine or cache.
	d, err := db.ParseInstance(paperInstance)
	if err != nil {
		t.Fatal(err)
	}
	d.MustAdd("R", "r4", "b", "b")
	cold, err := eval.EvalUCQ(u, d)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out4.Result.String(), cold.String(); got != want {
		t.Fatalf("cached result after invalidation diverges from cold evaluation:\ncached:\n%s\ncold:\n%s", got, want)
	}

	if inv := e.Metrics().Counter("engine_result_cache_invalidations_total").Value(); inv == 0 {
		t.Error("stale entry removal not counted as invalidation")
	}
	if hits := e.Metrics().Counter("engine_result_cache_hits_total").Value(); hits != 2 {
		t.Errorf("engine_result_cache_hits_total = %d, want 2", hits)
	}
}

// TestResultCacheNoAdjunctDedupCollision: evaluation is bag-style, so a
// union repeating an adjunct has doubled provenance coefficients versus
// the single-adjunct query — the two must not share a cache slot (the
// minimization cache's set-equivalence key would conflate them).
func TestResultCacheNoAdjunctDedupCollision(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, "R r1 a a")
	ctx := context.Background()

	single := query.MustParseUnion("ans(x) :- R(x,x)")
	if _, err := e.Query(ctx, id, single); err != nil {
		t.Fatal(err)
	}
	dup := query.MustParseUnion("ans(x) :- R(x,x); ans(x) :- R(x,x)")
	out, err := e.Query(ctx, id, dup)
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHit {
		t.Fatal("duplicated-adjunct union hit the single-adjunct cache slot")
	}
	d, err := db.ParseInstance("R r1 a a")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := eval.EvalUCQ(dup, d)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Result.String(), cold.String(); got != want {
		t.Fatalf("duplicated-adjunct union served wrong coefficients:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestResultCacheSharedAcrossReadPaths: /core caches under the minimized
// form, and the tuple-provenance path behind /prob and /trust reuses the
// same materialization as /query.
func TestResultCacheSharedAcrossReadPaths(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, paperInstance)
	ctx := context.Background()
	u := query.MustParseUnion(paperQuery)

	first, err := e.Core(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	if first.ResultCacheHit {
		t.Fatal("first core reported a result-cache hit")
	}
	second, err := e.Core(ctx, id, u)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || !second.ResultCacheHit {
		t.Fatalf("second core: min hit=%t result hit=%t, want both", second.CacheHit, second.ResultCacheHit)
	}
	if second.Result.String() != first.Result.String() {
		t.Fatal("cached core result diverges from cold core result")
	}

	// Warm the full-provenance materialization, then hit it from the
	// tuple-provenance path.
	if _, err := e.Query(ctx, id, u); err != nil {
		t.Fatal(err)
	}
	hitsBefore := e.Metrics().Counter("engine_result_cache_hits_total").Value()
	p, err := e.TupleProvenance(ctx, id, u, db.Tuple{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if p.IsZero() {
		t.Fatal("tuple provenance for (a) came back zero")
	}
	if hits := e.Metrics().Counter("engine_result_cache_hits_total").Value(); hits != hitsBefore+1 {
		t.Errorf("tuple provenance did not reuse the cached materialization: hits %d -> %d", hitsBefore, hits)
	}
}

// TestResultCacheBounds: the per-instance entry cap evicts LRU, a byte
// bound refuses oversized results, and a negative size disables caching.
func TestResultCacheBounds(t *testing.T) {
	e := New(Config{Workers: 2, ResultCacheSize: 2})
	t.Cleanup(e.Close)
	id := mustCreate(t, e, paperInstance)
	ctx := context.Background()
	queries := []string{
		"ans(x) :- R(x,y)",
		"ans(y) :- R(x,y)",
		"ans(x,y) :- R(x,y)",
	}
	for _, qt := range queries {
		if _, err := e.Query(ctx, id, query.MustParseUnion(qt)); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.Metrics().Gauge("engine_result_cache_entries").Value(); n != 2 {
		t.Errorf("entries gauge = %d, want 2 (entry cap)", n)
	}
	if ev := e.Metrics().Counter("engine_result_cache_evictions_total").Value(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	// The least-recently-used entry (queries[0]) is the evicted one.
	if out, err := e.Query(ctx, id, query.MustParseUnion(queries[2])); err != nil || !out.CacheHit {
		t.Errorf("most-recent query evicted: hit=%v err=%v", out != nil && out.CacheHit, err)
	}
	if out, err := e.Query(ctx, id, query.MustParseUnion(queries[0])); err != nil || out.CacheHit {
		t.Errorf("least-recent query survived a full cache: hit=%v err=%v", out != nil && out.CacheHit, err)
	}

	// A byte bound below any result's cost caches nothing.
	tiny := New(Config{Workers: 2, ResultCacheBytes: 8})
	t.Cleanup(tiny.Close)
	tid := mustCreate(t, tiny, paperInstance)
	for i := 0; i < 2; i++ {
		out, err := tiny.Query(ctx, tid, query.MustParseUnion(paperQuery))
		if err != nil {
			t.Fatal(err)
		}
		if out.CacheHit {
			t.Error("oversized result was cached despite the byte bound")
		}
	}
	if n := tiny.Metrics().Gauge("engine_result_cache_bytes").Value(); n != 0 {
		t.Errorf("bytes gauge = %d, want 0", n)
	}

	// Negative size disables the cache entirely.
	off := New(Config{Workers: 2, ResultCacheSize: -1})
	t.Cleanup(off.Close)
	oid := mustCreate(t, off, paperInstance)
	for i := 0; i < 2; i++ {
		out, err := off.Query(ctx, oid, query.MustParseUnion(paperQuery))
		if err != nil {
			t.Fatal(err)
		}
		if out.CacheHit {
			t.Error("disabled result cache produced a hit")
		}
	}
}

// TestResultCacheStatsAndPurge: /admin/cache's backing snapshot reports
// occupancy per instance, and dropping an instance returns its entries and
// bytes to the engine-wide gauges.
func TestResultCacheStatsAndPurge(t *testing.T) {
	e := newTestEngine(t)
	id := mustCreate(t, e, paperInstance)
	ctx := context.Background()
	if _, err := e.Query(ctx, id, query.MustParseUnion(paperQuery)); err != nil {
		t.Fatal(err)
	}
	st := e.ResultCacheStatsNow()
	if !st.Enabled || st.Entries != 1 || st.Bytes <= 0 || st.Misses != 1 {
		t.Fatalf("stats after one miss: %+v", st)
	}
	if len(st.Instances) != 1 || st.Instances[0].ID != id || st.Instances[0].Entries != 1 {
		t.Fatalf("per-instance stats: %+v", st.Instances)
	}
	if ok, err := e.DropInstance(id); !ok || err != nil {
		t.Fatalf("drop: ok=%t err=%v", ok, err)
	}
	if n := e.Metrics().Gauge("engine_result_cache_entries").Value(); n != 0 {
		t.Errorf("entries gauge after drop = %d, want 0", n)
	}
	if n := e.Metrics().Gauge("engine_result_cache_bytes").Value(); n != 0 {
		t.Errorf("bytes gauge after drop = %d, want 0", n)
	}

	// A put that raced the drop (a query finishing after the purge) must
	// not land: the cache is unreachable, so the entry would pin its share
	// of the engine-wide gauges forever.
	d, err := db.ParseInstance(paperInstance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.EvalUCQ(query.MustParseUnion(paperQuery), d)
	if err != nil {
		t.Fatal(err)
	}
	c := e.newResultCache()
	c.purge()
	c.put("k", 1, query.MustParseUnion(paperQuery), res)
	if entries, bytes := c.usage(); entries != 0 || bytes != 0 {
		t.Errorf("put after purge landed: entries=%d bytes=%d", entries, bytes)
	}
	if n := e.Metrics().Gauge("engine_result_cache_entries").Value(); n != 0 {
		t.Errorf("entries gauge after post-purge put = %d, want 0", n)
	}
}

// TestResultCacheSentinels pins the size-bound sentinel convention shared
// by every cache knob in the tree (engine resultCache here, the router
// response cache in internal/cluster): at the cache layer maxEntries <= 0
// disables caching entirely and maxBytes <= 0 removes the byte bound. The
// command-line flags sit one layer up and map an explicit 0 to the
// negative sentinel, because engine.Config/cluster.RouterConfig reserve 0
// for "use the default".
func TestResultCacheSentinels(t *testing.T) {
	d, err := db.ParseInstance(paperInstance)
	if err != nil {
		t.Fatal(err)
	}
	u := query.MustParseUnion(paperQuery)
	res, err := eval.EvalUCQ(u, d)
	if err != nil {
		t.Fatal(err)
	}
	cost := resultCost(res)

	cases := []struct {
		name       string
		maxEntries int
		maxBytes   int64
		wantCached bool
	}{
		{"disabled-zero-entries", 0, 1 << 20, false},
		{"disabled-negative-entries", -1, 1 << 20, false},
		{"unbounded-zero-bytes", 8, 0, true},
		{"unbounded-negative-bytes", 8, -1, true},
		{"byte-bound-rejects-oversized", 8, cost - 1, false},
		{"byte-bound-admits", 8, cost, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newResultCache(tc.maxEntries, tc.maxBytes, newResultCacheStats(metrics.NewRegistry()))
			c.put("k", 1, u, res)
			_, _, ok := c.get("k", 1)
			if ok != tc.wantCached {
				t.Fatalf("cached = %t, want %t", ok, tc.wantCached)
			}
		})
	}
}

// TestResultCacheDisabledCountersSilent: a disabled cache (entries <= 0)
// must answer get without touching the hit/miss counters — it has no hit
// ratio to report, and since the stats registry is engine-wide, counting
// every request as a miss would drown the ratios of enabled instances.
func TestResultCacheDisabledCountersSilent(t *testing.T) {
	reg := metrics.NewRegistry()
	c := newResultCache(0, 0, newResultCacheStats(reg))
	for i := 0; i < 5; i++ {
		if _, _, ok := c.get("k", 1); ok {
			t.Fatal("disabled cache reported a hit")
		}
	}
	if n := reg.Counter("engine_result_cache_hits_total").Value(); n != 0 {
		t.Errorf("hits counter = %d, want 0", n)
	}
	if n := reg.Counter("engine_result_cache_misses_total").Value(); n != 0 {
		t.Errorf("misses counter = %d, want 0", n)
	}
}
