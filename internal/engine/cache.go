package engine

import (
	"container/list"
	"sort"
	"strings"
	"sync"

	"provmin/internal/query"
)

// CanonicalKey returns a canonical string form of a union: each adjunct's
// atom-sorted rendering (query.CQ.SortedString), the adjuncts themselves
// sorted and deduplicated. Two unions that are equal up to adjunct order and
// atom order map to the same key, so the minimization cache recognizes
// syntactic restatements of one query. Variable renamings hash differently —
// they simply take distinct cache slots, never wrong answers.
func CanonicalKey(u *query.UCQ) string {
	lines := make([]string, 0, len(u.Adjuncts))
	for _, q := range u.Adjuncts {
		lines = append(lines, q.SortedString())
	}
	sort.Strings(lines)
	uniq := lines[:0]
	for i, l := range lines {
		if i == 0 || l != lines[i-1] {
			uniq = append(uniq, l)
		}
	}
	return strings.Join(uniq, "\n")
}

// resultKey is the result-cache key: adjuncts sorted but NOT deduplicated.
// Evaluation is bag-style — every adjunct contributes its assignments'
// monomials, so "q. q" carries doubled coefficients versus "q" and must
// not share a materialization. CanonicalKey's dedup is safe only under the
// set-equivalence the minimization cache works in.
func resultKey(u *query.UCQ) string {
	lines := make([]string, 0, len(u.Adjuncts))
	for _, q := range u.Adjuncts {
		lines = append(lines, q.SortedString())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// minCache is a thread-safe LRU map from canonical query keys to their
// p-minimal forms. MinProv is worst-case exponential (Theorem 4.10), so a
// hit saves the dominant cost of a core-provenance request; p-minimal forms
// are canonical per equivalence class, which makes them safe to share
// between requests as long as callers never mutate a cached value.
type minCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recent; values are *cacheEntry
	items map[string]*list.Element // key -> element
}

type cacheEntry struct {
	key string
	min *query.UCQ // p-minimal form; treated as immutable
}

func newMinCache(capacity int) *minCache {
	if capacity < 1 {
		capacity = 1
	}
	return &minCache{cap: capacity, order: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached p-minimal form and marks the key most-recent.
func (c *minCache) get(key string) (*query.UCQ, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).min, true
}

// put stores a p-minimal form, evicting the least-recently-used entry when
// over capacity. Re-putting an existing key refreshes its recency.
func (c *minCache) put(key string, min *query.UCQ) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).min = min
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, min: min})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached entries.
func (c *minCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
