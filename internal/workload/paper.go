// Package workload provides the paper's query families and databases as
// reusable fixtures, together with parameterized random query generators for
// the benchmark harness.
package workload

import (
	"fmt"

	"provmin/internal/db"
	"provmin/internal/query"
)

// Figure 1 queries.
var (
	// Q1 is the first adjunct of Qunion.
	Q1 = query.MustParse("ans(x) :- R(x,y), R(y,x), x != y")
	// Q2 is the second adjunct of Qunion.
	Q2 = query.MustParse("ans(x) :- R(x,x)")
	// QUnion is Qunion = Q1 ∪ Q2 of Figure 1.
	QUnion = query.MustParseUnion("ans(x) :- R(x,y), R(y,x), x != y\nans(x) :- R(x,x)")
	// QConj is Qconj of Figure 1, equivalent to QUnion but with more
	// provenance (Example 2.18).
	QConj = query.MustParse("ans(x) :- R(x,y), R(y,x)")
)

// Figure 2 queries (proof of Theorem 3.5).
var (
	QNoPmin = query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x2")
	QAlt    = query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x3")
	QAlt2   = query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x4")
	QAlt3   = query.MustParse("ans() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1), S(x1), x1 != x5")
)

// Figure 3 / Section 5 running example.
var (
	// QHat is Q̂ = ans() :- R(x,y), R(y,z), R(z,x).
	QHat = query.MustParse("ans() :- R(x,y), R(y,z), R(z,x)")
	// QHatMin1 and QHat5 are the two adjuncts of MinProv(Q̂) (Example 4.7).
	QHatMin1 = query.MustParse("ans() :- R(v1,v1)")
	QHat5    = query.MustParse("ans() :- R(v1,v2), R(v2,v3), R(v3,v1), v1 != v2, v2 != v3, v1 != v3")
)

// Example 4.2 query.
var QExample42 = query.MustParse("ans(x,y) :- R(x,y), x != 'a', x != y")

// Table2 builds relation R of Table 2 (tags s1..s4).
func Table2() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "b")
	return d
}

// Table4 builds database D of the Lemma 3.6 proof: relation R of Table 4
// plus S = {(a)} tagged s0.
func Table4() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "b")
	d.MustAdd("R", "s2", "b", "a")
	d.MustAdd("R", "s3", "a", "a")
	d.MustAdd("S", "s0", "a")
	return d
}

// Table5 builds database D' of the Lemma 3.6 proof: relation R of Table 5
// (tags t1..t4 here, s'1..s'4 in the paper) plus S = {(a)} tagged s0.
func Table5() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "t1", "a", "b")
	d.MustAdd("R", "t2", "b", "c")
	d.MustAdd("R", "t3", "c", "a")
	d.MustAdd("R", "t4", "a", "a")
	d.MustAdd("S", "s0", "a")
	return d
}

// Table6 builds database D̂ of Section 5 (relation R of Table 6).
func Table6() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "c")
	d.MustAdd("R", "s5", "c", "a")
	return d
}

// QN builds the Theorem 4.10 query
// Q_n = ans() :- R1(x1,y1), R1(y1,x1), ..., Rn(xn,yn), Rn(yn,xn),
// whose p-minimal equivalent has size 2^Ω(n).
func QN(n int) *query.CQ {
	var atoms []query.Atom
	for i := 1; i <= n; i++ {
		rel := fmt.Sprintf("R%d", i)
		x := query.V(fmt.Sprintf("x%d", i))
		y := query.V(fmt.Sprintf("y%d", i))
		atoms = append(atoms, query.NewAtom(rel, x, y), query.NewAtom(rel, y, x))
	}
	return query.NewCQ(query.NewAtom("ans"), atoms, nil)
}

// QNInstance builds an instance exercising QN: each Ri holds a symmetric
// pair plus a self loop, so both equality cases of every pair fire.
func QNInstance(n int) *db.Instance {
	d := db.NewInstance()
	tag := 0
	next := func() string { tag++; return fmt.Sprintf("s%d", tag) }
	for i := 1; i <= n; i++ {
		rel := fmt.Sprintf("R%d", i)
		d.MustAdd(rel, next(), "a", "b")
		d.MustAdd(rel, next(), "b", "a")
		d.MustAdd(rel, next(), "c", "c")
	}
	return d
}
