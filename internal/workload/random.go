package workload

import (
	"fmt"
	"math/rand"

	"provmin/internal/query"
)

// QueryParams controls the random conjunctive-query generator.
type QueryParams struct {
	NumAtoms   int     // relational atoms per query
	NumVars    int     // variable pool size
	NumRels    int     // relation name pool size (R1..Rk)
	Arity      int     // arity of every relation
	HeadArity  int     // distinguished variables (0 = boolean)
	DiseqProb  float64 // probability of emitting each candidate disequality
	SelfJoinOK bool    // allow repeating relation names across atoms
}

// DefaultParams is a small, joiny default.
func DefaultParams() QueryParams {
	return QueryParams{NumAtoms: 3, NumVars: 4, NumRels: 2, Arity: 2, HeadArity: 1, DiseqProb: 0.2, SelfJoinOK: true}
}

// RandomCQ generates a valid conjunctive query with disequalities. The
// result is deterministic in the seed.
func RandomCQ(seed int64, p QueryParams) *query.CQ {
	rng := rand.New(rand.NewSource(seed))
	vars := make([]string, p.NumVars)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i+1)
	}
	rels := make([]string, p.NumRels)
	for i := range rels {
		rels[i] = fmt.Sprintf("R%d", i+1)
	}
	atoms := make([]query.Atom, p.NumAtoms)
	used := map[string]bool{}
	for i := range atoms {
		rel := rels[rng.Intn(len(rels))]
		if !p.SelfJoinOK {
			rel = rels[i%len(rels)]
		}
		args := make([]query.Arg, p.Arity)
		for j := range args {
			v := vars[rng.Intn(len(vars))]
			args[j] = query.V(v)
			used[v] = true
		}
		atoms[i] = query.NewAtom(rel, args...)
	}
	var inBody []string
	for _, v := range vars {
		if used[v] {
			inBody = append(inBody, v)
		}
	}
	headArgs := make([]query.Arg, 0, p.HeadArity)
	for i := 0; i < p.HeadArity && i < len(inBody); i++ {
		headArgs = append(headArgs, query.V(inBody[rng.Intn(len(inBody))]))
	}
	var ds []query.Diseq
	for i := 0; i < len(inBody); i++ {
		for j := i + 1; j < len(inBody); j++ {
			if rng.Float64() < p.DiseqProb {
				ds = append(ds, query.NewDiseq(query.V(inBody[i]), query.V(inBody[j])))
			}
		}
	}
	q := query.NewCQ(query.NewAtom("ans", headArgs...), atoms, ds)
	if err := q.Validate(); err != nil {
		// By construction all head and diseq variables occur in the body;
		// a failure here is a generator bug.
		panic(err)
	}
	return q
}

// RandomUCQ generates a union of k random conjunctive queries sharing a
// head relation.
func RandomUCQ(seed int64, k int, p QueryParams) *query.UCQ {
	adjuncts := make([]*query.CQ, k)
	for i := range adjuncts {
		adjuncts[i] = RandomCQ(seed*1000+int64(i), p)
	}
	u, err := query.NewUCQ(adjuncts...)
	if err != nil {
		panic(err)
	}
	return u
}

// ChainCQ builds the path query
// ans(x0,xn) :- R(x0,x1), R(x1,x2), ..., R(x{n-1},xn).
func ChainCQ(n int) *query.CQ {
	atoms := make([]query.Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = query.NewAtom("R", query.V(fmt.Sprintf("x%d", i)), query.V(fmt.Sprintf("x%d", i+1)))
	}
	head := query.NewAtom("ans", query.V("x0"), query.V(fmt.Sprintf("x%d", n)))
	return query.NewCQ(head, atoms, nil)
}

// CycleCQ builds the boolean cycle query
// ans() :- R(x1,x2), ..., R(xn,x1).
func CycleCQ(n int) *query.CQ {
	atoms := make([]query.Atom, n)
	for i := 1; i <= n; i++ {
		next := i%n + 1
		atoms[i-1] = query.NewAtom("R", query.V(fmt.Sprintf("x%d", i)), query.V(fmt.Sprintf("x%d", next)))
	}
	return query.NewCQ(query.NewAtom("ans"), atoms, nil)
}

// StarCQ builds ans(c) :- R(c,x1), R(c,x2), ..., R(c,xn); its Chandra–Merlin
// core is the single atom R(c,x1), making it a standard minimization
// fixture.
func StarCQ(n int) *query.CQ {
	atoms := make([]query.Atom, n)
	for i := 1; i <= n; i++ {
		atoms[i-1] = query.NewAtom("R", query.V("c"), query.V(fmt.Sprintf("x%d", i)))
	}
	return query.NewCQ(query.NewAtom("ans", query.V("c")), atoms, nil)
}
