package workload

import (
	"testing"

	"provmin/internal/minimize"
	"provmin/internal/query"
)

func TestPaperFixturesValid(t *testing.T) {
	for _, q := range []*query.CQ{Q1, Q2, QConj, QNoPmin, QAlt, QAlt2, QAlt3, QHat, QHatMin1, QHat5, QExample42} {
		if err := q.Validate(); err != nil {
			t.Errorf("fixture %v invalid: %v", q, err)
		}
	}
	if err := QUnion.Validate(); err != nil {
		t.Errorf("QUnion invalid: %v", err)
	}
}

func TestPaperInstancesAbstractlyTagged(t *testing.T) {
	for i, d := range []interface {
		IsAbstractlyTagged() bool
		NumTuples() int
	}{Table2(), Table4(), Table5(), Table6()} {
		if !d.IsAbstractlyTagged() {
			t.Errorf("instance %d not abstractly tagged", i)
		}
	}
	if Table2().NumTuples() != 4 || Table4().NumTuples() != 4 || Table5().NumTuples() != 5 || Table6().NumTuples() != 5 {
		t.Error("paper instance sizes are wrong")
	}
}

func TestQNShape(t *testing.T) {
	for n := 1; n <= 4; n++ {
		q := QN(n)
		if len(q.Atoms) != 2*n {
			t.Errorf("QN(%d) has %d atoms, want %d", n, len(q.Atoms), 2*n)
		}
		if len(q.Vars()) != 2*n {
			t.Errorf("QN(%d) has %d vars, want %d", n, len(q.Vars()), 2*n)
		}
		if err := q.Validate(); err != nil {
			t.Errorf("QN(%d) invalid: %v", n, err)
		}
	}
}

func TestQNInstanceFiresBothCases(t *testing.T) {
	d := QNInstance(2)
	if d.Lookup("R1") == nil || d.Lookup("R2") == nil {
		t.Fatal("missing relations")
	}
	if d.Lookup("R1").Len() != 3 {
		t.Errorf("R1 size = %d", d.Lookup("R1").Len())
	}
	if !d.IsAbstractlyTagged() {
		t.Error("instance must be abstractly tagged")
	}
}

func TestRandomCQDeterministicAndValid(t *testing.T) {
	p := DefaultParams()
	a := RandomCQ(7, p)
	b := RandomCQ(7, p)
	if a.String() != b.String() {
		t.Error("same seed must generate the same query")
	}
	for seed := int64(0); seed < 50; seed++ {
		q := RandomCQ(seed, p)
		if err := q.Validate(); err != nil {
			t.Errorf("seed %d: invalid query %v: %v", seed, q, err)
		}
	}
}

func TestRandomCQBooleanHead(t *testing.T) {
	p := DefaultParams()
	p.HeadArity = 0
	q := RandomCQ(3, p)
	if !q.IsBoolean() {
		t.Errorf("HeadArity 0 should give a boolean query: %v", q)
	}
}

func TestRandomUCQ(t *testing.T) {
	u := RandomUCQ(5, 3, DefaultParams())
	if len(u.Adjuncts) != 3 {
		t.Fatalf("adjuncts = %d", len(u.Adjuncts))
	}
	if err := u.Validate(); err != nil {
		t.Errorf("invalid union: %v", err)
	}
}

func TestChainCycleStarShapes(t *testing.T) {
	if q := ChainCQ(3); len(q.Atoms) != 3 || len(q.Head.Args) != 2 {
		t.Errorf("ChainCQ = %v", q)
	}
	if q := CycleCQ(4); len(q.Atoms) != 4 || !q.IsBoolean() {
		t.Errorf("CycleCQ = %v", q)
	}
	star := StarCQ(4)
	if len(star.Atoms) != 4 {
		t.Errorf("StarCQ = %v", star)
	}
	// The star's Chandra–Merlin core is a single atom.
	m, err := minimize.StandardMinimizeCQ(star)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 1 {
		t.Errorf("StarCQ core = %v, want one atom", m)
	}
}

func TestCycleCQMinimal(t *testing.T) {
	// Odd directed cycles are cores (no proper retract).
	m, err := minimize.StandardMinimizeCQ(CycleCQ(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 3 {
		t.Errorf("C3 should be minimal, got %v", m)
	}
}
