package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"provmin/internal/metrics"
)

// Headers shared by the router and the node-side server: the routing tier's
// wire contract rides on the single-node API instead of a new RPC layer.
const (
	// HeaderGeneration carries an instance's generation: nodes echo it on
	// /query and /core responses; the router stamps cache entries with it
	// and echoes it back to clients.
	HeaderGeneration = "X-Provmind-Generation"
	// HeaderRing carries the sender's ring version. Nodes and the router
	// reject a request whose ring version disagrees with theirs (409) so a
	// client routing on stale topology can never read or write the wrong
	// node silently.
	HeaderRing = "X-Provmind-Ring"
	// HeaderCache reports "hit" or "miss" for the router's result cache.
	HeaderCache = "X-Provmind-Cache"
	// HeaderNode names the node that served (or would serve) the request.
	HeaderNode = "X-Provmind-Node"
)

// StaleRingError reports a ring-version mismatch between a request and the
// receiving process; HTTP layers map it to 409 Conflict, and clients
// recover by refreshing GET /topology.
type StaleRingError struct {
	Got     string
	Current uint64
}

func (e *StaleRingError) Error() string {
	return fmt.Sprintf("stale ring version %s (current %d); refresh via GET /topology", e.Got, e.Current)
}

// CheckRing validates a request's X-Provmind-Ring header, if present,
// against the local ring version. Shared by the router and the node-side
// server so both ends enforce the same staleness contract.
func CheckRing(r *http.Request, version uint64) error {
	h := r.Header.Get(HeaderRing)
	if h == "" {
		return nil
	}
	v, err := strconv.ParseUint(h, 10, 64)
	if err != nil || v != version {
		return &StaleRingError{Got: h, Current: version}
	}
	return nil
}

// routerError is an HTTP error originated by the router itself (as opposed
// to one relayed verbatim from a node).
type routerError struct {
	status int
	msg    string
}

func (e *routerError) Error() string { return e.msg }

// RouterConfig configures NewRouter. The cache bounds follow the engine
// Config sentinel convention: zero selects the default, a negative entry
// bound disables response caching, and a negative byte bound removes the
// byte bound (entry cap only).
type RouterConfig struct {
	Topology     *Topology
	CacheEntries int           // max cached responses (default 4096; negative disables)
	CacheBytes   int64         // max cached bytes (default 64 MiB; negative unbounds)
	DialTimeout  time.Duration // TCP connect timeout (default 1s)
	ProxyTimeout time.Duration // per-attempt request timeout (default 30s)
	Metrics      *metrics.Registry
}

// Router is the provmind cluster's routing tier: an http.Handler exposing
// the single-node API over a set of nodes. Every request that names an
// instance is proxied to the ring owner; reads retry once against the
// replica on connect failure or timeout; read responses are cached keyed
// by (instance, endpoint, canonical request) and served again only while
// the owning node's current generation matches the entry's stamp.
type Router struct {
	topo   *Topology
	cache  *routerCache
	client *http.Client
	mux    *http.ServeMux
	reg    *metrics.Registry

	idSeq    atomic.Uint64
	idPrefix string

	proxied     *metrics.Counter
	failovers   *metrics.Counter
	unavailable *metrics.Counter
}

// NewRouter builds the routing tier over a topology.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Topology == nil {
		return nil, errors.New("cluster: router needs a topology")
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.ProxyTimeout <= 0 {
		cfg.ProxyTimeout = 30 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	var pfx [4]byte
	if _, err := rand.Read(pfx[:]); err != nil {
		return nil, fmt.Errorf("cluster: seed id prefix: %w", err)
	}
	rt := &Router{
		topo:  cfg.Topology,
		cache: newRouterCache(cfg.CacheEntries, cfg.CacheBytes, cfg.Metrics),
		client: &http.Client{
			Timeout: cfg.ProxyTimeout,
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: cfg.DialTimeout}).DialContext,
				MaxIdleConnsPerHost: 32,
			},
		},
		mux:         http.NewServeMux(),
		reg:         cfg.Metrics,
		idPrefix:    "x" + hex.EncodeToString(pfx[:]),
		proxied:     cfg.Metrics.Counter("router_proxied_total"),
		failovers:   cfg.Metrics.Counter("router_failovers_total"),
		unavailable: cfg.Metrics.Counter("router_unavailable_total"),
	}
	rt.routes()
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

func (rt *Router) routes() {
	rt.route("POST /instances", rt.handleCreate)
	rt.route("GET /instances", rt.handleListInstances)
	rt.route("GET /instances/{id}", rt.handleGetInstance)
	rt.route("DELETE /instances/{id}", rt.handleDropInstance)
	rt.route("POST /instances/{id}/tuples", rt.handleIngest)
	rt.route("POST /query", rt.bodyRead("query", true))
	rt.route("POST /core", rt.bodyRead("core", true))
	rt.route("GET /core", rt.handleCoreGet)
	rt.route("POST /prob", rt.bodyRead("prob", false))
	rt.route("POST /trust", rt.bodyRead("trust", false))
	rt.route("POST /deletion", rt.bodyRead("deletion", false))
	rt.route("POST /admin/evict", rt.handleEvict)
	rt.route("POST /admin/rebalance", rt.handleRebalance)
	rt.route("POST /admin/snapshot", rt.fanoutPost("/admin/snapshot"))
	rt.route("POST /admin/compact", rt.fanoutPost("/admin/compact"))
	rt.route("GET /admin/residency", rt.handleResidency)
	rt.route("GET /topology", rt.handleTopology)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
}

// route wraps a handler with request metrics, the ring-version response
// header, and the stale-ring request check.
func (rt *Router) route(pattern string, h func(w http.ResponseWriter, r *http.Request) error) {
	reqs := rt.reg.Counter("router_requests_total")
	errs := rt.reg.Counter("router_errors_total")
	lat := rt.reg.Histogram("router_request_seconds")
	version := rt.topo.Ring().Version()
	rt.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		w.Header().Set(HeaderRing, strconv.FormatUint(version, 10))
		err := CheckRing(r, version)
		if err == nil {
			err = h(w, r)
		}
		if err != nil {
			errs.Inc()
			rt.writeError(w, err)
		}
		lat.Observe(time.Since(start))
	})
}

func (rt *Router) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var re *routerError
	var sre *StaleRingError
	switch {
	case errors.As(err, &re):
		status = re.status
	case errors.As(err, &sre):
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// --- node I/O ---

// forward sends one request to a named node. Transport-level failures mark
// the node down (unless the caller's context was cancelled) and return an
// error; any HTTP response, success or not, marks it up.
func (rt *Router) forward(ctx context.Context, node, method, path string, body []byte) (*http.Response, error) {
	base, ok := rt.topo.URLOf(node)
	if !ok {
		return nil, fmt.Errorf("unknown node %q", node)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(HeaderRing, strconv.FormatUint(rt.topo.Ring().Version(), 10))
	resp, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			rt.topo.MarkDown(node)
		}
		return nil, err
	}
	rt.topo.MarkUp(node)
	rt.proxied.Inc()
	return resp, nil
}

// fetchGen asks a node for its current generation of an instance: the
// cheap coherence check behind every router cache hit. ok is false when
// the node answered but does not hold the instance (or /gen errored);
// a non-nil error means the node was unreachable.
func (rt *Router) fetchGen(ctx context.Context, node, id string) (gen uint64, ok bool, err error) {
	resp, err := rt.forward(ctx, node, http.MethodGet, "/gen/"+url.PathEscape(id), nil)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	b, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if rerr != nil || resp.StatusCode != http.StatusOK {
		return 0, false, nil
	}
	var out struct {
		Generation uint64 `json:"generation"`
	}
	if json.Unmarshal(b, &out) != nil {
		return 0, false, nil
	}
	return out.Generation, true, nil
}

// readOrder returns the candidate nodes for a read of id: owner first,
// replica second — unless the owner is marked down and the replica isn't,
// in which case the replica leads so failover costs no timeout.
func (rt *Router) readOrder(id string) []string {
	owner, replica := rt.topo.OwnerReplica(id)
	if owner == replica {
		return []string{owner}
	}
	if !rt.topo.Healthy(owner) && rt.topo.Healthy(replica) {
		return []string{replica, owner}
	}
	return []string{owner, replica}
}

// relay writes an upstream (or cached) response to the client with the
// router's provenance headers.
func relay(w http.ResponseWriter, status int, ctype string, body []byte, node, cacheState, gen string) {
	if ctype == "" {
		ctype = "application/json"
	}
	w.Header().Set("Content-Type", ctype)
	w.Header().Set(HeaderNode, node)
	w.Header().Set(HeaderCache, cacheState)
	if gen != "" {
		w.Header().Set(HeaderGeneration, gen)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// --- read path ---

// serveRead is the routed read path: try each candidate node in order; on
// the first reachable one, validate the cache against its current
// generation, serve the hit or proxy the request, and cache a 200 response
// stamped with the generation it was computed at. genInHeader selects the
// stamping protocol: /query and /core echo the evaluation generation in
// X-Provmind-Generation, so one round trip suffices; the other read
// endpoints bracket the proxy with two /gen checks and cache only when the
// generation held still.
func (rt *Router) serveRead(w http.ResponseWriter, r *http.Request, op, id, method, path string, body []byte, genInHeader bool) error {
	if id == "" {
		return &routerError{http.StatusBadRequest, "missing instance"}
	}
	key := cacheKey(id, op, string(body))
	var lastErr error
	for i, node := range rt.readOrder(id) {
		if i > 0 {
			rt.failovers.Inc()
		}
		// The generation round trip is only spent when it can pay for
		// itself: a possible cache hit, or a pre-proxy stamp for the
		// endpoints that don't echo generations.
		gen, genOK := uint64(0), false
		if rt.cache.contains(key) || !genInHeader {
			var err error
			gen, genOK, err = rt.fetchGen(r.Context(), node, id)
			if err != nil {
				lastErr = err
				continue
			}
			if genOK {
				if e, ok := rt.cache.get(key, gen); ok {
					relay(w, e.status, e.ctype, e.body, node, "hit", strconv.FormatUint(e.gen, 10))
					return nil
				}
			}
		}
		resp, err := rt.forward(r.Context(), node, method, path, body)
		if err != nil {
			lastErr = err
			continue
		}
		respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if rerr != nil {
			lastErr = rerr
			continue
		}
		if resp.StatusCode == http.StatusOK {
			stamp, stampOK := uint64(0), false
			if genInHeader {
				if v, perr := strconv.ParseUint(resp.Header.Get(HeaderGeneration), 10, 64); perr == nil {
					stamp, stampOK = v, true
				}
			} else if genOK {
				// Bracketing check: the response is attributable to gen only
				// if the instance didn't advance while it was computed.
				g2, g2ok, gerr := rt.fetchGen(r.Context(), node, id)
				if gerr == nil && g2ok && g2 == gen {
					stamp, stampOK = gen, true
				}
			}
			if stampOK {
				rt.cache.put(&cacheEntry{
					key: key, id: id, gen: stamp,
					status: resp.StatusCode, body: respBody,
					ctype: resp.Header.Get("Content-Type"),
				})
			}
		}
		relay(w, resp.StatusCode, resp.Header.Get("Content-Type"), respBody, node, "miss", resp.Header.Get(HeaderGeneration))
		return nil
	}
	rt.unavailable.Inc()
	return &routerError{http.StatusServiceUnavailable,
		fmt.Sprintf("no node reachable for instance %q (last error: %v)", id, lastErr)}
}

// bodyRead builds the handler for a POST read endpoint whose JSON body
// names the instance: the body is read once, canonicalized (compact JSON)
// into the cache key, and forwarded verbatim.
func (rt *Router) bodyRead(op string, genInHeader bool) func(w http.ResponseWriter, r *http.Request) error {
	return func(w http.ResponseWriter, r *http.Request) error {
		body, id, err := readInstanceBody(r)
		if err != nil {
			return err
		}
		return rt.serveRead(w, r, op, id, http.MethodPost, "/"+op, body, genInHeader)
	}
}

// handleCoreGet normalizes GET /core?instance=&q=&direct= into the POST
// /core shape so both forms share cache entries.
func (rt *Router) handleCoreGet(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	body, err := json.Marshal(map[string]any{
		"instance": q.Get("instance"),
		"query":    q.Get("q"),
		"direct":   q.Get("direct") == "true",
	})
	if err != nil {
		return err
	}
	canon, id, err := canonicalBody(body)
	if err != nil {
		return err
	}
	return rt.serveRead(w, r, "core", id, http.MethodPost, "/core", canon, true)
}

// readInstanceBody reads and compacts a JSON request body and extracts the
// instance id it names.
func readInstanceBody(r *http.Request) (canon []byte, id string, err error) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		return nil, "", &routerError{http.StatusBadRequest, "read body: " + err.Error()}
	}
	return canonicalBody(raw)
}

func canonicalBody(raw []byte) (canon []byte, id string, err error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return nil, "", &routerError{http.StatusBadRequest, "invalid JSON body: " + err.Error()}
	}
	var probe struct {
		Instance string `json:"instance"`
	}
	if err := json.Unmarshal(buf.Bytes(), &probe); err != nil {
		return nil, "", &routerError{http.StatusBadRequest, "invalid JSON body: " + err.Error()}
	}
	return buf.Bytes(), probe.Instance, nil
}

func (rt *Router) handleGetInstance(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	return rt.serveRead(w, r, "instance", id, http.MethodGet, "/instances/"+url.PathEscape(id), nil, false)
}

// --- write path ---

// serveWrite proxies a mutation to the ring owner — and only the owner:
// writes never fail over, because the replica's borrowed copies are
// read-only snapshots and accepting a write there would fork the instance.
func (rt *Router) serveWrite(w http.ResponseWriter, r *http.Request, id, method, path string, body []byte) error {
	if id == "" {
		return &routerError{http.StatusBadRequest, "missing instance"}
	}
	owner := rt.topo.Owner(id)
	resp, err := rt.forward(r.Context(), owner, method, path, body)
	if err != nil {
		rt.unavailable.Inc()
		return &routerError{http.StatusServiceUnavailable,
			fmt.Sprintf("owner %q unreachable for write to instance %q: %v", owner, id, err)}
	}
	defer resp.Body.Close()
	respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if rerr != nil {
		return rerr
	}
	if resp.StatusCode < 300 {
		// The write landed: drop every cached read of this instance so the
		// next read revalidates instead of waiting for a stale-gen miss.
		rt.cache.invalidate(id)
	}
	relay(w, resp.StatusCode, resp.Header.Get("Content-Type"), respBody, owner, "miss", resp.Header.Get(HeaderGeneration))
	return nil
}

// createReq mirrors the node-side create payload, plus the explicit id the
// router assigns so placement is decided before the instance exists.
type createReq struct {
	ID      string          `json:"id,omitempty"`
	Initial string          `json:"initial,omitempty"`
	Facts   json.RawMessage `json:"facts,omitempty"`
}

func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) error {
	var req createReq
	if r.ContentLength != 0 {
		dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return &routerError{http.StatusBadRequest, "invalid JSON body: " + err.Error()}
		}
	}
	if req.ID == "" {
		// Router-generated ids carry a random prefix so two routers (or a
		// restarted one) never collide with each other or with node-local
		// "i<n>" ids.
		req.ID = fmt.Sprintf("%s-%d", rt.idPrefix, rt.idSeq.Add(1))
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return rt.serveWrite(w, r, req.ID, http.MethodPost, "/instances", body)
}

func (rt *Router) handleDropInstance(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	return rt.serveWrite(w, r, id, http.MethodDelete, "/instances/"+url.PathEscape(id), nil)
}

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	raw, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		return &routerError{http.StatusBadRequest, "read body: " + err.Error()}
	}
	return rt.serveWrite(w, r, id, http.MethodPost, "/instances/"+url.PathEscape(id)+"/tuples", raw)
}

func (rt *Router) handleEvict(w http.ResponseWriter, r *http.Request) error {
	raw, id, err := readInstanceBody(r)
	if err != nil {
		return err
	}
	return rt.serveWrite(w, r, id, http.MethodPost, "/admin/evict", raw)
}

// --- fan-out endpoints ---

// instListItem is the slice of node-side InstanceInfo the router needs.
type instListItem struct {
	ID       string `json:"id"`
	Borrowed bool   `json:"borrowed,omitempty"`
}

// listNode fetches one node's instance list, returning both the raw
// entries (for relaying) and the decoded ids.
func (rt *Router) listNode(ctx context.Context, node string) ([]json.RawMessage, []instListItem, error) {
	resp, err := rt.forward(ctx, node, http.MethodGet, "/instances", nil)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if rerr != nil {
		return nil, nil, rerr
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("node %q: /instances returned %d: %s", node, resp.StatusCode, bytes.TrimSpace(b))
	}
	var out struct {
		Instances []json.RawMessage `json:"instances"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, nil, fmt.Errorf("node %q: decode /instances: %w", node, err)
	}
	items := make([]instListItem, len(out.Instances))
	for i, raw := range out.Instances {
		if err := json.Unmarshal(raw, &items[i]); err != nil {
			return nil, nil, fmt.Errorf("node %q: decode instance entry: %w", node, err)
		}
	}
	return out.Instances, items, nil
}

// handleListInstances merges every node's instance list. Borrowed copies
// (replica-side read snapshots) are filtered out so an instance appears
// once, under its owner.
func (rt *Router) handleListInstances(w http.ResponseWriter, r *http.Request) error {
	merged := []json.RawMessage{}
	seen := map[string]bool{}
	nodeErrs := map[string]string{}
	for _, n := range rt.topo.Nodes() {
		raws, items, err := rt.listNode(r.Context(), n.Name)
		if err != nil {
			nodeErrs[n.Name] = err.Error()
			continue
		}
		for i, item := range items {
			if item.Borrowed || seen[item.ID] {
				continue
			}
			seen[item.ID] = true
			merged = append(merged, raws[i])
		}
	}
	out := map[string]any{"instances": merged}
	if len(nodeErrs) > 0 {
		out["node_errors"] = nodeErrs
	}
	writeJSON(w, http.StatusOK, out)
	return nil
}

// handleResidency fans GET /admin/residency out to every node so one call
// shows cluster-wide placement — the observability half of rebalance.
func (rt *Router) handleResidency(w http.ResponseWriter, r *http.Request) error {
	out := map[string]any{}
	for _, n := range rt.topo.Nodes() {
		resp, err := rt.forward(r.Context(), n.Name, http.MethodGet, "/admin/residency", nil)
		if err != nil {
			out[n.Name] = map[string]string{"error": err.Error()}
			continue
		}
		b, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			out[n.Name] = map[string]string{"error": fmt.Sprintf("status %d", resp.StatusCode)}
			continue
		}
		out[n.Name] = json.RawMessage(b)
	}
	writeJSON(w, http.StatusOK, out)
	return nil
}

// fanoutPost builds a handler that POSTs a node-local admin action
// (snapshot, compact) to every node and collects per-node results.
func (rt *Router) fanoutPost(path string) func(w http.ResponseWriter, r *http.Request) error {
	return func(w http.ResponseWriter, r *http.Request) error {
		out := map[string]any{}
		for _, n := range rt.topo.Nodes() {
			resp, err := rt.forward(r.Context(), n.Name, http.MethodPost, path, nil)
			if err != nil {
				out[n.Name] = map[string]string{"error": err.Error()}
				continue
			}
			b, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
			resp.Body.Close()
			if rerr != nil {
				out[n.Name] = map[string]string{"error": rerr.Error()}
				continue
			}
			out[n.Name] = json.RawMessage(b)
		}
		writeJSON(w, http.StatusOK, out)
		return nil
	}
}

// --- rebalance ---

// postAdmin POSTs {"instance": id} to a node admin endpoint and fails on
// any non-2xx answer.
func (rt *Router) postAdmin(ctx context.Context, node, path, id string) error {
	body, _ := json.Marshal(map[string]string{"instance": id})
	resp, err := rt.forward(ctx, node, http.MethodPost, path, body)
	if err != nil {
		return fmt.Errorf("node %q: %s: %w", node, path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode >= 300 {
		return fmt.Errorf("node %q: %s returned %d: %s", node, path, resp.StatusCode, bytes.TrimSpace(b))
	}
	return nil
}

// handleRebalance moves every misplaced instance to its ring owner by blob
// handoff: the holder releases it (snapshot to the shared cold backend +
// forget, never a row-level export), then the owner adopts the blob cold;
// the next read faults it in. Borrowed replica copies are simply released.
// Errors on individual instances are collected, not fatal — a rebalance
// that moves 9 of 10 instances reports the one failure and remains safe to
// re-run.
func (rt *Router) handleRebalance(w http.ResponseWriter, r *http.Request) error {
	type move struct {
		Instance string `json:"instance"`
		From     string `json:"from"`
		To       string `json:"to"`
	}
	moves := []move{}
	released := 0
	var errs []string
	for _, n := range rt.topo.Nodes() {
		if !rt.topo.Healthy(n.Name) {
			errs = append(errs, fmt.Sprintf("node %q marked down, skipped", n.Name))
			continue
		}
		_, items, err := rt.listNode(r.Context(), n.Name)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		for _, item := range items {
			owner := rt.topo.Owner(item.ID)
			switch {
			case item.Borrowed:
				if err := rt.postAdmin(r.Context(), n.Name, "/admin/release", item.ID); err != nil {
					errs = append(errs, err.Error())
					continue
				}
				rt.cache.invalidate(item.ID)
				released++
			case owner != n.Name:
				if err := rt.postAdmin(r.Context(), n.Name, "/admin/release", item.ID); err != nil {
					errs = append(errs, err.Error())
					continue
				}
				if err := rt.postAdmin(r.Context(), owner, "/admin/adopt", item.ID); err != nil {
					errs = append(errs, fmt.Sprintf("instance %q released by %q but not adopted by %q: %v", item.ID, n.Name, owner, err))
					continue
				}
				rt.cache.invalidate(item.ID)
				moves = append(moves, move{Instance: item.ID, From: n.Name, To: owner})
			}
		}
	}
	rt.reg.Counter("router_rebalance_moves_total").Add(int64(len(moves)))
	out := map[string]any{
		"ring_version":      rt.topo.Ring().Version(),
		"moved":             moves,
		"released_borrowed": released,
	}
	if len(errs) > 0 {
		out["errors"] = errs
	}
	writeJSON(w, http.StatusOK, out)
	return nil
}

// --- router-local endpoints ---

func (rt *Router) handleTopology(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, rt.topo.Info())
	return nil
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, rt.reg.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = rt.reg.WritePrometheus(w)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	info := rt.topo.Info()
	down := 0
	for _, n := range info.Nodes {
		if !n.Healthy {
			down++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"role":         "router",
		"ring_version": info.RingVersion,
		"nodes":        len(info.Nodes),
		"nodes_down":   down,
	})
}
