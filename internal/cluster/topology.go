package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"provmin/internal/metrics"
)

// Node is one cluster member: a stable name (the ring hashes names, so a
// node can change address without moving data) and its HTTP base URL.
type Node struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ParsePeers parses a -peers flag value: comma-separated name=url pairs,
// e.g. "a=http://10.0.0.1:8411,b=http://10.0.0.2:8411". Names must be
// unique; URLs must be absolute http(s).
func ParsePeers(s string) ([]Node, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster: empty -peers")
	}
	var nodes []Node
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rawURL, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: peer %q is not name=url", part)
		}
		name = strings.TrimSpace(name)
		rawURL = strings.TrimSpace(rawURL)
		if name == "" {
			return nil, fmt.Errorf("cluster: peer %q has an empty name", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", name)
		}
		u, err := url.Parse(rawURL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q needs an absolute http(s) url, got %q", name, rawURL)
		}
		seen[name] = true
		nodes = append(nodes, Node{Name: name, URL: strings.TrimRight(rawURL, "/")})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: -peers lists no nodes")
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	return nodes, nil
}

// NodeStatus is one node's view in a /topology response.
type NodeStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Self    bool   `json:"self,omitempty"`
}

// TopologyInfo is the GET /topology payload served by every node and by
// the router: the ring version plus the member list with health. Clients
// that receive a 409 stale-ring error refresh from here.
type TopologyInfo struct {
	RingVersion uint64       `json:"ring_version"`
	VNodes      int          `json:"vnodes"`
	Self        string       `json:"self,omitempty"`
	Nodes       []NodeStatus `json:"nodes"`
}

// Topology is the static membership plus live health state shared by nodes
// and the router: the ring, the peer list, and a background prober that
// marks nodes down after consecutive /healthz failures and up again on the
// first success. All methods are safe for concurrent use.
type Topology struct {
	ring   *Ring
	nodes  []Node
	self   string // this process's node name; empty on the router
	byName map[string]Node

	mu            sync.Mutex
	downN         map[string]int  // consecutive probe failures
	down          map[string]bool // marked down
	stop          chan struct{}
	done          chan struct{}
	client        *http.Client
	reg           *metrics.Registry
	markDownAfter int
}

// TopologyConfig configures NewTopology.
type TopologyConfig struct {
	Peers  []Node
	Self   string // node name of this process ("" for a router)
	VNodes int
	// ProbeInterval is the /healthz probing period; <= 0 disables the
	// prober goroutine (tests call Probe directly).
	ProbeInterval time.Duration
	// MarkDownAfter is the consecutive-failure threshold before a node is
	// marked down (default 2). The first success marks it up again.
	MarkDownAfter int
	// Client issues probe requests (default: 2s-timeout client).
	Client  *http.Client
	Metrics *metrics.Registry
}

// NewTopology validates the membership, builds the ring and (with a
// positive probe interval) starts the health prober. Self, when set, must
// be one of the peers.
func NewTopology(cfg TopologyConfig) (*Topology, error) {
	names := make([]string, 0, len(cfg.Peers))
	byName := map[string]Node{}
	for _, n := range cfg.Peers {
		names = append(names, n.Name)
		byName[n.Name] = n
	}
	ring, err := BuildRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Self != "" {
		if _, ok := byName[cfg.Self]; !ok {
			return nil, fmt.Errorf("cluster: node name %q is not in the peer list", cfg.Self)
		}
	}
	if cfg.MarkDownAfter <= 0 {
		cfg.MarkDownAfter = 2
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 2 * time.Second}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	t := &Topology{
		ring:          ring,
		nodes:         append([]Node(nil), cfg.Peers...),
		self:          cfg.Self,
		byName:        byName,
		downN:         map[string]int{},
		down:          map[string]bool{},
		client:        cfg.Client,
		reg:           cfg.Metrics,
		markDownAfter: cfg.MarkDownAfter,
	}
	sort.Slice(t.nodes, func(i, j int) bool { return t.nodes[i].Name < t.nodes[j].Name })
	t.reg.Gauge("cluster_ring_version").Set(int64(ring.Version()))
	t.reg.Gauge("cluster_nodes").Set(int64(len(t.nodes)))
	if cfg.ProbeInterval > 0 {
		t.stop = make(chan struct{})
		t.done = make(chan struct{})
		go t.probeLoop(cfg.ProbeInterval)
	}
	return t, nil
}

// Close stops the prober goroutine, if any.
func (t *Topology) Close() {
	if t.stop != nil {
		close(t.stop)
		<-t.done
		t.stop = nil
	}
}

// Ring returns the consistent-hash ring.
func (t *Topology) Ring() *Ring { return t.ring }

// Self returns this process's node name ("" on a router).
func (t *Topology) Self() string { return t.self }

// Nodes returns the membership sorted by name.
func (t *Topology) Nodes() []Node { return append([]Node(nil), t.nodes...) }

// URLOf resolves a node name to its base URL.
func (t *Topology) URLOf(name string) (string, bool) {
	n, ok := t.byName[name]
	return n.URL, ok
}

// Owner returns the ring owner of an instance id.
func (t *Topology) Owner(id string) string { return t.ring.Owner(id) }

// OwnerReplica returns the ring owner and read-failover replica of an id.
func (t *Topology) OwnerReplica(id string) (string, string) { return t.ring.OwnerReplica(id) }

// OwnsLocally reports whether this process is the ring owner of id.
func (t *Topology) OwnsLocally(id string) bool {
	return t.self != "" && t.ring.Owner(id) == t.self
}

// ReplicaLocally reports whether this process is the ring replica of id.
func (t *Topology) ReplicaLocally(id string) bool {
	if t.self == "" {
		return false
	}
	_, rep := t.ring.OwnerReplica(id)
	return rep == t.self
}

// Healthy reports the prober's current view of a node. A node never probed
// (prober disabled, or just started) counts healthy — mark-down is an
// optimization for fast failover, not a correctness gate.
func (t *Topology) Healthy(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.down[name]
}

// MarkDown records one probe failure; MarkUp resets. Exported so the
// router can fold request-time connect failures into the health view
// without waiting for the next probe tick.
func (t *Topology) MarkDown(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.downN[name]++
	if t.downN[name] >= t.markDownAfter && !t.down[name] {
		t.down[name] = true
		t.reg.Counter("cluster_node_markdowns_total").Inc()
		t.updateHealthGauge()
	}
}

// MarkUp records a successful contact with a node.
func (t *Topology) MarkUp(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.downN[name] = 0
	if t.down[name] {
		delete(t.down, name)
		t.reg.Counter("cluster_node_markups_total").Inc()
		t.updateHealthGauge()
	}
}

// updateHealthGauge refreshes cluster_nodes_down; callers hold t.mu.
func (t *Topology) updateHealthGauge() {
	t.reg.Gauge("cluster_nodes_down").Set(int64(len(t.down)))
}

// Probe runs one health pass over every peer (except self) and returns the
// number of nodes currently marked down. Exported so tests and one-shot
// tools can drive health deterministically.
func (t *Topology) Probe(ctx context.Context) int {
	for _, n := range t.nodes {
		if n.Name == t.self {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/healthz", nil)
		if err != nil {
			t.MarkDown(n.Name)
			continue
		}
		resp, err := t.client.Do(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			if resp != nil {
				resp.Body.Close()
			}
			t.MarkDown(n.Name)
			continue
		}
		resp.Body.Close()
		t.MarkUp(n.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.down)
}

func (t *Topology) probeLoop(interval time.Duration) {
	defer close(t.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			t.Probe(ctx)
			cancel()
		}
	}
}

// Info renders the /topology payload from the current health view.
func (t *Topology) Info() TopologyInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	info := TopologyInfo{
		RingVersion: t.ring.Version(),
		VNodes:      t.ring.VNodes(),
		Self:        t.self,
	}
	for _, n := range t.nodes {
		info.Nodes = append(info.Nodes, NodeStatus{
			Name:    n.Name,
			URL:     n.URL,
			Healthy: !t.down[n.Name],
			Self:    n.Name == t.self,
		})
	}
	return info
}
