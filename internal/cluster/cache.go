package cluster

import (
	"container/list"
	"sync"

	"provmin/internal/metrics"
)

// cacheEntry is one cached upstream response. The generation stamp makes
// the entry self-validating: it may be served only while the owning node's
// current generation for the instance equals Gen, which the router checks
// with a cheap GET /gen/{id} before every hit. A stale stamp can only
// cause a miss, never a wrong answer.
type cacheEntry struct {
	key    string
	id     string // instance id, for invalidation on writes
	gen    uint64
	status int
	body   []byte
	ctype  string
}

func (e *cacheEntry) cost() int64 { return int64(len(e.key) + len(e.body) + 64) }

// routerCache is the router-side result cache: an LRU bounded by entry
// count and total bytes, keyed by (instance, endpoint, canonical request
// body). It mirrors the engine's per-instance result cache one tier out —
// same generation-stamp discipline, but validated over the network instead
// of under the registry lock.
type routerCache struct {
	mu         sync.Mutex
	entries    map[string]*list.Element
	byID       map[string]map[string]*list.Element // instance id -> keys
	lru        *list.List
	maxEntries int
	maxBytes   int64
	bytes      int64

	hits, misses, stale, evictions *metrics.Counter
	sizeGauge, bytesGauge          *metrics.Gauge
}

func newRouterCache(maxEntries int, maxBytes int64, reg *metrics.Registry) *routerCache {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &routerCache{
		entries:    map[string]*list.Element{},
		byID:       map[string]map[string]*list.Element{},
		lru:        list.New(),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		hits:       reg.Counter("router_cache_hits_total"),
		misses:     reg.Counter("router_cache_misses_total"),
		stale:      reg.Counter("router_cache_stale_total"),
		evictions:  reg.Counter("router_cache_evictions_total"),
		sizeGauge:  reg.Gauge("router_cache_entries"),
		bytesGauge: reg.Gauge("router_cache_bytes"),
	}
}

func cacheKey(id, op, canonicalBody string) string {
	return id + "\x00" + op + "\x00" + canonicalBody
}

// contains reports whether a key is present without touching LRU order or
// hit/miss counters — the router peeks before spending a generation round
// trip on validating a hit that can't exist.
func (c *routerCache) contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// get returns the entry for key iff its generation stamp equals gen, the
// owning node's current generation as just observed by the caller. An
// entry stamped with any other generation is removed: the instance moved
// on, and under LRU pressure there is no value in keeping provably dead
// bytes around.
func (c *routerCache) get(key string, gen uint64) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		c.stale.Inc()
		c.misses.Inc()
		c.removeLocked(el)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Inc()
	return e, true
}

// put stores a response stamped with the generation the owner reported for
// it. Replaces any previous entry under the same key. The size-bound
// sentinels follow the engine resultCache convention: maxEntries <= 0
// disables the cache, maxBytes <= 0 means no byte bound (it must not be
// compared against costs — every cost is positive, so an unguarded check
// would silently reject every entry).
func (c *routerCache) put(e *cacheEntry) {
	if c.maxEntries <= 0 || (c.maxBytes > 0 && e.cost() > c.maxBytes) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		c.removeLocked(el)
	}
	el := c.lru.PushFront(e)
	c.entries[e.key] = el
	keys := c.byID[e.id]
	if keys == nil {
		keys = map[string]*list.Element{}
		c.byID[e.id] = keys
	}
	keys[e.key] = el
	c.bytes += e.cost()
	for c.lru.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		c.evictions.Inc()
	}
	c.updateGauges()
}

// invalidate drops every cached entry for an instance. Called on write
// endpoints (ingest, drop) and on rebalance so the next read revalidates
// against the new owner instead of waiting for a generation mismatch.
func (c *routerCache) invalidate(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range c.byID[id] {
		c.removeLocked(el)
	}
	c.updateGauges()
}

func (c *routerCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	if keys := c.byID[e.id]; keys != nil {
		delete(keys, e.key)
		if len(keys) == 0 {
			delete(c.byID, e.id)
		}
	}
	c.bytes -= e.cost()
	c.updateGauges()
}

func (c *routerCache) updateGauges() {
	c.sizeGauge.Set(int64(c.lru.Len()))
	c.bytesGauge.Set(c.bytes)
}
