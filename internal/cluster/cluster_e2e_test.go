// In-process 3-node cluster end-to-end tests: three clustered provmind
// nodes sharing one cold blob tier, fronted by a Router — the same wiring
// cmd/provmind and cmd/provrouter perform, minus the processes. The
// package is cluster_test (external) because the harness imports
// internal/server, which itself imports internal/cluster.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"provmin/internal/cluster"
	"provmin/internal/engine"
	"provmin/internal/metrics"
	"provmin/internal/persist"
	"provmin/internal/server"
	"provmin/internal/tier"
)

const (
	seedFacts = "R r1 a a\nR r2 a b\nR r3 b a"
	testQuery = "ans(x) :- R(x,y), R(y,x)"
)

// testNode is one in-process cluster member: a durable, tiered engine over
// the shared cold backend behind a clustered HTTP server on a real TCP
// port (the router dials it like any remote peer).
type testNode struct {
	name string
	addr string
	eng  *engine.Engine
	topo *cluster.Topology
	srv  *http.Server
}

// kill closes the node's HTTP side abruptly — connections refused, engine
// left running — modeling a network partition / kill from the router's
// point of view.
func (n *testNode) kill() { _ = n.srv.Close() }

// testCluster is the 3-node harness plus the router in front of it.
type testCluster struct {
	t         *testing.T
	backend   tier.SnapshotBackend
	peers     []cluster.Node
	nodes     map[string]*testNode
	ring      *cluster.Ring
	router    *httptest.Server
	routerReg *metrics.Registry
}

func newTestCluster(t *testing.T) *testCluster {
	t.Helper()
	backend, err := tier.NewFSBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{t: t, backend: backend, nodes: map[string]*testNode{}}

	names := []string{"a", "b", "c"}
	lns := make(map[string]net.Listener, len(names))
	for _, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[name] = ln
		tc.peers = append(tc.peers, cluster.Node{Name: name, URL: "http://" + ln.Addr().String()})
	}
	for _, name := range names {
		tc.startNode(name, t.TempDir(), lns[name])
	}

	reg := metrics.NewRegistry()
	topo, err := cluster.NewTopology(cluster.TopologyConfig{Peers: tc.peers, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	tc.ring = topo.Ring()
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Topology:    topo,
		DialTimeout: 200 * time.Millisecond,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.routerReg = reg
	tc.router = httptest.NewServer(rt)
	t.Cleanup(tc.router.Close)
	return tc
}

// startNode boots one member exactly as cmd/provmind wires it: durable
// engine, shared backend, ring-filtered AdoptCold, adopt-or-borrow on
// lookup miss, clustered server.
func (tc *testCluster) startNode(name, dataDir string, ln net.Listener) {
	t := tc.t
	t.Helper()
	reg := metrics.NewRegistry()
	l, err := persist.Open(persist.Options{Dir: dataDir, Shards: 4, Cold: tc.backend, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := cluster.NewTopology(cluster.TopologyConfig{Peers: tc.peers, Self: name, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{
		Workers: 2, CacheSize: 16, IngestBatchSize: 1, IngestMaxWait: time.Millisecond,
		Persist: l, Backend: tc.backend, JanitorInterval: -1, Metrics: reg,
		AdoptOnMiss: func(id string) engine.AdoptMode {
			switch {
			case topo.OwnsLocally(id):
				return engine.AdoptOwned
			case topo.ReplicaLocally(id):
				return engine.AdoptBorrowed
			default:
				return engine.AdoptNone
			}
		},
	})
	if err := eng.AdoptCold(context.Background(), topo.OwnsLocally); err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: server.NewClustered(eng, topo)}
	go srv.Serve(ln) //nolint:errcheck // returns on kill/cleanup
	n := &testNode{name: name, addr: ln.Addr().String(), eng: eng, topo: topo, srv: srv}
	tc.nodes[name] = n
	t.Cleanup(func() {
		n.kill()
		topo.Close()
		eng.Close()
	})
}

// pickID returns a fresh instance id owned by the given node.
func (tc *testCluster) pickID(owner string, taken map[string]bool) string {
	for i := 0; ; i++ {
		id := fmt.Sprintf("t%d", i)
		if taken[id] {
			continue
		}
		if tc.ring.Owner(id) == owner {
			taken[id] = true
			return id
		}
	}
}

// --- HTTP helpers ---

func doJSON(t *testing.T, method, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func mustStatus(t *testing.T, resp *http.Response, body []byte, want int) {
	t.Helper()
	if resp.StatusCode != want {
		t.Fatalf("%s: status %d, want %d (body: %s)", resp.Request.URL, resp.StatusCode, want, bytes.TrimSpace(body))
	}
}

// tryNormalize strips the volatile cache-observability fields (cache_hit,
// result_cache_hit, maintained_hit — whether a response was served warm,
// or warm via incremental maintenance, is not part of the answer) and
// re-marshals with sorted keys, so two answers are comparable
// byte-for-byte regardless of which caches were warm.
func tryNormalize(body []byte) (string, error) {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return "", fmt.Errorf("normalize %q: %w", body, err)
	}
	delete(m, "cache_hit")
	delete(m, "result_cache_hit")
	delete(m, "maintained_hit")
	out, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

func normalize(t *testing.T, body []byte) string {
	t.Helper()
	s, err := tryNormalize(body)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ingestBody(rel, tag string, values ...string) map[string]any {
	return map[string]any{"facts": []map[string]any{{"rel": rel, "tag": tag, "values": values}}}
}

// singleNodeRef boots an unclustered single-node server — the acceptance
// reference: the routed cluster must answer byte-identically to it.
func singleNodeRef(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2, CacheSize: 16, IngestBatchSize: 1, IngestMaxWait: time.Millisecond})
	t.Cleanup(eng.Close)
	ref := httptest.NewServer(server.New(eng))
	t.Cleanup(ref.Close)
	return ref
}

// --- tests ---

// TestClusterRoutedCoreMatchesSingleNode runs one workload twice — through
// the 3-node routed cluster and against a single unclustered node — and
// requires identical answers for every instance, with the instances
// actually spread over all three owners. Repeated reads must hit the
// router cache, and a write must invalidate it coherently.
func TestClusterRoutedCoreMatchesSingleNode(t *testing.T) {
	tc := newTestCluster(t)
	ref := singleNodeRef(t)

	// Two instances per node so every owner serves real traffic.
	taken := map[string]bool{}
	var ids []string
	for _, owner := range []string{"a", "b", "c"} {
		for range 2 {
			ids = append(ids, tc.pickID(owner, taken))
		}
	}
	for _, base := range []string{tc.router.URL, ref.URL} {
		for _, id := range ids {
			resp, body := doJSON(t, http.MethodPost, base+"/instances",
				map[string]any{"id": id, "initial": seedFacts}, nil)
			mustStatus(t, resp, body, http.StatusCreated)
			resp, body = doJSON(t, http.MethodPost, base+"/instances/"+id+"/tuples",
				ingestBody("R", "r4-"+id, "b", "b"), nil)
			mustStatus(t, resp, body, http.StatusOK)
		}
	}

	coreReq := func(id string) map[string]any {
		return map[string]any{"instance": id, "query": testQuery}
	}
	for _, id := range ids {
		resp, routed := doJSON(t, http.MethodPost, tc.router.URL+"/core", coreReq(id), nil)
		mustStatus(t, resp, routed, http.StatusOK)
		if node := resp.Header.Get(cluster.HeaderNode); node != tc.ring.Owner(id) {
			t.Errorf("instance %s served by %q, ring owner is %q", id, node, tc.ring.Owner(id))
		}
		respRef, direct := doJSON(t, http.MethodPost, ref.URL+"/core", coreReq(id), nil)
		mustStatus(t, respRef, direct, http.StatusOK)
		if got, want := normalize(t, routed), normalize(t, direct); got != want {
			t.Errorf("routed core for %s:\n%s\nwant (single-node):\n%s", id, got, want)
		}
	}

	// Second round of identical reads: the router cache must serve them.
	hitsBefore := tc.routerReg.Counter("router_cache_hits_total").Value()
	for _, id := range ids {
		resp, body := doJSON(t, http.MethodPost, tc.router.URL+"/core", coreReq(id), nil)
		mustStatus(t, resp, body, http.StatusOK)
		if resp.Header.Get(cluster.HeaderCache) != "hit" {
			t.Errorf("repeat core read for %s: cache %q, want hit", id, resp.Header.Get(cluster.HeaderCache))
		}
	}
	if hits := tc.routerReg.Counter("router_cache_hits_total").Value(); hits <= hitsBefore {
		t.Fatalf("router cache hit rate not > 0: hits %d -> %d", hitsBefore, hits)
	}

	// A routed write invalidates: the next read is a miss that reflects the
	// new fact, still matching the single-node reference.
	id := ids[0]
	for _, base := range []string{tc.router.URL, ref.URL} {
		resp, body := doJSON(t, http.MethodPost, base+"/instances/"+id+"/tuples",
			ingestBody("R", "r5", "c", "c"), nil)
		mustStatus(t, resp, body, http.StatusOK)
	}
	resp, routed := doJSON(t, http.MethodPost, tc.router.URL+"/core", coreReq(id), nil)
	mustStatus(t, resp, routed, http.StatusOK)
	if resp.Header.Get(cluster.HeaderCache) != "miss" {
		t.Errorf("read after write: cache %q, want miss", resp.Header.Get(cluster.HeaderCache))
	}
	respRef, direct := doJSON(t, http.MethodPost, ref.URL+"/core", coreReq(id), nil)
	mustStatus(t, respRef, direct, http.StatusOK)
	if got, want := normalize(t, routed), normalize(t, direct); got != want {
		t.Fatalf("core after routed write:\n%s\nwant:\n%s", got, want)
	}
}

// TestClusterFailoverReplicaServes kills an instance's owner and requires
// the router to serve reads from the ring replica (which borrows the
// instance's cold blob read-only), byte-identical to the pre-kill answer;
// with the replica also dead, reads must fail fast with a JSON 503.
func TestClusterFailoverReplicaServes(t *testing.T) {
	tc := newTestCluster(t)
	id := tc.pickID("a", map[string]bool{})
	owner, replica := tc.ring.OwnerReplica(id)

	resp, body := doJSON(t, http.MethodPost, tc.router.URL+"/instances",
		map[string]any{"id": id, "initial": seedFacts}, nil)
	mustStatus(t, resp, body, http.StatusCreated)
	// Evict through the router: the owner snapshots the instance into the
	// shared cold tier — the state a replica can serve after the owner dies.
	resp, body = doJSON(t, http.MethodPost, tc.router.URL+"/admin/evict",
		map[string]any{"instance": id}, nil)
	mustStatus(t, resp, body, http.StatusOK)

	coreReq := map[string]any{"instance": id, "query": testQuery}
	resp, before := doJSON(t, http.MethodPost, tc.router.URL+"/core", coreReq, nil)
	mustStatus(t, resp, before, http.StatusOK)
	if node := resp.Header.Get(cluster.HeaderNode); node != owner {
		t.Fatalf("pre-kill core served by %q, want owner %q", node, owner)
	}

	tc.nodes[owner].kill()
	// The same read again: the owner is unreachable, so whether the router
	// validates its cached copy or re-proxies, the replica (serving the
	// borrowed cold blob) must answer — byte-identically.
	failovers := tc.routerReg.Counter("router_failovers_total").Value()
	resp, after := doJSON(t, http.MethodPost, tc.router.URL+"/core", coreReq, nil)
	mustStatus(t, resp, after, http.StatusOK)
	if node := resp.Header.Get(cluster.HeaderNode); node != replica {
		t.Fatalf("post-kill core served by %q, want replica %q", node, replica)
	}
	if got := tc.routerReg.Counter("router_failovers_total").Value(); got <= failovers {
		t.Errorf("router_failovers_total did not advance (%d -> %d)", failovers, got)
	}
	if got, want := normalize(t, after), normalize(t, before); got != want {
		t.Fatalf("replica-served core differs from owner's:\n%s\nwant:\n%s", got, want)
	}
	// A query the router has never cached must also proxy through to the
	// replica, not just validate old bytes.
	resp, fresh := doJSON(t, http.MethodPost, tc.router.URL+"/query",
		map[string]any{"instance": id, "query": "ans(x,y) :- R(x,y)"}, nil)
	mustStatus(t, resp, fresh, http.StatusOK)
	if node := resp.Header.Get(cluster.HeaderNode); node != replica {
		t.Fatalf("post-kill fresh query served by %q, want replica %q", node, replica)
	}

	// Replica down too: owner and replica both unreachable is a fast JSON
	// 503, regardless of the third (healthy but non-replica) node.
	tc.nodes[replica].kill()
	resp, body = doJSON(t, http.MethodPost, tc.router.URL+"/query",
		map[string]any{"instance": id, "query": testQuery}, nil)
	mustStatus(t, resp, body, http.StatusServiceUnavailable)
	var errBody struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil || errBody.Error == "" {
		t.Fatalf("503 body is not a JSON error object: %s (err %v)", body, err)
	}
}

// TestClusterStaleRing covers the stale-topology contract on both tiers: a
// request stamped with a foreign ring version is rejected with 409 by the
// router and by every node, and GET /topology serves the version (plus
// membership) a client needs to recover.
func TestClusterStaleRing(t *testing.T) {
	tc := newTestCluster(t)
	stale := map[string]string{cluster.HeaderRing: "12345"}

	resp, body := doJSON(t, http.MethodGet, tc.router.URL+"/instances", nil, stale)
	mustStatus(t, resp, body, http.StatusConflict)
	var errBody struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil || errBody.Error == "" {
		t.Fatalf("router 409 body is not a JSON error object: %s", body)
	}

	node := tc.nodes["a"]
	resp, body = doJSON(t, http.MethodGet, "http://"+node.addr+"/instances", nil, stale)
	mustStatus(t, resp, body, http.StatusConflict)

	// Recovery path: /topology names the current ring version, and a
	// request stamped with it passes on both tiers.
	resp, body = doJSON(t, http.MethodGet, tc.router.URL+"/topology", nil, nil)
	mustStatus(t, resp, body, http.StatusOK)
	var topo cluster.TopologyInfo
	if err := json.Unmarshal(body, &topo); err != nil {
		t.Fatal(err)
	}
	if topo.RingVersion != tc.ring.Version() || len(topo.Nodes) != 3 {
		t.Fatalf("router topology = %+v, want ring v%d over 3 nodes", topo, tc.ring.Version())
	}
	fresh := map[string]string{cluster.HeaderRing: strconv.FormatUint(topo.RingVersion, 10)}
	resp, body = doJSON(t, http.MethodGet, tc.router.URL+"/instances", nil, fresh)
	mustStatus(t, resp, body, http.StatusOK)
	resp, body = doJSON(t, http.MethodGet, "http://"+node.addr+"/instances", nil, fresh)
	mustStatus(t, resp, body, http.StatusOK)
}

// TestClusterGenerationCoherence is the differential form of the cache's
// core guarantee: after every acknowledged routed write, a routed read may
// be a hit or a miss but must never serve a result whose generation trails
// the owner's — equivalently, it must always equal the single-node answer
// for the same prefix of writes.
func TestClusterGenerationCoherence(t *testing.T) {
	tc := newTestCluster(t)
	ref := singleNodeRef(t)
	id := tc.pickID("b", map[string]bool{})
	for _, base := range []string{tc.router.URL, ref.URL} {
		resp, body := doJSON(t, http.MethodPost, base+"/instances",
			map[string]any{"id": id, "initial": seedFacts}, nil)
		mustStatus(t, resp, body, http.StatusCreated)
	}

	coreReq := map[string]any{"instance": id, "query": testQuery}
	var lastGen uint64
	for i := range 12 {
		// Warm the router cache at the current generation, then write: the
		// stale entry must never be served for the post-write read.
		resp, body := doJSON(t, http.MethodPost, tc.router.URL+"/core", coreReq, nil)
		mustStatus(t, resp, body, http.StatusOK)
		tag := fmt.Sprintf("g%d", i)
		val := fmt.Sprintf("v%d", i)
		for _, base := range []string{tc.router.URL, ref.URL} {
			resp, body := doJSON(t, http.MethodPost, base+"/instances/"+id+"/tuples",
				ingestBody("R", tag, val, val), nil)
			mustStatus(t, resp, body, http.StatusOK)
		}
		resp, routed := doJSON(t, http.MethodPost, tc.router.URL+"/core", coreReq, nil)
		mustStatus(t, resp, routed, http.StatusOK)
		gen, err := strconv.ParseUint(resp.Header.Get(cluster.HeaderGeneration), 10, 64)
		if err != nil {
			t.Fatalf("round %d: bad generation header %q", i, resp.Header.Get(cluster.HeaderGeneration))
		}
		if gen <= lastGen {
			t.Fatalf("round %d: generation %d does not advance past %d — stale result served", i, gen, lastGen)
		}
		lastGen = gen
		respRef, direct := doJSON(t, http.MethodPost, ref.URL+"/core", coreReq, nil)
		mustStatus(t, respRef, direct, http.StatusOK)
		if got, want := normalize(t, routed), normalize(t, direct); got != want {
			t.Fatalf("round %d: routed core trails the owner:\n%s\nwant:\n%s", i, got, want)
		}
	}
	if tc.routerReg.Counter("router_cache_hits_total").Value() == 0 {
		t.Error("workload produced no router cache hits; coherence was never actually exercised")
	}
}

// TestClusterGenerationCoherenceConcurrent races routed readers against a
// routed writer: every reader's observed generation sequence must be
// non-decreasing, and any two responses claiming the same generation must
// be identical — a cached result served past its generation would break
// one of the two.
func TestClusterGenerationCoherenceConcurrent(t *testing.T) {
	tc := newTestCluster(t)
	id := tc.pickID("c", map[string]bool{})
	resp, body := doJSON(t, http.MethodPost, tc.router.URL+"/instances",
		map[string]any{"id": id, "initial": seedFacts}, nil)
	mustStatus(t, resp, body, http.StatusCreated)

	const writes = 30
	var (
		mu    sync.Mutex
		byGen = map[uint64]string{}
	)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := range 3 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for n := 0; ; n++ {
				select {
				case <-done:
					if n > 0 {
						return
					}
				default:
				}
				resp, routed := doJSON(t, http.MethodPost, tc.router.URL+"/core",
					map[string]any{"instance": id, "query": testQuery}, nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: status %d: %s", r, resp.StatusCode, routed)
					return
				}
				gen, err := strconv.ParseUint(resp.Header.Get(cluster.HeaderGeneration), 10, 64)
				if err != nil {
					t.Errorf("reader %d: bad generation header %q", r, resp.Header.Get(cluster.HeaderGeneration))
					return
				}
				if gen < last {
					t.Errorf("reader %d: generation went backwards %d -> %d (stale cache serve)", r, last, gen)
					return
				}
				last = gen
				norm, err := tryNormalize(routed)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, ok := byGen[gen]; ok && prev != norm {
					mu.Unlock()
					t.Errorf("two different results at generation %d:\n%s\nvs\n%s", gen, prev, norm)
					return
				}
				byGen[gen] = norm
				mu.Unlock()
			}
		}()
	}
	for i := range writes {
		resp, body := doJSON(t, http.MethodPost, tc.router.URL+"/instances/"+id+"/tuples",
			ingestBody("R", fmt.Sprintf("c%d", i), fmt.Sprintf("w%d", i), fmt.Sprintf("w%d", i)), nil)
		mustStatus(t, resp, body, http.StatusOK)
	}
	close(done)
	wg.Wait()
}

// TestClusterRebalance plants an instance on the wrong node, then requires
// POST /admin/rebalance to move it to its ring owner by cold-blob handoff:
// the donor forgets it, the owner adopts it cold (visible in /admin/
// residency on both), and the routed answer is unchanged — all without any
// row-level re-ingest (the owner's ingest path is never exercised).
func TestClusterRebalance(t *testing.T) {
	tc := newTestCluster(t)
	id := tc.pickID("a", map[string]bool{})
	wrong := "b" // not the owner and (vnode permutations aside) a valid holder

	// Plant directly on the wrong node, bypassing the router's placement.
	resp, body := doJSON(t, http.MethodPost, "http://"+tc.nodes[wrong].addr+"/instances",
		map[string]any{"id": id, "initial": seedFacts}, nil)
	mustStatus(t, resp, body, http.StatusCreated)
	resp, before := doJSON(t, http.MethodPost, "http://"+tc.nodes[wrong].addr+"/core",
		map[string]any{"instance": id, "query": testQuery}, nil)
	mustStatus(t, resp, before, http.StatusOK)

	resp, body = doJSON(t, http.MethodPost, tc.router.URL+"/admin/rebalance", nil, nil)
	mustStatus(t, resp, body, http.StatusOK)
	var reb struct {
		Moved []struct {
			Instance, From, To string
		} `json:"moved"`
		Errors []string `json:"errors"`
	}
	if err := json.Unmarshal(body, &reb); err != nil {
		t.Fatal(err)
	}
	if len(reb.Errors) > 0 {
		t.Fatalf("rebalance errors: %v", reb.Errors)
	}
	if len(reb.Moved) != 1 || reb.Moved[0].Instance != id || reb.Moved[0].From != wrong || reb.Moved[0].To != "a" {
		t.Fatalf("rebalance moved = %+v, want [%s: %s -> a]", reb.Moved, id, wrong)
	}

	// Both engines' residency must reflect the move: gone from the donor,
	// cold on the owner (adopted as a blob, not re-ingested).
	if res := tc.nodes[wrong].eng.Residency(); len(res.Cold) != 0 || len(res.Resident) != 0 {
		t.Fatalf("donor still holds state after rebalance: %+v", res)
	}
	res := tc.nodes["a"].eng.Residency()
	if len(res.Cold) != 1 || res.Cold[0] != id || len(res.Resident) != 0 {
		t.Fatalf("owner residency after rebalance = %+v, want exactly [%s] cold", res, id)
	}

	// The routed read faults the blob in on the owner and answers as before.
	resp, after := doJSON(t, http.MethodPost, tc.router.URL+"/core",
		map[string]any{"instance": id, "query": testQuery}, nil)
	mustStatus(t, resp, after, http.StatusOK)
	if node := resp.Header.Get(cluster.HeaderNode); node != "a" {
		t.Fatalf("post-rebalance core served by %q, want owner a", node)
	}
	if got, want := normalize(t, after), normalize(t, before); got != want {
		t.Fatalf("core changed across rebalance:\n%s\nwant:\n%s", got, want)
	}
}
