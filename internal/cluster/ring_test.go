package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"provmin/internal/metrics"
)

func TestBuildRingValidation(t *testing.T) {
	if _, err := BuildRing(nil, 8); err == nil {
		t.Fatal("empty membership should fail")
	}
	if _, err := BuildRing([]string{"a", ""}, 8); err == nil {
		t.Fatal("empty node name should fail")
	}
	r, err := BuildRing([]string{"b", "a", "b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("nodes = %v, want [a b] (deduped, sorted)", got)
	}
}

func TestRingDeterministicAcrossOrderings(t *testing.T) {
	r1, _ := BuildRing([]string{"a", "b", "c"}, 32)
	r2, _ := BuildRing([]string{"c", "a", "b"}, 32)
	if r1.Version() != r2.Version() {
		t.Fatalf("versions differ for same membership: %d vs %d", r1.Version(), r2.Version())
	}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("inst-%d", i)
		if r1.Owner(id) != r2.Owner(id) {
			t.Fatalf("owner of %q differs across peer-list orderings", id)
		}
	}
}

func TestRingVersionChangesWithMembership(t *testing.T) {
	r1, _ := BuildRing([]string{"a", "b"}, 32)
	r2, _ := BuildRing([]string{"a", "b", "c"}, 32)
	r3, _ := BuildRing([]string{"a", "b"}, 64)
	if r1.Version() == r2.Version() {
		t.Fatal("adding a node must change the ring version")
	}
	if r1.Version() == r3.Version() {
		t.Fatal("changing vnodes must change the ring version")
	}
}

func TestRingReplicaDistinct(t *testing.T) {
	r, _ := BuildRing([]string{"a", "b", "c"}, 64)
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("x-%d", i)
		owner, replica := r.OwnerReplica(id)
		if owner == replica {
			t.Fatalf("replica of %q equals owner %q on a 3-node ring", id, owner)
		}
	}
	single, _ := BuildRing([]string{"solo"}, 64)
	if o, rep := single.OwnerReplica("x"); o != "solo" || rep != "solo" {
		t.Fatalf("single-node ring: owner=%q replica=%q, want solo/solo", o, rep)
	}
}

func TestRingBalance(t *testing.T) {
	r, _ := BuildRing([]string{"a", "b", "c"}, DefaultVNodes)
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("inst-%d", i))]++
	}
	for node, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.1f%% of keys — ring badly skewed: %v", node, 100*frac, counts)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	r3, _ := BuildRing([]string{"a", "b", "c"}, DefaultVNodes)
	r4, _ := BuildRing([]string{"a", "b", "c", "d"}, DefaultVNodes)
	moved := 0
	const n = 10000
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("inst-%d", i)
		o3, o4 := r3.Owner(id), r4.Owner(id)
		if o3 != o4 {
			moved++
			if o4 != "d" {
				t.Fatalf("instance %q moved %s→%s; adding d must only move keys to d", id, o3, o4)
			}
		}
	}
	// Consistent hashing moves ~1/4 of keys when going 3→4 nodes.
	if frac := float64(moved) / n; frac > 0.45 {
		t.Fatalf("%.1f%% of keys moved adding one node — not consistent hashing", 100*frac)
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers(" b=http://h2:1 , a=http://h1:1/ ")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].Name != "a" || nodes[0].URL != "http://h1:1" || nodes[1].Name != "b" {
		t.Fatalf("parsed %+v", nodes)
	}
	for _, bad := range []string{"", "a", "a=ftp://x", "a=http://x,a=http://y", "=http://x"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) should fail", bad)
		}
	}
}

func TestTopologyProbeMarkDownUp(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	topo, err := NewTopology(TopologyConfig{
		Peers:         []Node{{Name: "a", URL: srv.URL}, {Name: "self", URL: "http://127.0.0.1:1"}},
		Self:          "self",
		MarkDownAfter: 2,
		Metrics:       metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	ctx := context.Background()
	if down := topo.Probe(ctx); down != 0 {
		t.Fatalf("healthy probe marked %d down", down)
	}
	healthy.Store(false)
	topo.Probe(ctx) // one failure: below threshold
	if !topo.Healthy("a") {
		t.Fatal("one failure should not mark down with MarkDownAfter=2")
	}
	topo.Probe(ctx)
	if topo.Healthy("a") {
		t.Fatal("two consecutive failures should mark the node down")
	}
	healthy.Store(true)
	topo.Probe(ctx)
	if !topo.Healthy("a") {
		t.Fatal("first success should mark the node up again")
	}
	info := topo.Info()
	if info.Self != "self" || len(info.Nodes) != 2 || info.RingVersion == 0 {
		t.Fatalf("topology info %+v", info)
	}
}

func TestRouterCacheGenerationGate(t *testing.T) {
	c := newRouterCache(4, 1<<20, metrics.NewRegistry())
	key := cacheKey("i1", "core", `{"q":1}`)
	c.put(&cacheEntry{key: key, id: "i1", gen: 3, status: 200, body: []byte("r3")})
	if _, ok := c.get(key, 3); !ok {
		t.Fatal("matching generation must hit")
	}
	if _, ok := c.get(key, 4); ok {
		t.Fatal("advanced generation must miss")
	}
	// The stale entry was removed; even the old generation misses now.
	if _, ok := c.get(key, 3); ok {
		t.Fatal("stale entry should have been dropped")
	}
}

func TestRouterCacheInvalidateAndBounds(t *testing.T) {
	reg := metrics.NewRegistry()
	c := newRouterCache(2, 1<<20, reg)
	for i := 0; i < 3; i++ {
		k := cacheKey("i1", "core", fmt.Sprintf("q%d", i))
		c.put(&cacheEntry{key: k, id: "i1", gen: 1, status: 200, body: []byte("x")})
	}
	if got := reg.Gauge("router_cache_entries").Value(); got != 2 {
		t.Fatalf("entry bound not enforced: %d entries", got)
	}
	c.invalidate("i1")
	if got := reg.Gauge("router_cache_entries").Value(); got != 0 {
		t.Fatalf("invalidate left %d entries", got)
	}
	if got := reg.Gauge("router_cache_bytes").Value(); got != 0 {
		t.Fatalf("invalidate left %d bytes accounted", got)
	}
}
